package lint

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestGlobalRandFixture(t *testing.T) {
	runFixture(t, GlobalRand, "fixture/globalrand", "globalrand")
}

func TestMapRangeFixture(t *testing.T) {
	runFixture(t, MapRange, "fixture/maprange", "maprange")
}

func TestRawGoFixture(t *testing.T) {
	runFixture(t, RawGo, "fixture/rawgo", "rawgo")
}

// TestRawGoAllowedPackage type-checks the same kind of code under an
// import path ending in internal/parallel — the one package allowed to
// own goroutines — and expects silence.
func TestRawGoAllowedPackage(t *testing.T) {
	pkg := loadFixture(t, "fixture/rawgo/internal/parallel", "rawgo/internal/parallel")
	diags, err := runAnalyzers(pkg, []*Analyzer{RawGo})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in exempt package: %s", d)
	}
}

func TestWallTimeFixture(t *testing.T) {
	runFixture(t, WallTime, "fixture/walltime/tuner", "walltime/tuner")
}

// TestWallTimeAllowedPackage runs the same check over a
// measurement-boundary package name ("server"), where wall-clock reads
// are the whole point, and expects silence.
func TestWallTimeAllowedPackage(t *testing.T) {
	pkg := loadFixture(t, "fixture/walltime/server", "walltime/server")
	diags, err := runAnalyzers(pkg, []*Analyzer{WallTime})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in boundary package: %s", d)
	}
}

func TestCtxFlowFixture(t *testing.T) {
	runModuleFixture(t, CtxFlow, "fixture/ctxflow", "ctxflow")
}

func TestLockHeldFixture(t *testing.T) {
	runModuleFixture(t, LockHeld, "fixture/lockheld", "lockheld")
}

func TestHotAllocFixture(t *testing.T) {
	runModuleFixture(t, HotAlloc, "fixture/hotalloc", "hotalloc")
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, ErrDrop, "fixture/internal/errdrop", "errdrop")
}

// TestErrDropScopedToInternal type-checks the same fixture under a
// non-internal import path, where the check does not apply.
func TestErrDropScopedToInternal(t *testing.T) {
	pkg := loadFixture(t, "fixture/errdrop", "errdrop")
	diags, err := runAnalyzers(pkg, []*Analyzer{ErrDrop})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside internal/: %s", d)
	}
}

func TestExhaustFixture(t *testing.T) {
	runFixture(t, Exhaust, "fixture/exhaust", "exhaust")
}

func TestLockOrderFixture(t *testing.T) {
	runModuleFixture(t, LockOrder, "fixture/lockorder", "lockorder")
}

// The clocktaint fixture carries the package name "tuner" so its sink
// types match the suffix table the real module runs under.
func TestClockTaintFixture(t *testing.T) {
	runModuleFixtureOpts(t, ClockTaint, "fixture/clocktaint/tuner", "clocktaint/tuner", RunOptions{})
}

// TestWireShapeClean pins the extraction path end to end: the fixture's
// live schema must match its checked-in lock exactly — no findings, no
// notices.
func TestWireShapeClean(t *testing.T) {
	runModuleFixtureOpts(t, WireShape, "fixture/wireshape/clean", "wireshape/clean",
		RunOptions{WireLock: filepath.Join("testdata", "wirelock", "clean.lock")})
}

// TestWireShapeDrift pins every drift class against the deliberately
// stale drift.lock: renamed wire name, changed type, removed field
// (breaking) and an unrecorded live field (additive notice).
func TestWireShapeDrift(t *testing.T) {
	runModuleFixtureOpts(t, WireShape, "fixture/wireshape/drift", "wireshape/drift",
		RunOptions{WireLock: filepath.Join("testdata", "wirelock", "drift.lock")})
}

// TestWireShapeWrite regenerates the clean fixture's lock into a temp
// file and requires byte equality with the checked-in golden — the
// write path and Format stability in one assertion.
func TestWireShapeWrite(t *testing.T) {
	pkg := loadFixture(t, "fixture/wireshape/clean", "wireshape/clean")
	out := filepath.Join(t.TempDir(), "wire.lock")
	_, err := runModuleAnalyzers([]*LoadedPackage{pkg}, []*Analyzer{WireShape},
		RunOptions{WireLock: out, WriteWire: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "wirelock", "clean.lock"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Errorf("regenerated lock differs from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
	// The write is a fixed point of parse∘format.
	parsed, err := ParseWireLock(got)
	if err != nil {
		t.Fatalf("regenerated lock does not parse: %v", err)
	}
	if string(FormatWireLock(parsed)) != string(got) {
		t.Error("format(parse(lock)) is not a fixed point")
	}
}

// TestWireShapeMissingLock pins the unlocked-tree behavior: a missing
// lock file is itself a (non-notice) finding naming the regeneration
// path, anchored at the lock path.
func TestWireShapeMissingLock(t *testing.T) {
	pkg := loadFixture(t, "fixture/wireshape/clean", "wireshape/clean")
	missing := filepath.Join(t.TempDir(), "wire.lock")
	diags, err := runModuleAnalyzers([]*LoadedPackage{pkg}, []*Analyzer{WireShape},
		RunOptions{WireLock: missing})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want exactly 1: %v", len(diags), diags)
	}
	d := diags[0]
	if d.Notice || d.Pos.Filename != missing || !strings.Contains(d.Message, "-write-wire") {
		t.Errorf("unexpected missing-lock diagnostic: %+v", d)
	}
}
