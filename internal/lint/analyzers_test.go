package lint

import "testing"

func TestGlobalRandFixture(t *testing.T) {
	runFixture(t, GlobalRand, "fixture/globalrand", "globalrand")
}

func TestMapRangeFixture(t *testing.T) {
	runFixture(t, MapRange, "fixture/maprange", "maprange")
}

func TestRawGoFixture(t *testing.T) {
	runFixture(t, RawGo, "fixture/rawgo", "rawgo")
}

// TestRawGoAllowedPackage type-checks the same kind of code under an
// import path ending in internal/parallel — the one package allowed to
// own goroutines — and expects silence.
func TestRawGoAllowedPackage(t *testing.T) {
	pkg := loadFixture(t, "fixture/rawgo/internal/parallel", "rawgo/internal/parallel")
	diags, err := runAnalyzers(pkg, []*Analyzer{RawGo})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in exempt package: %s", d)
	}
}

func TestWallTimeFixture(t *testing.T) {
	runFixture(t, WallTime, "fixture/walltime/tuner", "walltime/tuner")
}

// TestWallTimeAllowedPackage runs the same check over a
// measurement-boundary package name ("server"), where wall-clock reads
// are the whole point, and expects silence.
func TestWallTimeAllowedPackage(t *testing.T) {
	pkg := loadFixture(t, "fixture/walltime/server", "walltime/server")
	diags, err := runAnalyzers(pkg, []*Analyzer{WallTime})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic in boundary package: %s", d)
	}
}

func TestCtxFlowFixture(t *testing.T) {
	runModuleFixture(t, CtxFlow, "fixture/ctxflow", "ctxflow")
}

func TestLockHeldFixture(t *testing.T) {
	runModuleFixture(t, LockHeld, "fixture/lockheld", "lockheld")
}

func TestHotAllocFixture(t *testing.T) {
	runModuleFixture(t, HotAlloc, "fixture/hotalloc", "hotalloc")
}

func TestErrDropFixture(t *testing.T) {
	runFixture(t, ErrDrop, "fixture/internal/errdrop", "errdrop")
}

// TestErrDropScopedToInternal type-checks the same fixture under a
// non-internal import path, where the check does not apply.
func TestErrDropScopedToInternal(t *testing.T) {
	pkg := loadFixture(t, "fixture/errdrop", "errdrop")
	diags, err := runAnalyzers(pkg, []*Analyzer{ErrDrop})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic outside internal/: %s", d)
	}
}
