package lint

// Fuzz target for the wire.lock parser. The lock file is hand-editable
// (merge conflicts, manual reverts), so ParseWireLock must be total:
// arbitrary bytes either parse or return an error — never panic — and
// any lock that parses must survive a format/parse cycle as a fixed
// point, or `make wire-lock` could churn a committed file forever.
// `make fuzz-smoke` runs the target briefly; `go test` replays the seed
// corpus as ordinary tests.

import (
	"testing"
)

func FuzzWireLockParse(f *testing.F) {
	f.Add([]byte(wireLockHeader))
	f.Add([]byte("type a.b json\n\tfield X wire=x type=int\n"))
	f.Add([]byte("type a.b json,gob\n\tfield X wire=x omitempty type=map[string]int\n"))
	f.Add([]byte("type a.b json\ntype a.c gob\n\tfield Y wire=Y type=[]float64\n"))
	f.Add([]byte("\tfield Orphan wire=o type=int\n"))
	f.Add([]byte("type dup json\ntype dup json\n"))
	f.Add([]byte("type a.b avro\n"))
	f.Add([]byte("type a.b json\n\tfield X wire=x type=struct { A int " + "`json:\"a\"`" + " }\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := ParseWireLock(data) // must never panic
		if err != nil {
			return
		}
		// A parsed schema formats canonically, and that canonical form is
		// a fixed point of parse∘format.
		out := FormatWireLock(s)
		s2, err := ParseWireLock(out)
		if err != nil {
			t.Fatalf("canonical form does not re-parse: %v\n%s", err, out)
		}
		if got := string(FormatWireLock(s2)); got != string(out) {
			t.Fatalf("format(parse(format(s))) is not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", out, got)
		}
	})
}
