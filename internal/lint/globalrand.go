package lint

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the package-level math/rand (and math/rand/v2)
// convenience functions. Those draw from a process-global, lock-shared
// source: the value each call returns depends on every other draw in
// the process, so any concurrency — worker count, pipeline depth, a
// background goroutine — reorders the stream and breaks bitwise
// reproducibility. Every random draw in this repo must flow through an
// owned *rand.Rand (one stream per task, split deterministically), which
// these same names invoke as methods; only the package-function forms
// are flagged. Constructors (rand.New, rand.NewSource, rand.NewPCG) are
// how owned streams are made and stay legal.
var GlobalRand = &Analyzer{
	Name: "globalrand",
	Doc:  "forbid process-global math/rand draws; use an owned *rand.Rand stream",
	Run:  runGlobalRand,
}

// globalRandFuncs are the package-level draw functions of math/rand and
// math/rand/v2 (constructors excluded). Referencing one at all — called
// or passed as a value — is a violation.
var globalRandFuncs = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true, "Seed": true, "Read": true,
	// math/rand/v2 additions
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "UintN": true, "Uint64N": true, "N": true,
}

func runGlobalRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok {
				return true
			}
			path := pkgName.Imported().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if globalRandFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"rand.%s draws from the process-global source and is nondeterministic under concurrency; draw from an owned *rand.Rand stream",
					sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}
