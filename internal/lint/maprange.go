package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// MapRange flags `range` over a map whose body performs an
// order-sensitive effect: appending to a slice, accumulating floats
// (float addition is not associative — iteration order changes the
// bits), sending on a channel, or invoking a callback value. Go
// randomizes map iteration order on purpose, so any of these makes the
// result depend on the run. The sanctioned idiom is the one
// internal/experiments' methodsSorted uses: collect the keys, sort
// them, then loop over the sorted slice — an append whose target is
// sorted later in the same block is therefore not flagged.
var MapRange = &Analyzer{
	Name: "maprange",
	Doc:  "flag order-sensitive effects inside range-over-map bodies; sort keys first (see methodsSorted)",
	Run:  runMapRange,
}

func runMapRange(pass *Pass) error {
	for _, f := range pass.Files {
		// Walk every statement list so each range-over-map can see the
		// statements that follow it (where the sanctioned sort lives).
		ast.Inspect(f, func(n ast.Node) bool {
			var list []ast.Stmt
			switch n := n.(type) {
			case *ast.BlockStmt:
				list = n.List
			case *ast.CaseClause:
				list = n.Body
			case *ast.CommClause:
				list = n.Body
			default:
				return true
			}
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
			return true
		})
	}
	return nil
}

// checkMapRange inspects one range statement; rest is the tail of the
// enclosing statement list after it.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	tv, ok := pass.TypesInfo.Types[rs.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// A nested range-over-map gets its own check (with its own
			// trailing-sort window); don't double-report its body here.
			if tv, ok := pass.TypesInfo.Types[n.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(),
				"sends on a channel in map-iteration order; range over sorted keys instead (see methodsSorted)")
		case *ast.AssignStmt:
			if isFloatAccumulation(pass, n) {
				pass.Reportf(n.Pos(),
					"accumulates floating-point values in map-iteration order (float addition is not associative); range over sorted keys instead (see methodsSorted)")
			}
		case *ast.CallExpr:
			switch kind, obj := classifyCall(pass, n); kind {
			case callAppend:
				if target := rootObject(pass, n.Args[0]); target != nil && !sortedAfter(pass, rest, target) {
					pass.Reportf(n.Pos(),
						"appends to %s in map-iteration order and never sorts it; collect keys and sort first (see methodsSorted)", target.Name())
				}
			case callDynamic:
				name := "a function value"
				if obj != nil {
					name = "callback " + obj.Name()
				}
				pass.Reportf(n.Pos(),
					"calls %s in map-iteration order; range over sorted keys instead (see methodsSorted)", name)
			case callStatic, callOther:
				// Compile-time-resolved calls, conversions, and other
				// builtins are order-independent at this level; what
				// they mutate is caught by the cases above.
			}
		}
		return true
	})
}

// isFloatAccumulation reports whether the assignment compounds onto a
// floating-point (or complex) accumulator: x += v, x -= v, x *= v,
// x /= v with float-typed x. Integer accumulation commutes exactly and
// is not flagged.
func isFloatAccumulation(pass *Pass, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	for _, lhs := range as.Lhs {
		tv, ok := pass.TypesInfo.Types[lhs]
		if !ok {
			continue
		}
		if b, ok := tv.Type.Underlying().(*types.Basic); ok &&
			b.Info()&(types.IsFloat|types.IsComplex) != 0 {
			return true
		}
	}
	return false
}

type callKind int

const (
	callStatic  callKind = iota // named func or method: resolved at compile time
	callAppend                  // the append builtin
	callDynamic                 // through a function value (parameter, field, variable)
	callOther                   // conversion, other builtin, inline func literal
)

// classifyCall decides whether a call is the append builtin, a static
// call, or a dynamic call through a function value. Inline func-literal
// calls are not "dynamic": their bodies are walked directly, so any
// order-sensitive effect inside them is flagged on its own.
func classifyCall(pass *Pass, call *ast.CallExpr) (callKind, types.Object) {
	fun := ast.Unparen(call.Fun)
	// Generic instantiation f[T](...) resolves through the index expr.
	if ix, ok := fun.(*ast.IndexExpr); ok {
		fun = ast.Unparen(ix.X)
	} else if ix, ok := fun.(*ast.IndexListExpr); ok {
		fun = ast.Unparen(ix.X)
	}
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := pass.TypesInfo.Uses[fun].(type) {
		case *types.Builtin:
			if obj.Name() == "append" && len(call.Args) > 0 {
				return callAppend, obj
			}
			return callOther, nil
		case *types.Func:
			return callStatic, obj
		case *types.TypeName:
			return callOther, nil // conversion
		case *types.Var:
			return callDynamic, obj
		}
	case *ast.SelectorExpr:
		switch obj := pass.TypesInfo.Uses[fun.Sel].(type) {
		case *types.Func:
			return callStatic, obj // package func or method
		case *types.Var:
			if _, ok := obj.Type().Underlying().(*types.Signature); ok {
				return callDynamic, obj // func-typed field
			}
		case *types.TypeName:
			return callOther, nil
		}
	}
	return callOther, nil
}

// rootObject resolves the variable (or field) an expression ultimately
// names: x, s.field, xs[i] all reduce to a types.Object usable as an
// identity for "the same slice" across the append and the later sort.
func rootObject(pass *Pass, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pass.TypesInfo.Uses[x]; obj != nil {
				return obj
			}
			return pass.TypesInfo.Defs[x]
		case *ast.SelectorExpr:
			if obj := pass.TypesInfo.Uses[x.Sel]; obj != nil {
				return obj
			}
			return nil
		case *ast.IndexExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// sortedAfter reports whether any statement in rest sorts the target:
// a call to sort.* or slices.* mentioning the appended-to variable.
// That is the methodsSorted shape — collect in arbitrary order, sort,
// then do the order-sensitive work over the sorted slice.
func sortedAfter(pass *Pass, rest []ast.Stmt, target types.Object) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgID, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName)
			if !ok {
				return true
			}
			if p := pkgName.Imported().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				if mentionsObject(pass, arg, target) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

// mentionsObject reports whether the expression references the object
// anywhere (covers sort.Strings(keys), sort.Slice(keys, ...), and
// wrapper forms like sort.Sort(byLen(keys))).
func mentionsObject(pass *Pass, e ast.Expr, target types.Object) bool {
	var hit bool
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == target {
			hit = true
		}
		return !hit
	})
	return hit
}
