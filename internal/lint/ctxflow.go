package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces cancellation plumbing over the call graph. A tuning
// session can spend minutes inside one batch measurement; the only
// reason DELETE /v1/jobs or SIGTERM can stop it is that a context flows
// unbroken from the daemon boundary down to Measurer.Measure. Two rules
// keep that chain intact as the service layer grows:
//
//  1. Any function that transitively reaches a blocking operation — a
//     measurement dispatch, outbound HTTP, a blocking channel
//     operation, a timer — must accept a context: a context.Context
//     parameter, a parameter or receiver struct carrying one (the
//     Options / search.Context idiom), or an *http.Request.
//  2. context.Background() and context.TODO() are forbidden below the
//     cmd/ and test boundary: a library that mints its own root context
//     has disconnected its callees from cancellation. The daemons mint
//     roots; everything beneath forwards.
//
// Binaries (package main) and test files sit outside the boundary, and
// the two infrastructure packages — internal/parallel (bounded CPU
// fan-out; cancellation happens at the round boundaries above it) and
// internal/lint (build-time tooling) — are exempt and absorb
// propagation.
var CtxFlow = &Analyzer{
	Name:      "ctxflow",
	Doc:       "functions reaching a blocking operation must accept and forward a context.Context; no context.Background/TODO below cmd",
	RunModule: runCtxFlow,
}

func runCtxFlow(pass *ModulePass) error {
	g := pass.Graph
	skip := func(n *FuncNode) bool {
		return mainOrTestPkg(n.Pkg) || infraPkg(n.Pkg)
	}
	directlyBlocking := func(n *FuncNode) bool {
		if len(n.ChanOps) > 0 {
			return true
		}
		for _, c := range n.Calls {
			if _, ok := blockingCall(c, blockingCallees); ok {
				return true
			}
		}
		return false
	}
	blocking := g.Transitive(directlyBlocking, skip)

	for _, id := range g.sortedNodeIDs() {
		n := g.Nodes[id]
		if !blocking[id] || n.HasCtx || skip(n) {
			continue
		}
		if name := n.Decl.Name.Name; name == "main" || name == "init" {
			continue
		}
		path := g.PathTo(id, directlyBlocking, skip)
		pass.Reportf(n.Decl.Pos(),
			"%s reaches a blocking operation (%s) but accepts no context.Context; plumb ctx through so cancellation can interrupt it",
			n.Decl.Name.Name, describeBlockingPath(g, path))
	}

	// Rule 2: no fresh root contexts below the binary boundary.
	for _, pkg := range pass.Pkgs {
		if mainOrTestPkg(pkg) || infraPkg(pkg) {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
				if !ok {
					return true
				}
				fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
				if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
					return true
				}
				if fn.Name() == "Background" || fn.Name() == "TODO" {
					pass.Reportf(call.Pos(),
						"context.%s mints a fresh root below the cmd boundary, disconnecting callees from cancellation; accept and forward the caller's ctx instead",
						fn.Name())
				}
				return true
			})
		}
	}
	return nil
}

// describeBlockingPath renders a shortest call path ending in a blocking
// operation as "f → g → Measurer.Measure" (truncated in the middle when
// long). The final hop is the blocking leaf's own description when the
// path ends at a leaf call; a path ending in a direct channel operation
// names it instead.
func describeBlockingPath(g *CallGraph, path []string) string {
	if len(path) == 0 {
		return "blocking operation"
	}
	var hops []string
	for _, id := range path {
		hops = append(hops, shortFuncID(id))
	}
	last := g.Nodes[path[len(path)-1]]
	leaf := "channel operation"
	if last != nil && len(last.ChanOps) == 0 {
		for _, c := range last.Calls {
			if desc, ok := blockingCall(c, blockingCallees); ok {
				leaf = desc
				break
			}
		}
	}
	hops = append(hops, leaf)
	if len(hops) > 5 {
		hops = append(hops[:2], append([]string{"…"}, hops[len(hops)-2:]...)...)
	}
	return strings.Join(hops, " → ")
}

// shortFuncID strips the package path from a function ID for display:
// "pruner/internal/tuner.Tune" → "tuner.Tune".
func shortFuncID(id string) string {
	slash := strings.LastIndex(id, "/")
	return id[slash+1:]
}
