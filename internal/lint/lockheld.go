package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockHeld forbids blocking while a sync.Mutex or RWMutex is held —
// deadlock prevention by construction for the service layers. The repo's
// locks guard in-memory state (the store index, the fleet's dispatch
// stats, the job table, the metrics registry) and are meant to be held
// for nanoseconds; a measurement dispatch, an HTTP round trip, a channel
// operation, or a call into caller-supplied code inside such a critical
// section turns a worker hiccup into a frozen daemon: every other
// goroutine piles up on the mutex, including the ones that would have
// drained the blockage.
//
// Critical sections are recognized syntactically — x.Lock() / x.RLock()
// until the matching x.Unlock()/x.RUnlock() in the same statement list,
// or to the end of the list after defer x.Unlock() — and the "may this
// block" verdict for every call inside one is computed transitively
// over the module call graph, so a lock-holding function cannot launder
// a blocking operation through a helper. Calls of function-typed
// parameters and fields are flagged too: the callee is unknown at
// analysis time, which is precisely the hazard (it may well try to take
// the same lock).
var LockHeld = &Analyzer{
	Name:      "lockheld",
	Doc:       "no blocking call, channel operation, or callback into caller-supplied code while a sync mutex is held",
	RunModule: runLockHeld,
}

// lockMethods classifies the sync lock/unlock methods by function ID.
var lockMethods = map[string]string{
	"sync.Mutex.Lock":      "lock",
	"sync.RWMutex.Lock":    "lock",
	"sync.RWMutex.RLock":   "lock",
	"sync.Mutex.Unlock":    "unlock",
	"sync.RWMutex.Unlock":  "unlock",
	"sync.RWMutex.RUnlock": "unlock",
}

func runLockHeld(pass *ModulePass) error {
	g := pass.Graph

	// mayBlock: the transitive "can park this goroutine" summary. Unlike
	// ctxflow, nothing is exempt — parallel.ForEach joining its helpers
	// or lint shelling out to `go list` under a lock would be exactly
	// the bug this analyzer exists to catch.
	directlyBlocking := func(n *FuncNode) bool {
		if len(n.ChanOps) > 0 {
			return true
		}
		for _, c := range n.Calls {
			if _, ok := blockingCall(c, blockingCallees); ok {
				return true
			}
			if _, ok := blockingCall(c, waitCallees); ok {
				return true
			}
		}
		return false
	}
	mayBlock := g.Transitive(directlyBlocking, nil)

	for _, id := range g.sortedNodeIDs() {
		n := g.Nodes[id]
		checkLockRegions(pass, g, n, mayBlock, directlyBlocking)
	}
	return nil
}

// lockCall resolves a statement-level call to (mutex-expression key,
// "lock"|"unlock"); ok is false for anything else.
func lockCall(info *types.Info, stmt ast.Stmt) (key, kind string, ok bool) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
		defer func() {
			if ok && kind == "unlock" {
				kind = "defer-unlock"
			}
		}()
	}
	if call == nil {
		return "", "", false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		return "", "", false
	}
	kind, ok = lockMethods[FuncID(fn)]
	if !ok {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), kind, true
}

// checkLockRegions scans one function's statement lists for critical
// sections and reports blocking constructs inside them.
func checkLockRegions(pass *ModulePass, g *CallGraph, n *FuncNode, mayBlock map[string]bool, directlyBlocking func(*FuncNode) bool) {
	info := n.Pkg.Info

	var scanList func(stmts []ast.Stmt, inherited map[string]bool)
	scanList = func(stmts []ast.Stmt, inherited map[string]bool) {
		held := map[string]bool{}
		for k := range inherited {
			held[k] = true
		}
		for _, stmt := range stmts {
			if key, kind, ok := lockCall(info, stmt); ok {
				switch kind {
				case "lock":
					if held[key] {
						pass.Reportf(stmt.Pos(),
							"%s is locked again while already held; self-deadlock", key)
					}
					held[key] = true
				case "unlock":
					delete(held, key)
				case "defer-unlock":
					// Released only at return: the rest of this list runs
					// under the lock, which is the idiomatic pattern this
					// analyzer spends most of its time inside.
				}
				continue
			}
			if len(held) > 0 {
				reportBlockingIn(pass, g, n, stmt, held, mayBlock, directlyBlocking)
			}
			// Descend into nested statement lists so a later sibling list
			// (e.g. a case body) gets its own lock tracking, while the
			// current held set carries in.
			switch s := stmt.(type) {
			case *ast.BlockStmt:
				scanList(s.List, held)
			case *ast.IfStmt:
				scanList(s.Body.List, held)
				if alt, ok := s.Else.(*ast.BlockStmt); ok {
					scanList(alt.List, held)
				}
			case *ast.ForStmt:
				scanList(s.Body.List, held)
			case *ast.RangeStmt:
				scanList(s.Body.List, held)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scanList(cc.Body, held)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scanList(cc.Body, held)
					}
				}
			}
		}
	}
	scanList(n.Decl.Body.List, nil)
}

// reportBlockingIn flags the blocking constructs inside one statement
// known to execute with locks held. To avoid double counting, it skips
// nested statement lists (scanList descends into those itself) by
// restricting to facts positioned within the statement but outside any
// nested block — simpler: it only fires for facts inside this statement
// when the statement is NOT a block-carrying statement, plus the
// non-body parts (conditions, initializers) of block-carrying ones.
func reportBlockingIn(pass *ModulePass, g *CallGraph, n *FuncNode, stmt ast.Stmt, held map[string]bool, mayBlock map[string]bool, directlyBlocking func(*FuncNode) bool) {
	// Positions belonging to nested statement lists this scan must not
	// claim (their own scanList invocation will).
	var nested []ast.Node
	switch s := stmt.(type) {
	case *ast.BlockStmt:
		return
	case *ast.IfStmt:
		nested = append(nested, s.Body)
		if s.Else != nil {
			nested = append(nested, s.Else)
		}
	case *ast.ForStmt:
		nested = append(nested, s.Body)
	case *ast.RangeStmt:
		nested = append(nested, s.Body)
	case *ast.SwitchStmt:
		nested = append(nested, s.Body)
	case *ast.TypeSwitchStmt:
		nested = append(nested, s.Body)
	}
	inNested := func(pos token.Pos) bool {
		for _, b := range nested {
			if b.Pos() <= pos && pos < b.End() {
				return true
			}
		}
		return false
	}

	locks := heldNames(held)
	within := func(pos token.Pos) bool {
		return stmt.Pos() <= pos && pos < stmt.End() && !inNested(pos)
	}
	for _, p := range n.ChanOps {
		if within(p) {
			pass.Reportf(p, "channel operation while %s is held; a full or empty channel freezes every goroutine contending for the lock", locks)
		}
	}
	for _, c := range n.CallbackCalls {
		if within(c.Pos) {
			pass.Reportf(c.Pos, "call into caller-supplied function %s while %s is held; unknown code must not run under a lock (it may relock it)", c.CalleeID, locks)
		}
	}
	for _, c := range n.Calls {
		if !within(c.Pos) {
			continue
		}
		if desc, ok := blockingCall(c, blockingCallees); ok {
			pass.Reportf(c.Pos, "blocking call %s while %s is held", desc, locks)
			continue
		}
		if desc, ok := blockingCall(c, waitCallees); ok {
			pass.Reportf(c.Pos, "blocking call %s while %s is held", desc, locks)
			continue
		}
		if mayBlock[c.CalleeID] {
			path := g.PathTo(c.CalleeID, directlyBlocking, nil)
			pass.Reportf(c.Pos, "call to %s while %s is held; it can block (%s)",
				shortFuncID(c.CalleeID), locks, describeBlockingPath(g, path))
		}
	}
}

// heldNames renders the held mutex set for messages.
func heldNames(held map[string]bool) string {
	var names []string
	for k := range held {
		names = append(names, k)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}
