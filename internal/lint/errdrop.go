package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrDrop forbids silently discarded error returns inside internal/...:
// a call used as a bare statement whose callee returns an error. The
// failure mode this guards is concrete for a tuning service — a dropped
// store write error means measured records vanish and the cost model
// silently trains on less data than the experiment log claims. Explicit
// discards (`_ = f()`) stay legal: they are visible in review and
// greppable, which is the entire ask.
//
// Print-family calls on in-memory writers are exempt by callee — fmt
// printing, strings.Builder and bytes.Buffer writes return errors only
// to satisfy interfaces and are documented never to fail. A deferred
// Close is likewise exempt: the idiom is cleanup on a path that already
// has an error in flight.
var ErrDrop = &Analyzer{
	Name: "errdrop",
	Doc:  "no silently discarded error returns in internal packages; discard explicitly with _ = or handle it",
	Run:  runErrDrop,
}

// errDropExempt lists callees (by FuncID) whose error returns exist to
// satisfy io interfaces and are documented never to fail in-memory.
var errDropExempt = map[string]bool{
	"fmt.Print":    true,
	"fmt.Printf":   true,
	"fmt.Println":  true,
	"fmt.Fprint":   true,
	"fmt.Fprintf":  true,
	"fmt.Fprintln": true,

	"strings.Builder.Write":       true,
	"strings.Builder.WriteString": true,
	"strings.Builder.WriteByte":   true,
	"strings.Builder.WriteRune":   true,
	"bytes.Buffer.Write":          true,
	"bytes.Buffer.WriteString":    true,
	"bytes.Buffer.WriteByte":      true,
	"bytes.Buffer.WriteRune":      true,
}

func runErrDrop(pass *Pass) error {
	if !strings.Contains(pass.Pkg.Path(), "/internal/") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(s.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				checkDroppedErr(pass, call, false)
			case *ast.DeferStmt:
				checkDroppedErr(pass, s.Call, true)
				return false // the deferred call itself is the statement
			case *ast.GoStmt:
				checkDroppedErr(pass, s.Call, false)
				return false
			}
			return true
		})
	}
	return nil
}

// checkDroppedErr reports a statement-position call that returns an
// error nobody looks at.
func checkDroppedErr(pass *Pass, call *ast.CallExpr, deferred bool) {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok || !returnsError(tv.Type) {
		return
	}
	fn := calleeFunc(pass.TypesInfo, call)
	name := "function value"
	if fn != nil {
		id := FuncID(fn)
		if errDropExempt[id] {
			return
		}
		if deferred && fn.Name() == "Close" {
			return
		}
		name = shortFuncID(id)
	}
	pass.Reportf(call.Pos(),
		"error returned by %s is silently dropped; handle it or discard explicitly with _ =", name)
}

// returnsError reports whether a call's result type includes error.
func returnsError(t types.Type) bool {
	if t == nil {
		return false
	}
	if tuple, ok := t.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if isErrorType(tuple.At(i).Type()) {
				return true
			}
		}
		return false
	}
	return isErrorType(t)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj() == types.Universe.Lookup("error")
}
