package lint

// The wire.lock file format: a plain-text, diff-friendly golden of the
// module's wire schema, written and checked by the wireshape analyzer.
// The store's JSONL segments, the fleet wire format, the HTTP/SSE API,
// and the gob model bundles are durability contracts — old records
// must stay readable across versions — so the schema of every type
// that reaches an encoder is locked in a checked-in file, reviewed
// like code, and regenerated only deliberately (pruner-vet
// -write-wire, `make wire-lock`).
//
// Grammar (one schema entry per type, types sorted by qualified ID):
//
//	# comment
//	type <pkgpath.TypeName> <encoding>[,<encoding>]
//		field <GoName> wire=<wireName> [omitempty] type=<Go type ...>
//
// The type string extends to the end of the line (Go type syntax can
// contain spaces); every other token is whitespace-delimited. Parse is
// total over arbitrary bytes (it returns errors, never panics) and
// Format∘Parse is a fixed point on anything Format emits — both
// properties are pinned by FuzzWireLockParse.

import (
	"fmt"
	"sort"
	"strings"
)

// A WireSchema is the locked wire surface: every module type that
// transitively reaches a json/gob encoder, with its field layout.
type WireSchema struct {
	Types []WireType // sorted by ID
}

// A WireType is one struct's canonical wire shape.
type WireType struct {
	ID        string   // qualified "pkgpath.TypeName"
	Encodings []string // sorted subset of {"gob", "json"}
	Fields    []WireField
}

// A WireField is one exported struct field as it appears on the wire.
type WireField struct {
	Name      string // Go field name
	Wire      string // wire name: json tag when present, Go name otherwise
	OmitEmpty bool
	Type      string // Go type, package-path qualified
}

// Type returns the schema entry with the given qualified ID, or nil.
func (s *WireSchema) Type(id string) *WireType {
	for i := range s.Types {
		if s.Types[i].ID == id {
			return &s.Types[i]
		}
	}
	return nil
}

// wireLockHeader is emitted verbatim at the top of every lock file.
const wireLockHeader = `# wire.lock — canonical schema of every type that reaches a wire
# encoder (encoding/json, encoding/gob), extracted statically by the
# wireshape analyzer. Breaking drift (removed/renamed fields, type
# changes) fails make wire-check; regenerate deliberately with
# make wire-lock after review. See API.md "Wire compatibility".
`

// FormatWireLock renders a schema in canonical form: header, types
// sorted by ID, encodings sorted, fields in declaration order.
func FormatWireLock(s *WireSchema) []byte {
	var b strings.Builder
	b.WriteString(wireLockHeader)
	typesSorted := append([]WireType(nil), s.Types...)
	sort.Slice(typesSorted, func(i, j int) bool { return typesSorted[i].ID < typesSorted[j].ID })
	for _, t := range typesSorted {
		encs := normalizeEncodings(t.Encodings)
		fmt.Fprintf(&b, "\ntype %s %s\n", t.ID, strings.Join(encs, ","))
		for _, f := range t.Fields {
			b.WriteString("\tfield " + f.Name + " wire=" + f.Wire)
			if f.OmitEmpty {
				b.WriteString(" omitempty")
			}
			b.WriteString(" type=" + f.Type + "\n")
		}
	}
	return []byte(b.String())
}

// normalizeEncodings sorts and dedupes an encoding list.
func normalizeEncodings(encs []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range encs {
		if !seen[e] {
			seen[e] = true
			out = append(out, e)
		}
	}
	sort.Strings(out)
	return out
}

// ParseWireLock parses lock-file bytes. It is total: malformed input
// yields an error, never a panic. Encoding lists are normalized, so
// formatting a successfully parsed file is a fixed point.
func ParseWireLock(data []byte) (*WireSchema, error) {
	s := &WireSchema{}
	var cur *WireType
	seenTypes := map[string]bool{}
	for lineNo, raw := range strings.Split(string(data), "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		switch {
		case strings.HasPrefix(line, "type "):
			toks := strings.Fields(line)
			if len(toks) != 3 {
				return nil, fmt.Errorf("wire.lock:%d: want `type <id> <encodings>`, got %q", lineNo+1, line)
			}
			id := toks[1]
			if seenTypes[id] {
				return nil, fmt.Errorf("wire.lock:%d: duplicate type %q", lineNo+1, id)
			}
			seenTypes[id] = true
			var encs []string
			for _, e := range strings.Split(toks[2], ",") {
				if e != "json" && e != "gob" {
					return nil, fmt.Errorf("wire.lock:%d: unknown encoding %q", lineNo+1, e)
				}
				encs = append(encs, e)
			}
			s.Types = append(s.Types, WireType{ID: id, Encodings: normalizeEncodings(encs)})
			cur = &s.Types[len(s.Types)-1]
		case strings.HasPrefix(line, "field "):
			if cur == nil {
				return nil, fmt.Errorf("wire.lock:%d: field line before any type line", lineNo+1)
			}
			typeIdx := strings.Index(line, " type=")
			if typeIdx < 0 {
				return nil, fmt.Errorf("wire.lock:%d: field line without type=", lineNo+1)
			}
			typeStr := strings.TrimSpace(line[typeIdx+len(" type="):])
			if typeStr == "" {
				return nil, fmt.Errorf("wire.lock:%d: empty field type", lineNo+1)
			}
			toks := strings.Fields(line[:typeIdx])
			if len(toks) < 3 || len(toks) > 4 {
				return nil, fmt.Errorf("wire.lock:%d: want `field <name> wire=<w> [omitempty] type=<t>`, got %q", lineNo+1, line)
			}
			name := toks[1]
			if !strings.HasPrefix(toks[2], "wire=") {
				return nil, fmt.Errorf("wire.lock:%d: missing wire= on field %q", lineNo+1, name)
			}
			wire := toks[2][len("wire="):]
			if name == "" || wire == "" {
				return nil, fmt.Errorf("wire.lock:%d: empty field or wire name", lineNo+1)
			}
			omit := false
			if len(toks) == 4 {
				if toks[3] != "omitempty" {
					return nil, fmt.Errorf("wire.lock:%d: unexpected token %q", lineNo+1, toks[3])
				}
				omit = true
			}
			for _, f := range cur.Fields {
				if f.Name == name {
					return nil, fmt.Errorf("wire.lock:%d: duplicate field %q in %s", lineNo+1, name, cur.ID)
				}
			}
			cur.Fields = append(cur.Fields, WireField{Name: name, Wire: wire, OmitEmpty: omit, Type: typeStr})
		default:
			return nil, fmt.Errorf("wire.lock:%d: unrecognized line %q", lineNo+1, line)
		}
	}
	return s, nil
}

// A wireDiff is one difference between the locked and the live schema.
type wireDiff struct {
	TypeID   string
	Field    string // "" for type-level diffs
	Breaking bool   // false: additive, reported as a notice
	Message  string
}

// diffWireSchemas compares the locked (old) schema against the live
// one. Removals, renames, and type changes are breaking; new types,
// new fields, encoding gains, and omitempty toggles are additive.
func diffWireSchemas(locked, live *WireSchema) []wireDiff {
	var diffs []wireDiff
	for _, lt := range locked.Types {
		cur := live.Type(lt.ID)
		if cur == nil {
			diffs = append(diffs, wireDiff{TypeID: lt.ID, Breaking: true,
				Message: fmt.Sprintf("wire type %s is locked but no longer reaches an encoder; stored data of this shape would be orphaned (regenerate with -write-wire if intended)", lt.ID)})
			continue
		}
		lockedEnc := map[string]bool{}
		for _, e := range lt.Encodings {
			lockedEnc[e] = true
		}
		liveEnc := map[string]bool{}
		for _, e := range cur.Encodings {
			liveEnc[e] = true
		}
		for _, e := range lt.Encodings {
			if !liveEnc[e] {
				diffs = append(diffs, wireDiff{TypeID: lt.ID, Breaking: true,
					Message: fmt.Sprintf("%s no longer reaches a %s encoder (locked encodings %s); regenerate with -write-wire if intended", lt.ID, e, strings.Join(lt.Encodings, ","))})
			}
		}
		for _, e := range cur.Encodings {
			if !lockedEnc[e] {
				diffs = append(diffs, wireDiff{TypeID: lt.ID,
					Message: fmt.Sprintf("%s now also reaches a %s encoder (additive; regenerate wire.lock to record it)", lt.ID, e)})
			}
		}
		liveFields := map[string]WireField{}
		for _, f := range cur.Fields {
			liveFields[f.Name] = f
		}
		lockedFields := map[string]WireField{}
		for _, lf := range lt.Fields {
			lockedFields[lf.Name] = lf
			f, ok := liveFields[lf.Name]
			if !ok {
				diffs = append(diffs, wireDiff{TypeID: lt.ID, Field: lf.Name, Breaking: true,
					Message: fmt.Sprintf("%s: field %s (wire %q) was removed or renamed — breaking for stored records and clients; regenerate with -write-wire if intended", lt.ID, lf.Name, lf.Wire)})
				continue
			}
			if f.Wire != lf.Wire {
				diffs = append(diffs, wireDiff{TypeID: lt.ID, Field: lf.Name, Breaking: true,
					Message: fmt.Sprintf("%s: field %s wire name changed %q -> %q — breaking for stored records and clients; regenerate with -write-wire if intended", lt.ID, lf.Name, lf.Wire, f.Wire)})
			}
			if f.Type != lf.Type {
				diffs = append(diffs, wireDiff{TypeID: lt.ID, Field: lf.Name, Breaking: true,
					Message: fmt.Sprintf("%s: field %s type changed %s -> %s — breaking for stored records and clients; regenerate with -write-wire if intended", lt.ID, lf.Name, lf.Type, f.Type)})
			}
			if f.OmitEmpty != lf.OmitEmpty {
				diffs = append(diffs, wireDiff{TypeID: lt.ID, Field: lf.Name,
					Message: fmt.Sprintf("%s: field %s omitempty changed %v -> %v (additive; regenerate wire.lock to record it)", lt.ID, lf.Name, lf.OmitEmpty, f.OmitEmpty)})
			}
		}
		for _, f := range cur.Fields {
			if _, ok := lockedFields[f.Name]; !ok {
				diffs = append(diffs, wireDiff{TypeID: lt.ID, Field: f.Name,
					Message: fmt.Sprintf("%s: new wire field %s (wire %q) is not in wire.lock (additive; regenerate wire.lock to record it)", lt.ID, f.Name, f.Wire)})
			}
		}
	}
	for _, t := range live.Types {
		if locked.Type(t.ID) == nil {
			diffs = append(diffs, wireDiff{TypeID: t.ID,
				Message: fmt.Sprintf("new wire type %s is not in wire.lock (additive; regenerate wire.lock to record it)", t.ID)})
		}
	}
	return diffs
}
