package lint

// Exhaust keeps switches over the module's enum-like const sets honest.
// The repo leans on "stringly-typed with a blessed const set" enums —
// model kinds, tuning methods, job lifecycle states, measurer kinds,
// op kinds — and a switch that silently falls through when a new
// constant is added is exactly how a new model kind ships without a
// pretrained mapping or a new job state escapes the metrics gauge. The
// rule: a switch whose tag is a module-defined named type with a basic
// underlying and at least two package-level constants must either
// cover every declared constant or carry an explicit default clause
// (the author's signature that fallthrough is intended).

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var Exhaust = &Analyzer{
	Name: "exhaust",
	Doc:  "switches over enum-like const sets must be exhaustive or carry an explicit default",
	Run:  runExhaust,
}

func runExhaust(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(x ast.Node) bool {
			sw, ok := x.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			checkSwitchExhaustive(pass, sw)
			return true
		})
	}
	return nil
}

func checkSwitchExhaustive(pass *Pass, sw *ast.SwitchStmt) {
	tv, ok := pass.TypesInfo.Types[sw.Tag]
	if !ok {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !sameModule(obj.Pkg().Path(), pass.Pkg.Path()) {
		return
	}
	basic, ok := named.Underlying().(*types.Basic)
	if !ok || basic.Info()&types.IsBoolean != 0 {
		return
	}
	consts := enumConsts(pass, obj.Pkg(), named)
	if len(consts) < 2 {
		return // one constant is a sentinel, not an enum
	}

	var caseVals []constant.Value
	for _, cl := range sw.Body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // explicit default: the author signed off on fallthrough
		}
		for _, e := range cc.List {
			v, ok := pass.TypesInfo.Types[e]
			if !ok || v.Value == nil {
				return // non-constant case: coverage is dynamic, stay silent
			}
			caseVals = append(caseVals, v.Value)
		}
	}

	var missing []string
	for _, c := range consts {
		covered := false
		for _, v := range caseVals {
			if constant.Compare(c.Val(), token.EQL, v) {
				covered = true
				break
			}
		}
		if !covered {
			missing = append(missing, c.Name())
		}
	}
	if len(missing) > 0 {
		pass.Reportf(sw.Pos(),
			"switch on %s is not exhaustive: missing %s (add the cases or an explicit default)",
			types.TypeString(named, func(p *types.Package) string { return p.Path() }),
			strings.Join(missing, ", "))
	}
}

// enumConsts returns the package-level constants of exactly the named
// type, sorted by name. For the package under analysis its own scope is
// used (unexported constants included); for sibling module packages the
// exported surface from export data is what a foreign switch could name
// anyway.
func enumConsts(pass *Pass, declPkg *types.Package, named *types.Named) []*types.Const {
	scope := declPkg.Scope()
	if declPkg.Path() == pass.Pkg.Path() {
		scope = pass.Pkg.Scope()
	}
	var out []*types.Const
	for _, name := range scope.Names() {
		if c, ok := scope.Lookup(name).(*types.Const); ok && types.Identical(c.Type(), named) {
			out = append(out, c)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out
}

// sameModule reports whether two import paths share a module, judged by
// first path segment — exact enough for a single-module tree and for
// the fixture harness, and it keeps stdlib enum types (reflect.Kind,
// token.Token) out of scope.
func sameModule(a, b string) bool {
	return firstSegment(a) == firstSegment(b)
}

func firstSegment(path string) string {
	if i := strings.IndexByte(path, '/'); i >= 0 {
		return path[:i]
	}
	return path
}
