package lint

// ClockTaint machine-checks the PR 7 clock rule: wall-clock readings —
// obs.Clock.Now, time.Now/Since/Until — exist so the daemon can meter
// itself, and they may flow into obs instruments, spans, logs, and the
// SSE round stamp at the serving boundary. They must never flow into a
// Result, a measurement record, a convergence curve, or anything else
// the determinism fingerprint covers: a single laundered time.Since
// would make results differ across machines while every test still
// passes locally. The rule used to rest on one golden-fingerprint test
// and review; this analyzer enforces it as dataflow — taint starts at
// clock reads, propagates through locals, returns, and helper
// parameters (dataflow.go), and must not reach a write into one of the
// fingerprinted sink types.

import (
	"go/ast"
	"go/types"
	"strings"
)

var ClockTaint = &Analyzer{
	Name:      "clocktaint",
	Doc:       "clock readings must not flow into results, records, curves, or fingerprinted values",
	RunModule: runClockTaint,
}

// clockSource classifies taint origins by callee ID: the stdlib clock
// and any Clock.Now method (pruner/internal/obs.Clock and the fixture
// clock alike).
func clockSource(id string) bool {
	switch id {
	case "time.Now", "time.Since", "time.Until":
		return true
	}
	return strings.HasSuffix(id, ".Clock.Now") || strings.HasSuffix(id, "obs.realClock.Now")
}

// clockSinkTypes are the fingerprinted value types, matched by the
// "pkg.Type" suffix of the fully-qualified name so the fixture package
// exercises the same table the module runs under.
var clockSinkTypes = []string{
	"tuner.Result", "tuner.CurvePoint", "tuner.BestEntry", "tuner.ProgressEvent",
	"costmodel.Record", "costmodel.FitReport",
	"simulator.Result", "simulator.Clock",
	"measure.recordJSON",
	"server.JobResult", "server.CurveView", "server.BestView", "server.jobView",
	"schedule.Schedule",
}

// clockSinkType resolves t (pointers dereferenced) to a sink type's
// qualified name, or "".
func clockSinkType(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return ""
	}
	full := named.Obj().Pkg().Path() + "." + named.Obj().Name()
	for _, s := range clockSinkTypes {
		if full == s || strings.HasSuffix(full, "/"+s) {
			return full
		}
	}
	return ""
}

// clockExempt marks the packages allowed to consume clock readings
// freely: the obs layer (it *is* the instrument plumbing), main
// packages (the CLI/serving boundary owns its log stamps), and the
// lint tool itself.
func clockExempt(pkg *LoadedPackage) bool {
	return mainOrTestPkg(pkg) ||
		strings.HasSuffix(pkg.ImportPath, "internal/obs") ||
		strings.HasSuffix(pkg.ImportPath, "internal/lint")
}

func runClockTaint(pass *ModulePass) error {
	g := pass.Graph

	// Interprocedural summaries over the whole module — exempt packages
	// included, so a clock value laundered *through* them is still seen.
	returns := taintReturnSummaries(g, clockSource)
	callTaints := func(id string) bool { return clockSource(id) || returns[id] }

	// Parameter-flow summaries: parameter i of f is a sink conduit when
	// a value passed there may be stored into a sink-typed field.
	flows := computeParamFlows(g, callTaints, func(ft *funcTaint, n *FuncNode, pf paramFlow) bool {
		hit := false
		clockSinkWrites(ft, func(sink, field string, pos ast.Node) { hit = true })
		if hit {
			return true
		}
		ft.forEachCall(func(call *ast.CallExpr, calleeID string) {
			if hit {
				return
			}
			for i, arg := range call.Args {
				if pf.flows(calleeID, i) && ft.exprTainted(arg) {
					hit = true
					return
				}
			}
		})
		return hit
	})

	for _, id := range g.sortedNodeIDs() {
		n := g.Nodes[id]
		if clockExempt(n.Pkg) {
			continue
		}
		ft := newFuncTaint(n, nil, callTaints)
		clockSinkWrites(ft, func(sink, field string, at ast.Node) {
			pass.Reportf(at.Pos(),
				"clock-derived value flows into %s.%s; clock readings may only feed obs instruments or serving-boundary stamps (DESIGN.md §13)",
				sink, field)
		})
		ft.forEachCall(func(call *ast.CallExpr, calleeID string) {
			for i, arg := range call.Args {
				if flows.flows(calleeID, i) && ft.exprTainted(arg) {
					pass.Reportf(arg.Pos(),
						"clock-derived value reaches %s parameter %q, which stores it into a fingerprinted type; clock readings may only feed obs instruments or serving-boundary stamps",
						calleeID, paramName(g, calleeID, i))
				}
			}
		})
	}
	return nil
}

// clockSinkWrites invokes found for every program point of the solved
// function where a tainted value is stored into a sink type: a field
// assignment whose base is sink-typed, or a composite literal of a sink
// type with a tainted element.
func clockSinkWrites(ft *funcTaint, found func(sink, field string, at ast.Node)) {
	info := ft.info
	ast.Inspect(ft.node.Decl.Body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.AssignStmt:
			for i, l := range v.Lhs {
				sel, ok := ast.Unparen(l).(*ast.SelectorExpr)
				if !ok {
					continue
				}
				tv, ok := info.Types[sel.X]
				if !ok {
					continue
				}
				sink := clockSinkType(tv.Type)
				if sink == "" {
					continue
				}
				var rhs ast.Expr
				if len(v.Rhs) == 1 && len(v.Lhs) > 1 {
					rhs = v.Rhs[0]
				} else if i < len(v.Rhs) {
					rhs = v.Rhs[i]
				}
				if rhs != nil && ft.exprTainted(rhs) {
					found(sink, sel.Sel.Name, rhs)
				}
			}
		case *ast.CompositeLit:
			tv, ok := info.Types[v]
			if !ok {
				return true
			}
			sink := clockSinkType(tv.Type)
			if sink == "" {
				return true
			}
			st, ok := structOf(tv.Type)
			if !ok {
				return true
			}
			for i, el := range v.Elts {
				name := ""
				val := el
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if k, ok := kv.Key.(*ast.Ident); ok {
						name = k.Name
					}
					val = kv.Value
				} else if i < st.NumFields() {
					name = st.Field(i).Name()
				}
				if ft.exprTainted(val) {
					found(sink, name, val)
				}
			}
		}
		return true
	})
}

// structOf resolves t (pointers dereferenced) to its struct underlying.
func structOf(t types.Type) (*types.Struct, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// paramName renders the name of callee's i-th parameter for messages.
func paramName(g *CallGraph, calleeID string, i int) string {
	n := g.Nodes[calleeID]
	if n == nil {
		return "?"
	}
	params := paramObjects(n.Pkg.Info, n.Decl)
	if i < len(params) && params[i] != nil {
		return params[i].Name()
	}
	return "?"
}
