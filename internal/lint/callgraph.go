package lint

// The whole-module static call graph behind the second-generation
// analyzers (ctxflow, lockheld, hotalloc). PR 6's checks were
// single-function and syntactic; the contracts added here — "everything
// that can block carries a context", "nothing blocks while a mutex is
// held", "nothing on a hot path allocates" — are properties of call
// *chains*, so they need reachability over the module, not pattern
// matches inside one body.
//
// The graph stays stdlib-only like the loader: nodes are the module's
// own function and method declarations, edges are statically resolvable
// calls (package functions, concrete and interface method calls), and
// function literals are tracked by attribution — a literal's calls and
// channel operations belong to the declared function that encloses it,
// which soundly covers the repo's dominant literal idioms (pool
// callbacks, pipelined-round goroutines, tape closures). Calls through
// function-typed values are recorded separately as callback sites: the
// callee is unknown at analysis time, which is exactly the property
// lockheld needs to flag them under a held lock.
//
// Because each package is type-checked against export data, the same
// function is represented by distinct *types.Func objects in different
// packages' universes. Nodes and edges therefore key on a stable
// printable ID — "pkgpath.Func" or "pkgpath.Recv.Method" with pointer
// receivers normalized away — so cross-package edges resolve exactly.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// FuncID returns the stable cross-package identifier of a function or
// method: "path/to/pkg.Name" for package functions,
// "path/to/pkg.Recv.Name" for methods (pointer receivers normalized to
// their element type, so (*T).M and T.M collide intentionally —
// contracts do not distinguish them). Interface methods use the
// interface's own named type as the receiver.
func FuncID(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, isPtr := t.(*types.Pointer); isPtr {
			t = p.Elem()
		}
		if named, isNamed := t.(*types.Named); isNamed && named.Obj().Pkg() != nil {
			return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + fn.Name()
		}
		return t.String() + "." + fn.Name()
	}
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Path() + "." + fn.Name()
}

// A CallSite is one statically resolved call inside a function body.
type CallSite struct {
	CalleeID string
	Pos      token.Pos
}

// A FuncNode is one declared function or method of the module, with the
// body facts the contract analyzers consume. Function literals inside
// the body are attributed to it.
type FuncNode struct {
	ID   string
	Decl *ast.FuncDecl
	Pkg  *LoadedPackage

	// Calls holds every statically resolved call — module-local and
	// imported alike; traversals restrict to module nodes by lookup.
	Calls []CallSite
	// ChanOps are blocking channel operations: sends, receives, ranges
	// over channels, and selects without a default clause. A send or
	// receive that is the communication of a select *with* a default is
	// non-blocking by construction and is not recorded.
	ChanOps []token.Pos
	// CallbackCalls are calls through function-typed values the function
	// did not define itself — parameters and struct fields — i.e. calls
	// into caller-supplied code.
	CallbackCalls []CallSite
	// HasCtx reports whether a context reaches the function: a
	// context.Context parameter, a parameter or receiver whose struct
	// type carries a context.Context field (the Options / search.Context
	// idiom), or an *http.Request (context via r.Context()).
	HasCtx bool
	// Hot marks a //pruner:hotpath annotation on the declaration.
	Hot bool
}

// A CallGraph indexes the module's declared functions by ID.
type CallGraph struct {
	Nodes map[string]*FuncNode
}

// hotPathDirective marks a function as a hot-path root for the hotalloc
// analyzer: everything reachable from it must stay allocation-free.
const hotPathDirective = "pruner:hotpath"

// BuildCallGraph walks every declaration of the loaded packages once and
// assembles the module call graph.
func BuildCallGraph(pkgs []*LoadedPackage) *CallGraph {
	g := &CallGraph{Nodes: make(map[string]*FuncNode)}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			hotLines := hotDirectiveLines(pkg.Fset, f)
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &FuncNode{ID: FuncID(obj), Decl: fd, Pkg: pkg}
				n.HasCtx = declHasCtx(pkg.Info, fd)
				pos := pkg.Fset.Position(fd.Pos())
				n.Hot = hotLines[pos.Line] || hotLines[pos.Line-1]
				collectBodyFacts(pkg.Info, fd, n)
				g.Nodes[n.ID] = n
			}
		}
	}
	return g
}

// hotDirectiveLines returns the line numbers carrying //pruner:hotpath
// comments in one file, so an annotation is honored whether it sits in
// the doc comment block or on the line directly above the declaration.
func hotDirectiveLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := map[int]bool{}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//"+hotPathDirective) {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

// isCtxType reports whether t is context.Context.
func isCtxType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == "context" && named.Obj().Name() == "Context"
}

// carriesCtx reports whether a parameter of type t gives the function a
// context to forward: the context itself, a struct (or pointer to one)
// with a context.Context field, or an *http.Request.
func carriesCtx(t types.Type) bool {
	if isCtxType(t) {
		return true
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		if named.Obj().Pkg() != nil && named.Obj().Pkg().Path() == "net/http" && named.Obj().Name() == "Request" {
			return true
		}
		t = named.Underlying()
	}
	st, ok := t.(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < st.NumFields(); i++ {
		if isCtxType(st.Field(i).Type()) {
			return true
		}
	}
	return false
}

// declHasCtx checks the declaration's receiver and parameters for a
// context (see carriesCtx).
func declHasCtx(info *types.Info, fd *ast.FuncDecl) bool {
	check := func(fl *ast.FieldList) bool {
		if fl == nil {
			return false
		}
		for _, field := range fl.List {
			if tv, ok := info.Types[field.Type]; ok && carriesCtx(tv.Type) {
				return true
			}
		}
		return false
	}
	return check(fd.Recv) || check(fd.Type.Params)
}

// calleeFunc statically resolves a call expression to the function or
// method object it invokes — package functions, concrete methods, and
// interface methods alike. Calls of function-typed values and type
// conversions resolve to nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// callbackTarget classifies a call of a function-typed value: it returns
// a printable description when the value is caller-supplied (a parameter
// of the enclosing declaration or a struct field) and "" otherwise.
// Locally defined literals are not callbacks — their bodies are already
// attributed to the enclosing function.
func callbackTarget(info *types.Info, call *ast.CallExpr, params map[types.Object]bool) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if v, ok := info.Uses[fun].(*types.Var); ok {
			if _, sig := v.Type().Underlying().(*types.Signature); !sig {
				return ""
			}
			if v.IsField() || params[v] {
				return fun.Name
			}
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if v, ok := sel.Obj().(*types.Var); ok && v.IsField() {
				if _, sig := v.Type().Underlying().(*types.Signature); sig {
					return v.Name()
				}
			}
		}
	}
	return ""
}

// collectBodyFacts walks one declaration body — literals included, select
// communications handled for blocking semantics — and fills the node's
// call, channel-op, and callback lists.
func collectBodyFacts(info *types.Info, fd *ast.FuncDecl, n *FuncNode) {
	params := map[types.Object]bool{}
	addParams := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := info.Defs[name]; obj != nil {
					params[obj] = true
				}
			}
		}
	}
	addParams(fd.Type.Params)

	var walk func(node ast.Node, nonBlockingComm map[ast.Node]bool)
	walk = func(node ast.Node, nonBlockingComm map[ast.Node]bool) {
		ast.Inspect(node, func(x ast.Node) bool {
			switch v := x.(type) {
			case *ast.CallExpr:
				if tv, ok := info.Types[v.Fun]; ok && tv.IsType() {
					return true // conversion, not a call
				}
				if fn := calleeFunc(info, v); fn != nil {
					n.Calls = append(n.Calls, CallSite{CalleeID: FuncID(fn), Pos: v.Pos()})
				} else if cb := callbackTarget(info, v, params); cb != "" {
					n.CallbackCalls = append(n.CallbackCalls, CallSite{CalleeID: cb, Pos: v.Pos()})
				}
			case *ast.SendStmt:
				if !nonBlockingComm[x] {
					n.ChanOps = append(n.ChanOps, v.Pos())
				}
			case *ast.UnaryExpr:
				if v.Op == token.ARROW && !nonBlockingComm[x] {
					n.ChanOps = append(n.ChanOps, v.Pos())
				}
			case *ast.RangeStmt:
				if tv, ok := info.Types[v.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						n.ChanOps = append(n.ChanOps, v.Pos())
					}
				}
			case *ast.SelectStmt:
				hasDefault := false
				for _, cl := range v.Body.List {
					if cc, ok := cl.(*ast.CommClause); ok && cc.Comm == nil {
						hasDefault = true
					}
				}
				if !hasDefault {
					n.ChanOps = append(n.ChanOps, v.Pos())
				}
				// The communications themselves take the select's blocking
				// semantics: mark them so the generic cases above skip them
				// when a default clause makes the whole select a poll.
				nb := nonBlockingComm
				if hasDefault {
					nb = map[ast.Node]bool{}
					for k := range nonBlockingComm {
						nb[k] = true
					}
					for _, cl := range v.Body.List {
						if cc, ok := cl.(*ast.CommClause); ok && cc.Comm != nil {
							markComm(cc.Comm, nb)
						}
					}
				}
				for _, cl := range v.Body.List {
					walk(cl, nb)
				}
				return false
			}
			return true
		})
	}
	walk(fd.Body, map[ast.Node]bool{})
}

// markComm records a select communication statement's send/receive nodes.
func markComm(comm ast.Stmt, set map[ast.Node]bool) {
	switch s := comm.(type) {
	case *ast.SendStmt:
		set[s] = true
	case *ast.ExprStmt:
		if u, ok := ast.Unparen(s.X).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
			set[u] = true
		}
	case *ast.AssignStmt:
		for _, r := range s.Rhs {
			if u, ok := ast.Unparen(r).(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				set[u] = true
			}
		}
	}
}

// Transitive computes the set of module functions for which direct holds
// or that reach such a function through module-local calls, excluding
// functions (and call targets) for which skip holds. It is the shared
// fixed-point behind "reaches a blocking operation" and friends.
func (g *CallGraph) Transitive(direct func(*FuncNode) bool, skip func(*FuncNode) bool) map[string]bool {
	result := map[string]bool{}
	ids := g.sortedNodeIDs()
	for _, id := range ids {
		n := g.Nodes[id]
		if (skip == nil || !skip(n)) && direct(n) {
			result[id] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			n := g.Nodes[id]
			if result[id] || (skip != nil && skip(n)) {
				continue
			}
			for _, c := range n.Calls {
				callee := g.Nodes[c.CalleeID]
				if callee == nil || (skip != nil && skip(callee)) {
					continue
				}
				if result[c.CalleeID] {
					result[id] = true
					changed = true
					break
				}
			}
		}
	}
	return result
}

// ReachableFrom returns every module function reachable from the given
// root IDs (roots included) through module-local calls.
func (g *CallGraph) ReachableFrom(roots []string) map[string]bool {
	seen := map[string]bool{}
	stack := append([]string(nil), roots...)
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if seen[id] || g.Nodes[id] == nil {
			continue
		}
		seen[id] = true
		for _, c := range g.Nodes[id].Calls {
			if g.Nodes[c.CalleeID] != nil && !seen[c.CalleeID] {
				stack = append(stack, c.CalleeID)
			}
		}
	}
	return seen
}

// PathTo returns one shortest module-local call path from the function to
// a node satisfying direct — the explanation attached to reachability
// diagnostics ("Tune → plan → Measurer.Measure"). The final element is
// the direct node's ID; a nil return means no path exists.
func (g *CallGraph) PathTo(from string, direct func(*FuncNode) bool, skip func(*FuncNode) bool) []string {
	type item struct {
		id   string
		prev *item
	}
	start := g.Nodes[from]
	if start == nil {
		return nil
	}
	unwind := func(it *item) []string {
		var path []string
		for ; it != nil; it = it.prev {
			path = append(path, it.id)
		}
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		return path
	}
	queue := []*item{{id: from}}
	visited := map[string]bool{from: true}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		n := g.Nodes[it.id]
		if n == nil || (skip != nil && skip(n)) {
			continue
		}
		if direct(n) {
			return unwind(it)
		}
		// Deterministic expansion order: call sites in source order.
		for _, c := range n.Calls {
			if !visited[c.CalleeID] && g.Nodes[c.CalleeID] != nil {
				visited[c.CalleeID] = true
				queue = append(queue, &item{id: c.CalleeID, prev: it})
			}
		}
	}
	return nil
}

// sortedNodeIDs returns the graph's node IDs in stable order, for
// deterministic analyzer traversals.
func (g *CallGraph) sortedNodeIDs() []string {
	ids := make([]string, 0, len(g.Nodes))
	for id := range g.Nodes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
