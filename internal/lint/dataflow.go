package lint

// The def-use dataflow layer behind the third analyzer generation
// (wireshape, clocktaint). The PR 8 call graph answers "who calls
// whom"; the contracts added here need to know where *values* travel —
// does a clock reading end up inside a Result, does a struct handed to
// a helper end up inside json.Marshal. Both questions reduce to the
// same machinery: an intraprocedural may-taint analysis over def-use
// chains (go/types object identity, iterated to a fixed point over the
// body's assignments), composed interprocedurally through two kinds of
// per-function summaries on the call graph —
//
//   - return summaries: "a call to f yields a tainted value"
//     (taintReturnSummaries), and
//   - parameter-flow summaries: "a value passed at parameter i of f
//     reaches the analyzer's sink" (computeParamFlows),
//
// each its own fixed point over the module, so taint laundered through
// any chain of helpers is still seen. The analysis is deliberately
// may-alias-free and flow-insensitive inside a body: taint only grows,
// which keeps it sound for the "never flows" contracts it backs and
// cheap enough to run on every `make lint`.

import (
	"go/ast"
	"go/types"
)

// funcTaint is one intraprocedural may-taint solution: the set of local
// objects of a single declaration (literals included — captured
// variables are shared objects) that may carry a tainted value, given
// seed objects and a verdict for calls whose result is tainted.
type funcTaint struct {
	node       *FuncNode
	info       *types.Info
	callTaints func(calleeID string) bool
	tainted    map[types.Object]bool
}

// newFuncTaint seeds and solves the taint state for one function.
func newFuncTaint(n *FuncNode, seeds []types.Object, callTaints func(string) bool) *funcTaint {
	ft := &funcTaint{
		node:       n,
		info:       n.Pkg.Info,
		callTaints: callTaints,
		tainted:    map[types.Object]bool{},
	}
	for _, s := range seeds {
		ft.tainted[s] = true
	}
	ft.solve()
	return ft
}

// solve iterates the body's value-binding forms — assignments, var
// specs, range clauses — until the tainted set stops growing.
func (ft *funcTaint) solve() {
	body := ft.node.Decl.Body
	for changed := true; changed; {
		changed = false
		mark := func(id ast.Expr) {
			ident, ok := id.(*ast.Ident)
			if !ok {
				return
			}
			obj := ft.info.Defs[ident]
			if obj == nil {
				obj = ft.info.Uses[ident]
			}
			if obj != nil && !ft.tainted[obj] {
				ft.tainted[obj] = true
				changed = true
			}
		}
		ast.Inspect(body, func(x ast.Node) bool {
			switch s := x.(type) {
			case *ast.AssignStmt:
				if len(s.Rhs) == 1 && len(s.Lhs) > 1 {
					// Multi-value form: one tainted producer taints
					// every binding (v, ok := m[k] and friends).
					if ft.exprTainted(s.Rhs[0]) {
						for _, l := range s.Lhs {
							mark(l)
						}
					}
				} else {
					for i := range s.Lhs {
						if i < len(s.Rhs) && ft.exprTainted(s.Rhs[i]) {
							mark(s.Lhs[i])
						}
					}
				}
			case *ast.ValueSpec:
				if len(s.Values) == 1 && len(s.Names) > 1 {
					if ft.exprTainted(s.Values[0]) {
						for _, n := range s.Names {
							mark(n)
						}
					}
				} else {
					for i := range s.Names {
						if i < len(s.Values) && ft.exprTainted(s.Values[i]) {
							mark(s.Names[i])
						}
					}
				}
			case *ast.RangeStmt:
				if ft.exprTainted(s.X) {
					if s.Key != nil {
						mark(s.Key)
					}
					if s.Value != nil {
						mark(s.Value)
					}
				}
			}
			return true
		})
	}
}

// exprTainted reports whether evaluating e may yield a tainted value:
// the expression mentions a tainted object, or calls something whose
// result is tainted. Containment is the propagation rule — a field
// read, index, slice, conversion, or method call on a tainted value is
// tainted. Function-literal bodies are not the literal's value and are
// skipped.
func (ft *funcTaint) exprTainted(e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(x ast.Node) bool {
		if found {
			return false
		}
		switch v := x.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := ft.info.Uses[v]; obj != nil && ft.tainted[obj] {
				found = true
			}
		case *ast.CallExpr:
			if fn := calleeFunc(ft.info, v); fn != nil && ft.callTaints != nil && ft.callTaints(FuncID(fn)) {
				found = true
				return false // arguments still matter, but we already know
			}
		}
		return !found
	})
	return found
}

// returnsTainted reports whether the function's own return statements
// (literal bodies excluded — their returns belong to the literal) may
// yield a tainted value, including taint parked in named results.
func (ft *funcTaint) returnsTainted() bool {
	if res := ft.node.Decl.Type.Results; res != nil {
		for _, field := range res.List {
			for _, name := range field.Names {
				if obj := ft.info.Defs[name]; obj != nil && ft.tainted[obj] {
					return true
				}
			}
		}
	}
	found := false
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			if found {
				return false
			}
			switch v := x.(type) {
			case *ast.FuncLit:
				return false
			case *ast.ReturnStmt:
				for _, r := range v.Results {
					if ft.exprTainted(r) {
						found = true
					}
				}
			}
			return !found
		})
	}
	walk(ft.node.Decl.Body)
	return found
}

// forEachCall visits every call expression of the body (literal bodies
// included; go and defer statements excluded — they do not run at the
// call site's program point) with its resolved callee ID and arguments.
func (ft *funcTaint) forEachCall(visit func(call *ast.CallExpr, calleeID string)) {
	skip := map[ast.Node]bool{}
	ast.Inspect(ft.node.Decl.Body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.GoStmt:
			skip[v.Call] = true
		case *ast.DeferStmt:
			skip[v.Call] = true
		case *ast.CallExpr:
			if skip[v] {
				return true
			}
			if tv, ok := ft.info.Types[v.Fun]; ok && tv.IsType() {
				return true // conversion
			}
			if fn := calleeFunc(ft.info, v); fn != nil {
				visit(v, FuncID(fn))
			}
		}
		return true
	})
}

// taintReturnSummaries computes, to a module-wide fixed point, the set
// of functions whose return value may carry taint originating at a
// source call (isSource, by callee ID).
func taintReturnSummaries(g *CallGraph, isSource func(calleeID string) bool) map[string]bool {
	returns := map[string]bool{}
	callTaints := func(id string) bool { return isSource(id) || returns[id] }
	ids := g.sortedNodeIDs()
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			if returns[id] {
				continue
			}
			ft := newFuncTaint(g.Nodes[id], nil, callTaints)
			if ft.returnsTainted() {
				returns[id] = true
				changed = true
			}
		}
	}
	return returns
}

// paramFlow records, per function and parameter position, whether a
// value passed there may reach the analyzer's sink.
type paramFlow map[string][]bool

func (pf paramFlow) flows(id string, idx int) bool {
	s := pf[id]
	return idx >= 0 && idx < len(s) && s[idx]
}

// paramObjects returns the declared parameter objects in signature
// order, flattening grouped fields (a, b int).
func paramObjects(info *types.Info, fd *ast.FuncDecl) []types.Object {
	var out []types.Object
	if fd.Type.Params == nil {
		return nil
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			out = append(out, info.Defs[name])
		}
		if len(field.Names) == 0 {
			out = append(out, nil) // unnamed parameter: nothing can flow
		}
	}
	return out
}

// computeParamFlows iterates parameter-flow summaries to a module-wide
// fixed point: parameter i of f flows if, with that parameter seeded
// tainted, sinkHit reports a hit inside f — where sinkHit consults the
// summary table so far for taint handed onward to callees.
func computeParamFlows(g *CallGraph, callTaints func(string) bool, sinkHit func(ft *funcTaint, n *FuncNode, pf paramFlow) bool) paramFlow {
	pf := paramFlow{}
	ids := g.sortedNodeIDs()
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			n := g.Nodes[id]
			params := paramObjects(n.Pkg.Info, n.Decl)
			if len(params) == 0 {
				continue
			}
			cur := pf[id]
			if cur == nil {
				cur = make([]bool, len(params))
				pf[id] = cur
			}
			for i, p := range params {
				if cur[i] || p == nil {
					continue
				}
				ft := newFuncTaint(n, []types.Object{p}, callTaints)
				if sinkHit(ft, n, pf) {
					cur[i] = true
					changed = true
				}
			}
		}
	}
	return pf
}
