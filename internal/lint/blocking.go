package lint

// The shared blocking-operation model consumed by ctxflow and lockheld:
// which calls and statements can park a goroutine for an unbounded or
// externally-paced time. Both analyzers reason over the same leaf set so
// their verdicts cannot disagree about what "blocks"; they differ only
// in the contract they enforce around it (carry a context vs. do not
// hold a mutex).

import "strings"

// blockingCallees maps function IDs (see FuncID) to a short description
// used in diagnostics. These are the operations whose latency is paced
// by something outside this process: the measurement backend, the
// network, a timer. Mutex acquisition is deliberately absent — lock
// hold times are bounded by lockheld itself.
var blockingCallees = map[string]string{
	// The measurement boundary: a batch measurement is the single
	// longest operation in the system (it can run for minutes against a
	// remote fleet), which is why the Measurer interface takes a ctx.
	"pruner/internal/measure.Measurer.Measure": "Measurer.Measure",
	"pruner/internal/measure.Sim.Measure":      "Sim.Measure",
	"pruner/internal/measure.Fleet.Measure":    "Fleet.Measure",

	// Outbound HTTP.
	"net/http.Client.Do":  "http.Client.Do",
	"net/http.Client.Get": "http.Client.Get",
	"net/http.Get":        "http.Get",
	"net/http.Head":       "http.Head",
	"net/http.Post":       "http.Post",
	"net/http.PostForm":   "http.PostForm",

	// Serve loops and drains.
	"net/http.ListenAndServe":        "http.ListenAndServe",
	"net/http.Server.ListenAndServe": "http.Server.ListenAndServe",
	"net/http.Server.Serve":          "http.Server.Serve",
	"net/http.Server.Shutdown":       "http.Server.Shutdown",

	// Timers and subprocesses.
	"time.Sleep":                 "time.Sleep",
	"os/exec.Cmd.Run":            "exec.Cmd.Run",
	"os/exec.Cmd.Wait":           "exec.Cmd.Wait",
	"os/exec.Cmd.Output":         "exec.Cmd.Output",
	"os/exec.Cmd.CombinedOutput": "exec.Cmd.CombinedOutput",
}

// waitCallees block on goroutine coordination. They count as blocking
// for lockheld (a Wait under a mutex is a textbook deadlock shape) but
// not for ctxflow: a WaitGroup cannot be cancelled, so demanding a
// context for it would invite plumbing that cannot be honored.
var waitCallees = map[string]string{
	"sync.WaitGroup.Wait": "sync.WaitGroup.Wait",
	"sync.Cond.Wait":      "sync.Cond.Wait",
}

// blockingCall resolves a call site against a leaf set.
func blockingCall(c CallSite, leafs map[string]string) (string, bool) {
	desc, ok := leafs[c.CalleeID]
	return desc, ok
}

// mainOrTestPkg reports packages outside the contract boundary: binaries
// (cmd/*, examples/*) own the process and its root context; test files
// never reach Load (go list GoFiles excludes them).
func mainOrTestPkg(pkg *LoadedPackage) bool {
	return pkg.Types.Name() == "main"
}

// infraPkg reports the two module packages whose job is to wrap blocking
// machinery behind a non-blocking contract of their own: the worker pool
// (its semaphore never blocks acquisition and its joins are bounded by
// the pool's own workers) and the lint framework itself (a build-time
// tool whose `go list` subprocess is bounded by the build, not a serving
// path). Their internals are exempt from ctxflow and absorb propagation:
// calling parallel.ForEach does not make the caller "blocking".
func infraPkg(pkg *LoadedPackage) bool {
	path := pkg.ImportPath
	return strings.HasSuffix(path, "internal/parallel") || strings.HasSuffix(path, "internal/lint")
}
