package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// suppressDirective is the comment prefix that waives one diagnostic:
//
//	//pruner:allow <check> — <reason>
//
// placed on the offending line or the line immediately above it. The
// reason is mandatory: an allowlist entry nobody can explain is a bug
// waiting to be re-introduced.
const suppressDirective = "pruner:allow"

// A Suppression is one parsed //pruner:allow directive.
type Suppression struct {
	Check  string
	Reason string
	Pos    token.Position
	used   bool
}

// CollectSuppressions extracts every //pruner:allow directive from the
// files. Malformed directives — unknown check name or missing reason —
// are returned as diagnostics in their own right (category "suppress"),
// so a typo cannot silently disable enforcement.
func CollectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]*Analyzer) ([]*Suppression, []Diagnostic) {
	var supps []*Suppression
	var bad []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+suppressDirective)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				check, reason := splitDirective(text)
				switch {
				case check == "":
					bad = append(bad, Diagnostic{
						Analyzer: "suppress", Pos: pos,
						Message: "//pruner:allow directive names no check",
					})
				case known[check] == nil:
					bad = append(bad, Diagnostic{
						Analyzer: "suppress", Pos: pos,
						Message: fmt.Sprintf("//pruner:allow names unknown check %q", check),
					})
				case reason == "":
					bad = append(bad, Diagnostic{
						Analyzer: "suppress", Pos: pos,
						Message: fmt.Sprintf("//pruner:allow %s has no reason; write //pruner:allow %s — <why this site is exempt>", check, check),
					})
				default:
					supps = append(supps, &Suppression{Check: check, Reason: reason, Pos: pos})
				}
			}
		}
	}
	return supps, bad
}

// splitDirective parses " rawgo — reason..." into the check name and
// reason. The separator between them may be an em dash, "--", or ":";
// the reason is whatever non-empty text follows.
func splitDirective(text string) (check, reason string) {
	text = strings.TrimSpace(text)
	fields := strings.Fields(text)
	if len(fields) == 0 {
		return "", ""
	}
	check = strings.TrimRight(fields[0], ":")
	reason = strings.TrimSpace(strings.TrimPrefix(text, fields[0]))
	for _, sep := range []string{"—", "–", "--", "-", ":"} {
		reason = strings.TrimSpace(strings.TrimPrefix(reason, sep))
	}
	return check, reason
}

// ApplySuppressions splits diagnostics on //pruner:allow coverage (a
// directive on the same or the preceding line of the same file):
// unmatched findings come back in kept, waived ones in suppressed —
// marked and carrying the directive's reason, for the -json output —
// and one diagnostic per directive that matched nothing in unused, so
// the allowlist cannot rot after the underlying code is fixed or moved.
func ApplySuppressions(diags []Diagnostic, supps []*Suppression) (kept, suppressed, unused []Diagnostic) {
	type key struct {
		file  string
		line  int
		check string
	}
	index := make(map[key]*Suppression, len(supps))
	for _, s := range supps {
		index[key{s.Pos.Filename, s.Pos.Line, s.Check}] = s
	}
	waive := func(d Diagnostic, s *Suppression) {
		s.used = true
		d.Suppressed = true
		d.Reason = s.Reason
		suppressed = append(suppressed, d)
	}
	for _, d := range diags {
		if s, ok := index[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}]; ok {
			waive(d, s)
			continue
		}
		if s, ok := index[key{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]; ok {
			waive(d, s)
			continue
		}
		kept = append(kept, d)
	}
	for _, s := range supps {
		if !s.used {
			unused = append(unused, Diagnostic{
				Analyzer: "suppress",
				Pos:      s.Pos,
				Message:  fmt.Sprintf("unused //pruner:allow %s suppression (no %s diagnostic here anymore); delete it", s.Check, s.Check),
			})
		}
	}
	return kept, suppressed, unused
}
