package lint

import (
	"go/ast"
	"strings"
)

// RawGo forbids bare `go` statements outside internal/parallel. The
// shared pool is the one place allowed to spawn workers: it pins worker
// count, panic propagation, and — critically — the rule that results
// are committed in submission order no matter which goroutine finishes
// first. A stray goroutine elsewhere reintroduces scheduling order as
// an input to the computation. The handful of legitimate launch sites
// (HTTP serve loops, the tuner's single in-flight measurement, shutdown
// waiters) carry //pruner:allow rawgo directives with written reasons.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc:  "forbid bare go statements outside internal/parallel; fan-out goes through the shared pool",
	Run:  runRawGo,
}

func runRawGo(pass *Pass) error {
	if strings.HasSuffix(pass.Pkg.Path(), "internal/parallel") {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"bare go statement outside internal/parallel; route fan-out through the shared pool, or add //pruner:allow rawgo — <reason> if this site must own its goroutine")
			}
			return true
		})
	}
	return nil
}
