package lint

// The fixture harness: an analysistest in miniature. Each fixture
// package under testdata/src/<name> is parsed and type-checked (against
// real stdlib export data, same path as the driver), one analyzer runs,
// and the resulting diagnostics are diffed against `// want "regexp"`
// comments on the offending lines. A diagnostic without a want, or a
// want without a diagnostic, fails the test.

import (
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"
)

var fixtureFset = token.NewFileSet()

// stdImporter builds one gc-export-data importer for the stdlib
// packages fixtures use, shared by all fixture tests.
var stdImporter = sync.OnceValues(func() (types.Importer, error) {
	pkgs, err := goList([]string{
		"bytes", "context", "encoding/gob", "encoding/json", "errors",
		"fmt", "io", "math/rand", "math/rand/v2", "net/http", "os",
		"slices", "sort", "strings", "sync", "time",
	})
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exportImporter(fixtureFset, exports, nil), nil
})

// loadFixture type-checks testdata/src/<rel> as one package under the
// given import path (the path matters: rawgo and walltime key off it).
func loadFixture(t *testing.T, importPath, rel string) *LoadedPackage {
	t.Helper()
	dir := filepath.Join("testdata", "src", rel)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	imp, err := stdImporter()
	if err != nil {
		t.Fatalf("building stdlib importer: %v", err)
	}
	pkg, err := CheckPackage(fixtureFset, importPath, dir, goFiles, imp)
	if err != nil {
		t.Fatalf("type-checking fixture %s: %v", rel, err)
	}
	return pkg
}

// runFixture loads a fixture, runs one analyzer over it, and diffs the
// raw diagnostics against the fixture's want comments.
func runFixture(t *testing.T, a *Analyzer, importPath, rel string) {
	t.Helper()
	pkg := loadFixture(t, importPath, rel)
	diags, err := runAnalyzers(pkg, []*Analyzer{a})
	if err != nil {
		t.Fatal(err)
	}
	sortDiagnostics(diags)
	checkWants(t, pkg, diags)
}

// runModuleFixture loads a fixture as a one-package module, runs one
// call-graph analyzer over it, and diffs against the want comments.
func runModuleFixture(t *testing.T, a *Analyzer, importPath, rel string) {
	t.Helper()
	runModuleFixtureOpts(t, a, importPath, rel, RunOptions{})
}

// runModuleFixtureOpts is runModuleFixture with driver options (the
// wireshape fixtures pin their lock-file path through these).
func runModuleFixtureOpts(t *testing.T, a *Analyzer, importPath, rel string, opts RunOptions) {
	t.Helper()
	pkg := loadFixture(t, importPath, rel)
	diags, err := runModuleAnalyzers([]*LoadedPackage{pkg}, []*Analyzer{a}, opts)
	if err != nil {
		t.Fatal(err)
	}
	sortDiagnostics(diags)
	checkWants(t, pkg, diags)
}

// A want is one `// want "re"` expectation.
type want struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

var wantRE = regexp.MustCompile(`^//.*\bwant ` + "`(.+)`" + `\s*$`)

// checkWants diffs diagnostics against the fixture's expectations: each
// diagnostic must match a want regexp on its own line, and every want
// must be claimed by exactly one diagnostic.
func checkWants(t *testing.T, pkg *LoadedPackage, diags []Diagnostic) {
	t.Helper()
	var wants []*want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				re, err := regexp.Compile(m[1])
				if err != nil {
					t.Fatalf("%s: bad want regexp %q: %v", pkg.Fset.Position(c.Pos()), m[1], err)
				}
				pos := pkg.Fset.Position(c.Pos())
				wants = append(wants, &want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}
