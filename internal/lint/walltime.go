package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// WallTime forbids reading the wall clock in the deterministic layers.
// Tuning sessions carry their own simulated clock (internal/simulator's
// Clock) precisely so that a session replays bit-for-bit; a time.Now in
// a scoring or search path would thread real time back into results.
// Timing real work is the job of the measurement boundary — server,
// measure, and the cmd binaries — where wall time is the measurement.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc:  "forbid time.Now/Since/Sleep and friends in deterministic packages; timing belongs to server, measure, and cmd",
	Run:  runWallTime,
}

// deterministicPkgs are the final import-path elements of the layers
// whose outputs must be pure functions of their inputs. time.Duration
// and friends remain fine everywhere — only clock reads are flagged.
var deterministicPkgs = map[string]bool{
	"tuner": true, "search": true, "nn": true, "costmodel": true,
	"schedule": true, "simulator": true, "features": true, "analyzer": true,
	// obs is the clock-injection seam itself: its one RealClock read
	// carries the single reasoned suppression; everything else in the
	// package must go through an injected Clock like any other
	// deterministic layer.
	"obs": true,
}

// wallClockFuncs are the time functions that read or wait on the real
// clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallTime(pass *Pass) error {
	path := pass.Pkg.Path()
	if !deterministicPkgs[path[strings.LastIndex(path, "/")+1:]] {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
			if !ok || pkgName.Imported().Path() != "time" {
				return true
			}
			if wallClockFuncs[sel.Sel.Name] {
				pass.Reportf(sel.Pos(),
					"time.%s reads the wall clock inside deterministic package %q; use the session's simulated clock, or move timing to server/measure/cmd",
					sel.Sel.Name, pass.Pkg.Name())
			}
			return true
		})
	}
	return nil
}
