// Package lint is a stdlib-only analysis framework in the style of
// golang.org/x/tools/go/analysis, plus the analyzers that turn this
// repo's determinism and concurrency conventions into machine-checked
// contracts. The promise under test is the one PRs 1-5 built: results
// are bitwise-identical at any parallelism, pipeline depth, and
// measurement backend. That promise rests on invariants no compiler
// enforces — every random draw comes from an owned per-task *rand.Rand,
// map iteration is sorted before any order-sensitive effect, fan-out
// goes through internal/parallel, and wall-clock time never leaks into
// deterministic layers. The analyzers here encode them so CI fails the
// moment new concurrent code (sharded control plane, fleet remediation,
// speculative re-dispatch) breaks one.
//
// The suite has three generations. The per-package syntactic checks —
// exhaust, globalrand, maprange, rawgo, walltime — inspect one
// package's typed AST at a time. The call-graph generation — ctxflow,
// errdrop, hotalloc, lockheld — builds a whole-module static call graph
// (CallGraph) and checks cross-function contracts over it: context must
// flow to everything that can block, mutexes must not be held across
// blocking calls or calls into caller-supplied code, functions
// reachable from a //pruner:hotpath root must contain no
// heap-allocating constructs (cross-checked dynamically by the
// TestAlloc* AllocsPerRun gates), and internal packages must not
// silently drop error returns. The dataflow generation — clocktaint,
// lockorder, wireshape — adds intraprocedural def-use chains composed
// interprocedurally via per-function summaries on that call graph
// (dataflow.go): clock readings must not taint results, records, or
// fingerprinted values; mutex acquisitions must admit one global order;
// and every type reaching a json/gob encoder must match the checked-in
// wire.lock golden, regenerated deliberately with -write-wire. See
// DESIGN.md §10, §12 and §13.
//
// The framework is deliberately dependency-free: packages are discovered
// with `go list -deps -export -json`, parsed with go/parser, and
// type-checked with go/types against the compiler's export data, so the
// module keeps its "stdlib only" property.
//
// Known-good violations are suppressed in place with
//
//	//pruner:allow <check> — <reason>
//
// on the offending line or the line above. The driver fails on
// suppressions that are malformed, name an unknown check, lack a
// reason, or no longer match a diagnostic, so allowlists cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one check: a name (used in diagnostics and in
// //pruner:allow directives), a short doc string, and exactly one of
// two run functions — Run for single-package syntactic checks (the PR 6
// generation) or RunModule for whole-module contracts that need the
// static call graph (ctxflow, lockheld, hotalloc).
type Analyzer struct {
	Name      string
	Doc       string
	Run       func(*Pass) error
	RunModule func(*ModulePass) error
}

// A Pass carries one package's syntax and type information to an
// analyzer's Run function, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A ModulePass hands a whole-module analyzer every loaded package plus
// the call graph built over them. Diagnostics may land in any file.
type ModulePass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkgs     []*LoadedPackage
	Graph    *CallGraph

	// WireLock is the path of the wireshape golden ("" resolves next to
	// go.mod); WriteWire switches wireshape from checking to
	// regenerating it.
	WireLock  string
	WriteWire bool

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos in the given package's file set.
func (p *ModulePass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// reportAt records a diagnostic at an already-resolved position (which
// may name a non-Go file, e.g. wire.lock itself). notice marks additive
// findings that inform but do not fail the run.
func (p *ModulePass) reportAt(pos token.Position, notice bool, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
		Notice:   notice,
	})
}

// A Diagnostic is one finding, resolved to a file position. Suppressed
// findings (waived by a //pruner:allow directive) survive only through
// RunAll, marked with the directive's reason, so machine consumers (the
// -json driver output) can render the full picture; Run drops them.
type Diagnostic struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
	Reason     string
	// Notice marks additive, non-failing findings (wireshape's "new
	// wire field recorded nowhere yet"): printed, never counted.
	Notice bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in stable order: the PR 6
// single-package generation, the PR 8 call-graph generation, and the
// dataflow generation (clocktaint, exhaust, lockorder, wireshape).
func All() []*Analyzer {
	return []*Analyzer{
		ClockTaint, CtxFlow, ErrDrop, Exhaust, GlobalRand, HotAlloc,
		LockHeld, LockOrder, MapRange, RawGo, WallTime, WireShape,
	}
}

// byName resolves the suite into a lookup table for directive validation.
func byName(analyzers []*Analyzer) map[string]*Analyzer {
	m := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = a
	}
	return m
}

// runAnalyzers applies each per-package analyzer to a loaded package and
// collects raw (pre-suppression) diagnostics. Module analyzers (Run ==
// nil) are handled by runModuleAnalyzers over the full package set.
func runAnalyzers(pkg *LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		if a.Run == nil {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	return diags, nil
}

// runModuleAnalyzers builds the call graph once and applies every
// whole-module analyzer over the full loaded package set.
func runModuleAnalyzers(pkgs []*LoadedPackage, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	var moduleAnalyzers []*Analyzer
	for _, a := range analyzers {
		if a.RunModule != nil {
			moduleAnalyzers = append(moduleAnalyzers, a)
		}
	}
	if len(moduleAnalyzers) == 0 || len(pkgs) == 0 {
		return nil, nil
	}
	graph := BuildCallGraph(pkgs)
	var diags []Diagnostic
	for _, a := range moduleAnalyzers {
		pass := &ModulePass{
			Analyzer:  a,
			Fset:      pkgs[0].Fset,
			Pkgs:      pkgs,
			Graph:     graph,
			WireLock:  opts.WireLock,
			WriteWire: opts.WriteWire,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.RunModule(pass); err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	return diags, nil
}

// sortDiagnostics orders findings by file, line, column, then analyzer,
// for stable output and stable tests.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
