// Package lint is a stdlib-only analysis framework in the style of
// golang.org/x/tools/go/analysis, plus the analyzers that turn this
// repo's determinism and concurrency conventions into machine-checked
// contracts. The promise under test is the one PRs 1-5 built: results
// are bitwise-identical at any parallelism, pipeline depth, and
// measurement backend. That promise rests on invariants no compiler
// enforces — every random draw comes from an owned per-task *rand.Rand,
// map iteration is sorted before any order-sensitive effect, fan-out
// goes through internal/parallel, and wall-clock time never leaks into
// deterministic layers. The analyzers here encode them so CI fails the
// moment new concurrent code (sharded control plane, fleet remediation,
// speculative re-dispatch) breaks one.
//
// The framework is deliberately dependency-free: packages are discovered
// with `go list -deps -export -json`, parsed with go/parser, and
// type-checked with go/types against the compiler's export data, so the
// module keeps its "stdlib only" property.
//
// Known-good violations are suppressed in place with
//
//	//pruner:allow <check> — <reason>
//
// on the offending line or the line above. The driver fails on
// suppressions that are malformed, name an unknown check, lack a
// reason, or no longer match a diagnostic, so allowlists cannot rot.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// An Analyzer describes one check: a name (used in diagnostics and in
// //pruner:allow directives), a short doc string, and a Run function
// invoked once per package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// A Pass carries one package's syntax and type information to an
// analyzer's Run function, mirroring analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// All returns the full analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{GlobalRand, MapRange, RawGo, WallTime}
}

// byName resolves the suite into a lookup table for directive validation.
func byName(analyzers []*Analyzer) map[string]*Analyzer {
	m := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		m[a.Name] = a
	}
	return m
}

// runAnalyzers applies each analyzer to a loaded package and collects
// raw (pre-suppression) diagnostics.
func runAnalyzers(pkg *LoadedPackage, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.ImportPath, err)
		}
	}
	return diags, nil
}

// sortDiagnostics orders findings by file, line, column, then analyzer,
// for stable output and stable tests.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
