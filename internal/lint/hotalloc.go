package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotAlloc keeps the draft loop's inner kernels allocation-free. The
// cost model scores thousands of candidate programs per tuning round;
// the frozen forward path runs once per candidate, so a single
// interface boxing or closure capture inside it turns into megabytes of
// garbage per round and a GC pause in the middle of the latency budget.
// Functions reachable from a //pruner:hotpath annotation must therefore
// avoid the constructs the compiler turns into heap allocations:
//
//   - function literals that capture variables of the enclosing
//     function (the captured frame escapes; capture-free literals are
//     static and stay exempt),
//   - implicit interface conversions at call arguments and explicit
//     conversions to interface types (boxing),
//   - any fmt call and non-constant string concatenation,
//   - append without visible preallocation (the destination is neither
//     a make with explicit capacity nor a re-sliced [:0] buffer),
//   - map construction (make or literal).
//
// Arena growth is deliberately legal: make of a slice is amortized by
// the grow-only Scratch buffers, and panic arguments are exempt — a
// panic path allocates once and then the process is done caring.
// The static gate is cross-checked dynamically by testing.AllocsPerRun
// tests over the same kernels.
var HotAlloc = &Analyzer{
	Name:      "hotalloc",
	Doc:       "no heap-allocating constructs in functions reachable from //pruner:hotpath roots",
	RunModule: runHotAlloc,
}

func runHotAlloc(pass *ModulePass) error {
	g := pass.Graph

	// BFS from the annotated roots, recording which root first reached
	// each function so diagnostics can explain why a function is hot.
	rootOf := map[string]string{}
	var queue []string
	for _, id := range g.sortedNodeIDs() {
		if g.Nodes[id].Hot {
			rootOf[id] = id
			queue = append(queue, id)
		}
	}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		for _, c := range g.Nodes[id].Calls {
			if g.Nodes[c.CalleeID] != nil && rootOf[c.CalleeID] == "" {
				rootOf[c.CalleeID] = rootOf[id]
				queue = append(queue, c.CalleeID)
			}
		}
	}

	for _, id := range g.sortedNodeIDs() {
		if root := rootOf[id]; root != "" {
			checkHotFunc(pass, g.Nodes[id], shortFuncID(root))
		}
	}
	return nil
}

// checkHotFunc walks one hot function's body and reports every
// allocating construct outside panic arguments.
func checkHotFunc(pass *ModulePass, n *FuncNode, root string) {
	info := n.Pkg.Info
	fd := n.Decl

	// Positions inside panic(...) arguments are exempt.
	var panicArgs [][2]token.Pos
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, isB := info.Uses[id].(*types.Builtin); isB && b.Name() == "panic" {
				for _, a := range call.Args {
					panicArgs = append(panicArgs, [2]token.Pos{a.Pos(), a.End()})
				}
			}
		}
		return true
	})
	exempt := func(pos token.Pos) bool {
		for _, r := range panicArgs {
			if r[0] <= pos && pos < r[1] {
				return true
			}
		}
		return false
	}

	// Destinations considered preallocated for append: variables whose
	// defining make(...) carries an explicit capacity argument.
	prealloc := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(x ast.Node) bool {
		asg, ok := x.(*ast.AssignStmt)
		if !ok || len(asg.Lhs) != len(asg.Rhs) {
			return true
		}
		for i, rhs := range asg.Rhs {
			lhs, ok := asg.Lhs[i].(*ast.Ident)
			if !ok {
				continue
			}
			if makeWithCap(info, rhs) || resliceToZero(rhs) {
				if obj := objFor(info, lhs); obj != nil {
					prealloc[obj] = true
				}
			}
		}
		return true
	})

	report := func(pos token.Pos, format string, args ...any) {
		if !exempt(pos) {
			args = append(args, shortFuncID(n.ID), root)
			pass.Reportf(pos, format+" in %s, which is on a hot path (reachable from //pruner:hotpath root %s)", args...)
		}
	}

	ast.Inspect(fd.Body, func(x ast.Node) bool {
		switch v := x.(type) {
		case *ast.FuncLit:
			if name := capturedVar(info, fd, v); name != "" {
				report(v.Pos(), "function literal captures %q and its frame escapes to the heap; hoist the state into Scratch or pass it as a parameter", name)
			}
		case *ast.BinaryExpr:
			if v.Op == token.ADD && isStringExpr(info, v) && info.Types[v].Value == nil {
				report(v.Pos(), "string concatenation allocates")
			}
		case *ast.CompositeLit:
			if tv, ok := info.Types[v]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					report(v.Pos(), "map literal allocates")
				}
			}
		case *ast.CallExpr:
			checkHotCall(info, v, prealloc, report)
		}
		return true
	})
}

// checkHotCall classifies one call expression in a hot function:
// conversions to interfaces, builtin make-map / bare append, fmt calls,
// and implicit boxing at interface-typed parameters.
func checkHotCall(info *types.Info, call *ast.CallExpr, prealloc map[types.Object]bool, report func(token.Pos, string, ...any)) {
	// Explicit conversion T(x) with T an interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if isInterface(tv.Type) && len(call.Args) == 1 && !isInterfaceExpr(info, call.Args[0]) {
			report(call.Pos(), "conversion to interface type boxes the value")
		}
		return
	}

	// Builtins: make(map[...]) and append without preallocation.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.Uses[id].(*types.Builtin); isB {
			switch b.Name() {
			case "make":
				if len(call.Args) > 0 {
					if tv, ok := info.Types[call.Args[0]]; ok {
						if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
							report(call.Pos(), "make(map) allocates")
						}
					}
				}
			case "append":
				if len(call.Args) > 0 && !appendPreallocated(info, call.Args[0], prealloc) {
					report(call.Pos(), "append without visible preallocation can reallocate; size the buffer with make(_, _, cap) or reuse a [:0] slice")
				}
			}
			return
		}
	}

	// fmt anywhere on a hot path means formatting machinery and boxing.
	if fn := calleeFunc(info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		report(call.Pos(), "fmt.%s allocates (formatting state and boxed operands)", fn.Name())
		return
	}

	// Implicit boxing: non-interface arguments bound to interface params.
	sig, ok := typeOf(info, call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // forwarding a slice, no per-element boxing here
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if isInterface(pt) && !isInterfaceExpr(info, arg) && !isNilExpr(info, arg) {
			report(arg.Pos(), "argument boxed into interface parameter")
		}
	}
}

func typeOf(info *types.Info, e ast.Expr) types.Type {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return tv.Type.Underlying()
	}
	return nil
}

func isInterface(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}

func isInterfaceExpr(info *types.Info, e ast.Expr) bool {
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		return isInterface(tv.Type)
	}
	return false
}

func isNilExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.IsNil()
}

func isStringExpr(info *types.Info, e ast.Expr) bool {
	t := typeOf(info, e)
	b, ok := t.(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func objFor(info *types.Info, id *ast.Ident) types.Object {
	if obj := info.Defs[id]; obj != nil {
		return obj
	}
	return info.Uses[id]
}

// makeWithCap reports a make call with an explicit capacity argument:
// make([]T, n, cap).
func makeWithCap(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 3 {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "make"
}

// resliceToZero reports buf[:0] — reuse of an existing buffer's storage.
func resliceToZero(e ast.Expr) bool {
	s, ok := ast.Unparen(e).(*ast.SliceExpr)
	if !ok || s.Low != nil || s.High == nil {
		return false
	}
	lit, ok := s.High.(*ast.BasicLit)
	return ok && lit.Value == "0"
}

// appendPreallocated reports whether the destination of an append is
// visibly preallocated: a variable assigned from make-with-capacity or a
// [:0] reslice, or a [:0] reslice written inline at the call.
func appendPreallocated(info *types.Info, dst ast.Expr, prealloc map[types.Object]bool) bool {
	if resliceToZero(dst) {
		return true
	}
	if id, ok := ast.Unparen(dst).(*ast.Ident); ok {
		if obj := objFor(info, id); obj != nil && prealloc[obj] {
			return true
		}
	}
	return false
}

// capturedVar returns the name of one variable of the enclosing function
// captured by the literal, or "" when the literal is capture-free.
// Package-level variables are not captures (no frame escapes for them).
func capturedVar(info *types.Info, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	name := ""
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		pos := v.Pos()
		declaredInLit := lit.Pos() <= pos && pos < lit.End()
		declaredInFunc := fd.Pos() <= pos && pos < fd.End()
		if declaredInFunc && !declaredInLit {
			name = id.Name
		}
		return true
	})
	return name
}
