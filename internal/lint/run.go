package lint

// Run loads the packages matched by patterns, applies every analyzer,
// filters //pruner:allow suppressions, and returns the surviving
// diagnostics (including malformed and unused suppressions) in stable
// order. An empty result means the tree honors the contract.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	all, err := RunAll(patterns, analyzers)
	if err != nil {
		return nil, err
	}
	kept := all[:0:0]
	for _, d := range all {
		if !d.Suppressed {
			kept = append(kept, d)
		}
	}
	return kept, nil
}

// RunOptions carries the driver knobs that only some analyzers read:
// the wireshape golden's path (for fixtures; "" resolves next to
// go.mod) and its regeneration mode (pruner-vet -write-wire).
type RunOptions struct {
	WireLock  string
	WriteWire bool
}

// RunAll is Run without the suppression filter: waived diagnostics are
// returned too, marked Suppressed with the directive's reason, so the
// -json driver output can show CI and editors the complete picture.
// Exit-code decisions should still key on the unsuppressed findings.
func RunAll(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunAllOpts(patterns, analyzers, RunOptions{})
}

// RunAllOpts is RunAll with explicit driver options.
func RunAllOpts(patterns []string, analyzers []*Analyzer, opts RunOptions) ([]Diagnostic, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return nil, err
	}
	// Directive names validate against the full suite plus whatever was
	// passed in, not just the selected subset: running `-checks
	// walltime` must not misreport a legitimate rawgo suppression as an
	// unknown check. A directive for a known check whose analyzer is not
	// running this pass is simply inert — it cannot match or be unused.
	known := byName(All())
	selected := byName(analyzers)
	for name, a := range selected {
		known[name] = a
	}
	// Per-package analyzers and suppressions first; module analyzers see
	// the whole package set at once, so their diagnostics — which may
	// land in any file — join the pool before suppressions apply.
	var diags, bad []Diagnostic
	var supps []*Suppression
	for _, pkg := range pkgs {
		d, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, d...)
		s, b := CollectSuppressions(pkg.Fset, pkg.Files, known)
		for _, sup := range s {
			if selected[sup.Check] != nil {
				supps = append(supps, sup)
			}
		}
		bad = append(bad, b...)
	}
	md, err := runModuleAnalyzers(pkgs, analyzers, opts)
	if err != nil {
		return nil, err
	}
	diags = append(diags, md...)

	kept, suppressed, unused := ApplySuppressions(diags, supps)
	all := append(kept, suppressed...)
	all = append(all, bad...)
	all = append(all, unused...)
	sortDiagnostics(all)
	return all, nil
}
