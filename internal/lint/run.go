package lint

// Run loads the packages matched by patterns, applies every analyzer,
// filters //pruner:allow suppressions, and returns the surviving
// diagnostics (including malformed and unused suppressions) in stable
// order. An empty result means the tree honors the contract.
func Run(patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(patterns)
	if err != nil {
		return nil, err
	}
	// Directive names validate against the full suite plus whatever was
	// passed in, not just the selected subset: running `-checks
	// walltime` must not misreport a legitimate rawgo suppression as an
	// unknown check. A directive for a known check whose analyzer is not
	// running this pass is simply inert — it cannot match or be unused.
	known := byName(All())
	selected := byName(analyzers)
	for name, a := range selected {
		known[name] = a
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runAnalyzers(pkg, analyzers)
		if err != nil {
			return nil, err
		}
		supps, bad := CollectSuppressions(pkg.Fset, pkg.Files, known)
		active := supps[:0:0]
		for _, s := range supps {
			if selected[s.Check] != nil {
				active = append(active, s)
			}
		}
		kept, unused := ApplySuppressions(diags, active)
		all = append(all, kept...)
		all = append(all, bad...)
		all = append(all, unused...)
	}
	sortDiagnostics(all)
	return all, nil
}
