package lint

// LockOrder builds the whole-module lock-order graph and rejects
// cycles. lockheld (PR 8) guards what happens *inside* one critical
// section; this analyzer guards the relationship *between* them: if
// goroutine 1 acquires A then B while goroutine 2 acquires B then A,
// each can park forever holding the other's next lock. The module's
// mutex population (store index, job table, measurer registry, metrics
// registry, fleet dispatch stats) is exactly the shape where such
// inversions creep in through helpers, so edges are interprocedural:
// locking A and then calling a function that transitively acquires B
// is an A→B edge like a direct nested lock.
//
// Mutexes are keyed by field identity — "pkg.Type.field" for a mutex
// field, "pkg.var" for a package-level mutex — so every instance of a
// struct shares one node, the conservative choice for a global order.
// Local mutexes (and embedded ones reached through the enclosing
// struct's method set) have no stable identity and are skipped. Cycles
// are reported once, at the smallest-keyed node, with a PathTo-style
// shortest witness chain per edge.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

var LockOrder = &Analyzer{
	Name:      "lockorder",
	Doc:       "mutex acquisitions must admit one global order: no lock-order cycles across the module",
	RunModule: runLockOrder,
}

// mutexKey derives the stable identity of a locked mutex expression:
// the owning named type plus field name, or the package-level variable.
// ok is false for identities the analysis cannot name (locals).
func mutexKey(info *types.Info, x ast.Expr) (string, bool) {
	switch e := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[e]; ok {
			v, ok := sel.Obj().(*types.Var)
			if !ok || !v.IsField() {
				return "", false
			}
			recv := sel.Recv()
			if p, ok := recv.(*types.Pointer); ok {
				recv = p.Elem()
			}
			if named, ok := recv.(*types.Named); ok && named.Obj().Pkg() != nil {
				return named.Obj().Pkg().Path() + "." + named.Obj().Name() + "." + v.Name(), true
			}
			return "", false
		}
		// Qualified package-level mutex: pkg.Mu.
		if v, ok := info.Uses[e.Sel].(*types.Var); ok && !v.IsField() && v.Pkg() != nil {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	case *ast.Ident:
		if v, ok := info.Uses[e].(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return v.Pkg().Path() + "." + v.Name(), true
		}
	}
	return "", false
}

// lockOrderEdge is one "A acquired before B" observation with its
// witness: the position of the second acquisition (or of the call that
// performs it) inside fn, plus the callee chain when transitive.
type lockOrderEdge struct {
	from, to string
	pos      token.Pos
	fn       *FuncNode
	viaCall  string // callee ID when the acquisition is transitive
}

func runLockOrder(pass *ModulePass) error {
	g := pass.Graph

	// Direct acquisitions per function, by identity key. Positions are
	// kept for witness messages (first occurrence wins).
	direct := map[string]map[string]token.Pos{}
	for _, id := range g.sortedNodeIDs() {
		n := g.Nodes[id]
		acq := map[string]token.Pos{}
		ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(n.Pkg.Info, call)
			if fn == nil || lockMethods[FuncID(fn)] != "lock" {
				return true
			}
			sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if key, ok := mutexKey(n.Pkg.Info, sel.X); ok {
				if _, seen := acq[key]; !seen {
					acq[key] = call.Pos()
				}
			}
			return true
		})
		if len(acq) > 0 {
			direct[id] = acq
		}
	}

	// Transitive acquisition summaries: acq(f) = direct(f) ∪ acq(g) for
	// every module-local callee g, to a fixed point.
	trans := map[string]map[string]bool{}
	ids := g.sortedNodeIDs()
	for _, id := range ids {
		set := map[string]bool{}
		for k := range direct[id] {
			set[k] = true
		}
		trans[id] = set
	}
	for changed := true; changed; {
		changed = false
		for _, id := range ids {
			n := g.Nodes[id]
			set := trans[id]
			for _, c := range n.Calls {
				for k := range trans[c.CalleeID] {
					if !set[k] {
						set[k] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge collection: walk each function's critical sections (same
	// syntactic recognition as lockheld) and record held→next pairs.
	edges := map[string]*lockOrderEdge{}
	edgeKey := func(from, to string) string { return from + "\x00" + to }
	addEdge := func(e *lockOrderEdge) {
		k := edgeKey(e.from, e.to)
		if edges[k] == nil {
			edges[k] = e
		}
	}
	for _, id := range ids {
		n := g.Nodes[id]
		collectLockOrderEdges(n, direct, trans, addEdge)
	}

	// Cycle detection over the order graph: for each key (smallest
	// first), BFS for the shortest path back to itself; a cycle is
	// reported once, anchored at its smallest key.
	var edgeKeys []string
	for k := range edges {
		edgeKeys = append(edgeKeys, k)
	}
	sort.Strings(edgeKeys)
	adj := map[string][]string{}
	keys := map[string]bool{}
	for _, k := range edgeKeys {
		e := edges[k]
		adj[e.from] = append(adj[e.from], e.to)
		keys[e.from] = true
		keys[e.to] = true
	}
	var sortedKeys []string
	for k := range keys {
		sortedKeys = append(sortedKeys, k)
	}
	sort.Strings(sortedKeys)

	for _, start := range sortedKeys {
		cycle := shortestCycle(adj, start)
		if cycle == nil {
			continue
		}
		min := cycle[0]
		for _, k := range cycle {
			if k < min {
				min = k
			}
		}
		if min != start {
			continue // reported when the walk reaches the smallest key
		}
		reportLockCycle(pass, g, edges, cycle)
	}
	return nil
}

// collectLockOrderEdges scans one function's statement lists with the
// held-set tracking lockheld uses and records an order edge for every
// acquisition — direct or through a call — under a held mutex.
func collectLockOrderEdges(n *FuncNode, direct map[string]map[string]token.Pos, trans map[string]map[string]bool, addEdge func(*lockOrderEdge)) {
	info := n.Pkg.Info

	// Calls inside a statement, excluding nested statement lists (the
	// scan descends into those itself) and go/defer (they do not run at
	// this program point).
	callsWithin := func(stmt ast.Stmt) []*ast.CallExpr {
		var nested []ast.Node
		switch s := stmt.(type) {
		case *ast.BlockStmt:
			return nil
		case *ast.IfStmt:
			nested = append(nested, s.Body)
			if s.Else != nil {
				nested = append(nested, s.Else)
			}
		case *ast.ForStmt:
			nested = append(nested, s.Body)
		case *ast.RangeStmt:
			nested = append(nested, s.Body)
		case *ast.SwitchStmt:
			nested = append(nested, s.Body)
		case *ast.TypeSwitchStmt:
			nested = append(nested, s.Body)
		}
		inNested := func(pos token.Pos) bool {
			for _, b := range nested {
				if b.Pos() <= pos && pos < b.End() {
					return true
				}
			}
			return false
		}
		var calls []*ast.CallExpr
		skip := map[ast.Node]bool{}
		ast.Inspect(stmt, func(x ast.Node) bool {
			switch v := x.(type) {
			case *ast.GoStmt:
				skip[v.Call] = true
			case *ast.DeferStmt:
				skip[v.Call] = true
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if !skip[v] && !inNested(v.Pos()) {
					calls = append(calls, v)
				}
			}
			return true
		})
		return calls
	}

	var scanList func(stmts []ast.Stmt, inherited []string)
	scanList = func(stmts []ast.Stmt, inherited []string) {
		held := append([]string(nil), inherited...)
		for _, stmt := range stmts {
			if key, kind, ok := lockCall(info, stmt); ok {
				mk, keyed := mutexKeyFromExprString(info, stmt, key)
				switch kind {
				case "lock":
					if keyed {
						for _, h := range held {
							if h != mk {
								addEdge(&lockOrderEdge{from: h, to: mk, pos: stmt.Pos(), fn: n})
							}
						}
						held = append(held, mk)
					}
				case "unlock":
					if keyed {
						for i := len(held) - 1; i >= 0; i-- {
							if held[i] == mk {
								held = append(held[:i], held[i+1:]...)
								break
							}
						}
					}
				case "defer-unlock":
					// Released only at return: held through the rest.
				}
				continue
			}
			if len(held) > 0 {
				for _, call := range callsWithin(stmt) {
					fn := calleeFunc(info, call)
					if fn == nil {
						continue
					}
					calleeID := FuncID(fn)
					acq := trans[calleeID]
					if len(acq) == 0 {
						continue
					}
					var acquired []string
					for k := range acq {
						acquired = append(acquired, k)
					}
					sort.Strings(acquired)
					for _, h := range held {
						for _, k := range acquired {
							addEdge(&lockOrderEdge{from: h, to: k, pos: call.Pos(), fn: n, viaCall: calleeID})
						}
					}
				}
			}
			switch s := stmt.(type) {
			case *ast.BlockStmt:
				scanList(s.List, held)
			case *ast.IfStmt:
				scanList(s.Body.List, held)
				if alt, ok := s.Else.(*ast.BlockStmt); ok {
					scanList(alt.List, held)
				}
			case *ast.ForStmt:
				scanList(s.Body.List, held)
			case *ast.RangeStmt:
				scanList(s.Body.List, held)
			case *ast.SwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scanList(cc.Body, held)
					}
				}
			case *ast.TypeSwitchStmt:
				for _, c := range s.Body.List {
					if cc, ok := c.(*ast.CaseClause); ok {
						scanList(cc.Body, held)
					}
				}
			}
		}
	}
	scanList(n.Decl.Body.List, nil)
}

// mutexKeyFromExprString re-resolves the mutex expression of a
// statement-level lock call (lockCall returns only its printed form)
// to an identity key.
func mutexKeyFromExprString(info *types.Info, stmt ast.Stmt, printed string) (string, bool) {
	var call *ast.CallExpr
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		call, _ = ast.Unparen(s.X).(*ast.CallExpr)
	case *ast.DeferStmt:
		call = s.Call
	}
	if call == nil {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return mutexKey(info, sel.X)
}

// shortestCycle BFSes the order graph for the shortest path start → …
// → start and returns the node sequence without the closing repeat, or
// nil. A self-edge yields the one-element cycle.
func shortestCycle(adj map[string][]string, start string) []string {
	type item struct {
		key  string
		prev *item
	}
	unwind := func(it *item) []string {
		var path []string
		for ; it != nil; it = it.prev {
			path = append(path, it.key)
		}
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		return path
	}
	queue := []*item{{key: start}}
	visited := map[string]bool{}
	for len(queue) > 0 {
		it := queue[0]
		queue = queue[1:]
		for _, next := range adj[it.key] {
			if next == start {
				return unwind(it)
			}
			if !visited[next] {
				visited[next] = true
				queue = append(queue, &item{key: next, prev: it})
			}
		}
	}
	return nil
}

// reportLockCycle renders one cycle with per-edge witnesses and the
// shortest call chain for transitive acquisitions.
func reportLockCycle(pass *ModulePass, g *CallGraph, edges map[string]*lockOrderEdge, cycle []string) {
	describe := func(e *lockOrderEdge) string {
		at := pass.Fset.Position(e.pos)
		where := shortFuncID(e.fn.ID) + " at " + trimPathPrefix(at.String())
		if e.viaCall == "" {
			return where
		}
		// PathTo-style witness: the call chain from the callee to the
		// function that locks the target directly.
		path := g.PathTo(e.viaCall, func(n *FuncNode) bool {
			return directLocks(g, n, e.to)
		}, nil)
		var hops []string
		for _, id := range path {
			hops = append(hops, shortFuncID(id))
		}
		if len(hops) == 0 {
			hops = []string{shortFuncID(e.viaCall)}
		}
		return where + " via " + strings.Join(hops, " -> ")
	}

	var chain, wits []string
	first := edges[cycle[0]+"\x00"+cycle[(1)%len(cycle)]]
	if len(cycle) == 1 {
		e := edges[cycle[0]+"\x00"+cycle[0]]
		pass.Reportf(e.pos, "potential deadlock: %s relocks %s already held (%s)",
			shortFuncID(e.fn.ID), cycle[0], describe(e))
		return
	}
	for i := range cycle {
		from, to := cycle[i], cycle[(i+1)%len(cycle)]
		e := edges[from+"\x00"+to]
		chain = append(chain, from)
		wits = append(wits, from+" -> "+to+" in "+describe(e))
	}
	chain = append(chain, cycle[0])
	pass.Reportf(first.pos,
		"potential deadlock: lock-order cycle %s (%s); acquire these mutexes in one global order",
		strings.Join(chain, " -> "), strings.Join(wits, "; "))
}

// directLocks reports whether n directly acquires the keyed mutex.
func directLocks(g *CallGraph, n *FuncNode, key string) bool {
	info := n.Pkg.Info
	found := false
	ast.Inspect(n.Decl.Body, func(x ast.Node) bool {
		if found {
			return false
		}
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil || lockMethods[FuncID(fn)] != "lock" {
			return true
		}
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
			if k, ok := mutexKey(info, sel.X); ok && k == key {
				found = true
			}
		}
		return !found
	})
	return found
}

// trimPathPrefix shortens an absolute position to its final two path
// elements so witness strings stay readable and machine-independent.
func trimPathPrefix(pos string) string {
	slash := strings.LastIndex(pos, "/")
	if slash < 0 {
		return pos
	}
	prev := strings.LastIndex(pos[:slash], "/")
	return pos[prev+1:]
}
