package lint

import "testing"

// TestRepoCleanUnderPrunerVet is the contract itself: the whole module
// must produce zero diagnostics — no raw go statements without a
// reasoned //pruner:allow, no order-sensitive map ranges, no
// process-global rand, no wall-clock reads in deterministic layers, and
// no rotted suppressions. This runs the same suite `make lint` and CI
// run, so `go test ./...` alone also enforces the contract.
func TestRepoCleanUnderPrunerVet(t *testing.T) {
	if testing.Short() {
		t.Skip("shelling out to go list; skipped in -short")
	}
	diags, err := Run([]string{"pruner/..."}, All())
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}

// TestRunSubsetKeepsOtherSuppressionsInert pins the -checks behavior:
// running a subset of analyzers over a package that carries a
// suppression for a *different* (but known) check must not misreport
// that directive as an unknown check or as unused — it is simply inert
// while its analyzer is not running. The tuner package's rawgo
// suppression is the live example.
func TestRunSubsetKeepsOtherSuppressionsInert(t *testing.T) {
	if testing.Short() {
		t.Skip("shelling out to go list; skipped in -short")
	}
	diags, err := Run([]string{"pruner/internal/tuner"}, []*Analyzer{WallTime, MapRange})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("subset run produced diagnostic: %s", d)
	}
}

// TestLoadRealPackage exercises the go list loader end to end on a real
// module package, including export-data imports of intra-module deps.
func TestLoadRealPackage(t *testing.T) {
	if testing.Short() {
		t.Skip("shelling out to go list; skipped in -short")
	}
	pkgs, err := Load([]string{"pruner/internal/parallel"})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want 1", len(pkgs))
	}
	pkg := pkgs[0]
	if pkg.Types == nil || pkg.Info == nil || len(pkg.Files) == 0 {
		t.Fatalf("package %s loaded without types or syntax", pkg.ImportPath)
	}
	// The pool package spawns goroutines by design and is exempt.
	diags, err := runAnalyzers(pkg, []*Analyzer{RawGo})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Errorf("rawgo flagged the exempt pool package: %v", diags)
	}
}
