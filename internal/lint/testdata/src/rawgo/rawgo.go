// Fixture for the rawgo analyzer: bare go statements outside
// internal/parallel are flagged.
package fixture

func spawn(work func()) {
	go work() // want `bare go statement outside internal/parallel`
}

func spawnLiteral(ch chan int) {
	go func() { ch <- 1 }() // want `bare go statement outside internal/parallel`
}

// deferOK: only go statements are fan-out; defer is fine.
func deferOK(work func()) {
	defer work()
	work()
}
