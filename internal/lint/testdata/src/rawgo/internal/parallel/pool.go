// Fixture for the rawgo analyzer's allowed package: this fixture is
// type-checked under an import path ending in internal/parallel, the
// one package that owns goroutine creation, so its go statements are
// exempt.
package parallel

func spawn(work func()) {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}
