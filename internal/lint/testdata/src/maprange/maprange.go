// Fixture for the maprange analyzer: order-sensitive effects inside
// range-over-map bodies are flagged unless the collected slice is
// sorted afterwards (the methodsSorted idiom).
package fixture

import "sort"

func appendsUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `appends to keys in map-iteration order`
	}
	return keys
}

// methodsSorted is the sanctioned idiom: collect, sort, then use.
func methodsSorted(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type kv struct {
	k string
	v int
}

// sortSliceIdiom is the struct-pair variant of the sanctioned idiom.
func sortSliceIdiom(m map[string]int) []kv {
	var pairs []kv
	for k, v := range m {
		pairs = append(pairs, kv{k, v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	return pairs
}

func sumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `accumulates floating-point values in map-iteration order`
	}
	return sum
}

// sumInts is exact under any order and stays legal.
func sumInts(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

func sends(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want `sends on a channel in map-iteration order`
	}
}

func callbacks(m map[string]int, visit func(string)) {
	for k := range m {
		visit(k) // want `calls callback visit in map-iteration order`
	}
}

type visitor struct {
	fn func(string)
}

func fieldCallback(m map[string]int, v visitor) {
	for k := range m {
		v.fn(k) // want `calls callback fn in map-iteration order`
	}
}

// staticCalls and pure reads are not effects.
func staticCalls(m map[string]int) int {
	n := 0
	for k := range m {
		n += len(k)
	}
	return n
}

// rangeOverSlice is untouched: only maps have randomized order.
func rangeOverSlice(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum
}
