// Fixture for wireshape drift detection against the deliberately stale
// lock at testdata/wirelock/drift.lock, which records: ID under wire
// name "ident", Name as an int, and a field Gone that no longer
// exists. Extra is live but unrecorded (additive notice).
package drift

import (
	"encoding/json"
	"io"
)

type record struct { // want `fixture/wireshape/drift\.record: field Gone \(wire "gone"\) was removed or renamed`
	ID    int    `json:"id"`    // want `field ID wire name changed "ident" -> "id"`
	Name  string `json:"name"`  // want `field Name type changed int -> string`
	Extra bool   `json:"extra"` // want `new wire field Extra \(wire "extra"\) is not in wire\.lock \(additive`
}

func write(w io.Writer, r record) error {
	return json.NewEncoder(w).Encode(r)
}
