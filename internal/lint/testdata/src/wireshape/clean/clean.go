// Fixture for the wireshape analyzer, matching lock file at
// testdata/wirelock/clean.lock: direct json and gob encoder roots, a
// nested struct picked up by transitive expansion, an unexported field
// kept off the wire, and a conduit helper (encodeAny) the
// parameter-flow summaries must see through.
package clean

import (
	"encoding/gob"
	"encoding/json"
	"io"
)

type record struct {
	ID      int     `json:"id"`
	Name    string  `json:"name,omitempty"`
	Latency float64 `json:"latency_us"`
	hidden  int     // unexported: not wire
	Nested  inner   `json:"nested"`
}

type inner struct {
	Tag string `json:"tag"`
}

type blob struct {
	Data []float64
}

type event struct {
	Kind string `json:"kind"`
}

func writeRecord(w io.Writer, r record) error {
	_ = r.hidden
	return json.NewEncoder(w).Encode(r)
}

func writeBlob(enc *gob.Encoder, b *blob) error {
	return enc.Encode(b)
}

// encodeAny is the indirection wireshape resolves interprocedurally.
func encodeAny(w io.Writer, v any) error {
	return json.NewEncoder(w).Encode(v)
}

func writeEvent(w io.Writer, e event) error {
	return encodeAny(w, e)
}
