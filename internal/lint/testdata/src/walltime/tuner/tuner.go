// Fixture for the walltime analyzer: this package's import path ends in
// "tuner", a deterministic layer, so wall-clock reads are flagged.
package tuner

import "time"

func bad() time.Time {
	time.Sleep(time.Millisecond) // want `time\.Sleep reads the wall clock`
	return time.Now()            // want `time\.Now reads the wall clock`
}

func badSince(t0 time.Time) time.Duration {
	return time.Since(t0) // want `time\.Since reads the wall clock`
}

// durations are values, not clock reads, and stay legal everywhere.
func double(d time.Duration) time.Duration {
	return 2 * d
}
