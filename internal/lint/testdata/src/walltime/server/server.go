// Fixture for the walltime analyzer's allowed side: "server" is a
// measurement-boundary package, so wall-clock reads are its job and
// nothing here is flagged.
package server

import "time"

func stamp() time.Time {
	time.Sleep(time.Millisecond)
	return time.Now()
}
