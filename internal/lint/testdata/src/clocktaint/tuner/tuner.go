// Fixture for the clocktaint analyzer. The package is named tuner on
// purpose: sink types are matched by their "pkg.Type" suffix, so
// fixture/clocktaint/tuner.Result exercises the same table the real
// module runs under.
package tuner

import "time"

// Result stands in for the fingerprinted result types.
type Result struct {
	FinalLatency float64
	Elapsed      float64
}

// CurvePoint stands in for convergence-curve samples.
type CurvePoint struct {
	Trial int
	Best  float64
}

// Clock mirrors obs.Clock; any Clock.Now is a taint source.
type Clock interface{ Now() int64 }

// histogram stands in for an obs instrument: not a sink.
type histogram struct{ sum float64 }

func (h *histogram) Observe(v float64) { h.sum += v }

// metered is the legal pattern: clock readings feed an instrument and
// nothing else.
func metered(c Clock, h *histogram) Result {
	start := c.Now()
	r := Result{FinalLatency: 1.0}
	h.Observe(float64(c.Now() - start))
	return r
}

// direct stores a wall-clock delta into the result.
func direct(c Clock) Result {
	start := time.Now()
	var r Result
	r.FinalLatency = 1.0
	r.Elapsed = time.Since(start).Seconds() // want `clock-derived value flows into fixture/clocktaint/tuner\.Result\.Elapsed`
	return r
}

// literal smuggles a clock reading through a composite literal.
func literal(c Clock) CurvePoint {
	t := c.Now()
	return CurvePoint{Trial: 0, Best: float64(t)} // want `clock-derived value flows into fixture/clocktaint/tuner\.CurvePoint\.Best`
}

// elapsed launders a clock reading through a return value.
func elapsed(c Clock) float64 {
	return float64(c.Now())
}

// indirect needs the interprocedural return summary to see the taint.
func indirect(c Clock) Result {
	var r Result
	r.Elapsed = elapsed(c) // want `clock-derived value flows into fixture/clocktaint/tuner\.Result\.Elapsed`
	return r
}

// setElapsed stores its argument into a result: parameter v is a sink
// conduit, computed by the parameter-flow summaries.
func setElapsed(r *Result, v float64) {
	r.Elapsed = v
}

// viaParam passes a clock reading to the conduit.
func viaParam(c Clock) Result {
	var r Result
	setElapsed(&r, float64(c.Now())) // want `clock-derived value reaches fixture/clocktaint/tuner\.setElapsed parameter "v"`
	return r
}

// throughLocal checks def-use propagation through locals and
// arithmetic before the sink write.
func throughLocal(c Clock) Result {
	t0 := c.Now()
	t1 := c.Now()
	delta := t1 - t0
	var r Result
	r.Elapsed = float64(delta) / 1e9 // want `clock-derived value flows into fixture/clocktaint/tuner\.Result\.Elapsed`
	return r
}

// cleanMath looks similar but has no clock anywhere: silent.
func cleanMath(samples []float64) Result {
	best := 0.0
	for _, s := range samples {
		if s > best {
			best = s
		}
	}
	return Result{FinalLatency: best}
}
