// Package errdrop exercises the no-silent-error-drop contract for
// internal packages.
package errdrop

import (
	"errors"
	"fmt"
	"os"
	"strings"
)

func fail() error { return errors.New("boom") }

func pair() (int, error) { return 0, nil }

func drop() {
	fail()     // want `error returned by errdrop.fail is silently dropped`
	pair()     // want `error returned by errdrop.pair is silently dropped`
	_ = fail() // explicit discard is visible in review: fine
	if err := fail(); err != nil {
		_ = err
	}
	var sb strings.Builder
	sb.WriteString("ok") // in-memory writer: exempt by callee
	fmt.Println("ok")    // print family: exempt by callee
}

func closer() error {
	f, err := os.Open("x")
	if err != nil {
		return err
	}
	defer f.Close() // deferred Close is cleanup on an error path: exempt
	f.Close()       // want `error returned by os.File.Close is silently dropped`
	return nil
}

func run(f func() error) {
	f() // want `error returned by function value is silently dropped`
}

func spawn() {
	go fail() // want `error returned by errdrop.fail is silently dropped`
}
