// Package hotalloc exercises the zero-allocation hot-path contract:
// everything reachable from a //pruner:hotpath root must avoid
// heap-allocating constructs.
package hotalloc

import "fmt"

type model struct {
	buf []float64
}

//pruner:hotpath
func (m *model) Forward(xs []float64) float64 {
	var sum float64
	for _, x := range xs {
		sum += m.kernel(x)
	}
	return sum
}

func (m *model) kernel(x float64) float64 {
	if x < 0 {
		panic(fmt.Sprintf("negative input %v", x)) // panic paths are exempt
	}
	sq := func(v float64) float64 { return v * v } // capture-free literal: static, no alloc
	sum := sq(x)
	m.buf = append(m.buf, x) // want `append without visible preallocation`
	pre := make([]float64, 0, 4)
	pre = append(pre, x) // preallocated destination: fine
	sum += pre[0]
	grown := make([]float64, 8) // arena-style slice growth is legal
	sum += grown[0]
	m.describe(x)
	_ = m.tape(x)
	return sum
}

func (m *model) describe(x float64) {
	s := fmt.Sprintf("%v", x) // want `fmt.Sprintf allocates`
	t := s + "!"              // want `string concatenation allocates`
	_ = t
	idx := map[string]int{}        // want `map literal allocates`
	counts := make(map[string]int) // want `make\(map\) allocates`
	_, _ = idx, counts
	box(x) // want `argument boxed into interface parameter`
}

func box(v any) {
	_ = v
}

func (m *model) tape(x float64) func() float64 {
	return func() float64 { return x * 2 } // want `function literal captures "x"`
}

// Not reachable from the root: fmt here is nobody's business.
func debugDump(m *model) string {
	return fmt.Sprintf("%+v", m.buf)
}
