// Fixture for the globalrand analyzer: package-level math/rand draws
// are flagged; owned *rand.Rand streams and constructors are not.
package fixture

import "math/rand"

func bad(n int) int {
	rand.Seed(42)        // want `rand\.Seed draws from the process-global source`
	rand.Shuffle(n, nil) // want `rand\.Shuffle draws from the process-global source`
	return rand.Intn(n)  // want `rand\.Intn draws from the process-global source`
}

func badValueRef() func() float64 {
	return rand.Float64 // want `rand\.Float64 draws from the process-global source`
}

// good draws from an owned stream: the same method names are fine on a
// *rand.Rand receiver.
func good(rng *rand.Rand, n int) int {
	rng.Shuffle(n, func(i, j int) {})
	return rng.Intn(n)
}

// constructors build owned streams and stay legal.
func constructors() *rand.Rand {
	return rand.New(rand.NewSource(7))
}
