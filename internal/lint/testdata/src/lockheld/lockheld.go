// Package lockheld exercises the no-blocking-under-mutex contract:
// critical sections must not park the goroutine or call into unknown
// code.
package lockheld

import (
	"sync"
	"time"
)

type server struct {
	mu    sync.Mutex
	calls int
	fn    func()
}

// Direct violations: a blocking leaf, a channel operation, and a call
// into a caller-supplied function value, all inside Lock..Unlock.
func (s *server) bad(ch chan int) {
	s.mu.Lock()
	time.Sleep(time.Second) // want `blocking call time.Sleep while s.mu is held`
	ch <- 1                 // want `channel operation while s.mu is held`
	s.fn()                  // want `call into caller-supplied function fn while s.mu is held`
	s.mu.Unlock()
}

// Transitive violation through a helper under defer-unlock.
func (s *server) deferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	sleepHelper() // want `call to lockheld.sleepHelper while s.mu is held; it can block \(lockheld.sleepHelper → time.Sleep\)`
}

func sleepHelper() {
	time.Sleep(time.Millisecond)
}

// Blocking after the unlock is legal.
func (s *server) good(ch chan int) {
	s.mu.Lock()
	s.calls++
	s.mu.Unlock()
	ch <- 1
	time.Sleep(time.Millisecond)
}

// Re-locking a mutex already held by this function is a self-deadlock.
func (s *server) relock() {
	s.mu.Lock()
	s.mu.Lock() // want `s.mu is locked again while already held; self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

// The held set flows into nested statement lists.
func (s *server) nested(cond bool, ch chan int) {
	s.mu.Lock()
	if cond {
		ch <- 1 // want `channel operation while s.mu is held`
	}
	s.mu.Unlock()
}

// A select with a default under the lock is a poll: legal.
func (s *server) poll(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case ch <- s.calls:
	default:
	}
}

// Goroutine joins under a lock are the textbook deadlock shape.
func (s *server) waits(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `blocking call sync.WaitGroup.Wait while s.mu is held`
}

// Pure in-memory reads under an RWMutex are what locks are for.
type cache struct {
	mu sync.RWMutex
	m  map[string]int
}

func (c *cache) get(k string) int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[k]
}
