// Fixture for the exhaust analyzer: switches over enum-like const sets
// must cover every declared constant or carry an explicit default.
package exhaust

// Kind is an enum: a module-defined named type with a basic underlying
// and several package-level constants.
type Kind int

const (
	KindA Kind = iota
	KindB
	KindC
)

// Mode is a string-backed enum.
type Mode string

const (
	ModeFast Mode = "fast"
	ModeSlow Mode = "slow"
)

// single has one constant: a sentinel, not an enum.
type single int

const onlyOne single = 0

// covered lists every constant: fine.
func covered(k Kind) int {
	switch k {
	case KindA:
		return 1
	case KindB:
		return 2
	case KindC:
		return 3
	}
	return 0
}

// defaulted signs off on fallthrough explicitly: fine.
func defaulted(k Kind) int {
	switch k {
	case KindA:
		return 1
	default:
		return 0
	}
}

// missing lacks KindC and has no default.
func missing(k Kind) int {
	switch k { // want `switch on fixture/exhaust\.Kind is not exhaustive: missing KindC`
	case KindA, KindB:
		return 1
	}
	return 0
}

// missingString lacks ModeSlow.
func missingString(m Mode) {
	switch m { // want `switch on fixture/exhaust\.Mode is not exhaustive: missing ModeSlow`
	case ModeFast:
	}
}

// sentinel switches over a one-constant type: silent.
func sentinel(s single) {
	switch s {
	case onlyOne:
	}
}

// dynamic has a non-constant case: coverage cannot be proven, silent.
func dynamic(k, other Kind) {
	switch k {
	case other:
	}
}

// untyped switches over a plain string: not an enum, silent.
func untyped(s string) {
	switch s {
	case "a":
	}
}
