// Fixture for the lockorder analyzer: the module-wide lock-order graph
// must be acyclic. Mutexes are keyed by field identity, so every
// instance of a struct shares one node.
package lockorder

import "sync"

type A struct{ mu sync.Mutex }
type B struct{ mu sync.Mutex }

var a A
var b B

// ab acquires A.mu then B.mu; ba inverts the order. Together they form
// the classic two-lock deadlock, reported once at the smallest key's
// witness (the second acquisition inside ab).
func ab() {
	a.mu.Lock()
	b.mu.Lock() // want `potential deadlock: lock-order cycle fixture/lockorder\.A\.mu -> fixture/lockorder\.B\.mu -> fixture/lockorder\.A\.mu`
	b.mu.Unlock()
	a.mu.Unlock()
}

func ba() {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.Mutex }
type D struct{ mu sync.Mutex }

var c C
var d D

// cd holds C.mu across a call that transitively acquires D.mu; dc does
// the inverse through its own helper. The cycle is interprocedural on
// both edges and the witness names the call chain.
func cd() {
	c.mu.Lock()
	lockD() // want `potential deadlock: lock-order cycle fixture/lockorder\.C\.mu -> fixture/lockorder\.D\.mu -> fixture/lockorder\.C\.mu .*via lockorder\.lockD`
	c.mu.Unlock()
}

func lockD() {
	d.mu.Lock()
	d.mu.Unlock()
}

func dc() {
	d.mu.Lock()
	defer d.mu.Unlock()
	lockC()
}

func lockC() {
	c.mu.Lock()
	c.mu.Unlock()
}

type E struct{ mu sync.Mutex }

var e E

// relock holds E.mu across a helper that acquires E.mu again — a
// self-cycle on the identity key (another E instance would deadlock the
// same way the moment the two are the same object).
func relock() {
	e.mu.Lock()
	again() // want `potential deadlock: lockorder\.relock relocks fixture/lockorder\.E\.mu already held`
	e.mu.Unlock()
}

func again() {
	e.mu.Lock()
	e.mu.Unlock()
}

type F struct{ mu sync.Mutex }
type G struct{ mu sync.Mutex }

var fv F
var gv G

// nested is a consistent order used twice: F.mu before G.mu everywhere
// produces edges but no cycle — silent.
func nested() {
	fv.mu.Lock()
	gv.mu.Lock()
	gv.mu.Unlock()
	fv.mu.Unlock()
}

func nestedAgain() {
	fv.mu.Lock()
	defer fv.mu.Unlock()
	gv.mu.Lock()
	gv.mu.Unlock()
}

// localOnly locks a local mutex: no stable identity, skipped.
func localOnly() {
	var mu sync.Mutex
	mu.Lock()
	gv.mu.Lock()
	gv.mu.Unlock()
	mu.Unlock()
}
