// Package ctxflow exercises the cancellation-plumbing contract: every
// function that can block must accept a context, and no library code
// may mint a fresh root context.
package ctxflow

import (
	"context"
	"net/http"
	"time"
)

// Direct blocking leaf with no context: flagged at the declaration.
func sleepy() { // want `sleepy reaches a blocking operation \(ctxflow.sleepy → time.Sleep\) but accepts no context.Context`
	time.Sleep(time.Second)
}

// Blocking laundered through a helper: the call graph catches it and the
// diagnostic explains the path.
func laundered() { // want `laundered reaches a blocking operation \(ctxflow.laundered → ctxflow.sleepy → time.Sleep\)`
	sleepy()
}

// A context parameter satisfies the contract.
func withCtx(ctx context.Context) {
	_ = ctx
	time.Sleep(time.Millisecond)
}

// Options carries a context field: the Options / search.Context idiom.
type Options struct {
	Ctx context.Context
}

func viaOptions(opt Options) {
	time.Sleep(time.Duration(len("x")))
}

// *http.Request carries a context via r.Context().
func handler(w http.ResponseWriter, r *http.Request) {
	time.Sleep(time.Millisecond)
}

// A blocking channel send is a blocking operation in its own right.
func sender(ch chan int) { // want `sender reaches a blocking operation \(ctxflow.sender → channel operation\)`
	ch <- 1
}

// A select with a default clause is a poll, not a block.
func poll(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}

// Fresh root contexts below the cmd boundary are forbidden.
func mint() context.Context {
	return context.Background() // want `context.Background mints a fresh root below the cmd boundary`
}

func fallback(ctx context.Context) context.Context {
	if ctx == nil {
		ctx = context.TODO() // want `context.TODO mints a fresh root below the cmd boundary`
	}
	return ctx
}
