// Fixture for the suppression machinery: valid directives (above-line
// and same-line) waive a diagnostic; a directive with no matching
// diagnostic, no reason, or an unknown check name must itself fail.
package fixture

func allowedAbove(work func()) {
	//pruner:allow rawgo — fixture: this site owns its goroutine by design
	go work()
}

func allowedInline(work func()) {
	go work() //pruner:allow rawgo — fixture: same-line directive form
}

//pruner:allow rawgo — fixture: nothing to suppress here, must surface as unused
func nothingHere() {}

func missingReason(work func()) {
	//pruner:allow rawgo
	go work()
}

func unknownCheck(work func()) {
	//pruner:allow nosuchcheck — a typo'd check name must not silently pass
	go work()
}
