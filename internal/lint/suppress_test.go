package lint

import (
	"strings"
	"testing"
)

// TestSuppressions drives the full directive pipeline over the suppress
// fixture: two valid //pruner:allow directives (above-line and inline)
// must waive their rawgo diagnostics; a directive with no reason and one
// naming an unknown check are malformed (and do NOT suppress); a
// directive with no matching diagnostic must surface as unused.
func TestSuppressions(t *testing.T) {
	pkg := loadFixture(t, "fixture/suppress", "suppress")
	diags, err := runAnalyzers(pkg, []*Analyzer{RawGo})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 4 {
		t.Fatalf("rawgo found %d raw diagnostics, want 4 (one per go statement): %v", len(diags), diags)
	}

	supps, bad := CollectSuppressions(pkg.Fset, pkg.Files, byName(All()))
	if len(supps) != 3 {
		t.Fatalf("parsed %d valid suppressions, want 3: %+v", len(supps), supps)
	}
	if len(bad) != 2 {
		t.Fatalf("got %d malformed-directive diagnostics, want 2: %v", len(bad), bad)
	}
	wantBad := []string{"has no reason", "unknown check"}
	for i, d := range bad {
		if !strings.Contains(d.Message, wantBad[i]) {
			t.Errorf("malformed directive %d: got %q, want mention of %q", i, d.Message, wantBad[i])
		}
	}

	kept, suppressed, unused := ApplySuppressions(diags, supps)
	// The two go statements under malformed directives survive: a broken
	// allowlist entry must not silently suppress.
	if len(kept) != 2 {
		t.Fatalf("%d diagnostics survived suppression, want 2: %v", len(kept), kept)
	}
	// The two waived diagnostics come back marked, each carrying its
	// directive's reason, so the -json output can render them.
	if len(suppressed) != 2 {
		t.Fatalf("%d diagnostics marked suppressed, want 2: %v", len(suppressed), suppressed)
	}
	for _, d := range suppressed {
		if !d.Suppressed || d.Reason == "" {
			t.Errorf("suppressed diagnostic lacks mark or reason: %+v", d)
		}
	}
	if len(unused) != 1 {
		t.Fatalf("%d unused suppressions, want 1: %v", len(unused), unused)
	}
	if !strings.Contains(unused[0].Message, "unused //pruner:allow rawgo") {
		t.Errorf("unused suppression message = %q", unused[0].Message)
	}
}

func TestSplitDirective(t *testing.T) {
	cases := []struct {
		in, check, reason string
	}{
		{" rawgo — the http serve loop owns this goroutine", "rawgo", "the http serve loop owns this goroutine"},
		{" rawgo -- double-dash separator", "rawgo", "double-dash separator"},
		{" rawgo: colon separator", "rawgo", "colon separator"},
		{" maprange emitted in fixed order", "maprange", "emitted in fixed order"},
		{" rawgo", "rawgo", ""},
		{"", "", ""},
	}
	for _, c := range cases {
		check, reason := splitDirective(c.in)
		if check != c.check || reason != c.reason {
			t.Errorf("splitDirective(%q) = (%q, %q), want (%q, %q)", c.in, check, reason, c.check, c.reason)
		}
	}
}
