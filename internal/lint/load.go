package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listPackage is the subset of `go list -json` output the loader needs.
type listPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// A LoadedPackage is one target package, parsed and type-checked from
// source, ready to be handed to analyzers.
type LoadedPackage struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// Load resolves patterns with `go list -deps -export -json`, then parses
// and type-checks every matched (non-dependency) package from source.
// Imports — stdlib and intra-module alike — are satisfied from the
// compiler's export data, which `-export` guarantees is materialized in
// the build cache; no golang.org/x/tools machinery is involved.
func Load(patterns []string) ([]*LoadedPackage, error) {
	pkgs, err := goList(patterns)
	if err != nil {
		return nil, err
	}

	// Export data for every dependency, keyed by import path. Identity
	// entries of ImportMap are omitted by go list; merge the explicit
	// ones (vendoring, test variants) on top.
	exports := make(map[string]string, len(pkgs))
	importMap := make(map[string]string)
	for _, p := range pkgs {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		for from, to := range p.ImportMap {
			importMap[from] = to
		}
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports, importMap)

	var out []*LoadedPackage
	for _, p := range pkgs {
		if p.DepOnly || p.Standard {
			continue
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		lp, err := CheckPackage(fset, p.ImportPath, p.Dir, p.GoFiles, imp)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	return out, nil
}

// exportImporter builds a types.Importer that satisfies imports from
// compiler export data files (as produced by `go list -export`), the
// stdlib-only replacement for x/tools' gcexportdata machinery.
func exportImporter(fset *token.FileSet, exports, importMap map[string]string) types.Importer {
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := importMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q (is the package listed?)", path)
		}
		return os.Open(exp)
	}
	return importer.ForCompiler(fset, "gc", lookup)
}

// goList shells out to the go tool for package metadata and export data.
func goList(patterns []string) ([]*listPackage, error) {
	args := append([]string{"list", "-deps", "-export", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}
	var pkgs []*listPackage
	dec := json.NewDecoder(&stdout)
	for {
		p := new(listPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// CheckPackage parses the named files (comments preserved — suppression
// directives live there) and type-checks them as one package. It is the
// single type-checking path for both the driver and the fixture test
// harness.
func CheckPackage(fset *token.FileSet, importPath, dir string, goFiles []string, imp types.Importer) (*LoadedPackage, error) {
	files := make([]*ast.File, 0, len(goFiles))
	for _, name := range goFiles {
		path := name
		if !filepath.IsAbs(path) {
			path = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var typeErrs []string
	conf := types.Config{
		Importer: imp,
		Error: func(err error) {
			typeErrs = append(typeErrs, err.Error())
		},
	}
	tpkg, _ := conf.Check(importPath, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s:\n  %s",
			importPath, strings.Join(typeErrs, "\n  "))
	}
	return &LoadedPackage{
		ImportPath: importPath,
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
