package lint

// WireShape extracts the module's live wire schema and locks it against
// the checked-in wire.lock golden. Roots are discovered statically:
// every argument that reaches encoding/json or encoding/gob — directly,
// or through any chain of helpers that forward a parameter into an
// encoder (the server's writeJSON(w, code, v any) idiom), which the
// parameter-flow summaries of dataflow.go resolve. Each named module
// struct found in a root expression is expanded transitively through
// its exported fields, so the schema covers the full reachable shape:
// the measure record codec, the fleet wire header (and the ir.Task it
// drags in), the HTTP/SSE view structs, and the gob model bundle.
//
// Check mode fails on breaking drift against the lock — removed or
// renamed fields/wire names, type changes, lost encodings — and emits
// additive drift (new types, new fields) as non-failing notices.
// Regeneration is an explicit act: pruner-vet -write-wire (`make
// wire-lock`), reviewed like any contract change.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
)

var WireShape = &Analyzer{
	Name:      "wireshape",
	Doc:       "the schema of every type reaching a json/gob encoder must match the checked-in wire.lock",
	RunModule: runWireShape,
}

// wireEncoders maps encoder entry points to the encoding they speak and
// the argument position carrying the wire value.
var wireEncoders = map[string]struct {
	enc string
	arg int
}{
	"encoding/json.Marshal":            {"json", 0},
	"encoding/json.MarshalIndent":      {"json", 0},
	"encoding/json.Unmarshal":          {"json", 1},
	"encoding/json.Encoder.Encode":     {"json", 0},
	"encoding/json.Decoder.Decode":     {"json", 0},
	"encoding/gob.Encoder.Encode":      {"gob", 0},
	"encoding/gob.Encoder.EncodeValue": {"gob", 0},
	"encoding/gob.Decoder.Decode":      {"gob", 0},
}

// liveWire is the extracted schema plus source positions for reporting.
type liveWire struct {
	schema   *WireSchema
	typePos  map[string]token.Position
	fieldPos map[string]map[string]token.Position
}

func runWireShape(pass *ModulePass) error {
	live := extractWireSchema(pass)

	lockPath := pass.WireLock
	if lockPath == "" {
		p, err := defaultWireLockPath()
		if err != nil {
			return err
		}
		lockPath = p
	}

	if pass.WriteWire {
		return os.WriteFile(lockPath, FormatWireLock(live.schema), 0o644)
	}

	lockFilePos := token.Position{Filename: lockPath, Line: 1, Column: 1}
	data, err := os.ReadFile(lockPath)
	if err != nil {
		if os.IsNotExist(err) {
			pass.reportAt(lockFilePos, false,
				"wire.lock is missing: the wire schema is unlocked; generate it with `pruner-vet -write-wire ./...` (make wire-lock)")
			return nil
		}
		return fmt.Errorf("wireshape: %w", err)
	}
	locked, err := ParseWireLock(data)
	if err != nil {
		pass.reportAt(lockFilePos, false, "wire.lock is unreadable: %v; regenerate with `pruner-vet -write-wire ./...`", err)
		return nil
	}

	for _, d := range diffWireSchemas(locked, live.schema) {
		pos := lockFilePos
		if fp, ok := live.fieldPos[d.TypeID][d.Field]; ok && d.Field != "" {
			pos = fp
		} else if tp, ok := live.typePos[d.TypeID]; ok {
			pos = tp
		}
		pass.reportAt(pos, !d.Breaking, "%s", d.Message)
	}
	return nil
}

// defaultWireLockPath resolves wire.lock next to the module's go.mod.
func defaultWireLockPath() (string, error) {
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		return "", fmt.Errorf("wireshape: resolving go.mod: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("wireshape: not inside a module (go env GOMOD is empty)")
	}
	return filepath.Join(filepath.Dir(gomod), "wire.lock"), nil
}

// extractWireSchema runs root discovery and transitive expansion over
// the loaded module.
func extractWireSchema(pass *ModulePass) *liveWire {
	g := pass.Graph
	byPath := map[string]*LoadedPackage{}
	for _, p := range pass.Pkgs {
		byPath[p.ImportPath] = p
	}

	// Conduit summaries: parameter i of f is a wire conduit when a value
	// passed there may reach an encoder argument, directly or through
	// further conduits.
	flows := computeParamFlows(g, nil, func(ft *funcTaint, n *FuncNode, pf paramFlow) bool {
		hit := false
		ft.forEachCall(func(call *ast.CallExpr, calleeID string) {
			if hit {
				return
			}
			if spec, ok := wireEncoders[calleeID]; ok {
				if spec.arg < len(call.Args) && ft.exprTainted(call.Args[spec.arg]) {
					hit = true
					return
				}
			}
			for i, arg := range call.Args {
				if pf.flows(calleeID, i) && ft.exprTainted(arg) {
					hit = true
					return
				}
			}
		})
		return hit
	})

	// Root collection: every expression handed to an encoder or to a
	// conduit parameter contributes the named module structs of its
	// subexpressions, under the relevant encoding.
	encodings := map[string]map[string]bool{} // type ID -> encodings
	typePos := map[string]token.Position{}
	fieldPos := map[string]map[string]token.Position{}

	var addType func(t types.Type, enc string)
	addType = func(t types.Type, enc string) {
		for {
			switch tt := t.(type) {
			case *types.Pointer:
				t = tt.Elem()
				continue
			case *types.Slice:
				t = tt.Elem()
				continue
			case *types.Array:
				t = tt.Elem()
				continue
			case *types.Map:
				t = tt.Elem()
				continue
			}
			break
		}
		named, ok := t.(*types.Named)
		if !ok || named.Obj().Pkg() == nil {
			return
		}
		pkg := byPath[named.Obj().Pkg().Path()]
		if pkg == nil {
			return // outside the loaded module: not ours to lock
		}
		if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
			return
		}
		id := named.Obj().Pkg().Path() + "." + named.Obj().Name()
		if encodings[id] == nil {
			encodings[id] = map[string]bool{}
		}
		if encodings[id][enc] {
			return
		}
		encodings[id][enc] = true

		// Canonical object from the type's own package, so positions and
		// tags come from source, not export data.
		obj := pkg.Types.Scope().Lookup(named.Obj().Name())
		if obj == nil {
			return
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			return
		}
		typePos[id] = pass.Fset.Position(obj.Pos())
		if fieldPos[id] == nil {
			fieldPos[id] = map[string]token.Position{}
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			fieldPos[id][f.Name()] = pass.Fset.Position(f.Pos())
			addType(f.Type(), enc)
		}
	}

	collectExpr := func(n *FuncNode, e ast.Expr, enc string) {
		ast.Inspect(e, func(x ast.Node) bool {
			if _, isLit := x.(*ast.FuncLit); isLit {
				return false
			}
			ex, ok := x.(ast.Expr)
			if !ok {
				return true
			}
			if tv, ok := n.Pkg.Info.Types[ex]; ok && tv.IsValue() {
				addType(tv.Type, enc)
			}
			return true
		})
	}

	for _, id := range g.sortedNodeIDs() {
		n := g.Nodes[id]
		ft := &funcTaint{node: n, info: n.Pkg.Info, tainted: map[types.Object]bool{}}
		ft.forEachCall(func(call *ast.CallExpr, calleeID string) {
			if spec, ok := wireEncoders[calleeID]; ok && spec.arg < len(call.Args) {
				collectExpr(n, call.Args[spec.arg], spec.enc)
			}
			for i, arg := range call.Args {
				if flows.flows(calleeID, i) {
					// The conduit's own encoder calls determine the
					// encoding; json is the module's conduit reality and
					// the conservative default for view helpers.
					collectExpr(n, arg, conduitEncoding(g, calleeID, i))
				}
			}
		})
	}

	// Assemble the schema deterministically.
	var ids []string
	for id := range encodings {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	schema := &WireSchema{}
	for _, id := range ids {
		var encs []string
		for e := range encodings[id] {
			encs = append(encs, e)
		}
		sort.Strings(encs)
		dot := strings.LastIndex(id, ".")
		pkg := byPath[id[:dot]]
		if pkg == nil {
			continue
		}
		obj := pkg.Types.Scope().Lookup(id[dot+1:])
		if obj == nil {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		wt := WireType{ID: id, Encodings: normalizeEncodings(encs)}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() {
				continue
			}
			wire, omit := wireName(f.Name(), st.Tag(i))
			wt.Fields = append(wt.Fields, WireField{
				Name:      f.Name(),
				Wire:      wire,
				OmitEmpty: omit,
				Type:      types.TypeString(f.Type(), func(p *types.Package) string { return p.Path() }),
			})
		}
		schema.Types = append(schema.Types, wt)
	}
	return &liveWire{schema: schema, typePos: typePos, fieldPos: fieldPos}
}

// conduitEncoding picks the encoding a conduit parameter ultimately
// reaches by inspecting the conduit body's own encoder calls; json when
// ambiguous or laundered through further conduits.
func conduitEncoding(g *CallGraph, calleeID string, arg int) string {
	n := g.Nodes[calleeID]
	if n == nil {
		return "json"
	}
	enc := ""
	ft := &funcTaint{node: n, info: n.Pkg.Info, tainted: map[types.Object]bool{}}
	ft.forEachCall(func(call *ast.CallExpr, id string) {
		if spec, ok := wireEncoders[id]; ok {
			if enc == "" {
				enc = spec.enc
			} else if enc != spec.enc {
				enc = "json"
			}
		}
	})
	if enc == "" {
		return "json"
	}
	return enc
}

// wireName derives the wire name and omitempty flag from a struct tag,
// defaulting to the Go field name (the gob and untagged-json rule).
func wireName(goName, tag string) (string, bool) {
	jt := reflect.StructTag(tag).Get("json")
	if jt == "" {
		return goName, false
	}
	parts := strings.Split(jt, ",")
	name := parts[0]
	if name == "" {
		name = goName
	}
	omit := false
	for _, opt := range parts[1:] {
		if opt == "omitempty" {
			omit = true
		}
	}
	return name, omit
}
