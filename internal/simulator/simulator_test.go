package simulator

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"pruner/internal/device"
	"pruner/internal/features"
	"pruner/internal/ir"
	"pruner/internal/schedule"
)

func flatDataflowOf(lw *schedule.Lowered) []float64 {
	return features.FlatDataflow(lw)
}

func randomSched(t *ir.Task, seed int64) *schedule.Schedule {
	g := schedule.NewGenerator(t)
	g.MaxSharedWords = device.A100.SharedPerBlock
	return g.Random(rand.New(rand.NewSource(seed)))
}

func TestLatencyDeterministic(t *testing.T) {
	task := ir.NewMatMul(256, 256, 256, ir.FP32, 1)
	s := randomSched(task, 1)
	sim := New(device.A100)
	a, err1 := sim.Latency(task, s)
	b, err2 := sim.Latency(task, s)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if a != b {
		t.Fatalf("latency not deterministic: %g vs %g", a, b)
	}
	// A fresh simulator instance must agree (nature net is seeded).
	c, _ := New(device.A100).Latency(task, s)
	if a != c {
		t.Fatalf("latency differs across simulator instances: %g vs %g", a, c)
	}
}

func TestLatencyScalesWithWork(t *testing.T) {
	sim := New(device.A100)
	small := ir.NewMatMul(256, 256, 256, ir.FP32, 0)
	big := ir.NewMatMul(2048, 2048, 2048, ir.FP32, 0)
	bestOf := func(task *ir.Task) float64 {
		g := schedule.NewGenerator(task)
		g.MaxSharedWords = device.A100.SharedPerBlock
		rng := rand.New(rand.NewSource(2))
		best := math.Inf(1)
		for i := 0; i < 64; i++ {
			if lat, err := sim.Latency(task, g.Random(rng)); err == nil && lat < best {
				best = lat
			}
		}
		return best
	}
	ls, lb := bestOf(small), bestOf(big)
	// 512x more FLOPs; the bigger GEMM also reaches far higher utilisation
	// (small kernels are launch/occupancy bound), so require >= 20x.
	if lb < ls*20 {
		t.Fatalf("big GEMM %g not sufficiently slower than small %g", lb, ls)
	}
}

func TestFailureModes(t *testing.T) {
	task := ir.NewMatMul(2048, 2048, 64, ir.FP32, 0)
	sim := New(device.A100)

	over := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{1, 2048, 1, 1, 1}, {2048, 1, 1, 1, 1},
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{64, 1, 1}},
		VectorLen:   1, UseShared: true,
	}
	if _, err := sim.Latency(task, over); !errors.Is(err, ErrTooManyThreads) {
		t.Fatalf("want ErrTooManyThreads, got %v", err)
	}

	shared := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{8, 16, 1, 16, 1}, {8, 16, 1, 16, 1},
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{1, 8, 8}},
		VectorLen:   1, UseShared: true,
	}
	if _, err := sim.Latency(task, shared); !errors.Is(err, ErrSharedOverflow) {
		t.Fatalf("want ErrSharedOverflow, got %v", err)
	}

	tcTask := ir.NewMatMul(512, 512, 256, ir.FP16, 0)
	g := schedule.NewGenerator(tcTask)
	g.TensorCore = true
	tc := g.Random(rand.New(rand.NewSource(3)))
	if tc.TensorCore {
		k80sim := New(device.K80)
		if _, err := k80sim.Latency(tcTask, tc); !errors.Is(err, ErrNoTensorCore) {
			t.Fatalf("want ErrNoTensorCore on K80, got %v", err)
		}
	}
}

func TestMeasureNoiseBounded(t *testing.T) {
	task := ir.NewMatMul(512, 512, 512, ir.FP32, 0)
	s := randomSched(task, 4)
	sim := New(device.T4)
	truth, err := sim.Latency(task, s)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	schs := make([]*schedule.Schedule, 200)
	for i := range schs {
		schs[i] = s
	}
	var sum float64
	for _, r := range sim.Measure(task, schs, rng) {
		if !r.Valid {
			t.Fatal("measurement failed unexpectedly")
		}
		if r.Latency < truth*0.9 || r.Latency > truth*1.1 {
			t.Fatalf("noise too large: %g vs truth %g", r.Latency, truth)
		}
		sum += r.Latency
	}
	mean := sum / 200
	if math.Abs(mean-truth)/truth > 0.01 {
		t.Fatalf("noise biased: mean %g truth %g", mean, truth)
	}
}

// TestCrossPlatformResidualCorrelated checks the MoA premise: residuals on
// two platforms of different families correlate positively but are not
// identical.
func TestCrossPlatformResidualCorrelated(t *testing.T) {
	task := ir.NewMatMul(512, 512, 512, ir.FP32, 0)
	g := schedule.NewGenerator(task)
	g.MaxSharedWords = device.T4.SharedPerBlock
	rng := rand.New(rand.NewSource(6))
	simA := New(device.T4)
	simB := New(device.K80)

	var xs, ys []float64
	for i := 0; i < 120; i++ {
		s := g.Random(rng)
		lw := schedule.Lower(task, s)
		xs = append(xs, simA.nature.eval(flatDataflowOf(lw)))
		ys = append(ys, simB.nature.eval(flatDataflowOf(lw)))
	}
	r := pearson(xs, ys)
	if r < 0.4 {
		t.Fatalf("cross-family residual correlation %g too low for transfer to help", r)
	}
	if r > 0.999 {
		t.Fatalf("residuals identical (r=%g): no cross-platform gap to adapt to", r)
	}
}

func pearson(xs, ys []float64) float64 {
	n := float64(len(xs))
	var sx, sy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range xs {
		cov += (xs[i] - mx) * (ys[i] - my)
		vx += (xs[i] - mx) * (xs[i] - mx)
		vy += (ys[i] - my) * (ys[i] - my)
	}
	return cov / math.Sqrt(vx*vy+1e-18)
}

func TestResidualVariesAcrossSchedules(t *testing.T) {
	task := ir.NewMatMul(512, 512, 512, ir.FP32, 0)
	g := schedule.NewGenerator(task)
	g.MaxSharedWords = device.T4.SharedPerBlock
	rng := rand.New(rand.NewSource(7))
	sim := New(device.T4)
	vals := map[float64]bool{}
	for i := 0; i < 50; i++ {
		lw := schedule.Lower(task, g.Random(rng))
		vals[sim.nature.eval(flatDataflowOf(lw))] = true
	}
	if len(vals) < 25 {
		t.Fatalf("residual nearly constant: %d distinct values / 50", len(vals))
	}
}

func TestClockAccounting(t *testing.T) {
	var c Clock
	p := DefaultCostParams(device.Orin)
	c.ChargeMeasurements(p, []float64{1e-3, 2e-3, math.Inf(1)})
	// Two real runs at overhead + latency*repeats, one failed at overhead.
	want := 3*p.MeasureOverhead + (1e-3+2e-3)*p.MeasureRepeats
	if math.Abs(c.Measurement-want) > 1e-9 {
		t.Fatalf("measurement charge %g want %g", c.Measurement, want)
	}
	var d Clock
	d.Exploration = 1
	d.Training = 2
	d.Measurement = 3
	c.Add(d)
	if c.Total() != c.Exploration+c.Training+c.Measurement {
		t.Fatal("Total must sum categories")
	}
}

// TestTable1ExplorationShare verifies the calibrated cost constants give
// Table 1's headline: exploration is a large share (~40%) of Ansor's
// tuning cost on Orin.
func TestTable1ExplorationShare(t *testing.T) {
	p := DefaultCostParams(device.Orin)
	// Ansor: 200 rounds x ~8000 learned-model evaluations + 2000 trials.
	explore := 200 * 8000 * (p.FeatureExtract + p.ModelInfer)
	measure := 2000 * (p.MeasureOverhead + 2e-3*p.MeasureRepeats)
	share := explore / (explore + measure)
	if share < 0.30 || share > 0.55 {
		t.Fatalf("exploration share %g outside Table 1's regime", share)
	}
}

func TestFP16FasterThanFP32(t *testing.T) {
	f32 := ir.NewMatMul(1024, 1024, 1024, ir.FP32, 0)
	f16 := ir.NewMatMul(1024, 1024, 1024, ir.FP16, 0)
	bestOf := func(task *ir.Task, tc bool) float64 {
		g := schedule.NewGenerator(task)
		g.MaxSharedWords = device.A100.SharedPerBlock
		g.TensorCore = tc
		rng := rand.New(rand.NewSource(8))
		sim := New(device.A100)
		best := math.Inf(1)
		for i := 0; i < 80; i++ {
			if lat, err := sim.Latency(task, g.Random(rng)); err == nil && lat < best {
				best = lat
			}
		}
		return best
	}
	l32 := bestOf(f32, false)
	l16tc := bestOf(f16, true)
	if l16tc >= l32 {
		t.Fatalf("TensorCore FP16 (%g) should beat FP32 (%g)", l16tc, l32)
	}
}
