package simulator

import "pruner/internal/device"

// Clock accumulates simulated wall-clock seconds of a tuning session,
// split into the three categories of the paper's Table 1: schedule-space
// exploration (feature extraction + cost-model inference), cost-model
// training, and on-device kernel measurement.
type Clock struct {
	Exploration float64
	Training    float64
	Measurement float64
}

// Total is the end-to-end compilation time in seconds.
func (c *Clock) Total() float64 { return c.Exploration + c.Training + c.Measurement }

// Add accumulates another clock (e.g. per-task clocks into a session
// clock).
func (c *Clock) Add(o Clock) {
	c.Exploration += o.Exploration
	c.Training += o.Training
	c.Measurement += o.Measurement
}

// CostParams are the per-operation time constants of the simulated clock,
// calibrated so that Ansor with 2,000 trials on Orin reproduces Table 1
// (exploration ≈ 35 min, training ≈ 5.4 min, measurement ≈ 44.4 min).
type CostParams struct {
	// FeatureExtract is the CPU seconds to featurise one candidate for a
	// learned cost model.
	FeatureExtract float64
	// ModelInfer is the amortised seconds to score one candidate with a
	// learned cost model (GPU-batched in the paper's setup).
	ModelInfer float64
	// DraftEval is the seconds for one Symbol-based-Analyzer evaluation —
	// the cheap empirical formula.
	DraftEval float64
	// TrainPerSample is the seconds per (sample x epoch) of online
	// cost-model training.
	TrainPerSample float64
	// MeasureOverhead is the fixed per-trial cost: compile, upload, sync.
	MeasureOverhead float64
	// MeasureRepeats is the number of on-device runs averaged per trial.
	MeasureRepeats float64
}

// DefaultCostParams returns calibrated constants for a device. Host-side
// costs scale with the platform's host speed (edge devices tune slower).
func DefaultCostParams(dev *device.Device) CostParams {
	host := 1.0
	switch dev.Family {
	case "ampere": // A100 server host
		host = 0.62
	case "volta": // Titan V workstation
		host = 0.78
	case "turing":
		host = 0.80
	case "kepler":
		host = 1.1
	}
	return CostParams{
		FeatureExtract:  0.90e-3 * host,
		ModelInfer:      0.41e-3 * host,
		DraftEval:       0.035e-3 * host,
		TrainPerSample:  1.0e-4 * host,
		MeasureOverhead: 0.90,
		MeasureRepeats:  400,
	}
}

// ChargeMeasurements adds the simulated time of measuring the given
// latencies (seconds each); failed measurements still pay the overhead.
func (c *Clock) ChargeMeasurements(p CostParams, latencies []float64) {
	for _, l := range latencies {
		cost := p.MeasureOverhead
		if l > 0 && l < 1e3 {
			cost += l * p.MeasureRepeats
		}
		c.Measurement += cost
	}
}
