// Package simulator substitutes for the paper's GPU testbeds. It provides
// the ground-truth latency of a (task, schedule) pair on a device via an
// analytic execution model that is deliberately richer than the draft
// model's formula — wave-based block scheduling under occupancy limits,
// compute/memory overlap, coalescing, L2 reuse, bank conflicts, register
// spills, launch and synchronisation overheads — plus a hidden
// per-platform residual computed by a fixed random network over the
// program's dataflow behaviour.
//
// The residual is the crux of the substitution (DESIGN.md §2): the
// Symbol-based Analyzer cannot see it, learned cost models can learn it,
// and dataflow features are its natural inputs, so the paper's ordering
// SA < TenSetMLP/TLP < PaCM emerges from structure rather than from
// hard-coded outcomes. Residual networks of different device families
// share a common component, reproducing the partial cross-platform
// transferability MoA exploits.
package simulator

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"

	"pruner/internal/device"
	"pruner/internal/features"
	"pruner/internal/ir"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
)

// Common measurement failure modes, mirroring how real TVM builds reject
// schedules.
var (
	ErrTooManyThreads = errors.New("simulator: thread block exceeds device limit")
	ErrSharedOverflow = errors.New("simulator: shared memory allocation exceeds device limit")
	ErrNoTensorCore   = errors.New("simulator: tensorcore schedule on device without wmma")
)

// Config tunes the hidden parts of the ground truth. Zero value gives the
// calibrated defaults used by all experiments.
type Config struct {
	// ResidualScale bounds the learnable platform residual:
	// latency *= exp(ResidualScale * tanh-net(dataflow)).
	ResidualScale float64
	// MicroNoiseScale bounds the unlearnable per-schedule deterministic
	// jitter (microarchitectural chaos); keeps Top-1 below 1 for every
	// model.
	MicroNoiseScale float64
	// FamilyCorrelation in [0,1] is the weight of the shared residual
	// component across device families.
	FamilyCorrelation float64
	// MeasureNoise is the multiplicative stddev of one on-device
	// measurement.
	MeasureNoise float64
}

// DefaultMeasureNoise is the calibrated measurement-noise stddev of a
// default simulator. Remote measurement backends (measure.Fleet) use it as
// their session-side noise scale so default fleet-backed and
// simulator-backed sessions are bitwise interchangeable.
const DefaultMeasureNoise = 0.015

func (c Config) withDefaults() Config {
	if c.ResidualScale == 0 {
		c.ResidualScale = 0.15
	}
	if c.MicroNoiseScale == 0 {
		c.MicroNoiseScale = 0.02
	}
	if c.FamilyCorrelation == 0 {
		c.FamilyCorrelation = 0.8
	}
	if c.MeasureNoise == 0 {
		c.MeasureNoise = DefaultMeasureNoise
	}
	return c
}

// Simulator measures programs on one simulated device.
type Simulator struct {
	Dev    *device.Device
	cfg    Config
	nature *natureNet
}

// New builds a simulator for the device with default configuration.
func New(dev *device.Device) *Simulator {
	return NewWithConfig(dev, Config{})
}

// NewWithConfig builds a simulator with explicit hidden-model settings.
func NewWithConfig(dev *device.Device, cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	return &Simulator{
		Dev:    dev,
		cfg:    cfg,
		nature: newNatureNet(dev.Family, cfg.FamilyCorrelation),
	}
}

// Latency returns the deterministic true latency in seconds of one kernel
// execution, or a build/launch error.
func (s *Simulator) Latency(t *ir.Task, sch *schedule.Schedule) (float64, error) {
	lw := schedule.Lower(t, sch)
	return s.LatencyLowered(lw)
}

// LatencyLowered is Latency over an already-lowered program.
func (s *Simulator) LatencyLowered(lw *schedule.Lowered) (float64, error) {
	d := s.Dev
	t, sch := lw.Task, lw.Sched

	threads := lw.ThreadsPerBlock
	if threads <= 0 || threads > d.MaxThreads {
		return 0, fmt.Errorf("%w: %d threads", ErrTooManyThreads, threads)
	}
	if sch.TensorCore && d.WMMA == 0 {
		return 0, ErrNoTensorCore
	}
	elemBytes := float64(t.Precision.Bytes())
	sharedWords4 := lw.SharedPerBlock * elemBytes / device.BytesPerWord
	if int(sharedWords4) > d.SharedPerBlock {
		return 0, fmt.Errorf("%w: %d words", ErrSharedOverflow, int(sharedWords4))
	}

	// Occupancy: registers are clamped (spilling, penalised below) rather
	// than rejected.
	regWords := lw.RegsPerThread*elemBytes/device.BytesPerWord + 24 // launch bookkeeping
	spill := 1.0
	if regWords > float64(d.RegsPerThread) {
		spill = 1 + 0.6*math.Min(3, regWords/float64(d.RegsPerThread)-1)
		regWords = float64(d.RegsPerThread)
	}
	blocksPerSM, occ := d.Occupancy(threads, int(regWords), int(sharedWords4))
	if blocksPerSM == 0 {
		return 0, fmt.Errorf("%w: unable to place block", ErrSharedOverflow)
	}

	tComp := s.computeTime(lw, occ, blocksPerSM)
	tMem := s.memoryTime(lw, occ)

	// Compute/memory overlap: the longer stream dominates, the shorter is
	// partially hidden.
	lat := math.Max(tComp, tMem) + 0.15*math.Min(tComp, tMem)
	lat *= spill

	// Synchronisation: one barrier per shared refill trip per resident
	// wave.
	if lw.SharedPerBlock > 0 {
		trips := 1.0
		for dIdx := range sch.ReduceTiles {
			trips *= float64(sch.ReduceTiles[dIdx][schedule.RLvlOuter])
		}
		waves := math.Ceil(float64(lw.Blocks) / float64(d.NumSMs*blocksPerSM))
		lat += trips * waves * 3e-8
	}
	lat += d.LaunchOverhead

	// Hidden platform residual + deterministic micro jitter.
	lat *= math.Exp(s.cfg.ResidualScale * s.nature.eval(features.FlatDataflow(lw)))
	lat *= 1 + s.cfg.MicroNoiseScale*hashJitter(t.ID+sch.Fingerprint()+d.Name)
	return lat, nil
}

// computeTime models the compute stream.
func (s *Simulator) computeTime(lw *schedule.Lowered, occ float64, blocksPerSM int) float64 {
	d := s.Dev
	t, sch := lw.Task, lw.Sched
	if lw.TotalFlops == 0 {
		return 0
	}
	peak := d.PeakFLOPS
	switch {
	case sch.TensorCore && d.PeakTensorF > 0:
		peak = d.PeakTensorF
	case t.Precision == ir.FP16:
		peak = d.PeakFLOPS * 2 // packed half2 on CUDA cores
	}

	// Latency hiding requires occupancy; compute saturates faster than
	// memory.
	occEff := math.Min(1, math.Pow(occ/0.45, 0.6))
	// Instruction-level parallelism from the serial inner tile.
	ilp := 1.0
	for dIdx := range sch.SpatialTiles {
		ilp *= float64(sch.InnerTile(dIdx))
	}
	ilpEff := math.Min(1, 0.62+0.08*math.Log2(1+ilp))
	// Partial warps waste lanes.
	warpEff := float64(lw.ThreadsPerBlock) / (math.Ceil(float64(lw.ThreadsPerBlock)/float64(d.WarpSize)) * float64(d.WarpSize))
	// Tail wave quantisation.
	slots := float64(d.NumSMs * blocksPerSM)
	waveEff := float64(lw.Blocks) / (math.Ceil(float64(lw.Blocks)/slots) * slots)
	waveEff = math.Max(waveEff, 0.05)
	// Unrolling helps up to the instruction-cache limit.
	unrollEff := 1.0
	if sch.UnrollStep > 0 {
		unrollEff = 1 + 0.10*math.Min(1, float64(sch.UnrollStep)/64)
		if body := ilp * float64(sch.UnrollStep); body > 4096 {
			unrollEff -= 0.12 * math.Min(1, math.Log2(body/4096)/4)
		}
	}
	tcEff := 1.0
	if sch.TensorCore {
		tcEff = s.tensorCoreEff(lw)
	}
	eff := occEff * ilpEff * warpEff * waveEff * unrollEff * tcEff
	eff = math.Max(eff, 0.005)
	return lw.TotalFlops / (peak * eff)
}

// tensorCoreEff models wmma pipeline utilisation: fragment coverage per
// warp and reduction pipelining depth.
func (s *Simulator) tensorCoreEff(lw *schedule.Lowered) float64 {
	d := s.Dev
	sch := lw.Sched
	n := len(sch.SpatialTiles)
	if n < 2 || len(sch.ReduceTiles) == 0 {
		return 0.3
	}
	w := float64(d.WMMA)
	mTile := float64(sch.RegTile(n-2) * sch.SpatialTiles[n-2][schedule.LvlThread])
	nTile := float64(sch.RegTile(n-1) * sch.SpatialTiles[n-1][schedule.LvlThread])
	kInner := 1.0
	for dIdx := range sch.ReduceTiles {
		kInner *= float64(sch.ReduceInner(dIdx))
	}
	warps := math.Max(1, math.Ceil(float64(lw.ThreadsPerBlock)/float64(d.WarpSize)))
	frags := (mTile / w) * (nTile / w)
	cover := math.Min(1, frags/warps)
	pipeline := math.Min(1, 0.35+0.25*math.Log2(math.Max(1, kInner/w)))
	return math.Max(0.05, cover*pipeline)
}

// memoryTime models the memory stream statement by statement.
func (s *Simulator) memoryTime(lw *schedule.Lowered, occ float64) float64 {
	d := s.Dev
	t := lw.Task
	elemBytes := float64(t.Precision.Bytes())
	occMemEff := math.Min(1, math.Pow(occ/0.25, 0.5))
	occMemEff = math.Max(occMemEff, 0.05)

	var total float64
	for i := range lw.Stmts {
		st := &lw.Stmts[i]
		if st.MoveWords == 0 || (st.From != schedule.L2 && st.To != schedule.L2) {
			continue
		}
		bytes := st.MoveWords * elemBytes
		// Coalescing: contiguous run vs transaction size, improved by
		// vectorised access.
		run := st.ContigRun * float64(lw.Sched.VectorLen)
		transEff := run / (math.Ceil(run/float64(d.Transaction)) * float64(d.Transaction))
		transEff = math.Max(transEff, 1.0/float64(d.Transaction))
		bw := d.PeakBW * transEff * occMemEff

		// L2 reuse: traffic beyond the unique footprint hits cache when
		// the footprint fits.
		unique := s.uniqueBytes(lw, st)
		if unique > 0 && unique < float64(d.L2CacheBytes) && bytes > unique {
			excess := bytes - unique
			total += unique/bw + excess/(bw*3.2)
		} else {
			total += bytes / bw
		}
	}

	// Shared-memory bank conflicts throttle the compute stream's operand
	// feed; charge them on the memory side as extra shared traffic time.
	if lw.SharedPerBlock > 0 {
		last := len(lw.Sched.SpatialTiles) - 1
		inner := lw.Sched.InnerTile(last)
		conflicts := gcd(maxI(inner, 1), 32)
		if conflicts > 1 {
			sharedBytes := lw.ThreadCompute * float64(lw.Blocks) * elemBytes / 8
			sharedBW := d.PeakFLOPS * 1.5 // bytes/s proxy for smem throughput
			total += sharedBytes * float64(conflicts-1) / 8 / sharedBW
		}
	}
	return total
}

// uniqueBytes returns the operand's compulsory footprint for L2 modelling.
func (s *Simulator) uniqueBytes(lw *schedule.Lowered, st *schedule.Statement) float64 {
	t := lw.Task
	elemBytes := float64(t.Precision.Bytes())
	name := st.Buffer
	for i := range t.Inputs {
		o := &t.Inputs[i]
		if name == o.Name || name == o.Name+".shared" {
			elems := 1.0
			for _, d := range o.SpatialIdx {
				elems *= float64(t.Spatial[d])
			}
			for _, r := range o.ReduceIdx {
				elems *= float64(t.Reduce[r])
			}
			return elems * elemBytes
		}
	}
	return float64(t.OutputPoints()) * elemBytes
}

// Result is one simulated on-device measurement.
type Result struct {
	Latency float64 // seconds; +Inf on failure
	Valid   bool
	Err     error
}

// Measure runs one noisy measurement per schedule, as the tuner's
// measurement stage would on hardware. rng drives the measurement noise
// only; the underlying true latency is deterministic.
func (s *Simulator) Measure(t *ir.Task, schs []*schedule.Schedule, rng *rand.Rand) []Result {
	return s.MeasurePool(t, schs, rng, nil)
}

// MeasurePool is Measure fanned over a worker pool (nil runs serially).
// The pure latency-model evaluations run concurrently; the noise draws
// stay on the caller's goroutine, one per *valid* build in index order —
// exactly the sequence the serial implementation consumes — so a batch is
// bitwise identical at any worker count and to the serial Measure.
func (s *Simulator) MeasurePool(t *ir.Task, schs []*schedule.Schedule, rng *rand.Rand, pool *parallel.Pool) []Result {
	return s.MeasureMemoPool(t, schs, rng, pool, nil)
}

// MeasureMemoPool is MeasurePool resolving lowerings through a round
// memo, so candidates the search stages already lowered are not lowered
// again for measurement (and their cached dataflow features feed the
// residual model). A nil memo lowers directly; results are identical
// either way.
func (s *Simulator) MeasureMemoPool(t *ir.Task, schs []*schedule.Schedule, rng *rand.Rand, pool *parallel.Pool, memo *schedule.Memo) []Result {
	out := make([]Result, len(schs))
	pool.ForEach(len(schs), func(i int) {
		lat, err := s.LatencyLowered(memo.Lower(t, schs[i]))
		if err != nil {
			out[i] = Result{Latency: math.Inf(1), Err: err}
			return
		}
		out[i] = Result{Latency: lat, Valid: true}
	})
	ApplyNoise(out, rng, s.cfg.MeasureNoise)
	return out
}

// MeasureNoise reports the simulator's measurement-noise stddev (the
// measure.Sim adapter surfaces it so the session applies the configured
// noise at commit time).
func (s *Simulator) MeasureNoise() float64 { return s.cfg.MeasureNoise }

// ApplyNoise applies one multiplicative measurement-noise draw per valid
// result, in index order — exactly the sequence the serial measurement
// path has always consumed, so refactors that move the noise application
// (the measurement interface applies it at pipeline commit) stay bitwise
// identical.
func ApplyNoise(out []Result, rng *rand.Rand, scale float64) {
	for i := range out {
		if !out[i].Valid {
			continue
		}
		noise := 1 + scale*rng.NormFloat64()
		if noise < 0.5 {
			noise = 0.5
		}
		out[i].Latency *= noise
	}
}

// ---------------------------------------------------------------------------
// Hidden residual network.

// natureNet is a fixed random function over the flattened dataflow
// matrix: a 2-layer tanh network plus explicit pairwise interaction terms
// between entries of *different* dataflow rows. The pairwise part is the
// deliberate bias of the substitution: cross-statement interactions are
// representable by attention over the dataflow sequence (PaCM) but not by
// a sum of per-statement embeddings (TenSetMLP). Weights blend a shared
// component with a per-family component.
type natureNet struct {
	w1 [][]float64 // hidden x input
	b1 []float64
	w2 []float64

	pairI, pairJ []int
	pairW        []float64
}

const (
	natureHidden = 24
	naturePairs  = 96
)

func newNatureNet(family string, corr float64) *natureNet {
	in := features.DataflowSeq * features.DataflowDim
	shared := rand.New(rand.NewSource(0x5EEDBA5E))
	specific := rand.New(rand.NewSource(int64(hash64("nature:" + family))))
	mix := math.Sqrt(1 - corr*corr)
	blend := func() float64 { return corr*shared.NormFloat64() + mix*specific.NormFloat64() }
	n := &natureNet{
		w1: make([][]float64, natureHidden),
		b1: make([]float64, natureHidden),
		w2: make([]float64, natureHidden),
	}
	scale := 1 / math.Sqrt(float64(in))
	for h := 0; h < natureHidden; h++ {
		n.w1[h] = make([]float64, in)
		for j := 0; j < in; j++ {
			n.w1[h][j] = blend() * scale
		}
		n.b1[h] = 0.3 * blend()
		n.w2[h] = blend() / math.Sqrt(natureHidden)
	}
	// Pairwise terms: both indices drawn by the shared stream so all
	// platforms interact over the same entry pairs, with blended weights.
	// Indices are forced onto different dataflow rows.
	for p := 0; p < naturePairs; p++ {
		i := shared.Intn(in)
		j := shared.Intn(in)
		for j/features.DataflowDim == i/features.DataflowDim {
			j = shared.Intn(in)
		}
		n.pairI = append(n.pairI, i)
		n.pairJ = append(n.pairJ, j)
		n.pairW = append(n.pairW, blend()/math.Sqrt(naturePairs))
	}
	return n
}

// eval returns a value in (-1, 1).
func (n *natureNet) eval(x []float64) float64 {
	var out float64
	for h := range n.w1 {
		acc := n.b1[h]
		w := n.w1[h]
		for j := range x {
			// Inputs are log-scaled counts; damp to keep tanh responsive.
			acc += w[j] * x[j] * 0.25
		}
		out += n.w2[h] * math.Tanh(acc)
	}
	var pair float64
	for p := range n.pairW {
		pair += n.pairW[p] * math.Tanh(x[n.pairI[p]]*0.25) * math.Tanh(x[n.pairJ[p]]*0.25)
	}
	// The pairwise component dominates: the residual is chiefly about how
	// data-movement stages interact, which is what dataflow attention can
	// represent and summed statement embeddings cannot.
	return math.Tanh(0.6*out + 2.6*pair)
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s)) // hash.Hash.Write never fails
	return h.Sum64()
}

// hashJitter maps a string deterministically to (-1, 1).
func hashJitter(s string) float64 {
	h := hash64(s)
	return (float64(h%2000001)/1000000 - 1)
}

func gcd(a, b int) int {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func maxI(a, b int) int {
	if a > b {
		return a
	}
	return b
}
