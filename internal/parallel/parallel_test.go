package parallel

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 3, 8, 64} {
		p := New(workers)
		const n = 1000
		counts := make([]int32, n)
		p.ForEach(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestNilPoolIsSerial(t *testing.T) {
	var p *Pool
	if got := p.Workers(); got != 1 {
		t.Fatalf("nil pool workers = %d, want 1", got)
	}
	sum := 0
	p.ForEach(10, func(i int) { sum += i }) // data race here would fail -race
	if sum != 45 {
		t.Fatalf("serial ForEach sum = %d, want 45", sum)
	}
}

func TestForEachSmallerThanWorkers(t *testing.T) {
	p := New(16)
	var visits atomic.Int32
	p.ForEach(3, func(int) { visits.Add(1) })
	if visits.Load() != 3 {
		t.Fatalf("visits = %d, want 3", visits.Load())
	}
	p.ForEach(0, func(int) { t.Fatal("fn called for n=0") })
}

func TestMapPreservesIndexOrder(t *testing.T) {
	p := New(8)
	out := Map(p, 100, func(i int) int { return i * i })
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestNewClampsWorkerCount(t *testing.T) {
	if New(0).Workers() < 1 {
		t.Fatal("New(0) must default to at least one worker")
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d", got)
	}
}

func TestSplitSeedStreamsDiffer(t *testing.T) {
	seen := map[int64]int64{}
	for stream := int64(0); stream < 1000; stream++ {
		s := SplitSeed(42, stream)
		if prev, dup := seen[s]; dup {
			t.Fatalf("streams %d and %d collide on seed %d", prev, stream, s)
		}
		seen[s] = stream
	}
	if SplitSeed(1, 0) == SplitSeed(2, 0) {
		t.Fatal("different base seeds must derive different streams")
	}
	if SplitSeed(7, 3) != SplitSeed(7, 3) {
		t.Fatal("SplitSeed must be deterministic")
	}
}

// TestNestedForEachSharesBudget pins the anti-multiplication property:
// when ForEach calls nest (suite fan-out over sessions that fan out
// scoring), total concurrency stays within one pool budget rather than
// multiplying per level.
func TestNestedForEachSharesBudget(t *testing.T) {
	const budget = 4
	p := New(budget)
	var cur, peak atomic.Int32
	p.ForEach(8, func(int) {
		p.ForEach(8, func(int) {
			c := cur.Add(1)
			for {
				pk := peak.Load()
				if c <= pk || peak.CompareAndSwap(pk, c) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
		})
	})
	if got := peak.Load(); got > budget {
		t.Fatalf("peak concurrency %d exceeds the pool budget %d", got, budget)
	}
}
