// Package parallel is the worker-pool execution runtime shared by the
// tuning session's hot paths: draft scoring in search, batched cost-model
// inference, simulated measurement, and the experiment/CLI fan-out over
// independent tasks and networks.
//
// The pool only ever runs pure, index-addressed work (fn(i) writes out[i]);
// all random draws stay on the serial caller path. That split is what makes
// a session's Result bitwise identical at any worker count: parallelism
// changes who computes a value, never which value is computed.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool bounds the concurrency of one tuning session, experiment suite or
// CLI invocation. The bound is a real budget, not a per-call width: the
// pool holds a shared semaphore, so when ForEach calls nest (a suite
// fanning sessions out while each session fans its candidate scoring) the
// helper goroutines of every level draw on the same allowance and total
// concurrency stays at Workers instead of multiplying layer by layer.
// The zero worker count and the nil pool both degrade to serial
// execution, so call sites never need to special-case "no pool".
type Pool struct {
	workers int
	// sem holds the shared helper-goroutine budget: Workers-1 slots,
	// because every ForEach caller works unconditionally and only extra
	// goroutines need a slot. Acquisition never blocks (a full budget
	// just means the caller proceeds alone), so nesting cannot deadlock.
	sem chan struct{}
}

// New builds a pool with the given worker budget; workers <= 0 selects
// runtime.NumCPU().
func New(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers-1)}
}

// Workers reports the pool's concurrency budget; a nil pool is serial.
func (p *Pool) Workers() int {
	if p == nil || p.workers < 1 {
		return 1
	}
	return p.workers
}

// ForEach runs fn(i) for every i in [0, n), fanned across the pool's
// budget with dynamic load balancing (an atomic index, so uneven items —
// e.g. schedules of very different sizes — do not leave workers idle).
// It blocks until all items complete. fn must be safe to call concurrently
// and should only write state owned by its index. A nil or single-worker
// pool, or an exhausted budget, runs inline on the caller's goroutine.
func (p *Pool) ForEach(n int, fn func(i int)) {
	if p == nil || p.workers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			fn(i)
		}
	}
	helpers := p.workers - 1
	if helpers > n-1 {
		helpers = n - 1
	}
	var wg sync.WaitGroup
spawn:
	for k := 0; k < helpers; k++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func() {
				defer func() {
					<-p.sem
					wg.Done()
				}()
				run()
			}()
		default:
			break spawn // budget in use elsewhere; the caller still works
		}
	}
	run() // the caller is always a worker
	wg.Wait()
}

// Map runs fn over [0, n) on the pool and collects the results in index
// order.
func Map[T any](p *Pool, n int, fn func(i int) T) []T {
	out := make([]T, n)
	p.ForEach(n, func(i int) { out[i] = fn(i) })
	return out
}

// defaultPool serves call sites that are not bound to a session pool
// (e.g. facade-level model evaluation outside a tuning session).
var defaultPool = New(0)

// Default returns the process-wide pool sized to the machine.
func Default() *Pool { return defaultPool }

// SplitSeed derives an independent deterministic seed for a numbered
// stream (per-task, per-worker, per-session). It is a splitmix64
// finalizer over the golden-ratio sequence, so neighbouring stream
// indices yield statistically unrelated generators — unlike the raw
// seed^index trick, which correlates low bits across streams.
func SplitSeed(seed, stream int64) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(stream+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}
