// Package features encodes lowered tensor programs into the three feature
// families the paper's cost models consume:
//
//   - Statement features: per-innermost-statement vectors in the style of
//     Ansor/TenSet (164 dims per statement).
//   - Temporal dataflow features: the PaCM multi-tiling pattern — one
//     23-dim embedding per data-block movement, a fixed-length sequence
//     (Figure 4). Pure elementwise subgraphs are zero-padded, as in the
//     paper.
//   - Primitive features: TLP-style one-hot encodings of the schedule
//     primitive sequence, where only split factors vary between programs
//     of a task.
package features

import (
	"math"

	"pruner/internal/schedule"
)

// Dimensions of the three feature families.
const (
	// StmtDim matches Ansor/TenSet's 164-dim per-statement features.
	StmtDim = 164
	// DataflowDim is the paper's 23-dim data-block embedding.
	DataflowDim = 23
	// DataflowSeq is the fixed sequence length (Figure 4: Dim(10,23)).
	DataflowSeq = 10
	// PrimDim is the per-token width of the TLP primitive encoding.
	PrimDim = 64
	// PrimSeq is the primitive sequence length.
	PrimSeq = 24
)

// Feature-cache slots on schedule.Lowered, one per family. The public
// extractors route through Lowered.FeatureRows, so a program shared via a
// round's lowering memo is featurized at most once per family no matter
// how many pipeline stages touch it. Returned matrices are shared:
// callers must treat them as read-only.
const (
	slotStatement = iota
	slotDataflow
	slotPrimitives
)

// lg is a sign-safe log2(1+x) used for all count-valued features.
func lg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Log2(1 + x)
}

// Statement returns one StmtDim-wide row per statement of the lowered
// program. The leading entries carry real signal; the tail is zero padding
// up to the Ansor-compatible width. The result is cached on lw and shared
// between callers — read-only.
func Statement(lw *schedule.Lowered) [][]float64 {
	return lw.FeatureRows(slotStatement, statementRows)
}

func statementRows(lw *schedule.Lowered) [][]float64 {
	rows := make([][]float64, 0, len(lw.Stmts))
	ctx := contextFeatures(lw)
	for i := range lw.Stmts {
		st := &lw.Stmts[i]
		row := make([]float64, StmtDim)
		// Kind one-hot (6 slots).
		row[int(st.Kind)] = 1
		// Level one-hots.
		row[6+int(st.From)] = 1
		row[9+int(st.To)] = 1
		j := 12
		put := func(v float64) { row[j] = v; j++ }
		put(lg(st.Flops))
		put(lg(st.MoveWords))
		put(lg(st.AllocWords))
		put(lg(st.Reuse))
		put(lg(st.ContigRun))
		put(lg(st.StrideElems))
		put(lg(float64(st.Threads)))
		put(lg(st.Trips))
		put(boolF(st.TensorCore))
		// Derived intensities.
		put(lg(st.Flops / math.Max(st.MoveWords, 1)))
		put(lg(st.MoveWords / math.Max(float64(st.Threads), 1)))
		put(lg(st.Flops / math.Max(float64(st.Threads), 1)))
		// Transaction-efficiency proxy of the From-side access.
		put(quantEff(st.ContigRun, 32))
		// Schedule context (shared across statements).
		copy(row[j:], ctx)
		rows = append(rows, row)
	}
	return rows
}

// contextFeatures are schedule-level scalars appended to every statement
// row and every dataflow row.
func contextFeatures(lw *schedule.Lowered) []float64 {
	s := lw.Sched
	ctx := []float64{
		lg(float64(lw.Blocks)),
		lg(float64(lw.ThreadsPerBlock)),
		lg(float64(lw.VThreads)),
		lg(lw.RegsPerThread),
		lg(lw.SharedPerBlock),
		lg(lw.ThreadCompute),
		lg(lw.GlobalWords),
		lg(lw.TotalFlops),
		float64(s.VectorLen),
		lg(float64(s.UnrollStep)),
		boolF(s.UseShared),
		boolF(s.TensorCore),
		float64(lw.ThreadsPerBlock%32) / 32,
	}
	// Per-axis inner tiles (up to 4 spatial, 2 reduce axes).
	for d := 0; d < 4; d++ {
		if d < len(s.SpatialTiles) {
			ctx = append(ctx, lg(float64(s.RegTile(d))), lg(float64(s.SpatialTiles[d][schedule.LvlThread])))
		} else {
			ctx = append(ctx, 0, 0)
		}
	}
	for d := 0; d < 2; d++ {
		if d < len(s.ReduceTiles) {
			ctx = append(ctx, lg(float64(s.ReduceInner(d))), lg(float64(s.ReduceTiles[d][schedule.RLvlOuter])))
		} else {
			ctx = append(ctx, 0, 0)
		}
	}
	return ctx
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// quantEff is x / (ceil(x/unit)*unit) in [0,1]: how efficiently a run of
// length x fills unit-sized transactions.
func quantEff(x, unit float64) float64 {
	if x <= 0 {
		return 0
	}
	return x / (math.Ceil(x/unit) * unit)
}

// Dataflow returns the PaCM temporal dataflow feature matrix: exactly
// DataflowSeq rows of DataflowDim values. Rows beyond the program's data
// movements — and all rows of non-tiled programs — are zero (the paper's
// zero-padding for elementwise operators). The result is cached on lw and
// shared between callers — read-only.
func Dataflow(lw *schedule.Lowered) [][]float64 {
	return lw.FeatureRows(slotDataflow, dataflowRows)
}

func dataflowRows(lw *schedule.Lowered) [][]float64 {
	out := make([][]float64, DataflowSeq)
	for i := range out {
		out[i] = make([]float64, DataflowDim)
	}
	if !lw.Task.Tiled() || !lw.Sched.UseShared {
		return out
	}
	ctx := contextFeatures(lw)
	row := 0
	for i := range lw.Stmts {
		if row >= DataflowSeq {
			break
		}
		st := &lw.Stmts[i]
		r := out[row]
		// [0]: compute density of the block.
		r[0] = lg(st.Flops / math.Max(st.MoveWords, 1))
		// [1..4]: movement-kind one-hot.
		switch st.Kind {
		case schedule.StmtLoadShared, schedule.StmtLoadGlobal:
			r[1] = 1
		case schedule.StmtCompute:
			r[2] = 1
		case schedule.StmtStore:
			r[3] = 1
		default:
			r[4] = 1
		}
		// [5..6]: flow direction.
		r[5] = float64(st.From) / 2
		r[6] = float64(st.To) / 2
		// [7..16]: memory-access behaviour.
		r[7] = lg(st.MoveWords)
		r[8] = lg(st.AllocWords)
		r[9] = lg(st.Reuse)
		r[10] = lg(st.ContigRun)
		r[11] = lg(st.StrideElems)
		r[12] = quantEff(st.ContigRun, 32)
		r[13] = lg(float64(st.Threads))
		r[14] = lg(st.Trips)
		r[15] = float64(lw.Sched.VectorLen)
		r[16] = lg(float64(lw.Sched.UnrollStep))
		// [17..21]: schedule context slice.
		copy(r[17:22], ctx[:5])
		// [22]: alloc-size tail slot (paper: "alloc size:1") + TC flag.
		r[22] = lg(st.AllocWords) + boolF(st.TensorCore)
		row++
	}
	return out
}

// FlatDataflow flattens the dataflow matrix to a single vector of
// DataflowSeq*DataflowDim values (row-major).
func FlatDataflow(lw *schedule.Lowered) []float64 {
	m := Dataflow(lw)
	out := make([]float64, 0, DataflowSeq*DataflowDim)
	for _, r := range m {
		out = append(out, r...)
	}
	return out
}

// Primitives returns the TLP-style schedule-primitive sequence: PrimSeq
// tokens of PrimDim values. Token layout: [0..15] primitive-type and axis
// one-hots (structural, near-constant across schedules of one task),
// [16..] factor values. The sparsity of varying entries reproduces TLP's
// low feature diversity. The result is cached on lw and shared between
// callers — read-only.
func Primitives(lw *schedule.Lowered) [][]float64 {
	return lw.FeatureRows(slotPrimitives, primitiveRows)
}

func primitiveRows(lw *schedule.Lowered) [][]float64 {
	s := lw.Sched
	out := make([][]float64, PrimSeq)
	for i := range out {
		out[i] = make([]float64, PrimDim)
	}
	tok := 0
	emit := func(fill func(r []float64)) {
		if tok < PrimSeq {
			fill(out[tok])
			tok++
		}
	}
	for d := range s.SpatialTiles {
		d := d
		emit(func(r []float64) {
			r[0] = 1 // split primitive
			r[2+minI(d, 5)] = 1
			for l := 0; l < schedule.NumSpatialLevels; l++ {
				r[16+l] = lg(float64(s.SpatialTiles[d][l]))
			}
		})
	}
	for d := range s.ReduceTiles {
		d := d
		emit(func(r []float64) {
			r[0] = 1
			r[1] = 1 // reduction split
			r[2+minI(d, 5)] = 1
			for l := 0; l < schedule.NumReduceLevels; l++ {
				r[16+l] = lg(float64(s.ReduceTiles[d][l]))
			}
		})
	}
	emit(func(r []float64) { r[8] = 1 }) // reorder
	if s.UseShared {
		emit(func(r []float64) { r[9] = 1 })  // cache_read shared A
		emit(func(r []float64) { r[10] = 1 }) // cache_read shared B
		emit(func(r []float64) { r[11] = 1 }) // compute_at
	}
	emit(func(r []float64) { // unroll annotation
		r[12] = 1
		r[16] = lg(float64(s.UnrollStep))
	})
	emit(func(r []float64) { // vectorize annotation
		r[13] = 1
		r[16] = float64(s.VectorLen)
	})
	if s.TensorCore {
		emit(func(r []float64) { r[14] = 1 })
	}
	return out
}

// FlatPrimitives flattens the primitive sequence row-major.
func FlatPrimitives(lw *schedule.Lowered) []float64 {
	m := Primitives(lw)
	out := make([]float64, 0, PrimSeq*PrimDim)
	for _, r := range m {
		out = append(out, r...)
	}
	return out
}

func minI(a, b int) int {
	if a < b {
		return a
	}
	return b
}
