package features

import (
	"math"
	"math/rand"
	"testing"

	"pruner/internal/ir"
	"pruner/internal/schedule"
)

func lowered(t *ir.Task, seed int64) *schedule.Lowered {
	g := schedule.NewGenerator(t)
	return schedule.Lower(t, g.Random(rand.New(rand.NewSource(seed))))
}

func TestStatementDimensions(t *testing.T) {
	task := ir.NewMatMul(256, 256, 256, ir.FP32, 1)
	lw := lowered(task, 1)
	rows := Statement(lw)
	if len(rows) != len(lw.Stmts) {
		t.Fatalf("%d rows for %d statements", len(rows), len(lw.Stmts))
	}
	for i, r := range rows {
		if len(r) != StmtDim {
			t.Fatalf("row %d has %d dims, want %d", i, len(r), StmtDim)
		}
		for j, v := range r {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("row %d dim %d is %g", i, j, v)
			}
		}
	}
}

func TestDataflowShapeAndPadding(t *testing.T) {
	task := ir.NewMatMul(256, 256, 256, ir.FP32, 1)
	df := Dataflow(lowered(task, 2))
	if len(df) != DataflowSeq {
		t.Fatalf("%d dataflow rows, want %d", len(df), DataflowSeq)
	}
	nonzero := 0
	for _, r := range df {
		if len(r) != DataflowDim {
			t.Fatalf("dataflow row width %d, want %d", len(r), DataflowDim)
		}
		for _, v := range r {
			if v != 0 {
				nonzero++
				break
			}
		}
	}
	if nonzero == 0 {
		t.Fatal("tiled task should have non-zero dataflow rows")
	}
	if nonzero > DataflowSeq {
		t.Fatal("impossible")
	}
}

// TestElementwiseZeroPadding: the paper zero-pads elementwise operators'
// dataflow features.
func TestElementwiseZeroPadding(t *testing.T) {
	task := ir.NewElementwise(65536, 2, ir.FP32)
	df := Dataflow(lowered(task, 3))
	for i, r := range df {
		for j, v := range r {
			if v != 0 {
				t.Fatalf("elementwise dataflow[%d][%d] = %g, want 0", i, j, v)
			}
		}
	}
}

// TestPrimitivesLowDiversity reproduces the paper's observation that TLP
// features barely differ between schedules of one task: structural
// (one-hot) entries are identical, only split factors vary.
func TestPrimitivesLowDiversity(t *testing.T) {
	task := ir.NewMatMul(512, 512, 512, ir.FP32, 1)
	g := schedule.NewGenerator(task)
	rng := rand.New(rand.NewSource(4))
	a := FlatPrimitives(schedule.Lower(task, g.Random(rng)))
	b := FlatPrimitives(schedule.Lower(task, g.Random(rng)))
	if len(a) != PrimSeq*PrimDim || len(b) != len(a) {
		t.Fatal("bad primitive dims")
	}
	differing := 0
	for i := range a {
		if a[i] != b[i] {
			differing++
		}
	}
	frac := float64(differing) / float64(len(a))
	if frac > 0.05 {
		t.Fatalf("%.2f%% of primitive features differ; the paper reports ~1.4%% for GEMM", frac*100)
	}
	if differing == 0 {
		t.Fatal("two random schedules should differ somewhere")
	}
}

func TestFeaturesDeterministic(t *testing.T) {
	task := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 28, W: 28, CI: 128, CO: 128, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}, ir.FP32, 1)
	lw := lowered(task, 5)
	a := FlatDataflow(lw)
	b := FlatDataflow(lw)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("dataflow features not deterministic")
		}
	}
}

// TestDataflowDistinguishesSchedules: different tilings must produce
// different dataflow features (the paper's "distinction between features"
// design goal).
func TestDataflowDistinguishesSchedules(t *testing.T) {
	task := ir.NewMatMul(512, 512, 512, ir.FP32, 0)
	g := schedule.NewGenerator(task)
	rng := rand.New(rand.NewSource(6))
	seen := map[string]bool{}
	distinct := 0
	for i := 0; i < 20; i++ {
		key := ""
		for _, v := range FlatDataflow(schedule.Lower(task, g.Random(rng))) {
			key += string(rune(int(v*7) % 93))
		}
		if !seen[key] {
			seen[key] = true
			distinct++
		}
	}
	if distinct < 18 {
		t.Fatalf("only %d/20 schedules have distinct dataflow features", distinct)
	}
}

func TestLgSafety(t *testing.T) {
	if lg(-5) != 0 || lg(0) != 0 {
		t.Fatal("lg must clamp non-positive inputs to 0")
	}
	if lg(1) != 1 { // log2(2)
		t.Fatalf("lg(1) = %g", lg(1))
	}
}

func TestQuantEff(t *testing.T) {
	if quantEff(32, 32) != 1 {
		t.Fatal("full transaction should be 1")
	}
	if got := quantEff(16, 32); got != 0.5 {
		t.Fatalf("quantEff(16,32) = %g", got)
	}
	if quantEff(0, 32) != 0 {
		t.Fatal("empty run should be 0")
	}
}
