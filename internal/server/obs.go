package server

import (
	"net/http"
	"time"

	"pruner"
	"pruner/internal/obs"
)

// Metric names the daemon exports on its registry. /v1/healthz is built
// by reading these back through the same registry /metrics scrapes, so
// the two surfaces can never disagree.
const (
	// MetricQueueDepth gauges jobs waiting on the bounded queue
	// (func-backed; sampled at scrape).
	MetricQueueDepth = "pruner_server_queue_depth"
	// MetricQueueWaitSeconds is a histogram of queued-to-started wait.
	MetricQueueWaitSeconds = "pruner_server_queue_wait_seconds"
	// MetricJobs gauges jobs by lifecycle state (label: state).
	MetricJobs = "pruner_server_jobs"
	// MetricRoundSeconds is a histogram of wall-clock round duration as
	// seen at the commit boundary (the value RoundMillis reports).
	MetricRoundSeconds = "pruner_server_round_seconds"
	// MetricSSEStreams gauges open /v1/jobs/{id}/events subscribers.
	MetricSSEStreams = "pruner_server_sse_streams"
	// MetricSSEEvents counts SSE frames written to subscribers.
	MetricSSEEvents = "pruner_server_sse_events_total"
	// MetricMeasurersRegistered / MetricMeasurersLive gauge the measurer
	// registry (func-backed; live honours Config.MeasurerTTL).
	MetricMeasurersRegistered = "pruner_server_measurers_registered"
	MetricMeasurersLive       = "pruner_server_measurers_live"
)

// serverObs is the daemon's prepared instrument set.
type serverObs struct {
	jobStates    *obs.GaugeVec
	queueWait    *obs.Histogram
	roundSeconds *obs.Histogram
	sseStreams   *obs.Gauge
	sseEvents    *obs.Counter
}

// initObs registers the daemon's instruments on its observer, arms the
// store (idempotent when the store was already opened with a registry)
// and exposes the nn engine counters. Called once from New, after the
// queue exists: the depth gauge samples it live.
func (s *Server) initObs() {
	reg := s.cfg.Obs.Reg()
	s.obs = serverObs{
		jobStates: reg.GaugeVec(MetricJobs, "Jobs by lifecycle state.", "state"),
		queueWait: reg.Histogram(MetricQueueWaitSeconds,
			"Wait between job enqueue and tuning start.", nil),
		roundSeconds: reg.Histogram(MetricRoundSeconds,
			"Wall-clock duration of committed tuning rounds.", nil),
		sseStreams: reg.Gauge(MetricSSEStreams, "Open SSE progress subscribers."),
		sseEvents:  reg.Counter(MetricSSEEvents, "SSE frames written to subscribers."),
	}
	reg.GaugeFunc(MetricQueueDepth, "Jobs waiting on the bounded queue.",
		func() float64 { return float64(len(s.queue)) })
	reg.GaugeFunc(MetricMeasurersRegistered, "Measurement workers registered.",
		func() float64 {
			s.mmu.Lock()
			defer s.mmu.Unlock()
			return float64(len(s.measurers))
		})
	reg.GaugeFunc(MetricMeasurersLive, "Measurement workers within their heartbeat TTL.",
		func() float64 {
			now := time.Now()
			s.mmu.Lock()
			defer s.mmu.Unlock()
			n := 0
			for _, e := range s.measurers {
				if s.liveLocked(e, now) {
					n++
				}
			}
			return float64(n)
		})
	s.cfg.Store.EnableMetrics(reg)
	pruner.RegisterEngineMetrics(s.cfg.Obs)
}

// handleMetrics is GET /metrics: Prometheus text exposition of the
// daemon's registry (server, store, tuner, cost-model and fleet families).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = s.cfg.Obs.Reg().WriteText(w) // scrape write failure is the scraper's problem
}

// handleTrace is GET /v1/trace: the observer's span ring buffer as JSON,
// newest spans retained (plan/measure/commit and cost-model fit/predict).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	_ = s.cfg.Obs.Sink().WriteJSON(w) // trace dump is diagnostic; a short read hurts nobody
}
