package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pruner"
	"pruner/internal/store"
)

// testServer builds a daemon over a fresh store with a small shared pool.
func testServer(t *testing.T, dir string) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(dir, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := New(context.Background(), Config{
		Store:      st,
		Pool:       pruner.NewPool(2),
		Workers:    2,
		QueueDepth: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) jobView {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		var e map[string]string
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST /v1/jobs: %d (%s)", resp.StatusCode, e["error"])
	}
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func getJob(t *testing.T, ts *httptest.Server, id string) jobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v jobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

// drainSSE reads the job's event stream until a terminal event (or EOF)
// and returns every event seen.
func drainSSE(t *testing.T, ts *httptest.Server, id string) []Event {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type %q", ct)
	}
	var events []Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		events = append(events, ev)
		if terminal(JobState(ev.Type)) {
			break
		}
	}
	return events
}

var e2eSpec = JobSpec{
	Device:    "a100",
	Network:   "dcgan",
	Method:    "pruner",
	Trials:    20,
	BatchSize: 10,
	Seed:      5,
	MaxTasks:  2,
}

// TestServerEndToEnd is the two-request demo as a test: the first request
// tunes (SSE progress visible, records persisted), the second identical
// request is answered from the store with no new measurements and no
// search.
func TestServerEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	_, ts := testServer(t, t.TempDir())

	// Request 1: a fresh tune.
	v := postJob(t, ts, e2eSpec)
	if v.ID == "" || terminal(v.State) {
		t.Fatalf("first submission should queue, got %+v", v)
	}
	events := drainSSE(t, ts, v.ID)
	var rounds, started int
	last := Event{}
	for _, ev := range events {
		switch ev.Type {
		case "round":
			rounds++
		case "started":
			started++
			if ev.WarmRecords != 0 {
				t.Fatalf("fresh store warm-started %d records", ev.WarmRecords)
			}
		}
		last = ev
	}
	if started != 1 || rounds < 2 {
		t.Fatalf("SSE saw %d started / %d rounds, want 1 / >=2", started, rounds)
	}
	if last.Type != string(StateDone) || last.Source != "tuned" {
		t.Fatalf("terminal event %+v, want done/tuned", last)
	}
	if last.NewMeasurements != e2eSpec.Trials {
		t.Fatalf("first job measured %d, want %d", last.NewMeasurements, e2eSpec.Trials)
	}

	done := getJob(t, ts, v.ID)
	if done.State != StateDone || done.Result == nil {
		t.Fatalf("job after SSE: %+v", done)
	}
	if len(done.Result.Curve) != rounds {
		t.Fatalf("curve %d points, SSE saw %d rounds", len(done.Result.Curve), rounds)
	}
	if len(done.Result.Best) == 0 || done.Result.FinalWorkloadMS <= 0 {
		t.Fatalf("result missing bests or latency: %+v", done.Result)
	}

	// Request 2: identical spec — a cache hit served without tuning.
	v2 := postJob(t, ts, e2eSpec)
	if v2.State != StateDone {
		t.Fatalf("repeat request state %q, want immediate done", v2.State)
	}
	if v2.Result == nil || v2.Result.Source != "store" {
		t.Fatalf("repeat request result %+v, want source store", v2.Result)
	}
	if v2.Result.NewMeasurements != 0 || len(v2.Result.Curve) != 0 {
		t.Fatalf("cache hit took measurements: %+v", v2.Result)
	}
	if len(v2.Result.Best) != e2eSpec.MaxTasks {
		t.Fatalf("cache hit returned %d bests, want %d", len(v2.Result.Best), e2eSpec.MaxTasks)
	}
	// The cached answer must match what the tuning job reported.
	if v2.Result.FinalWorkloadMS > done.Result.FinalWorkloadMS*1.0001 {
		t.Fatalf("cached workload %.4f ms worse than tuned %.4f ms",
			v2.Result.FinalWorkloadMS, done.Result.FinalWorkloadMS)
	}
	// Its SSE stream is just the replay: queued then done.
	ev2 := drainSSE(t, ts, v2.ID)
	if len(ev2) != 2 || ev2[len(ev2)-1].Source != "store" {
		t.Fatalf("cache-hit SSE %+v", ev2)
	}

	// A deeper identical request must NOT be served from the shallow
	// cache: 20 stored records cannot answer a 21-trial budget, so the
	// daemon warm-starts a real search instead.
	deeper := e2eSpec
	deeper.Trials = e2eSpec.Trials + 1
	v3 := postJob(t, ts, deeper)
	if terminal(v3.State) {
		t.Fatalf("deeper request served from shallow cache: %+v", v3)
	}
	drainSSE(t, ts, v3.ID)
	if final := getJob(t, ts, v3.ID); final.Result.WarmRecords != e2eSpec.Trials {
		t.Fatalf("deeper request warm-started %d records, want %d",
			final.Result.WarmRecords, e2eSpec.Trials)
	}

	// /v1/best agrees.
	resp, err := http.Get(ts.URL + fmt.Sprintf("/v1/best?device=%s&network=%s&max_tasks=%d",
		e2eSpec.Device, e2eSpec.Network, e2eSpec.MaxTasks))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var best struct {
		Covered    bool       `json:"covered"`
		WorkloadMS float64    `json:"workload_ms"`
		Best       []BestView `json:"best"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&best); err != nil {
		t.Fatal(err)
	}
	if !best.Covered || len(best.Best) != e2eSpec.MaxTasks || best.WorkloadMS <= 0 {
		t.Fatalf("/v1/best: %+v", best)
	}

	// Healthz sees the store and both jobs.
	hresp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var health struct {
		Status string         `json:"status"`
		Jobs   map[string]int `json:"jobs"`
		Store  store.Stats    `json:"store"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	// Jobs: tuned + cache hit + deeper re-tune. Records: the first job's
	// 20 plus the deeper job's 3 full rounds of 10.
	if health.Status != "ok" || health.Jobs[string(StateDone)] != 3 || health.Store.Records != 50 {
		t.Fatalf("healthz: %+v", health)
	}
}

// TestServerWarmStartAcrossJobs checks the partial-coverage path: a wider
// request over a partially-tuned network warm-starts from the store
// instead of hitting the cache or starting cold.
func TestServerWarmStartAcrossJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	_, ts := testServer(t, t.TempDir())

	v := postJob(t, ts, e2eSpec)
	drainSSE(t, ts, v.ID)

	wider := e2eSpec
	wider.MaxTasks = 3 // one task beyond what the store covers
	v2 := postJob(t, ts, wider)
	if terminal(v2.State) {
		t.Fatalf("partially-covered request must tune, got %+v", v2)
	}
	events := drainSSE(t, ts, v2.ID)
	var warmed int
	for _, ev := range events {
		if ev.Type == "started" {
			warmed = ev.WarmRecords
		}
	}
	if warmed != e2eSpec.Trials {
		t.Fatalf("second job warm-started %d records, want %d", warmed, e2eSpec.Trials)
	}
	final := getJob(t, ts, v2.ID)
	if final.State != StateDone || final.Result.WarmRecords != e2eSpec.Trials {
		t.Fatalf("warm job result %+v", final.Result)
	}
	if final.Result.NewMeasurements != wider.Trials {
		t.Fatalf("warm job measured %d, want %d", final.Result.NewMeasurements, wider.Trials)
	}
}

func TestServerRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	for name, spec := range map[string]JobSpec{
		"unknown device":    {Device: "h100", Network: "dcgan"},
		"unknown network":   {Device: "a100", Network: "nope"},
		"pretrained method": {Device: "a100", Network: "dcgan", Method: "moa-pruner"},
		"excessive trials":  {Device: "a100", Network: "dcgan", Trials: 1 << 30},
		"negative batch":    {Device: "a100", Network: "dcgan", BatchSize: -5},
		"batch over trials": {Device: "a100", Network: "dcgan", Trials: 10, BatchSize: 500},
	} {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
	if resp, _ := http.Get(ts.URL + "/v1/jobs/j-999999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("missing job: status %d, want 404", resp.StatusCode)
	}
}

// TestServerCancelQueuedJob pins that DELETE works before a job ever
// starts: the cancellation is remembered and the worker discards the job
// at dequeue instead of tuning its full budget.
func TestServerCancelQueuedJob(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := New(context.Background(), Config{Store: st, Pool: pruner.NewPool(1), Workers: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	long := e2eSpec
	long.Trials = 200
	v1 := postJob(t, ts, long) // occupies the single worker
	queued := e2eSpec
	queued.Seed = 99
	queued.Trials = 200
	v2 := postJob(t, ts, queued) // sits in the queue behind it

	for _, id := range []string{v2.ID, v1.ID} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	events := drainSSE(t, ts, v2.ID)
	last := events[len(events)-1]
	if last.Type != string(StateCanceled) {
		t.Fatalf("queued job ended %q, want canceled", last.Type)
	}
	for _, ev := range events {
		if ev.Type == "round" || ev.Type == "started" {
			t.Fatalf("canceled queued job still ran: saw %q event", ev.Type)
		}
	}
}

// TestServerShutdownCancelsRunningJob pins graceful shutdown: a long job
// is interrupted at a round boundary, lands in a terminal state, and its
// partial measurements are persisted to the store.
func TestServerShutdownCancelsRunningJob(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	dir := t.TempDir()
	srv, ts := testServer(t, dir)

	long := e2eSpec
	long.Trials = 1000 // ~100 rounds: far longer than the shutdown window
	v := postJob(t, ts, long)

	// Wait until it is actually running (first round published).
	deadline := time.Now().Add(60 * time.Second)
	for getJob(t, ts, v.ID).State == StateQueued {
		if time.Now().After(deadline) {
			t.Fatal("job never started")
		}
		time.Sleep(10 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	final := getJob(t, ts, v.ID)
	if !terminal(final.State) {
		t.Fatalf("job state after shutdown: %q", final.State)
	}
	if final.State == StateCanceled {
		if final.Result == nil || !final.Result.Interrupted {
			t.Fatalf("canceled job should carry its partial result, got %+v", final.Result)
		}
		// Partial measurements must have been persisted.
		st, err := store.Open(dir, store.Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer st.Close()
		if st.Stats().Records != final.Result.NewMeasurements {
			t.Fatalf("store has %d records, job measured %d",
				st.Stats().Records, final.Result.NewMeasurements)
		}
	}
}

// TestPretrainedMethodGating pins the -model-in story: pretrained-weight
// methods are rejected up front without a loaded bundle, rejected on an
// architecture mismatch, and served end to end when the bundle matches.
func TestPretrainedMethodGating(t *testing.T) {
	// No bundle: moa-pruner must be rejected at submit time.
	_, ts := testServer(t, t.TempDir())
	body, _ := json.Marshal(JobSpec{Device: "t4", Network: "dcgan", Method: "moa-pruner", Trials: 20, MaxTasks: 1})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("moa-pruner without a bundle: status %d, want 400", resp.StatusCode)
	}

	// A matching bundle makes the method servable.
	ds, err := pruner.GenerateDataset(context.Background(), pruner.T4, []string{"dcgan"}, 30, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, pre, err := pruner.PretrainModel("pacm", ds, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	st, err := store.Open(t.TempDir(), store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv, err := New(context.Background(), Config{
		Store:      st,
		Pool:       pruner.NewPool(2),
		Workers:    1,
		QueueDepth: 4,
		Pretrained: pre,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv.Handler())
	t.Cleanup(ts2.Close)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})

	// Mismatched architecture still rejects.
	body, _ = json.Marshal(JobSpec{Device: "t4", Network: "dcgan", Method: "tlp", Trials: 20, MaxTasks: 1})
	resp, err = http.Post(ts2.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("tlp against a pacm bundle: status %d, want 400", resp.StatusCode)
	}

	v := postJob(t, ts2, JobSpec{Device: "t4", Network: "dcgan", Method: "moa-pruner", Trials: 20, MaxTasks: 1, Seed: 5})
	events := drainSSE(t, ts2, v.ID)
	last := events[len(events)-1]
	if last.Type != string(StateDone) {
		t.Fatalf("moa-pruner job ended %q (%s)", last.Type, last.Error)
	}
	if got := getJob(t, ts2, v.ID); got.Result == nil || got.Result.Source != "tuned" {
		t.Fatalf("unexpected result: %+v", got.Result)
	}
}
