package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"

	"pruner/internal/obs"
)

// JobState is a job's lifecycle state. A job moves queued -> running ->
// done/failed/canceled; store-served jobs are born done. The type exists
// so the state machine is a closed enum: pruner-vet's exhaust analyzer
// requires every switch over it to name all five states.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// JobSpec is the request body of POST /v1/jobs.
type JobSpec struct {
	// Device and Network name a preset platform and workload.
	Device  string `json:"device"`
	Network string `json:"network"`
	// Method is a pruner.Method name; empty selects "pruner".
	Method string `json:"method,omitempty"`
	// Trials / BatchSize / Seed / MaxTasks / TensorCore mirror
	// pruner.Config; zero values take the library defaults (except
	// Trials, which the server caps with its own default budget).
	Trials     int   `json:"trials,omitempty"`
	BatchSize  int   `json:"batch_size,omitempty"`
	Seed       int64 `json:"seed,omitempty"`
	MaxTasks   int   `json:"max_tasks,omitempty"`
	TensorCore bool  `json:"tensorcore,omitempty"`
	// Fresh skips the store's cache-hit answer and warm-start history,
	// forcing a from-scratch search (ablations, store repair).
	Fresh bool `json:"fresh,omitempty"`
	// Measurer selects the measurement backend: "auto" (default — the
	// registered worker fleet when one is live, the in-process simulator
	// otherwise), "simulator", or "fleet" (fails when no workers are
	// registered). Results are bitwise identical across backends for the
	// same seed.
	Measurer string `json:"measurer,omitempty"`
	// PipelineDepth bounds the session's in-flight measurement rounds
	// (tuner pipelining); 0/1 is the serial loop. Ignored when
	// AdaptBudget is set (the controller owns the depth).
	PipelineDepth int `json:"pipeline_depth,omitempty"`
	// AdaptBudget enables the calibration-driven budget controller: the
	// session shrinks its verify/measure batch, widens its LSE draft
	// set and deepens its pipeline as the cost model proves calibrated,
	// measuring fewer candidates for the same trials budget. Round
	// events then carry calib_error / verify_budget / draft_budget /
	// target_depth.
	AdaptBudget bool `json:"adapt_budget,omitempty"`
}

// Event is one SSE frame of job progress. Type is one of "queued",
// "started", "round", "done", "failed", "canceled".
type Event struct {
	Type string `json:"type"`
	// Round fields (type "round"), mirroring tuner.ProgressEvent.
	Round      int     `json:"round"`
	Rounds     int     `json:"rounds,omitempty"`
	Task       string  `json:"task,omitempty"`
	Trials     int     `json:"trials,omitempty"`
	SimSeconds float64 `json:"sim_seconds,omitempty"`
	WorkloadMS float64 `json:"workload_ms,omitempty"`
	TaskBestMS float64 `json:"task_best_ms,omitempty"`
	// WarmRecords on the "started" event is how much store history seeded
	// the session.
	WarmRecords int `json:"warm_records,omitempty"`
	// Measurer names the backend measuring this job's batches; on round
	// events InFlight is the pipeline window's utilisation when the round
	// committed — together they show whether a job's wall-clock is going
	// to search or to measurement wait.
	Measurer string `json:"measurer,omitempty"`
	InFlight int    `json:"in_flight,omitempty"`
	// RoundMillis is the wall-clock duration of the round, stamped by the
	// serving layer at the commit boundary (the deterministic engine
	// never reads a real clock, so the tuner cannot report this itself).
	RoundMillis int64 `json:"round_millis,omitempty"`
	// Adaptive-controller state (adapt_budget jobs only): the smoothed
	// rank error after this round's commit and the budgets in force when
	// it was planned. Absent on fixed-budget jobs.
	CalibError   float64 `json:"calib_error,omitempty"`
	VerifyBudget int     `json:"verify_budget,omitempty"`
	DraftBudget  int     `json:"draft_budget,omitempty"`
	TargetDepth  int     `json:"target_depth,omitempty"`
	// Terminal fields.
	Source          string `json:"source,omitempty"`
	NewMeasurements int    `json:"new_measurements,omitempty"`
	Error           string `json:"error,omitempty"`
}

// BestView is one task's best stored schedule, as served by /v1/best and
// embedded in terminal job results.
type BestView struct {
	TaskID    string          `json:"task_id"`
	TaskName  string          `json:"task_name"`
	Weight    int             `json:"weight"`
	LatencyUS float64         `json:"latency_us"`
	Records   int             `json:"stored_records"`
	Record    json.RawMessage `json:"record"`
}

// JobResult summarises a terminal job.
type JobResult struct {
	// Source is "tuned" for a fresh search, "store" when the request was
	// answered from persisted history without searching.
	Source string `json:"source"`
	// FinalWorkloadMS is the weighted workload latency over task bests.
	FinalWorkloadMS float64 `json:"final_workload_ms"`
	// WarmRecords / NewMeasurements split the session's record log:
	// history replayed from the store vs. measurements this job paid for.
	WarmRecords     int `json:"warm_records"`
	NewMeasurements int `json:"new_measurements"`
	// Interrupted marks a canceled job's partial result.
	Interrupted bool `json:"interrupted,omitempty"`
	// Measurer names the backend that measured the job's batches.
	Measurer string `json:"measurer,omitempty"`
	// SimCompileSeconds is the session's simulated tuning cost.
	SimCompileSeconds float64 `json:"sim_compile_seconds"`
	// Curve is the round-by-round tuning curve (absent on store hits).
	Curve []CurveView `json:"curve,omitempty"`
	// Best lists the per-task best schedules after the job.
	Best []BestView `json:"best,omitempty"`
}

// CurveView is one tuning-curve sample in API form.
type CurveView struct {
	Round      int     `json:"round"`
	Trials     int     `json:"trials"`
	SimSeconds float64 `json:"sim_seconds"`
	WorkloadMS float64 `json:"workload_ms"`
}

// jobView is the job representation served by the status endpoints.
type jobView struct {
	ID        string     `json:"id"`
	State     JobState   `json:"state"`
	Spec      JobSpec    `json:"spec"`
	Error     string     `json:"error,omitempty"`
	Result    *JobResult `json:"result,omitempty"`
	EventsURL string     `json:"events_url"`
}

// job is one tuning request's full lifecycle. The mutex guards state,
// events and result; notify is closed and replaced on every change so SSE
// readers can wait without polling.
type job struct {
	id   string
	spec JobSpec
	// states mirrors the job's lifecycle into the daemon's jobs-by-state
	// gauge (nil-safe); enqueuedAt feeds the queue-wait histogram (zero
	// for store-answered jobs, which never queue).
	states     *obs.GaugeVec
	enqueuedAt time.Time

	mu       sync.Mutex
	state    JobState
	events   []Event
	notify   chan struct{}
	result   *JobResult
	errMsg   string
	canceled bool // cancellation requested, possibly before run() started
	cancel   context.CancelFunc
}

func newJob(id string, spec JobSpec, states *obs.GaugeVec) *job {
	j := &job{id: id, spec: spec, states: states, state: StateQueued, notify: make(chan struct{})}
	j.events = append(j.events, Event{Type: string(StateQueued)})
	j.states.With(string(StateQueued)).Add(1)
	return j
}

// shiftState moves the job's gauge contribution between lifecycle states;
// call with j.mu held (the caller just changed j.state).
func (j *job) shiftState(from, to JobState) {
	if from == to {
		return
	}
	j.states.With(string(from)).Add(-1)
	j.states.With(string(to)).Add(1)
}

// publish appends an event (optionally moving the job to a new state) and
// wakes all SSE subscribers.
func (j *job) publish(state JobState, ev Event) {
	j.mu.Lock()
	if state != "" {
		j.shiftState(j.state, state)
		j.state = state
	}
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// finish moves the job to a terminal state with its result and emits the
// terminal event.
func (j *job) finish(state JobState, res *JobResult, errMsg string) {
	j.mu.Lock()
	j.shiftState(j.state, state)
	j.state = state
	j.result = res
	j.errMsg = errMsg
	ev := Event{Type: string(state), Error: errMsg}
	if res != nil {
		ev.Source = res.Source
		ev.NewMeasurements = res.NewMeasurements
		ev.WorkloadMS = res.FinalWorkloadMS
		ev.SimSeconds = res.SimCompileSeconds
	}
	j.events = append(j.events, ev)
	close(j.notify)
	j.notify = make(chan struct{})
	j.mu.Unlock()
}

// terminal reports whether the state accepts no further events. The
// switch is exhaustive over JobState by design: adding a sixth state
// forces a decision here (enforced by pruner-vet's exhaust analyzer).
func terminal(state JobState) bool {
	switch state {
	case StateDone, StateFailed, StateCanceled:
		return true
	case StateQueued, StateRunning:
		return false
	}
	return false
}

// snapshot returns the events from index i on, the channel that signals
// the next change, and whether the job is terminal. SSE handlers loop:
// drain, then wait on the channel.
func (j *job) snapshot(i int) (evs []Event, changed <-chan struct{}, done bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if i < len(j.events) {
		evs = append(evs, j.events[i:]...)
	}
	return evs, j.notify, terminal(j.state)
}

// setCancel installs the running session's CancelFunc; if cancellation
// was already requested while the job sat in the queue, it fires at once.
func (j *job) setCancel(c context.CancelFunc) {
	j.mu.Lock()
	j.cancel = c
	fire := j.canceled
	j.mu.Unlock()
	if fire {
		c()
	}
}

// requestCancel marks the job canceled and cancels its session context if
// one is running. A queued job is caught by run()'s cancelRequested check
// before any tuning starts.
func (j *job) requestCancel() {
	j.mu.Lock()
	j.canceled = true
	c := j.cancel
	j.mu.Unlock()
	if c != nil {
		c()
	}
}

func (j *job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return jobView{
		ID:        j.id,
		State:     j.state,
		Spec:      j.spec,
		Error:     j.errMsg,
		Result:    j.result,
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
}
