package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"pruner"
	"pruner/internal/obs"
	"pruner/internal/store"
)

// scrapeMetrics GETs /metrics from base, failing on a bad status, a wrong
// content type, an empty body, or output the strict stdlib parser rejects.
func scrapeMetrics(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Fatalf("GET /metrics content-type %q, want the 0.0.4 text exposition", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if len(bytes.TrimSpace(body)) == 0 {
		t.Fatalf("GET /metrics from %s: empty exposition", base)
	}
	if err := obs.ValidateText(bytes.NewReader(body)); err != nil {
		t.Fatalf("GET /metrics from %s: malformed exposition: %v\n%s", base, err, body)
	}
	return string(body)
}

// TestMetricsEndpointScrape runs one job to completion and then checks the
// whole observability surface in one place: /metrics parses and carries
// every layer's families, /v1/trace dumps the job's pipeline spans, and
// /v1/healthz reports the very numbers the registry holds (healthz is a
// registry read, so the two can never disagree).
func TestMetricsEndpointScrape(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	srv, ts := testServer(t, t.TempDir())
	v := postJob(t, ts, e2eSpec)
	events := drainSSE(t, ts, v.ID)
	if last := events[len(events)-1]; last.Type != string(StateDone) {
		t.Fatalf("job ended %q (%s)", last.Type, last.Error)
	}

	text := scrapeMetrics(t, ts.URL)
	for _, family := range []string{
		MetricQueueDepth,               // server: queue occupancy gauge
		MetricQueueWaitSeconds,         // server: queue wait histogram
		MetricJobs,                     // server: per-state job gauge
		MetricRoundSeconds,             // server: per-round wall latency
		MetricMeasurersRegistered,      // server: fleet registry size
		store.MetricRecords,            // store: live occupancy
		store.MetricAppends,            // store: append counter moved by the job
		"pruner_tuner_stage_seconds",   // engine: per-stage latency (plan|measure|commit)
		"pruner_tuner_rounds_total",    // engine: committed rounds
		"pruner_costmodel_fit_seconds", // cost model: online training latency
		"pruner_nn_gemm_calls_total",   // nn engine: kernel counters
	} {
		if !strings.Contains(text, family) {
			t.Errorf("scrape missing family %s", family)
		}
	}

	// Healthz agrees with the registry it reads from.
	var health struct {
		Jobs  map[string]int `json:"jobs"`
		Store store.Stats    `json:"store"`
	}
	getJSON(t, ts, "/v1/healthz", &health)
	if health.Jobs[string(StateDone)] != 1 {
		t.Fatalf("healthz jobs: %+v, want one done", health.Jobs)
	}
	if got, ok := srv.cfg.Obs.Reg().Value(MetricJobs, string(StateDone)); !ok || int(got) != health.Jobs[string(StateDone)] {
		t.Fatalf("healthz done=%d but registry %s{state=done}=%v (ok=%v)",
			health.Jobs[string(StateDone)], MetricJobs, got, ok)
	}
	if health.Store.Records == 0 {
		t.Fatal("healthz store.records is 0 after a tuned job persisted measurements")
	}
	if got := srv.cfg.Obs.Reg(); func() float64 { v, _ := got.Value(store.MetricRecords); return v }() != float64(health.Store.Records) {
		t.Fatalf("healthz store.records diverges from the registry gauge")
	}

	// The span ring buffer saw the job's pipeline stages.
	resp, err := http.Get(ts.URL + "/v1/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/json") {
		t.Fatalf("GET /v1/trace content-type %q", ct)
	}
	var dump struct {
		Total    uint64 `json:"total_spans"`
		Retained int    `json:"retained_spans"`
		Spans    []struct {
			Name  string `json:"name"`
			Start int64  `json:"start_unix_nano"`
			End   int64  `json:"end_unix_nano"`
		} `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Total == 0 || dump.Retained == 0 {
		t.Fatalf("trace dump empty after a tuned job: %+v", dump)
	}
	stages := map[string]bool{}
	for _, sp := range dump.Spans {
		stages[sp.Name] = true
		if sp.End < sp.Start {
			t.Fatalf("span %s ends before it starts (%d < %d)", sp.Name, sp.End, sp.Start)
		}
	}
	for _, want := range []string{"tuner.plan", "tuner.measure", "tuner.commit", "costmodel.fit"} {
		if !stages[want] {
			t.Errorf("trace dump missing stage %s (saw %v)", want, stages)
		}
	}
}

// TestMetricsFleetScrapeMidSession is the observability half of the fleet
// e2e: with a loopback pruner-measure worker serving its own /metrics, a
// fleet job is scraped MID-session — daemon and worker both — so the test
// catches families that only exist after-the-fact or expositions that are
// only well-formed at rest.
func TestMetricsFleetScrapeMidSession(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	_, ts := testServer(t, t.TempDir())

	// The worker carries its own wall-clock observer, exactly as
	// cmd/pruner-measure arms it.
	wob := pruner.NewObserver(0)
	ws := httptest.NewServer(pruner.NewObservedMeasureWorker(2, wob).Handler())
	t.Cleanup(ws.Close)
	registerWorker(t, ts, ws.URL, http.StatusOK)

	spec := e2eSpec
	spec.Fresh = true
	spec.Measurer = "fleet"
	spec.PipelineDepth = 2
	spec.Trials = 60 // several rounds, so the scrape lands inside the session
	v := postJob(t, ts, spec)

	// Read the SSE stream incrementally; after the first committed round,
	// scrape both endpoints while the job is still running.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var scraped bool
	var last Event
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad SSE payload %q: %v", line, err)
		}
		last = ev
		if ev.RoundMillis < 0 {
			t.Fatalf("negative RoundMillis on %+v", ev)
		}
		if ev.Type == "round" && !scraped {
			scraped = true

			serverText := scrapeMetrics(t, ts.URL)
			if !strings.Contains(serverText, pruner.MetricFleetBatches) {
				t.Errorf("mid-session daemon scrape missing %s", pruner.MetricFleetBatches)
			}
			if !strings.Contains(serverText, MetricSSEStreams) {
				t.Errorf("mid-session daemon scrape missing %s", MetricSSEStreams)
			}
			// The frames this loop is reading were counted as they were
			// written (the open-streams gauge itself can already be back to
			// 0 here: a fast job's handler exits the moment the job is done,
			// while its frames are still buffered toward this scanner).
			if ln := expositionLine(serverText, MetricSSEEvents); ln == "" || strings.HasSuffix(ln, " 0") {
				t.Errorf("mid-session %s = %q, want >= 1 written frame", MetricSSEEvents, ln)
			}

			workerText := scrapeMetrics(t, ws.URL)
			for _, family := range []string{"pruner_worker_batches_total", "pruner_worker_schedules_total"} {
				if !strings.Contains(workerText, family) {
					t.Errorf("mid-session worker scrape missing %s", family)
				}
			}
		}
		if terminal(JobState(ev.Type)) {
			break
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !scraped {
		t.Fatal("SSE stream ended without a round event; nothing was scraped mid-session")
	}
	if last.Type != string(StateDone) {
		t.Fatalf("fleet job ended %q (%s)", last.Type, last.Error)
	}

	// The worker's own registry moved: its batches flowed through its
	// observer, not just the daemon's fleet-side counters.
	if got, ok := wob.Reg().Value("pruner_worker_batches_total"); !ok || got == 0 {
		t.Fatalf("worker-side batch counter never moved (got %v, ok=%v)", got, ok)
	}
}

// expositionLine returns the first sample line of the named family (no
// # prefix), "" when absent.
func expositionLine(text, name string) string {
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name) {
			return line
		}
	}
	return ""
}
