// Package server is the tuning daemon's HTTP layer: tuning-as-a-service
// over the pruner facade, backed by the persistent record store.
//
// API (JSON everywhere; see API.md for curl examples):
//
//	POST /v1/jobs            enqueue a tuning job (or answer it from the store)
//	GET  /v1/jobs            list jobs
//	GET  /v1/jobs/{id}       job status, curve and result
//	DELETE /v1/jobs/{id}     cancel a queued or running job
//	GET  /v1/jobs/{id}/events  SSE round-by-round progress (replay + live)
//	GET  /v1/best            best stored schedules for (device, network)
//	GET  /v1/healthz         liveness + queue/store/fleet statistics
//	POST /v1/measurers       register (or heartbeat) a measurement worker
//	GET  /v1/measurers       list registered workers + dispatch stats
//	DELETE /v1/measurers     deregister a worker (?url=...)
//	GET  /metrics            Prometheus text exposition of the daemon's registry
//	GET  /v1/trace           recent pipeline spans (ring buffer) as JSON
//
// Concurrency model: a bounded queue feeds a fixed set of worker
// goroutines, and every job tunes on ONE shared parallel.Pool — the
// daemon's -parallelism flag is a real budget, so N concurrent jobs
// contend for that budget instead of multiplying it (the pool's nested
// semaphore makes the sum of all sessions' helpers stay within it).
//
// Store integration: before searching, a job warm-starts from the store's
// history for its (device, task set); when the store already holds a
// valid best for every task of the request, the job is answered from the
// store with zero new measurements ("source": "store") — the repeat-query
// path that makes tuning cost amortise across sessions. Every completed
// job appends only its NEW measurements back to the store.
package server

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net/http"
	"sync"
	"time"

	"pruner"
	"pruner/internal/ir"
	"pruner/internal/store"
)

// Config assembles a Server.
type Config struct {
	// Store persists and answers from tuning history. Required.
	Store *store.Store
	// Pool is the shared tuning budget all jobs draw on; nil sizes one to
	// the machine.
	Pool *pruner.Pool
	// Workers is the number of jobs tuned concurrently (default 1).
	Workers int
	// QueueDepth bounds the backlog; a full queue rejects submissions
	// with 503 (default 16).
	QueueDepth int
	// DefaultTrials is the measurement budget of jobs that do not set one
	// (default 200). MaxTrials caps requested budgets (default 10x
	// DefaultTrials).
	DefaultTrials int
	MaxTrials     int
	// Pretrained optionally supplies offline cost-model weights (loaded
	// from a pruner.SaveModel bundle via the daemon's -model-in flag).
	// When set, jobs may request the pretrained-weight methods whose
	// architecture matches the bundle's kind (e.g. moa-pruner for "pacm");
	// without it those methods are rejected at submit time.
	Pretrained *pruner.Pretrained
	// MeasurerTTL expires fleet workers whose last heartbeat (re-POST to
	// /v1/measurers) is older than this; expired workers stay listed but
	// are not dispatched to. 0 selects 2 minutes; negative never expires.
	MeasurerTTL time.Duration
	// MaxPipelineDepth caps the per-job pipeline_depth request
	// (default 16).
	MaxPipelineDepth int
	// Obs is the daemon's observability spine: every job tunes armed
	// with it, /metrics scrapes its registry, /v1/trace serves its span
	// ring and /v1/healthz is assembled from registry reads. nil builds
	// a wall-clock observer — the serving layer is the one sanctioned
	// time boundary; deterministic layers see the clock only by
	// injection, and armed sessions stay bitwise identical to unarmed
	// ones.
	Obs *pruner.Observer
	// Log receives the daemon's structured lifecycle logs (job start,
	// round commits at debug, terminal states, measurer churn) with
	// job/round/measurer attrs. nil discards them (tests, embedders).
	Log *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Pool == nil {
		c.Pool = pruner.NewPool(0)
	}
	if c.Workers <= 0 {
		c.Workers = 1
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.DefaultTrials <= 0 {
		c.DefaultTrials = 200
	}
	if c.MaxTrials <= 0 {
		c.MaxTrials = 10 * c.DefaultTrials
	}
	if c.MeasurerTTL == 0 {
		c.MeasurerTTL = 2 * time.Minute
	}
	if c.MaxPipelineDepth <= 0 {
		c.MaxPipelineDepth = 16
	}
	if c.Obs == nil {
		c.Obs = pruner.NewObserver(0)
	}
	if c.Log == nil {
		c.Log = slog.New(slog.DiscardHandler)
	}
	return c
}

// Server is the daemon. Create with New, serve Handler(), stop with
// Shutdown.
type Server struct {
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc
	queue  chan *job
	wg     sync.WaitGroup

	mu     sync.Mutex
	jobs   map[string]*job
	order  []string
	nextID int
	closed bool

	// Measurer registry (measurers.go); guarded by its own mutex so fleet
	// bookkeeping never contends with job bookkeeping.
	mmu           sync.Mutex
	measurers     map[string]*measurerEntry
	measurerOrder []string

	// Prepared instruments on cfg.Obs's registry (obs.go).
	obs serverObs
}

// New starts the worker goroutines and returns the server. The parent
// context bounds the daemon's lifetime: cancelling it stops the workers
// (Close still performs the orderly drain).
func New(parent context.Context, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Store == nil {
		return nil, fmt.Errorf("server: Config.Store is required")
	}
	ctx, cancel := context.WithCancel(parent)
	s := &Server{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		queue:     make(chan *job, cfg.QueueDepth),
		jobs:      map[string]*job{},
		measurers: map[string]*measurerEntry{},
	}
	s.initObs()
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		//pruner:allow rawgo — the daemon's job workers live for the server's lifetime and are joined by wg on Shutdown; the parallel pool is for bounded fan-out inside a session, not long-lived service loops
		go s.worker()
	}
	return s, nil
}

// Shutdown stops accepting jobs, cancels running sessions (they stop at
// the next round boundary and their partial measurements are persisted),
// and waits for the workers up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.closed
	s.closed = true
	s.mu.Unlock()
	if !already {
		s.cancel()
		close(s.queue)
	}
	done := make(chan struct{})
	//pruner:allow rawgo — shutdown waiter: turns wg.Wait into a select-able channel so Shutdown can honor ctx's deadline; exits as soon as the workers drain
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Handler returns the daemon's HTTP mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/best", s.handleBest)
	mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	mux.HandleFunc("POST /v1/measurers", s.handleRegisterMeasurer)
	mux.HandleFunc("GET /v1/measurers", s.handleListMeasurers)
	mux.HandleFunc("DELETE /v1/measurers", s.handleDeregisterMeasurer)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /v1/trace", s.handleTrace)
	return mux
}

// ms converts seconds to milliseconds for the API, mapping the tuner's
// +Inf "no valid measurement yet" (and any other non-finite value, which
// json.Marshal rejects outright) to the JSON-safe sentinel -1.
func ms(seconds float64) float64 {
	v := seconds * 1e3
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return -1
	}
	return v
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v) // response write failure is the client's problem
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// resolve validates a spec against the registries, fills its defaults in
// place, and returns the device, network and the job's task set. The spec
// is fully normalised at submit time; afterwards it is immutable.
func (s *Server) resolve(spec *JobSpec) (*pruner.Device, *pruner.Network, []*ir.Task, error) {
	dev, err := pruner.DeviceByName(spec.Device)
	if err != nil {
		return nil, nil, nil, err
	}
	net, err := pruner.LoadNetwork(spec.Network)
	if err != nil {
		return nil, nil, nil, err
	}
	if spec.Trials <= 0 {
		spec.Trials = s.cfg.DefaultTrials
	}
	if spec.Trials > s.cfg.MaxTrials {
		return nil, nil, nil, fmt.Errorf("trials %d exceeds the daemon cap %d", spec.Trials, s.cfg.MaxTrials)
	}
	// A negative batch would make the round count negative (an instant
	// bogus "done"); a batch above the trials budget would measure the
	// whole batch in one round, bypassing the trials cap. Zero takes the
	// library default.
	if spec.BatchSize < 0 || spec.BatchSize > spec.Trials {
		return nil, nil, nil, fmt.Errorf("batch_size %d out of range [0, trials=%d]", spec.BatchSize, spec.Trials)
	}
	switch spec.Measurer {
	case "", "auto", "simulator", "fleet":
	default:
		return nil, nil, nil, fmt.Errorf("measurer %q is not one of auto, simulator, fleet", spec.Measurer)
	}
	if spec.PipelineDepth < 0 || spec.PipelineDepth > s.cfg.MaxPipelineDepth {
		return nil, nil, nil, fmt.Errorf("pipeline_depth %d out of range [0, %d]", spec.PipelineDepth, s.cfg.MaxPipelineDepth)
	}
	if spec.Method == "" {
		spec.Method = string(pruner.MethodPruner)
	}
	switch method := pruner.Method(spec.Method); method {
	case pruner.MethodPruner, pruner.MethodAnsor, pruner.MethodMetaSchedule, pruner.MethodRoller:
	default:
		// Everything else is either a pretrained-weight method — servable
		// only when the daemon was started with a matching -model-in
		// bundle (consulting the canonical pruner.PretrainedKind map, so a
		// new pretrained method needs no server change) — or unknown.
		// Reject either up front instead of failing mid-queue.
		kind := pruner.PretrainedKind(method)
		if kind == "" {
			return nil, nil, nil, fmt.Errorf("method %q is not servable (supported: pruner, ansor, metaschedule, roller%s)", spec.Method, servablePretrained(s.cfg.Pretrained))
		}
		if s.cfg.Pretrained == nil {
			return nil, nil, nil, fmt.Errorf("method %q needs pretrained weights; start the daemon with -model-in", spec.Method)
		}
		if s.cfg.Pretrained.Kind != kind {
			return nil, nil, nil, fmt.Errorf("method %q needs %q weights, daemon loaded %q", spec.Method, kind, s.cfg.Pretrained.Kind)
		}
	}
	return dev, net, net.Representative(spec.MaxTasks), nil
}

// servablePretrained names the extra methods a loaded bundle enables,
// for the submit-time error message (derived from the canonical
// pruner.PretrainedKind map so the list cannot drift).
func servablePretrained(p *pruner.Pretrained) string {
	if p == nil {
		return ""
	}
	var extra string
	for _, m := range []pruner.Method{
		pruner.MethodMoAPruner, pruner.MethodPrunerOffline,
		pruner.MethodTenSetMLP, pruner.MethodTLP,
	} {
		if pruner.PretrainedKind(m) == p.Kind {
			extra += ", " + string(m)
		}
	}
	return extra
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	_, _, tasks, err := s.resolve(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// The cache-hit path: history already covers every task of this
	// (device, network) at least as deeply as the requested budget —
	// answer from the store, no search, no queue slot. Shallower
	// history warm-starts a real search below instead.
	if !spec.Fresh && s.cfg.Store.Covered(spec.Device, tasks, spec.Trials) {
		j := s.register(spec)
		j.finish(StateDone, s.storeResult(spec, tasks), "")
		s.cfg.Log.Info("job answered from store", "job", j.id,
			"device", spec.Device, "network", spec.Network)
		writeJSON(w, http.StatusOK, j.view())
		return
	}

	j, err := s.enqueue(spec)
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// enqueue registers a job and places it on the bounded queue, atomically
// with the shutdown check so a submission can never race the queue close.
func (s *Server) enqueue(spec JobSpec) (*job, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, fmt.Errorf("server is shutting down")
	}
	s.nextID++
	j := newJob(fmt.Sprintf("j-%06d", s.nextID), spec, s.obs.jobStates)
	j.enqueuedAt = time.Now()
	select {
	case s.queue <- j:
	default:
		s.nextID--
		j.states.With(string(StateQueued)).Add(-1) // never entered the queue
		return nil, fmt.Errorf("job queue is full (depth %d)", s.cfg.QueueDepth)
	}
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return j, nil
}

// register allocates an ID and tracks the job.
func (s *Server) register(spec JobSpec) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.nextID++
	j := newJob(fmt.Sprintf("j-%06d", s.nextID), spec, s.obs.jobStates)
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	return j
}

func (s *Server) lookup(id string) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	list := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		list = append(list, s.jobs[id])
	}
	s.mu.Unlock()
	views := make([]jobView, len(list))
	for i, j := range list {
		views[i] = j.view()
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	j.requestCancel()
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleEvents streams the job's progress as Server-Sent Events: full
// replay of past events, then live rounds until the job is terminal.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.lookup(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "no such job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)
	s.obs.sseStreams.Add(1)
	defer s.obs.sseStreams.Add(-1)

	i := 0
	for {
		evs, changed, done := j.snapshot(i)
		for _, ev := range evs {
			data, _ := json.Marshal(ev)
			fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
			s.obs.sseEvents.Inc()
		}
		if len(evs) > 0 {
			flusher.Flush()
			i += len(evs)
			continue // drain before deciding the stream is over
		}
		if done {
			return
		}
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		case <-s.ctx.Done():
			return
		}
	}
}

func (s *Server) handleBest(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	spec := JobSpec{Device: q.Get("device"), Network: q.Get("network")}
	_, _ = fmt.Sscanf(q.Get("max_tasks"), "%d", &spec.MaxTasks) // unparsable means 0 = no cap
	_, _, tasks, err := s.resolve(&spec)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	best, workload, covered := s.bestViews(spec.Device, tasks)
	writeJSON(w, http.StatusOK, map[string]any{
		"device":      spec.Device,
		"network":     spec.Network,
		"covered":     covered,
		"tasks":       len(tasks),
		"workload_ms": ms(workload),
		"best":        best,
	})
}

// handleHealthz assembles the daemon's health view from the same
// registry /metrics scrapes (the job-state gauges, the store's
// func-backed occupancy gauges, the fleet's per-worker counters), so a
// scrape and a health check can never tell different stories. The JSON
// shape predates the registry and is kept stable.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	reg := s.cfg.Obs.Reg()
	counts := map[string]int{}
	for _, state := range []JobState{StateQueued, StateRunning, StateDone, StateFailed, StateCanceled} {
		if v, ok := reg.Value(MetricJobs, string(state)); ok && v != 0 {
			counts[string(state)] = int(v)
		}
	}
	regGauge := func(name string) int {
		v, _ := reg.Value(name)
		return int(v)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status": map[bool]string{false: "ok", true: "shutting-down"}[closed],
		"store": map[string]any{
			"devices":            regGauge(store.MetricDevices),
			"records":            regGauge(store.MetricRecords),
			"dropped_tail_lines": regGauge(store.MetricDropped),
		},
		"jobs":        counts,
		"workers":     s.cfg.Workers,
		"queue_depth": s.cfg.QueueDepth,
		"parallelism": s.cfg.Pool.Workers(),
		"measurers":   s.measurerStats(),
	})
}

// bestViews assembles per-task best entries from the store; workload is
// the weighted latency sum (seconds), covered whether every task has one.
func (s *Server) bestViews(device string, tasks []*ir.Task) (views []BestView, workload float64, covered bool) {
	ids := make([]string, len(tasks))
	byID := make(map[string]*ir.Task, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
		byID[t.ID] = t
	}
	best := s.cfg.Store.BestForTasks(device, ids)
	covered = len(best) == len(tasks)
	for _, id := range ids {
		b, ok := best[id]
		if !ok {
			continue
		}
		t := byID[id]
		views = append(views, BestView{
			TaskID:    id,
			TaskName:  t.Name,
			Weight:    t.Weight,
			LatencyUS: b.LatencyUS,
			Records:   b.Records,
			Record:    b.Line,
		})
		workload += float64(t.Weight) * b.LatencyUS / 1e6
	}
	return views, workload, covered
}

// storeResult builds a terminal result for a store-answered job.
func (s *Server) storeResult(spec JobSpec, tasks []*ir.Task) *JobResult {
	best, workload, _ := s.bestViews(spec.Device, tasks)
	return &JobResult{
		Source:          "store",
		FinalWorkloadMS: ms(workload),
		Best:            best,
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.run(j)
	}
}

// run executes one tuning job end to end.
func (s *Server) run(j *job) {
	// Every terminal transition is logged with the job attr so operators
	// can grep a job's lifecycle out of the daemon's structured stream.
	finish := func(state JobState, res *JobResult, errMsg string) {
		j.finish(state, res, errMsg)
		if errMsg != "" {
			s.cfg.Log.Warn("job finished", "job", j.id, "state", string(state), "error", errMsg)
			return
		}
		s.cfg.Log.Info("job finished", "job", j.id, "state", string(state))
	}
	if s.ctx.Err() != nil {
		finish(StateCanceled, nil, "server shut down before the job started")
		return
	}
	if j.cancelRequested() {
		finish(StateCanceled, nil, "canceled while queued")
		return
	}
	if !j.enqueuedAt.IsZero() {
		s.obs.queueWait.Observe(time.Since(j.enqueuedAt).Seconds())
	}
	ctx, cancel := context.WithCancel(s.ctx)
	defer cancel()
	j.setCancel(cancel)

	// The spec was normalised at submit time; work on a copy so nothing
	// here races a concurrent view().
	spec := j.spec
	dev, net, tasks, err := s.resolve(&spec)
	if err != nil {
		finish(StateFailed, nil, err.Error())
		return
	}

	var warm []pruner.Record
	if !spec.Fresh {
		warm, err = s.cfg.Store.WarmStart(spec.Device, tasks)
		if err != nil {
			finish(StateFailed, nil, fmt.Sprintf("warm-start: %v", err))
			return
		}
	}

	// Measurement backend: the registered worker fleet when requested (or
	// on "auto" with live workers), the in-process simulator otherwise.
	// Both produce bitwise-identical results for the same seed, so the
	// choice is purely about where the measurement wall-clock is spent.
	// Fleets are handed the daemon's long-lived registry, so per-worker
	// dispatch totals accumulate across jobs and are scrapeable (and
	// served by /v1/measurers) mid-session.
	var fleet *pruner.Fleet
	measName := "simulator"
	switch spec.Measurer {
	case "", "auto":
		if urls := s.liveMeasurerURLs(); len(urls) > 0 {
			fleet = pruner.NewObservedFleet(urls, s.cfg.Obs)
			measName = "fleet"
		}
	case "simulator":
	case "fleet":
		urls := s.liveMeasurerURLs()
		if len(urls) == 0 {
			finish(StateFailed, nil, "measurer \"fleet\" requested but no live measurement workers are registered (POST /v1/measurers)")
			return
		}
		fleet = pruner.NewObservedFleet(urls, s.cfg.Obs)
		measName = "fleet"
	}

	j.publish(StateRunning, Event{Type: "started", Trials: spec.Trials, WarmRecords: len(warm), Measurer: measName})
	s.cfg.Log.Info("job started", "job", j.id, "device", spec.Device,
		"network", spec.Network, "method", spec.Method, "trials", spec.Trials,
		"measurer", measName, "warm_records", len(warm))

	// Round wall-clock is stamped here, at the commit boundary: the
	// deterministic engine never reads a real clock, and Progress
	// callbacks arrive serially, so successive timestamps bracket each
	// committed round.
	lastRound := time.Now()
	cfg := pruner.Config{
		Method:        pruner.Method(spec.Method),
		Trials:        spec.Trials,
		BatchSize:     spec.BatchSize,
		Seed:          spec.Seed,
		MaxTasks:      spec.MaxTasks,
		TensorCore:    spec.TensorCore,
		PipelineDepth: spec.PipelineDepth,
		AdaptBudget:   spec.AdaptBudget,
		Pretrained:    s.cfg.Pretrained,
		Pool:          s.cfg.Pool,
		Ctx:           ctx,
		WarmStart:     warm,
		Obs:           s.cfg.Obs,
		Progress: func(ev pruner.ProgressEvent) {
			now := time.Now()
			elapsed := now.Sub(lastRound)
			lastRound = now
			s.obs.roundSeconds.Observe(elapsed.Seconds())
			s.cfg.Log.Debug("round committed", "job", j.id,
				"round", ev.Round, "rounds", ev.Rounds,
				"measurer", ev.Measurer, "round_millis", elapsed.Milliseconds())
			j.publish("", Event{
				Type:         "round",
				Round:        ev.Round,
				Rounds:       ev.Rounds,
				Task:         ev.TaskName,
				Trials:       ev.Trials,
				SimSeconds:   ev.SimSeconds,
				WorkloadMS:   ms(ev.WorkloadLat),
				TaskBestMS:   ms(ev.TaskBest),
				Measurer:     ev.Measurer,
				InFlight:     ev.InFlight,
				RoundMillis:  elapsed.Milliseconds(),
				CalibError:   ev.CalibError,
				VerifyBudget: ev.VerifyBudget,
				DraftBudget:  ev.DraftBudget,
				TargetDepth:  ev.TargetDepth,
			})
		},
	}
	if fleet != nil {
		cfg.Measurer = fleet
	}
	res, err := pruner.Tune(dev, net, cfg)
	if err != nil {
		finish(StateFailed, nil, err.Error())
		return
	}

	// Persist only what this session measured; the warm prefix is already
	// in the store. This runs even when the measurement backend failed
	// mid-session: the committed prefix is genuine history (the failed
	// batch itself was dropped by the tuner, so fleet trouble can never
	// poison the store).
	fresh := res.Records[res.Warm:]
	if err := s.cfg.Store.Append(spec.Device, fresh); err != nil {
		finish(StateFailed, nil, fmt.Sprintf("persisting records: %v", err))
		return
	}
	if res.MeasureErr != nil {
		finish(StateFailed, nil, fmt.Sprintf("measurement backend failed after %d measurements: %v", len(fresh), res.MeasureErr))
		return
	}

	result := &JobResult{
		Source:            "tuned",
		FinalWorkloadMS:   ms(res.FinalLatency),
		WarmRecords:       res.Warm,
		NewMeasurements:   len(fresh),
		Interrupted:       res.Interrupted,
		Measurer:          measName,
		SimCompileSeconds: res.Clock.Total(),
	}
	for _, p := range res.Curve {
		result.Curve = append(result.Curve, CurveView{
			Round: p.Round, Trials: p.Trials,
			SimSeconds: p.SimSeconds, WorkloadMS: ms(p.WorkloadLat),
		})
	}
	result.Best, _, _ = s.bestViews(spec.Device, tasks)

	state := StateDone
	if res.Interrupted {
		state = StateCanceled
	}
	finish(state, result, "")
}
