package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"pruner"
)

// startWorker runs an in-process measurement worker (the loopback
// equivalent of cmd/pruner-measure) and registers it with the daemon.
func startWorker(t *testing.T, ts *httptest.Server) *httptest.Server {
	t.Helper()
	ws := httptest.NewServer(pruner.NewMeasureWorker(2).Handler())
	t.Cleanup(ws.Close)
	registerWorker(t, ts, ws.URL, http.StatusOK)
	return ws
}

func registerWorker(t *testing.T, ts *httptest.Server, url string, wantStatus int) {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"url": url})
	resp, err := http.Post(ts.URL+"/v1/measurers", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("registering %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
}

// TestFleetEndToEnd is the serve + loopback pruner-measure demo as a
// test: a worker registers, a job is measured by the fleet, and the
// fleet-backed result is byte-identical to a simulator-backed run of the
// same seed.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	_, ts := testServer(t, t.TempDir())
	ws := startWorker(t, ts)

	// The registry sees the worker; healthz counts it live.
	var listing struct {
		Measurers []MeasurerView `json:"measurers"`
	}
	getJSON(t, ts, "/v1/measurers", &listing)
	if len(listing.Measurers) != 1 || !listing.Measurers[0].Live || listing.Measurers[0].URL != ws.URL {
		t.Fatalf("measurer listing: %+v", listing.Measurers)
	}
	var health struct {
		Measurers struct {
			Registered int `json:"registered"`
			Live       int `json:"live"`
		} `json:"measurers"`
	}
	getJSON(t, ts, "/v1/healthz", &health)
	if health.Measurers.Registered != 1 || health.Measurers.Live != 1 {
		t.Fatalf("healthz measurers: %+v", health.Measurers)
	}

	// Fleet-measured job (pipelined) vs simulator-measured job, same seed,
	// both fresh so neither warm-starts from the other's records.
	spec := e2eSpec
	spec.Fresh = true
	spec.Measurer = "fleet"
	spec.PipelineDepth = 2
	v := postJob(t, ts, spec)
	events := drainSSE(t, ts, v.ID)
	last := events[len(events)-1]
	if last.Type != string(StateDone) {
		t.Fatalf("fleet job ended %q (%s)", last.Type, last.Error)
	}
	var sawFleetRound bool
	for _, ev := range events {
		if ev.Type == "round" && ev.Measurer == "fleet" && ev.InFlight >= 1 {
			sawFleetRound = true
		}
	}
	if !sawFleetRound {
		t.Fatal("SSE rounds never reported the fleet measurer")
	}
	fleetJob := getJob(t, ts, v.ID)
	if fleetJob.Result == nil || fleetJob.Result.Measurer != "fleet" {
		t.Fatalf("fleet job result: %+v", fleetJob.Result)
	}

	// Same pipeline depth: results are bitwise identical across backends
	// for a fixed depth (depth itself changes which candidates the search
	// proposes, by design).
	spec2 := e2eSpec
	spec2.Fresh = true
	spec2.Measurer = "simulator"
	spec2.PipelineDepth = spec.PipelineDepth
	v2 := postJob(t, ts, spec2)
	drainSSE(t, ts, v2.ID)
	simJob := getJob(t, ts, v2.ID)
	if simJob.Result == nil || simJob.Result.Measurer != "simulator" {
		t.Fatalf("simulator job result: %+v", simJob.Result)
	}

	// Byte-identical sessions: same curve, same final workload.
	if fleetJob.Result.FinalWorkloadMS != simJob.Result.FinalWorkloadMS {
		t.Fatalf("fleet %.9f ms != simulator %.9f ms",
			fleetJob.Result.FinalWorkloadMS, simJob.Result.FinalWorkloadMS)
	}
	if !reflect.DeepEqual(fleetJob.Result.Curve, simJob.Result.Curve) {
		t.Fatalf("curves diverge:\nfleet %+v\nsim   %+v", fleetJob.Result.Curve, simJob.Result.Curve)
	}

	// The worker actually executed the batches and the registry absorbed
	// the dispatch stats.
	getJSON(t, ts, "/v1/measurers", &listing)
	if listing.Measurers[0].Batches == 0 || listing.Measurers[0].Schedules < e2eSpec.Trials {
		t.Fatalf("registry never absorbed fleet stats: %+v", listing.Measurers[0])
	}

	// Deregistration: a forced-fleet job now fails, auto falls back to the
	// simulator.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/measurers?url="+ws.URL, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deregister: status %d", resp.StatusCode)
	}
	spec3 := e2eSpec
	spec3.Fresh = true
	spec3.Measurer = "fleet"
	v3 := postJob(t, ts, spec3)
	ev3 := drainSSE(t, ts, v3.ID)
	if last := ev3[len(ev3)-1]; last.Type != string(StateFailed) {
		t.Fatalf("forced-fleet job without workers ended %q, want failed", last.Type)
	}
}

// TestMeasurerRegistrationValidation pins the registry's input checks: a
// malformed URL and an unreachable worker are both rejected, and
// deregistering an unknown worker 404s.
func TestMeasurerRegistrationValidation(t *testing.T) {
	_, ts := testServer(t, t.TempDir())
	registerWorker(t, ts, "not-a-url", http.StatusBadRequest)
	registerWorker(t, ts, "http://127.0.0.1:1", http.StatusBadGateway) // nothing listens there
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/measurers?url=http://nope", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("deregistering unknown worker: status %d, want 404", resp.StatusCode)
	}

	// Bad job specs referencing the new fields.
	for name, spec := range map[string]JobSpec{
		"unknown measurer": {Device: "a100", Network: "dcgan", Measurer: "abacus"},
		"absurd depth":     {Device: "a100", Network: "dcgan", PipelineDepth: 10_000},
	} {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}

func getJSON(t *testing.T, ts *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatal(err)
	}
}
