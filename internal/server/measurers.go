package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"time"

	"pruner"
)

// The measurer registry: remote measurement workers (cmd/pruner-measure)
// register here and jobs fan their measurement batches out over the live
// fleet. Registration is heartbeat-based — workers re-POST periodically
// and entries older than Config.MeasurerTTL stop being dispatched to —
// so a crashed worker silently drains out of rotation instead of failing
// every batch until an operator notices.

// measurerEntry is one registered worker. Dispatch accounting is not
// kept here: every job's fleet writes per-worker counters straight to
// the daemon's registry (pruner_fleet_*), and views read them back, so
// /v1/measurers, /v1/healthz and /metrics all report the same numbers —
// live mid-job, not only after a fleet finishes.
type measurerEntry struct {
	url          string
	registeredAt time.Time
	lastSeen     time.Time
}

// MeasurerView is the API form of a registered worker.
type MeasurerView struct {
	URL              string `json:"url"`
	Live             bool   `json:"live"`
	RegisteredAtUnix int64  `json:"registered_at_unix"`
	LastSeenUnix     int64  `json:"last_seen_unix"`
	// Batches / Schedules / Failures aggregate the dispatch accounting of
	// every fleet this daemon has run against the worker.
	Batches   int `json:"batches"`
	Schedules int `json:"schedules"`
	Failures  int `json:"failures"`
}

// registerMeasurer adds (or heartbeats) a worker.
func (s *Server) registerMeasurer(rawURL string) MeasurerView {
	now := time.Now()
	s.mmu.Lock()
	defer s.mmu.Unlock()
	e := s.measurers[rawURL]
	if e == nil {
		e = &measurerEntry{url: rawURL, registeredAt: now}
		s.measurers[rawURL] = e
		s.measurerOrder = append(s.measurerOrder, rawURL)
		s.cfg.Log.Info("measurer registered", "measurer", rawURL)
	}
	e.lastSeen = now
	return s.viewLocked(e, now)
}

// deregisterMeasurer removes a worker; reports whether it was registered.
func (s *Server) deregisterMeasurer(rawURL string) bool {
	s.mmu.Lock()
	defer s.mmu.Unlock()
	if _, ok := s.measurers[rawURL]; !ok {
		return false
	}
	delete(s.measurers, rawURL)
	for i, u := range s.measurerOrder {
		if u == rawURL {
			s.measurerOrder = append(s.measurerOrder[:i], s.measurerOrder[i+1:]...)
			break
		}
	}
	s.cfg.Log.Info("measurer deregistered", "measurer", rawURL)
	return true
}

// liveMeasurerURLs returns the dispatchable workers in registration order
// (stable order keeps fleet rotation deterministic for a fixed registry).
func (s *Server) liveMeasurerURLs() []string {
	now := time.Now()
	s.mmu.Lock()
	defer s.mmu.Unlock()
	var out []string
	for _, u := range s.measurerOrder {
		if s.liveLocked(s.measurers[u], now) {
			out = append(out, u)
		}
	}
	return out
}

func (s *Server) liveLocked(e *measurerEntry, now time.Time) bool {
	if e == nil {
		return false
	}
	return s.cfg.MeasurerTTL <= 0 || now.Sub(e.lastSeen) <= s.cfg.MeasurerTTL
}

func (s *Server) viewLocked(e *measurerEntry, now time.Time) MeasurerView {
	reg := s.cfg.Obs.Reg()
	regCount := func(name string) int {
		v, _ := reg.Value(name, e.url)
		return int(v)
	}
	return MeasurerView{
		URL:              e.url,
		Live:             s.liveLocked(e, now),
		RegisteredAtUnix: e.registeredAt.Unix(),
		LastSeenUnix:     e.lastSeen.Unix(),
		Batches:          regCount(pruner.MetricFleetBatches),
		Schedules:        regCount(pruner.MetricFleetSchedules),
		Failures:         regCount(pruner.MetricFleetFailures),
	}
}

// measurerViews snapshots the registry, sorted by URL.
func (s *Server) measurerViews() []MeasurerView {
	now := time.Now()
	s.mmu.Lock()
	out := make([]MeasurerView, 0, len(s.measurers))
	for _, e := range s.measurers {
		out = append(out, s.viewLocked(e, now))
	}
	s.mmu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// measurerStats summarises the measurer registry for /v1/healthz, read
// back from the metrics registry so healthz and /metrics agree. Batch
// and failure totals are registry-lifetime sums over every worker a
// fleet ever dispatched to, deregistered ones included.
func (s *Server) measurerStats() map[string]any {
	reg := s.cfg.Obs.Reg()
	regGauge := func(name string) int {
		v, _ := reg.Value(name)
		return int(v)
	}
	return map[string]any{
		"registered": regGauge(MetricMeasurersRegistered),
		"live":       regGauge(MetricMeasurersLive),
		"batches":    int(reg.Sum(pruner.MetricFleetBatches)),
		"failures":   int(reg.Sum(pruner.MetricFleetFailures)),
	}
}

// pingMeasurer verifies a registering worker actually answers /healthz,
// so a typo'd URL is rejected at registration instead of failing batches.
func (s *Server) pingMeasurer(rawURL string) error {
	client := &http.Client{Timeout: 5 * time.Second}
	resp, err := client.Get(rawURL + "/healthz")
	if err != nil {
		return fmt.Errorf("worker unreachable: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("worker /healthz returned HTTP %d", resp.StatusCode)
	}
	return nil
}

// normalizeWorkerURL canonicalises a worker base URL so registration,
// heartbeats and deregistration all agree on the worker's identity.
// Paths are preserved (a worker may live behind a proxy prefix); only a
// trailing slash is trimmed.
func normalizeWorkerURL(raw string) (string, error) {
	u, err := url.Parse(raw)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" {
		return "", fmt.Errorf("url must be an absolute http(s) base URL, got %q", raw)
	}
	u.Fragment = ""
	u.RawQuery = ""
	return strings.TrimSuffix(u.String(), "/"), nil
}

// handleRegisterMeasurer is POST /v1/measurers: body {"url":"http://..."}.
// Re-POSTing the same URL is the heartbeat: already-known workers just
// refresh lastSeen, WITHOUT re-pinging /healthz — a transient
// daemon-to-worker blip must not reject heartbeats and expire a worker
// that is otherwise serving fine. Only first registration pings, to
// reject typo'd URLs up front.
func (s *Server) handleRegisterMeasurer(w http.ResponseWriter, r *http.Request) {
	var body struct {
		URL string `json:"url"`
	}
	if err := json.NewDecoder(r.Body).Decode(&body); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	base, err := normalizeWorkerURL(body.URL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.mmu.Lock()
	known := s.measurers[base] != nil
	s.mmu.Unlock()
	if !known {
		if err := s.pingMeasurer(base); err != nil {
			writeError(w, http.StatusBadGateway, "%v", err)
			return
		}
	}
	writeJSON(w, http.StatusOK, s.registerMeasurer(base))
}

// handleListMeasurers is GET /v1/measurers.
func (s *Server) handleListMeasurers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"measurers": s.measurerViews()})
}

// handleDeregisterMeasurer is DELETE /v1/measurers?url=http://...
func (s *Server) handleDeregisterMeasurer(w http.ResponseWriter, r *http.Request) {
	rawURL := r.URL.Query().Get("url")
	if rawURL == "" {
		writeError(w, http.StatusBadRequest, "missing url query parameter")
		return
	}
	base, err := normalizeWorkerURL(rawURL)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.deregisterMeasurer(base) {
		writeError(w, http.StatusNotFound, "no such measurer")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"deregistered": base})
}
