package store

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/ir"
	"pruner/internal/schedule"
)

// twoTasks returns distinct tasks plus a deterministic batch of records
// for each (the last record of the first task is a failed build).
func testRecords(t *testing.T, n int) ([]*ir.Task, []costmodel.Record) {
	t.Helper()
	a := ir.NewMatMul(128, 128, 128, ir.FP32, 1)
	b := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 28, W: 28, CI: 64, CO: 64, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}, ir.FP32, 0)
	rng := rand.New(rand.NewSource(11))
	var recs []costmodel.Record
	for i := 0; i < n; i++ {
		task := a
		if i%2 == 1 {
			task = b
		}
		lat := float64(i+1) * 1e-4
		if i == 0 {
			lat = math.Inf(1)
		}
		g := schedule.NewGenerator(task)
		recs = append(recs, costmodel.Record{Task: task, Sched: g.Random(rng), Latency: lat})
	}
	return []*ir.Task{a, b}, recs
}

func mustOpen(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tasks, recs := testRecords(t, 8)

	s := mustOpen(t, dir, Options{})
	if err := s.Append("A100", recs); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if st := s.Stats(); st.Records != len(recs) || st.Devices != 1 || st.Dropped != 0 {
		t.Fatalf("stats after reload: %+v", st)
	}
	warm, err := s.WarmStart("a100", tasks) // DeviceKey normalises case
	if err != nil {
		t.Fatalf("WarmStart: %v", err)
	}
	if len(warm) != len(recs) {
		t.Fatalf("warm-start returned %d records, want %d", len(warm), len(recs))
	}
	// Order contract: tasks in argument order, append order within a task.
	seen := map[string]int{}
	lastTask := ""
	for _, r := range warm {
		if r.Task.ID != lastTask && seen[r.Task.ID] > 0 {
			t.Fatalf("warm-start interleaves tasks")
		}
		lastTask = r.Task.ID
		seen[r.Task.ID]++
	}

	best := s.BestForTasks("a100", []string{tasks[0].ID, tasks[1].ID})
	if len(best) != 2 {
		t.Fatalf("best for %d tasks, want 2", len(best))
	}
	// Task a's records are i=0 (failed), 2, 4, 6 -> best 3e-4 s = 300us.
	if got := best[tasks[0].ID].LatencyUS; math.Abs(got-300) > 1e-6 {
		t.Fatalf("task a best %gus, want 300us", got)
	}
	if !s.Covered("a100", tasks, len(recs)) {
		t.Fatal("store should cover both tasks")
	}
	if s.Covered("k80", tasks, 1) {
		t.Fatal("unknown device should not be covered")
	}
	// The depth floor: enough valid bests but too little history must not
	// count as covered (the daemon would serve a shallow search forever).
	if s.Covered("a100", tasks, len(recs)+1) {
		t.Fatal("coverage must respect the minimum record floor")
	}
}

// TestStoreCrashSafety is the torn-write test: truncating the active
// segment mid-line loses only the torn record; every complete record
// survives reload, and the shard keeps accepting appends afterwards.
func TestStoreCrashSafety(t *testing.T) {
	dir := t.TempDir()
	tasks, recs := testRecords(t, 6)

	s := mustOpen(t, dir, Options{})
	if err := s.Append("t4", recs); err != nil {
		t.Fatalf("Append: %v", err)
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "t4", "seg-*.jsonl"))
	if len(segs) != 1 {
		t.Fatalf("%d segments, want 1", len(segs))
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	// Chop the file mid-way through the final line.
	cut := len(data) - 17
	if err := os.WriteFile(segs[0], data[:cut], 0o644); err != nil {
		t.Fatal(err)
	}

	s = mustOpen(t, dir, Options{})
	st := s.Stats()
	if st.Records != len(recs)-1 {
		t.Fatalf("reload kept %d records, want %d", st.Records, len(recs)-1)
	}
	if st.Dropped != 1 {
		t.Fatalf("dropped %d tail lines, want 1", st.Dropped)
	}
	warm, err := s.WarmStart("t4", tasks)
	if err != nil {
		t.Fatalf("WarmStart after crash: %v", err)
	}
	if len(warm) != len(recs)-1 {
		t.Fatalf("warm-start %d records, want %d", len(warm), len(recs)-1)
	}

	// The torn tail was truncated away: the next append must land on a
	// record boundary and a further reload must see old + new records.
	if err := s.Append("t4", recs[:2]); err != nil {
		t.Fatalf("Append after crash: %v", err)
	}
	s.Close()
	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if got := s.Stats().Records; got != len(recs)+1 {
		t.Fatalf("after post-crash append: %d records, want %d", got, len(recs)+1)
	}
}

// A final line that still parses but lacks its newline is indistinguishable
// from a longer torn line; it must be dropped too.
func TestStoreDropsUnterminatedFinalLine(t *testing.T) {
	dir := t.TempDir()
	_, recs := testRecords(t, 3)
	s := mustOpen(t, dir, Options{})
	if err := s.Append("orin", recs); err != nil {
		t.Fatal(err)
	}
	s.Close()

	segs, _ := filepath.Glob(filepath.Join(dir, "orin", "seg-*.jsonl"))
	data, _ := os.ReadFile(segs[0])
	os.WriteFile(segs[0], data[:len(data)-1], 0o644) // drop just the trailing \n

	s = mustOpen(t, dir, Options{})
	defer s.Close()
	if st := s.Stats(); st.Records != len(recs)-1 || st.Dropped != 1 {
		t.Fatalf("stats %+v, want %d records / 1 dropped", st, len(recs)-1)
	}
}

func TestStoreRejectsMidSegmentGarbage(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "a100")
	os.MkdirAll(sub, 0o755)
	body := "{garbage\n" + `{"task_id":"x","latency_us":10}` + "\n"
	os.WriteFile(filepath.Join(sub, "seg-000001.jsonl"), []byte(body), 0o644)
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-segment garbage should fail Open")
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	tasks, recs := testRecords(t, 8)
	s := mustOpen(t, dir, Options{MaxSegmentBytes: 256}) // force rotation
	for i := 0; i < 4; i++ {
		if err := s.Append("k80", recs); err != nil {
			t.Fatal(err)
		}
	}
	s.Close()
	segs, _ := filepath.Glob(filepath.Join(dir, "k80", "seg-*.jsonl"))
	if len(segs) < 2 {
		t.Fatalf("%d segments, want rotation to produce several", len(segs))
	}
	s = mustOpen(t, dir, Options{MaxSegmentBytes: 256})
	defer s.Close()
	if got := s.Stats().Records; got != 4*len(recs) {
		t.Fatalf("reload across segments: %d records, want %d", got, 4*len(recs))
	}
	warm, err := s.WarmStart("k80", tasks)
	if err != nil || len(warm) != 4*len(recs) {
		t.Fatalf("warm-start across segments: %d records, err %v", len(warm), err)
	}
}

func TestDeviceKey(t *testing.T) {
	cases := map[string]string{
		"A100": "a100", "Titan V": "titan-v", " Jetson  Orin ": "jetson-orin",
		"t4": "t4", "__": "",
	}
	for in, want := range cases {
		if got := DeviceKey(in); got != want {
			t.Errorf("DeviceKey(%q) = %q, want %q", in, got, want)
		}
	}
	if strings.ContainsAny(DeviceKey("a/b\\c"), "/\\") {
		t.Error("DeviceKey must strip path separators")
	}
}
