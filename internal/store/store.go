// Package store persists tuning records across sessions: the durable half
// of tuning-as-a-service. The paper's Table 1 point is that search cost,
// not tuned latency, dominates; a measurement paid for once should never
// be paid for again. The store keeps every record appended by any session
// keyed by (device, task fingerprint) and answers two questions for new
// sessions: "what history should warm-start this task set?" and "what is
// the best known schedule per task?" — the latter lets a repeat request
// for an already-tuned (device, network) be served with zero new
// measurements.
//
// On disk a store is a directory of per-device subdirectories, each
// holding append-only JSONL segments (seg-000001.jsonl, ...) in the
// record-log format of measure.WriteRecords/ReadRecords — the same codec
// the measurement fleet speaks on the wire — rotated at a size threshold
// so no file grows unbounded. Appends are one O_APPEND write of
// whole lines under a store-wide lock; a crash can therefore only ever
// truncate the tail of the active segment. Open tolerates exactly that: a
// final line that is cut off (or otherwise unparseable) is dropped and the
// file truncated back to the last complete record, while garbage in the
// middle of a segment — which no crash of this writer can produce — is
// reported as an error.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pruner/internal/costmodel"
	"pruner/internal/ir"
	"pruner/internal/measure"
	"pruner/internal/obs"
)

// Options configure a store.
type Options struct {
	// MaxSegmentBytes rotates the active segment once it would exceed
	// this size; <= 0 selects 4 MiB.
	MaxSegmentBytes int64
	// Sync fsyncs after every append. Durability against power loss at
	// the cost of append latency; the truncated-tail tolerance covers
	// process crashes either way.
	Sync bool
	// Metrics, when non-nil, receives the store's instruments
	// (pruner_store_* — see metrics.go): append/rotation/warm-start
	// counters plus func-backed occupancy gauges sampled at scrape time.
	// nil disables metrics entirely.
	Metrics *obs.Registry
}

func (o Options) withDefaults() Options {
	if o.MaxSegmentBytes <= 0 {
		o.MaxSegmentBytes = 4 << 20
	}
	return o
}

// entry is one indexed record line.
type entry struct {
	line      []byte  // raw JSON, no trailing newline
	latencyUS float64 // -1 marks failed builds
}

// probe is the minimal slice of the record codec the index needs.
type probe struct {
	TaskID    string  `json:"task_id"`
	LatencyUS float64 `json:"latency_us"`
}

// shard is one device's segments and index.
type shard struct {
	dir     string
	file    *os.File // active segment, O_APPEND
	size    int64
	seq     int
	order   []string           // task IDs in first-seen order
	tasks   map[string][]entry // taskID -> entries in append order
	records int
}

// Store is a durable tuning-record store. All methods are safe for
// concurrent use.
type Store struct {
	dir  string
	opts Options

	mu      sync.Mutex
	shards  map[string]*shard
	records int
	dropped int // truncated tail lines discarded at Open

	metrics metrics
}

// Open loads (or creates) the store rooted at dir.
func Open(dir string, opts Options) (*Store, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: dir, opts: opts, shards: map[string]*shard{}}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		sh, err := s.loadShard(e.Name())
		if err != nil {
			return nil, err
		}
		s.shards[e.Name()] = sh
		s.records += sh.records
	}
	s.initMetrics(opts.Metrics)
	return s, nil
}

func segName(seq int) string { return fmt.Sprintf("seg-%06d.jsonl", seq) }

// loadShard replays one device directory's segments into the index and
// reopens the last segment for append, truncating a torn tail write.
func (s *Store) loadShard(device string) (*shard, error) {
	sh := &shard{dir: filepath.Join(s.dir, device), tasks: map[string][]entry{}}
	names, err := filepath.Glob(filepath.Join(sh.dir, "seg-*.jsonl"))
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	sort.Strings(names)
	for i, name := range names {
		data, err := os.ReadFile(name)
		if err != nil {
			return nil, fmt.Errorf("store: %w", err)
		}
		valid, dropped, err := sh.index(data)
		if err != nil {
			return nil, fmt.Errorf("store: %s: %w", name, err)
		}
		s.dropped += dropped
		if dropped > 0 && int64(valid) < int64(len(data)) {
			// Cut the torn tail off so the next append starts at a
			// record boundary instead of gluing onto half a line.
			if err := os.Truncate(name, int64(valid)); err != nil {
				return nil, fmt.Errorf("store: %w", err)
			}
		}
		if i == len(names)-1 {
			var seq int
			_, _ = fmt.Sscanf(filepath.Base(name), "seg-%06d.jsonl", &seq) // names are listSegments-filtered
			sh.seq = seq
			sh.size = int64(valid)
		}
	}
	return sh, nil
}

// index folds one segment's bytes into the shard, returning the byte
// length of the valid prefix and how many tail lines were dropped. Only
// the final line may be invalid (torn by a crash); earlier garbage errors.
func (sh *shard) index(data []byte) (valid, dropped int, err error) {
	off := 0
	for off < len(data) {
		nl := bytes.IndexByte(data[off:], '\n')
		line := data[off:]
		terminated := nl >= 0
		if terminated {
			line = data[off : off+nl]
		}
		final := !terminated || off+nl+1 >= len(data)
		if len(bytes.TrimSpace(line)) == 0 {
			if terminated {
				off += nl + 1
				if final {
					valid = off
				}
				continue
			}
			break
		}
		var p probe
		if jerr := json.Unmarshal(line, &p); jerr != nil || p.TaskID == "" {
			if final {
				dropped++
				break
			}
			return valid, dropped, fmt.Errorf("corrupt record mid-segment at byte %d", off)
		}
		if !terminated {
			// Parsed but unterminated: the crash may have cut a longer
			// line at a point that still forms valid JSON. Only a
			// newline proves the write completed; drop it.
			dropped++
			break
		}
		if sh.tasks[p.TaskID] == nil {
			sh.order = append(sh.order, p.TaskID)
		}
		sh.tasks[p.TaskID] = append(sh.tasks[p.TaskID], entry{line: append([]byte(nil), line...), latencyUS: p.LatencyUS})
		sh.records++
		off += nl + 1
		valid = off
	}
	return valid, dropped, nil
}

// openSegment opens (creating if needed) the shard's current segment for
// append and records its size.
func (sh *shard) openSegment() error {
	f, err := os.OpenFile(filepath.Join(sh.dir, segName(sh.seq)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // already failing; Stat's error wins
		return fmt.Errorf("store: %w", err)
	}
	sh.file = f
	sh.size = st.Size()
	return nil
}

// DeviceKey normalises a device name into a store shard key (and
// directory name): lowercase, with runs of non-alphanumerics collapsed
// to single dashes ("Titan V" -> "titan-v").
func DeviceKey(name string) string {
	var b strings.Builder
	dash := false
	for _, r := range strings.ToLower(strings.TrimSpace(name)) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
			dash = false
		default:
			if !dash && b.Len() > 0 {
				b.WriteByte('-')
				dash = true
			}
		}
	}
	return strings.TrimSuffix(b.String(), "-")
}

// Append durably adds a session's records under the device key. The
// records are encoded with the tuner's record codec and written as one
// O_APPEND write, so concurrent appends interleave only at line
// granularity and a crash can only truncate the tail.
func (s *Store) Append(device string, recs []costmodel.Record) error {
	if len(recs) == 0 {
		return nil
	}
	device = DeviceKey(device)
	if device == "" {
		return fmt.Errorf("store: empty device key")
	}
	var buf bytes.Buffer
	if err := measure.WriteRecords(&buf, recs); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	payload := buf.Bytes()

	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[device]
	if sh == nil {
		sh = &shard{dir: filepath.Join(s.dir, device), tasks: map[string][]entry{}}
		if err := os.MkdirAll(sh.dir, 0o755); err != nil {
			return fmt.Errorf("store: %w", err)
		}
		s.shards[device] = sh
	}
	if sh.seq == 0 {
		sh.seq = 1
	}
	if sh.file == nil {
		if err := sh.openSegment(); err != nil {
			return err
		}
	}
	if sh.size > 0 && sh.size+int64(len(payload)) > s.opts.MaxSegmentBytes {
		_ = sh.file.Close() // O_APPEND writes are unbuffered; the data already hit the kernel
		sh.file = nil
		sh.seq++
		if err := sh.openSegment(); err != nil {
			return err
		}
		s.metrics.rotations.Inc()
	}
	if _, err := sh.file.Write(payload); err != nil {
		// The write may have landed partially (ENOSPC, I/O error). Never
		// append after a possibly-torn tail: seal this segment — reload
		// tolerates a torn final line per segment — and let the next
		// append start a fresh one, keeping the garbage in final (i.e.
		// recoverable) position forever.
		_ = sh.file.Close() // sealing a torn segment; the write error wins
		sh.file = nil
		sh.seq++
		return fmt.Errorf("store: %w", err)
	}
	if s.opts.Sync {
		if err := sh.file.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	sh.size += int64(len(payload))

	// Index what was just written through the same fold a reload uses, so
	// the live index and a post-restart index can never disagree about
	// the codec's sentinels.
	before := sh.records
	if _, dropped, err := sh.index(payload); err != nil || dropped > 0 {
		return fmt.Errorf("store: re-indexing appended records (dropped %d): %v", dropped, err)
	}
	s.records += sh.records - before
	s.metrics.appends.Inc()
	s.metrics.appendedRecords.Add(float64(sh.records - before))
	return nil
}

// WarmStart returns the device's history for the given tasks as decoded
// records, suitable for tuner.Options.WarmStart / pruner.Config.WarmStart.
// Order is deterministic: tasks in argument order, each task's records in
// append order — so identical store contents warm-start identical
// sessions (the reproducibility contract extends across the store).
func (s *Store) WarmStart(device string, tasks []*ir.Task) ([]costmodel.Record, error) {
	device = DeviceKey(device)
	var buf bytes.Buffer
	s.mu.Lock()
	if sh := s.shards[device]; sh != nil {
		for _, t := range tasks {
			for _, e := range sh.tasks[t.ID] {
				buf.Write(e.line)
				buf.WriteByte('\n')
			}
		}
	}
	s.mu.Unlock()
	if buf.Len() == 0 {
		s.metrics.warmMiss.Inc()
		return nil, nil
	}
	recs, err := measure.ReadRecords(&buf, tasks)
	if err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s.metrics.warmHit.Inc()
	s.metrics.warmRecords.Add(float64(len(recs)))
	return recs, nil
}

// Best is the store's best known schedule for one task on one device.
type Best struct {
	TaskID    string
	LatencyUS float64         // best valid latency (microseconds)
	Line      json.RawMessage // the full record line of the best measurement
	Records   int             // total stored measurements for the task
}

// BestForTasks returns the best valid record per requested task ID; tasks
// with no valid (successfully built) measurement are absent from the map.
func (s *Store) BestForTasks(device string, taskIDs []string) map[string]Best {
	device = DeviceKey(device)
	out := map[string]Best{}
	s.mu.Lock()
	defer s.mu.Unlock()
	sh := s.shards[device]
	if sh == nil {
		return out
	}
	for _, id := range taskIDs {
		entries := sh.tasks[id]
		best := Best{TaskID: id, LatencyUS: -1, Records: len(entries)}
		for _, e := range entries {
			if e.latencyUS > 0 && (best.LatencyUS < 0 || e.latencyUS < best.LatencyUS) {
				best.LatencyUS = e.latencyUS
				best.Line = json.RawMessage(e.line)
			}
		}
		if best.LatencyUS > 0 {
			out[id] = best
		}
	}
	return out
}

// Covered reports whether the device's history is deep enough to answer
// a request outright — the daemon's cache-hit predicate: every task has a
// valid best AND at least minTotal records are stored across the task set
// in total. The floor keeps a tiny or interrupted session from poisoning
// the cache: a 2000-trial request over a store holding one lucky round
// per task should warm-start a real search (which deepens the store), not
// be served that round forever.
func (s *Store) Covered(device string, tasks []*ir.Task, minTotal int) bool {
	ids := make([]string, len(tasks))
	for i, t := range tasks {
		ids[i] = t.ID
	}
	best := s.BestForTasks(device, ids)
	covered := len(best) == len(tasks)
	if covered {
		total := 0
		for _, b := range best {
			total += b.Records
		}
		covered = total >= minTotal
	}
	if covered {
		s.metrics.coveredHit.Inc()
	} else {
		s.metrics.coveredMiss.Inc()
	}
	return covered
}

// Stats summarise the store for health endpoints.
type Stats struct {
	Devices int `json:"devices"`
	Records int `json:"records"`
	Dropped int `json:"dropped_tail_lines"`
}

// Stats returns current store statistics.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{Devices: len(s.shards), Records: s.records, Dropped: s.dropped}
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Close releases the active segment files. The store must not be used
// afterwards.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	var first error
	for _, sh := range s.shards {
		if sh.file != nil {
			if err := sh.file.Close(); err != nil && first == nil {
				first = err
			}
			sh.file = nil
		}
	}
	return first
}
