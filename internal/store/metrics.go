package store

import "pruner/internal/obs"

// Metric names the store exports when Options.Metrics is set, shared
// with the daemon's healthz/metrics endpoints and their tests.
const (
	// MetricAppends counts Append calls that reached disk.
	MetricAppends = "pruner_store_appends_total"
	// MetricAppendedRecords counts records written by those appends.
	MetricAppendedRecords = "pruner_store_appended_records_total"
	// MetricRotations counts segment rotations.
	MetricRotations = "pruner_store_segment_rotations_total"
	// MetricWarmStarts counts WarmStart lookups, labelled
	// result=hit|miss (hit: at least one record returned).
	MetricWarmStarts = "pruner_store_warmstart_requests_total"
	// MetricWarmStartRecords counts records served to warm starts.
	MetricWarmStartRecords = "pruner_store_warmstart_records_total"
	// MetricCovered counts Covered cache-hit checks, labelled
	// result=hit|miss.
	MetricCovered = "pruner_store_covered_checks_total"
	// MetricRecords gauges indexed records (sampled at scrape).
	MetricRecords = "pruner_store_records"
	// MetricDevices gauges device shards (sampled at scrape).
	MetricDevices = "pruner_store_devices"
	// MetricDropped gauges torn tail lines dropped at load.
	MetricDropped = "pruner_store_dropped_tail_lines"
)

// metrics is the store's prepared instrument set; every field is nil
// (and every use a no-op) when the store was opened without a registry.
type metrics struct {
	appends         *obs.Counter
	appendedRecords *obs.Counter
	rotations       *obs.Counter
	warmHit         *obs.Counter
	warmMiss        *obs.Counter
	warmRecords     *obs.Counter
	coveredHit      *obs.Counter
	coveredMiss     *obs.Counter
}

// EnableMetrics is Options.Metrics after the fact: the serving daemon
// arms a store it did not open itself. The first registry to arm the
// store wins; later calls are no-ops, so opening with Options.Metrics
// and a daemon-side EnableMetrics on the same registry compose safely.
func (s *Store) EnableMetrics(reg *obs.Registry) {
	if s.metrics.appends != nil {
		return
	}
	s.initMetrics(reg)
}

// initMetrics registers the store's instruments on reg. The occupancy
// gauges are func-backed so scrapes always see the live index, never a
// shadow copy that could drift from Stats().
func (s *Store) initMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	warm := reg.CounterVec(MetricWarmStarts,
		"Warm-start history lookups by result (hit: records returned).", "result")
	cov := reg.CounterVec(MetricCovered,
		"Store coverage (cache-hit) checks by result.", "result")
	s.metrics = metrics{
		appends: reg.Counter(MetricAppends,
			"Record batches appended to the store."),
		appendedRecords: reg.Counter(MetricAppendedRecords,
			"Records appended to the store."),
		rotations: reg.Counter(MetricRotations,
			"Active-segment rotations."),
		warmHit:     warm.With("hit"),
		warmMiss:    warm.With("miss"),
		warmRecords: reg.Counter(MetricWarmStartRecords, "Records served to warm starts."),
		coveredHit:  cov.With("hit"),
		coveredMiss: cov.With("miss"),
	}
	reg.GaugeFunc(MetricRecords, "Records indexed across all devices.",
		func() float64 { return float64(s.Stats().Records) })
	reg.GaugeFunc(MetricDevices, "Device shards in the store.",
		func() float64 { return float64(s.Stats().Devices) })
	reg.GaugeFunc(MetricDropped, "Torn tail lines dropped when loading segments.",
		func() float64 { return float64(s.Stats().Dropped) })
}
