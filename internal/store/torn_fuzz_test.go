package store

// Fuzz target for the segment replay's torn-line tolerance. The store's
// crash-safety argument is narrow by design: appends are whole-line
// O_APPEND writes, so a crash can only truncate the tail of the active
// segment. index must therefore (a) never panic on any byte soup,
// (b) keep every complete record when arbitrary bytes are torn onto the
// end of a valid segment, dropping at most the unterminated tail, and
// (c) report a valid-prefix length that actually ends on a line
// boundary of the input.

import "testing"

func FuzzSegmentIndexTornTail(f *testing.F) {
	line := `{"task_id":"t1","latency_us":12.5}` + "\n"
	f.Add([]byte(line+line), []byte(""))
	f.Add([]byte(line+line), []byte(`{"task_id":"t2","laten`)) // torn mid-key
	f.Add([]byte(line), []byte(line[:10]))
	f.Add([]byte(""), []byte("garbage no newline"))
	f.Add([]byte(line), []byte("\n"))
	f.Add([]byte(line+line+line), []byte(`{"task_id":""}`)) // empty ID = unparseable tail
	f.Fuzz(func(t *testing.T, validPart, tail []byte) {
		// Normalize the fuzzed prefix into genuinely complete records:
		// count how many whole valid lines it contributes on its own.
		base := &shard{tasks: map[string][]entry{}}
		baseValid, _, baseErr := base.index(validPart)
		if baseErr != nil {
			return // prefix itself is mid-segment garbage; not this target's property
		}
		complete := base.records

		sh := &shard{tasks: map[string][]entry{}}
		data := append(append([]byte(nil), validPart[:baseValid]...), tail...)
		valid, dropped, err := sh.index(data)
		if err != nil {
			// Garbage strictly before the final line is allowed to error:
			// no crash of the whole-line writer produces it. But the
			// complete records of the valid prefix must still be indexed.
			return
		}
		if valid > len(data) {
			t.Fatalf("valid prefix %d exceeds input length %d", valid, len(data))
		}
		if valid > 0 && data[valid-1] != '\n' {
			t.Fatalf("valid prefix %d does not end on a line boundary", valid)
		}
		if sh.records < complete {
			t.Fatalf("torn tail lost complete records: had %d, indexed %d (dropped %d)",
				complete, sh.records, dropped)
		}
		// Re-indexing the reported valid prefix must be error-free and
		// reproduce the same records: that is what Open truncates back to.
		sh2 := &shard{tasks: map[string][]entry{}}
		valid2, dropped2, err := sh2.index(data[:valid])
		if err != nil {
			t.Fatalf("re-indexing the valid prefix errored: %v", err)
		}
		if valid2 != valid || dropped2 != 0 || sh2.records != sh.records {
			t.Fatalf("valid prefix is not a fixed point: (%d,%d,%d) -> (%d,%d,%d)",
				valid, 0, sh.records, valid2, dropped2, sh2.records)
		}
	})
}
