// Package ir defines the tensor-program intermediate representation the
// tuner searches over. A fused subgraph produced by graph partitioning is
// flattened into a Task: a perfectly-nested loop program with spatial
// (parallel) and reduction iterators, two read operands, one written
// operand and an optional fused elementwise epilogue — the canonical shape
// Ansor-style multi-level tiling applies to.
package ir

import (
	"fmt"
	"hash/fnv"
	"strings"
)

// OpKind classifies the fused subgraph's anchor operator.
type OpKind int

const (
	// MatMul is a dense matrix multiplication C[M,N] = A[M,K] * B[K,N].
	MatMul OpKind = iota
	// BatchMatMul adds a leading batch spatial dimension.
	BatchMatMul
	// Conv2D is a 2-D convolution in implicit-GEMM form.
	Conv2D
	// DepthwiseConv2D convolves each channel independently (small K).
	DepthwiseConv2D
	// ConvTranspose2D is the transposed (fractionally-strided) convolution.
	ConvTranspose2D
	// Elementwise covers fused pointwise subgraphs with no reduction.
	Elementwise
	// Reduction covers softmax/norm style subgraphs (spatial + reduce, low
	// arithmetic intensity).
	Reduction
)

var opKindNames = [...]string{
	MatMul:          "matmul",
	BatchMatMul:     "batch_matmul",
	Conv2D:          "conv2d",
	DepthwiseConv2D: "depthwise_conv2d",
	ConvTranspose2D: "conv2d_transpose",
	Elementwise:     "elementwise",
	Reduction:       "reduction",
}

func (k OpKind) String() string {
	if int(k) < len(opKindNames) {
		return opKindNames[k]
	}
	return fmt.Sprintf("opkind(%d)", int(k))
}

// Precision selects the datatype the kernel computes in.
type Precision int

const (
	// FP32 is full precision on CUDA cores.
	FP32 Precision = iota
	// FP16 is half precision, eligible for TensorCore (wmma) execution.
	FP16
)

func (p Precision) String() string {
	if p == FP16 {
		return "fp16"
	}
	return "fp32"
}

// Bytes returns the storage size of one element.
func (p Precision) Bytes() int {
	if p == FP16 {
		return 2
	}
	return 4
}

// Operand describes how one tensor is indexed by the task's loop nest.
// SpatialIdx / ReduceIdx list the loop axes whose tile sizes determine the
// operand's footprint at each memory level.
type Operand struct {
	Name string
	// SpatialIdx are indices into Task.Spatial touched by this operand.
	SpatialIdx []int
	// ReduceIdx are indices into Task.Reduce touched by this operand.
	ReduceIdx []int
	// FootprintScale discounts the shared-memory footprint for operands
	// with halo reuse (conv inputs): effective footprint = product of tile
	// extents * FootprintScale. 1 for plain operands.
	FootprintScale float64
	// ContigSpatial is the spatial axis the innermost storage dimension
	// follows, or -1 when the innermost dimension is a reduction axis
	// (ContigReduce then names it). Determines global-access coalescing.
	ContigSpatial int
	ContigReduce  int
}

// Touches reports whether the operand reads the given spatial axis.
func (o *Operand) Touches(spatialAxis int) bool {
	for _, s := range o.SpatialIdx {
		if s == spatialAxis {
			return true
		}
	}
	return false
}

// Task is one tuning unit: a fused subgraph in canonical loop-nest form.
type Task struct {
	ID        string
	Name      string
	Kind      OpKind
	Precision Precision

	// Spatial extents (parallelisable loops) and reduction extents.
	Spatial []int
	Reduce  []int

	// Inputs are the read operands (A, B); Output is the written operand.
	Inputs []Operand
	Output Operand

	// FlopsPerPoint is the floating-point work per output point per
	// reduction step (2 for multiply-add).
	FlopsPerPoint float64
	// FusedElemwise counts fused pointwise epilogue ops (ReLU, add, ...).
	FusedElemwise int

	// Weight is the number of occurrences of this exact subgraph in the
	// enclosing network; used by the task scheduler and latency totals.
	Weight int

	// Meta carries operator-specific fields for vendor-library modelling
	// (kernel size, stride, ...). Nil-safe via MetaVal.
	Meta map[string]int
}

// MetaVal returns Meta[key] or 0.
func (t *Task) MetaVal(key string) int {
	if t.Meta == nil {
		return 0
	}
	return t.Meta[key]
}

// OutputPoints is the number of output elements (product of spatial extents).
func (t *Task) OutputPoints() int64 {
	p := int64(1)
	for _, e := range t.Spatial {
		p *= int64(e)
	}
	return p
}

// ReducePoints is the product of reduction extents (1 when none).
func (t *Task) ReducePoints() int64 {
	p := int64(1)
	for _, e := range t.Reduce {
		p *= int64(e)
	}
	return p
}

// FLOPs is the total floating-point work of one task execution, including
// the fused epilogue.
func (t *Task) FLOPs() float64 {
	return float64(t.OutputPoints())*float64(t.ReducePoints())*t.FlopsPerPoint +
		float64(t.OutputPoints())*float64(t.FusedElemwise)
}

// FootprintBytes is the compulsory global traffic: every operand element
// read once plus the output written once.
func (t *Task) FootprintBytes() float64 {
	eb := float64(t.Precision.Bytes())
	total := float64(t.OutputPoints()) * eb
	for i := range t.Inputs {
		total += float64(t.operandElems(&t.Inputs[i])) * eb
	}
	return total
}

func (t *Task) operandElems(o *Operand) int64 {
	p := int64(1)
	for _, s := range o.SpatialIdx {
		p *= int64(t.Spatial[s])
	}
	for _, r := range o.ReduceIdx {
		p *= int64(t.Reduce[r])
	}
	return p
}

// Validate reports structural errors in the task definition.
func (t *Task) Validate() error {
	if len(t.Spatial) == 0 {
		return fmt.Errorf("task %s: no spatial axes", t.Name)
	}
	for i, e := range t.Spatial {
		if e <= 0 {
			return fmt.Errorf("task %s: spatial[%d]=%d", t.Name, i, e)
		}
	}
	for i, e := range t.Reduce {
		if e <= 0 {
			return fmt.Errorf("task %s: reduce[%d]=%d", t.Name, i, e)
		}
	}
	check := func(o *Operand) error {
		for _, s := range o.SpatialIdx {
			if s < 0 || s >= len(t.Spatial) {
				return fmt.Errorf("task %s operand %s: spatial index %d out of range", t.Name, o.Name, s)
			}
		}
		for _, r := range o.ReduceIdx {
			if r < 0 || r >= len(t.Reduce) {
				return fmt.Errorf("task %s operand %s: reduce index %d out of range", t.Name, o.Name, r)
			}
		}
		if o.FootprintScale <= 0 || o.FootprintScale > 1 {
			return fmt.Errorf("task %s operand %s: footprint scale %v out of (0,1]", t.Name, o.Name, o.FootprintScale)
		}
		return nil
	}
	for i := range t.Inputs {
		if err := check(&t.Inputs[i]); err != nil {
			return err
		}
	}
	if err := check(&t.Output); err != nil {
		return err
	}
	if t.FlopsPerPoint <= 0 && len(t.Reduce) > 0 {
		return fmt.Errorf("task %s: reduction task needs positive FlopsPerPoint", t.Name)
	}
	return nil
}

// fingerprint derives the stable task ID from the structural definition.
func (t *Task) fingerprint() string {
	h := fnv.New64a()
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s|%s|%v|%v|%d|%d", t.Kind, t.Precision, t.Spatial, t.Reduce, t.FusedElemwise, len(t.Inputs))
	for i := range t.Inputs {
		o := &t.Inputs[i]
		fmt.Fprintf(&sb, "|%v%v%.2f", o.SpatialIdx, o.ReduceIdx, o.FootprintScale)
	}
	_, _ = h.Write([]byte(sb.String())) // hash.Hash.Write never fails
	return fmt.Sprintf("%016x", h.Sum64())
}

// finish fills derived fields and validates; all constructors funnel here.
func (t *Task) finish() *Task {
	if t.Weight == 0 {
		t.Weight = 1
	}
	for i := range t.Inputs {
		if t.Inputs[i].FootprintScale == 0 {
			t.Inputs[i].FootprintScale = 1
		}
	}
	if t.Output.FootprintScale == 0 {
		t.Output.FootprintScale = 1
	}
	t.ID = t.fingerprint()
	if err := t.Validate(); err != nil {
		panic(err) // constructors are called with program-controlled shapes
	}
	return t
}

// NewMatMul builds C[M,N] = A[M,K] x B[K,N] with fused elementwise ops.
func NewMatMul(m, n, k int, prec Precision, fused int) *Task {
	t := &Task{
		Name:      fmt.Sprintf("matmul_m%d_n%d_k%d_%s", m, n, k, prec),
		Kind:      MatMul,
		Precision: prec,
		Spatial:   []int{m, n},
		Reduce:    []int{k},
		Inputs: []Operand{
			{Name: "A", SpatialIdx: []int{0}, ReduceIdx: []int{0}, ContigSpatial: -1, ContigReduce: 0},
			{Name: "B", SpatialIdx: []int{1}, ReduceIdx: []int{0}, ContigSpatial: 1, ContigReduce: -1},
		},
		Output:        Operand{Name: "C", SpatialIdx: []int{0, 1}, ContigSpatial: 1, ContigReduce: -1},
		FlopsPerPoint: 2,
		FusedElemwise: fused,
		Meta:          map[string]int{"m": m, "n": n, "k": k},
	}
	return t.finish()
}

// NewBatchMatMul builds C[B,M,N] = A[B,M,K] x B[B,K,N].
func NewBatchMatMul(b, m, n, k int, prec Precision, fused int) *Task {
	t := &Task{
		Name:      fmt.Sprintf("batch_matmul_b%d_m%d_n%d_k%d_%s", b, m, n, k, prec),
		Kind:      BatchMatMul,
		Precision: prec,
		Spatial:   []int{b, m, n},
		Reduce:    []int{k},
		Inputs: []Operand{
			{Name: "A", SpatialIdx: []int{0, 1}, ReduceIdx: []int{0}, ContigSpatial: -1, ContigReduce: 0},
			{Name: "B", SpatialIdx: []int{0, 2}, ReduceIdx: []int{0}, ContigSpatial: 2, ContigReduce: -1},
		},
		Output:        Operand{Name: "C", SpatialIdx: []int{0, 1, 2}, ContigSpatial: 2, ContigReduce: -1},
		FlopsPerPoint: 2,
		FusedElemwise: fused,
		Meta:          map[string]int{"b": b, "m": m, "n": n, "k": k},
	}
	return t.finish()
}

// Conv2DShape bundles the parameters of a 2-D convolution.
type Conv2DShape struct {
	N, H, W    int // batch, input height/width
	CI, CO     int // channels in/out
	KH, KW     int // kernel
	Stride     int
	Pad        int
	Depthwise  bool
	Transposed bool
}

// Out returns the output spatial size.
func (c Conv2DShape) Out() (oh, ow int) {
	if c.Transposed {
		return c.H*c.Stride + c.KH - c.Stride - 2*c.Pad, c.W*c.Stride + c.KW - c.Stride - 2*c.Pad
	}
	return (c.H+2*c.Pad-c.KH)/c.Stride + 1, (c.W+2*c.Pad-c.KW)/c.Stride + 1
}

// NewConv2D builds the implicit-GEMM view of a convolution: spatial axes
// [N*OH, OW, CO], reduction axes [CI, KH*KW]. The input operand carries a
// halo FootprintScale so shared-memory symbols reflect overlap reuse.
func NewConv2D(s Conv2DShape, prec Precision, fused int) *Task {
	oh, ow := s.Out()
	if oh <= 0 || ow <= 0 {
		panic(fmt.Sprintf("conv2d shape yields empty output: %+v", s))
	}
	kind := Conv2D
	ci := s.CI
	switch {
	case s.Depthwise:
		kind = DepthwiseConv2D
		ci = 1 // each output channel reduces over one input channel
	case s.Transposed:
		kind = ConvTranspose2D
	}
	// Halo reuse: a stride-s kernel k tile of output rows oh_t needs
	// (oh_t-1)*s + k input rows; for typical tiles the per-element
	// footprint shrinks roughly by (s/k)^2 relative to the naive product
	// over [tile, k] axes, bounded to (0, 1].
	halo := float64(s.Stride*s.Stride) / float64(s.KH*s.KW)
	if halo > 1 {
		halo = 1
	}
	if halo < 0.05 {
		halo = 0.05
	}
	t := &Task{
		Name: fmt.Sprintf("%s_n%d_c%d_hw%dx%d_co%d_k%dx%d_s%d_%s",
			kind, s.N, s.CI, s.H, s.W, s.CO, s.KH, s.KW, s.Stride, prec),
		Kind:      kind,
		Precision: prec,
		Spatial:   []int{s.N * oh, ow, s.CO},
		Reduce:    []int{ci, s.KH * s.KW},
		Inputs: []Operand{
			{Name: "data", SpatialIdx: []int{0, 1}, ReduceIdx: []int{0, 1},
				FootprintScale: halo, ContigSpatial: 1, ContigReduce: -1},
			{Name: "weight", SpatialIdx: []int{2}, ReduceIdx: []int{0, 1},
				ContigSpatial: -1, ContigReduce: 0},
		},
		Output:        Operand{Name: "out", SpatialIdx: []int{0, 1, 2}, ContigSpatial: 2, ContigReduce: -1},
		FlopsPerPoint: 2,
		FusedElemwise: fused,
		Meta: map[string]int{
			"n": s.N, "h": s.H, "w": s.W, "ci": s.CI, "co": s.CO,
			"kh": s.KH, "kw": s.KW, "stride": s.Stride, "pad": s.Pad,
			"oh": oh, "ow": ow,
		},
	}
	if s.Depthwise {
		// Depthwise output channel co consumes input channel co: the data
		// operand is indexed by the channel spatial axis instead of a
		// reduction channel axis.
		t.Inputs[0].SpatialIdx = []int{0, 1, 2}
	}
	return t.finish()
}

// NewElementwise builds a pure pointwise fused subgraph over n elements
// with opCount fused operations (>=1).
func NewElementwise(n, opCount int, prec Precision) *Task {
	if opCount < 1 {
		opCount = 1
	}
	t := &Task{
		Name:      fmt.Sprintf("elementwise_n%d_ops%d_%s", n, opCount, prec),
		Kind:      Elementwise,
		Precision: prec,
		Spatial:   []int{n},
		Inputs: []Operand{
			{Name: "X", SpatialIdx: []int{0}, ContigSpatial: 0, ContigReduce: -1},
		},
		Output:        Operand{Name: "Y", SpatialIdx: []int{0}, ContigSpatial: 0, ContigReduce: -1},
		FlopsPerPoint: 0,
		FusedElemwise: opCount,
		Meta:          map[string]int{"n": n},
	}
	return t.finish()
}

// NewReduction builds a softmax/normalisation style subgraph: rows x cols
// with a reduction across cols and opsPerPoint flops per element.
func NewReduction(rows, cols int, prec Precision, opsPerPoint float64) *Task {
	t := &Task{
		Name:      fmt.Sprintf("reduction_r%d_c%d_%s", rows, cols, prec),
		Kind:      Reduction,
		Precision: prec,
		Spatial:   []int{rows},
		Reduce:    []int{cols},
		Inputs: []Operand{
			{Name: "X", SpatialIdx: []int{0}, ReduceIdx: []int{0}, ContigSpatial: -1, ContigReduce: 0},
		},
		Output:        Operand{Name: "Y", SpatialIdx: []int{0}, ContigSpatial: 0, ContigReduce: -1},
		FlopsPerPoint: opsPerPoint,
		Meta:          map[string]int{"rows": rows, "cols": cols},
	}
	return t.finish()
}

// Tiled reports whether the task benefits from multi-level tiling (has a
// reduction the sketch rules build a cache stage for).
func (t *Task) Tiled() bool {
	switch t.Kind {
	case Elementwise:
		return false
	case Reduction:
		return false
	default:
		return len(t.Reduce) > 0
	}
}

// TensorCoreEligible reports whether the task can use wmma execution.
func (t *Task) TensorCoreEligible() bool {
	if t.Precision != FP16 || !t.Tiled() {
		return false
	}
	switch t.Kind {
	case MatMul, BatchMatMul, Conv2D:
		return true
	default:
		return false
	}
}
