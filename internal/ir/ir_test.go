package ir

import (
	"testing"
	"testing/quick"
)

func TestMatMulTask(t *testing.T) {
	m := NewMatMul(128, 256, 512, FP32, 1)
	if m.FLOPs() != 2*128*256*512+128*256 {
		t.Fatalf("FLOPs = %g", m.FLOPs())
	}
	if m.OutputPoints() != 128*256 || m.ReducePoints() != 512 {
		t.Fatal("points wrong")
	}
	wantBytes := float64((128*512 + 512*256 + 128*256) * 4)
	if m.FootprintBytes() != wantBytes {
		t.Fatalf("footprint = %g want %g", m.FootprintBytes(), wantBytes)
	}
	if !m.Tiled() {
		t.Fatal("matmul must be tiled")
	}
	if m.TensorCoreEligible() {
		t.Fatal("FP32 matmul is not TC eligible")
	}
	if !NewMatMul(128, 256, 512, FP16, 0).TensorCoreEligible() {
		t.Fatal("FP16 matmul should be TC eligible")
	}
}

func TestConv2DShapes(t *testing.T) {
	s := Conv2DShape{N: 1, H: 224, W: 224, CI: 3, CO: 64, KH: 7, KW: 7, Stride: 2, Pad: 3}
	oh, ow := s.Out()
	if oh != 112 || ow != 112 {
		t.Fatalf("out %dx%d want 112x112", oh, ow)
	}
	c := NewConv2D(s, FP32, 1)
	if c.Spatial[0] != 112 || c.Spatial[1] != 112 || c.Spatial[2] != 64 {
		t.Fatalf("spatial %v", c.Spatial)
	}
	if c.Reduce[0] != 3 || c.Reduce[1] != 49 {
		t.Fatalf("reduce %v", c.Reduce)
	}
	// FLOPs: 2 * outputs * ci * kh * kw.
	want := 2.0*112*112*64*3*49 + 112*112*64
	if c.FLOPs() != want {
		t.Fatalf("conv flops %g want %g", c.FLOPs(), want)
	}
}

func TestConvTransposeOut(t *testing.T) {
	s := Conv2DShape{N: 1, H: 4, W: 4, CI: 1024, CO: 512, KH: 4, KW: 4, Stride: 2, Pad: 1, Transposed: true}
	oh, ow := s.Out()
	if oh != 8 || ow != 8 {
		t.Fatalf("tconv out %dx%d want 8x8", oh, ow)
	}
	c := NewConv2D(s, FP32, 0)
	if c.Kind != ConvTranspose2D {
		t.Fatal("kind should be conv transpose")
	}
}

func TestDepthwiseReducesOnlyKernel(t *testing.T) {
	s := Conv2DShape{N: 1, H: 56, W: 56, CI: 96, CO: 96, KH: 3, KW: 3, Stride: 1, Pad: 1, Depthwise: true}
	c := NewConv2D(s, FP32, 0)
	if c.Kind != DepthwiseConv2D {
		t.Fatal("kind")
	}
	if c.ReducePoints() != 9 {
		t.Fatalf("depthwise reduce points %d want 9", c.ReducePoints())
	}
	// Data operand must be indexed by the channel spatial axis.
	if !c.Inputs[0].Touches(2) {
		t.Fatal("depthwise data must touch the channel axis")
	}
}

func TestIDStability(t *testing.T) {
	a := NewMatMul(64, 64, 64, FP32, 1)
	b := NewMatMul(64, 64, 64, FP32, 1)
	if a.ID != b.ID {
		t.Fatal("identical tasks must share IDs")
	}
	c := NewMatMul(64, 64, 64, FP32, 2)
	if a.ID == c.ID {
		t.Fatal("different fusion must change the ID")
	}
	d := NewMatMul(64, 64, 64, FP16, 1)
	if a.ID == d.ID {
		t.Fatal("precision must change the ID")
	}
}

func TestValidateCatchesBadOperands(t *testing.T) {
	task := NewMatMul(8, 8, 8, FP32, 0)
	task.Inputs[0].SpatialIdx = []int{5}
	if err := task.Validate(); err == nil {
		t.Fatal("out-of-range spatial index should fail")
	}
}

func TestElementwiseAndReduction(t *testing.T) {
	e := NewElementwise(4096, 2, FP32)
	if e.Tiled() {
		t.Fatal("elementwise must not be tiled")
	}
	if e.FLOPs() != 2*4096 {
		t.Fatalf("elementwise flops %g", e.FLOPs())
	}
	r := NewReduction(128, 512, FP32, 4)
	if r.Tiled() {
		t.Fatal("reduction sketch is flat")
	}
	if r.FLOPs() != 4*128*512 {
		t.Fatalf("reduction flops %g", r.FLOPs())
	}
}

// TestFLOPsPositiveProperty: every constructible task has positive work
// and footprint.
func TestFLOPsPositiveProperty(t *testing.T) {
	f := func(mi, ni, ki uint8, fused uint8) bool {
		m := int(mi)%512 + 1
		n := int(ni)%512 + 1
		k := int(ki)%512 + 1
		task := NewMatMul(m, n, k, FP32, int(fused%3))
		return task.FLOPs() > 0 && task.FootprintBytes() > 0 && task.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPrecision(t *testing.T) {
	if FP32.Bytes() != 4 || FP16.Bytes() != 2 {
		t.Fatal("precision bytes")
	}
	if FP32.String() != "fp32" || FP16.String() != "fp16" {
		t.Fatal("precision names")
	}
}

func TestBatchMatMulOperands(t *testing.T) {
	b := NewBatchMatMul(12, 128, 128, 64, FP32, 0)
	if len(b.Spatial) != 3 {
		t.Fatal("bmm needs batch spatial axis")
	}
	// Both inputs touch the batch axis.
	if !b.Inputs[0].Touches(0) || !b.Inputs[1].Touches(0) {
		t.Fatal("bmm inputs must touch batch")
	}
	if b.FLOPs() != 2*12*128*128*64 {
		t.Fatalf("bmm flops %g", b.FLOPs())
	}
}
