package measure

// Metric names the measurement layer exports when armed with a registry.
// The serving daemon's healthz builds its per-measurer view by reading
// these back from the same registry /metrics scrapes, so the two can
// never disagree.
const (
	// MetricFleetBatches counts batches dispatched per worker (label:
	// worker URL).
	MetricFleetBatches = "pruner_fleet_worker_batches_total"
	// MetricFleetSchedules counts schedules measured per worker.
	MetricFleetSchedules = "pruner_fleet_worker_schedules_total"
	// MetricFleetFailures counts failed dispatch attempts per worker.
	MetricFleetFailures = "pruner_fleet_worker_failures_total"
	// MetricFleetBatchSeconds is a histogram of successful batch
	// round-trip latency per worker.
	MetricFleetBatchSeconds = "pruner_fleet_batch_seconds"

	// MetricWorkerBatches counts batches a worker daemon executed.
	MetricWorkerBatches = "pruner_worker_batches_total"
	// MetricWorkerSchedules counts schedules a worker daemon executed.
	MetricWorkerSchedules = "pruner_worker_schedules_total"
	// MetricWorkerBusy gauges in-flight measure requests on a worker.
	MetricWorkerBusy = "pruner_worker_busy"
	// MetricWorkerMeasureSeconds is a histogram of per-batch execution
	// latency on a worker daemon.
	MetricWorkerMeasureSeconds = "pruner_worker_measure_seconds"
)
