// Package measure is the pluggable measurement subsystem: the stage of a
// tuning session that turns a proposed schedule batch into latencies. The
// paper's Table 1 shows on-device measurement is the single largest slice
// of tuning wall-clock (~44 of ~85 minutes on Orin), which makes it the
// stage worth distributing — so the tuner talks to a Measurer interface
// instead of a concrete simulator, and the engine can keep searching while
// a batch is out being measured (tuner.Options.PipelineDepth).
//
// Three implementations ship:
//
//   - Sim wraps the in-process *simulator.Simulator — the historical
//     behaviour, and the default.
//   - Fleet fans batches out over remote worker daemons via HTTP, in the
//     style of TVM's RPC runner, using the store's record codec as the
//     wire format (codec.go).
//   - Worker is the serving half of the fleet: the HTTP handler that
//     cmd/pruner-measure exposes and registers with pruner-serve.
//
// Determinism contract: a Measurer returns the *true* (noise-free) latency
// of every schedule; the session applies measurement noise itself, at
// commit time, from the task's own random stream (ApplyNoise). Splitting
// the noise out of the backend is what makes simulator-backed and
// fleet-backed sessions bitwise identical for the same seed: both paths
// feed the same deterministic latencies into the same noise draws.
package measure

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sync/atomic"

	"pruner/internal/ir"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
	"pruner/internal/simulator"
)

// Result is one measurement outcome. It aliases the simulator's result
// type so the in-process adapter is a zero-copy wrapper.
type Result = simulator.Result

// Info is a Measurer's capability and cost metadata, consulted by the
// tuning engine when it assembles the pipeline.
type Info struct {
	// Name identifies the backend in progress events and job results
	// ("simulator", "fleet").
	Name string
	// Concurrency is how many batches the backend can usefully execute at
	// once — a pipeline-depth hint (a fleet reports its worker count; the
	// in-process simulator reports 1, though pipelining still overlaps its
	// measurement with search on multi-core hosts).
	Concurrency int
	// Remote reports that batches leave the process: dispatch has wire
	// latency and cancellation depends on the remote honouring it.
	Remote bool
	// MeasureNoise is the multiplicative noise stddev the session applies
	// per valid result at commit time (see ApplyNoise).
	MeasureNoise float64
}

// Request is one measurement batch. Task and Batch are required; the rest
// are optional execution context used by in-process implementations.
type Request struct {
	// Device names the platform to measure on (device.ByName key). Remote
	// measurers need it; in-process ones are already bound to a device.
	Device string
	// Task is the subgraph the batch's schedules belong to.
	Task *ir.Task
	// Batch is the schedules to measure, one Result each, in order.
	Batch []*schedule.Schedule
	// Memo optionally carries the round's lowering cache so in-process
	// measurers reuse the search stages' lowerings.
	Memo *schedule.Memo
	// Pool optionally bounds an in-process measurer's fan-out.
	Pool *parallel.Pool
}

// Measurer executes measurement batches. Implementations must be safe for
// concurrent Measure calls (the pipelined engine keeps several batches in
// flight) and must return exactly one Result per Request.Batch entry, in
// order, with *noise-free* latencies — the session owns the noise draws.
// A cancelled ctx should abort promptly; returning ctx.Err() makes the
// session mark itself interrupted without committing the batch.
type Measurer interface {
	Info() Info
	Measure(ctx context.Context, req Request) ([]Result, error)
}

// ApplyNoise applies one multiplicative measurement-noise draw per valid
// result, in index order — the exact sequence the pre-interface simulator
// consumed, which keeps refactored sessions bitwise identical to
// historical ones. It delegates to the simulator's canonical
// implementation so the formula cannot drift between packages.
func ApplyNoise(rs []Result, rng *rand.Rand, scale float64) {
	simulator.ApplyNoise(rs, rng, scale)
}

// Sim is the in-process adapter: a Measurer over *simulator.Simulator.
// Zero behaviour change from the tuner calling the simulator directly,
// except that cancellation is now observed between schedules mid-batch.
type Sim struct {
	sim     *simulator.Simulator
	batches atomic.Int64
}

// NewSim wraps a simulator in the Measurer interface.
func NewSim(s *simulator.Simulator) *Sim { return &Sim{sim: s} }

// Info reports the adapter's metadata; the noise scale is the wrapped
// simulator's, so sessions keep their configured measurement noise.
func (m *Sim) Info() Info {
	return Info{Name: "simulator", Concurrency: 1, MeasureNoise: m.sim.MeasureNoise()}
}

// Measure evaluates the batch's true latencies on the request pool,
// resolving lowerings through the round memo. Cancellation is checked
// between schedules: a cancelled ctx abandons the remainder of the batch
// and returns ctx.Err().
func (m *Sim) Measure(ctx context.Context, req Request) ([]Result, error) {
	out := make([]Result, len(req.Batch))
	var canceled atomic.Bool
	req.Pool.ForEach(len(req.Batch), func(i int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		lat, err := m.sim.LatencyLowered(req.Memo.Lower(req.Task, req.Batch[i]))
		if err != nil {
			out[i] = Result{Latency: math.Inf(1), Err: err}
			return
		}
		out[i] = Result{Latency: lat, Valid: true}
	})
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	m.batches.Add(1)
	return out, nil
}

// Batches reports how many batches the adapter has executed (stats).
func (m *Sim) Batches() int64 { return m.batches.Load() }

// lengthError is the shared "backend returned the wrong shape" failure.
func lengthError(name string, got, want int) error {
	return fmt.Errorf("measure: %s returned %d results for a batch of %d", name, got, want)
}
