package measure

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"pruner/internal/costmodel"
	"pruner/internal/ir"
	"pruner/internal/schedule"
)

// recordJSON is the stable on-disk form of one measurement, in the spirit
// of TVM's tuning-record log lines: enough to re-apply the best schedules
// without re-searching. It doubles as the fleet's wire format: a request
// is a batch of record lines with the sentinel latency, a response the
// same lines with latencies filled in.
type recordJSON struct {
	TaskID    string                           `json:"task_id"`
	TaskName  string                           `json:"task_name"`
	Spatial   [][schedule.NumSpatialLevels]int `json:"spatial_tiles"`
	Reduce    [][schedule.NumReduceLevels]int  `json:"reduce_tiles"`
	Unroll    int                              `json:"unroll"`
	VectorLen int                              `json:"vector_len"`
	Shared    bool                             `json:"use_shared"`
	TC        bool                             `json:"tensorcore"`
	LatencyUS float64                          `json:"latency_us"` // -1 marks failed builds
	// LatencyBits is the exact float64 bit pattern of the latency in
	// seconds (hex), written alongside the human-readable microsecond
	// field. Readers prefer it when present: the us scaling loses up to an
	// ulp per round trip, which would break the bitwise determinism
	// contract for warm-started sessions and for fleet-measured batches.
	LatencyBits string `json:"latency_bits,omitempty"`
}

// WriteRecords streams measurement records as JSON lines (the store's
// segment format and the fleet's wire format).
func WriteRecords(w io.Writer, recs []costmodel.Record) error {
	enc := json.NewEncoder(w)
	for _, r := range recs {
		// Anything that is not a finite positive latency is a failed
		// build and maps to the -1 sentinel. NaN and ±Inf must never
		// reach the encoder: json.Marshal rejects them mid-stream,
		// leaving a log with some lines written and the rest lost.
		// Classify on the latency itself, not the scaled value: a huge
		// finite latency can overflow the microsecond field to +Inf
		// (found by FuzzCodecRoundTrip), in which case the display
		// field saturates and readers recover exactness from the bits.
		lat := r.Latency * 1e6
		bits := ""
		if math.IsNaN(r.Latency) || math.IsInf(r.Latency, 0) || r.Latency < 0 {
			lat = -1
		} else {
			bits = strconv.FormatUint(math.Float64bits(r.Latency), 16)
			if math.IsInf(lat, 0) {
				lat = math.MaxFloat64
			}
		}
		line := recordJSON{
			TaskID:      r.Task.ID,
			TaskName:    r.Task.Name,
			Spatial:     r.Sched.SpatialTiles,
			Reduce:      r.Sched.ReduceTiles,
			Unroll:      r.Sched.UnrollStep,
			VectorLen:   r.Sched.VectorLen,
			Shared:      r.Sched.UseShared,
			TC:          r.Sched.TensorCore,
			LatencyUS:   lat,
			LatencyBits: bits,
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// ReadRecords loads a JSON-lines tuning log. Tasks are resolved by ID from
// the provided set; records of unknown tasks are skipped (a log may cover
// more networks than the current session).
func ReadRecords(r io.Reader, tasks []*ir.Task) ([]costmodel.Record, error) {
	byID := make(map[string]*ir.Task, len(tasks))
	for _, t := range tasks {
		byID[t.ID] = t
	}
	var out []costmodel.Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var line recordJSON
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			return nil, fmt.Errorf("measure: record line %d: %w", lineNo, err)
		}
		task, ok := byID[line.TaskID]
		if !ok {
			continue
		}
		sch := &schedule.Schedule{
			SpatialTiles: line.Spatial,
			ReduceTiles:  line.Reduce,
			UnrollStep:   line.Unroll,
			VectorLen:    line.VectorLen,
			UseShared:    line.Shared,
			TensorCore:   line.TC,
		}
		if err := sch.Validate(task); err != nil {
			return nil, fmt.Errorf("measure: record line %d: %w", lineNo, err)
		}
		out = append(out, costmodel.Record{Task: task, Sched: sch, Latency: decodeLatency(line)})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// decodeLatency recovers the latency in seconds, preferring the exact bit
// pattern over the rounded microsecond field. A bits value that disagrees
// with the sentinel or is non-finite is ignored (hand-edited logs).
func decodeLatency(line recordJSON) float64 {
	if line.LatencyUS < 0 {
		return math.Inf(1)
	}
	if line.LatencyBits != "" {
		if b, err := strconv.ParseUint(line.LatencyBits, 16, 64); err == nil {
			if lat := math.Float64frombits(b); !math.IsNaN(lat) && !math.IsInf(lat, 0) && lat >= 0 {
				return lat
			}
		}
	}
	return line.LatencyUS / 1e6
}
