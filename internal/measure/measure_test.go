package measure

import (
	"bytes"
	"context"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
	"pruner/internal/simulator"
)

func testBatch(t *testing.T, n int) (*ir.Task, []*schedule.Schedule) {
	t.Helper()
	task := ir.NewMatMul(256, 256, 128, ir.FP32, 1)
	gen := schedule.NewGenerator(task)
	gen.MaxThreads = device.T4.MaxThreads
	gen.MaxSharedWords = device.T4.SharedPerBlock
	rng := rand.New(rand.NewSource(11))
	schs := make([]*schedule.Schedule, n)
	for i := range schs {
		schs[i] = gen.Random(rng)
	}
	return task, schs
}

// TestCodecExactRoundTrip pins the wire/store format's fidelity: finite
// latencies survive a write/read cycle bitwise (via latency_bits), and
// every non-finite or negative latency maps to the +Inf failed-build
// sentinel.
func TestCodecExactRoundTrip(t *testing.T) {
	task, schs := testBatch(t, 6)
	lats := []float64{
		1.2345678901234567e-3, // full float64 precision
		math.Nextafter(1e-6, 2e-6),
		7.777777777777777e-2,
		math.Inf(1), // failed build
		math.NaN(),  // poisoned measurement -> sentinel
		-1.5e-3,     // negative -> sentinel
	}
	recs := make([]costmodel.Record, len(lats))
	for i, lat := range lats {
		recs[i] = costmodel.Record{Task: task, Sched: schs[i], Latency: lat}
	}
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf, []*ir.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("round trip lost records: %d -> %d", len(recs), len(got))
	}
	for i, r := range got {
		want := lats[i]
		if math.IsNaN(want) || math.IsInf(want, 0) || want < 0 {
			if !math.IsInf(r.Latency, 1) {
				t.Fatalf("record %d: invalid latency %g decoded as %g, want +Inf", i, want, r.Latency)
			}
			continue
		}
		if math.Float64bits(r.Latency) != math.Float64bits(want) {
			t.Fatalf("record %d: latency not bitwise preserved: %x -> %x",
				i, math.Float64bits(want), math.Float64bits(r.Latency))
		}
		if r.Sched.Fingerprint() != schs[i].Fingerprint() {
			t.Fatalf("record %d: schedule changed across round trip", i)
		}
	}
}

// TestCodecLegacyLinesStillRead pins backward compatibility: record lines
// written before latency_bits existed (only latency_us) still decode.
func TestCodecLegacyLinesStillRead(t *testing.T) {
	task, schs := testBatch(t, 1)
	var buf bytes.Buffer
	if err := WriteRecords(&buf, []costmodel.Record{{Task: task, Sched: schs[0], Latency: 2.5e-3}}); err != nil {
		t.Fatal(err)
	}
	legacy := bytes.ReplaceAll(buf.Bytes(), []byte(`,"latency_bits":"`), []byte(`,"ignored":"`))
	got, err := ReadRecords(bytes.NewReader(legacy), []*ir.Task{task})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Latency != 2.5e-3 {
		t.Fatalf("legacy line decoded as %+v", got)
	}
}

// TestWorkerFleetMatchesSimulator is the wire-fidelity contract: a batch
// measured through a loopback worker (HTTP round trip included) returns
// exactly the simulator's deterministic true latencies, bit for bit.
func TestWorkerFleetMatchesSimulator(t *testing.T) {
	task, schs := testBatch(t, 24)
	worker := NewWorker(WorkerOptions{})
	ws := httptest.NewServer(worker.Handler())
	defer ws.Close()

	fleet := NewFleet([]string{ws.URL}, FleetOptions{})
	if info := fleet.Info(); info.Name != "fleet" || !info.Remote || info.Concurrency != 1 {
		t.Fatalf("fleet info: %+v", info)
	}
	results, err := fleet.Measure(context.Background(), Request{
		Device: device.T4.Name, Task: task, Batch: schs,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(schs) {
		t.Fatalf("got %d results for %d schedules", len(results), len(schs))
	}
	sim := simulator.New(device.T4)
	valid := 0
	for i, r := range results {
		lat, lerr := sim.Latency(task, schs[i])
		if lerr != nil {
			if r.Valid {
				t.Fatalf("schedule %d: local build fails (%v) but worker measured %g", i, lerr, r.Latency)
			}
			continue
		}
		valid++
		if !r.Valid {
			t.Fatalf("schedule %d: local build ok but worker reported failure: %v", i, r.Err)
		}
		if math.Float64bits(r.Latency) != math.Float64bits(lat) {
			t.Fatalf("schedule %d: fleet latency %x != simulator %x",
				i, math.Float64bits(r.Latency), math.Float64bits(lat))
		}
	}
	if valid == 0 {
		t.Fatal("no valid schedules in the batch; test is vacuous")
	}
	if st := worker.Status(); st.Batches != 1 || st.Schedules != int64(len(schs)) {
		t.Fatalf("worker status %+v", st)
	}
	stats := fleet.Stats()
	if len(stats) != 1 || stats[0].Batches != 1 || stats[0].Schedules != len(schs) || stats[0].Failures != 0 {
		t.Fatalf("fleet stats %+v", stats)
	}
}

// TestFleetFailover pins the retry path: a dead worker is skipped, the
// batch lands on the live one, and the failure is accounted.
func TestFleetFailover(t *testing.T) {
	task, schs := testBatch(t, 8)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"worker on fire"}`, http.StatusInternalServerError)
	}))
	defer dead.Close()
	live := httptest.NewServer(NewWorker(WorkerOptions{}).Handler())
	defer live.Close()

	fleet := NewFleet([]string{dead.URL, live.URL}, FleetOptions{})
	for i := 0; i < 2; i++ { // rotation must find the live worker from any start
		if _, err := fleet.Measure(context.Background(), Request{Device: "t4", Task: task, Batch: schs}); err != nil {
			t.Fatalf("dispatch %d: %v", i, err)
		}
	}
	var deadFailures, liveBatches int
	for _, st := range fleet.Stats() {
		switch st.URL {
		case dead.URL:
			deadFailures = st.Failures
		case live.URL:
			liveBatches = st.Batches
		}
	}
	if liveBatches != 2 {
		t.Fatalf("live worker served %d batches, want 2", liveBatches)
	}
	if deadFailures == 0 {
		t.Fatal("dead worker's failures were not accounted")
	}
}

// TestFleetAllWorkersFail pins the terminal error: when every worker
// refuses the batch the fleet reports it instead of fabricating results.
func TestFleetAllWorkersFail(t *testing.T) {
	task, schs := testBatch(t, 4)
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"nope"}`, http.StatusServiceUnavailable)
	}))
	defer dead.Close()
	fleet := NewFleet([]string{dead.URL}, FleetOptions{})
	if _, err := fleet.Measure(context.Background(), Request{Device: "t4", Task: task, Batch: schs}); err == nil {
		t.Fatal("expected an error when all workers fail")
	}
}

// TestSimAdapterCancellation pins mid-batch cancellation: a cancelled
// context aborts the adapter instead of measuring the whole batch.
func TestSimAdapterCancellation(t *testing.T) {
	task, schs := testBatch(t, 64)
	m := NewSim(simulator.New(device.T4))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := m.Measure(ctx, Request{Task: task, Batch: schs}); err != context.Canceled {
		t.Fatalf("cancelled adapter returned %v, want context.Canceled", err)
	}
	if m.Batches() != 0 {
		t.Fatal("cancelled batch was counted as executed")
	}
}

// TestSimAdapterMatchesMeasureMemoPool pins the adapter against the
// historical simulator entry point: true latencies identical, and after
// session-side ApplyNoise the full results match MeasureMemoPool bitwise
// (same noise stream, same draw order).
func TestSimAdapterMatchesMeasureMemoPool(t *testing.T) {
	task, schs := testBatch(t, 16)
	sim := simulator.New(device.T4)
	m := NewSim(sim)
	results, err := m.Measure(context.Background(), Request{Task: task, Batch: schs})
	if err != nil {
		t.Fatal(err)
	}
	ApplyNoise(results, rand.New(rand.NewSource(3)), m.Info().MeasureNoise)
	want := sim.MeasureMemoPool(task, schs, rand.New(rand.NewSource(3)), nil, nil)
	for i := range want {
		if results[i].Valid != want[i].Valid ||
			math.Float64bits(results[i].Latency) != math.Float64bits(want[i].Latency) {
			t.Fatalf("result %d diverges from MeasureMemoPool: %+v vs %+v", i, results[i], want[i])
		}
	}
}

// TestWorkerRejectsGarbage pins the worker's input validation.
func TestWorkerRejectsGarbage(t *testing.T) {
	ws := httptest.NewServer(NewWorker(WorkerOptions{}).Handler())
	defer ws.Close()
	for name, body := range map[string]string{
		"no header":      "",
		"bad json":       "{nope\n",
		"no task":        `{"device":"t4"}` + "\n",
		"unknown device": `{"device":"h900","task":null}` + "\n",
	} {
		resp, err := http.Post(ws.URL+"/measure", "application/x-ndjson", bytes.NewBufferString(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, resp.StatusCode)
		}
	}
}
