package measure

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"pruner/internal/ir"
	"pruner/internal/obs"
	"pruner/internal/simulator"
)

// ErrWorkerBuild marks a schedule the remote worker failed to build (the
// wire sentinel latency); it plays the role of the simulator's build
// errors in fleet-measured results.
var ErrWorkerBuild = fmt.Errorf("measure: worker reported failed build")

// FleetOptions configure a Fleet.
type FleetOptions struct {
	// Client issues the HTTP requests; nil builds one with a 2-minute
	// timeout (batches are small; workers answer in milliseconds).
	Client *http.Client
	// MeasureNoise is the noise scale the session applies to fleet
	// results; 0 selects the simulator default, which is what makes a
	// default fleet bitwise-interchangeable with the default in-process
	// simulator.
	MeasureNoise float64
	// Metrics, when non-nil, receives live per-worker dispatch counters
	// and batch-latency histograms (pruner_fleet_* — see metrics.go).
	// Hand a fleet the daemon's long-lived registry and per-worker
	// totals accumulate across jobs, scrapeable mid-session.
	Metrics *obs.Registry
}

// WorkerStats is one worker's dispatch accounting.
type WorkerStats struct {
	URL       string `json:"url"`
	Batches   int    `json:"batches"`
	Schedules int    `json:"schedules"`
	Failures  int    `json:"failures"`
}

// Fleet fans measurement batches out over remote worker daemons
// (cmd/pruner-measure) via HTTP — the TVM-RPC-runner shape. Batches are
// assigned round-robin; a failing worker is retried on the next one, so a
// batch only errors when every worker refused it. Safe for concurrent
// Measure calls: the pipelined engine keeps up to its depth in flight.
type Fleet struct {
	workers []string
	client  *http.Client
	noise   float64
	next    atomic.Int64

	mu    sync.Mutex
	stats map[string]*WorkerStats

	// Registry-backed mirrors of the dispatch accounting (nil without
	// FleetOptions.Metrics; every use is then a no-op).
	mBatches   *obs.CounterVec
	mSchedules *obs.CounterVec
	mFailures  *obs.CounterVec
	mLatency   *obs.HistogramVec
}

// NewFleet builds a fleet over the given worker base URLs
// ("http://host:port", no trailing slash).
func NewFleet(urls []string, opts FleetOptions) *Fleet {
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 2 * time.Minute}
	}
	if opts.MeasureNoise == 0 {
		opts.MeasureNoise = simulator.DefaultMeasureNoise
	}
	f := &Fleet{workers: append([]string(nil), urls...), client: opts.Client, noise: opts.MeasureNoise, stats: map[string]*WorkerStats{}}
	reg := opts.Metrics
	f.mBatches = reg.CounterVec(MetricFleetBatches,
		"Measurement batches dispatched, by worker URL.", "worker")
	f.mSchedules = reg.CounterVec(MetricFleetSchedules,
		"Schedules measured, by worker URL.", "worker")
	f.mFailures = reg.CounterVec(MetricFleetFailures,
		"Failed dispatch attempts, by worker URL.", "worker")
	f.mLatency = reg.HistogramVec(MetricFleetBatchSeconds,
		"Successful batch round-trip latency, by worker URL.", nil, "worker")
	for _, u := range f.workers {
		f.stats[u] = &WorkerStats{URL: u}
		// Pre-touch the counters so every worker appears in scrapes from
		// the first one, failures included, at zero.
		f.mBatches.With(u).Add(0)
		f.mSchedules.With(u).Add(0)
		f.mFailures.With(u).Add(0)
	}
	return f
}

// Info reports the fleet's metadata; Concurrency is its worker count, the
// natural pipeline depth.
func (f *Fleet) Info() Info {
	return Info{Name: "fleet", Concurrency: len(f.workers), Remote: true, MeasureNoise: f.noise}
}

// Workers returns the fleet's worker URLs.
func (f *Fleet) Workers() []string { return append([]string(nil), f.workers...) }

// Stats snapshots per-worker dispatch counters, sorted by URL.
func (f *Fleet) Stats() []WorkerStats {
	f.mu.Lock()
	out := make([]WorkerStats, 0, len(f.stats))
	for _, s := range f.stats {
		out = append(out, *s)
	}
	f.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

func (f *Fleet) note(url string, schedules int, failed bool) {
	f.mu.Lock()
	s := f.stats[url]
	if s == nil {
		s = &WorkerStats{URL: url}
		f.stats[url] = s
	}
	if failed {
		s.Failures++
	} else {
		s.Batches++
		s.Schedules += schedules
	}
	f.mu.Unlock()
	if failed {
		f.mFailures.With(url).Inc()
	} else {
		f.mBatches.With(url).Inc()
		f.mSchedules.With(url).Add(float64(schedules))
	}
}

// Measure dispatches the batch to one worker, failing over across the
// fleet. The returned latencies are noise-free; the session applies noise
// at commit like any other backend.
func (f *Fleet) Measure(ctx context.Context, req Request) ([]Result, error) {
	if len(f.workers) == 0 {
		return nil, fmt.Errorf("measure: fleet has no workers")
	}
	body, err := encodeRequest(req)
	if err != nil {
		return nil, fmt.Errorf("measure: encoding batch: %w", err)
	}
	start := int(f.next.Add(1) - 1)
	var lastErr error
	for attempt := 0; attempt < len(f.workers); attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		url := f.workers[(start+attempt)%len(f.workers)]
		postStart := time.Now()
		results, err := f.post(ctx, url, body, req)
		if err == nil {
			f.note(url, len(req.Batch), false)
			f.mLatency.With(url).Observe(time.Since(postStart).Seconds())
			return results, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		f.note(url, 0, true)
		lastErr = fmt.Errorf("%s: %w", url, err)
	}
	return nil, fmt.Errorf("measure: all %d fleet workers failed: %w", len(f.workers), lastErr)
}

// post executes one batch on one worker and decodes the response through
// the record codec, in request order.
func (f *Fleet) post(ctx context.Context, url string, body []byte, req Request) ([]Result, error) {
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, url+"/measure", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/x-ndjson")
	resp, err := f.client.Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4<<10))
		var e struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(msg, &e) == nil && e.Error != "" {
			return nil, fmt.Errorf("worker: %s", e.Error)
		}
		return nil, fmt.Errorf("worker: HTTP %d", resp.StatusCode)
	}
	recs, err := ReadRecords(resp.Body, []*ir.Task{req.Task})
	if err != nil {
		return nil, err
	}
	if len(recs) != len(req.Batch) {
		return nil, lengthError("worker "+url, len(recs), len(req.Batch))
	}
	results := make([]Result, len(recs))
	for i, r := range recs {
		if math.IsInf(r.Latency, 1) || math.IsNaN(r.Latency) || r.Latency <= 0 {
			results[i] = Result{Latency: math.Inf(1), Err: ErrWorkerBuild}
			continue
		}
		results[i] = Result{Latency: r.Latency, Valid: true}
	}
	return results, nil
}
