package measure

// TestRecordSchemaMatchesWireLock is the live half of the wire-contract
// lock: the statically-extracted schema in wire.lock (maintained by
// pruner-vet's wireshape analyzer, regenerated via `make wire-lock`)
// must agree with what encoding/json actually sees at runtime when it
// reflects over recordJSON — field order, wire names, omitempty, and
// type strings. If the two ever disagree, either the analyzer's
// extraction or the checked-in lock is wrong, and stored records are at
// risk either way.

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"pruner/internal/lint"
)

func TestRecordSchemaMatchesWireLock(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "wire.lock"))
	if err != nil {
		t.Fatalf("reading wire.lock (regenerate with make wire-lock): %v", err)
	}
	schema, err := lint.ParseWireLock(data)
	if err != nil {
		t.Fatalf("wire.lock does not parse: %v", err)
	}
	locked := schema.Type("pruner/internal/measure.recordJSON")
	if locked == nil {
		t.Fatal("wire.lock has no entry for pruner/internal/measure.recordJSON")
	}

	rt := reflect.TypeOf(recordJSON{})
	var live []lint.WireField
	for i := 0; i < rt.NumField(); i++ {
		f := rt.Field(i)
		if !f.IsExported() {
			continue
		}
		name, opts, _ := strings.Cut(f.Tag.Get("json"), ",")
		if name == "-" && opts == "" {
			continue
		}
		if name == "" {
			name = f.Name
		}
		live = append(live, lint.WireField{
			Name:      f.Name,
			Wire:      name,
			OmitEmpty: strings.Contains(","+opts+",", ",omitempty,"),
			Type:      f.Type.String(),
		})
	}

	if len(live) != len(locked.Fields) {
		t.Fatalf("field count drift: runtime sees %d wire fields, wire.lock records %d", len(live), len(locked.Fields))
	}
	for i, lf := range locked.Fields {
		rf := live[i]
		if rf.Name != lf.Name || rf.Wire != lf.Wire || rf.OmitEmpty != lf.OmitEmpty {
			t.Errorf("field %d drift: runtime %s (wire %q, omitempty=%v) vs lock %s (wire %q, omitempty=%v)",
				i, rf.Name, rf.Wire, rf.OmitEmpty, lf.Name, lf.Wire, lf.OmitEmpty)
		}
		// The lock qualifies named types with full package paths where
		// reflect uses the short package name; recordJSON is all builtins
		// and arrays of builtins, so the strings must agree exactly.
		if rf.Type != lf.Type {
			t.Errorf("field %s type drift: runtime %q vs lock %q", lf.Name, rf.Type, lf.Type)
		}
	}
}
