package measure

// Fuzz targets for the record codec — the JSONL format that is both the
// store's segment format and the fleet's wire format. Two properties
// carry the determinism contract across process boundaries: a finite
// latency must survive a write/read cycle bitwise (latency_bits), and a
// reader fed arbitrary or torn bytes must fail cleanly, never panic,
// and parse to a fixed point when it does succeed.
// `make fuzz-smoke` runs each target briefly; `go test` replays the
// seed corpus as ordinary tests.

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
)

// fuzzBatch mirrors testBatch without *testing.T, for use in fuzz
// setup: one task and n valid schedules, deterministically generated.
func fuzzBatch(n int) (*ir.Task, []*schedule.Schedule) {
	task := ir.NewMatMul(256, 256, 128, ir.FP32, 1)
	gen := schedule.NewGenerator(task)
	gen.MaxThreads = device.T4.MaxThreads
	gen.MaxSharedWords = device.T4.SharedPerBlock
	rng := rand.New(rand.NewSource(11))
	schs := make([]*schedule.Schedule, n)
	for i := range schs {
		schs[i] = gen.Random(rng)
	}
	return task, schs
}

// FuzzCodecRoundTrip feeds arbitrary float64 bit patterns through
// WriteRecords/ReadRecords: every finite non-negative latency must come
// back bitwise identical (the latency_bits field's whole purpose), and
// everything else must collapse to the +Inf failed-build sentinel.
func FuzzCodecRoundTrip(f *testing.F) {
	task, schs := fuzzBatch(4)
	f.Add(uint64(0), uint8(0))
	f.Add(math.Float64bits(1.2345678901234567e-3), uint8(1))
	f.Add(math.Float64bits(math.Nextafter(1e-6, 2e-6)), uint8(2))
	f.Add(math.Float64bits(math.Inf(1)), uint8(3))
	f.Add(math.Float64bits(math.NaN()), uint8(0))
	f.Add(math.Float64bits(-1.5e-3), uint8(1))
	f.Add(math.Float64bits(math.SmallestNonzeroFloat64), uint8(2))
	f.Add(math.Float64bits(math.MaxFloat64), uint8(3))
	f.Fuzz(func(t *testing.T, latBits uint64, pick uint8) {
		lat := math.Float64frombits(latBits)
		rec := costmodel.Record{Task: task, Sched: schs[int(pick)%len(schs)], Latency: lat}
		var buf bytes.Buffer
		if err := WriteRecords(&buf, []costmodel.Record{rec}); err != nil {
			t.Fatalf("WriteRecords(%x): %v", latBits, err)
		}
		got, err := ReadRecords(bytes.NewReader(buf.Bytes()), []*ir.Task{task})
		if err != nil {
			t.Fatalf("ReadRecords(%x): %v", latBits, err)
		}
		if len(got) != 1 {
			t.Fatalf("round trip of one record returned %d", len(got))
		}
		if math.IsNaN(lat) || math.IsInf(lat, 0) || lat < 0 {
			if !math.IsInf(got[0].Latency, 1) {
				t.Fatalf("invalid latency %g decoded as %g, want +Inf sentinel", lat, got[0].Latency)
			}
			return
		}
		if math.Float64bits(got[0].Latency) != latBits {
			t.Fatalf("latency not bitwise preserved: %x -> %x", latBits, math.Float64bits(got[0].Latency))
		}
		if got[0].Sched.Fingerprint() != rec.Sched.Fingerprint() {
			t.Fatalf("schedule changed across round trip")
		}
	})
}

// FuzzReadRecords throws arbitrary bytes at the reader. It must never
// panic; blank lines are skipped; and when a parse succeeds, encoding
// what was read and reading it again must be a fixed point (same
// count, bitwise-same latencies, same schedules) — the property that
// lets fleet responses be re-logged verbatim.
func FuzzReadRecords(f *testing.F) {
	task, schs := fuzzBatch(3)
	var valid bytes.Buffer
	WriteRecords(&valid, []costmodel.Record{
		{Task: task, Sched: schs[0], Latency: 1.25e-3},
		{Task: task, Sched: schs[1], Latency: math.Inf(1)},
		{Task: task, Sched: schs[2], Latency: 4.0e-5},
	})
	lines := valid.String()
	f.Add(lines)
	f.Add("")
	f.Add("\n\n\n")
	f.Add("{}\n")
	f.Add(`{"task_id":"nope"}` + "\n")
	f.Add(lines[:len(lines)/2]) // torn mid-line: must error, not panic
	f.Add(strings.ReplaceAll(lines, "latency_bits", "latency_bitz"))
	f.Add(`{"task_id":"` + task.ID + `","latency_us":1.5,"latency_bits":"zzzz"}` + "\n")
	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadRecords(strings.NewReader(data), []*ir.Task{task})
		if err != nil {
			return // rejected cleanly
		}
		var buf bytes.Buffer
		if err := WriteRecords(&buf, got); err != nil {
			t.Fatalf("re-encoding parsed records: %v", err)
		}
		again, err := ReadRecords(bytes.NewReader(buf.Bytes()), []*ir.Task{task})
		if err != nil {
			t.Fatalf("re-reading re-encoded records: %v", err)
		}
		if len(again) != len(got) {
			t.Fatalf("parse -> encode -> parse changed count: %d -> %d", len(got), len(again))
		}
		for i := range got {
			if math.Float64bits(again[i].Latency) != math.Float64bits(got[i].Latency) {
				t.Fatalf("record %d: latency drifted across re-encode: %x -> %x",
					i, math.Float64bits(got[i].Latency), math.Float64bits(again[i].Latency))
			}
			if again[i].Sched.Fingerprint() != got[i].Sched.Fingerprint() {
				t.Fatalf("record %d: schedule drifted across re-encode", i)
			}
		}
	})
}
