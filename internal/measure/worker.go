package measure

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/obs"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
	"pruner/internal/simulator"
)

// wireHeader is the first line of a fleet measurement request: the device
// to measure on and the full task definition (the worker holds no session
// state, so every batch is self-describing — TVM-RPC-runner style).
type wireHeader struct {
	Device string   `json:"device"`
	Task   *ir.Task `json:"task"`
}

// WorkerOptions configure a measurement worker.
type WorkerOptions struct {
	// Pool bounds the worker's measurement fan-out; nil sizes one to the
	// machine.
	Pool *parallel.Pool
	// SimConfig overrides the hidden-model settings of the worker's
	// simulators (tests); the zero value selects the calibrated defaults,
	// matching in-process sessions.
	SimConfig simulator.Config
	// Metrics, when non-nil, exposes the worker's counters as
	// func-backed metrics (pruner_worker_* — see metrics.go) and mounts
	// GET /metrics on the worker's handler.
	Metrics *obs.Registry
}

// Worker executes measurement batches on behalf of remote tuning
// sessions: the serving half of a Fleet, exposed over HTTP by
// cmd/pruner-measure. It returns true (noise-free) latencies — the
// session applies measurement noise at commit, which is what keeps
// fleet-measured sessions bitwise identical to simulator-backed ones.
type Worker struct {
	opts WorkerOptions

	mu   sync.Mutex
	sims map[string]*simulator.Simulator

	batches   atomic.Int64
	schedules atomic.Int64
	busy      atomic.Int64

	measureSeconds *obs.Histogram // nil without WorkerOptions.Metrics
}

// NewWorker builds a worker.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Pool == nil {
		opts.Pool = parallel.New(0)
	}
	w := &Worker{opts: opts, sims: map[string]*simulator.Simulator{}}
	if reg := opts.Metrics; reg != nil {
		// Func-backed counters sample the same atomics /healthz reports,
		// so a scrape and a health check can never disagree.
		reg.CounterFunc(MetricWorkerBatches, "Measurement batches executed.",
			func() float64 { return float64(w.batches.Load()) })
		reg.CounterFunc(MetricWorkerSchedules, "Schedules executed.",
			func() float64 { return float64(w.schedules.Load()) })
		reg.GaugeFunc(MetricWorkerBusy, "In-flight measure requests.",
			func() float64 { return float64(w.busy.Load()) })
		w.measureSeconds = reg.Histogram(MetricWorkerMeasureSeconds,
			"Per-batch execution latency.", nil)
	}
	return w
}

// sim returns the worker's simulator for a device, building it on first
// use. One worker serves any preset device: the fleet routes by batch,
// not by worker identity.
func (w *Worker) sim(name string) (*simulator.Simulator, error) {
	dev, err := device.ByName(name)
	if err != nil {
		return nil, err
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.sims[dev.Name]
	if s == nil {
		s = simulator.NewWithConfig(dev, w.opts.SimConfig)
		w.sims[dev.Name] = s
	}
	return s, nil
}

// WorkerStatus is the worker's /healthz body.
type WorkerStatus struct {
	Status      string `json:"status"`
	Batches     int64  `json:"batches"`
	Schedules   int64  `json:"schedules"`
	Busy        int64  `json:"busy"`
	Parallelism int    `json:"parallelism"`
}

// Status snapshots the worker's counters.
func (w *Worker) Status() WorkerStatus {
	return WorkerStatus{
		Status:      "ok",
		Batches:     w.batches.Load(),
		Schedules:   w.schedules.Load(),
		Busy:        w.busy.Load(),
		Parallelism: w.opts.Pool.Workers(),
	}
}

// Handler returns the worker's HTTP surface:
//
//	POST /measure  execute one batch (wire format: header line + record lines)
//	GET  /healthz  liveness + counters
func (w *Worker) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /measure", w.handleMeasure)
	mux.HandleFunc("GET /healthz", func(rw http.ResponseWriter, r *http.Request) {
		rw.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(rw).Encode(w.Status()) // response write failure is the client's problem
	})
	if reg := w.opts.Metrics; reg != nil {
		mux.HandleFunc("GET /metrics", func(rw http.ResponseWriter, r *http.Request) {
			rw.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = reg.WriteText(rw) // scrape write failure is the scraper's problem
		})
	}
	return mux
}

func (w *Worker) handleMeasure(rw http.ResponseWriter, r *http.Request) {
	w.busy.Add(1)
	defer w.busy.Add(-1)

	br := bufio.NewReader(r.Body)
	head, err := br.ReadBytes('\n')
	if err != nil && len(head) == 0 {
		workerError(rw, http.StatusBadRequest, "reading request header: %v", err)
		return
	}
	var hdr wireHeader
	if err := json.Unmarshal(head, &hdr); err != nil {
		workerError(rw, http.StatusBadRequest, "decoding request header: %v", err)
		return
	}
	if hdr.Task == nil {
		workerError(rw, http.StatusBadRequest, "request header carries no task")
		return
	}
	if err := hdr.Task.Validate(); err != nil {
		workerError(rw, http.StatusBadRequest, "invalid task: %v", err)
		return
	}
	sim, err := w.sim(hdr.Device)
	if err != nil {
		workerError(rw, http.StatusBadRequest, "%v", err)
		return
	}
	recs, err := ReadRecords(br, []*ir.Task{hdr.Task})
	if err != nil {
		workerError(rw, http.StatusBadRequest, "decoding batch: %v", err)
		return
	}
	if len(recs) == 0 {
		workerError(rw, http.StatusBadRequest, "empty batch")
		return
	}

	// Evaluate true latencies on the worker pool; one round memo shares
	// lowerings across the batch. Cancellation (the session aborting the
	// round) is observed between schedules.
	ctx := r.Context()
	memo := schedule.NewMemo()
	execStart := time.Now()
	var canceled atomic.Bool
	w.opts.Pool.ForEach(len(recs), func(i int) {
		if canceled.Load() {
			return
		}
		if ctx.Err() != nil {
			canceled.Store(true)
			return
		}
		lat, err := sim.LatencyLowered(memo.Lower(hdr.Task, recs[i].Sched))
		if err != nil {
			recs[i].Latency = math.Inf(1)
			return
		}
		recs[i].Latency = lat
	})
	if ctx.Err() != nil {
		return // client gone; nothing useful to write
	}
	w.batches.Add(1)
	w.schedules.Add(int64(len(recs)))
	w.measureSeconds.Observe(time.Since(execStart).Seconds())

	rw.Header().Set("Content-Type", "application/x-ndjson")
	if err := WriteRecords(rw, recs); err != nil {
		// Headers are out; all we can do is drop the connection so the
		// fleet sees a short read instead of a silently truncated batch.
		if hj, ok := rw.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				_ = conn.Close() // dropping the connection IS the error signal here
			}
		}
	}
}

func workerError(rw http.ResponseWriter, code int, format string, args ...any) {
	rw.Header().Set("Content-Type", "application/json")
	rw.WriteHeader(code)
	_ = json.NewEncoder(rw).Encode(map[string]string{"error": fmt.Sprintf(format, args...)}) // best-effort error body
}

// encodeRequest serialises a Request into the wire form the worker reads.
// Latencies are not known yet, so every line carries the -1 sentinel.
func encodeRequest(req Request) ([]byte, error) {
	var buf bytes.Buffer
	hdr, err := json.Marshal(wireHeader{Device: req.Device, Task: req.Task})
	if err != nil {
		return nil, err
	}
	buf.Write(hdr)
	buf.WriteByte('\n')
	recs := make([]costmodel.Record, len(req.Batch))
	for i, s := range req.Batch {
		recs[i] = costmodel.Record{Task: req.Task, Sched: s, Latency: math.Inf(1)}
	}
	if err := WriteRecords(&buf, recs); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
