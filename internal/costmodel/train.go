package costmodel

import (
	"sync"

	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/schedule"
)

// The data-parallel training engine's per-model state. rankFit (model.go)
// shards each epoch's task groups across the session pool; the structures
// here supply what the workers need without sharing mutable state: an
// architecture replica per concurrent group (weights aliased to the live
// model, so replicas always read current parameters) and one gradient
// slot per macro-batch position, reduced serially in group order after
// the fan-out. DESIGN.md §8 describes the full pipeline.

// replica is one worker-side copy of a model's forward program: its
// parameters alias the live weights (nn.AliasParams) but bind private
// gradient slots during backward, so concurrent group gradients never
// touch shared memory.
type replica struct {
	forward forwardFn
	params  []*nn.Tensor
}

// trainer caches a model's replicas and gradient slots across Fit calls
// (model construction is not free, and online tuning fits every round).
// Fit calls on one model are serial — the tuner trains between rounds —
// but the replica pool is still a channel because one fit's workers
// check replicas out concurrently.
type trainer struct {
	params []*nn.Tensor // live parameters: the reduction target
	build  func() *replica
	free   chan *replica
	slots  []nn.GradSet
}

func newTrainer(params []*nn.Tensor, build func() *replica) *trainer {
	return &trainer{params: params, build: build, free: make(chan *replica, 64)}
}

// ensureSlots grows the per-macro-batch-position gradient buffers to n.
// Called on the serial path before each fit's fan-out.
func (tr *trainer) ensureSlots(n int) {
	for len(tr.slots) < n {
		tr.slots = append(tr.slots, nn.NewGradSet(tr.params))
	}
}

// slot returns macro-batch position j's gradient buffers.
func (tr *trainer) slot(j int) nn.GradSet { return tr.slots[j] }

// checkout hands the caller a free replica, building one when all are in
// use. Which replica serves which group cannot affect results: replicas
// are pure functions of the shared live weights.
func (tr *trainer) checkout() *replica {
	select {
	case r := <-tr.free:
		return r
	default:
		return tr.build()
	}
}

// checkin returns a replica to the pool (dropping it if the pool is
// somehow full — correctness never depends on reuse).
func (tr *trainer) checkin(r *replica) {
	select {
	case tr.free <- r:
	default:
	}
}

// FitCache memoizes the lowering — and, through Lowered's feature cache,
// the featurization — of training records across epochs and Fit calls.
// The tuner creates one per session and threads it through
// FitOptions.Cache: measurement records are append-only and lowering is
// a pure function, so caching cannot change a fitted value, only how
// often the feature pipeline runs. Safe for concurrent use by the
// trainer's workers. A nil *FitCache degrades to uncached lowering, so
// call sites never special-case "no cache".
type FitCache struct {
	mu    sync.Mutex
	memos map[*ir.Task]*schedule.Memo
}

// NewFitCache returns an empty session-scoped training cache.
func NewFitCache() *FitCache {
	return &FitCache{memos: make(map[*ir.Task]*schedule.Memo)}
}

// memo returns the task's lowering memo, creating it on first sight.
// Memos key by task *pointer*, matching schedule.Memo's own identity
// check: two task instances sharing an ID (records merged from separate
// network builds) get separate memos instead of tripping Memo's
// shared-across-tasks panic. The tuner rebinds records to its session
// task instances, so within a session each task still gets one memo.
// A nil cache returns a nil memo, which lowers without caching.
func (c *FitCache) memo(t *ir.Task) *schedule.Memo {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.memos[t]
	if m == nil {
		m = schedule.NewMemo()
		c.memos[t] = m
	}
	return m
}

// Len reports the number of cached lowered programs across all tasks.
func (c *FitCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.memos {
		n += m.Len()
	}
	return n
}

// Lowerings reports how many programs were actually lowered through the
// cache — the test hook pinning "once per record per session".
func (c *FitCache) Lowerings() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, m := range c.memos {
		n += m.Misses()
	}
	return n
}
