package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"pruner/internal/analyzer"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
	"pruner/internal/simulator"
)

func TestRelevances(t *testing.T) {
	rel := Relevances([]float64{2e-3, 1e-3, math.Inf(1), 4e-3})
	if rel[1] != 1 {
		t.Fatalf("best should have relevance 1, got %g", rel[1])
	}
	if rel[0] != 0.5 || rel[3] != 0.25 {
		t.Fatalf("relevances wrong: %v", rel)
	}
	if rel[2] != 0 {
		t.Fatalf("failed measurement should have relevance 0, got %g", rel[2])
	}
	if got := Relevances([]float64{math.Inf(1)}); got[0] != 0 {
		t.Fatal("all-failed group should be all-zero")
	}
}

func TestGroupByTask(t *testing.T) {
	a := ir.NewMatMul(64, 64, 64, ir.FP32, 0)
	b := ir.NewMatMul(128, 64, 64, ir.FP32, 0)
	g := schedule.NewGenerator(a)
	rng := rand.New(rand.NewSource(1))
	recs := []Record{
		{Task: a, Sched: g.Random(rng), Latency: 1},
		{Task: b, Sched: g.Random(rng), Latency: 2},
		{Task: a, Sched: g.Random(rng), Latency: 3},
	}
	groups := groupByTask(recs)
	if len(groups) != 2 {
		t.Fatalf("%d groups, want 2", len(groups))
	}
	if len(groups[0].recs) != 2 || groups[0].task != a {
		t.Fatal("grouping broken")
	}
}

// trainingRecords builds a measured record set on one task.
func trainingRecords(t *testing.T, task *ir.Task, n int, seed int64) []Record {
	t.Helper()
	g := schedule.NewGenerator(task)
	g.MaxSharedWords = device.T4.SharedPerBlock
	rng := rand.New(rand.NewSource(seed))
	sim := simulator.New(device.T4)
	schs := g.InitPopulation(rng, n)
	var recs []Record
	for i, r := range sim.Measure(task, schs, rng) {
		if r.Valid {
			recs = append(recs, Record{Task: task, Sched: schs[i], Latency: r.Latency})
		}
	}
	return recs
}

// TestModelsLearnToRank: after fitting, each learned model must rank a
// held-out sample of the same task far better than chance.
func TestModelsLearnToRank(t *testing.T) {
	if testing.Short() {
		t.Skip("training")
	}
	task := ir.NewMatMul(256, 512, 256, ir.FP32, 1)
	train := trainingRecords(t, task, 200, 2)
	test := trainingRecords(t, task, 100, 3)

	for _, m := range []Model{NewTenSetMLP(5), NewPaCM(6), NewTLP(7)} {
		rep := m.Fit(train, FitOptions{Epochs: 12, Seed: 1})
		if rep.Samples == 0 || rep.SampleVisits == 0 {
			t.Fatalf("%s: empty fit report", m.Name())
		}
		schs := make([]*schedule.Schedule, len(test))
		lats := make([]float64, len(test))
		for i, r := range test {
			schs[i] = r.Sched
			lats[i] = r.Latency
		}
		scores := m.Predict(task, schs)
		var agree, total float64
		for i := range test {
			for j := i + 1; j < len(test); j++ {
				if lats[i] == lats[j] {
					continue
				}
				total++
				if (lats[i] < lats[j]) == (scores[i] > scores[j]) {
					agree++
				}
			}
		}
		acc := agree / total
		t.Logf("%s pairwise ranking accuracy %.3f", m.Name(), acc)
		if acc < 0.75 {
			t.Errorf("%s ranking accuracy %.3f < 0.75", m.Name(), acc)
		}
	}
}

func TestPredictParallelMatchesSerial(t *testing.T) {
	task := ir.NewMatMul(128, 128, 128, ir.FP32, 0)
	g := schedule.NewGenerator(task)
	rng := rand.New(rand.NewSource(8))
	schs := g.InitPopulation(rng, 40)
	m := NewPaCM(9)
	a := m.Predict(task, schs) // default (machine-wide) pool
	m.SetPool(parallel.New(1))
	b := m.Predict(task, schs) // forced-serial session pool
	// Cross-check both against the batched training-mode forward.
	lws := make([]*schedule.Lowered, len(schs))
	for i, s := range schs {
		lws[i] = schedule.Lower(task, s)
	}
	batched := m.forward(lws)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("parallel vs serial predictions differ at %d: %g vs %g", i, a[i], b[i])
		}
		if math.Abs(a[i]-batched.At(i, 0)) > 1e-12 {
			t.Fatalf("pooled vs batched forward differ at %d: %g vs %g", i, a[i], batched.At(i, 0))
		}
	}
}

func TestSAModelRanksByAnalyzer(t *testing.T) {
	task := ir.NewMatMul(256, 256, 256, ir.FP32, 0)
	g := schedule.NewGenerator(task)
	rng := rand.New(rand.NewSource(10))
	schs := g.InitPopulation(rng, 20)
	a := analyzer.New(device.A100)
	m := NewSA(a)
	scores := m.Predict(task, schs)
	for i, s := range schs {
		want := a.Score(schedule.Lower(task, s))
		if scores[i] != want {
			t.Fatalf("SA score %g want %g", scores[i], want)
		}
	}
	if m.Params() != nil {
		t.Fatal("SA has no trainable params")
	}
	if c := m.Costs(); c.FeatureX != 0 || c.InferX <= 0 {
		t.Fatalf("SA costs wrong: %+v", c)
	}
}

func TestRandomModelIsSeeded(t *testing.T) {
	task := ir.NewMatMul(64, 64, 64, ir.FP32, 0)
	g := schedule.NewGenerator(task)
	rng := rand.New(rand.NewSource(11))
	schs := g.InitPopulation(rng, 10)
	a := NewRandom(1).Predict(task, schs)
	b := NewRandom(1).Predict(task, schs)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("random model not reproducible for equal seeds")
		}
	}
}

func TestPaCMAblationNamesAndBranches(t *testing.T) {
	if NewPaCM(1).Name() != "pacm" {
		t.Fatal("full PaCM name")
	}
	if NewPaCMAblated(1, true, false).Name() != "pacm-no-tdf" {
		t.Fatal("no-TDF name")
	}
	if NewPaCMAblated(1, false, true).Name() != "pacm-no-sf" {
		t.Fatal("no-SF name")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("branchless PaCM must panic")
		}
	}()
	NewPaCMAblated(1, false, false)
}

// TestAblatedParamCount: ablated PaCMs expose the same parameter count as
// the full model (all branches always allocated); only the head input
// width differs.
func TestAblatedParamCount(t *testing.T) {
	full := NewPaCM(3).Params()
	abl := NewPaCMAblated(4, true, false).Params()
	if len(full) != len(abl) {
		t.Fatalf("param counts differ: %d vs %d", len(full), len(abl))
	}
}
