package costmodel

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
)

// learnedModel is the slice of Model the engine tests need: Predict plus
// access to the per-candidate reference forward.
type learnedModel interface {
	Model
	PoolUser
	MemoUser
}

func engineModels() map[string]struct {
	m   learnedModel
	one func(*schedule.Lowered) *nn.Tensor
} {
	mlp := NewTenSetMLP(11)
	pacm := NewPaCM(12)
	noSF := NewPaCMAblated(13, false, true)
	noTDF := NewPaCMAblated(14, true, false)
	tlp := NewTLP(15)
	return map[string]struct {
		m   learnedModel
		one func(*schedule.Lowered) *nn.Tensor
	}{
		"tensetmlp":   {mlp, mlp.forwardOne},
		"pacm":        {pacm, pacm.forwardOne},
		"pacm-no-sf":  {noSF, noSF.forwardOne},
		"pacm-no-tdf": {noTDF, noTDF.forwardOne},
		"tlp":         {tlp, tlp.forwardOne},
	}
}

func sampleSchedules(t *ir.Task, n int, seed int64) []*schedule.Schedule {
	gen := schedule.NewGenerator(t)
	return gen.InitPopulation(rand.New(rand.NewSource(seed)), n)
}

// TestPredictBatchedMatchesReference is the engine's acceptance contract:
// for every learned model, every pool width and pool widths that do not
// divide the candidate count, the batched Predict returns bitwise
// identical scores to the per-candidate reference path.
func TestPredictBatchedMatchesReference(t *testing.T) {
	tasks := []*ir.Task{
		ir.NewMatMul(256, 192, 128, ir.FP32, 1),
		ir.NewMatMul(128, 128, 256, ir.FP16, 0),
	}
	// Widths cover a sub-chunk pool, a ragged tail chunk and a multi-chunk
	// pool; worker counts cover serial and contended fan-out. (Kept lean:
	// the full matrix also runs under -race in CI.)
	for _, width := range []int{3, batchChunk + 17, 3 * batchChunk} {
		for _, task := range tasks {
			schs := sampleSchedules(task, width, 31)
			for name, tc := range engineModels() {
				for _, workers := range []int{1, 8} {
					pool := parallel.New(workers)
					tc.m.SetPool(pool)
					got := tc.m.Predict(task, schs)
					want := predictReference(pool, tc.m.Params(), task, schs, tc.one)
					if len(got) != len(want) {
						t.Fatalf("%s n=%d w=%d: %d scores want %d", name, width, workers, len(got), len(want))
					}
					for i := range want {
						if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
							t.Fatalf("%s task=%s n=%d workers=%d: score %d = %v, reference %v",
								name, task.Name, width, workers, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestPredictBatchedUsesMemo verifies the round-memo integration: with a
// memo installed, Predict resolves lowerings through it (filling it), and
// scores do not change.
func TestPredictBatchedUsesMemo(t *testing.T) {
	task := ir.NewMatMul(128, 128, 128, ir.FP32, 1)
	schs := sampleSchedules(task, 40, 33)
	m := NewPaCM(17)
	bare := m.Predict(task, schs)
	memo := schedule.NewMemo()
	m.SetMemo(memo)
	defer m.SetMemo(nil)
	memoized := m.Predict(task, schs)
	if memo.Len() == 0 {
		t.Fatal("Predict did not populate the installed memo")
	}
	for i := range bare {
		if math.Float64bits(bare[i]) != math.Float64bits(memoized[i]) {
			t.Fatalf("memoized score %d = %v, unmemoized %v", i, memoized[i], bare[i])
		}
	}
}

// TestPredictAfterFitStaysConsistent guards the freeze-snapshot design:
// snapshots are rebuilt per Predict call, so training between calls must
// be reflected (no stale frozen weights).
func TestPredictAfterFitStaysConsistent(t *testing.T) {
	task := ir.NewMatMul(128, 128, 128, ir.FP32, 1)
	schs := sampleSchedules(task, 16, 35)
	m := NewTenSetMLP(19)
	before := m.Predict(task, schs)
	recs := make([]Record, len(schs))
	for i, s := range schs {
		recs[i] = Record{Task: task, Sched: s, Latency: 1e-4 * float64(i+1)}
	}
	m.Fit(recs, FitOptions{Epochs: 2})
	after := m.Predict(task, schs)
	want := predictReference(nil, m.Params(), task, schs, m.forwardOne)
	changed := false
	for i := range after {
		if math.Float64bits(after[i]) != math.Float64bits(want[i]) {
			t.Fatalf("post-fit score %d = %v, reference %v", i, after[i], want[i])
		}
		if after[i] != before[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("training did not change any prediction — stale snapshot?")
	}
}

// BenchmarkPredictBatched measures the verify-stage hot path: scoring one
// S_spec-sized draft set (512 candidates, the paper's setting), batched
// engine vs the per-candidate baseline it replaced. Both run on a serial
// pool so the comparison isolates the engine; the speedup compounds with
// the session's Parallelism knob.
func BenchmarkPredictBatched(b *testing.B) {
	task := ir.NewMatMul(512, 512, 512, ir.FP32, 1)
	schs := sampleSchedules(task, 512, 41)
	serial := parallel.New(1)
	for name, tc := range engineModels() {
		if name == "pacm-no-sf" || name == "pacm-no-tdf" {
			continue // ablations share the full model's path
		}
		tc.m.SetPool(serial)
		b.Run(fmt.Sprintf("%s/batched", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tc.m.Predict(task, schs)
			}
		})
		// The deployed configuration: in a tuning round the draft stage has
		// already lowered every candidate into the round memo, so verify
		// pays featurization + inference only. The memo warm-up (lowering)
		// happens off the clock, as it does in a real round.
		b.Run(fmt.Sprintf("%s/batched+memo", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				memo := schedule.NewMemo()
				for _, s := range schs {
					memo.Lower(task, s)
				}
				tc.m.SetMemo(memo)
				b.StartTimer()
				tc.m.Predict(task, schs)
			}
			tc.m.SetMemo(nil)
		})
		b.Run(fmt.Sprintf("%s/per-candidate", name), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				predictReference(serial, tc.m.Params(), task, schs, tc.one)
			}
		})
	}
}
