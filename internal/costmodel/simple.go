package costmodel

import (
	"math/rand"

	"pruner/internal/analyzer"
	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/schedule"
)

// SA wraps the Symbol-based Analyzer as a cost model: scores are the
// negated Eq. 1 latency estimates. It is the draft model of the
// Draft-then-Verify mechanism and the cheapest model in the suite.
type SA struct {
	A    *analyzer.Analyzer
	memo *schedule.Memo
}

// NewSA wraps an analyzer.
func NewSA(a *analyzer.Analyzer) *SA { return &SA{A: a} }

// Name implements Model.
func (s *SA) Name() string { return "sa" }

// SetMemo implements MemoUser.
func (s *SA) SetMemo(m *schedule.Memo) { s.memo = m }

// Predict implements Model.
func (s *SA) Predict(t *ir.Task, schs []*schedule.Schedule) []float64 {
	out := make([]float64, len(schs))
	for i, sch := range schs {
		out[i] = s.A.Score(s.memo.Lower(t, sch))
	}
	return out
}

// Fit implements Model (no-op: the analyzer has no trainable state).
func (s *SA) Fit([]Record, FitOptions) FitReport { return FitReport{} }

// Params implements Model.
func (s *SA) Params() []*nn.Tensor { return nil }

// Costs implements Model: no feature pipeline, and inference at the cost
// ratio Table 1 implies for an empirical formula (~1/12 of MLP inference).
func (s *SA) Costs() Costs { return Costs{FeatureX: 0, InferX: 0.085, TrainX: 0} }

// Random scores candidates uniformly at random: the no-cost-model control
// used by the Best-k experiments' random GA.
type Random struct {
	rng *rand.Rand
}

// NewRandom builds the control model.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Model.
func (r *Random) Name() string { return "random" }

// Predict implements Model.
func (r *Random) Predict(_ *ir.Task, schs []*schedule.Schedule) []float64 {
	out := make([]float64, len(schs))
	for i := range out {
		out[i] = r.rng.Float64()
	}
	return out
}

// Fit implements Model (no-op).
func (r *Random) Fit([]Record, FitOptions) FitReport { return FitReport{} }

// Params implements Model.
func (r *Random) Params() []*nn.Tensor { return nil }

// Costs implements Model.
func (r *Random) Costs() Costs { return Costs{} }
