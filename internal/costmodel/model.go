// Package costmodel defines the learned and analytical cost models that
// guide schedule search: the paper's Pattern-aware Cost Model (PaCM), the
// TenSetMLP and TLP baselines, a wrapper over the Symbol-based Analyzer,
// and a random-score control. All learned models share the ranking
// trainer: records are grouped per task, labelled with normalised
// throughput and optimised with the LambdaRank loss, as in the paper.
package costmodel

import (
	"math"
	"math/rand"

	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/schedule"
)

// Record is one measured tensor program: the training unit of online and
// offline cost-model tuning.
type Record struct {
	Task    *ir.Task
	Sched   *schedule.Schedule
	Latency float64 // seconds; +Inf marks a failed measurement
}

// FitOptions configures one training call.
type FitOptions struct {
	Epochs int
	LR     float64
	Seed   int64
	// MaxGroup bounds samples per task group per epoch (ranking lists get
	// quadratic in group size); 0 means no bound.
	MaxGroup int
}

func (o FitOptions) withDefaults() FitOptions {
	if o.Epochs == 0 {
		o.Epochs = 15
	}
	if o.LR == 0 {
		o.LR = 7e-4
	}
	if o.MaxGroup == 0 {
		o.MaxGroup = 128
	}
	return o
}

// FitReport summarises one training call for logging and simulated-clock
// accounting.
type FitReport struct {
	Loss         float64 // mean loss of the final epoch
	Samples      int     // distinct training samples
	SampleVisits int     // samples x epochs actually processed
}

// Costs are per-model multipliers over the platform's base CostParams,
// reflecting that TLP's transformer is far heavier than the MLP and that
// the draft model needs no feature extraction pipeline.
type Costs struct {
	FeatureX float64
	InferX   float64
	TrainX   float64
}

// Model scores candidate schedules of a task; higher is better.
type Model interface {
	Name() string
	// Predict scores candidates. Scores are comparable within one call.
	Predict(t *ir.Task, schs []*schedule.Schedule) []float64
	// Fit trains on measured records (no-op for analytical models).
	Fit(recs []Record, opt FitOptions) FitReport
	// Params exposes trainable parameters (nil for analytical models);
	// used by MoA's Siamese updates and by pretraining snapshots.
	Params() []*nn.Tensor
	// Costs returns simulated-clock multipliers.
	Costs() Costs
}

// Relevances converts a group's latencies into ranking labels: the
// normalised throughput min_latency / latency in (0, 1], with failed
// measurements at 0.
func Relevances(lats []float64) []float64 {
	best := math.Inf(1)
	for _, l := range lats {
		if l > 0 && l < best {
			best = l
		}
	}
	rel := make([]float64, len(lats))
	if math.IsInf(best, 1) {
		return rel
	}
	for i, l := range lats {
		if l > 0 && !math.IsInf(l, 1) {
			rel[i] = best / l
		}
	}
	return rel
}

// group is the per-task training unit used by the shared ranking trainer.
type group struct {
	task *ir.Task
	recs []Record
}

// groupByTask splits records into per-task groups with stable order.
func groupByTask(recs []Record) []group {
	idx := map[string]int{}
	var groups []group
	for _, r := range recs {
		i, ok := idx[r.Task.ID]
		if !ok {
			i = len(groups)
			idx[r.Task.ID] = i
			groups = append(groups, group{task: r.Task})
		}
		groups[i].recs = append(groups[i].recs, r)
	}
	return groups
}

// forwardFn scores one task's schedules, building a gradient graph when
// the model is training.
type forwardFn func(t *ir.Task, schs []*schedule.Schedule) *nn.Tensor

// rankFit is the shared LambdaRank training loop over task groups.
func rankFit(recs []Record, opt FitOptions, adam *nn.Adam, forward forwardFn, seed int64) FitReport {
	opt = opt.withDefaults()
	groups := groupByTask(recs)
	if len(groups) == 0 {
		return FitReport{}
	}
	rng := rand.New(rand.NewSource(seed ^ opt.Seed))
	var report FitReport
	for _, g := range groups {
		report.Samples += len(g.recs)
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		rng.Shuffle(len(groups), func(i, j int) { groups[i], groups[j] = groups[j], groups[i] })
		var epochLoss float64
		var batches int
		for _, g := range groups {
			recs := g.recs
			if opt.MaxGroup > 0 && len(recs) > opt.MaxGroup {
				sub := make([]Record, len(recs))
				copy(sub, recs)
				rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
				recs = sub[:opt.MaxGroup]
			}
			if len(recs) < 2 {
				continue
			}
			schs := make([]*schedule.Schedule, len(recs))
			lats := make([]float64, len(recs))
			for i, r := range recs {
				schs[i] = r.Sched
				lats[i] = r.Latency
			}
			rel := Relevances(lats)
			adam.ZeroGrad()
			scores := forward(g.task, schs)
			loss := nn.LambdaRankLoss(scores, rel)
			nn.Backward(loss)
			adam.Step()
			epochLoss += loss.Data[0]
			batches++
			report.SampleVisits += len(recs)
		}
		if batches > 0 {
			report.Loss = epochLoss / float64(batches)
		}
	}
	return report
}
