// Package costmodel defines the learned and analytical cost models that
// guide schedule search: the paper's Pattern-aware Cost Model (PaCM), the
// TenSetMLP and TLP baselines, a wrapper over the Symbol-based Analyzer,
// and a random-score control. All learned models share the ranking
// trainer: records are grouped per task, labelled with normalised
// throughput and optimised with the LambdaRank loss, as in the paper.
package costmodel

import (
	"math"
	"math/rand"

	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
)

// Record is one measured tensor program: the training unit of online and
// offline cost-model tuning.
type Record struct {
	Task    *ir.Task
	Sched   *schedule.Schedule
	Latency float64 // seconds; +Inf marks a failed measurement
}

// FitOptions configures one training call.
type FitOptions struct {
	Epochs int
	// LR overrides the model's constructed learning rate for the duration
	// of this fit; 0 keeps the model's own rate (e.g. TLP's deliberately
	// higher 1.2e-3).
	LR   float64
	Seed int64
	// MaxGroup bounds samples per task group per epoch (ranking lists get
	// quadratic in group size); 0 selects the default bound of 128,
	// negative disables the bound entirely.
	MaxGroup int
	// MacroBatch is the number of task groups whose gradients are averaged
	// into one optimiser step by the parallel trainer; 0 selects the
	// default of 8. Groups within a macro-batch shard across the session
	// pool; a fixed size keeps the stepping schedule — and the fitted
	// parameters — independent of the worker count.
	MacroBatch int
	// Cache, when non-nil, memoizes the lowering (and, through Lowered's
	// feature cache, the featurization) of training records across epochs
	// and Fit calls. The tuner passes one session-scoped cache: records
	// are append-only and features deterministic, so each record is
	// lowered and featurized once per session instead of once per
	// epoch x round.
	Cache *FitCache
}

func (o FitOptions) withDefaults() FitOptions {
	if o.Epochs == 0 {
		o.Epochs = 15
	}
	if o.MaxGroup == 0 {
		o.MaxGroup = 128
	}
	if o.MacroBatch <= 0 {
		o.MacroBatch = 8
	}
	return o
}

// FitReport summarises one training call for logging and simulated-clock
// accounting.
type FitReport struct {
	// Loss is the mean loss of the final epoch, or NaN when no batch
	// trained (Batches == 0) — distinguishing "trained to zero loss" from
	// "every group was degenerate and training never ran".
	Loss         float64
	Samples      int // distinct training samples
	SampleVisits int // samples x epochs actually processed
	// Batches counts the ranking batches processed across all epochs.
	Batches int
}

// Costs are per-model multipliers over the platform's base CostParams,
// reflecting that TLP's transformer is far heavier than the MLP and that
// the draft model needs no feature extraction pipeline.
type Costs struct {
	FeatureX float64
	InferX   float64
	TrainX   float64
}

// Model scores candidate schedules of a task; higher is better.
type Model interface {
	Name() string
	// Predict scores candidates. Scores are comparable within one call.
	Predict(t *ir.Task, schs []*schedule.Schedule) []float64
	// Fit trains on measured records (no-op for analytical models).
	Fit(recs []Record, opt FitOptions) FitReport
	// Params exposes trainable parameters (nil for analytical models);
	// used by MoA's Siamese updates and by pretraining snapshots.
	Params() []*nn.Tensor
	// Costs returns simulated-clock multipliers.
	Costs() Costs
}

// Relevances converts a group's latencies into ranking labels: the
// normalised throughput min_latency / latency in (0, 1], with failed
// measurements at 0.
func Relevances(lats []float64) []float64 {
	best := math.Inf(1)
	for _, l := range lats {
		if l > 0 && l < best {
			best = l
		}
	}
	rel := make([]float64, len(lats))
	if math.IsInf(best, 1) {
		return rel
	}
	for i, l := range lats {
		if l > 0 && !math.IsInf(l, 1) {
			rel[i] = best / l
		}
	}
	return rel
}

// group is the per-task training unit used by the shared ranking trainer.
type group struct {
	task *ir.Task
	recs []Record
}

// groupByTask splits records into per-task groups with stable order.
func groupByTask(recs []Record) []group {
	idx := map[string]int{}
	var groups []group
	for _, r := range recs {
		i, ok := idx[r.Task.ID]
		if !ok {
			i = len(groups)
			idx[r.Task.ID] = i
			groups = append(groups, group{task: r.Task})
		}
		groups[i].recs = append(groups[i].recs, r)
	}
	return groups
}

// forwardFn scores a batch of lowered programs of one task, building a
// gradient graph when the model is training.
type forwardFn func(lws []*schedule.Lowered) *nn.Tensor

// trainBatch is one group's ready-to-train slice of an epoch: the
// (possibly subsampled) records plus their relevance labels. Batches are
// composed on the serial path — every random draw happens there — and
// only then fanned out to workers.
type trainBatch struct {
	task *ir.Task
	recs []Record
	rel  []float64
}

// epochBatches composes one epoch's training batches in the shuffled
// group order, consuming rng exactly like the serial reference loop:
// one groups-shuffle, then one subsample-shuffle per over-size group.
func epochBatches(groups []group, opt FitOptions, rng *rand.Rand) []trainBatch {
	rng.Shuffle(len(groups), func(i, j int) { groups[i], groups[j] = groups[j], groups[i] })
	var batches []trainBatch
	for _, g := range groups {
		recs := g.recs
		if opt.MaxGroup > 0 && len(recs) > opt.MaxGroup {
			sub := make([]Record, len(recs))
			copy(sub, recs)
			rng.Shuffle(len(sub), func(i, j int) { sub[i], sub[j] = sub[j], sub[i] })
			recs = sub[:opt.MaxGroup]
		}
		if len(recs) < 2 {
			continue
		}
		lats := make([]float64, len(recs))
		for i, r := range recs {
			lats[i] = r.Latency
		}
		batches = append(batches, trainBatch{task: g.task, recs: recs, rel: Relevances(lats)})
	}
	return batches
}

// rankFit is the shared LambdaRank training engine: each epoch's task
// groups are sharded across the session pool in fixed-size macro-batches.
// Workers run one forward/backward per group on an architecture replica
// (weights aliased to the live model, gradients into the group's private
// slot buffer); the slot gradients are then averaged in fixed group order
// and applied with one Adam step per macro-batch. Because every random
// draw stays on the serial path and the reduction order is fixed, the
// fitted parameters are bitwise identical at any worker count — the same
// bar the batched inference engine holds (TestFitDeterministicAcrossWorkers).
func rankFit(recs []Record, opt FitOptions, adam *nn.Adam, pool *parallel.Pool, seed int64, tr *trainer) FitReport {
	opt = opt.withDefaults()
	groups := groupByTask(recs)
	report := FitReport{Loss: math.NaN()}
	if len(groups) == 0 {
		return report
	}
	if pool == nil {
		// Same fallback as predictBatched: fits outside a tuning session
		// (facade pretraining) still use the machine, not one goroutine.
		pool = parallel.Default()
	}
	defer func(prev float64) { adam.LR = prev }(adam.SwapLR(opt.LR))
	rng := rand.New(rand.NewSource(seed ^ opt.Seed))
	for _, g := range groups {
		report.Samples += len(g.recs)
	}
	tr.ensureSlots(opt.MacroBatch)
	losses := make([]float64, opt.MacroBatch)
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		batches := epochBatches(groups, opt, rng)
		var epochLoss float64
		for lo := 0; lo < len(batches); lo += opt.MacroBatch {
			hi := lo + opt.MacroBatch
			if hi > len(batches) {
				hi = len(batches)
			}
			chunk := batches[lo:hi]
			pool.ForEach(len(chunk), func(j int) {
				b := chunk[j]
				memo := opt.Cache.memo(b.task)
				lws := make([]*schedule.Lowered, len(b.recs))
				for i, r := range b.recs {
					lws[i] = memo.Lower(b.task, r.Sched)
				}
				slot := tr.slot(j)
				slot.Zero()
				rep := tr.checkout()
				slot.Bind(rep.params)
				loss := nn.LambdaRankLoss(rep.forward(lws), b.rel)
				nn.Backward(loss)
				tr.checkin(rep)
				losses[j] = loss.Data[0]
			})
			// Serial reduction in fixed group order, then one step over the
			// averaged macro-batch gradient (averaging keeps the per-step
			// magnitude comparable to a single-group step, so MacroBatch=1
			// reproduces the per-group reference bitwise).
			adam.ZeroGrad()
			scale := 1 / float64(len(chunk))
			for j := range chunk {
				tr.slot(j).AddInto(tr.params, scale)
				epochLoss += losses[j]
				report.SampleVisits += len(chunk[j].recs)
			}
			adam.Step()
			report.Batches += len(chunk)
		}
		if len(batches) > 0 {
			report.Loss = epochLoss / float64(len(batches))
		}
	}
	return report
}

// rankFitReference is the pre-engine serial loop — one optimiser step per
// task group, forward and backward on the live parameters — retained as
// the ground truth for the trainer's equivalence tests and the
// BenchmarkFit before/after comparison.
func rankFitReference(recs []Record, opt FitOptions, adam *nn.Adam, forward forwardFn, seed int64) FitReport {
	opt = opt.withDefaults()
	groups := groupByTask(recs)
	report := FitReport{Loss: math.NaN()}
	if len(groups) == 0 {
		return report
	}
	defer func(prev float64) { adam.LR = prev }(adam.SwapLR(opt.LR))
	rng := rand.New(rand.NewSource(seed ^ opt.Seed))
	for _, g := range groups {
		report.Samples += len(g.recs)
	}
	for epoch := 0; epoch < opt.Epochs; epoch++ {
		batches := epochBatches(groups, opt, rng)
		var epochLoss float64
		for _, b := range batches {
			memo := opt.Cache.memo(b.task)
			lws := make([]*schedule.Lowered, len(b.recs))
			for i, r := range b.recs {
				lws[i] = memo.Lower(b.task, r.Sched)
			}
			adam.ZeroGrad()
			loss := nn.LambdaRankLoss(forward(lws), b.rel)
			nn.Backward(loss)
			adam.Step()
			epochLoss += loss.Data[0]
			report.Batches++
			report.SampleVisits += len(b.recs)
		}
		if len(batches) > 0 {
			report.Loss = epochLoss / float64(len(batches))
		}
	}
	return report
}
