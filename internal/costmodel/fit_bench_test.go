package costmodel

import (
	"fmt"
	"testing"

	"pruner/internal/nn"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
)

// perRecordForward composes the pre-engine training forward: one small
// gradient graph per record, concatenated — what the models ran before
// the batched group forwards.
func perRecordForward(one func(*schedule.Lowered) *nn.Tensor) forwardFn {
	return func(lws []*schedule.Lowered) *nn.Tensor {
		outs := make([]*nn.Tensor, len(lws))
		for i, lw := range lws {
			outs[i] = one(lw)
		}
		return nn.ConcatRows(outs...)
	}
}

// BenchmarkFit measures the online-training hot path: the data-parallel
// macro-batch engine (with its session feature cache, as the tuner runs
// it) against the retained pre-engine serial loop, for the two heaviest
// learned models. EXPERIMENTS.md records the before/after numbers; CI's
// bench-smoke keeps the harness alive. The fitted parameters at p=1 and
// p=8 are bitwise identical (TestFitDeterministicAcrossWorkers) — only
// wall-clock may move.
func BenchmarkFit(b *testing.B) {
	recs := multiTaskRecords(b, 16, 48, 21)
	opt := FitOptions{Epochs: 4, Seed: 2}

	builders := map[string]func() Model{
		"pacm": func() Model { return NewPaCM(31) },
		"tlp":  func() Model { return NewTLP(32) },
	}
	for _, kind := range []string{"pacm", "tlp"} {
		build := builders[kind]
		// The reference arm is the pre-engine path end to end: the serial
		// per-group-step loop driving the per-candidate forward (one small
		// graph per record, concatenated), with no session feature cache.
		b.Run(kind+"/reference", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				m := build()
				b.StartTimer()
				switch m := m.(type) {
				case *PaCM:
					rankFitReference(recs, opt, m.adam, perRecordForward(m.forwardOne), m.seed)
				case *TLP:
					rankFitReference(recs, opt, m.adam, perRecordForward(m.forwardOne), m.seed)
				}
			}
		})
		for _, workers := range []int{1, 8} {
			b.Run(fmt.Sprintf("%s/engine-p%d", kind, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					b.StopTimer()
					m := build()
					m.(PoolUser).SetPool(parallel.New(workers))
					sessionOpt := opt
					sessionOpt.Cache = NewFitCache()
					b.StartTimer()
					m.Fit(recs, sessionOpt)
				}
			})
		}
	}
}
