package costmodel

import (
	"math/rand"

	"pruner/internal/features"
	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
)

// TenSetMLP is the statement-feature MLP baseline (TenSet's cost model and
// the stand-in for Ansor's learned model): every innermost statement's
// 164-dim feature row is embedded, per-program embeddings are summed, and
// a linear head emits the score.
type TenSetMLP struct {
	embed *nn.MLP
	head  *nn.MLP
	adam  *nn.Adam
	seed  int64
	pool  *parallel.Pool
	memo  *schedule.Memo
}

// NewTenSetMLP builds the model with the given init seed.
func NewTenSetMLP(seed int64) *TenSetMLP {
	rng := rand.New(rand.NewSource(seed))
	m := &TenSetMLP{
		embed: nn.NewMLP(rng, features.StmtDim, 128, 128),
		head:  nn.NewMLP(rng, 128, 64, 1),
		seed:  seed,
	}
	m.adam = nn.NewAdam(m.Params(), 7e-4)
	return m
}

// Name implements Model.
func (m *TenSetMLP) Name() string { return "tensetmlp" }

// Params implements Model.
func (m *TenSetMLP) Params() []*nn.Tensor {
	return append(m.embed.Params(), m.head.Params()...)
}

// Costs implements Model.
func (m *TenSetMLP) Costs() Costs { return Costs{FeatureX: 1, InferX: 1, TrainX: 1} }

// SetPool implements PoolUser.
func (m *TenSetMLP) SetPool(p *parallel.Pool) { m.pool = p }

// SetMemo implements MemoUser.
func (m *TenSetMLP) SetMemo(mm *schedule.Memo) { m.memo = mm }

func (m *TenSetMLP) forwardOne(lw *schedule.Lowered) *nn.Tensor {
	rows := nn.FromRows(features.Statement(lw))
	emb := nn.ReLU(m.embed.Forward(rows))
	return m.head.Forward(nn.SumRows(emb))
}

func (m *TenSetMLP) forward(t *ir.Task, schs []*schedule.Schedule) *nn.Tensor {
	outs := make([]*nn.Tensor, len(schs))
	for i, s := range schs {
		outs[i] = m.forwardOne(schedule.Lower(t, s))
	}
	return nn.ConcatRows(outs...)
}

// Predict implements Model: candidates run through the batched no-tape
// inference engine (batch.go), bitwise identical to the per-candidate
// reference path.
func (m *TenSetMLP) Predict(t *ir.Task, schs []*schedule.Schedule) []float64 {
	return predictBatched(m.pool, m.Params(), m.memo, t, schs, m.freeze)
}

// Fit implements Model.
func (m *TenSetMLP) Fit(recs []Record, opt FitOptions) FitReport {
	return rankFit(recs, opt, m.adam, m.forward, m.seed)
}

// PaCM is the paper's Pattern-aware Cost Model: a multi-branch network
// combining summed statement embeddings with a self-attention encoding of
// the temporal dataflow feature sequence (Figure 4). Branches can be
// disabled for the Table 12 ablations (w/o S.F., w/o T.D.F).
type PaCM struct {
	// UseStatement / UseDataflow select the active branches.
	UseStatement bool
	UseDataflow  bool

	stmtEmbed *nn.MLP
	dfProj    *nn.Linear
	dfAttn    *nn.SelfAttention
	head      *nn.MLP
	adam      *nn.Adam
	seed      int64
	pool      *parallel.Pool
	memo      *schedule.Memo
}

const (
	pacmStmtDim = 96
	pacmDfDim   = 48
)

// NewPaCM builds the full two-branch model.
func NewPaCM(seed int64) *PaCM { return newPaCM(seed, true, true) }

// NewPaCMAblated builds a PaCM with selected branches, for ablations.
func NewPaCMAblated(seed int64, useStatement, useDataflow bool) *PaCM {
	if !useStatement && !useDataflow {
		panic("costmodel: PaCM needs at least one branch")
	}
	return newPaCM(seed, useStatement, useDataflow)
}

func newPaCM(seed int64, useStmt, useDf bool) *PaCM {
	rng := rand.New(rand.NewSource(seed))
	m := &PaCM{
		UseStatement: useStmt,
		UseDataflow:  useDf,
		stmtEmbed:    nn.NewMLP(rng, features.StmtDim, pacmStmtDim, pacmStmtDim),
		dfProj:       nn.NewLinear(rng, features.DataflowDim, pacmDfDim),
		dfAttn:       nn.NewSelfAttention(rng, pacmDfDim),
		seed:         seed,
	}
	width := 0
	if useStmt {
		width += pacmStmtDim
	}
	if useDf {
		width += pacmDfDim
	}
	m.head = nn.NewMLP(rng, width, 64, 1)
	m.adam = nn.NewAdam(m.Params(), 7e-4)
	return m
}

// Name implements Model.
func (m *PaCM) Name() string {
	switch {
	case !m.UseStatement:
		return "pacm-no-sf"
	case !m.UseDataflow:
		return "pacm-no-tdf"
	default:
		return "pacm"
	}
}

// Params implements Model. All branch parameters are always exposed so
// Siamese snapshots stay architecture-compatible across ablations.
func (m *PaCM) Params() []*nn.Tensor {
	ps := m.stmtEmbed.Params()
	ps = append(ps, m.dfProj.Params()...)
	ps = append(ps, m.dfAttn.Params()...)
	return append(ps, m.head.Params()...)
}

// Costs implements Model: slightly heavier than the MLP, far lighter than
// TLP.
func (m *PaCM) Costs() Costs { return Costs{FeatureX: 1.1, InferX: 1.2, TrainX: 1.6} }

// SetPool implements PoolUser.
func (m *PaCM) SetPool(p *parallel.Pool) { m.pool = p }

// SetMemo implements MemoUser.
func (m *PaCM) SetMemo(mm *schedule.Memo) { m.memo = mm }

func (m *PaCM) forwardOne(lw *schedule.Lowered) *nn.Tensor {
	var parts *nn.Tensor
	if m.UseStatement {
		rows := nn.FromRows(features.Statement(lw))
		emb := nn.ReLU(m.stmtEmbed.Forward(rows))
		parts = nn.SumRows(emb)
	}
	if m.UseDataflow {
		df := nn.FromRows(features.Dataflow(lw))
		tokens := nn.Tanh(m.dfProj.Forward(df))
		ctx := nn.MeanRows(m.dfAttn.Forward(tokens))
		if parts == nil {
			parts = ctx
		} else {
			parts = nn.ConcatCols(parts, ctx)
		}
	}
	return m.head.Forward(parts)
}

func (m *PaCM) forward(t *ir.Task, schs []*schedule.Schedule) *nn.Tensor {
	outs := make([]*nn.Tensor, len(schs))
	for i, s := range schs {
		outs[i] = m.forwardOne(schedule.Lower(t, s))
	}
	return nn.ConcatRows(outs...)
}

// Predict implements Model: candidates run through the batched no-tape
// inference engine (batch.go), bitwise identical to the per-candidate
// reference path.
func (m *PaCM) Predict(t *ir.Task, schs []*schedule.Schedule) []float64 {
	return predictBatched(m.pool, m.Params(), m.memo, t, schs, m.freeze)
}

// Fit implements Model.
func (m *PaCM) Fit(recs []Record, opt FitOptions) FitReport {
	return rankFit(recs, opt, m.adam, m.forward, m.seed)
}

// TLP is the schedule-primitive transformer baseline. Its tokens are
// near-constant one-hots where only split factors vary, which makes small
// online datasets hard to learn from — the behaviour behind the paper's
// disappearing tuning curves.
type TLP struct {
	proj *nn.Linear
	attn *nn.SelfAttention
	head *nn.MLP
	adam *nn.Adam
	seed int64
	pool *parallel.Pool
	memo *schedule.Memo
}

// NewTLP builds the model.
func NewTLP(seed int64) *TLP {
	rng := rand.New(rand.NewSource(seed))
	m := &TLP{
		proj: nn.NewLinear(rng, features.PrimDim, features.PrimDim),
		attn: nn.NewSelfAttention(rng, features.PrimDim),
		seed: seed,
	}
	m.head = nn.NewMLP(rng, features.PrimDim, 64, 1)
	// TLP trains with a higher learning rate on sparse features; this is
	// part of why online fine-tuning can destabilise it.
	m.adam = nn.NewAdam(m.Params(), 1.2e-3)
	return m
}

// Name implements Model.
func (m *TLP) Name() string { return "tlp" }

// Params implements Model.
func (m *TLP) Params() []*nn.Tensor {
	ps := m.proj.Params()
	ps = append(ps, m.attn.Params()...)
	return append(ps, m.head.Params()...)
}

// Costs implements Model: cheap features, heavy model.
func (m *TLP) Costs() Costs { return Costs{FeatureX: 0.35, InferX: 3.5, TrainX: 8} }

// SetPool implements PoolUser.
func (m *TLP) SetPool(p *parallel.Pool) { m.pool = p }

// SetMemo implements MemoUser.
func (m *TLP) SetMemo(mm *schedule.Memo) { m.memo = mm }

func (m *TLP) forwardOne(lw *schedule.Lowered) *nn.Tensor {
	tokens := nn.FromRows(features.Primitives(lw))
	x := m.proj.Forward(tokens)
	x = m.attn.Forward(x)
	return m.head.Forward(nn.MeanRows(x))
}

func (m *TLP) forward(t *ir.Task, schs []*schedule.Schedule) *nn.Tensor {
	outs := make([]*nn.Tensor, len(schs))
	for i, s := range schs {
		outs[i] = m.forwardOne(schedule.Lower(t, s))
	}
	return nn.ConcatRows(outs...)
}

// Predict implements Model: candidates run through the batched no-tape
// inference engine (batch.go), bitwise identical to the per-candidate
// reference path.
func (m *TLP) Predict(t *ir.Task, schs []*schedule.Schedule) []float64 {
	return predictBatched(m.pool, m.Params(), m.memo, t, schs, m.freeze)
}

// Fit implements Model.
func (m *TLP) Fit(recs []Record, opt FitOptions) FitReport {
	return rankFit(recs, opt, m.adam, m.forward, m.seed)
}

// PoolUser is implemented by models whose batched inference can run on a
// caller-provided worker pool. The tuner injects its session pool so one
// Parallelism knob governs every layer of a session.
type PoolUser interface {
	SetPool(p *parallel.Pool)
}
