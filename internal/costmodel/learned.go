package costmodel

import (
	"math/rand"

	"pruner/internal/features"
	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/obs"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
)

// TenSetMLP is the statement-feature MLP baseline (TenSet's cost model and
// the stand-in for Ansor's learned model): every innermost statement's
// 164-dim feature row is embedded, per-program embeddings are summed, and
// a linear head emits the score.
type TenSetMLP struct {
	embed *nn.MLP
	head  *nn.MLP
	adam  *nn.Adam
	seed  int64
	pool  *parallel.Pool
	memo  *schedule.Memo
	mo    *modelObs
	tr    *trainer
}

// NewTenSetMLP builds the model with the given init seed.
func NewTenSetMLP(seed int64) *TenSetMLP {
	m := newTenSetMLPArch(seed)
	m.adam = nn.NewAdam(m.Params(), 7e-4)
	return m
}

// newTenSetMLPArch builds the architecture alone — what training
// replicas need; they alias the live weights and never step, so they
// skip the optimiser's moment buffers.
func newTenSetMLPArch(seed int64) *TenSetMLP {
	rng := rand.New(rand.NewSource(seed))
	return &TenSetMLP{
		embed: nn.NewMLP(rng, features.StmtDim, 128, 128),
		head:  nn.NewMLP(rng, 128, 64, 1),
		seed:  seed,
	}
}

// Name implements Model.
func (m *TenSetMLP) Name() string { return "tensetmlp" }

// Params implements Model.
func (m *TenSetMLP) Params() []*nn.Tensor {
	return append(m.embed.Params(), m.head.Params()...)
}

// Costs implements Model.
func (m *TenSetMLP) Costs() Costs { return Costs{FeatureX: 1, InferX: 1, TrainX: 1} }

// SetPool implements PoolUser.
func (m *TenSetMLP) SetPool(p *parallel.Pool) { m.pool = p }

// SetMemo implements MemoUser.
func (m *TenSetMLP) SetMemo(mm *schedule.Memo) { m.memo = mm }

// SetObserver implements ObsUser.
func (m *TenSetMLP) SetObserver(o *obs.Observer) { m.mo = newModelObs(o, m.Name()) }

func (m *TenSetMLP) forwardOne(lw *schedule.Lowered) *nn.Tensor {
	rows := nn.FromRows(features.Statement(lw))
	emb := m.embed.ForwardReLU(rows)
	return m.head.Forward(nn.SumRows(emb))
}

// forward is the batched training forward: the whole group's statement
// rows run through the embedding in one fused pair of GEMMs and pool via
// a segmented reduction — the training-path mirror of the batched
// inference engine (batch.go). Row-wise ops and the order-preserving
// SegmentSumRows keep the forward values bitwise identical to the
// per-candidate composition forwardOne computes.
func (m *TenSetMLP) forward(lws []*schedule.Lowered) *nn.Tensor {
	rows, lens := statementBatch(lws)
	emb := m.embed.ForwardReLU(nn.FromRows(rows))
	return m.head.Forward(nn.SegmentSumRows(emb, lens))
}

// trainer lazily builds the model's parallel training state: replicas of
// the same architecture and seed whose weights alias the live model.
func (m *TenSetMLP) trainer() *trainer {
	if m.tr == nil {
		m.tr = newTrainer(m.Params(), func() *replica {
			r := newTenSetMLPArch(m.seed)
			nn.AliasParams(r.Params(), m.Params())
			return &replica{forward: r.forward, params: r.Params()}
		})
	}
	return m.tr
}

// Predict implements Model: candidates run through the batched no-tape
// inference engine (batch.go), bitwise identical to the per-candidate
// reference path.
func (m *TenSetMLP) Predict(t *ir.Task, schs []*schedule.Schedule) []float64 {
	return m.mo.predict(len(schs), func() []float64 {
		return predictBatched(m.pool, m.Params(), m.memo, t, schs, m.freeze)
	})
}

// Fit implements Model: training runs on the data-parallel engine over
// the session pool (rankFit, model.go).
func (m *TenSetMLP) Fit(recs []Record, opt FitOptions) FitReport {
	return m.mo.fit(len(recs), func() FitReport {
		return rankFit(recs, opt, m.adam, m.pool, m.seed, m.trainer())
	})
}

// PaCM is the paper's Pattern-aware Cost Model: a multi-branch network
// combining summed statement embeddings with a self-attention encoding of
// the temporal dataflow feature sequence (Figure 4). Branches can be
// disabled for the Table 12 ablations (w/o S.F., w/o T.D.F).
type PaCM struct {
	// UseStatement / UseDataflow select the active branches.
	UseStatement bool
	UseDataflow  bool

	stmtEmbed *nn.MLP
	dfProj    *nn.Linear
	dfAttn    *nn.SelfAttention
	head      *nn.MLP
	adam      *nn.Adam
	seed      int64
	pool      *parallel.Pool
	memo      *schedule.Memo
	mo        *modelObs
	tr        *trainer
}

const (
	pacmStmtDim = 96
	pacmDfDim   = 48
)

// NewPaCM builds the full two-branch model.
func NewPaCM(seed int64) *PaCM { return newPaCM(seed, true, true) }

// NewPaCMAblated builds a PaCM with selected branches, for ablations.
func NewPaCMAblated(seed int64, useStatement, useDataflow bool) *PaCM {
	if !useStatement && !useDataflow {
		panic("costmodel: PaCM needs at least one branch")
	}
	return newPaCM(seed, useStatement, useDataflow)
}

func newPaCM(seed int64, useStmt, useDf bool) *PaCM {
	m := newPaCMArch(seed, useStmt, useDf)
	m.adam = nn.NewAdam(m.Params(), 7e-4)
	return m
}

// newPaCMArch builds the architecture alone (see newTenSetMLPArch).
func newPaCMArch(seed int64, useStmt, useDf bool) *PaCM {
	rng := rand.New(rand.NewSource(seed))
	m := &PaCM{
		UseStatement: useStmt,
		UseDataflow:  useDf,
		stmtEmbed:    nn.NewMLP(rng, features.StmtDim, pacmStmtDim, pacmStmtDim),
		dfProj:       nn.NewLinear(rng, features.DataflowDim, pacmDfDim),
		dfAttn:       nn.NewSelfAttention(rng, pacmDfDim),
		seed:         seed,
	}
	width := 0
	if useStmt {
		width += pacmStmtDim
	}
	if useDf {
		width += pacmDfDim
	}
	m.head = nn.NewMLP(rng, width, 64, 1)
	return m
}

// Name implements Model.
func (m *PaCM) Name() string {
	switch {
	case !m.UseStatement:
		return "pacm-no-sf"
	case !m.UseDataflow:
		return "pacm-no-tdf"
	default:
		return "pacm"
	}
}

// Params implements Model. All branch parameters are always exposed so
// Siamese snapshots stay architecture-compatible across ablations.
func (m *PaCM) Params() []*nn.Tensor {
	ps := m.stmtEmbed.Params()
	ps = append(ps, m.dfProj.Params()...)
	ps = append(ps, m.dfAttn.Params()...)
	return append(ps, m.head.Params()...)
}

// Costs implements Model: slightly heavier than the MLP, far lighter than
// TLP.
func (m *PaCM) Costs() Costs { return Costs{FeatureX: 1.1, InferX: 1.2, TrainX: 1.6} }

// SetPool implements PoolUser.
func (m *PaCM) SetPool(p *parallel.Pool) { m.pool = p }

// SetMemo implements MemoUser.
func (m *PaCM) SetMemo(mm *schedule.Memo) { m.memo = mm }

// SetObserver implements ObsUser.
func (m *PaCM) SetObserver(o *obs.Observer) { m.mo = newModelObs(o, m.Name()) }

func (m *PaCM) forwardOne(lw *schedule.Lowered) *nn.Tensor {
	var parts *nn.Tensor
	if m.UseStatement {
		rows := nn.FromRows(features.Statement(lw))
		emb := m.stmtEmbed.ForwardReLU(rows)
		parts = nn.SumRows(emb)
	}
	if m.UseDataflow {
		df := nn.FromRows(features.Dataflow(lw))
		tokens := nn.Tanh(m.dfProj.Forward(df))
		ctx := nn.MeanRows(m.dfAttn.Forward(tokens))
		if parts == nil {
			parts = ctx
		} else {
			parts = nn.ConcatCols(parts, ctx)
		}
	}
	return m.head.Forward(parts)
}

// forward is the batched training forward (see TenSetMLP.forward): the
// statement branch pools fused embeddings with a segmented sum; the
// dataflow branch deduplicates the zero-padded rows, projects each
// distinct row once, and runs the gradient-aware segment attention.
func (m *PaCM) forward(lws []*schedule.Lowered) *nn.Tensor {
	var parts *nn.Tensor
	if m.UseStatement {
		rows, lens := statementBatch(lws)
		emb := m.stmtEmbed.ForwardReLU(nn.FromRows(rows))
		parts = nn.SegmentSumRows(emb, lens)
	}
	if m.UseDataflow {
		lens := make([]int, len(lws))
		rows := make([][]float64, 0, len(lws)*features.DataflowSeq)
		for i, lw := range lws {
			rows = append(rows, features.Dataflow(lw)...)
			lens[i] = features.DataflowSeq
		}
		uniq, idx := nn.DedupRows(rows)
		tokens := nn.Tanh(m.dfProj.Forward(nn.FromRows(uniq)))
		ctx := nn.SegmentMeanRows(m.dfAttn.ForwardSegmentsDedup(tokens, idx, lens), lens)
		if parts == nil {
			parts = ctx
		} else {
			parts = nn.ConcatCols(parts, ctx)
		}
	}
	return m.head.Forward(parts)
}

// trainer lazily builds the model's parallel training state; replicas
// reproduce the branch ablation flags so their head widths match.
func (m *PaCM) trainer() *trainer {
	if m.tr == nil {
		m.tr = newTrainer(m.Params(), func() *replica {
			r := newPaCMArch(m.seed, m.UseStatement, m.UseDataflow)
			nn.AliasParams(r.Params(), m.Params())
			return &replica{forward: r.forward, params: r.Params()}
		})
	}
	return m.tr
}

// Predict implements Model: candidates run through the batched no-tape
// inference engine (batch.go), bitwise identical to the per-candidate
// reference path.
func (m *PaCM) Predict(t *ir.Task, schs []*schedule.Schedule) []float64 {
	return m.mo.predict(len(schs), func() []float64 {
		return predictBatched(m.pool, m.Params(), m.memo, t, schs, m.freeze)
	})
}

// Fit implements Model: training runs on the data-parallel engine over
// the session pool (rankFit, model.go).
func (m *PaCM) Fit(recs []Record, opt FitOptions) FitReport {
	return m.mo.fit(len(recs), func() FitReport {
		return rankFit(recs, opt, m.adam, m.pool, m.seed, m.trainer())
	})
}

// TLP is the schedule-primitive transformer baseline. Its tokens are
// near-constant one-hots where only split factors vary, which makes small
// online datasets hard to learn from — the behaviour behind the paper's
// disappearing tuning curves.
type TLP struct {
	proj *nn.Linear
	attn *nn.SelfAttention
	head *nn.MLP
	adam *nn.Adam
	seed int64
	pool *parallel.Pool
	memo *schedule.Memo
	mo   *modelObs
	tr   *trainer
}

// NewTLP builds the model.
func NewTLP(seed int64) *TLP {
	m := newTLPArch(seed)
	// TLP trains with a higher learning rate on sparse features; this is
	// part of why online fine-tuning can destabilise it.
	m.adam = nn.NewAdam(m.Params(), 1.2e-3)
	return m
}

// newTLPArch builds the architecture alone (see newTenSetMLPArch).
func newTLPArch(seed int64) *TLP {
	rng := rand.New(rand.NewSource(seed))
	m := &TLP{
		proj: nn.NewLinear(rng, features.PrimDim, features.PrimDim),
		attn: nn.NewSelfAttention(rng, features.PrimDim),
		seed: seed,
	}
	m.head = nn.NewMLP(rng, features.PrimDim, 64, 1)
	return m
}

// Name implements Model.
func (m *TLP) Name() string { return "tlp" }

// Params implements Model.
func (m *TLP) Params() []*nn.Tensor {
	ps := m.proj.Params()
	ps = append(ps, m.attn.Params()...)
	return append(ps, m.head.Params()...)
}

// Costs implements Model: cheap features, heavy model.
func (m *TLP) Costs() Costs { return Costs{FeatureX: 0.35, InferX: 3.5, TrainX: 8} }

// SetPool implements PoolUser.
func (m *TLP) SetPool(p *parallel.Pool) { m.pool = p }

// SetMemo implements MemoUser.
func (m *TLP) SetMemo(mm *schedule.Memo) { m.memo = mm }

// SetObserver implements ObsUser.
func (m *TLP) SetObserver(o *obs.Observer) { m.mo = newModelObs(o, m.Name()) }

func (m *TLP) forwardOne(lw *schedule.Lowered) *nn.Tensor {
	tokens := nn.FromRows(features.Primitives(lw))
	x := m.proj.Forward(tokens)
	x = m.attn.Forward(x)
	return m.head.Forward(nn.MeanRows(x))
}

// forward is the batched training forward: primitive tokens are
// near-constant one-hots that repeat heavily across a group, so the
// projection and the attention's Q/K/V run once per distinct row
// (gradient-aware dedup) and the per-candidate score means fall out of a
// segmented reduction.
func (m *TLP) forward(lws []*schedule.Lowered) *nn.Tensor {
	lens := make([]int, len(lws))
	rows := make([][]float64, 0, len(lws)*features.PrimSeq)
	for i, lw := range lws {
		r := features.Primitives(lw)
		rows = append(rows, r...)
		lens[i] = len(r)
	}
	uniq, idx := nn.DedupRows(rows)
	tokens := m.proj.Forward(nn.FromRows(uniq))
	x := m.attn.ForwardSegmentsDedup(tokens, idx, lens)
	return m.head.Forward(nn.SegmentMeanRows(x, lens))
}

// trainer lazily builds the model's parallel training state.
func (m *TLP) trainer() *trainer {
	if m.tr == nil {
		m.tr = newTrainer(m.Params(), func() *replica {
			r := newTLPArch(m.seed)
			nn.AliasParams(r.Params(), m.Params())
			return &replica{forward: r.forward, params: r.Params()}
		})
	}
	return m.tr
}

// Predict implements Model: candidates run through the batched no-tape
// inference engine (batch.go), bitwise identical to the per-candidate
// reference path.
func (m *TLP) Predict(t *ir.Task, schs []*schedule.Schedule) []float64 {
	return m.mo.predict(len(schs), func() []float64 {
		return predictBatched(m.pool, m.Params(), m.memo, t, schs, m.freeze)
	})
}

// Fit implements Model: training runs on the data-parallel engine over
// the session pool (rankFit, model.go).
func (m *TLP) Fit(recs []Record, opt FitOptions) FitReport {
	return m.mo.fit(len(recs), func() FitReport {
		return rankFit(recs, opt, m.adam, m.pool, m.seed, m.trainer())
	})
}

// PoolUser is implemented by models whose batched inference can run on a
// caller-provided worker pool. The tuner injects its session pool so one
// Parallelism knob governs every layer of a session.
type PoolUser interface {
	SetPool(p *parallel.Pool)
}
