package costmodel

import (
	"math"
	"math/rand"
	"testing"

	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
	"pruner/internal/simulator"
)

// multiTaskRecords builds a measured record set over n distinct tasks
// (perTask records each), the shape the parallel trainer shards.
func multiTaskRecords(t testing.TB, n, perTask int, seed int64) []Record {
	t.Helper()
	sizes := []int{128, 192, 256, 320, 384, 448, 512, 640}
	var recs []Record
	for i := 0; i < n; i++ {
		task := ir.NewMatMul(sizes[i%len(sizes)], 256, 64*(1+i%4), ir.FP32, i%2)
		g := schedule.NewGenerator(task)
		g.MaxSharedWords = device.T4.SharedPerBlock
		rng := rand.New(rand.NewSource(seed + int64(i)))
		sim := simulator.New(device.T4)
		schs := g.InitPopulation(rng, perTask)
		for j, r := range sim.Measure(task, schs, rng) {
			if r.Valid {
				recs = append(recs, Record{Task: task, Sched: schs[j], Latency: r.Latency})
			}
		}
	}
	if len(recs) < n*perTask/2 {
		t.Fatalf("too few valid records: %d", len(recs))
	}
	return recs
}

// paramsEqual asserts two models' parameters are bitwise identical.
func paramsEqual(t *testing.T, label string, a, b Model) {
	t.Helper()
	pa, pb := a.Params(), b.Params()
	if len(pa) != len(pb) {
		t.Fatalf("%s: param count %d vs %d", label, len(pa), len(pb))
	}
	for i := range pa {
		for j := range pa[i].Data {
			if pa[i].Data[j] != pb[i].Data[j] {
				t.Fatalf("%s: param %d[%d] differs: %g vs %g",
					label, i, j, pa[i].Data[j], pb[i].Data[j])
			}
		}
	}
}

// TestFitDeterministicAcrossWorkers is the training engine's contract
// (the same bar TestPredictBatchedMatchesReference holds for inference):
// fitted parameters are bitwise identical whether the fit runs serially
// or sharded over 8 workers, because group order, subsampling draws and
// the gradient reduction all live on the serial path.
func TestFitDeterministicAcrossWorkers(t *testing.T) {
	recs := multiTaskRecords(t, 6, 24, 1)
	builders := map[string]func() Model{
		"tensetmlp": func() Model { return NewTenSetMLP(5) },
		"pacm":      func() Model { return NewPaCM(6) },
		"tlp":       func() Model { return NewTLP(7) },
	}
	for name, build := range builders {
		serial, wide := build(), build()
		serial.(PoolUser).SetPool(parallel.New(1))
		wide.(PoolUser).SetPool(parallel.New(8))
		repS := serial.Fit(recs, FitOptions{Epochs: 3, Seed: 2})
		repW := wide.Fit(recs, FitOptions{Epochs: 3, Seed: 2})
		if repS != repW {
			t.Fatalf("%s: fit reports differ: %+v vs %+v", name, repS, repW)
		}
		paramsEqual(t, name+" P=1 vs P=8", serial, wide)
	}
}

// TestFitMacroBatchOneMatchesReference pins the engine to the pre-engine
// serial loop: with MacroBatch=1 the averaged-gradient step degenerates
// to one step per group, and the parallel trainer must reproduce the
// reference's parameters bitwise even on a wide pool.
func TestFitMacroBatchOneMatchesReference(t *testing.T) {
	recs := multiTaskRecords(t, 4, 20, 3)
	opt := FitOptions{Epochs: 3, Seed: 4, MacroBatch: 1}

	engine := NewPaCM(9)
	engine.SetPool(parallel.New(8))
	repE := engine.Fit(recs, opt)

	ref := NewPaCM(9)
	repR := rankFitReference(recs, opt, ref.adam, ref.forward, ref.seed)

	if repE != repR {
		t.Fatalf("fit reports differ: engine %+v vs reference %+v", repE, repR)
	}
	paramsEqual(t, "engine(MacroBatch=1) vs reference", engine, ref)
}

// TestFitAppliesLR is the FitOptions.LR regression test: the option used
// to be resolved and then silently dropped, so every fit ran at the
// model's constructed rate. Two fits that differ only in LR must now
// diverge, and LR=0 must keep the constructed rate.
func TestFitAppliesLR(t *testing.T) {
	recs := multiTaskRecords(t, 2, 20, 5)
	fit := func(lr float64) *TLP {
		m := NewTLP(11)
		m.Fit(recs, FitOptions{Epochs: 2, Seed: 6, LR: lr})
		return m
	}
	slow, fast := fit(1e-5), fit(5e-3)
	same := true
	for i, p := range slow.Params() {
		for j := range p.Data {
			if p.Data[j] != fast.Params()[i].Data[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("fits with LR=1e-5 and LR=5e-3 produced identical parameters: FitOptions.LR is still ignored")
	}

	// LR=0 keeps the model's constructed rate (TLP's 1.2e-3), bitwise.
	paramsEqual(t, "LR=0 vs explicit constructed rate", fit(0), fit(1.2e-3))

	// The override must not leak past the fit.
	m := fit(5e-3)
	if m.adam.LR != 1.2e-3 {
		t.Fatalf("LR override leaked: adam.LR = %g after fit", m.adam.LR)
	}
}

// TestFitMaxGroupUnbounded pins the documented unbounded mode: negative
// MaxGroup trains over-128-sample groups in full, while the 0 default
// still subsamples them to 128.
func TestFitMaxGroupUnbounded(t *testing.T) {
	recs := multiTaskRecords(t, 1, 200, 7)
	if len(recs) <= 128 {
		t.Fatalf("need a group larger than the default bound, got %d", len(recs))
	}
	m := NewTenSetMLP(13)
	rep := m.Fit(recs, FitOptions{Epochs: 1, Seed: 8, MaxGroup: -1})
	if rep.SampleVisits != len(recs) {
		t.Fatalf("unbounded fit visited %d of %d samples", rep.SampleVisits, len(recs))
	}
	rep = m.Fit(recs, FitOptions{Epochs: 1, Seed: 8})
	if rep.SampleVisits != 128 {
		t.Fatalf("default fit should subsample to 128, visited %d", rep.SampleVisits)
	}
}

// TestFitReportBatches pins the "trained to zero" vs "never trained"
// distinction: degenerate record sets report zero batches and a NaN
// loss instead of a fake 0.
func TestFitReportBatches(t *testing.T) {
	m := NewTenSetMLP(15)

	rep := m.Fit(nil, FitOptions{Epochs: 2, Seed: 1})
	if rep.Batches != 0 || !math.IsNaN(rep.Loss) {
		t.Fatalf("empty fit: want Batches=0 Loss=NaN, got %+v", rep)
	}

	// Every group below the ranking minimum (one record each): training
	// never runs, and the report must say so.
	recs := multiTaskRecords(t, 3, 6, 9)
	seen := map[string]bool{}
	var singles []Record
	for _, r := range recs {
		if !seen[r.Task.ID] {
			seen[r.Task.ID] = true
			singles = append(singles, r)
		}
	}
	rep = m.Fit(singles, FitOptions{Epochs: 2, Seed: 1})
	if rep.Batches != 0 || !math.IsNaN(rep.Loss) || rep.SampleVisits != 0 {
		t.Fatalf("degenerate fit: want Batches=0 Loss=NaN Visits=0, got %+v", rep)
	}
	if rep.Samples != len(singles) {
		t.Fatalf("degenerate fit should still count distinct samples: %+v", rep)
	}

	// A real fit reports its batch count (epochs x trainable groups).
	rep = m.Fit(recs, FitOptions{Epochs: 2, Seed: 1})
	if rep.Batches != 2*3 {
		t.Fatalf("want 6 batches (2 epochs x 3 groups), got %+v", rep)
	}
	if math.IsNaN(rep.Loss) {
		t.Fatalf("trained fit must report a finite loss: %+v", rep)
	}
}

// TestFitFeatureCacheLowersOnce pins the session feature cache: across
// epochs and repeated Fit calls (the tuner's rounds), each distinct
// record is lowered — and therefore featurized — exactly once.
func TestFitFeatureCacheLowersOnce(t *testing.T) {
	recs := multiTaskRecords(t, 3, 16, 11)
	distinct := map[string]bool{}
	for _, r := range recs {
		distinct[r.Task.ID+"|"+r.Sched.Fingerprint()] = true
	}

	cache := NewFitCache()
	m := NewPaCM(17)
	m.SetPool(parallel.New(4))
	opt := FitOptions{Epochs: 4, Seed: 12, Cache: cache}
	m.Fit(recs, opt)      // round 1
	m.Fit(recs, opt)      // round 2: everything already cached
	m.Fit(recs[:10], opt) // round 3: subset, still cached

	if got := cache.Lowerings(); got != len(distinct) {
		t.Fatalf("lowered %d programs across 3 fits x 4 epochs, want one per distinct record (%d)",
			got, len(distinct))
	}
	if cache.Len() != len(distinct) {
		t.Fatalf("cache holds %d programs, want %d", cache.Len(), len(distinct))
	}
}
