package costmodel

import "pruner/internal/obs"

// ObsUser is implemented by models that can report observability:
// fit/predict spans into the session tracer and latency/volume metrics
// into the registry. Like SetPool/SetMemo, the tuner wires it through a
// type assertion, so plain models stay oblivious. Determinism holds by
// construction: span timing flows through the injected obs.Clock (the
// no-op clock unless a daemon armed a real one) and readings never feed
// back into predictions.
type ObsUser interface {
	// SetObserver attaches the session observer; nil detaches.
	SetObserver(o *obs.Observer)
}

// Metric names the learned models export, shared with scrape tests.
const (
	MetricPredictSeconds    = "pruner_costmodel_predict_seconds"
	MetricFitSeconds        = "pruner_costmodel_fit_seconds"
	MetricPredictCandidates = "pruner_costmodel_predict_candidates_total"
	MetricFitRecords        = "pruner_costmodel_fit_records_total"
)

// modelObs holds one model's prepared instruments so the hot paths skip
// registry lookups. A nil *modelObs (observer never attached) makes both
// wrappers plain calls.
type modelObs struct {
	ob                *obs.Observer
	model             string
	predictSeconds    *obs.Histogram
	fitSeconds        *obs.Histogram
	predictCandidates *obs.Counter
	fitRecords        *obs.Counter
}

// newModelObs prepares instruments for one named model; nil observer
// yields nil (fully disarmed).
func newModelObs(ob *obs.Observer, model string) *modelObs {
	if ob == nil {
		return nil
	}
	r := ob.Reg()
	return &modelObs{
		ob:    ob,
		model: model,
		predictSeconds: r.HistogramVec(MetricPredictSeconds,
			"Cost model batched-inference latency by model.", nil, "model").With(model),
		fitSeconds: r.HistogramVec(MetricFitSeconds,
			"Cost model training-step latency by model.", nil, "model").With(model),
		predictCandidates: r.CounterVec(MetricPredictCandidates,
			"Candidate schedules scored by model.", "model").With(model),
		fitRecords: r.CounterVec(MetricFitRecords,
			"Measurement records consumed by training steps, by model.", "model").With(model),
	}
}

// predict runs f under a costmodel.predict span and observes its latency
// and candidate volume.
func (mo *modelObs) predict(candidates int, f func() []float64) []float64 {
	if mo == nil {
		return f()
	}
	clock := mo.ob.Clock()
	start := clock.Now()
	sp := mo.ob.Trace().Start("costmodel.predict",
		obs.String("model", mo.model), obs.Int("candidates", candidates))
	out := f()
	sp.End()
	mo.predictSeconds.Observe(obs.Seconds(clock, start))
	mo.predictCandidates.Add(float64(candidates))
	return out
}

// fit runs f under a costmodel.fit span and observes its latency and
// record volume.
func (mo *modelObs) fit(records int, f func() FitReport) FitReport {
	if mo == nil {
		return f()
	}
	clock := mo.ob.Clock()
	start := clock.Now()
	sp := mo.ob.Trace().Start("costmodel.fit",
		obs.String("model", mo.model), obs.Int("records", records))
	rep := f()
	sp.End(obs.Int("batches", rep.Batches))
	mo.fitSeconds.Observe(obs.Seconds(clock, start))
	mo.fitRecords.Add(float64(records))
	return rep
}
