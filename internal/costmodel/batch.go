package costmodel

import (
	"sync"

	"pruner/internal/features"
	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
)

// The batched, no-tape inference engine behind every learned model's
// Predict: candidates are lowered once (through the round's memo when the
// tuner injected one), their feature rows concatenate into a few large
// fused GEMMs per chunk, and per-candidate scores fall out of segmented
// reductions. The engine is bitwise identical to the per-candidate
// reference path (predictReference) — pinned by TestPredictBatchedMatchesReference
// — so swapping it in changes verify-stage wall-clock only, never a score.

// MemoUser is implemented by models whose Predict can reuse a
// caller-provided lowering memo. The tuner injects a fresh memo each
// measurement round, so verification shares lowered programs (and their
// cached features) with draft scoring and the buildability pre-filter.
type MemoUser interface {
	SetMemo(m *schedule.Memo)
}

// batchChunk is the number of candidates fused into one engine dispatch.
// Chunks are the unit fanned across the session pool; a fixed size keeps
// the grouping — and therefore every intermediate tensor — independent of
// the worker count. Each candidate's score depends only on its own rows,
// so chunking cannot change results; 64 candidates amortize per-op
// overhead while keeping chunk working sets cache-sized.
const batchChunk = 64

// batchForward scores one chunk of lowered candidates; implementations
// are pure functions of frozen snapshots and safe for concurrent use.
type batchForward func(lws []*schedule.Lowered) []float64

// predictBatched is the engine driver: it freezes the model's parameters
// for the duration, builds the frozen forward once (freeze runs after the
// parameters are frozen, so snapshots see inference-mode weights), then
// fans fixed-size candidate chunks across the pool.
func predictBatched(pool *parallel.Pool, params []*nn.Tensor, memo *schedule.Memo, t *ir.Task, schs []*schedule.Schedule, freeze func() batchForward) []float64 {
	if len(schs) == 0 {
		return nil
	}
	if pool == nil {
		pool = parallel.Default()
	}
	defer nn.FreezeParams(params)()
	fwd := freeze()
	out := make([]float64, len(schs))
	chunks := (len(schs) + batchChunk - 1) / batchChunk
	pool.ForEach(chunks, func(c int) {
		lo := c * batchChunk
		hi := lo + batchChunk
		if hi > len(schs) {
			hi = len(schs)
		}
		lws := make([]*schedule.Lowered, hi-lo)
		for i := range lws {
			lws[i] = memo.Lower(t, schs[lo+i])
		}
		copy(out[lo:hi], fwd(lws))
	})
	return out
}

// scratchPool is a typed free list of inference arenas, one drawn per
// engine dispatch. A plain mutex-guarded slice rather than sync.Pool:
// Put/Get on a sync.Pool box the pointer through an interface (an
// allocation per dispatch — exactly what the arena exists to avoid), and
// the GC may drop pooled arenas between rounds, refuting the warm-state
// guarantee the AllocsPerRun gates measure.
var scratchPool struct {
	mu   sync.Mutex
	free []*nn.Scratch
}

// getScratch pops a warmed arena or builds a fresh one (cold path only:
// the list converges to the pool's worker count).
func getScratch() *nn.Scratch {
	scratchPool.mu.Lock()
	n := len(scratchPool.free)
	if n == 0 {
		scratchPool.mu.Unlock()
		return &nn.Scratch{}
	}
	s := scratchPool.free[n-1]
	scratchPool.free[n-1] = nil
	scratchPool.free = scratchPool.free[:n-1]
	scratchPool.mu.Unlock()
	return s
}

// putScratch rewinds and parks an arena for the next dispatch.
func putScratch(s *nn.Scratch) {
	s.Reset()
	scratchPool.mu.Lock()
	scratchPool.free = append(scratchPool.free, s) //pruner:allow hotalloc — free-list growth is bounded by peak dispatch concurrency, then reused forever
	scratchPool.mu.Unlock()
}

// statementBatch concatenates every candidate's statement feature rows
// (shared cache references, no copies) plus the per-candidate segment
// lengths.
func statementBatch(lws []*schedule.Lowered) ([][]float64, []int) {
	lens := make([]int, len(lws))
	rows := make([][]float64, 0, len(lws)*4)
	for i, lw := range lws {
		r := features.Statement(lw)
		lens[i] = len(r)
		rows = append(rows, r...)
	}
	return rows, lens
}

// scoresOut copies the (N x 1) score column into a plain slice.
func scoresOut(scores *nn.Tensor) []float64 {
	out := make([]float64, scores.R)
	for i := range out {
		out[i] = scores.At(i, 0)
	}
	return out
}

// tensetEngine is the frozen inference program of a TenSetMLP.
type tensetEngine struct {
	embed, head *nn.FrozenMLP
}

func (m *TenSetMLP) freeze() batchForward {
	e := &tensetEngine{embed: m.embed.Freeze(), head: m.head.Freeze()}
	return e.run
}

// run scores one chunk end to end on a pooled arena: feature rows
// concatenate, embed, pool per candidate, head. Steady-state it performs
// no heap allocations beyond the lens/rows headers and the score copy.
//
//pruner:hotpath
func (e *tensetEngine) run(lws []*schedule.Lowered) []float64 {
	s := getScratch()
	defer putScratch(s)
	rows, lens := statementBatch(lws)
	emb := e.embed.ForwardReLURowsIn(s, rows)
	return scoresOut(e.head.ForwardIn(s, nn.SegmentSumRowsIn(s, emb, lens)))
}

// pacmEngine is the frozen inference program of a PaCM, honouring the
// model's branch ablation flags.
type pacmEngine struct {
	useStmt, useDf bool
	stmt           *nn.FrozenMLP
	proj           *nn.FrozenLinear
	attn           *nn.FrozenAttention
	head           *nn.FrozenMLP
}

func (m *PaCM) freeze() batchForward {
	e := &pacmEngine{
		useStmt: m.UseStatement,
		useDf:   m.UseDataflow,
		head:    m.head.Freeze(),
	}
	if m.UseStatement {
		e.stmt = m.stmtEmbed.Freeze()
	}
	if m.UseDataflow {
		e.proj = m.dfProj.Freeze()
		e.attn = m.dfAttn.Freeze()
	}
	return e.run
}

// run scores one chunk on a pooled arena, honouring the branch ablation
// flags; see tensetEngine.run for the allocation contract.
//
//pruner:hotpath
func (e *pacmEngine) run(lws []*schedule.Lowered) []float64 {
	s := getScratch()
	defer putScratch(s)
	var parts *nn.Tensor
	if e.useStmt {
		rows, lens := statementBatch(lws)
		parts = nn.SegmentSumRowsIn(s, e.stmt.ForwardReLURowsIn(s, rows), lens)
	}
	if e.useDf {
		lens := make([]int, len(lws))
		rows := make([][]float64, 0, len(lws)*features.DataflowSeq)
		for i, lw := range lws {
			rows = append(rows, features.Dataflow(lw)...)
			lens[i] = features.DataflowSeq
		}
		// Dataflow sequences are zero-padded to a fixed length, so a large
		// share of rows across the chunk are identical; project distinct
		// rows once and gather.
		uniq, idx := nn.DedupRows(rows)
		tokens := nn.TanhIn(s, e.proj.ForwardRowsIn(s, uniq))
		ctx := nn.SegmentMeanRowsIn(s, e.attn.ForwardSegmentsDedupIn(s, tokens, idx, lens), lens)
		if parts == nil {
			parts = ctx
		} else {
			parts = nn.ConcatColsIn(s, parts, ctx)
		}
	}
	return scoresOut(e.head.ForwardIn(s, parts))
}

// tlpEngine is the frozen inference program of a TLP.
type tlpEngine struct {
	proj *nn.FrozenLinear
	attn *nn.FrozenAttention
	head *nn.FrozenMLP
}

func (m *TLP) freeze() batchForward {
	e := &tlpEngine{proj: m.proj.Freeze(), attn: m.attn.Freeze(), head: m.head.Freeze()}
	return e.run
}

// run scores one chunk on a pooled arena; see tensetEngine.run for the
// allocation contract.
//
//pruner:hotpath
func (e *tlpEngine) run(lws []*schedule.Lowered) []float64 {
	s := getScratch()
	defer putScratch(s)
	lens := make([]int, len(lws))
	rows := make([][]float64, 0, len(lws)*features.PrimSeq)
	for i, lw := range lws {
		r := features.Primitives(lw)
		rows = append(rows, r...)
		lens[i] = len(r)
	}
	// TLP tokens are near-constant one-hots where only split factors vary
	// (the model's documented low feature diversity) — the same token rows
	// recur across the whole chunk, so the projection and the attention's
	// Q/K/V run once per distinct row.
	uniq, idx := nn.DedupRows(rows)
	x := e.attn.ForwardSegmentsDedupIn(s, e.proj.ForwardRowsIn(s, uniq), idx, lens)
	return scoresOut(e.head.ForwardIn(s, nn.SegmentMeanRowsIn(s, x, lens)))
}

// predictReference is the per-candidate baseline the engine replaced: one
// tape-free forward per schedule, fanned over the pool. It is retained as
// the ground truth for the bitwise-equivalence tests and the
// BenchmarkPredictBatched before/after comparison.
func predictReference(pool *parallel.Pool, params []*nn.Tensor, t *ir.Task, schs []*schedule.Schedule, one func(*schedule.Lowered) *nn.Tensor) []float64 {
	if pool == nil {
		pool = parallel.Default()
	}
	defer nn.FreezeParams(params)()
	out := make([]float64, len(schs))
	pool.ForEach(len(schs), func(i int) {
		out[i] = one(schedule.Lower(t, schs[i])).At(0, 0)
	})
	return out
}
