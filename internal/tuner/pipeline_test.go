package tuner

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/measure"
	"pruner/internal/schedule"
	"pruner/internal/search"
	"pruner/internal/simulator"
)

// preRefactorGolden is the resultFingerprint of tuneAt(1) captured at the
// commit immediately before the measurement subsystem / pipelined-engine
// refactor (the serial `for round` loop calling the simulator directly).
// PipelineDepth=1 must keep reproducing it bitwise: the pipeline at depth
// one IS the historical serial loop.
const preRefactorGolden = "cfe0bde7d409aa97"

// resultFingerprint reduces a Result to a stable hex digest covering every
// bit of observable session output: the curve, the full record log, the
// clock, per-task bests and the summary fields. Two Results with the same
// fingerprint are bitwise-identical for the determinism contract's
// purposes.
func resultFingerprint(res *Result) string {
	h := fnv.New64a()
	w := func(format string, args ...any) { fmt.Fprintf(h, format, args...) }
	bits := func(f float64) uint64 { return math.Float64bits(f) }
	w("curve:%d;", len(res.Curve))
	for _, p := range res.Curve {
		w("%d,%d,%x,%x;", p.Round, p.Trials, bits(p.SimSeconds), bits(p.WorkloadLat))
	}
	w("records:%d;", len(res.Records))
	for _, r := range res.Records {
		w("%s,%s,%x;", r.Task.ID, r.Sched.Fingerprint(), bits(r.Latency))
	}
	w("clock:%x,%x,%x;", bits(res.Clock.Exploration), bits(res.Clock.Training), bits(res.Clock.Measurement))
	w("final:%x;warm:%d;int:%v;", bits(res.FinalLatency), res.Warm, res.Interrupted)
	ids := make([]string, 0, len(res.Best))
	for id := range res.Best {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		b := res.Best[id]
		fp := "<nil>"
		if b.Sched != nil {
			fp = b.Sched.Fingerprint()
		}
		w("best:%s,%s,%x;", id, fp, bits(b.Latency))
	}
	return fmt.Sprintf("%016x", h.Sum64())
}

// tunePipeline runs the fixed-seed session of the determinism suite with
// explicit pipeline/measurer settings.
func tunePipeline(depth, parallelism int, m measure.Measurer) *Result {
	return Tune(device.T4, twoTasks(), Options{
		Trials:        60,
		BatchSize:     10,
		Policy:        search.NewPrunerPolicy(),
		Model:         costmodel.NewPaCM(3),
		OnlineTrain:   true,
		Seed:          9,
		Parallelism:   parallelism,
		PipelineDepth: depth,
		Measurer:      m,
	})
}

// TestTunePipelineDepth1MatchesPreRefactorGolden is the refactor's anchor:
// the pipelined engine at depth 1 (explicit or default) reproduces the
// pre-refactor serial loop bit for bit — same curve, records, clock,
// bests.
func TestTunePipelineDepth1MatchesPreRefactorGolden(t *testing.T) {
	if got := resultFingerprint(tuneAt(1)); got != preRefactorGolden {
		t.Fatalf("default-depth session fingerprint %s, pre-refactor golden %s", got, preRefactorGolden)
	}
	if got := resultFingerprint(tunePipeline(1, 1, nil)); got != preRefactorGolden {
		t.Fatalf("depth-1 session fingerprint %s, pre-refactor golden %s", got, preRefactorGolden)
	}
}

// TestTunePipelineDeterministicAcrossParallelism extends the bitwise
// contract to deep pipelines: a fixed depth > 1 produces identical
// results at any worker count, because plan/commit interleaving is fixed
// by the engine, not by measurement timing.
func TestTunePipelineDeterministicAcrossParallelism(t *testing.T) {
	serial := tunePipeline(4, 1, nil)
	equalResults(t, "depth=4 P=1 vs P=8", serial, tunePipeline(4, 8, nil))
	if len(serial.Records) != 60 {
		t.Fatalf("depth-4 session measured %d records, want the full 60-trial budget", len(serial.Records))
	}
}

// TestTunePipelineFleetMatchesSimulator is the fleet's determinism
// contract end to end: the same session measured through a loopback HTTP
// worker fleet is bitwise identical to the in-process simulator adapter,
// at depth 1 and at depth 4 (where several batches ride the wire
// concurrently).
func TestTunePipelineFleetMatchesSimulator(t *testing.T) {
	ws := httptest.NewServer(measure.NewWorker(measure.WorkerOptions{}).Handler())
	defer ws.Close()
	for _, depth := range []int{1, 4} {
		fleet := measure.NewFleet([]string{ws.URL}, measure.FleetOptions{})
		sim := tunePipeline(depth, 4, nil)
		remote := tunePipeline(depth, 4, fleet)
		equalResults(t, fmt.Sprintf("depth=%d simulator vs fleet", depth), sim, remote)
	}
}

// TestTunePipelineTimingIndependent pins that backend latency cannot
// change results: a measurer that sleeps per batch commits the same
// session as the instant one, at depth > 1 where slow batches overlap
// later plans.
func TestTunePipelineTimingIndependent(t *testing.T) {
	fast := tunePipeline(3, 4, nil)
	slow := tunePipeline(3, 4, &slowMeasurer{delay: 3 * time.Millisecond})
	equalResults(t, "depth=3 fast vs slow measurer", fast, slow)
}

// slowMeasurer injects wire-style latency in front of the in-process
// adapter (benchmarks and timing-independence tests). inner is built
// lazily against the session's device via the request.
type slowMeasurer struct {
	delay time.Duration
	inner *measure.Sim
}

func (s *slowMeasurer) Info() measure.Info {
	info := s.adapter().Info()
	info.Name = "slow-simulator"
	return info
}

func (s *slowMeasurer) adapter() *measure.Sim {
	if s.inner == nil {
		s.inner = measure.NewSim(simulator.New(device.T4))
	}
	return s.inner
}

func (s *slowMeasurer) Measure(ctx context.Context, req measure.Request) ([]measure.Result, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return s.adapter().Measure(ctx, req)
}

// blockingMeasurer blocks every batch until its context dies — the
// regression fake for mid-batch cancellation. dispatched is closed when
// the first batch arrives.
type blockingMeasurer struct {
	dispatched chan struct{}
	closed     bool
}

func (b *blockingMeasurer) Info() measure.Info {
	return measure.Info{Name: "blocking", Concurrency: 1}
}

func (b *blockingMeasurer) Measure(ctx context.Context, req measure.Request) ([]measure.Result, error) {
	if !b.closed {
		b.closed = true
		close(b.dispatched)
	}
	<-ctx.Done()
	return nil, ctx.Err()
}

// TestTuneCancelMidBatch is the cancellation-latency regression test:
// with a measurement backend that never returns, DELETE-style context
// cancellation must abort the in-flight batch and return the partial
// session promptly — historically the context was only checked between
// rounds, so a wedged batch wedged the job.
func TestTuneCancelMidBatch(t *testing.T) {
	bm := &blockingMeasurer{dispatched: make(chan struct{})}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan *Result, 1)
	go func() {
		done <- Tune(device.T4, twoTasks(), Options{
			Trials:    40,
			BatchSize: 10,
			Policy:    search.NewPrunerPolicy(),
			Model:     costmodel.NewPaCM(3),
			Seed:      9,
			Ctx:       ctx,
			Measurer:  bm,
		})
	}()
	<-bm.dispatched // a batch is in flight and will never finish on its own
	cancel()
	select {
	case res := <-done:
		if !res.Interrupted {
			t.Fatal("mid-batch cancellation must mark the session interrupted")
		}
		if len(res.Records) != 0 || len(res.Curve) != 0 {
			t.Fatalf("the blocked round must not commit: %d records, %d curve points",
				len(res.Records), len(res.Curve))
		}
	case <-time.After(30 * time.Second):
		t.Fatal("session did not return after mid-batch cancellation")
	}
}

// failAfterMeasurer serves batches through the in-process adapter until
// allow batches have run, then errors — the fake for a fleet whose
// workers die mid-session.
type failAfterMeasurer struct {
	slowMeasurer
	allow   int
	batches int
}

func (f *failAfterMeasurer) Info() measure.Info {
	return measure.Info{Name: "fail-after", Concurrency: 1, MeasureNoise: f.adapter().Info().MeasureNoise}
}

func (f *failAfterMeasurer) Measure(ctx context.Context, req measure.Request) ([]measure.Result, error) {
	f.batches++
	if f.batches > f.allow {
		return nil, fmt.Errorf("all workers down")
	}
	return f.adapter().Measure(ctx, req)
}

// TestTuneBackendFailureStopsWithoutPoisonedRecords pins the
// backend-failure semantics: when the measurement backend dies
// mid-session, the session stops with the committed prefix and
// MeasureErr set — the failed batch is NOT recorded as +Inf failed
// builds, so transient fleet trouble can never be persisted as
// permanent history and poison warm-started sessions.
func TestTuneBackendFailureStopsWithoutPoisonedRecords(t *testing.T) {
	res := Tune(device.T4, twoTasks(), Options{
		Trials:    40,
		BatchSize: 10,
		Policy:    search.NewPrunerPolicy(),
		Model:     costmodel.NewPaCM(3),
		Seed:      9,
		Measurer:  &failAfterMeasurer{allow: 2},
	})
	if !res.Interrupted || res.MeasureErr == nil {
		t.Fatalf("backend failure must interrupt with MeasureErr, got interrupted=%v err=%v",
			res.Interrupted, res.MeasureErr)
	}
	if len(res.Records) != 20 || len(res.Curve) != 2 {
		t.Fatalf("session must keep exactly the committed prefix: %d records, %d curve points (want 20, 2)",
			len(res.Records), len(res.Curve))
	}
	for _, r := range res.Records {
		if math.IsInf(r.Latency, 1) {
			t.Fatal("a fabricated +Inf record leaked from the failed batch")
		}
	}
}

// emptyRoundPolicy proposes a normal random batch except on the rounds in
// skip, where it returns nothing — the fake for the empty-batch
// accounting fix.
type emptyRoundPolicy struct {
	calls int
	skip  map[int]bool
}

func (p *emptyRoundPolicy) Name() string { return "empty-round" }

func (p *emptyRoundPolicy) NextBatch(ctx *search.Context, n int) []*schedule.Schedule {
	call := p.calls
	p.calls++
	if p.skip[call] {
		return nil
	}
	var out []*schedule.Schedule
	for tries := 0; len(out) < n && tries < n*64; tries++ {
		s := ctx.Gen.Random(ctx.RNG)
		if !ctx.MeasuredSet[s.Fingerprint()] {
			ctx.MeasuredSet[s.Fingerprint()] = true // conservative local dedup
			out = append(out, s)
		}
	}
	return out
}

// TestTuneEmptyBatchRoundsAreGapless pins the empty-batch satellite fix:
// a round whose policy proposes nothing still emits its curve point and
// Progress event (Batch=0), so SSE consumers see contiguous round
// numbers instead of jumps.
func TestTuneEmptyBatchRoundsAreGapless(t *testing.T) {
	var events []ProgressEvent
	res := Tune(device.T4, []*ir.Task{twoTasks()[0]}, Options{
		Trials:    30,
		BatchSize: 10,
		Policy:    &emptyRoundPolicy{skip: map[int]bool{1: true}},
		Model:     costmodel.NewRandom(3),
		Seed:      9,
		Progress:  func(ev ProgressEvent) { events = append(events, ev) },
	})
	if len(res.Curve) != 3 {
		t.Fatalf("curve has %d points, want one per round (3)", len(res.Curve))
	}
	if len(events) != 3 {
		t.Fatalf("saw %d progress events, want 3", len(events))
	}
	for i, ev := range events {
		if ev.Round != i || res.Curve[i].Round != i {
			t.Fatalf("round accounting has gaps: event %d has Round=%d, curve Round=%d", i, ev.Round, res.Curve[i].Round)
		}
		if ev.Measurer != "simulator" || ev.InFlight != 1 {
			t.Fatalf("event %d: Measurer=%q InFlight=%d, want simulator/1", i, ev.Measurer, ev.InFlight)
		}
	}
	if events[1].Batch != 0 {
		t.Fatalf("skipped round reported Batch=%d, want 0", events[1].Batch)
	}
	if events[0].Batch != 10 || events[2].Batch != 10 {
		t.Fatalf("full rounds reported batches %d/%d, want 10/10", events[0].Batch, events[2].Batch)
	}
	if len(res.Records) != 20 {
		t.Fatalf("session measured %d records, want 20 (one round skipped)", len(res.Records))
	}
}

// TestTunePipelineReportsInFlight pins the new ProgressEvent pipeline
// fields: at depth 3 the steady-state rounds commit with a full window.
func TestTunePipelineReportsInFlight(t *testing.T) {
	var events []ProgressEvent
	Tune(device.T4, twoTasks(), Options{
		Trials:        60,
		BatchSize:     10,
		Policy:        search.NewPrunerPolicy(),
		Model:         costmodel.NewPaCM(3),
		OnlineTrain:   true,
		Seed:          9,
		PipelineDepth: 3,
		Progress:      func(ev ProgressEvent) { events = append(events, ev) },
	})
	maxInFlight := 0
	for _, ev := range events {
		if ev.InFlight > maxInFlight {
			maxInFlight = ev.InFlight
		}
	}
	if maxInFlight != 3 {
		t.Fatalf("max InFlight %d, want the pipeline depth 3", maxInFlight)
	}
	if last := events[len(events)-1]; last.InFlight != 1 {
		t.Fatalf("drain must shrink the window: last round InFlight %d, want 1", last.InFlight)
	}
}

// BenchmarkTunePipeline sweeps the pipeline depth against a
// latency-injected measurer. The 180 ms per-batch delay mirrors the
// paper's Table 1 measurement share (~44 of ~85 minutes on Orin ≈ half
// of round wall-clock at this benchmark's search cost): at depth 1 the
// session alternates search and waiting; deeper windows overlap the wait
// with the next round's search and the online fit, hiding most of the
// measurement latency even on one core (the wait is I/O-shaped, not CPU
// work). EXPERIMENTS.md records the measured overlap speedup.
func BenchmarkTunePipeline(b *testing.B) {
	for _, depth := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("depth=%d", depth), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tunePipeline(depth, 0, &slowMeasurer{delay: 180 * time.Millisecond})
			}
		})
	}
}
