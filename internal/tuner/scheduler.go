package tuner

import (
	"math"
	"math/rand"
)

// taskScheduler is the gradient-based task scheduler of Ansor that
// Algorithm 1 reuses (line 8): each round it selects the subgraph whose
// additional trials are predicted to reduce the weighted end-to-end
// latency the most, mixing a backward-window improvement rate with a
// power-law forward projection, plus ε-greedy exploration.
//
// The scheduler owns its random stream outright (a SplitSeed derivation of
// the session seed): its ε-greedy draws must not share a *rand.Rand with
// per-task exploration, both because rand.Rand is not goroutine-safe once
// batches fan out and because sharing would make each task's draw sequence
// depend on the scheduling history.
type taskScheduler struct {
	states []*taskState
	rng    *rand.Rand

	// Window is the backward-gradient window in task rounds.
	Window int
	// Alpha blends backward (α) and forward (1-α) gradients.
	Alpha float64
	// Eps is the random-task probability.
	Eps float64
}

func newTaskScheduler(states []*taskState, rng *rand.Rand) *taskScheduler {
	return &taskScheduler{states: states, rng: rng, Window: 3, Alpha: 0.2, Eps: 0.05}
}

// next picks the task to tune this round.
func (s *taskScheduler) next(round int) *taskState {
	// Warm-up: round-robin until every task has been visited once.
	if round < len(s.states) {
		return s.states[round]
	}
	if s.rng.Float64() < s.Eps {
		return s.states[s.rng.Intn(len(s.states))]
	}
	best := -1
	bestGain := math.Inf(-1)
	for i, st := range s.states {
		g := s.gain(st)
		if g > bestGain {
			bestGain = g
			best = i
		}
	}
	return s.states[best]
}

// gain estimates the weighted latency reduction of giving the task one
// more round; higher is better.
func (s *taskScheduler) gain(st *taskState) float64 {
	if math.IsInf(st.best, 1) {
		return math.Inf(1) // unmeasured task: must be visited
	}
	n := len(st.bestHistory)
	// Backward: recent improvement per round over the window.
	backward := 0.0
	if w := s.Window; n > w {
		backward = (st.bestHistory[n-1-w] - st.best) / float64(w)
	} else if n > 0 {
		backward = (st.bestHistory[0] - st.best) / math.Max(1, float64(n))
	}
	// Forward: assume L(t) ~ C * t^-beta => one more round saves
	// roughly beta * L / t.
	const beta = 0.4
	forward := beta * st.best / math.Max(1, float64(n))
	grad := s.Alpha*backward + (1-s.Alpha)*forward
	return float64(st.task.Weight) * grad
}
