// Package tuner implements the paper's Algorithm 1: full-graph tuning of a
// partitioned workload with a gradient-based task scheduler, pluggable
// on-device measurement (internal/measure), online cost-model training,
// and the MoA-Pruner Momentum online Adaptation strategy (§4.3). The
// round loop is a pipelined engine: up to Options.PipelineDepth
// measurement batches are in flight while search and online fits proceed,
// with results committed in strict round order so sessions stay
// deterministic at any worker count (DESIGN.md §9).
package tuner

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"pruner/internal/analyzer"
	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/measure"
	"pruner/internal/nn"
	"pruner/internal/obs"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
	"pruner/internal/search"
	"pruner/internal/simulator"
)

// Adaptation selects how a pretrained cost model is used during online
// tuning.
type Adaptation int

const (
	// AdaptNone starts the cost model from scratch.
	AdaptNone Adaptation = iota
	// AdaptFineTune loads pretrained weights once and fine-tunes online
	// (the paper's "O-F" baseline).
	AdaptFineTune
	// AdaptMoA runs the Momentum online Adaptation: the pretrained model
	// is the Siamese network; each round the target is re-initialised from
	// it, fine-tuned, and fed back with momentum m.
	AdaptMoA
)

// Options configure one tuning session.
type Options struct {
	// Trials is the total measurement budget (paper: 2,000).
	Trials int
	// BatchSize is measurements per round (paper: 10).
	BatchSize int
	// Policy proposes candidates; Model verifies/guides it.
	Policy search.Policy
	Model  costmodel.Model
	// OnlineTrain enables online cost-model updates from collected data.
	OnlineTrain bool
	// TrainEvery spaces online updates (rounds); MoA uses 2 by default.
	TrainEvery int
	// Fit configures each online training call.
	Fit costmodel.FitOptions
	// Replay bounds each incremental online fit: the fit sees the records
	// measured since the last fit plus Replay records sampled from earlier
	// rounds (so per-session training cost grows linearly with rounds, not
	// quadratically). 0 selects 4*BatchSize — 12*BatchSize under MoA,
	// whose every update re-initialises the target from the Siamese and
	// therefore leans harder on the sample — and negative disables
	// replay. Set it very large (it is capped at the history size) to
	// recover the old full-history refit. The sample comes from a
	// dedicated deterministic stream, so sessions stay bitwise
	// reproducible at any Parallelism.
	Replay int
	// Adaptation + Pretrained select the cross-platform strategy.
	Adaptation Adaptation
	Pretrained []*nn.Tensor
	// Momentum is MoA's m (default 0.99).
	Momentum float64
	// TensorCore tunes wmma schedules (MetaSchedule-style sessions).
	TensorCore bool
	// Seed drives all randomness in the session.
	Seed int64
	// Parallelism is the session's worker count for candidate scoring and
	// simulated measurement; <= 0 selects runtime.NumCPU(), 1 runs
	// serially. Results are bitwise identical at any setting: every random
	// draw comes from a deterministic per-task (or scheduler-owned) stream
	// on the serial path, and workers only evaluate pure functions.
	Parallelism int
	// Pool optionally supplies a caller-owned worker budget shared with
	// other concurrent sessions (suite fan-outs), overriding Parallelism;
	// nil builds a session-private pool. Sharing keeps total concurrency
	// at the pool's budget instead of multiplying per session.
	Pool *parallel.Pool
	// Measurer is the measurement backend: the in-process simulator
	// adapter (default), a remote worker fleet, or a test fake. Backends
	// return true latencies; the session draws measurement noise itself at
	// commit time, which keeps results bitwise identical across backends.
	Measurer measure.Measurer
	// PipelineDepth bounds how many measurement rounds may be in flight at
	// once. 1 (the default) reproduces the serial loop bitwise; higher
	// depths overlap round r's measurement with round r+1's search and the
	// round-r online fit, committing results in strict round order so a
	// fixed depth is still bitwise reproducible at any Parallelism and
	// across measurement backends. Ignored when AdaptBudget is set: the
	// controller then owns the window (1..Adapt.MaxDepth), which makes
	// adaptive sessions bitwise identical at any requested depth.
	PipelineDepth int
	// AdaptBudget enables the calibration-driven budget controller
	// (adapt.go, DESIGN.md §14): per-task predicted-vs-measured rank
	// error — tracked from commit-ordered results only — shrinks or
	// grows the verify/measure batch, the LSE draft budget handed to the
	// policy, and the effective pipeline depth, spending trials where
	// the model is uncertain and skipping verification where it is
	// calibrated. Off (the default), the engine is bitwise identical to
	// the fixed-budget loop.
	AdaptBudget bool
	// Adapt bounds the controller; zero fields select defaults. Only
	// read when AdaptBudget is set.
	Adapt AdaptConfig
	// Sim overrides the simulator (tests, noise ablations); nil builds the
	// default. Kept as a compatibility alias: unless Measurer is set, the
	// session wraps Sim in the in-process measure.Sim adapter.
	Sim *simulator.Simulator
	// Cost overrides the simulated-clock constants; zero uses defaults.
	Cost simulator.CostParams
	// DraftConfig tweaks the Symbol-based Analyzer (penalty ablations).
	DraftConfig analyzer.Config
	// Ctx optionally bounds the session: cancellation is observed inside
	// the measurement stage (in-flight batches abort mid-batch) and
	// between pipeline stages; the session stops cleanly and the partial
	// Result (with Interrupted set) is still valid. nil never cancels.
	// Cancellation never changes what an uncancelled prefix of committed
	// rounds computes, so the determinism contract is unaffected.
	Ctx context.Context
	// Progress, when non-nil, is invoked on the session goroutine after
	// every measurement round (serially, in round order). Callbacks must
	// not retain the event's schedule pointers past the call if they
	// mutate them (they never should); blocking callbacks slow tuning but
	// cannot reorder it.
	Progress func(ProgressEvent)
	// Obs, when non-nil, receives the session's observability: plan /
	// measure / commit spans into its tracer and round/stage latency,
	// batch-size and trial metrics into its registry. The engine times
	// everything through the observer's injected Clock — a no-op clock
	// reads constant zero — and readings flow only into spans and
	// metrics, never into results, so a fully-armed observer leaves
	// session fingerprints bitwise unchanged. nil disables observability
	// at the cost of a few nil checks per round.
	Obs *obs.Observer
	// WarmStart seeds the session with prior measurements (a record log or
	// store history, the cross-session MoA story): each record lands in
	// its task's measured set (so the policy never re-proposes it), its
	// latency competes for the task best, and — when OnlineTrain is set —
	// one initial Fit over the warm records primes the cost model before
	// round 0. Records whose task is not part of this session are ignored.
	// Warm records charge neither measurement time nor trials — those
	// were paid for by an earlier session — though the priming fit
	// itself charges training time like any online update. Identical
	// WarmStart slices keep the session bitwise reproducible at any
	// Parallelism.
	WarmStart []costmodel.Record
}

func (o Options) withDefaults(dev *device.Device) Options {
	if o.Trials == 0 {
		o.Trials = 2000
	}
	if o.BatchSize == 0 {
		o.BatchSize = 10
	}
	if o.TrainEvery == 0 {
		if o.Adaptation == AdaptMoA {
			o.TrainEvery = 2
		} else {
			o.TrainEvery = 1
		}
	}
	if o.Momentum == 0 {
		// The paper's m = 0.99 assumes ~100 Siamese updates (200 rounds,
		// update every 2). Shorter sessions scale the momentum so the
		// Siamese absorbs a comparable total amount of target progress:
		// m = 0.99^(100/updates).
		updates := float64(o.Trials) / float64(o.BatchSize) / float64(o.TrainEvery)
		if updates < 1 {
			updates = 1
		}
		o.Momentum = math.Pow(0.99, math.Min(32, 100/updates))
	}
	if o.Sim == nil {
		o.Sim = simulator.New(dev)
	}
	if o.Measurer == nil {
		o.Measurer = measure.NewSim(o.Sim)
	}
	if o.PipelineDepth <= 0 {
		o.PipelineDepth = 1
	}
	if o.Cost == (simulator.CostParams{}) {
		o.Cost = simulator.DefaultCostParams(dev)
	}
	if o.Fit.Epochs == 0 {
		o.Fit.Epochs = 8
	}
	if o.Replay == 0 {
		if o.Adaptation == AdaptMoA {
			o.Replay = 12 * o.BatchSize
		} else {
			o.Replay = 4 * o.BatchSize
		}
	}
	if o.Adaptation == AdaptMoA {
		// Each MoA update re-initialises the target from the Siamese, so
		// the fine-tune must re-absorb its training slice — the fresh
		// batch plus the (MoA-enlarged) replay sample — every time; it
		// gets twice the epochs, paid for by MoA's halved update
		// frequency. History beyond the sample reaches the model through
		// the momentum-blended Siamese.
		o.Fit.Epochs *= 2
	}
	return o
}

// taskState tracks per-task tuning progress.
type taskState struct {
	task        *ir.Task
	gen         *schedule.Generator
	records     []costmodel.Record
	measuredSet map[string]bool
	best        float64
	bestSched   *schedule.Schedule
	trials      int
	// bestHistory[r] is the best latency after this task's r-th round.
	bestHistory []float64
	// rng is the task-owned random stream (seed split by task index), so
	// one task's draws never depend on how other tasks interleave.
	rng *rand.Rand
}

// ProgressEvent is one round of session progress, delivered to
// Options.Progress as it happens (the server's SSE feed and any other
// live observer consume these).
type ProgressEvent struct {
	// Round / Rounds locate the event within the session.
	Round  int
	Rounds int
	// TaskID / TaskName identify the subgraph tuned this round.
	TaskID   string
	TaskName string
	// Batch is the number of measurements taken this round; Trials the
	// session total so far (warm-start records excluded).
	Batch  int
	Trials int
	// TaskBest is the task's best latency (s) after this round; +Inf
	// until the task has a valid measurement.
	TaskBest float64
	// SimSeconds / WorkloadLat mirror the curve point appended this round.
	SimSeconds  float64
	WorkloadLat float64
	// Measurer names the backend that executed this round's batch
	// ("simulator", "fleet"), so observers can see where a job's time
	// goes.
	Measurer string
	// InFlight is the number of measurement batches (this one included)
	// that were in flight when the round committed — the pipeline window's
	// utilisation; 1 on the serial path.
	InFlight int
	// RoundMillis is the wall-clock duration of the round in
	// milliseconds. The deterministic engine never reads the wall clock
	// and always leaves it zero; the serving layer stamps it at the
	// commit boundary (between successive Progress callbacks) before
	// forwarding events to SSE consumers.
	RoundMillis int64
	// CalibError is the controller's smoothed predicted-vs-measured rank
	// error for this round's task after the commit (0 perfect ranking,
	// 0.5 random). Only meaningful when Options.AdaptBudget is set;
	// fixed-budget sessions leave it zero.
	CalibError float64
	// VerifyBudget / DraftBudget / TargetDepth are the controller's
	// decisions in force when this round was planned: the measured-batch
	// bound, the LSE |S_spec| handed to the policy (0 when the policy
	// exposes no draft budget), and the pipeline-window bound. All zero
	// when adaptation is off.
	VerifyBudget int
	DraftBudget  int
	TargetDepth  int
}

// CurvePoint is one sample of the tuning curve.
type CurvePoint struct {
	Round       int
	Trials      int
	SimSeconds  float64 // simulated wall-clock since session start
	WorkloadLat float64 // sum over tasks of weight * best latency (s)
}

// BestEntry is the tuned result for one task.
type BestEntry struct {
	Task    *ir.Task
	Sched   *schedule.Schedule
	Latency float64
}

// Result summarises a tuning session.
type Result struct {
	Curve []CurvePoint
	Best  map[string]BestEntry
	Clock simulator.Clock
	// FinalLatency is the workload latency (s) after the last round.
	FinalLatency float64
	// Records is the full measurement log (online dataset). The first
	// Warm entries are the accepted warm-start records; Records[Warm:]
	// are the measurements this session actually took (what a caller
	// should persist to avoid re-logging history).
	Records []costmodel.Record
	// Warm counts the leading warm-start records in Records.
	Warm int
	// Interrupted reports that the session stopped before the measurement
	// budget was spent — Options.Ctx was cancelled, or the measurement
	// backend failed (MeasureErr). The Result covers the completed prefix
	// of rounds.
	Interrupted bool
	// MeasureErr is the measurement-backend error that stopped the
	// session, if any (a fleet whose workers all refused a batch). The
	// failed batch and everything after it are NOT in Records: a backend
	// failure is transient infrastructure trouble, and recording it as
	// +Inf "failed builds" would poison the durable store and every
	// warm-started session after it.
	MeasureErr error
}

// WorkloadLatencyAt returns the earliest simulated time the curve reaches
// a workload latency <= target, or +Inf if never.
func (r *Result) WorkloadLatencyAt(target float64) float64 {
	for _, p := range r.Curve {
		if p.WorkloadLat <= target {
			return p.SimSeconds
		}
	}
	return math.Inf(1)
}

// schedulerStream is the scheduler's SplitSeed stream index; task streams
// use the task index, so any negative constant keeps them disjoint.
const schedulerStream = -2

// trainStream owns the online trainer's replay-sampling draws, disjoint
// from every task stream and the scheduler stream.
const trainStream = -3

// Tune runs Algorithm 1 over the partitioned task set on one device.
func Tune(dev *device.Device, tasks []*ir.Task, opt Options) *Result {
	opt = opt.withDefaults(dev)
	pool := opt.Pool
	if pool == nil {
		pool = parallel.New(opt.Parallelism)
	}
	if pu, ok := opt.Model.(costmodel.PoolUser); ok {
		pu.SetPool(pool)
	}
	if ou, ok := opt.Model.(costmodel.ObsUser); ok {
		ou.SetObserver(opt.Obs)
	}
	eo := newEngineObs(opt.Obs)
	draft := &analyzer.Analyzer{Dev: dev, Cfg: opt.DraftConfig}

	// The adaptive controller (nil under fixed budgets — every use below
	// is gated, so the fixed path is untouched down to the clock charge).
	var ctrl *adaptController
	if opt.AdaptBudget {
		specBase := 0
		if sb, ok := opt.Policy.(search.SpecBudgeter); ok {
			specBase = sb.SpecBudget()
		}
		ctrl = newAdaptController(opt.Adapt, opt.BatchSize, specBase)
	}

	states := make([]*taskState, len(tasks))
	for i, t := range tasks {
		gen := schedule.NewGenerator(t)
		gen.MaxThreads = dev.MaxThreads
		gen.MaxSharedWords = dev.SharedPerBlock
		gen.TensorCore = opt.TensorCore && t.TensorCoreEligible()
		gen.WMMA = dev.WMMA
		if gen.WMMA == 0 {
			gen.WMMA = 16
		}
		states[i] = &taskState{
			task:        t,
			gen:         gen,
			measuredSet: map[string]bool{},
			best:        math.Inf(1),
			rng:         rand.New(rand.NewSource(parallel.SplitSeed(opt.Seed, int64(i)))),
		}
	}

	res := &Result{Best: map[string]BestEntry{}}

	// Warm-start: fold prior records into each task's state before any
	// round runs. Dedup by schedule fingerprint so a record replayed from
	// several logs seeds once; rebind the task pointer to the session's
	// instance so downstream grouping (cost-model fits key on Task) sees
	// one identity. The order of opt.WarmStart fully determines the
	// seeded state, which keeps warm sessions deterministic.
	var allRecords []costmodel.Record
	stateByID := make(map[string]*taskState, len(states))
	for _, st := range states {
		stateByID[st.task.ID] = st
	}
	for _, r := range opt.WarmStart {
		if r.Task == nil || r.Sched == nil {
			continue
		}
		st, ok := stateByID[r.Task.ID]
		if !ok {
			continue // history covers more networks than this session
		}
		fp := r.Sched.Fingerprint()
		if st.measuredSet[fp] {
			continue
		}
		st.measuredSet[fp] = true
		rec := costmodel.Record{Task: st.task, Sched: r.Sched, Latency: r.Latency}
		st.records = append(st.records, rec)
		allRecords = append(allRecords, rec)
		if !math.IsInf(rec.Latency, 1) && !math.IsNaN(rec.Latency) && rec.Latency < st.best {
			st.best = rec.Latency
			st.bestSched = rec.Sched
		}
	}
	res.Warm = len(allRecords)

	sched := newTaskScheduler(states,
		rand.New(rand.NewSource(parallel.SplitSeed(opt.Seed, schedulerStream))))

	// MoA: the Siamese starts as a copy of the pretrained weights; plain
	// fine-tuning loads them into the target once.
	var siamese []*nn.Tensor
	switch opt.Adaptation {
	case AdaptMoA:
		if opt.Pretrained == nil {
			panic("tuner: AdaptMoA requires pretrained weights")
		}
		siamese = cloneParams(opt.Pretrained)
		nn.CopyParams(opt.Model.Params(), siamese)
	case AdaptFineTune:
		if opt.Pretrained == nil {
			panic("tuner: AdaptFineTune requires pretrained weights")
		}
		nn.CopyParams(opt.Model.Params(), opt.Pretrained)
	case AdaptNone:
		// The model trains from scratch online.
	}

	// Online training is incremental: each fit sees the records measured
	// since the last fit plus a seeded replay sample of older history, so
	// per-session training cost grows linearly with rounds instead of
	// quadratically (the full-history refit this replaces). The training
	// feature cache is session-scoped — records are append-only and
	// features deterministic — so each record is lowered and featurized
	// once per session, not once per epoch x round.
	opt.Fit.Cache = costmodel.NewFitCache()
	trainedTo := 0
	trainRNG := rand.New(rand.NewSource(parallel.SplitSeed(opt.Seed, trainStream)))

	// trainOnline is Algorithm 1 line 13 (and the warm-start priming fit):
	// MoA re-initialises the target from the Siamese before fitting and
	// feeds the result back with momentum; other adaptations fit in place.
	trainOnline := func() {
		fresh := allRecords[trainedTo:]
		fitRecs := fresh
		if history := allRecords[:trainedTo]; len(history) > 0 && opt.Replay > 0 {
			k := opt.Replay
			if k > len(history) {
				k = len(history)
			}
			fitRecs = make([]costmodel.Record, 0, len(fresh)+k)
			fitRecs = append(fitRecs, fresh...)
			for _, i := range trainRNG.Perm(len(history))[:k] {
				fitRecs = append(fitRecs, history[i])
			}
		}
		trainedTo = len(allRecords)
		var report costmodel.FitReport
		if opt.Adaptation == AdaptMoA {
			nn.CopyParams(opt.Model.Params(), siamese)
			report = opt.Model.Fit(fitRecs, opt.Fit)
			nn.MomentumUpdate(siamese, opt.Model.Params(), opt.Momentum)
		} else {
			report = opt.Model.Fit(fitRecs, opt.Fit)
		}
		res.Clock.Training += float64(report.SampleVisits) * opt.Cost.TrainPerSample * opt.Model.Costs().TrainX
	}
	canTrain := opt.OnlineTrain && opt.Model.Params() != nil

	// Warm history primes the cost model before the first round, so the
	// verify stage starts from the transferred fit instead of random
	// weights — the cross-session analogue of MoA's cross-platform
	// adaptation.
	if canTrain && len(allRecords) > 0 {
		trainOnline()
	}

	// ------------------------------------------------------------------
	// Pipelined round engine. Rounds flow through three stages — plan
	// (task selection + draft/verify search), measure (the pluggable
	// backend, in a background goroutine), commit (noise, records, online
	// fit, curve/progress) — with at most PipelineDepth rounds in flight.
	//
	// Determinism: plan and commit both run on this goroutine in a fixed
	// interleaving (commit the oldest round exactly when the window is
	// full, then plan the next), so every random draw — scheduler picks,
	// policy draws, measurement noise, replay sampling — happens in a
	// deterministic order for a fixed depth, no matter how many workers
	// the pool has or how long the backend takes. Background measurement
	// is a pure function of the dispatched batch. Depth 1 interleaves
	// plan(r), commit(r), plan(r+1): exactly the historical serial loop.
	ctx := opt.Ctx
	if ctx == nil {
		ctx = context.Background() //pruner:allow ctxflow — documented nil-Ctx default (Options.Ctx); the session then runs to completion
	}
	minfo := opt.Measurer.Info()
	// mctx aborts in-flight batches the moment the session stops —
	// whether by cancellation or by the engine returning.
	mctx, mcancel := context.WithCancel(ctx)
	defer mcancel()

	type inflight struct {
		round   int
		st      *taskState
		batch   []*schedule.Schedule
		done    chan struct{}
		results []measure.Result
		err     error
		// planStart / measureStart are observer-clock readings taken at
		// plan entry and batch dispatch; msp is the open measure span.
		// All three live on the session goroutine only.
		planStart    int64
		measureStart int64
		msp          *obs.ActiveSpan
		// pred holds the verifier's scores for the dispatched batch and
		// verifyWant / draftWant / depthAt the controller's decisions in
		// force at plan time; all zero under fixed budgets.
		pred       []float64
		verifyWant int
		draftWant  int
		depthAt    int
		// calibErr is the task's smoothed rank error after this commit.
		calibErr float64
	}

	rounds := (opt.Trials + opt.BatchSize - 1) / opt.BatchSize
	// plannedTrials caps adaptive batches at the session budget. The
	// fixed path keeps its historical accounting (rounds*BatchSize may
	// overshoot Trials by up to BatchSize-1), preserved bit-for-bit.
	plannedTrials := 0

	// plan runs round selection and the draft/verify search, pre-marks the
	// batch as measured (so deeper pipelines never propose a schedule that
	// is already in flight) and dispatches the batch to the backend. It
	// reports false when the session was cancelled mid-search: a truncated
	// batch must not be dispatched, or cancellation timing would change
	// committed results.
	plan := func(round int) (*inflight, bool) {
		planStart := eo.clock.Now()
		psp := eo.tr.Start("tuner.plan", obs.Int("round", round))
		st := sched.next(round)

		// One lowering memo per round: draft scoring, the buildability
		// pre-filter, cost-model verification and in-process measurement
		// all resolve candidates through it, so each is lowered and
		// featurized exactly once. Scoped to the round so entries die with
		// the round's candidate pool.
		memo := schedule.NewMemo()
		if mu, ok := opt.Model.(costmodel.MemoUser); ok {
			mu.SetMemo(memo)
		}
		sctx := &search.Context{
			Ctx:         ctx,
			Task:        st.task,
			Gen:         st.gen,
			RNG:         st.rng,
			Pool:        pool,
			Measured:    st.records,
			MeasuredSet: st.measuredSet,
			Model:       opt.Model,
			Draft:       draft,
			Clock:       &res.Clock,
			Cost:        opt.Cost,
			Memo:        memo,
		}
		want, verifyWant, draftWant, depthAt := opt.BatchSize, 0, 0, 0
		if ctrl != nil {
			want = ctrl.verifyBudget(st.task.ID)
			if rem := opt.Trials - plannedTrials; want > rem {
				want = rem
			}
			verifyWant = want
			draftWant = ctrl.draftBudget(st.task.ID)
			depthAt = ctrl.targetDepth()
			sctx.DraftBudget = draftWant
		}
		batch := opt.Policy.NextBatch(sctx, want)
		var pred []float64
		if ctrl != nil && len(batch) > 1 {
			// Capture the verifier's scores for exactly the dispatched
			// batch while the round memo still holds its features; the
			// commit folds them against measured latencies. Charged like
			// any verify-stage inference (adaptive sessions only, so the
			// fixed clock is untouched).
			pred = opt.Model.Predict(st.task, batch)
			mc := opt.Model.Costs()
			res.Clock.Exploration += float64(len(batch)) *
				(opt.Cost.FeatureExtract*mc.FeatureX + opt.Cost.ModelInfer*mc.InferX)
		}
		if mu, ok := opt.Model.(costmodel.MemoUser); ok {
			mu.SetMemo(nil) // do not retain the round's programs
		}
		if ctx.Err() != nil {
			return nil, false
		}
		for _, s := range batch {
			st.measuredSet[s.Fingerprint()] = true
		}
		plannedTrials += len(batch)
		psp.End(obs.String("task", st.task.ID), obs.Int("batch", len(batch)))
		eo.planSeconds.Observe(obs.Seconds(eo.clock, planStart))
		eo.verifyBatch.Observe(float64(len(batch)))
		f := &inflight{round: round, st: st, batch: batch, done: make(chan struct{}), planStart: planStart,
			pred: pred, verifyWant: verifyWant, draftWant: draftWant, depthAt: depthAt}
		if len(batch) == 0 {
			close(f.done)
			return f, true
		}
		f.measureStart = eo.clock.Now()
		f.msp = eo.tr.Start("tuner.measure",
			obs.Int("round", round), obs.String("measurer", minfo.Name), obs.Int("batch", len(batch)))
		//pruner:allow rawgo — the pipelined round engine's single in-flight measurement; determinism is pinned by commit order (rounds fold in strictly by round index), not by when this goroutine finishes
		go func() {
			f.results, f.err = opt.Measurer.Measure(mctx, measure.Request{
				Device: dev.Name,
				Task:   st.task,
				Batch:  batch,
				Memo:   memo,
				Pool:   pool,
			})
			if f.err == nil && len(f.results) != len(f.batch) {
				f.err = fmt.Errorf("tuner: measurer %q returned %d results for a batch of %d",
					minfo.Name, len(f.results), len(f.batch))
			}
			close(f.done)
		}()
		return f, true
	}

	// commit folds one measured round into the session, in strict round
	// order: measurement noise (drawn from the task stream, one per valid
	// result in index order — the historical sequence), records, bests,
	// the simulated clock, the online fit, and the curve/progress point.
	// Empty-batch rounds still emit their curve point and Progress event
	// (Batch=0) so round accounting is gapless for SSE consumers. Returns
	// false when the session was cancelled before the batch finished.
	commit := func(f *inflight, inFlight int) bool {
		select {
		case <-f.done:
		case <-ctx.Done():
			return false
		}
		if len(f.batch) > 0 {
			f.msp.End(obs.Bool("err", f.err != nil))
			eo.measureSeconds.Observe(obs.Seconds(eo.clock, f.measureStart))
		}
		commitStart := eo.clock.Now()
		csp := eo.tr.Start("tuner.commit",
			obs.Int("round", f.round), obs.Int("in_flight", inFlight))
		st := f.st
		if len(f.batch) > 0 {
			if f.err != nil {
				if ctx.Err() != nil {
					return false
				}
				// Backend failure (a fleet whose workers all refused the
				// batch): stop the session with the completed prefix.
				// The failed batch is dropped, not recorded — fabricating
				// +Inf "failed build" records for transient
				// infrastructure trouble would persist to the store and
				// poison every warm-started session after it.
				res.MeasureErr = f.err
				return false
			}
			measure.ApplyNoise(f.results, st.rng, minfo.MeasureNoise)
			lats := make([]float64, len(f.results))
			for i, r := range f.results {
				lats[i] = r.Latency
				rec := costmodel.Record{Task: st.task, Sched: f.batch[i], Latency: r.Latency}
				st.records = append(st.records, rec)
				allRecords = append(allRecords, rec)
				if r.Valid && r.Latency < st.best {
					st.best = r.Latency
					st.bestSched = f.batch[i]
				}
			}
			res.Clock.ChargeMeasurements(opt.Cost, lats)
			st.trials += len(f.batch)
			st.bestHistory = append(st.bestHistory, st.best)
			if ctrl != nil {
				// Feed the calibration tracker from the committed (noise
				// -applied) latencies — the only place results exist in
				// round order, which is what keeps every later control
				// decision reproducible.
				f.calibErr = ctrl.observe(st.task.ID, f.pred, lats)
			}

			// Online cost-model update (Algorithm 1 line 13).
			if canTrain && (f.round+1)%opt.TrainEvery == 0 {
				trainOnline()
			}
		}

		res.Curve = append(res.Curve, CurvePoint{
			Round:       f.round,
			Trials:      totalTrials(states),
			SimSeconds:  res.Clock.Total(),
			WorkloadLat: workloadLatency(states),
		})
		if opt.Progress != nil {
			opt.Progress(ProgressEvent{
				Round:        f.round,
				Rounds:       rounds,
				TaskID:       st.task.ID,
				TaskName:     st.task.Name,
				Batch:        len(f.batch),
				Trials:       totalTrials(states),
				TaskBest:     st.best,
				SimSeconds:   res.Clock.Total(),
				WorkloadLat:  workloadLatency(states),
				Measurer:     minfo.Name,
				InFlight:     inFlight,
				CalibError:   f.calibErr,
				VerifyBudget: f.verifyWant,
				DraftBudget:  f.draftWant,
				TargetDepth:  f.depthAt,
			})
		}
		if ctrl != nil {
			eo.calibError.Observe(f.calibErr)
			eo.verifyBudget.Set(float64(f.verifyWant))
			eo.draftBudget.Set(float64(f.draftWant))
			eo.targetDepth.Set(float64(f.depthAt))
		}
		csp.End(obs.Int("batch", len(f.batch)))
		eo.commitSeconds.Observe(obs.Seconds(eo.clock, commitStart))
		eo.roundSeconds.Observe(obs.Seconds(eo.clock, f.planStart))
		eo.rounds.Inc()
		eo.trials.Add(float64(len(f.batch)))
		eo.inFlight.Set(float64(inFlight))
		return true
	}

	// Under adaptation the controller owns the window bound: it is
	// re-read before every step, so depth follows session confidence
	// (committing the oldest rounds first whenever it shrinks below the
	// current occupancy). The bound derives only from committed state,
	// so the plan/commit interleaving — and therefore every result — is
	// identical at any Parallelism, requested depth, or backend.
	maxDepth := opt.PipelineDepth
	if ctrl != nil {
		maxDepth = ctrl.cfg.MaxDepth
	}
	window := make([]*inflight, 0, maxDepth)
	for planned := 0; planned < rounds || len(window) > 0; {
		depth := opt.PipelineDepth
		if ctrl != nil {
			depth = ctrl.targetDepth()
		}
		if len(window) >= depth || planned >= rounds {
			f := window[0]
			window = window[:copy(window, window[1:])]
			if !commit(f, len(window)+1) {
				res.Interrupted = true
				break
			}
			continue
		}
		if ctx.Err() != nil {
			res.Interrupted = true
			break
		}
		f, ok := plan(planned)
		if !ok {
			res.Interrupted = true
			break
		}
		window = append(window, f)
		planned++
	}

	for _, st := range states {
		res.Best[st.task.ID] = BestEntry{Task: st.task, Sched: st.bestSched, Latency: st.best}
	}
	res.FinalLatency = workloadLatency(states)
	res.Records = allRecords
	return res
}

// workloadLatency is the weighted sum of per-task bests; +Inf until every
// task has one valid measurement.
func workloadLatency(states []*taskState) float64 {
	var total float64
	for _, st := range states {
		if math.IsInf(st.best, 1) {
			return math.Inf(1)
		}
		total += float64(st.task.Weight) * st.best
	}
	return total
}

func totalTrials(states []*taskState) int {
	n := 0
	for _, st := range states {
		n += st.trials
	}
	return n
}

func cloneParams(ps []*nn.Tensor) []*nn.Tensor {
	out := make([]*nn.Tensor, len(ps))
	for i, p := range ps {
		out[i] = p.Clone()
	}
	return out
}

// SnapshotParams clones a model's current weights (e.g. after offline
// pretraining) for later use as Pretrained.
func SnapshotParams(m costmodel.Model) []*nn.Tensor {
	return cloneParams(m.Params())
}
