package tuner

import (
	"bytes"
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/measure"
	"pruner/internal/obs"
	"pruner/internal/search"
)

// tuneObserved is tunePipeline with the session armed with an observer.
func tuneObserved(depth, parallelism int, m measure.Measurer, ob *obs.Observer) *Result {
	return Tune(device.T4, twoTasks(), Options{
		Trials:        60,
		BatchSize:     10,
		Policy:        search.NewPrunerPolicy(),
		Model:         costmodel.NewPaCM(3),
		OnlineTrain:   true,
		Seed:          9,
		Parallelism:   parallelism,
		PipelineDepth: depth,
		Measurer:      m,
		Obs:           ob,
	})
}

// TestObservabilityPreservesGoldenFingerprint is the tentpole's hard
// constraint: arming a session with a REAL-clock observer (metrics +
// tracing fully enabled, actual wall-time flowing through every span)
// must leave the session's output bitwise unchanged — clock readings go
// into instruments only, never into tuning decisions.
func TestObservabilityPreservesGoldenFingerprint(t *testing.T) {
	// Depth 1 against the pre-refactor golden, observer armed.
	ob := obs.New(obs.RealClock(), 0)
	if got := resultFingerprint(tuneObserved(1, 1, nil, ob)); got != preRefactorGolden {
		t.Fatalf("observed depth-1 fingerprint %s, pre-refactor golden %s", got, preRefactorGolden)
	}

	// The observer genuinely collected: spans landed in the sink, the
	// round counter moved, and the exposition is valid under the strict
	// parser — observability being free must not mean it being inert.
	if ob.Sink().Total() == 0 {
		t.Fatal("armed session produced no spans")
	}
	if v, ok := ob.Reg().Value(MetricRounds); !ok || v == 0 {
		t.Fatalf("armed session never incremented %s (got %v, %v)", MetricRounds, v, ok)
	}
	var buf bytes.Buffer
	if err := ob.Reg().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if err := obs.ValidateText(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("armed session's exposition is malformed: %v\n%s", err, buf.String())
	}

	// Deep pipeline: armed and unarmed sessions are bitwise identical to
	// each other at any parallelism (the golden pins depth 1 only).
	armed := resultFingerprint(tuneObserved(4, 4, nil, obs.New(obs.RealClock(), 0)))
	plain := resultFingerprint(tunePipeline(4, 4, nil))
	if armed != plain {
		t.Fatalf("depth-4 fingerprints diverge: armed %s, unarmed %s", armed, plain)
	}
}
