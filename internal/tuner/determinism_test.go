package tuner

import (
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/search"
)

// tuneAt runs a fixed-seed Pruner session at the given worker count. The
// model is rebuilt per call: Fit mutates it, so sharing one across runs
// would leak state between the compared sessions.
func tuneAt(parallelism int) *Result {
	return Tune(device.T4, twoTasks(), Options{
		Trials:      60,
		BatchSize:   10,
		Policy:      search.NewPrunerPolicy(),
		Model:       costmodel.NewPaCM(3),
		OnlineTrain: true,
		Seed:        9,
		Parallelism: parallelism,
	})
}

// TestTuneDeterministicAcrossParallelism is the parallel runtime's
// contract: the same Seed yields a bitwise-identical Result whether the
// session runs serially or on 8 workers, because every random draw comes
// from a task-owned (or scheduler-owned) stream on the serial path and
// workers evaluate only pure functions.
func TestTuneDeterministicAcrossParallelism(t *testing.T) {
	serial := tuneAt(1)
	wide := tuneAt(8)

	if len(serial.Curve) != len(wide.Curve) {
		t.Fatalf("curve length differs: %d vs %d", len(serial.Curve), len(wide.Curve))
	}
	for i := range serial.Curve {
		a, b := serial.Curve[i], wide.Curve[i]
		if a != b {
			t.Fatalf("curve[%d] differs: %+v vs %+v", i, a, b)
		}
	}
	if serial.FinalLatency != wide.FinalLatency {
		t.Fatalf("final latency differs: %g vs %g", serial.FinalLatency, wide.FinalLatency)
	}
	if serial.Clock != wide.Clock {
		t.Fatalf("simulated clock differs: %+v vs %+v", serial.Clock, wide.Clock)
	}
	if len(serial.Best) != len(wide.Best) {
		t.Fatalf("best map size differs: %d vs %d", len(serial.Best), len(wide.Best))
	}
	for id, a := range serial.Best {
		b, ok := wide.Best[id]
		if !ok {
			t.Fatalf("task %s missing from parallel result", id)
		}
		if a.Latency != b.Latency {
			t.Fatalf("task %s best latency differs: %g vs %g", id, a.Latency, b.Latency)
		}
		if (a.Sched == nil) != (b.Sched == nil) {
			t.Fatalf("task %s best schedule presence differs", id)
		}
		if a.Sched != nil && a.Sched.Fingerprint() != b.Sched.Fingerprint() {
			t.Fatalf("task %s best schedule differs: %s vs %s",
				id, a.Sched.Fingerprint(), b.Sched.Fingerprint())
		}
	}
	if len(serial.Records) != len(wide.Records) {
		t.Fatalf("record count differs: %d vs %d", len(serial.Records), len(wide.Records))
	}
	for i := range serial.Records {
		a, b := serial.Records[i], wide.Records[i]
		if a.Task.ID != b.Task.ID || a.Latency != b.Latency ||
			a.Sched.Fingerprint() != b.Sched.Fingerprint() {
			t.Fatalf("record %d differs: {%s %g} vs {%s %g}",
				i, a.Task.ID, a.Latency, b.Task.ID, b.Latency)
		}
	}
}

// TestTuneDefaultParallelismMatchesSerial pins the default (NumCPU)
// configuration to the same contract, since that is what the facade runs.
func TestTuneDefaultParallelismMatchesSerial(t *testing.T) {
	def := tuneAt(0) // <= 0 selects runtime.NumCPU()
	serial := tuneAt(1)
	if def.FinalLatency != serial.FinalLatency || def.Clock != serial.Clock {
		t.Fatalf("default-parallelism session diverged: lat %g vs %g, clock %+v vs %+v",
			def.FinalLatency, serial.FinalLatency, def.Clock, serial.Clock)
	}
}
