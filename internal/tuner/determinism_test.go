package tuner

import (
	"context"
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/search"
)

// tuneAt runs a fixed-seed Pruner session at the given worker count. The
// model is rebuilt per call: Fit mutates it, so sharing one across runs
// would leak state between the compared sessions.
func tuneAt(parallelism int) *Result {
	return Tune(device.T4, twoTasks(), Options{
		Trials:      60,
		BatchSize:   10,
		Policy:      search.NewPrunerPolicy(),
		Model:       costmodel.NewPaCM(3),
		OnlineTrain: true,
		Seed:        9,
		Parallelism: parallelism,
	})
}

// TestTuneDeterministicAcrossParallelism is the parallel runtime's
// contract: the same Seed yields a bitwise-identical Result whether the
// session runs serially or on 8 workers, because every random draw comes
// from a task-owned (or scheduler-owned) stream on the serial path and
// workers evaluate only pure functions.
func TestTuneDeterministicAcrossParallelism(t *testing.T) {
	equalResults(t, "P=1 vs P=8", tuneAt(1), tuneAt(8))
}

// equalResults is the bitwise-reproducibility assertion shared by the
// determinism tests.
func equalResults(t *testing.T, label string, serial, wide *Result) {
	t.Helper()
	if len(serial.Curve) != len(wide.Curve) {
		t.Fatalf("%s: curve length differs: %d vs %d", label, len(serial.Curve), len(wide.Curve))
	}
	for i := range serial.Curve {
		if serial.Curve[i] != wide.Curve[i] {
			t.Fatalf("%s: curve[%d] differs: %+v vs %+v", label, i, serial.Curve[i], wide.Curve[i])
		}
	}
	if serial.FinalLatency != wide.FinalLatency || serial.Clock != wide.Clock || serial.Warm != wide.Warm {
		t.Fatalf("%s: summary differs: lat %g vs %g, warm %d vs %d, clock %+v vs %+v", label,
			serial.FinalLatency, wide.FinalLatency, serial.Warm, wide.Warm, serial.Clock, wide.Clock)
	}
	if len(serial.Records) != len(wide.Records) {
		t.Fatalf("%s: record count differs: %d vs %d", label, len(serial.Records), len(wide.Records))
	}
	for i := range serial.Records {
		a, b := serial.Records[i], wide.Records[i]
		if a.Task.ID != b.Task.ID || a.Latency != b.Latency ||
			a.Sched.Fingerprint() != b.Sched.Fingerprint() {
			t.Fatalf("%s: record %d differs: {%s %g} vs {%s %g}",
				label, i, a.Task.ID, a.Latency, b.Task.ID, b.Latency)
		}
	}
	if len(serial.Best) != len(wide.Best) {
		t.Fatalf("%s: best map size differs: %d vs %d", label, len(serial.Best), len(wide.Best))
	}
	for id, a := range serial.Best {
		b, ok := wide.Best[id]
		if !ok {
			t.Fatalf("%s: task %s missing from parallel result", label, id)
		}
		if a.Latency != b.Latency {
			t.Fatalf("%s: task %s best latency differs: %g vs %g", label, id, a.Latency, b.Latency)
		}
		if (a.Sched == nil) != (b.Sched == nil) {
			t.Fatalf("%s: task %s best schedule presence differs", label, id)
		}
		if a.Sched != nil && a.Sched.Fingerprint() != b.Sched.Fingerprint() {
			t.Fatalf("%s: task %s best schedule differs: %s vs %s",
				label, id, a.Sched.Fingerprint(), b.Sched.Fingerprint())
		}
	}
}

// TestTuneFittedParamsDeterministicAcrossParallelism extends the
// contract through the parallel training engine: after identical
// sessions at P=1 and P=8, the online-trained cost model's parameters —
// not just the search results downstream of them — are bitwise
// identical, because per-group gradients reduce in fixed group order no
// matter which worker computed them.
func TestTuneFittedParamsDeterministicAcrossParallelism(t *testing.T) {
	run := func(parallelism int) (*Result, *costmodel.PaCM) {
		m := costmodel.NewPaCM(3)
		res := Tune(device.T4, twoTasks(), Options{
			Trials:      60,
			BatchSize:   10,
			Policy:      search.NewPrunerPolicy(),
			Model:       m,
			OnlineTrain: true,
			Seed:        9,
			Parallelism: parallelism,
		})
		return res, m
	}
	serialRes, serialM := run(1)
	wideRes, wideM := run(8)
	equalResults(t, "fitted P=1 vs P=8", serialRes, wideRes)
	ps, pw := serialM.Params(), wideM.Params()
	for i := range ps {
		for j := range ps[i].Data {
			if ps[i].Data[j] != pw[i].Data[j] {
				t.Fatalf("fitted param %d[%d] differs across parallelism: %g vs %g",
					i, j, ps[i].Data[j], pw[i].Data[j])
			}
		}
	}
}

// TestTuneWarmStartDeterministicAcrossParallelism extends the contract to
// warm-started sessions (the daemon's resume path): a fixed seed with
// identical warm-start records is bitwise reproducible at any parallelism,
// and warm-starting actually changes the session (the warm records are in
// the measured set, so the search proceeds differently than from scratch).
func TestTuneWarmStartDeterministicAcrossParallelism(t *testing.T) {
	warm := tuneAt(1).Records
	if len(warm) == 0 {
		t.Fatal("no warm records produced")
	}
	run := func(parallelism int) *Result {
		return Tune(device.T4, twoTasks(), Options{
			Trials:      40,
			BatchSize:   10,
			Policy:      search.NewPrunerPolicy(),
			Model:       costmodel.NewPaCM(3),
			OnlineTrain: true,
			Seed:        9,
			Parallelism: parallelism,
			WarmStart:   warm,
		})
	}
	serial := run(1)
	if serial.Warm == 0 {
		t.Fatal("warm-start records were not accepted")
	}
	if len(serial.Records) <= serial.Warm {
		t.Fatalf("no new measurements: %d records, %d warm", len(serial.Records), serial.Warm)
	}
	equalResults(t, "warm P=1 vs P=8", serial, run(8))
	equalResults(t, "warm repeat", serial, run(1))
}

// TestTuneContextCancellation pins the cancellation semantics: a
// pre-cancelled context stops before any round and marks the Result
// interrupted; an un-cancelled context changes nothing.
func TestTuneContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res := Tune(device.T4, twoTasks(), Options{
		Trials:    40,
		BatchSize: 10,
		Policy:    search.NewPrunerPolicy(),
		Model:     costmodel.NewPaCM(3),
		Seed:      9,
		Ctx:       ctx,
	})
	if !res.Interrupted {
		t.Fatal("cancelled session should report Interrupted")
	}
	if len(res.Curve) != 0 || len(res.Records) != 0 {
		t.Fatalf("pre-cancelled session ran %d rounds", len(res.Curve))
	}

	live := Tune(device.T4, twoTasks(), Options{
		Trials:    20,
		BatchSize: 10,
		Policy:    search.NewPrunerPolicy(),
		Model:     costmodel.NewPaCM(3),
		Seed:      9,
		Ctx:       context.Background(),
	})
	if live.Interrupted {
		t.Fatal("live context should not interrupt")
	}
	if len(live.Curve) == 0 {
		t.Fatal("live session produced no rounds")
	}
}

// TestTuneDefaultParallelismMatchesSerial pins the default (NumCPU)
// configuration to the same contract, since that is what the facade runs.
func TestTuneDefaultParallelismMatchesSerial(t *testing.T) {
	def := tuneAt(0) // <= 0 selects runtime.NumCPU()
	serial := tuneAt(1)
	if def.FinalLatency != serial.FinalLatency || def.Clock != serial.Clock {
		t.Fatalf("default-parallelism session diverged: lat %g vs %g, clock %+v vs %+v",
			def.FinalLatency, serial.FinalLatency, def.Clock, serial.Clock)
	}
}
