package tuner

import (
	"context"
	"math"
	"net/http/httptest"
	"testing"
	"time"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/measure"
	"pruner/internal/nn"
	"pruner/internal/schedule"
	"pruner/internal/search"
	"pruner/internal/simulator"
)

func TestRankError(t *testing.T) {
	inf := math.Inf(1)
	cases := []struct {
		name   string
		scores []float64
		lats   []float64
		want   float64
	}{
		{"perfect", []float64{3, 2, 1}, []float64{0.1, 0.2, 0.3}, 0},
		{"inverted", []float64{1, 2, 3}, []float64{0.1, 0.2, 0.3}, 1},
		{"partially-discordant", []float64{3, 1, 2}, []float64{0.1, 0.2, 0.3}, 1.0 / 3},
		{"tied-scores", []float64{1, 1}, []float64{0.1, 0.2}, 0.5},
		{"tied-lats-no-signal", []float64{1, 2}, []float64{0.1, 0.1}, -1},
		{"single", []float64{1}, []float64{0.1}, -1},
		{"empty", nil, nil, -1},
		{"mismatched", []float64{1, 2}, []float64{0.1}, -1},
		{"nan-skipped", []float64{2, 1}, []float64{math.NaN(), 0.2}, -1},
		// A failed build (+Inf) ranks last: scoring it highest is one
		// discordant pair against each finite latency.
		{"inf-ranks-last", []float64{3, 2, 1}, []float64{inf, 0.1, 0.2}, 2.0 / 3},
		{"both-inf-no-signal", []float64{2, 1}, []float64{inf, inf}, -1},
	}
	for _, tc := range cases {
		if got := rankError(tc.scores, tc.lats); math.Abs(got-tc.want) > 1e-12 {
			t.Errorf("%s: rankError = %g, want %g", tc.name, got, tc.want)
		}
	}
}

func TestAdaptConfigDefaults(t *testing.T) {
	c := AdaptConfig{}.withDefaults(10, 512)
	if c.MinBatch != 5 || c.MaxDepth != 2 || c.MaxSpec != 2048 {
		t.Fatalf("defaults for batch=10 spec=512: %+v", c)
	}
	if c.LowErr != 0.08 || c.HighErr != 0.33 || c.Alpha != 0.3 {
		t.Fatalf("threshold defaults: %+v", c)
	}
	// Tiny batches floor MinBatch at 2.
	if c := (AdaptConfig{}).withDefaults(3, 0); c.MinBatch != 2 {
		t.Fatalf("MinBatch floor: %+v", c)
	}
	// An explicit MaxSpec below the policy's own budget is raised to it:
	// confidence must never narrow the draft set.
	if c := (AdaptConfig{MaxSpec: 8}).withDefaults(10, 40); c.MaxSpec != 40 {
		t.Fatalf("MaxSpec must not undercut the policy budget: %+v", c)
	}
	// No draft budget -> no spec ceiling to invent.
	if c := (AdaptConfig{}).withDefaults(10, 0); c.MaxSpec != 0 {
		t.Fatalf("MaxSpec without a SpecBudgeter policy: %+v", c)
	}
	// Explicit bounds are clamped into the valid range.
	if c := (AdaptConfig{MinBatch: 99}).withDefaults(10, 0); c.MinBatch != 10 {
		t.Fatalf("MinBatch clamp: %+v", c)
	}
	if c := (AdaptConfig{LowErr: 0.3, HighErr: 0.1}).withDefaults(10, 0); c.HighErr <= c.LowErr {
		t.Fatalf("HighErr must stay above LowErr: %+v", c)
	}
}

func TestAdaptControllerLaws(t *testing.T) {
	ctrl := newAdaptController(AdaptConfig{MinBatch: 2, MaxDepth: 4}, 10, 512)
	// Before any observation: zero confidence, full budgets, serial depth.
	if got := ctrl.verifyBudget("t0"); got != 10 {
		t.Fatalf("unseen verify budget %d, want the full batch 10", got)
	}
	if got := ctrl.draftBudget("t0"); got != 512 {
		t.Fatalf("unseen draft budget %d, want the full 512", got)
	}
	if got := ctrl.targetDepth(); got != 1 {
		t.Fatalf("unseen target depth %d, want 1", got)
	}
	// Perfectly-ranked rounds earn the floors and the full window.
	for i := 0; i < 12; i++ {
		ctrl.observe("t0", []float64{3, 2, 1}, []float64{0.1, 0.2, 0.3})
	}
	if got := ctrl.verifyBudget("t0"); got != 2 {
		t.Fatalf("calibrated verify budget %d, want MinBatch 2", got)
	}
	if got := ctrl.draftBudget("t0"); got != 2048 {
		t.Fatalf("calibrated draft budget %d, want MaxSpec 2048", got)
	}
	if got := ctrl.targetDepth(); got != 4 {
		t.Fatalf("calibrated target depth %d, want MaxDepth 4", got)
	}
	// An uncalibrated sibling task keeps its own full budget.
	if got := ctrl.verifyBudget("t1"); got != 10 {
		t.Fatalf("per-task isolation broken: t1 budget %d, want 10", got)
	}
	// Inverted rounds drive the error back up and budgets recover.
	for i := 0; i < 12; i++ {
		ctrl.observe("t0", []float64{1, 2, 3}, []float64{0.1, 0.2, 0.3})
	}
	if got := ctrl.verifyBudget("t0"); got != 10 {
		t.Fatalf("drifted verify budget %d, want full batch 10", got)
	}
	// No-signal rounds leave the trackers untouched.
	before := ctrl.taskCalib("t0")
	ctrl.observe("t0", []float64{1}, []float64{0.1})
	if ctrl.taskCalib("t0") != before {
		t.Fatal("a signal-free round must not move the tracker")
	}
}

// oracleModel scores candidates with the simulator's true (noise-free)
// latency, negated — a perfectly-calibrated verifier. Unbuildable
// schedules score -Inf, matching their +Inf measured latency. It is the
// "well-modeled task" fixture for the adaptive-budget tests.
type oracleModel struct{ sim *simulator.Simulator }

func (o *oracleModel) Name() string { return "oracle" }

func (o *oracleModel) Predict(t *ir.Task, schs []*schedule.Schedule) []float64 {
	out := make([]float64, len(schs))
	for i, s := range schs {
		lat, err := o.sim.Latency(t, s)
		if err != nil {
			out[i] = math.Inf(-1)
			continue
		}
		out[i] = -lat
	}
	return out
}

func (o *oracleModel) Fit([]costmodel.Record, costmodel.FitOptions) costmodel.FitReport {
	return costmodel.FitReport{}
}
func (o *oracleModel) Params() []*nn.Tensor   { return nil }
func (o *oracleModel) Costs() costmodel.Costs { return costmodel.Costs{} }

// tuneAdaptive runs the fixed-seed adaptive session of the determinism
// suite: tunePipeline's session with AdaptBudget on. The requested depth
// is deliberately part of the matrix — adaptation must make it
// irrelevant.
func tuneAdaptive(depth, parallelism int, m measure.Measurer) *Result {
	return Tune(device.T4, twoTasks(), Options{
		Trials:        60,
		BatchSize:     10,
		Policy:        search.NewPrunerPolicy(),
		Model:         costmodel.NewPaCM(3),
		OnlineTrain:   true,
		Seed:          9,
		Parallelism:   parallelism,
		PipelineDepth: depth,
		Measurer:      m,
		AdaptBudget:   true,
	})
}

// TestAdaptBudgetOffMatchesGolden pins that the controller is inert when
// disabled: an Options literal that spells AdaptBudget: false (and an
// explicit zero Adapt bounds struct) reproduces the pre-refactor golden
// fingerprint bit for bit.
func TestAdaptBudgetOffMatchesGolden(t *testing.T) {
	res := Tune(device.T4, twoTasks(), Options{
		Trials:        60,
		BatchSize:     10,
		Policy:        search.NewPrunerPolicy(),
		Model:         costmodel.NewPaCM(3),
		OnlineTrain:   true,
		Seed:          9,
		Parallelism:   1,
		PipelineDepth: 1,
		AdaptBudget:   false,
		Adapt:         AdaptConfig{},
	})
	if got := resultFingerprint(res); got != preRefactorGolden {
		t.Fatalf("AdaptBudget=false fingerprint %s, pre-refactor golden %s", got, preRefactorGolden)
	}
}

// TestTuneAdaptiveDeterministicMatrix is the adaptive determinism
// contract: one session, bitwise identical across Parallelism AND the
// requested PipelineDepth (the controller owns the window, so the
// requested depth cannot matter) AND measurement backends.
func TestTuneAdaptiveDeterministicMatrix(t *testing.T) {
	base := tuneAdaptive(1, 1, nil)
	equalResults(t, "adaptive depth=1,P=1 vs depth=4,P=8", base, tuneAdaptive(4, 8, nil))
	equalResults(t, "adaptive depth=1,P=1 vs depth=16,P=2", base, tuneAdaptive(16, 2, nil))

	ws := httptest.NewServer(measure.NewWorker(measure.WorkerOptions{}).Handler())
	defer ws.Close()
	fleet := measure.NewFleet([]string{ws.URL}, measure.FleetOptions{})
	equalResults(t, "adaptive simulator vs fleet", base, tuneAdaptive(8, 4, fleet))
}

// adaptComparison runs the fixed/adaptive pair over the oracle verifier —
// the well-modeled case the controller is built for.
func adaptComparison(adaptive bool, m measure.Measurer) *Result {
	return Tune(device.T4, twoTasks(), Options{
		Trials:      60,
		BatchSize:   10,
		Policy:      search.NewPrunerPolicy(),
		Model:       &oracleModel{sim: simulator.New(device.T4)},
		Seed:        9,
		Parallelism: 1,
		Measurer:    m,
		AdaptBudget: adaptive,
	})
}

// TestTuneAdaptiveMeasuresFewer is the perf claim behind the subsystem:
// with a well-calibrated verifier, the adaptive session measures
// substantially fewer candidates at the same Trials budget without
// losing final quality.
func TestTuneAdaptiveMeasuresFewer(t *testing.T) {
	fixed := adaptComparison(false, nil)
	adaptive := adaptComparison(true, nil)
	if len(adaptive.Records) >= len(fixed.Records) {
		t.Fatalf("adaptive session measured %d candidates, fixed %d — no savings",
			len(adaptive.Records), len(fixed.Records))
	}
	if math.IsInf(adaptive.FinalLatency, 1) {
		t.Fatal("adaptive session never covered the workload")
	}
	// Equal-or-better quality at equal budget is the acceptance bar on
	// well-modeled tasks; allow float-level slack only.
	if adaptive.FinalLatency > fixed.FinalLatency*1.02 {
		t.Fatalf("adaptive final latency %g worse than fixed %g",
			adaptive.FinalLatency, fixed.FinalLatency)
	}
	// The controller's decisions must surface in progress events.
	var sawShrunk, sawDeep bool
	res := Tune(device.T4, twoTasks(), Options{
		Trials:      60,
		BatchSize:   10,
		Policy:      search.NewPrunerPolicy(),
		Model:       &oracleModel{sim: simulator.New(device.T4)},
		Seed:        9,
		Parallelism: 1,
		AdaptBudget: true,
		Progress: func(ev ProgressEvent) {
			if ev.VerifyBudget > 0 && ev.VerifyBudget < 10 {
				sawShrunk = true
			}
			if ev.TargetDepth > 1 {
				sawDeep = true
			}
		},
	})
	if !sawShrunk || !sawDeep {
		t.Fatalf("controller state missing from progress events (shrunk=%v deep=%v, %d records)",
			sawShrunk, sawDeep, len(res.Records))
	}
}

// perCandidateMeasurer charges wire latency per schedule rather than per
// batch, so a shrunken verify batch actually saves wall-clock — the
// shape of real measurement cost (each candidate runs on hardware).
type perCandidateMeasurer struct {
	slowMeasurer
	per time.Duration
}

func (p *perCandidateMeasurer) Info() measure.Info {
	info := p.adapter().Info()
	info.Name = "per-candidate"
	return info
}

func (p *perCandidateMeasurer) Measure(ctx context.Context, req measure.Request) ([]measure.Result, error) {
	select {
	case <-time.After(time.Duration(len(req.Batch)) * p.per):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return p.adapter().Measure(ctx, req)
}

// BenchmarkTuneAdaptive is the fixed-vs-adaptive sweep CI runs via
// `make bench-smoke`: the same oracle-verified session against a
// per-candidate-latency backend, fixed budgets vs the controller. The
// measured-candidate count is reported as a metric; the wall-clock gap
// is the verification the controller skipped plus the pipeline overlap
// it earned.
func BenchmarkTuneAdaptive(b *testing.B) {
	for _, adaptive := range []bool{false, true} {
		name := "fixed"
		if adaptive {
			name = "adaptive"
		}
		b.Run(name, func(b *testing.B) {
			var measured int
			for i := 0; i < b.N; i++ {
				res := adaptComparison(adaptive, &perCandidateMeasurer{per: 2 * time.Millisecond})
				measured = len(res.Records)
			}
			b.ReportMetric(float64(measured), "measured")
		})
	}
}
