// Calibration-driven budget control (DESIGN.md §14). The paper's
// draft-then-verify split spends a fixed verify/measure budget per round
// regardless of how well the cost model is actually ranking candidates.
// The adaptive controller closes that loop: a per-task calibration
// tracker records the predicted-vs-measured rank error of every
// committed round, and three deterministic control laws spend the
// session's budget where the model is uncertain — a poorly-calibrated
// task keeps the full measured batch, the policy's own LSE draft budget
// and a shallow pipeline; a well-calibrated one shrinks the measured
// batch toward its floor while *widening* the cheap draft set and
// deepening the pipeline, trusting verification it has earned.
//
// Determinism: the tracker is fed exclusively from commit-ordered
// results on the session goroutine, so every control decision is a pure
// function of the committed prefix of rounds. Adaptive sessions are
// therefore bitwise reproducible at any Parallelism, any requested
// PipelineDepth (the controller owns the window when enabled) and
// across measurement backends — the same contract the fixed engine
// holds for a fixed depth.
package tuner

import "math"

// AdaptConfig bounds the budget controller enabled by
// Options.AdaptBudget. The zero value selects defaults for every field.
type AdaptConfig struct {
	// MinBatch is the smallest per-round measured batch the controller
	// may shrink to (default BatchSize/2, floor 2). A fully-calibrated
	// task still measures MinBatch candidates per round, so calibration
	// keeps being re-checked and drift is caught.
	MinBatch int
	// MaxDepth is the deepest pipeline window the controller may grow to
	// (default 2). Depth rises with session-level confidence: staleness
	// from in-flight rounds only costs quality when the model's ranking
	// is moving, which is exactly when calibration error is high.
	MaxDepth int
	// MaxSpec is the largest LSE draft budget (|S_spec|) handed to the
	// policy (default four times the policy's own budget). Drafting is the
	// cheap half of draft-then-verify, so the controller spends
	// confidence in the opposite direction from the verify batch: a
	// calibrated verifier earns a *wider* speculation set for the model
	// to rank, which is what keeps quality flat while the measured batch
	// shrinks. Only meaningful for policies that expose a draft budget
	// via search.SpecBudgeter.
	MaxSpec int
	// LowErr / HighErr map smoothed rank error onto confidence: error at
	// or below LowErr (default 0.08) is full confidence, at or above
	// HighErr (default LowErr+0.25) is none, linear in between. A random
	// ranker sits at 0.5, a perfect one at 0. The LowErr default is
	// deliberately strict — a batch of ten has 45 pairs, so 0.08 allows
	// only a handful of discordant pairs: budgets shrink only for tasks
	// whose verifier ranks near-perfectly, and a merely-decent model
	// keeps the full fixed budget (see the bert_tiny row of the
	// "adaptive" experiment for what the strictness buys).
	LowErr  float64
	HighErr float64
	// Alpha is the EWMA weight of the newest round's error (default 0.3).
	Alpha float64
}

func (c AdaptConfig) withDefaults(batch, specBase int) AdaptConfig {
	if c.MinBatch <= 0 {
		c.MinBatch = batch / 2
		if c.MinBatch < 2 {
			c.MinBatch = 2
		}
	}
	if c.MinBatch > batch {
		c.MinBatch = batch
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 2
	}
	if c.MaxSpec <= 0 && specBase > 0 {
		c.MaxSpec = 4 * specBase
	}
	if specBase > 0 && c.MaxSpec < specBase {
		c.MaxSpec = specBase
	}
	if c.LowErr <= 0 {
		c.LowErr = 0.08
	}
	if c.HighErr <= c.LowErr {
		c.HighErr = c.LowErr + 0.25
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	return c
}

// calibState is one EWMA rank-error tracker. Until the first observed
// round (seen == false) confidence is defined as zero, so sessions start
// at the full fixed budgets and must earn every reduction.
type calibState struct {
	err  float64
	seen bool
}

func (s *calibState) fold(e, alpha float64) {
	if !s.seen {
		s.err, s.seen = e, true
		return
	}
	s.err = (1-alpha)*s.err + alpha*e
}

// adaptController owns the three budget laws. It lives on the session
// goroutine: observe() is called only from commit (in strict round
// order) and the budget methods only from plan, so no locking is needed
// and every decision is reproducible from the committed prefix.
type adaptController struct {
	cfg      AdaptConfig
	batch    int // nominal verify budget per round (Options.BatchSize)
	specBase int // the policy's own draft budget; 0 when it has none
	session  calibState
	tasks    map[string]*calibState // keyed access only, never ranged
}

func newAdaptController(cfg AdaptConfig, batch, specBase int) *adaptController {
	return &adaptController{
		cfg:      cfg.withDefaults(batch, specBase),
		batch:    batch,
		specBase: specBase,
		tasks:    map[string]*calibState{},
	}
}

// confidence maps a tracker onto [0, 1]: how much of its budget
// reduction this tracker has earned.
func (a *adaptController) confidence(s calibState) float64 {
	if !s.seen {
		return 0
	}
	c := (a.cfg.HighErr - s.err) / (a.cfg.HighErr - a.cfg.LowErr)
	return math.Min(1, math.Max(0, c))
}

func (a *adaptController) taskCalib(id string) calibState {
	if st := a.tasks[id]; st != nil {
		return *st
	}
	return calibState{}
}

// verifyBudget is control law (a): the measured-batch bound for the
// task's next round, from BatchSize (no confidence) down to MinBatch.
func (a *adaptController) verifyBudget(taskID string) int {
	c := a.confidence(a.taskCalib(taskID))
	return a.cfg.MinBatch + int(math.Round((1-c)*float64(a.batch-a.cfg.MinBatch)))
}

// draftBudget is control law (b): the LSE |S_spec| handed to the policy,
// from the policy's own budget up to MaxSpec; 0 (no override) when the
// policy exposes no draft budget. Confidence widens the draft set — the
// cheap half of the loop — so the fewer candidates law (a) lets through
// to measurement are picked from a larger model-ranked pool.
func (a *adaptController) draftBudget(taskID string) int {
	if a.specBase <= 0 {
		return 0
	}
	c := a.confidence(a.taskCalib(taskID))
	return a.specBase + int(math.Round(c*float64(a.cfg.MaxSpec-a.specBase)))
}

// targetDepth is control law (c): the pipeline-window bound, from 1 (no
// session-level confidence) up to MaxDepth. Driven by the session
// tracker, not a per-task one, because the window is shared.
func (a *adaptController) targetDepth() int {
	c := a.confidence(a.session)
	return 1 + int(math.Round(c*float64(a.cfg.MaxDepth-1)))
}

// observe folds one committed round's predicted-vs-measured ranking into
// the task and session trackers and returns the task's smoothed error.
// Rounds with no rank signal (fewer than two comparable measurements)
// leave both trackers untouched.
func (a *adaptController) observe(taskID string, scores, lats []float64) float64 {
	st := a.tasks[taskID]
	if st == nil {
		st = &calibState{}
		a.tasks[taskID] = st
	}
	if e := rankError(scores, lats); e >= 0 {
		st.fold(e, a.cfg.Alpha)
		a.session.fold(e, a.cfg.Alpha)
	}
	return st.err
}

// rankError is the calibration signal: the discordant fraction of all
// comparable pairs between the verifier's scores (higher is better) and
// the measured latencies (lower is better), ties counting half. 0 is a
// perfectly-ranked batch, 0.5 a random one, 1 a perfectly inverted one.
// Pairs with equal, NaN or both-+Inf latencies carry no signal and are
// skipped; a single +Inf (failed build) ranks last and does count — a
// model that scores unbuildable schedules highly is miscalibrated.
// Returns -1 when no comparable pair exists.
func rankError(scores, lats []float64) float64 {
	if len(scores) != len(lats) {
		return -1
	}
	var disc, total float64
	for i := range lats {
		for j := i + 1; j < len(lats); j++ {
			li, lj := lats[i], lats[j]
			if li == lj || math.IsNaN(li) || math.IsNaN(lj) {
				continue
			}
			total++
			switch si, sj := scores[i], scores[j]; {
			case si == sj:
				disc += 0.5
			case (si > sj) != (li < lj):
				disc++
			}
		}
	}
	if total == 0 {
		return -1
	}
	return disc / total
}
