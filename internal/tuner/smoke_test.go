package tuner

import (
	"math"
	"math/rand"
	"testing"

	"pruner/internal/analyzer"
	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
	"pruner/internal/search"
	"pruner/internal/simulator"
)

// TestSmokePrunerTuning runs a short Draft-then-Verify session on a single
// GEMM and checks that tuning actually improves over random sampling.
func TestSmokePrunerTuning(t *testing.T) {
	dev := device.A100
	task := ir.NewMatMul(512, 512, 512, ir.FP32, 1)

	res := Tune(dev, []*ir.Task{task}, Options{
		Trials:      60,
		BatchSize:   10,
		Policy:      search.NewPrunerPolicy(),
		Model:       costmodel.NewPaCM(7),
		OnlineTrain: true,
		Seed:        1,
	})
	best := res.Best[task.ID]
	if best.Sched == nil || math.IsInf(best.Latency, 1) {
		t.Fatalf("no valid schedule found")
	}

	// Random baseline with the same measurement budget.
	sim := simulator.New(dev)
	rng := rand.New(rand.NewSource(2))
	gen := schedule.NewGenerator(task)
	randBest := math.Inf(1)
	for i := 0; i < 60; i++ {
		if lat, err := sim.Latency(task, gen.Random(rng)); err == nil && lat < randBest {
			randBest = lat
		}
	}
	t.Logf("pruner best=%.4gms random best=%.4gms curve0=%.4g final=%.4g",
		best.Latency*1e3, randBest*1e3, res.Curve[0].WorkloadLat*1e3, res.FinalLatency*1e3)
	if best.Latency > randBest {
		t.Errorf("pruner (%.4g) should beat random sampling (%.4g)", best.Latency, randBest)
	}
	if res.Clock.Total() <= 0 {
		t.Errorf("simulated clock did not advance")
	}
}

// TestSmokeLSEBeatsRandomDraft checks the draft stage: the LSE's S_spec
// should contain better true-latency schedules than a random set of the
// same size.
func TestSmokeLSEBeatsRandomDraft(t *testing.T) {
	dev := device.A100
	task := ir.NewMatMul(1024, 1024, 512, ir.FP32, 0)
	sim := simulator.New(dev)
	rng := rand.New(rand.NewSource(3))
	gen := schedule.NewGenerator(task)

	ctx := &search.Context{
		Task:        task,
		Gen:         gen,
		RNG:         rng,
		MeasuredSet: map[string]bool{},
		Draft:       analyzer.New(dev),
	}
	params := search.DefaultLSEParams()
	params.SpecSize = 128
	params.Population = 256
	spec := search.RunLSE(ctx, params)
	if len(spec) == 0 {
		t.Fatal("LSE returned empty S_spec")
	}

	bestOf := func(schs []*schedule.Schedule) float64 {
		best := math.Inf(1)
		for _, s := range schs {
			if lat, err := sim.Latency(task, s); err == nil && lat < best {
				best = lat
			}
		}
		return best
	}
	lseBest := bestOf(spec)
	randBest := bestOf(gen.InitPopulation(rng, len(spec)))
	t.Logf("LSE best=%.4gms random best=%.4gms (spec size %d)", lseBest*1e3, randBest*1e3, len(spec))
	if lseBest > randBest*1.2 {
		t.Errorf("LSE draft (%.4g) should be competitive with random (%.4g)", lseBest, randBest)
	}
}
