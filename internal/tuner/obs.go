package tuner

import "pruner/internal/obs"

// Metric names the tuning engine exports, shared with scrape tests and
// the serving daemon's documentation.
const (
	// MetricStageSeconds is a histogram of per-stage engine latency,
	// labelled stage=plan|measure|commit.
	MetricStageSeconds = "pruner_tuner_stage_seconds"
	// MetricRoundSeconds is a histogram of whole-round latency (plan
	// dispatch to commit completion; overlapping under pipelining).
	MetricRoundSeconds = "pruner_tuner_round_seconds"
	// MetricVerifyBatch is a histogram of verify-set sizes — the number
	// of candidates the policy promoted to measurement each round.
	MetricVerifyBatch = "pruner_tuner_verify_batch_size"
	// MetricRounds counts committed rounds.
	MetricRounds = "pruner_tuner_rounds_total"
	// MetricTrials counts committed measurements (warm-start excluded).
	MetricTrials = "pruner_tuner_trials_total"
	// MetricInFlight gauges the pipeline window occupancy at the last
	// commit (1 on the serial path).
	MetricInFlight = "pruner_tuner_inflight_batches"
	// MetricCalibError is a histogram of the adaptive controller's
	// smoothed per-round rank error (0 perfect, 0.5 random); only
	// populated when Options.AdaptBudget is set.
	MetricCalibError = "pruner_tuner_calibration_error"
	// MetricVerifyBudget / MetricDraftBudget / MetricTargetDepth gauge
	// the controller's decisions at the last committed round: the
	// measured-batch bound, the LSE |S_spec| handed to the policy, and
	// the pipeline-window bound. Adaptive sessions only.
	MetricVerifyBudget = "pruner_tuner_verify_budget"
	MetricDraftBudget  = "pruner_tuner_draft_budget"
	MetricTargetDepth  = "pruner_tuner_target_depth"
)

// engineObs is the round engine's prepared instrument set. It is built
// unconditionally — under a nil Observer every instrument is nil (their
// methods no-op) and the clock is the no-op clock — so the engine's hot
// path instruments without branching on whether anyone is watching.
type engineObs struct {
	clock obs.Clock
	tr    *obs.Tracer

	planSeconds    *obs.Histogram
	measureSeconds *obs.Histogram
	commitSeconds  *obs.Histogram
	roundSeconds   *obs.Histogram
	verifyBatch    *obs.Histogram
	rounds         *obs.Counter
	trials         *obs.Counter
	inFlight       *obs.Gauge
	calibError     *obs.Histogram
	verifyBudget   *obs.Gauge
	draftBudget    *obs.Gauge
	targetDepth    *obs.Gauge
}

func newEngineObs(o *obs.Observer) engineObs {
	r := o.Reg()
	stage := r.HistogramVec(MetricStageSeconds,
		"Tuning engine stage latency by stage (plan, measure, commit).", nil, "stage")
	return engineObs{
		clock:          o.Clock(),
		tr:             o.Trace(),
		planSeconds:    stage.With("plan"),
		measureSeconds: stage.With("measure"),
		commitSeconds:  stage.With("commit"),
		roundSeconds: r.Histogram(MetricRoundSeconds,
			"Whole-round latency from plan dispatch to commit.", nil),
		verifyBatch: r.Histogram(MetricVerifyBatch,
			"Candidates promoted to measurement per round.", obs.SizeBuckets),
		rounds: r.Counter(MetricRounds, "Committed tuning rounds."),
		trials: r.Counter(MetricTrials, "Committed measurements (warm-start excluded)."),
		inFlight: r.Gauge(MetricInFlight,
			"Measurement batches in flight at the last commit."),
		calibError: r.Histogram(MetricCalibError,
			"Smoothed predicted-vs-measured rank error per committed round (adaptive sessions).",
			[]float64{0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.75}),
		verifyBudget: r.Gauge(MetricVerifyBudget,
			"Adaptive verify/measure batch bound at the last committed round."),
		draftBudget: r.Gauge(MetricDraftBudget,
			"Adaptive LSE draft budget (|S_spec|) at the last committed round."),
		targetDepth: r.Gauge(MetricTargetDepth,
			"Adaptive pipeline-window bound at the last committed round."),
	}
}
