package tuner

import (
	"io"
	"math"

	"pruner/internal/costmodel"
	"pruner/internal/ir"
	"pruner/internal/measure"
)

// The record codec lives in internal/measure — it is the store's segment
// format AND the measurement fleet's wire format, and measure cannot
// import tuner. These wrappers keep the historical tuner-level entry
// points (cmd/pruner-tune -log/-resume) working unchanged.

// WriteRecords streams measurement records as JSON lines.
func WriteRecords(w io.Writer, recs []costmodel.Record) error {
	return measure.WriteRecords(w, recs)
}

// ReadRecords loads a JSON-lines tuning log. Tasks are resolved by ID from
// the provided set; records of unknown tasks are skipped (a log may cover
// more networks than the current session).
func ReadRecords(r io.Reader, tasks []*ir.Task) ([]costmodel.Record, error) {
	return measure.ReadRecords(r, tasks)
}

// BestByTask reduces a record log to the best valid schedule per task.
func BestByTask(recs []costmodel.Record) map[string]BestEntry {
	best := map[string]BestEntry{}
	for _, r := range recs {
		if math.IsInf(r.Latency, 1) {
			continue
		}
		cur, ok := best[r.Task.ID]
		if !ok || r.Latency < cur.Latency {
			best[r.Task.ID] = BestEntry{Task: r.Task, Sched: r.Sched, Latency: r.Latency}
		}
	}
	return best
}
