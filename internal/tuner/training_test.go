package tuner

import (
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/search"
)

// spyModel wraps a cost model and records every online Fit call. It
// deliberately exposes only the Model interface (no PoolUser/MemoUser),
// which the tuner must tolerate.
type spyModel struct {
	costmodel.Model
	reports []costmodel.FitReport
}

func (s *spyModel) Fit(recs []costmodel.Record, opt costmodel.FitOptions) costmodel.FitReport {
	rep := s.Model.Fit(recs, opt)
	s.reports = append(s.reports, rep)
	return rep
}

// TestTuneTrainingCostLinearInRounds pins the incremental-fit contract:
// each online fit sees at most the new batch plus the bounded replay
// sample, so per-session SampleVisits grows linearly with rounds — not
// quadratically, as the full-history refit this replaced did (training
// round r used to visit all r*batch records).
func TestTuneTrainingCostLinearInRounds(t *testing.T) {
	const (
		trials = 160
		batch  = 10
		epochs = 4
	)
	spy := &spyModel{Model: costmodel.NewPaCM(3)}
	Tune(device.T4, twoTasks(), Options{
		Trials:      trials,
		BatchSize:   batch,
		Policy:      search.NewPrunerPolicy(),
		Model:       spy,
		OnlineTrain: true,
		Fit:         costmodel.FitOptions{Epochs: epochs},
		Seed:        9,
		Parallelism: 1,
	})
	if len(spy.reports) < trials/batch/2 {
		t.Fatalf("too few online fits recorded: %d", len(spy.reports))
	}
	replay := 4 * batch // the Replay default
	perFit := batch + replay
	var total int
	for i, rep := range spy.reports {
		if rep.Samples > perFit {
			t.Fatalf("fit %d saw %d samples, want <= batch+replay = %d (full-history refit is back?)",
				i, rep.Samples, perFit)
		}
		total += rep.SampleVisits
	}
	// The linear budget: every fit bounded by (batch+replay) x epochs.
	// The old quadratic refit would blow through this within a few
	// rounds (round r visited r*batch samples per epoch).
	if bound := len(spy.reports) * perFit * epochs; total > bound {
		t.Fatalf("session SampleVisits %d exceeds the linear bound %d", total, bound)
	}

	// Replay < 0 disables the history sample entirely: fresh records only.
	spy = &spyModel{Model: costmodel.NewPaCM(3)}
	Tune(device.T4, twoTasks(), Options{
		Trials:      60,
		BatchSize:   batch,
		Policy:      search.NewPrunerPolicy(),
		Model:       spy,
		OnlineTrain: true,
		Fit:         costmodel.FitOptions{Epochs: epochs},
		Replay:      -1,
		Seed:        9,
		Parallelism: 1,
	})
	for i, rep := range spy.reports {
		if rep.Samples > batch {
			t.Fatalf("Replay<0 fit %d saw %d samples, want <= %d", i, rep.Samples, batch)
		}
	}
}
