package tuner

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/ir"
	"pruner/internal/schedule"
)

func sampleRecords(t *testing.T) ([]*ir.Task, []costmodel.Record) {
	t.Helper()
	a := ir.NewMatMul(128, 128, 128, ir.FP32, 1)
	b := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 28, W: 28, CI: 64, CO: 64, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}, ir.FP32, 0)
	rng := rand.New(rand.NewSource(1))
	var recs []costmodel.Record
	for i, task := range []*ir.Task{a, b, a} {
		g := schedule.NewGenerator(task)
		lat := float64(i+1) * 1e-4
		if i == 2 {
			lat = math.Inf(1) // a failed build
		}
		recs = append(recs, costmodel.Record{Task: task, Sched: g.Random(rng), Latency: lat})
	}
	return []*ir.Task{a, b}, recs
}

func TestRecordsRoundtrip(t *testing.T) {
	tasks, recs := sampleRecords(t)
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf, tasks)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Task.ID != recs[i].Task.ID {
			t.Fatalf("record %d task mismatch", i)
		}
		if got[i].Sched.Fingerprint() != recs[i].Sched.Fingerprint() {
			t.Fatalf("record %d schedule mismatch", i)
		}
		if math.IsInf(recs[i].Latency, 1) != math.IsInf(got[i].Latency, 1) {
			t.Fatalf("record %d failure flag mismatch", i)
		}
		if !math.IsInf(recs[i].Latency, 1) && math.Abs(got[i].Latency-recs[i].Latency) > 1e-12 {
			t.Fatalf("record %d latency %g want %g", i, got[i].Latency, recs[i].Latency)
		}
	}
}

// TestRecordsRoundtripNonFinite is the property test for the failed-build
// sentinel: any latency that is not finite and positive (+Inf, -Inf, NaN,
// negative) must encode without error — json.Marshal rejects NaN/Inf, so
// letting one through would abort the log mid-stream — and decode back as
// the +Inf failure marker, while finite positive latencies round-trip
// exactly (to the codec's microsecond scaling).
func TestRecordsRoundtripNonFinite(t *testing.T) {
	task := ir.NewMatMul(64, 64, 64, ir.FP32, 0)
	gen := schedule.NewGenerator(task)
	rng := rand.New(rand.NewSource(7))

	latencies := []float64{
		math.Inf(1), math.Inf(-1), math.NaN(), -1e-3, -math.SmallestNonzeroFloat64,
	}
	// Plus random finite positives across the plausible range.
	for i := 0; i < 40; i++ {
		latencies = append(latencies, math.Exp(rng.Float64()*20-14)) // ~1e-6s..4e2s
	}
	var recs []costmodel.Record
	for _, lat := range latencies {
		recs = append(recs, costmodel.Record{Task: task, Sched: gen.Random(rng), Latency: lat})
	}

	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatalf("WriteRecords: %v", err)
	}
	got, err := ReadRecords(&buf, []*ir.Task{task})
	if err != nil {
		t.Fatalf("ReadRecords: %v", err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d (a non-finite latency truncated the log)", len(got), len(recs))
	}
	for i, want := range latencies {
		lat := got[i].Latency
		if want > 0 && !math.IsInf(want, 1) && !math.IsNaN(want) {
			if math.Abs(lat-want) > want*1e-12 {
				t.Errorf("record %d: latency %g, want %g", i, lat, want)
			}
			continue
		}
		if !math.IsInf(lat, 1) {
			t.Errorf("record %d: latency %v should decode as the +Inf failure sentinel, got %g", i, want, lat)
		}
	}
}

func TestReadRecordsSkipsUnknownTasks(t *testing.T) {
	tasks, recs := sampleRecords(t)
	var buf bytes.Buffer
	if err := WriteRecords(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRecords(&buf, tasks[:1]) // only the matmul
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range got {
		if r.Task.ID != tasks[0].ID {
			t.Fatal("unknown task leaked through")
		}
	}
	if len(got) != 2 {
		t.Fatalf("expected 2 matmul records, got %d", len(got))
	}
}

func TestReadRecordsRejectsCorruptLines(t *testing.T) {
	tasks, _ := sampleRecords(t)
	if _, err := ReadRecords(strings.NewReader("{not json"), tasks); err == nil {
		t.Fatal("corrupt line should error")
	}
	// A structurally valid line with tiles that don't match the task.
	bad := `{"task_id":"` + tasks[0].ID + `","spatial_tiles":[[1,1,1,1,1]],"reduce_tiles":[[128,1,1]],"vector_len":1}`
	if _, err := ReadRecords(strings.NewReader(bad), tasks); err == nil {
		t.Fatal("schedule/task mismatch should error")
	}
}

func TestBestByTask(t *testing.T) {
	tasks, recs := sampleRecords(t)
	best := BestByTask(recs)
	if len(best) != 2 {
		t.Fatalf("%d best entries, want 2", len(best))
	}
	if best[tasks[0].ID].Latency != 1e-4 {
		t.Fatalf("best matmul latency %g", best[tasks[0].ID].Latency)
	}
}
