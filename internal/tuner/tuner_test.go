package tuner

import (
	"math"
	"math/rand"
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/search"
)

func twoTasks() []*ir.Task {
	a := ir.NewMatMul(256, 256, 256, ir.FP32, 1)
	a.Weight = 4
	b := ir.NewMatMul(512, 512, 256, ir.FP32, 1)
	b.Weight = 1
	return []*ir.Task{a, b}
}

func TestTaskSchedulerWarmupAndWeights(t *testing.T) {
	tasks := twoTasks()
	states := []*taskState{
		{task: tasks[0], best: math.Inf(1)},
		{task: tasks[1], best: math.Inf(1)},
	}
	s := newTaskScheduler(states, rand.New(rand.NewSource(1)))
	if s.next(0) != states[0] || s.next(1) != states[1] {
		t.Fatal("warm-up must round-robin")
	}
	// Unmeasured task must win over a measured one.
	states[0].best = 1e-3
	states[0].bestHistory = []float64{1e-3}
	if got := s.next(2); got != states[1] {
		t.Fatal("scheduler must visit unmeasured tasks first")
	}
	// With equal progress, the heavier-weighted task wins.
	states[1].best = 1e-3
	states[1].bestHistory = []float64{1e-3}
	s.Eps = 0
	if got := s.next(3); got != states[0] {
		t.Fatal("scheduler should prefer the weight-4 task")
	}
}

func TestCurveMonotoneAndClockAdvances(t *testing.T) {
	res := Tune(device.T4, twoTasks(), Options{
		Trials:      60,
		BatchSize:   10,
		Policy:      search.NewPrunerPolicy(),
		Model:       costmodel.NewPaCM(3),
		OnlineTrain: true,
		Seed:        2,
	})
	if len(res.Curve) == 0 {
		t.Fatal("no curve")
	}
	prevLat := math.Inf(1)
	prevTime := -1.0
	for _, p := range res.Curve {
		if p.WorkloadLat > prevLat*(1+1e-9) {
			t.Fatalf("workload latency increased: %g -> %g", prevLat, p.WorkloadLat)
		}
		if !math.IsInf(p.WorkloadLat, 1) {
			prevLat = p.WorkloadLat
		}
		if p.SimSeconds <= prevTime {
			t.Fatal("simulated time must strictly advance")
		}
		prevTime = p.SimSeconds
	}
	if res.Clock.Measurement <= 0 || res.Clock.Exploration <= 0 || res.Clock.Training <= 0 {
		t.Fatalf("clock categories must all advance: %+v", res.Clock)
	}
	if len(res.Records) == 0 {
		t.Fatal("records must be collected")
	}
}

func TestWorkloadLatencyAt(t *testing.T) {
	r := &Result{Curve: []CurvePoint{
		{SimSeconds: 10, WorkloadLat: 5},
		{SimSeconds: 20, WorkloadLat: 3},
		{SimSeconds: 30, WorkloadLat: 1},
	}}
	if got := r.WorkloadLatencyAt(3.5); got != 20 {
		t.Fatalf("at(3.5) = %g want 20", got)
	}
	if got := r.WorkloadLatencyAt(0.5); !math.IsInf(got, 1) {
		t.Fatalf("unreached target should be +Inf, got %g", got)
	}
}

func TestMoAUpdatesSiamese(t *testing.T) {
	// Pretrain a tiny PaCM surrogate: just use fresh weights as the
	// "pretrained" state and verify the Siamese drifts towards the target
	// during tuning while the target starts at the Siamese.
	pre := costmodel.NewPaCM(7)
	snapshot := SnapshotParams(pre)

	model := costmodel.NewPaCM(8)
	res := Tune(device.T4, twoTasks()[:1], Options{
		Trials:      30,
		BatchSize:   10,
		Policy:      search.NewPrunerPolicy(),
		Model:       model,
		OnlineTrain: true,
		Adaptation:  AdaptMoA,
		Pretrained:  snapshot,
		Momentum:    0.9,
		Seed:        4,
	})
	if res.FinalLatency <= 0 {
		t.Fatal("MoA run produced no result")
	}
	// After training, the model's weights must differ from the pretrained
	// snapshot (it was fine-tuned)...
	diff := 0.0
	for i, p := range model.Params() {
		for j := range p.Data {
			diff += math.Abs(p.Data[j] - snapshot[i].Data[j])
		}
	}
	if diff == 0 {
		t.Fatal("target model never trained")
	}
}

func TestAdaptFineTuneLoadsPretrained(t *testing.T) {
	pre := costmodel.NewTenSetMLP(9)
	snapshot := SnapshotParams(pre)
	model := costmodel.NewTenSetMLP(10)
	// Before: weights differ.
	p0 := model.Params()[0].Data[0]
	_ = p0
	Tune(device.T4, twoTasks()[:1], Options{
		Trials:     10,
		BatchSize:  10,
		Policy:     search.NewAnsorPolicy(),
		Model:      model,
		Adaptation: AdaptFineTune,
		Pretrained: snapshot,
		Seed:       5,
	})
	// Offline mode with no online training: weights must equal snapshot.
	for i, p := range model.Params() {
		for j := range p.Data {
			if p.Data[j] != snapshot[i].Data[j] {
				t.Fatal("fine-tune init should copy pretrained weights verbatim when no online training runs")
			}
		}
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	m := costmodel.NewPaCM(11)
	snap := SnapshotParams(m)
	m.Params()[0].Data[0] += 42
	if snap[0].Data[0] == m.Params()[0].Data[0] {
		t.Fatal("snapshot shares storage with the live model")
	}
	_ = nn.Tensor{}
}

func TestRollerSessionRuns(t *testing.T) {
	res := Tune(device.TitanV, twoTasks(), Options{
		Trials:    40,
		BatchSize: 10,
		Policy:    search.NewRollerPolicy(),
		Model:     costmodel.NewRandom(12),
		Seed:      6,
	})
	if math.IsInf(res.FinalLatency, 1) {
		t.Fatal("roller found nothing")
	}
}
