package vendorlib

import (
	"testing"

	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/workloads"
)

func TestSplitKRegime(t *testing.T) {
	// Table 8 op 4: small output, deep reduction -> splitK wins.
	deep := ir.NewMatMul(128, 768, 3072, ir.FP16, 1)
	_, algo := OpLatency(device.A100, deep)
	if algo != "splitK" {
		t.Fatalf("deep-K small-output GEMM chose %q, want splitK", algo)
	}
	// Wide parallel GEMM: no splitK.
	wide := ir.NewMatMul(4096, 4096, 512, ir.FP32, 0)
	_, algo = OpLatency(device.A100, wide)
	if algo == "splitK" {
		t.Fatal("wide GEMM should not use splitK")
	}
}

func TestWinogradEligibility(t *testing.T) {
	ok := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 56, W: 56, CI: 64, CO: 64, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}, ir.FP32, 1)
	if _, algo := OpLatency(device.A100, ok); algo != "winograd" {
		t.Fatalf("3x3 s1 conv chose %q, want winograd", algo)
	}
	strided := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 56, W: 56, CI: 64, CO: 64, KH: 3, KW: 3, Stride: 2, Pad: 1,
	}, ir.FP32, 1)
	if _, algo := OpLatency(device.A100, strided); algo == "winograd" {
		t.Fatal("strided conv must not use winograd")
	}
	oneByOne := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 56, W: 56, CI: 64, CO: 256, KH: 1, KW: 1, Stride: 1, Pad: 0,
	}, ir.FP32, 1)
	if _, algo := OpLatency(device.A100, oneByOne); algo == "winograd" {
		t.Fatal("1x1 conv must not use winograd")
	}
}

func TestFrameworkOrdering(t *testing.T) {
	net, err := workloads.ByName("resnet50")
	if err != nil {
		t.Fatal(err)
	}
	pt := NetworkLatency(PyTorch, device.A100, net)
	trt := NetworkLatency(TensorRT, device.A100, net)
	tri := NetworkLatency(Triton, device.A100, net)
	if trt >= pt {
		t.Fatalf("TensorRT (%g) should beat eager PyTorch (%g)", trt, pt)
	}
	if trt >= tri {
		t.Fatalf("TensorRT (%g) should beat Triton (%g)", trt, tri)
	}
	if pt <= 0 || trt <= 0 || tri <= 0 {
		t.Fatal("latencies must be positive")
	}
}

func TestUnfusedElementwiseCost(t *testing.T) {
	fused := ir.NewMatMul(512, 512, 512, ir.FP32, 2)
	bare := ir.NewMatMul(512, 512, 512, ir.FP32, 0)
	dPT := TaskLatency(PyTorch, device.A100, fused) - TaskLatency(PyTorch, device.A100, bare)
	dTRT := TaskLatency(TensorRT, device.A100, fused) - TaskLatency(TensorRT, device.A100, bare)
	if dPT <= dTRT {
		t.Fatalf("eager epilogue cost (%g) must exceed fused cost (%g)", dPT, dTRT)
	}
}

func TestTensorCoreLibrarySpeedup(t *testing.T) {
	f32 := ir.NewMatMul(1024, 1024, 1024, ir.FP32, 0)
	f16 := ir.NewMatMul(1024, 1024, 1024, ir.FP16, 0)
	l32, _ := OpLatency(device.A100, f32)
	l16, _ := OpLatency(device.A100, f16)
	if l16 >= l32 {
		t.Fatalf("FP16 library GEMM (%g) should beat FP32 (%g)", l16, l32)
	}
}

func TestLatencyScalesAcrossDevices(t *testing.T) {
	op := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 56, W: 56, CI: 256, CO: 256, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}, ir.FP32, 1)
	a100, _ := OpLatency(device.A100, op)
	orin, _ := OpLatency(device.Orin, op)
	if orin <= a100 {
		t.Fatalf("Orin (%g) should be slower than A100 (%g)", orin, a100)
	}
}

func TestFrameworkNames(t *testing.T) {
	want := map[Framework]string{CudaLib: "cudaLib", PyTorch: "pytorch", Triton: "triton", TensorRT: "tensorrt"}
	for fw, name := range want {
		if fw.String() != name {
			t.Fatalf("%d name %q want %q", fw, fw.String(), name)
		}
	}
}
