// Package vendorlib models the off-the-shelf comparison points of the
// evaluation: hand-optimised kernel libraries (cuBLAS/cuDNN, "cudaLib")
// and the inference frameworks built on them (PyTorch eager, Triton,
// Torch-TensorRT). Latencies are roofline estimates with the expert
// algorithmic moves real libraries make — splitK for large-reduction
// GEMMs, Winograd for 3x3 stride-1 convolutions, aggressive fusion in
// TensorRT — so the crossovers of Figures 8-13 (libraries winning on
// fixed large-K linears, compilers winning on irregular shapes) emerge
// from the same physics the simulator uses.
package vendorlib

import (
	"math"

	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/workloads"
)

// Framework identifies a latency provider.
type Framework int

const (
	// CudaLib is the kernel-level library path (cuBLAS / cuDNN), the
	// "cudaLib" rows of Tables 8 and Figure 13.
	CudaLib Framework = iota
	// PyTorch is eager execution: cudaLib kernels, no cross-op fusion,
	// per-op dispatch overhead.
	PyTorch
	// Triton is TorchInductor max-autotune Triton kernels.
	Triton
	// TensorRT is Torch-TensorRT: fused, library-backed engines.
	TensorRT
)

func (f Framework) String() string {
	switch f {
	case CudaLib:
		return "cudaLib"
	case PyTorch:
		return "pytorch"
	case Triton:
		return "triton"
	default:
		return "tensorrt"
	}
}

// quantEff is x/(ceil(x/u)*u): utilisation of unit-quantised resources.
func quantEff(x, u float64) float64 {
	if x <= 0 || u <= 0 {
		return 1
	}
	return x / (math.Ceil(x/u) * u)
}

// gemmDims extracts the canonical (batch, M, N, K) of a task: the last
// spatial axis becomes N, everything before it folds into M (implicit
// GEMM for convolutions), except batched matmuls which keep their leading
// batch axis.
func gemmDims(t *ir.Task) (b, m, n, k float64) {
	b, m, n, k = 1, 1, 1, 1
	sp := t.Spatial
	switch {
	case t.Kind == ir.BatchMatMul && len(sp) == 3:
		b, m, n = float64(sp[0]), float64(sp[1]), float64(sp[2])
	case len(sp) == 1:
		m = float64(sp[0])
	default:
		for _, e := range sp[:len(sp)-1] {
			m *= float64(e)
		}
		n = float64(sp[len(sp)-1])
	}
	for _, e := range t.Reduce {
		k *= float64(e)
	}
	return b, m, n, k
}

// OpLatency estimates one kernel-level op latency (seconds) for the
// library path, choosing the best of the library's algorithmic variants.
// The second return names the chosen algorithm ("direct", "splitK",
// "winograd").
func OpLatency(dev *device.Device, t *ir.Task) (float64, string) {
	best, algo := directLatency(dev, t, 1), "direct"
	if s, ok := splitKLatency(dev, t); ok && s < best {
		best, algo = s, "splitK"
	}
	if w, ok := winogradLatency(dev, t); ok && w < best {
		best, algo = w, "winograd"
	}
	return best, algo
}

// directLatency is the library's standard tiled kernel. splitWays > 1
// models a splitK launch of that width.
func directLatency(dev *device.Device, t *ir.Task, splitWays float64) float64 {
	flops := t.FLOPs()
	bytes := t.FootprintBytes()
	eb := float64(t.Precision.Bytes())

	peak := dev.PeakFLOPS
	effC := 0.0
	switch t.Kind {
	case ir.MatMul, ir.BatchMatMul:
		effC = 0.86
	case ir.Conv2D:
		effC = 0.78
	case ir.ConvTranspose2D:
		effC = 0.60
	case ir.DepthwiseConv2D:
		effC = 0.30 // memory-bound regardless
	default:
		effC = 0.5
	}
	if t.Precision == ir.FP16 {
		if dev.PeakTensorF > 0 && t.TensorCoreEligible() {
			peak = dev.PeakTensorF
			effC *= 0.55 // library TC efficiency at inference batch sizes
		} else {
			peak = dev.PeakFLOPS * 2
		}
	}

	b, m, n, k := gemmDims(t)
	// Shape alignment: libraries tile at 128x64; misaligned edges waste
	// lanes.
	effC *= math.Max(0.35, quantEff(m, 64)) * math.Max(0.35, quantEff(n, 64)) * math.Max(0.5, quantEff(k, 32))

	// Device parallelism: one CTA per 128x64 tile (x batch x splitWays).
	blocks := b * math.Ceil(m/128) * math.Ceil(n/64) * splitWays
	waveEff := math.Max(0.06, quantEff(blocks, float64(dev.NumSMs)))

	// splitK adds partial-sum traffic and a reduction pass.
	if splitWays > 1 {
		bytes += b * m * n * eb * (splitWays + 1)
		k = k / splitWays
		_ = k
	}

	effM := 0.85
	tC := flops / (peak * effC * waveEff)
	tM := bytes / (dev.PeakBW * effM)
	return math.Max(tC, tM) + 0.15*math.Min(tC, tM) + dev.LaunchOverhead
}

// splitKLatency models cuBLAS splitK: eligible when the reduction is deep
// and output parallelism is scarce (the Table 8 regime).
func splitKLatency(dev *device.Device, t *ir.Task) (float64, bool) {
	if t.Kind != ir.MatMul && t.Kind != ir.BatchMatMul {
		return 0, false
	}
	b, m, n, k := gemmDims(t)
	blocks := b * math.Ceil(m/128) * math.Ceil(n/64)
	if k < 1024 || blocks > float64(dev.NumSMs) {
		return 0, false
	}
	ways := math.Min(16, math.Max(2, math.Floor(k/512)))
	return directLatency(dev, t, ways), true
}

// winogradLatency models cuDNN Winograd F(4x4, 3x3): eligible for dense
// 3x3 stride-1 convolutions, cutting multiply work ~4x at some extra
// transform traffic.
func winogradLatency(dev *device.Device, t *ir.Task) (float64, bool) {
	if t.Kind != ir.Conv2D || t.Precision != ir.FP32 {
		return 0, false
	}
	if t.MetaVal("kh") != 3 || t.MetaVal("kw") != 3 || t.MetaVal("stride") != 1 {
		return 0, false
	}
	if t.MetaVal("ci") < 32 || t.MetaVal("co") < 32 {
		return 0, false
	}
	base := directLatency(dev, t, 1)
	// 4x fewer multiplies, ~0.65 transform efficiency, 1.8x traffic.
	flopWin := base * (1.0 / 4.0) / 0.65
	return math.Max(flopWin, base*0.45) + dev.LaunchOverhead, true
}

// frameworkProfile captures how a framework composes kernels.
type frameworkProfile struct {
	kernelEff  float64 // multiplier on kernel-level latency
	fused      bool    // elementwise epilogues fused into the anchor op
	perOpOver  float64 // dispatch overhead per op instance
	graphBonus float64 // whole-graph optimisation multiplier
}

func profileOf(fw Framework) frameworkProfile {
	switch fw {
	case CudaLib:
		return frameworkProfile{kernelEff: 1.0, fused: true}
	case PyTorch:
		return frameworkProfile{kernelEff: 1.0, fused: false, perOpOver: 6e-6}
	case Triton:
		return frameworkProfile{kernelEff: 1.22, fused: true, perOpOver: 1.5e-6}
	default: // TensorRT
		return frameworkProfile{kernelEff: 0.97, fused: true, perOpOver: 0.8e-6, graphBonus: 0.97}
	}
}

// TaskLatency is the framework-level latency of one task instance.
func TaskLatency(fw Framework, dev *device.Device, t *ir.Task) float64 {
	p := profileOf(fw)
	lat, _ := OpLatency(dev, t)
	lat *= p.kernelEff
	if !p.fused && t.FusedElemwise > 0 {
		// Each unfused elementwise op re-reads and re-writes the output.
		bytes := 2 * float64(t.OutputPoints()) * float64(t.Precision.Bytes())
		lat += float64(t.FusedElemwise) * (bytes/(dev.PeakBW*0.8) + p.perOpOver + dev.LaunchOverhead)
	}
	lat += p.perOpOver
	return lat
}

// NetworkLatency is the end-to-end framework latency of a workload.
func NetworkLatency(fw Framework, dev *device.Device, net *workloads.Network) float64 {
	p := profileOf(fw)
	var total float64
	for _, t := range net.Tasks {
		total += float64(t.Weight) * TaskLatency(fw, dev, t)
	}
	if p.graphBonus > 0 {
		total *= p.graphBonus
	}
	return total
}
