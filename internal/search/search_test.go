package search

import (
	"math"
	"math/rand"
	"testing"

	"pruner/internal/analyzer"
	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
	"pruner/internal/simulator"
)

func newCtx(t *ir.Task, dev *device.Device, seed int64) *Context {
	g := schedule.NewGenerator(t)
	g.MaxThreads = dev.MaxThreads
	g.MaxSharedWords = dev.SharedPerBlock
	return &Context{
		Task:        t,
		Gen:         g,
		RNG:         rand.New(rand.NewSource(seed)),
		MeasuredSet: map[string]bool{},
		Draft:       analyzer.New(dev),
		Cost:        simulator.DefaultCostParams(dev),
	}
}

func TestRunLSEProducesRankedSpec(t *testing.T) {
	task := ir.NewMatMul(512, 512, 512, ir.FP32, 1)
	ctx := newCtx(task, device.A100, 1)
	p := LSEParams{SpecSize: 64, Population: 128, Steps: 4, MutateProb: 0.85, CrossProb: 0.05}
	spec := RunLSE(ctx, p)
	if len(spec) == 0 || len(spec) > p.SpecSize {
		t.Fatalf("spec size %d, want (0,%d]", len(spec), p.SpecSize)
	}
	// Descending draft-model fitness.
	prev := math.Inf(1)
	for i, s := range spec {
		lat := ctx.Draft.EstimateLatency(schedule.Lower(task, s))
		if lat > prev*(1+1e-9) && i > 0 {
			// scores sorted descending => latency ascending
		}
		prev = lat
	}
	// No duplicates.
	seen := map[string]bool{}
	for _, s := range spec {
		fp := s.Fingerprint()
		if seen[fp] {
			t.Fatal("duplicate schedule in S_spec")
		}
		seen[fp] = true
	}
}

// TestLSEOutperformsRandomDraft: S_spec's best true latency beats a random
// draft of equal size — the draft model does real work.
func TestLSEOutperformsRandomDraft(t *testing.T) {
	task := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 28, W: 28, CI: 128, CO: 256, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}, ir.FP32, 1)
	ctx := newCtx(task, device.A100, 2)
	sim := simulator.New(device.A100)
	spec := RunLSE(ctx, LSEParams{SpecSize: 96, Population: 192, Steps: 4, MutateProb: 0.85, CrossProb: 0.05})
	bestOf := func(schs []*schedule.Schedule) float64 {
		best := math.Inf(1)
		for _, s := range schs {
			if lat, err := sim.Latency(task, s); err == nil && lat < best {
				best = lat
			}
		}
		return best
	}
	lse := bestOf(spec)
	rands := bestOf(ctx.Gen.InitPopulation(ctx.RNG, len(spec)))
	if lse > rands {
		t.Fatalf("LSE draft best %g worse than random draft best %g", lse, rands)
	}
}

func TestPoliciesReturnFreshBuildableBatches(t *testing.T) {
	task := ir.NewMatMul(256, 384, 512, ir.FP32, 1)
	policies := []Policy{
		NewAnsorPolicy(),
		NewPrunerPolicy(),
		NewMetaSchedulePolicy(),
		NewRollerPolicy(),
	}
	for _, p := range policies {
		ctx := newCtx(task, device.T4, 3)
		ctx.Model = costmodel.NewRandom(7)
		// Pretend some schedules are already measured.
		for i := 0; i < 5; i++ {
			ctx.MeasuredSet[ctx.Gen.Random(ctx.RNG).Fingerprint()] = true
		}
		// Shrink budgets for speed.
		switch pp := p.(type) {
		case *AnsorPolicy:
			pp.Evo = EvoParams{Population: 96, Generations: 2, MutateProb: 0.8, CrossProb: 0.1}
		case *MetaSchedulePolicy:
			pp.Evo = EvoParams{Population: 96, Generations: 2, MutateProb: 0.8, CrossProb: 0.1}
		case *PrunerPolicy:
			pp.LSE = LSEParams{SpecSize: 48, Population: 64, Steps: 2, MutateProb: 0.8, CrossProb: 0.1}
			pp.RandomDraft = 16
		case *RollerPolicy:
			pp.CandidatePool = 400
		}
		batch := p.NextBatch(ctx, 10)
		if len(batch) == 0 {
			t.Fatalf("%s: empty batch", p.Name())
		}
		seen := map[string]bool{}
		for _, s := range batch {
			if err := s.Validate(task); err != nil {
				t.Fatalf("%s: invalid schedule: %v", p.Name(), err)
			}
			fp := s.Fingerprint()
			if seen[fp] {
				t.Fatalf("%s: duplicate in batch", p.Name())
			}
			if ctx.MeasuredSet[fp] {
				t.Fatalf("%s: proposed an already-measured schedule", p.Name())
			}
			if !ctx.buildable(s) {
				t.Fatalf("%s: proposed an unbuildable schedule", p.Name())
			}
			seen[fp] = true
		}
	}
}

func TestExplorationClockCharged(t *testing.T) {
	task := ir.NewMatMul(256, 256, 256, ir.FP32, 0)
	ctx := newCtx(task, device.Orin, 4)
	ctx.Model = costmodel.NewTenSetMLP(5)
	ctx.Clock = &simulator.Clock{}
	p := NewPrunerPolicy()
	p.LSE = LSEParams{SpecSize: 32, Population: 48, Steps: 2, MutateProb: 0.8, CrossProb: 0.1}
	p.RandomDraft = 8
	p.NextBatch(ctx, 5)
	if ctx.Clock.Exploration <= 0 {
		t.Fatal("Pruner policy must charge exploration time")
	}
	// Ansor over the same budget must charge much more: it runs the
	// learned model over the whole population every generation.
	ansorCtx := newCtx(task, device.Orin, 4)
	ansorCtx.Model = costmodel.NewTenSetMLP(5)
	ansorCtx.Clock = &simulator.Clock{}
	a := NewAnsorPolicy()
	a.Evo = EvoParams{Population: 480, Generations: 4, MutateProb: 0.85, CrossProb: 0.05}
	a.NextBatch(ansorCtx, 5)
	if ansorCtx.Clock.Exploration <= ctx.Clock.Exploration {
		t.Fatalf("Ansor exploration %g should exceed Pruner's %g",
			ansorCtx.Clock.Exploration, ctx.Clock.Exploration)
	}
}

func TestRollerAlignment(t *testing.T) {
	aligned := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{8, 8, 1, 4, 1}, {4, 8, 2, 2, 1},
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{4, 4, 4}},
		VectorLen:   1, UseShared: true,
	}
	if !rollerAligned(device.A100, aligned) {
		t.Fatal("64-thread power-of-two schedule should be aligned")
	}
	odd := aligned.Clone()
	odd.SpatialTiles[0][schedule.LvlThread] = 7
	if rollerAligned(device.A100, odd) {
		t.Fatal("56-thread schedule is not warp aligned")
	}
	odd2 := aligned.Clone()
	odd2.SpatialTiles[0][schedule.LvlInner0] = 3
	if rollerAligned(device.A100, odd2) {
		t.Fatal("non-power-of-two register tile should be rejected")
	}
}

func TestTopK(t *testing.T) {
	g := schedule.NewGenerator(ir.NewMatMul(64, 64, 64, ir.FP32, 0))
	rng := rand.New(rand.NewSource(6))
	cands := []scored{
		{g.Random(rng), 0.1}, {g.Random(rng), 0.9}, {g.Random(rng), 0.5},
	}
	top := topK(cands, 2)
	if len(top) != 2 || top[0].score != 0.9 || top[1].score != 0.5 {
		t.Fatalf("topK wrong: %+v", top)
	}
}
