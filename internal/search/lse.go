package search

import (
	"sort"

	"pruner/internal/schedule"
)

// LSEParams configure the Latent Schedule Explorer (Algorithm 2).
type LSEParams struct {
	// SpecSize is |S_spec|, the drafted candidate budget (paper: 512).
	SpecSize int
	// Population is |S_x|, the GA population per step.
	Population int
	// Steps is nSteps, the number of GA iterations.
	Steps int
	// MutateProb / CrossProb drive SchMutation.
	MutateProb float64
	CrossProb  float64
}

// DefaultLSEParams are the paper's settings: S_spec = 512, with a GA
// exploring the same ~8,000 candidates per round Ansor's evolution sees —
// affordable precisely because each draft evaluation costs a fraction of
// a learned-model inference.
func DefaultLSEParams() LSEParams {
	return LSEParams{SpecSize: 512, Population: 1600, Steps: 5, MutateProb: 0.85, CrossProb: 0.05}
}

// withDefaults fills unset (zero) fields independently. The earlier
// all-or-nothing rule — defaults only when SpecSize was zero — meant a
// caller who set SpecSize but left Steps or Population zero silently got
// an empty draft set. Zero therefore always means "use the default"; a
// probability of exactly zero is not representable (use a negligible
// positive value instead).
func (p LSEParams) withDefaults() LSEParams {
	def := DefaultLSEParams()
	if p.SpecSize <= 0 {
		p.SpecSize = def.SpecSize
	}
	if p.Population <= 0 {
		p.Population = def.Population
	}
	if p.Steps <= 0 {
		p.Steps = def.Steps
	}
	if p.MutateProb <= 0 {
		p.MutateProb = def.MutateProb
	}
	if p.CrossProb <= 0 {
		p.CrossProb = def.CrossProb
	}
	return p
}

// RunLSE is Algorithm 2: a GA over the schedule space whose fitness is the
// Symbol-based Analyzer's hardware-fitness score, accumulating the best
// candidates seen into S_spec via PriorFilter. It never touches a learned
// model; the caller charges only draft-evaluation time.
//
// As in TVM's evolutionary search, the initial population is seeded with
// the task's best measured schedules so later rounds refine around proven
// programs instead of re-deriving the draft model's optimum from scratch.
func RunLSE(ctx *Context, p LSEParams) []*schedule.Schedule {
	if ctx.Draft == nil {
		panic("search: RunLSE requires a draft analyzer")
	}
	p = p.withDefaults()
	// Draft fitness runs on the session pool; breeding stays serial on the
	// task-owned RNG.
	scoreFn := ctx.scoreDraft

	// S_x <- best measured ∪ RandomInitSch(theta_x)
	pop := bestMeasured(ctx, p.Population/8)
	pop = append(pop, ctx.Gen.InitPopulation(ctx.RNG, p.Population-len(pop))...)
	// S_spec accumulates across steps (PriorFilter keeps the global top).
	spec := map[string]scored{}
	for step := 0; step < p.Steps; step++ {
		if ctx.cancelled() {
			break // the tuner discards rounds whose search was cut short
		}
		scores := scoreFn(pop)
		cands := make([]scored, len(pop))
		for i := range pop {
			c := scored{sch: pop[i], score: scores[i]}
			cands[i] = c
			fp := pop[i].Fingerprint()
			if prev, ok := spec[fp]; !ok || c.score > prev.score {
				spec[fp] = c
			}
		}
		// PriorFilter: retain only the SpecSize best in S_spec.
		if len(spec) > p.SpecSize {
			pruneSpec(spec, p.SpecSize)
		}
		if step == p.Steps-1 {
			break
		}
		// SchMutation: breed the next S_x guided by the draft fitness.
		pop = nextGeneration(ctx, EvoParams{
			Population: p.Population, Generations: 1,
			MutateProb: p.MutateProb, CrossProb: p.CrossProb,
		}, cands)
	}

	out := make([]scored, 0, len(spec))
	for _, c := range spec {
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].sch.Fingerprint() < out[j].sch.Fingerprint()
	})
	if len(out) > p.SpecSize {
		out = out[:p.SpecSize]
	}
	schs := make([]*schedule.Schedule, len(out))
	for i, c := range out {
		schs[i] = c.sch
	}
	return schs
}

// pruneSpec trims the spec map to the k best entries in place.
func pruneSpec(spec map[string]scored, k int) {
	all := make([]scored, 0, len(spec))
	for _, c := range spec {
		all = append(all, c)
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].score != all[j].score {
			return all[i].score > all[j].score
		}
		return all[i].sch.Fingerprint() < all[j].sch.Fingerprint()
	})
	for _, c := range all[k:] {
		delete(spec, c.sch.Fingerprint())
	}
}
