package search

import (
	"pruner/internal/device"
	"pruner/internal/schedule"
)

// AnsorPolicy is the baseline exploration mechanism: evolutionary search
// whose fitness is the learned cost model, applied to every explored
// candidate — the expensive pattern Table 1 quantifies.
type AnsorPolicy struct {
	Evo EvoParams
	Eps float64 // ε-greedy random share of each measured batch
}

// NewAnsorPolicy returns the policy with Ansor defaults.
func NewAnsorPolicy() *AnsorPolicy {
	return &AnsorPolicy{Evo: DefaultEvoParams(), Eps: 0.10}
}

// Name implements Policy.
func (p *AnsorPolicy) Name() string { return "ansor" }

// NextBatch implements Policy.
func (p *AnsorPolicy) NextBatch(ctx *Context, n int) []*schedule.Schedule {
	seed := bestMeasured(ctx, p.Evo.Population/16)
	ranked := evolve(ctx, p.Evo, seed, func(schs []*schedule.Schedule) []float64 {
		ctx.chargeModel(len(schs))
		return ctx.Model.Predict(ctx.Task, schs)
	})
	return pickBatch(ctx, ranked, n, p.Eps)
}

// PrunerPolicy is the paper's Draft-then-Verify mechanism: the Latent
// Schedule Explorer drafts S_spec with the Symbol-based Analyzer, a small
// random sample keeps exploration honest (Algorithm 1 line 10), and the
// learned cost model verifies only the drafted set.
type PrunerPolicy struct {
	LSE LSEParams
	// RandomDraft is the size of the random sample unioned with S_spec.
	RandomDraft int
	// ExploitDraft adds mutations of the task's best measured schedules to
	// the draft set (Ansor's evolutionary exploitation, which the paper's
	// search framework inherits); the learned model verifies them like any
	// other draft.
	ExploitDraft int
	Eps          float64
}

// NewPrunerPolicy returns the policy with the paper's settings
// (S_spec = 512).
func NewPrunerPolicy() *PrunerPolicy {
	return &PrunerPolicy{LSE: DefaultLSEParams(), RandomDraft: 128, ExploitDraft: 64, Eps: 0.10}
}

// Name implements Policy.
func (p *PrunerPolicy) Name() string { return "pruner" }

// SpecBudget implements SpecBudgeter: the configured |S_spec| after
// defaulting, the base the tuner's adaptive controller scales.
func (p *PrunerPolicy) SpecBudget() int { return p.LSE.withDefaults().SpecSize }

// NextBatch implements Policy.
func (p *PrunerPolicy) NextBatch(ctx *Context, n int) []*schedule.Schedule {
	// Draft. Context.DraftBudget overrides |S_spec| alone — the random
	// and exploit draft shares stay fixed, so scaling the budget resizes
	// the speculative set, not the exploration floor.
	lse := p.LSE
	if ctx.DraftBudget > 0 {
		lse = lse.withDefaults()
		lse.SpecSize = ctx.DraftBudget
	}
	spec := RunLSE(ctx, lse)
	draft := make([]*schedule.Schedule, 0, len(spec)+p.RandomDraft+p.ExploitDraft)
	seen := map[string]bool{}
	for _, s := range spec {
		seen[s.Fingerprint()] = true
		draft = append(draft, s)
	}
	for _, s := range ctx.Gen.InitPopulation(ctx.RNG, p.RandomDraft) {
		if fp := s.Fingerprint(); !seen[fp] {
			seen[fp] = true
			draft = append(draft, s)
		}
	}
	if p.ExploitDraft > 0 {
		elites := bestMeasured(ctx, 8)
		for i := 0; len(elites) > 0 && i < p.ExploitDraft; i++ {
			s := ctx.Gen.Mutate(ctx.RNG, elites[i%len(elites)])
			if fp := s.Fingerprint(); !seen[fp] {
				seen[fp] = true
				draft = append(draft, s)
			}
		}
	}
	// Verify.
	ctx.chargeModel(len(draft))
	scores := ctx.Model.Predict(ctx.Task, draft)
	ranked := make([]scored, len(draft))
	for i := range draft {
		ranked[i] = scored{sch: draft[i], score: scores[i]}
	}
	ranked = topK(ranked, len(ranked))
	return pickBatch(ctx, ranked, n, p.Eps)
}

// MetaSchedulePolicy models TVM MetaSchedule: evolutionary search with a
// learned model over TensorCore-capable sketches, with a larger random
// exploration share than Ansor.
type MetaSchedulePolicy struct {
	Evo EvoParams
	Eps float64
}

// NewMetaSchedulePolicy returns the policy with MetaSchedule-like
// defaults.
func NewMetaSchedulePolicy() *MetaSchedulePolicy {
	return &MetaSchedulePolicy{
		Evo: EvoParams{Population: 2048, Generations: 4, MutateProb: 0.80, CrossProb: 0.05},
		Eps: 0.15,
	}
}

// Name implements Policy.
func (p *MetaSchedulePolicy) Name() string { return "metaschedule" }

// NextBatch implements Policy.
func (p *MetaSchedulePolicy) NextBatch(ctx *Context, n int) []*schedule.Schedule {
	seed := bestMeasured(ctx, p.Evo.Population/32)
	ranked := evolve(ctx, p.Evo, seed, func(schs []*schedule.Schedule) []float64 {
		ctx.chargeModel(len(schs))
		return ctx.Model.Predict(ctx.Task, schs)
	})
	return pickBatch(ctx, ranked, n, p.Eps)
}

// RollerPolicy models the rule-based Roller compiler: it only considers
// hardware-aligned candidates (full warps, power-of-two register tiles,
// transaction-aligned innermost runs) ranked by the analytical model, with
// no learned component. Fast, but it discards solutions outside its rules
// — the behaviour Table 6 shows.
type RollerPolicy struct {
	// CandidatePool is how many random candidates are screened per batch.
	CandidatePool int
}

// NewRollerPolicy returns the policy with its default screening pool.
func NewRollerPolicy() *RollerPolicy { return &RollerPolicy{CandidatePool: 3000} }

// Name implements Policy.
func (p *RollerPolicy) Name() string { return "roller" }

// NextBatch implements Policy.
func (p *RollerPolicy) NextBatch(ctx *Context, n int) []*schedule.Schedule {
	if ctx.Draft == nil {
		panic("search: RollerPolicy requires a draft analyzer")
	}
	// Screen the pool concurrently; alignment filtering and ranking stay
	// on the serial path so the batch is order-stable.
	pool := ctx.Gen.InitPopulation(ctx.RNG, p.CandidatePool)
	scores := ctx.scoreDraft(pool)
	var ranked []scored
	for i, s := range pool {
		if !rollerAligned(ctx.Draft.Dev, s) {
			continue
		}
		ranked = append(ranked, scored{sch: s, score: scores[i]})
	}
	ranked = topK(ranked, len(ranked))
	return pickBatch(ctx, ranked, n, 0)
}

// rollerAligned enforces Roller's rTile alignment rules against the
// target device: full warps only, within the device's thread-per-block
// cap (previously hardcoded to 1024, which over-admitted schedules on
// presets with a smaller cap).
func rollerAligned(dev *device.Device, s *schedule.Schedule) bool {
	threads := s.ThreadsPerBlock()
	if threads%dev.WarpSize != 0 || threads > dev.MaxThreads {
		return false
	}
	for d := range s.SpatialTiles {
		if !powerOfTwoOrOne(s.RegTile(d)) {
			return false
		}
	}
	for d := range s.ReduceTiles {
		if !powerOfTwoOrOne(s.ReduceInner(d)) {
			return false
		}
	}
	return true
}

func powerOfTwoOrOne(x int) bool { return x > 0 && x&(x-1) == 0 }
