package search

import (
	"math"
	"math/rand"
	"testing"

	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
	"pruner/internal/simulator"
)

func TestDraftQualityVsEvolution(t *testing.T) {
	dev := device.A100
	sim := simulator.New(dev)
	tasks := []*ir.Task{
		ir.NewConv2D(ir.Conv2DShape{N: 1, H: 56, W: 56, CI: 64, CO: 256, KH: 1, KW: 1, Stride: 1, Pad: 0}, ir.FP32, 1),
		ir.NewConv2D(ir.Conv2DShape{N: 1, H: 14, W: 14, CI: 256, CO: 256, KH: 3, KW: 3, Stride: 1, Pad: 1}, ir.FP32, 1),
		ir.NewMatMul(128, 512, 2048, ir.FP32, 1),
	}
	for _, task := range tasks {
		ctx := newCtx(task, dev, 9)
		spec := RunLSE(ctx, DefaultLSEParams())
		bestOf := func(schs []*schedule.Schedule) float64 {
			best := math.Inf(1)
			for _, s := range schs {
				if lat, err := sim.Latency(task, s); err == nil && lat < best {
					best = lat
				}
			}
			return best
		}
		specBest := bestOf(spec)
		// Reference points: a random pool of the same size the draft GA
		// screens, and a much larger pool as the per-round ceiling.
		rng := rand.New(rand.NewSource(10))
		randPool := ctx.Gen.InitPopulation(rng, 2048)
		randBest := bestOf(randPool)
		bigPool := ctx.Gen.InitPopulation(rng, 8000)
		ceiling := bestOf(bigPool)
		t.Logf("%s: spec512best=%.4g rand2048=%.4g rand8000=%.4g (ms x1e3: %.3f / %.3f / %.3f)",
			task.Name, specBest, randBest, ceiling, specBest*1e3, randBest*1e3, ceiling*1e3)
	}
}
