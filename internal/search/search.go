// Package search implements the schedule-space exploration policies: the
// paper's Draft-then-Verify Pruner policy with its Latent Schedule
// Explorer (Algorithm 2), and the Ansor, MetaSchedule and Roller baseline
// policies it is evaluated against.
package search

import (
	"context"
	"math"
	"math/rand"
	"sort"

	"pruner/internal/analyzer"
	"pruner/internal/costmodel"
	"pruner/internal/ir"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
	"pruner/internal/simulator"
)

// Context is the per-task state a policy sees when proposing the next
// measurement batch.
type Context struct {
	// Ctx optionally bounds the search: policies check it between
	// generations/iterations and return early (with whatever they have)
	// when it is cancelled. The tuner discards a round whose search was
	// cut short, so cancellation can never alter committed results. nil
	// never cancels.
	Ctx  context.Context
	Task *ir.Task
	Gen  *schedule.Generator
	// RNG is the task-owned random stream. Policies must draw from it only
	// on their serial path (population breeding, ε-greedy picks) — never
	// from pool workers.
	RNG *rand.Rand
	// Pool fans pure candidate scoring (draft evaluations, screening)
	// across the session's workers; nil scores serially.
	Pool *parallel.Pool
	// Measured is the task's tuning history (latest last).
	Measured []costmodel.Record
	// MeasuredSet holds fingerprints of measured schedules for dedup.
	MeasuredSet map[string]bool
	// Model is the learned (verify) cost model.
	Model costmodel.Model
	// Draft is the Symbol-based Analyzer used by draft-stage policies.
	Draft *analyzer.Analyzer
	// Clock and Cost account simulated exploration time. Clock may be nil
	// in unit tests.
	Clock *simulator.Clock
	Cost  simulator.CostParams
	// Memo caches this round's lowered programs so a candidate is lowered
	// (and featurized) exactly once across draft scoring, the buildability
	// pre-filter and cost-model verification. nil falls back to lowering
	// on every use.
	Memo *schedule.Memo
	// DraftBudget, when positive, overrides the policy's own draft-stage
	// candidate budget (|S_spec| for the Pruner policy) for this round —
	// the tuner's adaptive controller shrinks or grows it with the cost
	// model's measured calibration. Policies without a draft stage
	// ignore it; 0 keeps the policy's configured budget.
	DraftBudget int
}

// lower resolves a schedule through the round memo (plain lowering when
// no memo is installed).
func (c *Context) lower(s *schedule.Schedule) *schedule.Lowered {
	return c.Memo.Lower(c.Task, s)
}

// cancelled reports whether the search's context has been cancelled.
func (c *Context) cancelled() bool {
	return c.Ctx != nil && c.Ctx.Err() != nil
}

// chargeModel accounts n learned-model candidate evaluations.
func (c *Context) chargeModel(n int) {
	if c.Clock == nil || c.Model == nil {
		return
	}
	mc := c.Model.Costs()
	c.Clock.Exploration += float64(n) * (c.Cost.FeatureExtract*mc.FeatureX + c.Cost.ModelInfer*mc.InferX)
}

// chargeDraft accounts n Symbol-based-Analyzer evaluations.
func (c *Context) chargeDraft(n int) {
	if c.Clock == nil {
		return
	}
	c.Clock.Exploration += float64(n) * c.Cost.DraftEval
}

// scoreDraft evaluates the Symbol-based Analyzer over a candidate set,
// fanned across the session pool (the analyzer is a pure function of the
// lowered program), and charges the batch to the simulated clock on the
// serial path.
func (c *Context) scoreDraft(schs []*schedule.Schedule) []float64 {
	c.chargeDraft(len(schs))
	out := make([]float64, len(schs))
	c.Pool.ForEach(len(schs), func(i int) {
		out[i] = c.Draft.Score(c.lower(schs[i]))
	})
	return out
}

// Policy proposes schedules to measure.
type Policy interface {
	Name() string
	// NextBatch returns up to n unmeasured schedules for the task.
	NextBatch(ctx *Context, n int) []*schedule.Schedule
}

// SpecBudgeter is optionally implemented by policies with an explicit
// draft-stage candidate budget (the Pruner policy's |S_spec|). The tuner
// reads it to learn the budget Context.DraftBudget scales against, so
// adaptive control adapts to a policy's configured size instead of
// assuming the paper default.
type SpecBudgeter interface {
	SpecBudget() int
}

// scored pairs a schedule with a policy-internal score (higher better).
type scored struct {
	sch   *schedule.Schedule
	score float64
}

// topK returns the k highest-scoring entries (stable on ties).
func topK(cands []scored, k int) []scored {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// buildable statically rejects schedules the device cannot launch (the
// validity pre-filter Ansor applies before handing candidates to the cost
// model or the builder). It needs the draft analyzer's device; without
// one, everything passes.
func (c *Context) buildable(s *schedule.Schedule) bool {
	if c.Draft == nil {
		return true
	}
	dev := c.Draft.Dev
	if s.ThreadsPerBlock() > dev.MaxThreads {
		return false
	}
	lw := c.lower(s)
	sharedWords4 := lw.SharedPerBlock * float64(c.Task.Precision.Bytes()) / 4
	// Round the demand up: a schedule needing a fraction of a word beyond
	// the budget still allocates the extra word. Truncation here let
	// fractionally over-budget schedules through to measurement — the
	// exact class of invalid program the draft stage exists to prune.
	return int(math.Ceil(sharedWords4)) <= dev.SharedPerBlock
}

// pickBatch selects n unmeasured, deduplicated, buildable schedules from
// ranked candidates, filling an epsFrac share with random exploration, the
// ε-greedy step all policies end with.
func pickBatch(ctx *Context, ranked []scored, n int, epsFrac float64) []*schedule.Schedule {
	out := make([]*schedule.Schedule, 0, n)
	seen := map[string]bool{}
	nRandom := int(math.Round(float64(n) * epsFrac))
	for _, c := range ranked {
		if len(out) >= n-nRandom {
			break
		}
		fp := c.sch.Fingerprint()
		if seen[fp] || ctx.MeasuredSet[fp] || !ctx.buildable(c.sch) {
			continue
		}
		seen[fp] = true
		out = append(out, c.sch)
	}
	for tries := 0; len(out) < n && tries < n*16; tries++ {
		s := ctx.Gen.Random(ctx.RNG)
		fp := s.Fingerprint()
		if seen[fp] || ctx.MeasuredSet[fp] || !ctx.buildable(s) {
			continue
		}
		seen[fp] = true
		out = append(out, s)
	}
	return out
}

// bestMeasured returns up to k best-latency schedules from the task
// history to seed evolutionary populations.
func bestMeasured(ctx *Context, k int) []*schedule.Schedule {
	recs := make([]costmodel.Record, 0, len(ctx.Measured))
	for _, r := range ctx.Measured {
		if !math.IsInf(r.Latency, 1) && r.Latency > 0 {
			recs = append(recs, r)
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Latency < recs[j].Latency })
	if len(recs) > k {
		recs = recs[:k]
	}
	out := make([]*schedule.Schedule, len(recs))
	for i, r := range recs {
		out[i] = r.Sched
	}
	return out
}

// EvoParams parameterise the shared evolutionary loop.
type EvoParams struct {
	Population  int
	Generations int
	MutateProb  float64
	CrossProb   float64
}

// DefaultEvoParams mirrors Ansor's evolutionary-search defaults scaled to
// the paper's ~8,000 model evaluations per tuning round.
func DefaultEvoParams() EvoParams {
	return EvoParams{Population: 2000, Generations: 4, MutateProb: 0.85, CrossProb: 0.05}
}

// evolve runs a fitness-guided GA. scoreFn evaluates a generation and is
// charged by the caller; evolve returns every scored candidate seen,
// deduplicated, ranked descending.
func evolve(ctx *Context, p EvoParams, seed []*schedule.Schedule, scoreFn func([]*schedule.Schedule) []float64) []scored {
	pop := make([]*schedule.Schedule, 0, p.Population)
	pop = append(pop, seed...)
	if len(pop) > p.Population {
		pop = pop[:p.Population]
	}
	pop = append(pop, ctx.Gen.InitPopulation(ctx.RNG, p.Population-len(pop))...)

	all := map[string]scored{}
	for gen := 0; gen < p.Generations; gen++ {
		if ctx.cancelled() {
			break // the tuner discards rounds whose search was cut short
		}
		scores := scoreFn(pop)
		cands := make([]scored, len(pop))
		for i := range pop {
			c := scored{sch: pop[i], score: scores[i]}
			cands[i] = c
			fp := pop[i].Fingerprint()
			if prev, ok := all[fp]; !ok || c.score > prev.score {
				all[fp] = c
			}
		}
		if gen == p.Generations-1 {
			break
		}
		pop = nextGeneration(ctx, p, cands)
	}
	out := make([]scored, 0, len(all))
	for _, c := range all {
		out = append(out, c)
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].score != out[j].score {
			return out[i].score > out[j].score
		}
		return out[i].sch.Fingerprint() < out[j].sch.Fingerprint()
	})
	return out
}

// nextGeneration breeds a new population with fitness-proportional parent
// selection (softmax over ranks) plus mutation and crossover.
func nextGeneration(ctx *Context, p EvoParams, cands []scored) []*schedule.Schedule {
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].score > cands[j].score })
	// Rank-based selection weights.
	weights := make([]float64, len(cands))
	var sum float64
	for i := range cands {
		w := 1 / math.Sqrt(float64(i+1))
		weights[i] = w
		sum += w
	}
	sample := func() *schedule.Schedule {
		r := ctx.RNG.Float64() * sum
		for i, w := range weights {
			r -= w
			if r <= 0 {
				return cands[i].sch
			}
		}
		return cands[len(cands)-1].sch
	}
	next := make([]*schedule.Schedule, 0, p.Population)
	// Elitism: carry the top 5%.
	elite := len(cands) / 20
	for i := 0; i < elite && i < len(cands); i++ {
		next = append(next, cands[i].sch)
	}
	for len(next) < p.Population {
		switch r := ctx.RNG.Float64(); {
		case r < p.CrossProb:
			next = append(next, ctx.Gen.Crossover(ctx.RNG, sample(), sample()))
		case r < p.CrossProb+p.MutateProb:
			next = append(next, ctx.Gen.Mutate(ctx.RNG, sample()))
		default:
			next = append(next, ctx.Gen.Random(ctx.RNG))
		}
	}
	return next
}
