package search

import (
	"math"
	"math/rand"
	"testing"

	"pruner/internal/analyzer"
	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
)

// fractionalSharedTask returns an FP16 task and a schedule whose shared
// demand lands a fraction of a word over the given budget: FP16 halves
// the per-element word count, so odd tile extents produce x.5 word
// demands — the case the truncating filter admitted.
func fractionalSharedSetup(t *testing.T) (*ir.Task, *schedule.Schedule, float64) {
	t.Helper()
	task := ir.NewMatMul(6, 8, 14, ir.FP16, 0)
	// Block tiles: A stages 3*7 = 21 elements, B stages 4*7 = 28; the 49
	// FP16 elements make 24.5 four-byte words — a fractional demand.
	s := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{2, 1, 1, 3, 1}, {2, 2, 1, 2, 1},
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{2, 7, 1}},
		VectorLen:   1,
		UseShared:   true,
	}
	if err := s.Validate(task); err != nil {
		t.Fatalf("setup schedule invalid: %v", err)
	}
	lw := schedule.Lower(task, s)
	words4 := lw.SharedPerBlock * float64(task.Precision.Bytes()) / 4
	if words4 != math.Trunc(words4) {
		return task, s, words4
	}
	t.Fatalf("setup produced integral shared words %v; want fractional", words4)
	return nil, nil, 0
}

// TestBuildableRejectsFractionallyOverBudget is the regression test for
// the truncation bug: a schedule needing budget+0.5 words must not pass a
// budget-word validity filter.
func TestBuildableRejectsFractionallyOverBudget(t *testing.T) {
	task, s, words4 := fractionalSharedSetup(t)
	frac := words4 - math.Floor(words4)
	if frac <= 0 {
		t.Fatalf("demand %v has no fractional part", words4)
	}

	dev := *device.A100
	// Budget exactly floor(words4): the schedule is frac words over.
	dev.SharedPerBlock = int(math.Floor(words4))
	ctx := &Context{Task: task, Draft: analyzer.New(&dev)}
	if ctx.buildable(s) {
		t.Fatalf("schedule needing %v words passed a %d-word budget (truncation bug)", words4, dev.SharedPerBlock)
	}
	// One word more of budget and it fits.
	dev.SharedPerBlock = int(math.Ceil(words4))
	if !ctx.buildable(s) {
		t.Fatalf("schedule needing %v words rejected by a %d-word budget", words4, dev.SharedPerBlock)
	}
}

// TestGeneratorFitsRejectsFractionallyOverBudget pins the same boundary
// in the sampler's validity filter.
func TestGeneratorFitsRejectsFractionallyOverBudget(t *testing.T) {
	task, s, words4 := fractionalSharedSetup(t)
	gen := schedule.NewGenerator(task)
	gen.MaxSharedWords = int(math.Floor(words4))
	if gen.Fits(s) {
		t.Fatalf("generator admitted %v words against a %d-word budget", words4, gen.MaxSharedWords)
	}
	gen.MaxSharedWords = int(math.Ceil(words4))
	if !gen.Fits(s) {
		t.Fatalf("generator rejected %v words against a %d-word budget", words4, gen.MaxSharedWords)
	}
}

// TestRollerAlignedUsesDeviceCap: rollerAligned must honour the device
// preset's thread cap instead of a hardcoded 1024.
func TestRollerAlignedUsesDeviceCap(t *testing.T) {
	s := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{2, 32, 1, 2, 1}, {2, 32, 1, 2, 1}, // 1024 threads
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{4, 4, 4}},
		VectorLen:   1, UseShared: true,
	}
	if s.ThreadsPerBlock() != 1024 {
		t.Fatalf("setup: %d threads", s.ThreadsPerBlock())
	}
	if !rollerAligned(device.A100, s) {
		t.Fatal("1024-thread schedule should align on a 1024-cap device")
	}
	capped := *device.A100
	capped.MaxThreads = 512
	if rollerAligned(&capped, s) {
		t.Fatal("1024-thread schedule must not align on a 512-cap device")
	}
	// Warp-size plumb: a 48-thread schedule misaligns at warp 32 but
	// aligns on a (hypothetical) 16-wide-warp device.
	narrow := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{2, 48, 1, 2, 1}, {2, 1, 1, 2, 1},
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{4, 4, 4}},
		VectorLen:   1, UseShared: true,
	}
	if rollerAligned(device.A100, narrow) {
		t.Fatal("48 threads are not warp-aligned at warp size 32")
	}
	wide := *device.A100
	wide.WarpSize = 16
	if !rollerAligned(&wide, narrow) {
		t.Fatal("48 threads align at warp size 16")
	}
}

// TestRunLSEFieldwiseDefaults: setting SpecSize alone must not silently
// produce an empty draft set (the old all-or-nothing defaulting bug).
func TestRunLSEFieldwiseDefaults(t *testing.T) {
	task := ir.NewMatMul(128, 128, 128, ir.FP32, 0)
	ctx := newCtx(task, device.A100, 11)
	// Steps and Population left zero: each must default independently.
	spec := RunLSE(ctx, LSEParams{SpecSize: 24})
	if len(spec) == 0 {
		t.Fatal("SpecSize-only params produced an empty draft set")
	}
	if len(spec) > 24 {
		t.Fatalf("draft set %d exceeds requested SpecSize 24", len(spec))
	}

	p := LSEParams{Steps: 3}.withDefaults()
	def := DefaultLSEParams()
	if p.Steps != 3 {
		t.Fatalf("explicit Steps overwritten: %d", p.Steps)
	}
	if p.SpecSize != def.SpecSize || p.Population != def.Population ||
		p.MutateProb != def.MutateProb || p.CrossProb != def.CrossProb {
		t.Fatalf("unset fields not defaulted: %+v", p)
	}
}

// TestPolicyContractProperty is the policy contract across seeds and
// devices: every schedule a policy proposes is buildable (including the
// ceil-checked shared budget), unmeasured, valid and deduplicated.
func TestPolicyContractProperty(t *testing.T) {
	tasks := []*ir.Task{
		ir.NewMatMul(256, 384, 512, ir.FP32, 1),
		ir.NewMatMul(128, 256, 130, ir.FP16, 0), // odd extent: fractional shared demands
	}
	mkPolicies := func() []Policy {
		a := NewAnsorPolicy()
		a.Evo = EvoParams{Population: 64, Generations: 2, MutateProb: 0.8, CrossProb: 0.1}
		m := NewMetaSchedulePolicy()
		m.Evo = EvoParams{Population: 64, Generations: 2, MutateProb: 0.8, CrossProb: 0.1}
		p := NewPrunerPolicy()
		p.LSE = LSEParams{SpecSize: 32, Population: 48, Steps: 2, MutateProb: 0.8, CrossProb: 0.1}
		p.RandomDraft = 12
		p.ExploitDraft = 8
		r := NewRollerPolicy()
		r.CandidatePool = 256
		return []Policy{a, m, p, r}
	}
	for _, task := range tasks {
		for seed := int64(1); seed <= 3; seed++ {
			for _, dev := range []*device.Device{device.T4, device.Orin} {
				for _, p := range mkPolicies() {
					ctx := newCtx(task, dev, seed)
					ctx.Model = costmodel.NewRandom(seed)
					ctx.Memo = schedule.NewMemo()
					rng := rand.New(rand.NewSource(seed * 77))
					for i := 0; i < 6; i++ {
						fp := ctx.Gen.Random(rng).Fingerprint()
						ctx.MeasuredSet[fp] = true
					}
					batch := p.NextBatch(ctx, 8)
					if len(batch) == 0 {
						t.Fatalf("%s/%s seed %d: empty batch", p.Name(), dev.Name, seed)
					}
					seen := map[string]bool{}
					for _, s := range batch {
						if err := s.Validate(task); err != nil {
							t.Fatalf("%s/%s seed %d: invalid schedule: %v", p.Name(), dev.Name, seed, err)
						}
						fp := s.Fingerprint()
						if seen[fp] {
							t.Fatalf("%s/%s seed %d: duplicate in batch", p.Name(), dev.Name, seed)
						}
						if ctx.MeasuredSet[fp] {
							t.Fatalf("%s/%s seed %d: re-proposed a measured schedule", p.Name(), dev.Name, seed)
						}
						if !ctx.buildable(s) {
							t.Fatalf("%s/%s seed %d: unbuildable schedule proposed", p.Name(), dev.Name, seed)
						}
						seen[fp] = true
					}
				}
			}
		}
	}
}
