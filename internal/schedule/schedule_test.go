package schedule

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"pruner/internal/ir"
)

func testTask() *ir.Task {
	return ir.NewMatMul(512, 384, 768, ir.FP32, 1)
}

func TestRandomScheduleValid(t *testing.T) {
	task := testTask()
	g := NewGenerator(task)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		s := g.Random(rng)
		if err := s.Validate(task); err != nil {
			t.Fatalf("random schedule invalid: %v", err)
		}
		if s.ThreadsPerBlock() > g.MaxThreads {
			t.Fatalf("threads %d over limit", s.ThreadsPerBlock())
		}
	}
}

func TestMutateCrossoverPreserveValidity(t *testing.T) {
	task := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 28, W: 28, CI: 128, CO: 256, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}, ir.FP32, 1)
	g := NewGenerator(task)
	g.MaxSharedWords = 12288
	rng := rand.New(rand.NewSource(2))
	a, b := g.Random(rng), g.Random(rng)
	for i := 0; i < 300; i++ {
		a = g.Mutate(rng, a)
		if err := a.Validate(task); err != nil {
			t.Fatalf("mutation %d invalid: %v", i, err)
		}
		c := g.Crossover(rng, a, b)
		if err := c.Validate(task); err != nil {
			t.Fatalf("crossover %d invalid: %v", i, err)
		}
		b = c
	}
}

// TestFactorizationProperty: random factorisations always multiply back to
// the extent (property-based).
func TestFactorizationProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(extent16 uint16, parts8 uint8) bool {
		extent := int(extent16%4096) + 1
		parts := int(parts8%5) + 1
		fs := randomFactorization(rng, extent, parts)
		if len(fs) != parts {
			return false
		}
		p := 1
		for _, v := range fs {
			if v <= 0 {
				return false
			}
			p *= v
		}
		return p == extent
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFactorizationCount(t *testing.T) {
	// 12 = 2^2 * 3 into 2 parts: C(3,1)*C(2,1) = 6 ordered factorisations.
	if got := FactorizationCount(12, 2); got != 6 {
		t.Fatalf("FactorizationCount(12,2) = %d, want 6", got)
	}
	// A prime into k parts has k placements.
	if got := FactorizationCount(7, 5); got != 5 {
		t.Fatalf("FactorizationCount(7,5) = %d, want 5", got)
	}
	if got := FactorizationCount(1, 3); got != 1 {
		t.Fatalf("FactorizationCount(1,3) = %d, want 1", got)
	}
}

func TestSpaceSizeIsLarge(t *testing.T) {
	// The paper: GPU spaces reach billions of candidates.
	task := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 56, W: 56, CI: 256, CO: 512, KH: 3, KW: 3, Stride: 1, Pad: 1,
	}, ir.FP32, 1)
	if s := SpaceSize(task); s < 1e9 {
		t.Fatalf("space size %.3g; want >= 1e9", s)
	}
}

func TestFingerprintIdentity(t *testing.T) {
	task := testTask()
	g := NewGenerator(task)
	rng := rand.New(rand.NewSource(4))
	s := g.Random(rng)
	c := s.Clone()
	if s.Fingerprint() != c.Fingerprint() {
		t.Fatal("clone fingerprint differs")
	}
	m := g.Mutate(rng, s)
	if m.Fingerprint() == s.Fingerprint() {
		t.Log("mutation returned an equivalent schedule (allowed, rare)")
	}
	// Clone must be deep: mutating the clone cannot touch the original.
	c.SpatialTiles[0][0] = 999
	if s.SpatialTiles[0][0] == 999 {
		t.Fatal("Clone shares tile storage")
	}
}

func TestClampThreads(t *testing.T) {
	task := ir.NewMatMul(4096, 4096, 64, ir.FP32, 0)
	g := NewGenerator(task)
	g.MaxThreads = 128
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		s := g.Random(rng)
		if s.ThreadsPerBlock() > 128 {
			t.Fatalf("clamp failed: %d threads", s.ThreadsPerBlock())
		}
	}
}

func TestElementwiseSketchFlat(t *testing.T) {
	task := ir.NewElementwise(1<<16, 2, ir.FP32)
	g := NewGenerator(task)
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 50; i++ {
		s := g.Random(rng)
		if s.UseShared {
			t.Fatal("elementwise sketch must not use shared memory")
		}
		if s.VThreads() != 1 {
			t.Fatalf("elementwise sketch has vthreads %d", s.VThreads())
		}
	}
}

func TestTensorCoreAlignment(t *testing.T) {
	task := ir.NewMatMul(512, 512, 256, ir.FP16, 0)
	g := NewGenerator(task)
	g.TensorCore = true
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 60; i++ {
		s := g.Random(rng)
		if !s.TensorCore {
			continue // clamp fallback path may drop alignment
		}
		n := len(s.SpatialTiles)
		m := s.RegTile(n-2) * s.SpatialTiles[n-2][LvlThread]
		nn := s.RegTile(n-1) * s.SpatialTiles[n-1][LvlThread]
		if m%16 != 0 || nn%16 != 0 {
			t.Fatalf("unaligned TC tile %dx%d", m, nn)
		}
	}
}

func TestInitPopulationDistinct(t *testing.T) {
	task := testTask()
	g := NewGenerator(task)
	rng := rand.New(rand.NewSource(8))
	pop := g.InitPopulation(rng, 128)
	if len(pop) != 128 {
		t.Fatalf("population %d want 128", len(pop))
	}
	seen := map[string]bool{}
	dups := 0
	for _, s := range pop {
		fp := s.Fingerprint()
		if seen[fp] {
			dups++
		}
		seen[fp] = true
	}
	if dups > 5 {
		t.Fatalf("%d duplicate schedules in population", dups)
	}
}

func TestMaxSharedWordsRespected(t *testing.T) {
	task := ir.NewMatMul(2048, 2048, 2048, ir.FP32, 0)
	g := NewGenerator(task)
	g.MaxSharedWords = 12288 // 48 KiB
	rng := rand.New(rand.NewSource(9))
	over := 0
	for i := 0; i < 100; i++ {
		s := g.Random(rng)
		lw := Lower(task, s)
		if lw.SharedPerBlock > float64(g.MaxSharedWords) {
			over++
		}
	}
	// The clamp fallback can occasionally exceed; it must be rare.
	if over > 10 {
		t.Fatalf("%d/100 schedules exceed the shared-memory budget", over)
	}
}

// TestFingerprintFormatStable pins Fingerprint to the historical
// fmt-based format: the string feeds the simulator's micro-jitter hash,
// so changing its bytes would silently re-roll the calibrated ground
// truth.
func TestFingerprintFormatStable(t *testing.T) {
	task := ir.NewMatMul(64, 96, 128, ir.FP32, 0)
	g := NewGenerator(task)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		s := g.Random(rng)
		var sb strings.Builder
		for _, tile := range s.SpatialTiles {
			fmt.Fprintf(&sb, "s%v", tile)
		}
		for _, tile := range s.ReduceTiles {
			fmt.Fprintf(&sb, "r%v", tile)
		}
		fmt.Fprintf(&sb, "|u%d|v%d|sh%t|tc%t", s.UnrollStep, s.VectorLen, s.UseShared, s.TensorCore)
		if got := s.Fingerprint(); got != sb.String() {
			t.Fatalf("fingerprint format drifted:\n got %s\nwant %s", got, sb.String())
		}
		if s.Fingerprint() != s.Fingerprint() {
			t.Fatal("cached fingerprint unstable")
		}
	}
	// Clones must not inherit the cache: the genetic operators mutate them.
	s := g.Random(rng)
	_ = s.Fingerprint()
	c := g.Mutate(rng, s)
	var sb strings.Builder
	for _, tile := range c.SpatialTiles {
		fmt.Fprintf(&sb, "s%v", tile)
	}
	for _, tile := range c.ReduceTiles {
		fmt.Fprintf(&sb, "r%v", tile)
	}
	fmt.Fprintf(&sb, "|u%d|v%d|sh%t|tc%t", c.UnrollStep, c.VectorLen, c.UseShared, c.TensorCore)
	if c.Fingerprint() != sb.String() {
		t.Fatal("mutated clone fingerprint stale")
	}
}
