package schedule

import (
	"math/rand"
	"testing"
	"testing/quick"

	"pruner/internal/ir"
)

// fig3Schedule builds the GEMM schedule of the paper's Figure 3 with
// hand-checkable tile assignments:
//
//	i: 128 = [I0=4, I1=8, I2=2, I3=2, I4=1]
//	j: 128 = [J0=2, J1=16, J2=1, J3=2, J4=2]
//	k: 128 = [K0=8, K1=4, K2=4]
func fig3() (*ir.Task, *Schedule) {
	task := ir.NewMatMul(128, 128, 128, ir.FP32, 1) // GEMM-ReLU
	s := &Schedule{
		SpatialTiles: [][NumSpatialLevels]int{
			{4, 8, 2, 2, 1},
			{2, 16, 1, 2, 2},
		},
		ReduceTiles: [][NumReduceLevels]int{{8, 4, 4}},
		UnrollStep:  64,
		VectorLen:   1,
		UseShared:   true,
	}
	return task, s
}

func TestLowerFig3Symbols(t *testing.T) {
	task, s := fig3()
	if err := s.Validate(task); err != nil {
		t.Fatal(err)
	}
	lw := Lower(task, s)

	// S4 / L1ParaInfo: threads per block = I1*J1 = 8*16.
	if lw.ThreadsPerBlock != 128 {
		t.Errorf("threads = %d, want 128", lw.ThreadsPerBlock)
	}
	// S6 / L2ParaInfo: blocks = I0*J0 = 8.
	if lw.Blocks != 8 {
		t.Errorf("blocks = %d, want 8", lw.Blocks)
	}
	// L0_C = (I2..I4)*(J2..J4) = (2*2*1)*(1*2*2) = 16,
	// L0_A = I2*I3*I4 = 4, L0_B = J2*J3*J4 = 4 => S1 = 24.
	if lw.RegsPerThread != 24 {
		t.Errorf("S1 regs = %g, want 24", lw.RegsPerThread)
	}
	// S2 = L0_C tile x K = 16 * 128 = 2048 MACs per thread.
	if lw.ThreadCompute != 2048 {
		t.Errorf("S2 = %g, want 2048", lw.ThreadCompute)
	}
	// L1_A = (I1..I4)x(K1*K2) = 32*16 = 512; L1_B = (J1..J4)*16 = 64*16 =
	// 1024 => S3 = 1536.
	if lw.SharedPerBlock != 1536 {
		t.Errorf("S3 shared = %g, want 1536", lw.SharedPerBlock)
	}
	// Traffic: A = M*K*J0 = 128*128*2; B = N*K*I0 = 128*128*4; C = 128*128.
	wantTraffic := float64(128*128*2 + 128*128*4 + 128*128)
	if lw.GlobalWords != wantTraffic {
		t.Errorf("S5 traffic = %g, want %g", lw.GlobalWords, wantTraffic)
	}
	// S8: 2*M*N*K MACs + fused epilogue.
	wantFlops := 2.0*128*128*128 + 128*128
	if lw.TotalFlops != wantFlops {
		t.Errorf("S8 = %g, want %g", lw.TotalFlops, wantFlops)
	}
	// Statement structure: init, 2 shared loads, compute, epilogue, store.
	kinds := []StmtKind{StmtInit, StmtLoadShared, StmtLoadShared, StmtCompute, StmtEpilogue, StmtStore}
	if len(lw.Stmts) != len(kinds) {
		t.Fatalf("%d statements, want %d", len(lw.Stmts), len(kinds))
	}
	for i, k := range kinds {
		if lw.Stmts[i].Kind != k {
			t.Errorf("stmt %d kind %s, want %s", i, lw.Stmts[i].Kind, k)
		}
	}
	// The A shared load refills K0 = 8 times per block.
	if lw.Stmts[1].Trips != 8 {
		t.Errorf("shared-load trips = %g, want 8", lw.Stmts[1].Trips)
	}
}

func TestLowerElementwiseFlat(t *testing.T) {
	task := ir.NewElementwise(4096, 3, ir.FP32)
	g := NewGenerator(task)
	s := g.Random(rand.New(rand.NewSource(1)))
	lw := Lower(task, s)
	if lw.SharedPerBlock != 0 {
		t.Errorf("elementwise shared = %g, want 0", lw.SharedPerBlock)
	}
	// Load, compute (fused ops), store.
	if len(lw.Stmts) != 3 {
		t.Fatalf("%d statements, want 3", len(lw.Stmts))
	}
	if lw.TotalFlops != 3*4096 {
		t.Errorf("flops = %g, want %d", lw.TotalFlops, 3*4096)
	}
}

// TestLowerInvariants: for random schedules of random GEMMs, lowering
// maintains its core accounting invariants.
func TestLowerInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(mi, ni, ki uint8) bool {
		m := int(mi%64)*8 + 8
		n := int(ni%64)*8 + 8
		k := int(ki%64)*8 + 8
		task := ir.NewMatMul(m, n, k, ir.FP32, 1)
		g := NewGenerator(task)
		s := g.Random(rng)
		lw := Lower(task, s)
		// Traffic at least the compulsory footprint.
		compulsory := float64(m*k + k*n + m*n)
		if lw.GlobalWords < compulsory {
			return false
		}
		// Blocks x threads covers the space at least once.
		if lw.Blocks <= 0 || lw.ThreadsPerBlock <= 0 {
			return false
		}
		// Per-thread compute x total threads x vthreads >= total MACs.
		totalMacs := float64(m) * float64(n) * float64(k)
		covered := lw.ThreadCompute * float64(lw.Blocks) * float64(lw.ThreadsPerBlock)
		return covered >= totalMacs-1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLowerDepthwiseTouchesChannelAxis(t *testing.T) {
	task := ir.NewConv2D(ir.Conv2DShape{
		N: 1, H: 56, W: 56, CI: 96, CO: 96, KH: 3, KW: 3, Stride: 1, Pad: 1, Depthwise: true,
	}, ir.FP32, 1)
	g := NewGenerator(task)
	s := g.Random(rand.New(rand.NewSource(3)))
	lw := Lower(task, s)
	// Depthwise reduction is only over the kernel window: reduce points =
	// 1 * kh*kw = 9 per output element.
	wantFlops := 2.0*float64(task.OutputPoints())*9 + float64(task.OutputPoints())
	if lw.TotalFlops != wantFlops {
		t.Errorf("depthwise flops = %g, want %g", lw.TotalFlops, wantFlops)
	}
}

func TestHaloFootprintScale(t *testing.T) {
	shape := ir.Conv2DShape{N: 1, H: 28, W: 28, CI: 64, CO: 64, KH: 3, KW: 3, Stride: 1, Pad: 1}
	conv := ir.NewConv2D(shape, ir.FP32, 0)
	if fs := conv.Inputs[0].FootprintScale; fs >= 1 || fs <= 0 {
		t.Fatalf("3x3 s1 conv input should have halo scale in (0,1), got %g", fs)
	}
	shape.Stride = 2
	conv2 := ir.NewConv2D(shape, ir.FP32, 0)
	if conv2.Inputs[0].FootprintScale <= conv.Inputs[0].FootprintScale {
		t.Fatal("larger stride should reduce halo reuse (bigger scale)")
	}
}
