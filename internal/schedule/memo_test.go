package schedule

import (
	"math/rand"
	"sync"
	"testing"

	"pruner/internal/ir"
)

// TestMemoSharesOneLoweringPerFingerprint: the memo must hand every
// caller the same *Lowered for a fingerprint (so feature caches are
// shared) and be safe under concurrent access from pool workers.
func TestMemoSharesOneLoweringPerFingerprint(t *testing.T) {
	task := ir.NewMatMul(128, 128, 128, ir.FP32, 1)
	gen := NewGenerator(task)
	rng := rand.New(rand.NewSource(5))
	schs := gen.InitPopulation(rng, 32)
	memo := NewMemo()

	first := make([]*Lowered, len(schs))
	for i, s := range schs {
		first[i] = memo.Lower(task, s)
	}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i, s := range schs {
				if got := memo.Lower(task, s); got != first[i] {
					t.Errorf("schedule %d: memo returned a different instance", i)
					return
				}
			}
		}()
	}
	wg.Wait()
	if memo.Len() > len(schs) {
		t.Fatalf("memo holds %d entries for %d schedules", memo.Len(), len(schs))
	}

	// Clones share fingerprints, so they must share the memoized program.
	c := schs[0].Clone()
	if memo.Lower(task, c) != first[0] {
		t.Fatal("clone with equal fingerprint missed the memo")
	}
}

// TestMemoRejectsCrossTaskUse: the cache keys by fingerprint alone, so
// sharing a memo across tasks must fail loudly instead of serving
// another task's lowering.
func TestMemoRejectsCrossTaskUse(t *testing.T) {
	a := ir.NewMatMul(64, 64, 64, ir.FP32, 0)
	b := ir.NewMatMul(32, 32, 32, ir.FP32, 0)
	memo := NewMemo()
	memo.Lower(a, NewGenerator(a).Random(rand.New(rand.NewSource(1))))
	defer func() {
		if recover() == nil {
			t.Fatal("cross-task memo use should panic")
		}
	}()
	memo.Lower(b, NewGenerator(b).Random(rand.New(rand.NewSource(2))))
}

// TestMemoNilDegradesToLower: call sites never special-case "no memo".
func TestMemoNilDegradesToLower(t *testing.T) {
	task := ir.NewMatMul(64, 64, 64, ir.FP32, 0)
	s := NewGenerator(task).Random(rand.New(rand.NewSource(7)))
	var m *Memo
	lw := m.Lower(task, s)
	if lw == nil || lw.Sched != s {
		t.Fatal("nil memo must lower directly")
	}
	if m.Len() != 0 {
		t.Fatal("nil memo reports entries")
	}
}

// TestFeatureRowsCachedOnce: FeatureRows computes each family once per
// Lowered, shares the result, and isolates slots.
func TestFeatureRowsCachedOnce(t *testing.T) {
	task := ir.NewMatMul(64, 64, 64, ir.FP32, 0)
	s := NewGenerator(task).Random(rand.New(rand.NewSource(9)))
	lw := Lower(task, s)
	calls := 0
	compute := func(*Lowered) [][]float64 {
		calls++
		return [][]float64{{1, 2}}
	}
	a := lw.FeatureRows(0, compute)
	b := lw.FeatureRows(0, compute)
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
	if &a[0][0] != &b[0][0] {
		t.Fatal("cached feature rows not shared")
	}
	other := lw.FeatureRows(1, func(*Lowered) [][]float64 { return [][]float64{{3}} })
	if other[0][0] != 3 {
		t.Fatal("slots must be independent")
	}
}
