package schedule

import (
	"sync"

	"pruner/internal/ir"
)

// Memo caches lowered programs by schedule fingerprint, so one tuning
// round lowers (and, through Lowered's feature cache, featurizes) each
// candidate exactly once across draft scoring, the buildability
// pre-filter and cost-model verification — instead of up to three times.
// It is safe for concurrent use by pool workers; Lower is a pure function
// of (task, schedule), so memoization cannot change any computed value.
//
// A Memo is scoped to one task: the tuner creates a fresh one per
// measurement round, which both bounds memory and keeps cache entries
// from outliving the round's candidate pool.
type Memo struct {
	mu     sync.Mutex
	task   *ir.Task
	m      map[string]*Lowered
	misses int
}

// NewMemo returns an empty memo.
func NewMemo() *Memo {
	return &Memo{m: make(map[string]*Lowered)}
}

// Lower returns the memoized lowering of (t, s), computing and caching it
// on first sight. A nil memo degrades to plain Lower, so call sites never
// special-case "no memo". When two workers race on the same fingerprint
// the first stored instance wins, keeping feature caches shared.
func (m *Memo) Lower(t *ir.Task, s *Schedule) *Lowered {
	if m == nil {
		return Lower(t, s)
	}
	fp := s.Fingerprint()
	m.mu.Lock()
	// The cache keys by schedule fingerprint alone, so one memo must only
	// ever see one task; fail loudly on misuse rather than serve another
	// task's lowering.
	if m.task == nil {
		m.task = t
	} else if m.task != t {
		m.mu.Unlock()
		panic("schedule: Memo shared across tasks (it is scoped to one task per round)")
	}
	lw := m.m[fp]
	m.mu.Unlock()
	if lw != nil {
		return lw
	}
	lw = Lower(t, s)
	m.mu.Lock()
	if prev := m.m[fp]; prev != nil {
		lw = prev
	} else {
		m.m[fp] = lw
		m.misses++
	}
	m.mu.Unlock()
	return lw
}

// Misses reports how many distinct programs this memo actually lowered
// (cache misses that stored an entry). The training-engine tests use it
// to pin "each record is lowered and featurized once per session".
func (m *Memo) Misses() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.misses
}

// Len reports the number of cached programs (tests, introspection).
func (m *Memo) Len() int {
	if m == nil {
		return 0
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
