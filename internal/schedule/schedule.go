// Package schedule defines the search space of the tuner: Ansor-style
// multi-level tiling schedules over ir.Task loop nests, their random
// sampling and genetic operators, and the lowering of (task, schedule)
// pairs into the buffer statements the analyzer, feature extractors and
// simulator consume.
//
// Tiling convention (matching the paper's Figure 3): every spatial axis is
// split into five levels [Grid, Thread, VThread, Inner0, Inner1] whose
// product equals the axis extent; every reduction axis into three levels
// [Outer, Mid, Inner]. Level 0 maps to blockIdx, level 1 to threadIdx,
// level 2 to virtual threads, levels 3-4 stay in registers. The reduction
// Outer level is the loop that re-fills shared memory.
package schedule

import (
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"sync/atomic"

	"pruner/internal/ir"
)

// Spatial tile level indices.
const (
	LvlGrid = iota
	LvlThread
	LvlVThread
	LvlInner0
	LvlInner1
	NumSpatialLevels
)

// Reduction tile level indices.
const (
	RLvlOuter = iota
	RLvlMid
	RLvlInner
	NumReduceLevels
)

// UnrollSteps are the auto-unroll annotation choices (0 disables).
var UnrollSteps = []int{0, 16, 64, 512, 1024}

// VectorLens are the vectorised-access annotation choices.
var VectorLens = []int{1, 2, 4}

// Schedule is one point in the search space for a task.
type Schedule struct {
	SpatialTiles [][NumSpatialLevels]int
	ReduceTiles  [][NumReduceLevels]int
	UnrollStep   int
	VectorLen    int
	// UseShared enables the cooperative shared-memory cache-read stage.
	// Sketch rules force it on for tiled tasks; it is part of the space so
	// ablations can disable it.
	UseShared bool
	// TensorCore requests wmma execution (FP16 tiled tasks only). Inner
	// spatial/reduction tiles must align to the device fragment size.
	TensorCore bool

	// fp caches Fingerprint. Schedules are immutable once the generator
	// returns them; the cache is atomic because measurement workers may
	// fingerprint concurrently. The profile showed fingerprinting inside
	// sort comparators dominating the serial portion of a tuning round.
	fp atomic.Pointer[string]
}

// Clone returns a deep copy. The fingerprint cache is deliberately not
// carried over: the genetic operators clone precisely in order to mutate.
func (s *Schedule) Clone() *Schedule {
	c := &Schedule{
		UnrollStep: s.UnrollStep,
		VectorLen:  s.VectorLen,
		UseShared:  s.UseShared,
		TensorCore: s.TensorCore,
	}
	c.SpatialTiles = make([][NumSpatialLevels]int, len(s.SpatialTiles))
	copy(c.SpatialTiles, s.SpatialTiles)
	c.ReduceTiles = make([][NumReduceLevels]int, len(s.ReduceTiles))
	copy(c.ReduceTiles, s.ReduceTiles)
	return c
}

// Fingerprint is a canonical string identity for deduplication.
func (s *Schedule) Fingerprint() string {
	if p := s.fp.Load(); p != nil {
		return *p
	}
	// Built with strconv rather than fmt (an order of magnitude cheaper),
	// but byte-identical to the historical fmt-based format: the string
	// also feeds the simulator's deterministic micro-jitter hash, so its
	// exact bytes are part of the calibrated ground truth.
	b := make([]byte, 0, 24*(len(s.SpatialTiles)+len(s.ReduceTiles))+32)
	appendTile := func(prefix byte, tile []int) {
		b = append(b, prefix, '[')
		for i, v := range tile {
			if i > 0 {
				b = append(b, ' ')
			}
			b = strconv.AppendInt(b, int64(v), 10)
		}
		b = append(b, ']')
	}
	for i := range s.SpatialTiles {
		appendTile('s', s.SpatialTiles[i][:])
	}
	for i := range s.ReduceTiles {
		appendTile('r', s.ReduceTiles[i][:])
	}
	b = append(b, "|u"...)
	b = strconv.AppendInt(b, int64(s.UnrollStep), 10)
	b = append(b, "|v"...)
	b = strconv.AppendInt(b, int64(s.VectorLen), 10)
	b = append(b, "|sh"...)
	b = strconv.AppendBool(b, s.UseShared)
	b = append(b, "|tc"...)
	b = strconv.AppendBool(b, s.TensorCore)
	str := string(b)
	s.fp.Store(&str)
	return str
}

// ThreadsPerBlock is the product of thread-level tile extents.
func (s *Schedule) ThreadsPerBlock() int {
	t := 1
	for _, tile := range s.SpatialTiles {
		t *= tile[LvlThread]
	}
	return t
}

// Blocks is the grid size (product of grid-level tile extents).
func (s *Schedule) Blocks() int64 {
	b := int64(1)
	for _, tile := range s.SpatialTiles {
		b *= int64(tile[LvlGrid])
	}
	return b
}

// VThreads is the product of virtual-thread tile extents.
func (s *Schedule) VThreads() int {
	v := 1
	for _, tile := range s.SpatialTiles {
		v *= tile[LvlVThread]
	}
	return v
}

// Validate checks structural consistency against the task.
func (s *Schedule) Validate(t *ir.Task) error {
	if len(s.SpatialTiles) != len(t.Spatial) {
		return fmt.Errorf("schedule has %d spatial tiles, task %s has %d axes", len(s.SpatialTiles), t.Name, len(t.Spatial))
	}
	if len(s.ReduceTiles) != len(t.Reduce) {
		return fmt.Errorf("schedule has %d reduce tiles, task %s has %d axes", len(s.ReduceTiles), t.Name, len(t.Reduce))
	}
	for d, tile := range s.SpatialTiles {
		p := 1
		for l, f := range tile {
			if f <= 0 {
				return fmt.Errorf("spatial tile[%d][%d]=%d", d, l, f)
			}
			p *= f
		}
		if p != t.Spatial[d] {
			return fmt.Errorf("spatial tile %d: product %d != extent %d", d, p, t.Spatial[d])
		}
	}
	for d, tile := range s.ReduceTiles {
		p := 1
		for l, f := range tile {
			if f <= 0 {
				return fmt.Errorf("reduce tile[%d][%d]=%d", d, l, f)
			}
			p *= f
		}
		if p != t.Reduce[d] {
			return fmt.Errorf("reduce tile %d: product %d != extent %d", d, p, t.Reduce[d])
		}
	}
	if s.VectorLen <= 0 {
		return fmt.Errorf("vector length %d", s.VectorLen)
	}
	if s.TensorCore && !t.TensorCoreEligible() {
		return fmt.Errorf("tensorcore schedule on ineligible task %s", t.Name)
	}
	return nil
}

// RegTile is the per-thread output tile along axis d (vthread and inner
// levels).
func (s *Schedule) RegTile(d int) int {
	tile := s.SpatialTiles[d]
	return tile[LvlVThread] * tile[LvlInner0] * tile[LvlInner1]
}

// InnerTile is the innermost serial tile along axis d (levels 3-4 only).
func (s *Schedule) InnerTile(d int) int {
	tile := s.SpatialTiles[d]
	return tile[LvlInner0] * tile[LvlInner1]
}

// ReduceInner is the shared-memory-resident reduction extent along axis d
// (Mid * Inner).
func (s *Schedule) ReduceInner(d int) int {
	tile := s.ReduceTiles[d]
	return tile[RLvlMid] * tile[RLvlInner]
}

// ---------------------------------------------------------------------------
// Factorisation utilities.

// primeFactors returns the prime factorisation of n as an ascending slice
// with multiplicity.
func primeFactors(n int) []int {
	var fs []int
	for p := 2; p*p <= n; p++ {
		for n%p == 0 {
			fs = append(fs, p)
			n /= p
		}
	}
	if n > 1 {
		fs = append(fs, n)
	}
	return fs
}

// randomFactorization splits extent into parts factors whose product is
// extent, distributing prime factors uniformly at random.
func randomFactorization(rng *rand.Rand, extent, parts int) []int {
	out := make([]int, parts)
	for i := range out {
		out[i] = 1
	}
	for _, p := range primeFactors(extent) {
		out[rng.Intn(parts)] *= p
	}
	return out
}

// FactorizationCount returns the number of distinct ordered factorisations
// of extent into parts factors — the per-axis schedule space size.
func FactorizationCount(extent, parts int) int64 {
	counts := map[int]int{}
	for _, p := range primeFactors(extent) {
		counts[p]++
	}
	total := int64(1)
	for _, m := range counts {
		// stars and bars: C(m+parts-1, parts-1)
		total *= binom(int64(m+parts-1), int64(parts-1))
	}
	return total
}

func binom(n, k int64) int64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := int64(1)
	for i := int64(0); i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

// SpaceSize estimates the total number of tile assignments for a task
// (annotations excluded), matching the paper's observation that GPU spaces
// reach billions of candidates.
func SpaceSize(t *ir.Task) float64 {
	total := 1.0
	for _, e := range t.Spatial {
		total *= float64(FactorizationCount(e, NumSpatialLevels))
	}
	for _, e := range t.Reduce {
		total *= float64(FactorizationCount(e, NumReduceLevels))
	}
	return total
}

// ---------------------------------------------------------------------------
// Generation.

// Generator samples and mutates schedules for one task. It embodies the
// sketch-generation rules: tiled tasks get the full multi-level structure
// with a shared-memory stage; elementwise tasks get a flat grid/thread
// split.
type Generator struct {
	Task *ir.Task
	// MaxThreads bounds threadIdx extents during sampling (rejection).
	MaxThreads int
	// MaxSharedWords bounds the shared-memory allocation (in 4-byte
	// words); 0 disables the check. Sampling rejects over-allocating
	// schedules, mirroring Ansor's validity filter on sampled programs.
	MaxSharedWords int
	// TensorCore makes the generator emit wmma-aligned schedules.
	TensorCore bool
	// WMMA is the fragment size for TensorCore alignment (16).
	WMMA int
}

// NewGenerator returns a generator with default constraints.
func NewGenerator(t *ir.Task) *Generator {
	return &Generator{Task: t, MaxThreads: 1024, WMMA: 16}
}

// Fits reports whether a schedule satisfies the generator's resource
// constraints (the sampler-side validity pre-filter).
func (g *Generator) Fits(s *Schedule) bool {
	tp := s.ThreadsPerBlock()
	if tp < 1 || tp > g.MaxThreads {
		return false
	}
	if g.MaxSharedWords > 0 && g.Task.Tiled() && s.UseShared {
		lw := Lower(g.Task, s)
		words4 := lw.SharedPerBlock * float64(g.Task.Precision.Bytes()) / 4
		// Ceil, not truncate: a fractional word still allocates a whole one,
		// so truncation admitted schedules just past the budget (the same
		// bug the search-side buildable filter had).
		if int(math.Ceil(words4)) > g.MaxSharedWords {
			return false
		}
	}
	return true
}

// Random samples one valid schedule.
func (g *Generator) Random(rng *rand.Rand) *Schedule {
	const attempts = 64
	var best *Schedule
	for i := 0; i < attempts; i++ {
		s := g.randomOnce(rng)
		if g.Fits(s) {
			if g.TensorCore && !g.tcAligned(s) {
				continue
			}
			return s
		}
		best = s
	}
	// Fall back to clamping: force thread and shared-memory budgets.
	if best == nil {
		best = g.randomOnce(rng)
	}
	g.clampThreads(best)
	g.clampShared(best)
	return best
}

// clampShared moves reduction factors from the shared-resident levels to
// the outer (refill) level, and spatial inner factors to the grid level,
// until the shared allocation fits the budget.
func (g *Generator) clampShared(s *Schedule) {
	if g.MaxSharedWords <= 0 || !g.Task.Tiled() || !s.UseShared {
		return
	}
	for iter := 0; iter < 64; iter++ {
		lw := Lower(g.Task, s)
		words4 := lw.SharedPerBlock * float64(g.Task.Precision.Bytes()) / 4
		if int(math.Ceil(words4)) <= g.MaxSharedWords {
			return
		}
		// Prefer shrinking the shared-resident reduction extent.
		bestD, bestV := -1, 1
		for d := range s.ReduceTiles {
			if v := s.ReduceInner(d); v > bestV {
				bestV, bestD = v, d
			}
		}
		if bestD >= 0 && bestV > 1 {
			tile := &s.ReduceTiles[bestD]
			lvl := RLvlMid
			if tile[RLvlInner] > tile[RLvlMid] {
				lvl = RLvlInner
			}
			fs := primeFactors(tile[lvl])
			p := fs[len(fs)-1]
			tile[lvl] /= p
			tile[RLvlOuter] *= p
			continue
		}
		// Then shrink the block's spatial tile.
		bestD, bestV = -1, 1
		for d := range s.SpatialTiles {
			if v := s.RegTile(d); v > bestV {
				bestV, bestD = v, d
			}
		}
		if bestD < 0 {
			return
		}
		tile := &s.SpatialTiles[bestD]
		lvl := LvlVThread
		for _, l := range []int{LvlInner1, LvlInner0, LvlVThread} {
			if tile[l] > 1 {
				lvl = l
				break
			}
		}
		if tile[lvl] == 1 {
			return
		}
		fs := primeFactors(tile[lvl])
		p := fs[len(fs)-1]
		tile[lvl] /= p
		tile[LvlGrid] *= p
	}
}

func (g *Generator) randomOnce(rng *rand.Rand) *Schedule {
	t := g.Task
	s := &Schedule{
		SpatialTiles: make([][NumSpatialLevels]int, len(t.Spatial)),
		ReduceTiles:  make([][NumReduceLevels]int, len(t.Reduce)),
		UnrollStep:   UnrollSteps[rng.Intn(len(UnrollSteps))],
		VectorLen:    VectorLens[rng.Intn(len(VectorLens))],
		UseShared:    t.Tiled(),
		TensorCore:   g.TensorCore && t.TensorCoreEligible(),
	}
	for d, e := range t.Spatial {
		f := randomFactorization(rng, e, NumSpatialLevels)
		copy(s.SpatialTiles[d][:], f)
	}
	for d, e := range t.Reduce {
		f := randomFactorization(rng, e, NumReduceLevels)
		copy(s.ReduceTiles[d][:], f)
	}
	if !t.Tiled() {
		// Flat sketch: no vthread, no shared stage; fold everything beyond
		// grid/thread into the serial inner levels.
		for d := range s.SpatialTiles {
			tile := &s.SpatialTiles[d]
			tile[LvlInner0] *= tile[LvlVThread]
			tile[LvlVThread] = 1
		}
	}
	return s
}

// tcAligned reports whether the two innermost spatial axes' thread-local
// tiles and the reduction inner extent align to the wmma fragment.
func (g *Generator) tcAligned(s *Schedule) bool {
	n := len(s.SpatialTiles)
	if n < 2 || len(s.ReduceTiles) == 0 {
		return false
	}
	m := s.RegTile(n-2) * s.SpatialTiles[n-2][LvlThread]
	nn := s.RegTile(n-1) * s.SpatialTiles[n-1][LvlThread]
	k := s.ReduceInner(0)
	for _, t := range s.ReduceTiles[1:] {
		k *= t[RLvlMid] * t[RLvlInner]
	}
	w := g.WMMA
	return m%w == 0 && nn%w == 0 && k%w == 0
}

// clampThreads rebalances thread-level factors into the grid level until
// the block size is legal.
func (g *Generator) clampThreads(s *Schedule) {
	for s.ThreadsPerBlock() > g.MaxThreads {
		// Move the largest prime factor of the largest thread tile to grid.
		bestD, bestV := -1, 1
		for d := range s.SpatialTiles {
			if s.SpatialTiles[d][LvlThread] > bestV {
				bestV = s.SpatialTiles[d][LvlThread]
				bestD = d
			}
		}
		if bestD < 0 {
			return
		}
		fs := primeFactors(bestV)
		p := fs[len(fs)-1]
		s.SpatialTiles[bestD][LvlThread] /= p
		s.SpatialTiles[bestD][LvlGrid] *= p
	}
}

// InitPopulation samples n distinct schedules (best effort on
// distinctness).
func (g *Generator) InitPopulation(rng *rand.Rand, n int) []*Schedule {
	seen := make(map[string]bool, n)
	out := make([]*Schedule, 0, n)
	for tries := 0; len(out) < n && tries < n*8; tries++ {
		s := g.Random(rng)
		fp := s.Fingerprint()
		if seen[fp] {
			continue
		}
		seen[fp] = true
		out = append(out, s)
	}
	for len(out) < n { // tiny spaces: allow duplicates rather than starve
		out = append(out, g.Random(rng))
	}
	return out
}

// Mutate returns a mutated copy of s. Mutations move a prime factor
// between two levels of one axis (the paper's tiling-factor
// transformation), or flip an annotation.
func (g *Generator) Mutate(rng *rand.Rand, s *Schedule) *Schedule {
	c := s.Clone()
	nSpatial := len(c.SpatialTiles)
	nReduce := len(c.ReduceTiles)
	for attempt := 0; attempt < 8; attempt++ {
		switch choice := rng.Intn(10); {
		case choice < 6 && nSpatial > 0: // spatial tile move
			d := rng.Intn(nSpatial)
			if g.moveFactor(rng, c.SpatialTiles[d][:]) {
				if !g.Task.Tiled() {
					c.SpatialTiles[d][LvlInner0] *= c.SpatialTiles[d][LvlVThread]
					c.SpatialTiles[d][LvlVThread] = 1
				}
				if g.Fits(c) && (!c.TensorCore || g.tcAligned(c)) {
					return c
				}
				c = s.Clone()
			}
		case choice < 8 && nReduce > 0: // reduction tile move
			d := rng.Intn(nReduce)
			if g.moveFactor(rng, c.ReduceTiles[d][:]) {
				if g.Fits(c) && (!c.TensorCore || g.tcAligned(c)) {
					return c
				}
				c = s.Clone()
			}
		case choice == 8:
			c.UnrollStep = UnrollSteps[rng.Intn(len(UnrollSteps))]
			return c
		default:
			c.VectorLen = VectorLens[rng.Intn(len(VectorLens))]
			return c
		}
	}
	return c
}

// moveFactor transfers one prime factor between two random levels of a
// tile; returns false if the tile is all ones.
func (g *Generator) moveFactor(rng *rand.Rand, tile []int) bool {
	var srcLevels []int
	for l, f := range tile {
		if f > 1 {
			srcLevels = append(srcLevels, l)
		}
	}
	if len(srcLevels) == 0 {
		return false
	}
	src := srcLevels[rng.Intn(len(srcLevels))]
	dst := rng.Intn(len(tile) - 1)
	if dst >= src {
		dst++
	}
	fs := primeFactors(tile[src])
	p := fs[rng.Intn(len(fs))]
	tile[src] /= p
	tile[dst] *= p
	return true
}

// Crossover combines per-axis tiles of two parents.
func (g *Generator) Crossover(rng *rand.Rand, a, b *Schedule) *Schedule {
	c := a.Clone()
	for d := range c.SpatialTiles {
		if rng.Intn(2) == 1 {
			c.SpatialTiles[d] = b.SpatialTiles[d]
		}
	}
	for d := range c.ReduceTiles {
		if rng.Intn(2) == 1 {
			c.ReduceTiles[d] = b.ReduceTiles[d]
		}
	}
	if rng.Intn(2) == 1 {
		c.UnrollStep = b.UnrollStep
	}
	if rng.Intn(2) == 1 {
		c.VectorLen = b.VectorLen
	}
	if !g.Fits(c) || (c.TensorCore && !g.tcAligned(c)) {
		return a.Clone()
	}
	return c
}
