package schedule

import (
	"sync"

	"pruner/internal/ir"
)

// MemLevel identifies the memory hierarchy levels of the paper: L0
// registers, L1 shared memory, L2 global memory.
type MemLevel int

const (
	L0 MemLevel = iota
	L1
	L2
)

func (l MemLevel) String() string {
	switch l {
	case L0:
		return "L0"
	case L1:
		return "L1"
	default:
		return "L2"
	}
}

// StmtKind classifies the data-movement blocks of the multi-tiling
// pattern (paper Figure 4: shared loads, the compute block, the fused
// epilogue, the write-back).
type StmtKind int

const (
	// StmtInit zero-initialises the accumulator (C.local = 0).
	StmtInit StmtKind = iota
	// StmtLoadShared cooperatively stages an operand L2 -> L1.
	StmtLoadShared
	// StmtLoadGlobal streams an operand L2 -> L0 directly (flat sketches).
	StmtLoadGlobal
	// StmtCompute performs the MAC block L1 -> L0 (or L2 -> L0 when flat).
	StmtCompute
	// StmtEpilogue applies fused elementwise ops in registers.
	StmtEpilogue
	// StmtStore writes the result L0 -> L2.
	StmtStore
)

var stmtKindNames = [...]string{
	StmtInit:       "init",
	StmtLoadShared: "load_shared",
	StmtLoadGlobal: "load_global",
	StmtCompute:    "compute",
	StmtEpilogue:   "epilogue",
	StmtStore:      "store",
}

func (k StmtKind) String() string {
	if int(k) < len(stmtKindNames) {
		return stmtKindNames[k]
	}
	return "stmt?"
}

// Statement is one data-movement block of the lowered program. Quantities
// are totals across the whole kernel execution unless suffixed PerUnit.
type Statement struct {
	Kind   StmtKind
	Buffer string
	From   MemLevel
	To     MemLevel

	// Flops attributed to this statement (compute/epilogue only).
	Flops float64
	// MoveWords moved between From and To across the kernel.
	MoveWords float64
	// AllocWords allocated at To: per thread for L0, per block for L1.
	AllocWords float64
	// Reuse is how many times each staged element is consumed.
	Reuse float64
	// ContigRun is the contiguous run length (elements) of the From-side
	// access, driving coalescing / transaction efficiency.
	ContigRun float64
	// StrideElems is the distance between consecutive runs.
	StrideElems float64
	// Threads cooperating in this statement.
	Threads int
	// Trips is how many times the statement region executes per block.
	Trips float64
	// TensorCore marks wmma compute statements.
	TensorCore bool
}

// Lowered is the analyzable form of (task, schedule): the statement list
// plus the schedule-level scalars the hardware-aware symbols are built
// from.
type Lowered struct {
	Task  *ir.Task
	Sched *Schedule

	Blocks          int64   // S6 (L2ParaInfo)
	ThreadsPerBlock int     // S4 (L1ParaInfo)
	VThreads        int     //
	RegsPerThread   float64 // S1 (L0MemAlloc), words
	ThreadCompute   float64 // S2 (L0CompCount), MACs per thread
	SharedPerBlock  float64 // S3 (L1MemAlloc), words
	GlobalWords     float64 // S5 (L2MemFootprint), words moved at L2
	TotalFlops      float64 // S8 (L2CompCount)

	Stmts []Statement

	// featOnce / feat cache derived per-program feature matrices (one slot
	// per family, indexed by the features package), so a memoized program
	// is featurized at most once per round even when draft scoring,
	// verification and training all touch it. Lowered must therefore not
	// be copied by value once shared.
	featOnce [NumFeatureSlots]sync.Once
	feat     [NumFeatureSlots][][]float64
}

// NumFeatureSlots is the number of cached feature families on a Lowered
// program (statement, dataflow and primitive features).
const NumFeatureSlots = 3

// FeatureRows returns the cached feature matrix for the given slot,
// computing it with compute on first use. Concurrent callers are safe:
// the winning computation is shared and compute runs at most once per
// slot. compute must be a pure function of the lowered program.
func (lw *Lowered) FeatureRows(slot int, compute func(*Lowered) [][]float64) [][]float64 {
	lw.featOnce[slot].Do(func() { lw.feat[slot] = compute(lw) }) //pruner:allow hotalloc — one closure per (lowered, slot) miss; round-memoed Lowereds make steady-state calls cache hits that never reach Do's slow path
	return lw.feat[slot]
}

// Lower materialises the statements of (task, schedule). It never fails:
// resource overflows are left for the analyzer's penalties and the
// simulator's launch check to punish, mirroring how Ansor lets the
// hardware reject invalid programs.
func Lower(t *ir.Task, s *Schedule) *Lowered {
	lw := &Lowered{
		Task:            t,
		Sched:           s,
		Blocks:          s.Blocks(),
		ThreadsPerBlock: s.ThreadsPerBlock(),
		VThreads:        s.VThreads(),
	}
	if t.Tiled() && s.UseShared {
		lw.lowerTiled()
	} else {
		lw.lowerFlat()
	}
	return lw
}

// macsPerBlockTrip is the multiply-adds executed by one block during one
// reduction-outer trip.
func (lw *Lowered) macsPerBlockTrip() float64 {
	s := lw.Sched
	m := 1.0
	for d := range s.SpatialTiles {
		tile := s.SpatialTiles[d]
		m *= float64(tile[LvlThread] * tile[LvlVThread] * tile[LvlInner0] * tile[LvlInner1])
	}
	for d := range s.ReduceTiles {
		m *= float64(s.ReduceTiles[d][RLvlMid] * s.ReduceTiles[d][RLvlInner])
	}
	return m
}

// reduceOuterTrips is the product of reduction Outer levels: how often the
// shared-memory stage refills.
func (lw *Lowered) reduceOuterTrips() float64 {
	trips := 1.0
	for d := range lw.Sched.ReduceTiles {
		trips *= float64(lw.Sched.ReduceTiles[d][RLvlOuter])
	}
	return trips
}

// operandSharedTile is the shared-memory tile (words) one block stages for
// the operand during one reduction-outer trip.
func (lw *Lowered) operandSharedTile(o *ir.Operand) float64 {
	s := lw.Sched
	tile := 1.0
	for _, d := range o.SpatialIdx {
		sp := s.SpatialTiles[d]
		tile *= float64(sp[LvlThread] * sp[LvlVThread] * sp[LvlInner0] * sp[LvlInner1])
	}
	for _, r := range o.ReduceIdx {
		rt := s.ReduceTiles[r]
		tile *= float64(rt[RLvlMid] * rt[RLvlInner])
	}
	return tile * o.FootprintScale
}

// operandRegTile is the per-thread register fragment of an input operand:
// the paper's L0_A = Prod([I2..I4]) — vthread and inner levels along the
// operand's spatial axes only.
func (lw *Lowered) operandRegTile(o *ir.Operand) float64 {
	tile := 1.0
	for _, d := range o.SpatialIdx {
		tile *= float64(lw.Sched.RegTile(d))
	}
	return tile
}

// operandContigRun is the contiguous run length (elements) of the
// operand's global access within one staged tile.
func (lw *Lowered) operandContigRun(o *ir.Operand) float64 {
	s := lw.Sched
	if o.ContigReduce >= 0 && o.ContigReduce < len(s.ReduceTiles) {
		return float64(s.ReduceInner(o.ContigReduce))
	}
	if o.ContigSpatial >= 0 && o.ContigSpatial < len(s.SpatialTiles) {
		if !o.Touches(o.ContigSpatial) {
			return 1
		}
		sp := s.SpatialTiles[o.ContigSpatial]
		return float64(sp[LvlThread] * sp[LvlVThread] * sp[LvlInner0] * sp[LvlInner1])
	}
	return 1
}

// operandStride is the element distance between consecutive contiguous
// runs: the full extent of the innermost storage dimension.
func (lw *Lowered) operandStride(t *ir.Task, o *ir.Operand) float64 {
	if o.ContigReduce >= 0 && o.ContigReduce < len(t.Reduce) {
		return float64(t.Reduce[o.ContigReduce])
	}
	if o.ContigSpatial >= 0 && o.ContigSpatial < len(t.Spatial) {
		return float64(t.Spatial[o.ContigSpatial])
	}
	return 1
}

func (lw *Lowered) lowerTiled() {
	t, s := lw.Task, lw.Sched
	blocks := float64(lw.Blocks)
	threads := lw.ThreadsPerBlock
	trips := lw.reduceOuterTrips()
	macsPerTrip := lw.macsPerBlockTrip()
	outRegTile := 1.0
	for d := range s.SpatialTiles {
		outRegTile *= float64(s.RegTile(d))
	}

	// Accumulator init.
	lw.Stmts = append(lw.Stmts, Statement{
		Kind: StmtInit, Buffer: t.Output.Name + ".local",
		From: L0, To: L0,
		AllocWords: outRegTile,
		Threads:    threads, Trips: 1,
	})
	regs := outRegTile

	// Shared loads, one per input operand, in declaration order.
	var shared float64
	var global float64
	for i := range t.Inputs {
		o := &t.Inputs[i]
		tile := lw.operandSharedTile(o)
		shared += tile
		move := blocks * tile * trips
		global += move
		reuse := macsPerTrip / maxF(tile, 1)
		lw.Stmts = append(lw.Stmts, Statement{
			Kind: StmtLoadShared, Buffer: o.Name + ".shared",
			From: L2, To: L1,
			MoveWords:   move,
			AllocWords:  tile,
			Reuse:       reuse,
			ContigRun:   lw.operandContigRun(o),
			StrideElems: lw.operandStride(t, o),
			Threads:     threads,
			Trips:       trips,
		})
		regs += lw.operandRegTile(o)
	}

	// Compute block.
	threadMacs := outRegTile * float64(t.ReducePoints())
	computeFlops := float64(t.OutputPoints()) * float64(t.ReducePoints()) * t.FlopsPerPoint
	lw.Stmts = append(lw.Stmts, Statement{
		Kind: StmtCompute, Buffer: t.Output.Name + ".local",
		From: L1, To: L0,
		Flops:      computeFlops,
		MoveWords:  computeFlops / maxF(t.FlopsPerPoint, 1), // shared reads
		AllocWords: regs,
		Reuse:      maxF(macsPerTrip/maxF(shared, 1), 1),
		ContigRun:  float64(s.InnerTile(len(s.SpatialTiles) - 1)),
		Threads:    threads,
		Trips:      trips,
		TensorCore: s.TensorCore,
	})

	// Fused epilogue.
	if t.FusedElemwise > 0 {
		lw.Stmts = append(lw.Stmts, Statement{
			Kind: StmtEpilogue, Buffer: t.Output.Name + ".local",
			From: L0, To: L0,
			Flops:      float64(t.OutputPoints()) * float64(t.FusedElemwise),
			AllocWords: outRegTile,
			Threads:    threads,
			Trips:      1,
		})
	}

	// Write-back.
	outWords := float64(t.OutputPoints())
	global += outWords
	lw.Stmts = append(lw.Stmts, Statement{
		Kind: StmtStore, Buffer: t.Output.Name,
		From: L0, To: L2,
		MoveWords:   outWords,
		ContigRun:   lw.operandContigRun(&t.Output),
		StrideElems: lw.operandStride(t, &t.Output),
		Threads:     threads,
		Trips:       1,
	})

	lw.RegsPerThread = regs
	lw.ThreadCompute = threadMacs
	lw.SharedPerBlock = shared
	lw.GlobalWords = global
	lw.TotalFlops = t.FLOPs()
}

// lowerFlat lowers elementwise / reduction tasks (and tiled tasks with the
// shared stage disabled): operands stream straight from global memory.
func (lw *Lowered) lowerFlat() {
	t := lw.Task
	threads := lw.ThreadsPerBlock
	serial := 1.0
	for d := range lw.Sched.SpatialTiles {
		serial *= float64(lw.Sched.RegTile(d))
	}
	reducePts := float64(t.ReducePoints())

	var global float64
	for i := range t.Inputs {
		o := &t.Inputs[i]
		elems := 1.0
		for _, d := range o.SpatialIdx {
			elems *= float64(t.Spatial[d])
		}
		for _, r := range o.ReduceIdx {
			elems *= float64(t.Reduce[r])
		}
		global += elems
		lw.Stmts = append(lw.Stmts, Statement{
			Kind: StmtLoadGlobal, Buffer: o.Name,
			From: L2, To: L0,
			MoveWords:   elems,
			AllocWords:  serial,
			Reuse:       1,
			ContigRun:   lw.operandContigRun(o),
			StrideElems: lw.operandStride(t, o),
			Threads:     threads,
			Trips:       reducePts,
		})
	}

	flops := t.FLOPs()
	if flops > 0 {
		lw.Stmts = append(lw.Stmts, Statement{
			Kind: StmtCompute, Buffer: t.Output.Name,
			From: L0, To: L0,
			Flops:      flops,
			AllocWords: serial,
			Threads:    threads,
			Trips:      reducePts,
		})
	}

	outWords := float64(t.OutputPoints())
	global += outWords
	lw.Stmts = append(lw.Stmts, Statement{
		Kind: StmtStore, Buffer: t.Output.Name,
		From: L0, To: L2,
		MoveWords:   outWords,
		ContigRun:   lw.operandContigRun(&t.Output),
		StrideElems: lw.operandStride(t, &t.Output),
		Threads:     threads,
		Trips:       1,
	})

	lw.RegsPerThread = serial + 2
	lw.ThreadCompute = serial * reducePts
	lw.SharedPerBlock = 0
	lw.GlobalWords = global
	lw.TotalFlops = flops
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
