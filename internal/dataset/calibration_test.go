package dataset

import (
	"context"
	"testing"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
)

// predictSet scores all entries of a task set with a model.
func predictSet(m costmodel.Model, s *TaskSet) []float64 {
	scheds := make([]*schedule.Schedule, len(s.Entries))
	for i := range s.Entries {
		scheds[i] = s.Entries[i].Sched
	}
	return m.Predict(s.Task, scheds)
}

// TestCalibrationModelOrdering checks the core substitution claim of
// DESIGN.md §2: on a held-out task split, PaCM (dataflow features) must
// rank better than the statement-feature MLP, and both far better than
// random — the paper's Table 11 ordering.
func TestCalibrationModelOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("training is slow")
	}
	dev := device.T4
	trainTasks := []*ir.Task{
		ir.NewMatMul(256, 1024, 512, ir.FP32, 1),
		ir.NewConv2D(ir.Conv2DShape{N: 1, H: 28, W: 28, CI: 128, CO: 256, KH: 3, KW: 3, Stride: 1, Pad: 1}, ir.FP32, 1),
		ir.NewBatchMatMul(12, 128, 128, 64, ir.FP32, 0),
		ir.NewConv2D(ir.Conv2DShape{N: 1, H: 56, W: 56, CI: 64, CO: 64, KH: 1, KW: 1, Stride: 1, Pad: 0}, ir.FP32, 1),
	}
	testTasks := []*ir.Task{
		ir.NewMatMul(512, 768, 768, ir.FP32, 1),
		ir.NewConv2D(ir.Conv2DShape{N: 1, H: 14, W: 14, CI: 256, CO: 512, KH: 3, KW: 3, Stride: 1, Pad: 1}, ir.FP32, 1),
	}
	train := Generate(context.Background(), dev, trainTasks, GenOptions{SchedulesPerTask: 400, Seed: 11})
	test := Generate(context.Background(), dev, testTasks, GenOptions{SchedulesPerTask: 400, Seed: 12})

	fit := costmodel.FitOptions{Epochs: 40, Seed: 5, MaxGroup: 128}
	top1 := func(m costmodel.Model) float64 {
		m.Fit(train.Records(), fit)
		return test.TopK(1, func(s *TaskSet) []float64 { return predictSet(m, s) })
	}
	randTop1 := test.TopK(1, func(s *TaskSet) []float64 {
		return predictSet(costmodel.NewRandom(3), s)
	})
	mlpTop1 := top1(costmodel.NewTenSetMLP(21))
	pacmTop1 := top1(costmodel.NewPaCM(22))

	t.Logf("Top-1: random=%.3f mlp=%.3f pacm=%.3f", randTop1, mlpTop1, pacmTop1)
	if mlpTop1 <= randTop1 {
		t.Errorf("MLP Top-1 (%.3f) should beat random (%.3f)", mlpTop1, randTop1)
	}
	if pacmTop1 <= randTop1 {
		t.Errorf("PaCM Top-1 (%.3f) should beat random (%.3f)", pacmTop1, randTop1)
	}
	if pacmTop1 < mlpTop1-0.02 {
		t.Errorf("PaCM Top-1 (%.3f) should not trail MLP (%.3f)", pacmTop1, mlpTop1)
	}
}
