package dataset

import (
	"context"
	"math"
	"testing"

	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
)

// handSet builds a task set with chosen latencies for metric hand-checks.
func handSet(t *testing.T, lats []float64, weight int) *TaskSet {
	t.Helper()
	task := ir.NewMatMul(64, 64, 64, ir.FP32, 0)
	task.Weight = weight
	s := &TaskSet{Task: task, Best: math.Inf(1)}
	for _, l := range lats {
		s.Entries = append(s.Entries, Entry{Sched: &schedule.Schedule{VectorLen: 1}, Latency: l})
		if l < s.Best {
			s.Best = l
		}
	}
	return s
}

// TestTopKHandComputed verifies Eq. 2 against a hand-worked example.
func TestTopKHandComputed(t *testing.T) {
	// Task A (w=2): latencies [4,1,2], scores rank entry0 first, entry2
	// second. Top-1 picks 4; Top-2 picks min(4,2)=2. Best = 1.
	// Task B (w=1): latencies [3,6], scores rank entry0 first. Top-1 -> 3
	// = best.
	a := handSet(t, []float64{4, 1, 2}, 2)
	b := handSet(t, []float64{3, 6}, 1)
	ds := &Dataset{Sets: []*TaskSet{a, b}}
	score := func(s *TaskSet) []float64 {
		if len(s.Entries) == 3 {
			return []float64{0.9, 0.1, 0.5}
		}
		return []float64{0.9, 0.1}
	}
	// Top-1: (1*2 + 3*1) / (4*2 + 3*1) = 5/11.
	if got, want := ds.TopK(1, score), 5.0/11.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Top-1 = %g want %g", got, want)
	}
	// Top-2: (1*2 + 3*1) / (2*2 + 3*1) = 5/7.
	if got, want := ds.TopK(2, score), 5.0/7.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Top-2 = %g want %g", got, want)
	}
}

// TestBestKHandComputed verifies Eq. 3.
func TestBestKHandComputed(t *testing.T) {
	s := handSet(t, []float64{5, 1, 3, 2, 8}, 1)
	// Spec = entries {0, 2, 3}: latencies {5, 3, 2}. Best of set = 1.
	spec := []int{0, 2, 3}
	if got, want := BestK(s, spec, 1), 1.0/2.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Best-1 = %g want %g", got, want)
	}
	if got, want := BestK(s, spec, 2), 1.0/3.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Best-2 = %g want %g", got, want)
	}
	// Perfect spec containing the optimum.
	if got := BestK(s, []int{1}, 1); got != 1 {
		t.Fatalf("Best-1 with optimum in spec = %g want 1", got)
	}
}

func TestWeightedBestK(t *testing.T) {
	a := handSet(t, []float64{1, 2}, 3) // spec {1}: Lhat=2
	b := handSet(t, []float64{4, 8}, 1) // spec {0}: Lhat=4=best
	got := WeightedBestK([]*TaskSet{a, b}, [][]int{{1}, {0}}, 1)
	// (1*3 + 4*1) / (2*3 + 4*1) = 7/10.
	if math.Abs(got-0.7) > 1e-12 {
		t.Fatalf("weighted Best-1 = %g want 0.7", got)
	}
}

func TestGenerateDropsFailures(t *testing.T) {
	tasks := []*ir.Task{ir.NewMatMul(256, 256, 256, ir.FP32, 0)}
	ds := Generate(context.Background(), device.T4, tasks, GenOptions{SchedulesPerTask: 100, Seed: 1})
	set := ds.Sets[0]
	if len(set.Entries) == 0 {
		t.Fatal("no valid entries")
	}
	for _, e := range set.Entries {
		if math.IsInf(e.Latency, 1) || e.Latency <= 0 {
			t.Fatal("failed build leaked into dataset")
		}
		if e.Sched == nil {
			t.Fatal("entry without schedule")
		}
	}
	if math.IsInf(set.Best, 1) {
		t.Fatal("best not tracked")
	}
}

func TestSubsampleAndRecords(t *testing.T) {
	tasks := []*ir.Task{
		ir.NewMatMul(128, 128, 128, ir.FP32, 0),
		ir.NewMatMul(256, 128, 128, ir.FP32, 0),
	}
	ds := Generate(context.Background(), device.T4, tasks, GenOptions{SchedulesPerTask: 60, Seed: 2})
	sub := ds.Subsample(10, 3)
	for _, s := range sub.Sets {
		if len(s.Entries) > 10 {
			t.Fatalf("subsample kept %d entries", len(s.Entries))
		}
	}
	if sub.Size() > 20 {
		t.Fatalf("subsample size %d", sub.Size())
	}
	recs := ds.Records()
	if len(recs) != ds.Size() {
		t.Fatalf("records %d != size %d", len(recs), ds.Size())
	}
}

func TestNetworksTasksDedup(t *testing.T) {
	tasks, err := NetworksTasks([]string{"resnet50", "deeplab_v3"})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.ID] {
			t.Fatalf("duplicate task %s across networks", task.Name)
		}
		seen[task.ID] = true
	}
	// DeepLab shares the ResNet stem: its weight must have been folded in.
	if len(tasks) == 0 {
		t.Fatal("no tasks")
	}
}

func TestSplitsAreDisjoint(t *testing.T) {
	train := map[string]bool{}
	for _, n := range TrainNetworks {
		train[n] = true
	}
	for _, n := range TestNetworks {
		if train[n] {
			t.Fatalf("network %s in both splits", n)
		}
	}
}
