// Package dataset builds and evaluates the synthetic stand-in for the
// TenSet tensor-program dataset: per-subgraph schedule samples measured on
// a simulated device, with the paper's Top-k (Eq. 2) and Best-k (Eq. 3)
// metrics and the train/test split used in §6.5.
package dataset

import (
	"context"
	"math"
	"math/rand"

	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/measure"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
	"pruner/internal/simulator"
	"pruner/internal/workloads"
)

// Entry is one measured tensor program.
type Entry struct {
	Sched   *schedule.Schedule
	Latency float64 // seconds; +Inf for failed builds
}

// TaskSet holds the dataset slice of one subgraph.
type TaskSet struct {
	Task    *ir.Task
	Entries []Entry
	// Best is the minimum valid latency (L*_i in Eqs. 2-3).
	Best float64
}

// Dataset is a collection of task sets measured on one device.
type Dataset struct {
	Device string
	Sets   []*TaskSet
}

// GenOptions configure dataset generation.
type GenOptions struct {
	// SchedulesPerTask is the exploration size per subgraph (TenSet: 4,000).
	SchedulesPerTask int
	// Seed drives sampling and measurement noise.
	Seed int64
	// MutationFrac grows part of the samples by mutating earlier samples,
	// giving the latency distribution TenSet-like structure.
	MutationFrac float64
	// Parallelism is the worker count for the measurement fan-out; <= 0
	// selects runtime.NumCPU(). Schedule sampling and noise stay on one
	// sequential stream, so the dataset is bitwise identical at any worker
	// count (and to the historical serial generator).
	Parallelism int
	// Pool optionally shares a caller-owned worker budget (overriding
	// Parallelism) so dataset generation inside a concurrent suite does
	// not multiply the suite's concurrency.
	Pool *parallel.Pool
	// Measurer overrides the measurement backend (a remote fleet, a test
	// fake); nil wraps the device's default simulator in the in-process
	// adapter — bitwise identical to the historical direct simulator
	// call, since the noise draws stay on the generator's stream.
	Measurer measure.Measurer
}

func (o GenOptions) withDefaults() GenOptions {
	if o.SchedulesPerTask == 0 {
		o.SchedulesPerTask = 4000
	}
	if o.MutationFrac == 0 {
		o.MutationFrac = 0.3
	}
	return o
}

// Generate measures opt.SchedulesPerTask schedules for every task on the
// device. Sampling walks one sequential stream (the dataset content is a
// calibrated artefact — see the calibration tests — so it must not depend
// on worker count or task fan-out); the per-schedule latency evaluations,
// which dominate the cost, run on the worker pool.
func Generate(ctx context.Context, dev *device.Device, tasks []*ir.Task, opt GenOptions) *Dataset {
	opt = opt.withDefaults()
	meas := opt.Measurer
	if meas == nil {
		meas = measure.NewSim(simulator.New(dev))
	}
	noise := meas.Info().MeasureNoise
	pool := opt.Pool
	if pool == nil {
		pool = parallel.New(opt.Parallelism)
	}
	rng := rand.New(rand.NewSource(opt.Seed))
	ds := &Dataset{Device: dev.Name}
	for _, t := range tasks {
		gen := schedule.NewGenerator(t)
		gen.MaxThreads = dev.MaxThreads
		gen.MaxSharedWords = dev.SharedPerBlock
		nRandom := int(float64(opt.SchedulesPerTask) * (1 - opt.MutationFrac))
		schs := gen.InitPopulation(rng, nRandom)
		for len(schs) < opt.SchedulesPerTask {
			parent := schs[rng.Intn(len(schs))]
			schs = append(schs, gen.Mutate(rng, parent))
		}
		// Only successfully built programs enter the dataset, as in TenSet:
		// failed builds never produce a latency record. The backend
		// returns true latencies; the noise draws stay here on the
		// generator's sequential stream, so the dataset is bitwise
		// identical to the historical in-process path for any backend
		// that computes the same latencies.
		set := &TaskSet{Task: t, Best: math.Inf(1)}
		results, err := meas.Measure(ctx, measure.Request{
			Device: dev.Name, Task: t, Batch: schs, Pool: pool,
		})
		if err != nil {
			// Backend failure (a fleet with no reachable workers): the
			// task contributes no entries, like a task whose builds all
			// failed.
			ds.Sets = append(ds.Sets, set)
			continue
		}
		measure.ApplyNoise(results, rng, noise)
		for i, r := range results {
			if !r.Valid {
				continue
			}
			set.Entries = append(set.Entries, Entry{Sched: schs[i], Latency: r.Latency})
			if r.Latency < set.Best {
				set.Best = r.Latency
			}
		}
		ds.Sets = append(ds.Sets, set)
	}
	return ds
}

// Records flattens the dataset into cost-model training records.
func (d *Dataset) Records() []costmodel.Record {
	var out []costmodel.Record
	for _, s := range d.Sets {
		for _, e := range s.Entries {
			out = append(out, costmodel.Record{Task: s.Task, Sched: e.Sched, Latency: e.Latency})
		}
	}
	return out
}

// Subsample returns a dataset view with at most perTask entries per task,
// for the Figure 15 data-efficiency sweep.
func (d *Dataset) Subsample(perTask int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	out := &Dataset{Device: d.Device}
	for _, s := range d.Sets {
		idx := rng.Perm(len(s.Entries))
		n := perTask
		if n > len(idx) {
			n = len(idx)
		}
		ns := &TaskSet{Task: s.Task, Best: math.Inf(1)}
		for _, i := range idx[:n] {
			ns.Entries = append(ns.Entries, s.Entries[i])
			if l := s.Entries[i].Latency; l < ns.Best {
				ns.Best = l
			}
		}
		out.Sets = append(out.Sets, ns)
	}
	return out
}

// Size is the total number of entries.
func (d *Dataset) Size() int {
	n := 0
	for _, s := range d.Sets {
		n += len(s.Entries)
	}
	return n
}

// TestNetworks is the paper's §6.5 held-out set.
var TestNetworks = []string{"resnet50", "resnet3d18", "mobilenet_v2", "bert_base", "bert_tiny"}

// TrainNetworks is the complementary training set drawn from the zoo.
var TrainNetworks = []string{
	"wide_resnet50", "densenet121", "inception_v3", "dcgan", "deeplab_v3",
	"vit", "detr", "bert_large", "gpt2", "llama", "opt",
}

// NetworksTasks gathers the unique tasks of the named workloads,
// preserving per-network weights.
func NetworksTasks(names []string) ([]*ir.Task, error) {
	seen := map[string]*ir.Task{}
	var out []*ir.Task
	for _, name := range names {
		net, err := workloads.ByName(name)
		if err != nil {
			return nil, err
		}
		for _, t := range net.Tasks {
			if prev, ok := seen[t.ID]; ok {
				prev.Weight += t.Weight
				continue
			}
			seen[t.ID] = t
			out = append(out, t)
		}
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Metrics.

// TopK is Eq. 2: the ratio of the weighted-optimal latency to the weighted
// best latency found within each task's top-k model-scored programs.
// score must return per-entry scores (higher = better) for a task set.
func (d *Dataset) TopK(k int, score func(*TaskSet) []float64) float64 {
	var num, den float64
	for _, s := range d.Sets {
		if math.IsInf(s.Best, 1) || len(s.Entries) == 0 {
			continue
		}
		scores := score(s)
		bestOfTop := bestLatencyOfTopK(s, scores, k)
		w := float64(s.Task.Weight)
		num += s.Best * w
		den += bestOfTop * w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// bestLatencyOfTopK finds min latency among the k highest-scored entries.
func bestLatencyOfTopK(s *TaskSet, scores []float64, k int) float64 {
	type pair struct {
		score, lat float64
	}
	pairs := make([]pair, len(s.Entries))
	for i, e := range s.Entries {
		pairs[i] = pair{scores[i], e.Latency}
	}
	// Partial selection of top-k by score.
	if k > len(pairs) {
		k = len(pairs)
	}
	for i := 0; i < k; i++ {
		maxJ := i
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j].score > pairs[maxJ].score {
				maxJ = j
			}
		}
		pairs[i], pairs[maxJ] = pairs[maxJ], pairs[i]
	}
	best := math.Inf(1)
	for i := 0; i < k; i++ {
		if pairs[i].lat < best {
			best = pairs[i].lat
		}
	}
	return best
}

// BestK is Eq. 3 for one task set: the ratio of the set optimum to the
// k-th best latency among the selected subset (S_spec), indices into
// s.Entries.
func BestK(s *TaskSet, spec []int, k int) float64 {
	if len(spec) == 0 || math.IsInf(s.Best, 1) {
		return 0
	}
	lats := make([]float64, 0, len(spec))
	for _, i := range spec {
		lats = append(lats, s.Entries[i].Latency)
	}
	// k-th best (1-indexed).
	if k > len(lats) {
		k = len(lats)
	}
	for i := 0; i < k; i++ {
		minJ := i
		for j := i + 1; j < len(lats); j++ {
			if lats[j] < lats[minJ] {
				minJ = j
			}
		}
		lats[i], lats[minJ] = lats[minJ], lats[i]
	}
	kth := lats[k-1]
	if math.IsInf(kth, 1) {
		return 0
	}
	return s.Best / kth
}

// WeightedBestK aggregates Eq. 3 over task sets with subgraph weights:
// sum(L* x w) / sum(Lhat_k x w).
func WeightedBestK(sets []*TaskSet, specs [][]int, k int) float64 {
	var num, den float64
	for i, s := range sets {
		if math.IsInf(s.Best, 1) {
			continue
		}
		r := BestK(s, specs[i], k)
		if r == 0 {
			continue
		}
		w := float64(s.Task.Weight)
		num += s.Best * w
		den += s.Best / r * w
	}
	if den == 0 {
		return 0
	}
	return num / den
}
