package device

import "testing"

func TestPresetsValid(t *testing.T) {
	for _, d := range All() {
		if err := d.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
	}
}

func TestByName(t *testing.T) {
	for _, d := range All() {
		got, err := ByName(d.Name)
		if err != nil || got != d {
			t.Errorf("ByName(%q) = %v, %v", d.Name, got, err)
		}
	}
	if _, err := ByName("h100"); err == nil {
		t.Error("ByName of unknown device should fail")
	}
}

func TestOccupancyLimits(t *testing.T) {
	d := A100
	// A minimal block: bounded by the warp limit.
	blocks, occ := d.Occupancy(128, 32, 0)
	if blocks <= 0 || occ <= 0 || occ > 1 {
		t.Fatalf("occupancy(128,32,0) = %d, %g", blocks, occ)
	}
	// Shared memory caps residency: a full 48 KiB block.
	bSmem, _ := d.Occupancy(128, 32, d.SharedPerBlock)
	if bSmem > d.SharedPerSM/d.SharedPerBlock {
		t.Fatalf("shared-limited blocks = %d", bSmem)
	}
	// Over-subscription fails to launch.
	if b, _ := d.Occupancy(2048, 32, 0); b != 0 {
		t.Fatalf("threads over MaxThreads should not launch, got %d blocks", b)
	}
	if b, _ := d.Occupancy(128, 400, 0); b != 0 {
		t.Fatalf("registers over limit should not launch, got %d blocks", b)
	}
}

func TestOccupancyMonotoneInResources(t *testing.T) {
	d := T4
	bLow, occLow := d.Occupancy(256, 32, 1024)
	bHigh, occHigh := d.Occupancy(256, 128, 8192)
	if bHigh > bLow || occHigh > occLow {
		t.Fatalf("more resources per block should not raise residency: (%d,%g) vs (%d,%g)",
			bLow, occLow, bHigh, occHigh)
	}
}

func TestFamilyDistinctness(t *testing.T) {
	seen := map[string]string{}
	for _, d := range All() {
		if prev, ok := seen[d.Family]; ok {
			t.Errorf("family %q shared by %s and %s — residual nets would alias", d.Family, prev, d.Name)
		}
		seen[d.Family] = d.Name
	}
}

func TestValidateRejectsZeroFields(t *testing.T) {
	d := *A100
	d.WarpSize = 0
	if err := d.Validate(); err == nil {
		t.Error("zero warp size should fail validation")
	}
	e := *T4
	e.PeakBW = 0
	if err := e.Validate(); err == nil {
		t.Error("zero bandwidth should fail validation")
	}
}
