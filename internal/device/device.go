// Package device models GPU execution resources as the three-level memory
// hierarchy used throughout the paper: L0 (registers, per thread), L1
// (shared memory and warp scheduling, per block/SM) and L2 (global memory
// and SM-level parallelism, per device).
//
// A Device carries both the parameters consumed by the Symbol-based
// Analyzer's penalties (m_l0, m_l1, pu_l1, n_l1, pu_l2, n_l2 in the paper's
// notation) and the richer set used by the measurement simulator
// (occupancy limits, clocks, launch overhead).
package device

import "fmt"

// Device describes one GPU platform. All capacities are expressed in
// 4-byte words (FP32 elements) unless stated otherwise, so schedule-derived
// allocation symbols compare against them directly.
type Device struct {
	Name string

	// L0: registers.
	RegsPerThread int // m_l0: usable accumulator/operand words per thread
	RegsPerSM     int // occupancy limit: total register words per SM

	// L1: shared memory and warp scheduling.
	SharedPerBlock int // m_l1: shared-memory words available to one block
	SharedPerSM    int // occupancy limit: shared-memory words per SM
	WarpSize       int // n_l1: scheduling granularity (threads per warp)
	WarpSchedulers int // pu_l1: warps issuing concurrently per SM
	MaxWarpsPerSM  int // occupancy limit: resident warps per SM
	MaxThreads     int // maximum threads per block

	// L2: global memory and device-level parallelism.
	NumSMs      int // pu_l2: streaming multiprocessors
	Transaction int // n_l2: memory transaction length in words (128B => 32)

	// Peaks. FLOPS are multiply-add counted as 2 ops.
	PeakFLOPS   float64 // FP32 peak, op/s
	PeakTensorF float64 // FP16 TensorCore peak, op/s (0 when absent)
	PeakBW      float64 // global-memory bandwidth, bytes/s

	// Simulator-only parameters.
	LaunchOverhead float64 // seconds per kernel launch
	L2CacheBytes   int     // device L2 cache capacity
	Family         string  // microarchitecture family, groups residual models

	// TensorCore tile granularity (wmma m=n=k), 0 when unsupported.
	WMMA int
}

// Validate reports a configuration error, if any. All fields that the
// analyzer or simulator divides by must be positive.
func (d *Device) Validate() error {
	checks := []struct {
		name string
		v    int
	}{
		{"RegsPerThread", d.RegsPerThread},
		{"RegsPerSM", d.RegsPerSM},
		{"SharedPerBlock", d.SharedPerBlock},
		{"SharedPerSM", d.SharedPerSM},
		{"WarpSize", d.WarpSize},
		{"WarpSchedulers", d.WarpSchedulers},
		{"MaxWarpsPerSM", d.MaxWarpsPerSM},
		{"MaxThreads", d.MaxThreads},
		{"NumSMs", d.NumSMs},
		{"Transaction", d.Transaction},
	}
	for _, c := range checks {
		if c.v <= 0 {
			return fmt.Errorf("device %s: %s must be positive, got %d", d.Name, c.name, c.v)
		}
	}
	if d.PeakFLOPS <= 0 || d.PeakBW <= 0 {
		return fmt.Errorf("device %s: peaks must be positive", d.Name)
	}
	return nil
}

// BytesPerWord is the storage size of one FP32 element.
const BytesPerWord = 4

// MaxBlocksPerSM is the architectural limit on resident blocks per SM used
// by the occupancy model. It is constant across the modelled generations.
const MaxBlocksPerSM = 32

// Occupancy returns the number of blocks resident per SM given per-block
// resource demands, and the resulting fraction of warp slots occupied.
// A zero blocks-per-SM means the schedule over-subscribes some resource and
// cannot launch at all.
func (d *Device) Occupancy(threadsPerBlock, regsPerThread, sharedPerBlock int) (blocksPerSM int, occ float64) {
	if threadsPerBlock <= 0 || threadsPerBlock > d.MaxThreads {
		return 0, 0
	}
	if regsPerThread > d.RegsPerThread || sharedPerBlock > d.SharedPerBlock {
		return 0, 0
	}
	warpsPerBlock := (threadsPerBlock + d.WarpSize - 1) / d.WarpSize
	byWarps := d.MaxWarpsPerSM / warpsPerBlock
	byRegs := d.RegsPerSM / max(1, regsPerThread*threadsPerBlock)
	bySmem := MaxBlocksPerSM
	if sharedPerBlock > 0 {
		bySmem = d.SharedPerSM / sharedPerBlock
	}
	blocksPerSM = min(min(byWarps, byRegs), min(bySmem, MaxBlocksPerSM))
	if blocksPerSM <= 0 {
		return 0, 0
	}
	occ = float64(blocksPerSM*warpsPerBlock) / float64(d.MaxWarpsPerSM)
	if occ > 1 {
		occ = 1
	}
	return blocksPerSM, occ
}

// Preset device models. Peak numbers follow the public datasheets of the
// platforms used in the paper's evaluation; capacities are the defaults a
// compiler can assume without opt-in (e.g. 48 KiB shared memory per block).
var (
	// A100 is the NVIDIA A100-SXM4 (Ampere GA100) server GPU.
	A100 = &Device{
		Name:           "a100",
		RegsPerThread:  255,
		RegsPerSM:      65536,
		SharedPerBlock: 48 * 1024 / BytesPerWord,
		SharedPerSM:    164 * 1024 / BytesPerWord,
		WarpSize:       32,
		WarpSchedulers: 4,
		MaxWarpsPerSM:  64,
		MaxThreads:     1024,
		NumSMs:         108,
		Transaction:    32,
		PeakFLOPS:      19.5e12,
		PeakTensorF:    312e12,
		PeakBW:         1555e9,
		LaunchOverhead: 4e-6,
		L2CacheBytes:   40 * 1024 * 1024,
		Family:         "ampere",
		WMMA:           16,
	}

	// TitanV is the NVIDIA Titan V (Volta GV100) workstation GPU.
	TitanV = &Device{
		Name:           "titanv",
		RegsPerThread:  255,
		RegsPerSM:      65536,
		SharedPerBlock: 48 * 1024 / BytesPerWord,
		SharedPerSM:    96 * 1024 / BytesPerWord,
		WarpSize:       32,
		WarpSchedulers: 4,
		MaxWarpsPerSM:  64,
		MaxThreads:     1024,
		NumSMs:         80,
		Transaction:    32,
		PeakFLOPS:      13.8e12,
		PeakTensorF:    110e12,
		PeakBW:         652e9,
		LaunchOverhead: 4.5e-6,
		L2CacheBytes:   4608 * 1024,
		Family:         "volta",
		WMMA:           16,
	}

	// Orin is the NVIDIA Jetson Orin-AGX (Ampere iGPU) edge platform.
	Orin = &Device{
		Name:           "orin",
		RegsPerThread:  255,
		RegsPerSM:      65536,
		SharedPerBlock: 48 * 1024 / BytesPerWord,
		SharedPerSM:    164 * 1024 / BytesPerWord,
		WarpSize:       32,
		WarpSchedulers: 4,
		MaxWarpsPerSM:  48,
		MaxThreads:     1024,
		NumSMs:         16,
		Transaction:    32,
		PeakFLOPS:      5.3e12,
		PeakTensorF:    85e12,
		PeakBW:         204.8e9,
		LaunchOverhead: 8e-6,
		L2CacheBytes:   4 * 1024 * 1024,
		Family:         "ampere-edge",
		WMMA:           16,
	}

	// K80 is one GK210 die of the NVIDIA Tesla K80 (Kepler), the TenSet
	// pre-training platform.
	K80 = &Device{
		Name:           "k80",
		RegsPerThread:  255,
		RegsPerSM:      131072,
		SharedPerBlock: 48 * 1024 / BytesPerWord,
		SharedPerSM:    112 * 1024 / BytesPerWord,
		WarpSize:       32,
		WarpSchedulers: 4,
		MaxWarpsPerSM:  64,
		MaxThreads:     1024,
		NumSMs:         13,
		Transaction:    32,
		PeakFLOPS:      4.37e12,
		PeakTensorF:    0,
		PeakBW:         240e9,
		LaunchOverhead: 9e-6,
		L2CacheBytes:   1536 * 1024,
		Family:         "kepler",
		WMMA:           0,
	}

	// T4 is the NVIDIA Tesla T4 (Turing), the second TenSet GPU platform.
	T4 = &Device{
		Name:           "t4",
		RegsPerThread:  255,
		RegsPerSM:      65536,
		SharedPerBlock: 48 * 1024 / BytesPerWord,
		SharedPerSM:    64 * 1024 / BytesPerWord,
		WarpSize:       32,
		WarpSchedulers: 4,
		MaxWarpsPerSM:  32,
		MaxThreads:     1024,
		NumSMs:         40,
		Transaction:    32,
		PeakFLOPS:      8.1e12,
		PeakTensorF:    65e12,
		PeakBW:         320e9,
		LaunchOverhead: 5e-6,
		L2CacheBytes:   4 * 1024 * 1024,
		Family:         "turing",
		WMMA:           16,
	}
)

// ByName returns a preset device by its Name field.
func ByName(name string) (*Device, error) {
	for _, d := range All() {
		if d.Name == name {
			return d, nil
		}
	}
	return nil, fmt.Errorf("unknown device %q", name)
}

// All returns the preset devices in a stable order.
func All() []*Device {
	return []*Device{A100, TitanV, Orin, K80, T4}
}
