// Package analyzer implements the paper's Latent Schedule Explorer draft
// model: hardware-aware symbols (Table 2), the hierarchical penalty terms
// (§4.1) and the Symbol-based Analyzer (SA) — an empirical-formula cost
// model that estimates a schedule's latency without any learned weights.
package analyzer

import (
	"math"

	"pruner/internal/device"
	"pruner/internal/schedule"
)

// Symbols are the hardware-aware symbols of Table 2, aggregated over the
// lowered program. S5/S7/S8 are also tracked per statement during cost
// evaluation; the aggregate values are exposed for features and tests.
type Symbols struct {
	S1L0MemAlloc     float64 // register words per thread
	S2L0CompCount    float64 // MACs per thread
	S3L1MemAlloc     float64 // shared-memory words per block
	S4L1ParaInfo     float64 // threads per block
	S5L2MemFootprint float64 // words moved through global memory
	S6L2ParaInfo     float64 // blocks in the grid
	S7L2TransDim     float64 // innermost contiguous global run (min over stmts)
	S8L2CompCount    float64 // total floating-point operations
}

// Extract computes the aggregate symbols of a lowered program.
func Extract(lw *schedule.Lowered) Symbols {
	sy := Symbols{
		S1L0MemAlloc:  lw.RegsPerThread,
		S2L0CompCount: lw.ThreadCompute,
		S3L1MemAlloc:  lw.SharedPerBlock,
		S4L1ParaInfo:  float64(lw.ThreadsPerBlock),
		S6L2ParaInfo:  float64(lw.Blocks),
		S8L2CompCount: lw.TotalFlops,
	}
	sy.S7L2TransDim = math.Inf(1)
	for i := range lw.Stmts {
		st := &lw.Stmts[i]
		if st.From == schedule.L2 || st.To == schedule.L2 {
			sy.S5L2MemFootprint += st.MoveWords
			if st.ContigRun > 0 && st.ContigRun < sy.S7L2TransDim {
				sy.S7L2TransDim = st.ContigRun
			}
		}
	}
	if math.IsInf(sy.S7L2TransDim, 1) {
		sy.S7L2TransDim = 1
	}
	return sy
}

// Penalties are the hardware-aware penalty terms P_{li,*} of §4.1.
// All terms lie in (0, 1] except PL0C, which follows the paper's
// definition P_{l0,c} = 1 + S2/S1 (a compute-to-allocation bonus).
type Penalties struct {
	PL0M    float64 // min(m_l0 / S1, 1)
	PL0C    float64 // 1 + S2/S1
	PL1M    float64 // min(m_l1 / S3, 1)
	PL1C    float64 // warp-scheduler quantisation
	AlphaL1 float64 // partial-warp waste
	PL2C    float64 // SM wave quantisation
	PL2M    float64 // memory-transaction efficiency (per statement)
	PTC     float64 // TensorCore fragment utilisation (1 when unused)
}

// Config selects penalty groups, enabling the Table 10 ablations.
type Config struct {
	// DisableComputePenalties removes every P_{li,c} term (w/o P_c).
	DisableComputePenalties bool
	// DisableMemoryPenalties removes every P_{li,m} term (w/o P_m).
	DisableMemoryPenalties bool
}

// Analyzer evaluates schedules against one device.
type Analyzer struct {
	Dev *device.Device
	Cfg Config
}

// New returns an analyzer with default configuration.
func New(dev *device.Device) *Analyzer {
	return &Analyzer{Dev: dev}
}

// quant computes x / (ceil(x/unit) * unit): the utilisation of a resource
// consumed in indivisible units.
func quant(x, unit float64) float64 {
	if x <= 0 || unit <= 0 {
		return 1
	}
	return x / (math.Ceil(x/unit) * unit)
}

// Penalties derives the penalty terms of a lowered program.
func (a *Analyzer) Penalties(lw *schedule.Lowered) Penalties {
	d := a.Dev
	sy := Extract(lw)
	p := Penalties{PL0M: 1, PL0C: 1, PL1M: 1, PL1C: 1, AlphaL1: 1, PL2C: 1, PL2M: 1, PTC: 1}

	if sy.S1L0MemAlloc > 0 {
		p.PL0M = math.Min(float64(d.RegsPerThread)/sy.S1L0MemAlloc, 1)
		// The paper defines P_{l0,c} = 1 + S2/S1 ("the bigger, the higher
		// computing efficiency") as an unbounded bonus. We normalise it by
		// the compute-to-alloc ratio at which the device becomes compute
		// bound (peak FLOPs per transferred word), keeping the term in
		// (0, 1] so U_p stays a true utilisation.
		rho := 1 + d.PeakFLOPS/d.PeakBW*4
		p.PL0C = math.Min(1, (1+sy.S2L0CompCount/sy.S1L0MemAlloc)/rho)
	}
	if sy.S3L1MemAlloc > 0 {
		p.PL1M = math.Min(float64(d.SharedPerBlock)/sy.S3L1MemAlloc, 1)
	}
	// sch_l1 = ceil(S4 / n_l1): warps per block; quantised by the warp
	// schedulers that issue concurrently.
	schL1 := math.Ceil(sy.S4L1ParaInfo / float64(d.WarpSize))
	p.PL1C = quant(schL1, float64(d.WarpSchedulers))
	p.AlphaL1 = sy.S4L1ParaInfo / (schL1 * float64(d.WarpSize))
	p.PL2C = quant(sy.S6L2ParaInfo, float64(d.NumSMs))
	p.PL2M = quant(sy.S7L2TransDim, float64(d.Transaction))
	if lw.Sched.TensorCore {
		p.PTC = a.tensorCoreUtil(lw)
	}
	return p
}

// tensorCoreUtil scores how well the block tile feeds wmma fragments:
// every warp should own at least one 16x16 fragment pair and the
// shared-resident reduction extent should cover a fragment K step.
func (a *Analyzer) tensorCoreUtil(lw *schedule.Lowered) float64 {
	w := float64(a.Dev.WMMA)
	if w == 0 {
		return 0.25 // wmma on a device without TensorCores: heavy penalty
	}
	s := lw.Sched
	n := len(s.SpatialTiles)
	if n < 2 || len(s.ReduceTiles) == 0 {
		return 0.5
	}
	mTile := float64(s.RegTile(n-2) * s.SpatialTiles[n-2][schedule.LvlThread])
	nTile := float64(s.RegTile(n-1) * s.SpatialTiles[n-1][schedule.LvlThread])
	kInner := 1.0
	for d := range s.ReduceTiles {
		kInner *= float64(s.ReduceInner(d))
	}
	warps := math.Max(1, math.Ceil(float64(lw.ThreadsPerBlock)/float64(a.Dev.WarpSize)))
	frags := (mTile / w) * (nTile / w)
	util := math.Min(1, frags/warps) * math.Min(1, kInner/w)
	if util < 0.05 {
		util = 0.05
	}
	return util
}

// Utilization returns the estimated fraction of peak compute (Up/Tp) and
// peak bandwidth (Um/Tm) as products of the penalty terms, honouring the
// ablation configuration.
func (a *Analyzer) Utilization(p Penalties) (up, um float64) {
	up, um = 1, 1
	if !a.Cfg.DisableComputePenalties {
		up = p.PL0C * p.PL1C * p.AlphaL1 * p.PL2C * p.PTC
	}
	if !a.Cfg.DisableMemoryPenalties {
		um = p.PL0M * p.PL1M * p.PL2M
	}
	return up, um
}

// EstimateLatency is Eq. 1: per-statement compute and memory latencies
// against the penalised peaks, summed over the program. The value is a
// draft-model score in pseudo-seconds — meaningful for ranking schedules
// of one task, not as wall-clock.
func (a *Analyzer) EstimateLatency(lw *schedule.Lowered) float64 {
	d := a.Dev
	p := a.Penalties(lw)
	up, um := a.Utilization(p)

	peak := d.PeakFLOPS
	if lw.Sched.TensorCore && d.PeakTensorF > 0 {
		peak = d.PeakTensorF
	}
	uP := peak * up
	uM := d.PeakBW * um

	wordBytes := float64(lw.Task.Precision.Bytes())
	var total float64
	for i := range lw.Stmts {
		st := &lw.Stmts[i]
		if st.Flops > 0 {
			total += st.Flops / uP
		}
		if st.MoveWords > 0 && (st.From == schedule.L2 || st.To == schedule.L2) {
			total += st.MoveWords * wordBytes / uM
		}
	}
	return total * a.overflowFactor(lw)
}

// overflowFactor punishes schedules that cannot launch on the device —
// shared-memory tiles beyond the block limit or register tiles far beyond
// the spill horizon. The piecewise P_{l*,m} penalties degrade such
// programs linearly; the cubic term below keeps them out of the drafted
// candidate set entirely, as an unbuildable program would be on hardware.
func (a *Analyzer) overflowFactor(lw *schedule.Lowered) float64 {
	d := a.Dev
	wordBytes := float64(lw.Task.Precision.Bytes())
	f := 1.0
	if shared := lw.SharedPerBlock * wordBytes / 4; shared > float64(d.SharedPerBlock) {
		r := shared / float64(d.SharedPerBlock)
		f *= r * r * r
	}
	if regs := lw.RegsPerThread * wordBytes / 4; regs > 2*float64(d.RegsPerThread) {
		r := regs / (2 * float64(d.RegsPerThread))
		f *= r * r
	}
	return f
}

// Score is the hardware-fitness objective the LSE maximises.
func (a *Analyzer) Score(lw *schedule.Lowered) float64 {
	return -a.EstimateLatency(lw)
}
