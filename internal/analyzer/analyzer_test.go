package analyzer

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
)

// fig3Lowered reproduces the paper's Figure 3 GEMM-ReLU schedule.
func fig3Lowered() *schedule.Lowered {
	task := ir.NewMatMul(128, 128, 128, ir.FP32, 1)
	s := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{4, 8, 2, 2, 1},
			{2, 16, 1, 2, 2},
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{8, 4, 4}},
		UnrollStep:  64,
		VectorLen:   1,
		UseShared:   true,
	}
	return schedule.Lower(task, s)
}

func TestExtractSymbolsFig3(t *testing.T) {
	sy := Extract(fig3Lowered())
	if sy.S1L0MemAlloc != 24 {
		t.Errorf("S1 = %g want 24", sy.S1L0MemAlloc)
	}
	if sy.S2L0CompCount != 2048 {
		t.Errorf("S2 = %g want 2048", sy.S2L0CompCount)
	}
	if sy.S3L1MemAlloc != 1536 {
		t.Errorf("S3 = %g want 1536", sy.S3L1MemAlloc)
	}
	if sy.S4L1ParaInfo != 128 {
		t.Errorf("S4 = %g want 128", sy.S4L1ParaInfo)
	}
	if sy.S6L2ParaInfo != 8 {
		t.Errorf("S6 = %g want 8", sy.S6L2ParaInfo)
	}
	if sy.S8L2CompCount != 2*128*128*128+128*128 {
		t.Errorf("S8 = %g", sy.S8L2CompCount)
	}
	// S7: min contiguous run across L2 statements. A is contiguous along
	// k (K1*K2 = 16), B along j (block tile 64), C along j (64).
	if sy.S7L2TransDim != 16 {
		t.Errorf("S7 = %g want 16", sy.S7L2TransDim)
	}
}

func TestPenaltyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := New(device.A100)
	task := ir.NewMatMul(384, 512, 640, ir.FP32, 1)
	g := schedule.NewGenerator(task)
	for i := 0; i < 200; i++ {
		lw := schedule.Lower(task, g.Random(rng))
		p := a.Penalties(lw)
		for name, v := range map[string]float64{
			"PL0M": p.PL0M, "PL0C": p.PL0C, "PL1M": p.PL1M, "PL1C": p.PL1C,
			"AlphaL1": p.AlphaL1, "PL2C": p.PL2C, "PL2M": p.PL2M, "PTC": p.PTC,
		} {
			if v <= 0 || v > 1 {
				t.Fatalf("%s = %g out of (0,1]", name, v)
			}
		}
	}
}

func TestQuantUtilisation(t *testing.T) {
	cases := []struct{ x, unit, want float64 }{
		{6, 4, 0.75}, // the paper's example: 6 blocks on 4 units
		{4, 4, 1},
		{1, 4, 0.25},
		{9, 4, 0.75},
		{0, 4, 1},
	}
	for _, c := range cases {
		if got := quant(c.x, c.unit); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("quant(%g,%g) = %g want %g", c.x, c.unit, got, c.want)
		}
	}
}

func TestEstimateLatencyPositiveFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(mi, ni, ki uint8) bool {
		m := int(mi%32)*16 + 16
		n := int(ni%32)*16 + 16
		k := int(ki%32)*16 + 16
		task := ir.NewMatMul(m, n, k, ir.FP32, 0)
		g := schedule.NewGenerator(task)
		a := New(device.TitanV)
		lat := a.EstimateLatency(schedule.Lower(task, g.Random(rng)))
		return lat > 0 && !math.IsInf(lat, 0) && !math.IsNaN(lat)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestAblationConfigsChangeRanking(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	task := ir.NewMatMul(512, 512, 512, ir.FP32, 0)
	g := schedule.NewGenerator(task)
	g.MaxSharedWords = device.A100.SharedPerBlock
	pop := g.InitPopulation(rng, 64)

	full := New(device.A100)
	noC := &Analyzer{Dev: device.A100, Cfg: Config{DisableComputePenalties: true}}
	var diff int
	for _, s := range pop {
		lw := schedule.Lower(task, s)
		upFull, _ := full.Utilization(full.Penalties(lw))
		upNoC, _ := noC.Utilization(noC.Penalties(lw))
		if upNoC != 1 {
			t.Fatalf("w/o P_c should fix up=1, got %g", upNoC)
		}
		if upFull != 1 {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("compute penalties never active — ablation meaningless")
	}
}

func TestOverflowFactorPunishesOversizedShared(t *testing.T) {
	task := ir.NewMatMul(1024, 1024, 1024, ir.FP32, 0)
	small := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{32, 8, 1, 2, 2}, {32, 8, 1, 2, 2},
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{64, 4, 4}},
		VectorLen:   1, UseShared: true,
	}
	big := small.Clone()
	// Move the whole reduction into shared residency: huge tiles.
	big.ReduceTiles[0] = [schedule.NumReduceLevels]int{1, 64, 16}
	a := New(device.A100)
	latSmall := a.EstimateLatency(schedule.Lower(task, small))
	latBig := a.EstimateLatency(schedule.Lower(task, big))
	if latBig < latSmall*3 {
		t.Fatalf("shared overflow not punished: small %g big %g", latSmall, latBig)
	}
}

func TestTensorCoreUtilPrefersAlignedTiles(t *testing.T) {
	task := ir.NewMatMul(512, 512, 256, ir.FP16, 0)
	a := New(device.A100)
	aligned := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{8, 4, 1, 16, 1}, {8, 2, 2, 16, 1},
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{8, 2, 16}},
		VectorLen:   1, UseShared: true, TensorCore: true,
	}
	tiny := &schedule.Schedule{
		SpatialTiles: [][schedule.NumSpatialLevels]int{
			{256, 2, 1, 1, 1}, {128, 4, 1, 1, 1},
		},
		ReduceTiles: [][schedule.NumReduceLevels]int{{128, 2, 1}},
		VectorLen:   1, UseShared: true, TensorCore: true,
	}
	pa := a.Penalties(schedule.Lower(task, aligned))
	pt := a.Penalties(schedule.Lower(task, tiny))
	if pa.PTC <= pt.PTC {
		t.Fatalf("aligned PTC %g should exceed fragment-starved PTC %g", pa.PTC, pt.PTC)
	}
}

func TestScoreOrdersWithLatency(t *testing.T) {
	a := New(device.A100)
	lw := fig3Lowered()
	if a.Score(lw) != -a.EstimateLatency(lw) {
		t.Fatal("Score must be the negated latency estimate")
	}
}
