package workloads

import "pruner/internal/ir"

// transformerLayers adds the fused subgraphs of nLayers transformer
// blocks over seq tokens: QKV/output projections, the two attention
// batched matmuls, softmax, layer norms, and the MLP. gated selects the
// Llama/Mistral SwiGLU MLP (gate/up/down) over the GELU MLP.
func transformerLayers(b *builder, batch, seq, nLayers, hidden, inter, heads int, gated bool, prec ir.Precision) {
	m := batch * seq
	headDim := hidden / heads

	// Attention projections: Q, K, V and the output projection share one
	// shape.
	b.matmul(m, hidden, hidden, 1, 4*nLayers, prec)
	// QK^T and attn@V, one per layer.
	b.bmm(batch*heads, seq, seq, headDim, 1, nLayers, prec)
	b.add(ir.NewReduction(batch*heads*seq, seq, prec, 4), nLayers) // softmax
	b.bmm(batch*heads, seq, headDim, seq, 0, nLayers, prec)
	// Layer norms (two per block).
	b.add(ir.NewReduction(m, hidden, prec, 4), 2*nLayers)
	// MLP.
	if gated {
		b.matmul(m, inter, hidden, 1, 2*nLayers, prec) // gate & up
		b.add(ir.NewElementwise(m*inter, 2, prec), nLayers)
		b.matmul(m, hidden, inter, 1, nLayers, prec) // down
	} else {
		b.matmul(m, inter, hidden, 1, nLayers, prec) // fc1 + GELU
		b.matmul(m, hidden, inter, 1, nLayers, prec) // fc2 + residual
	}
}

// BERT builds an encoder-only model per Table 4.
func BERT(name string, batch, seq, layers, hidden, inter, heads int, prec ir.Precision) *Network {
	b := newBuilder(name)
	transformerLayers(b, batch, seq, layers, hidden, inter, heads, false, prec)
	// Pooler + classifier head.
	b.matmul(batch, hidden, hidden, 1, 1, prec)
	return b.network()
}

// DecoderLM builds a decoder-only language model (prefill phase) per
// Table 4. gated selects the SwiGLU variants (Llama, Mistral).
func DecoderLM(name string, batch, seq, layers, hidden, inter, heads int, gated bool, prec ir.Precision) *Network {
	b := newBuilder(name)
	transformerLayers(b, batch, seq, layers, hidden, inter, heads, gated, prec)
	// LM head is shape-shared with embeddings; include the final
	// projection to a truncated vocabulary tile (full vocab matmuls are
	// memory-bound embeddings in practice).
	b.matmul(batch*seq, 4096, hidden, 0, 1, prec)
	return b.network()
}

// LLM rebuilds a named language-model workload with explicit batch,
// sequence length and precision (TensorCore experiments use FP16).
func LLM(name string, batch, seq int, prec ir.Precision) (*Network, error) {
	switch name {
	case "bert_tiny":
		return BERT("bert_tiny", batch, seq, 6, 512, 2048, 8, prec), nil
	case "bert_base":
		return BERT("bert_base", batch, seq, 12, 768, 3072, 12, prec), nil
	case "bert_large":
		return BERT("bert_large", batch, seq, 24, 1024, 4096, 16, prec), nil
	case "gpt2":
		return DecoderLM("gpt2", batch, seq, 12, 768, 3072, 12, false, prec), nil
	case "llama":
		return DecoderLM("llama", batch, seq, 12, 768, 3072, 12, true, prec), nil
	case "opt":
		return DecoderLM("opt", batch, seq, 24, 2048, 8192, 32, false, prec), nil
	case "mistral":
		return DecoderLM("mistral", batch, seq, 32, 4096, 14336, 32, true, prec), nil
	default:
		return ByName(name)
	}
}

// LlamaDecode builds the token-by-token decoding workload of Figures 10
// and 13: batch decode with a KV cache of ctx tokens. Linear projections
// see M = batch rows; attention matmuls grow with the context.
func LlamaDecode(batch, ctx int, prec ir.Precision) *Network {
	const (
		layers = 12
		hidden = 768
		inter  = 3072
		heads  = 12
	)
	b := newBuilder("llama_decode")
	headDim := hidden / heads
	// Projections q/k/v/o.
	b.matmul(batch, hidden, hidden, 1, 4*layers, prec)
	// QK^T over the KV cache and attn@V.
	b.bmm(batch*heads, 1, ctx, headDim, 0, layers, prec)
	b.add(ir.NewReduction(batch*heads, ctx, prec, 4), layers)
	b.bmm(batch*heads, 1, headDim, ctx, 0, layers, prec)
	// Gated MLP.
	b.matmul(batch, inter, hidden, 1, 2*layers, prec)
	b.matmul(batch, hidden, inter, 1, layers, prec)
	// Norms.
	b.add(ir.NewReduction(batch, hidden, prec, 4), 2*layers)
	return b.network()
}

// ViT is the vision transformer of the evaluation: 32x32 patches over a
// 256x256 image give 65 tokens (64 patches + class token) at hidden 1024,
// matching the linear-operator example of §6.1.
func ViT(batch int, prec ir.Precision) *Network {
	b := newBuilder("vit")
	const (
		tokens = 65
		hidden = 1024
		inter  = 4096
		layers = 12
		heads  = 16
	)
	// Patch embedding: 32x32x3 patches to hidden.
	b.matmul(batch*64, hidden, 32*32*3, 1, 1, prec)
	transformerLayers(b, batch, tokens, layers, hidden, inter, heads, false, prec)
	// The paper's cited projection: (1, 65, 2048) x (2048, 1024).
	b.matmul(batch*tokens, hidden, 2048, 1, 1, prec)
	b.matmul(batch, 1000, hidden, 0, 1, prec)
	return b.network()
}

// DeTR combines the ResNet-50 backbone with a 6+6 layer transformer over
// the flattened 2048-channel feature map.
func DeTR(batch int, prec ir.Precision) *Network {
	b := newBuilder("detr")
	// Backbone (shared shapes with ResNet-50 at 256 input => 8x8 grid
	// tokens from a 256x256 image).
	backbone := resnet50Width(1, "detr_backbone", batch, prec)
	for _, t := range backbone.Tasks {
		if t.Kind == ir.Conv2D {
			b.add(t, t.Weight)
		}
	}
	// Input projection 2048 -> 256.
	b.conv(batch, 8, 8, 2048, 256, 1, 1, 0, 1, 1, prec)
	// Encoder over 64 tokens + decoder over 100 queries, hidden 256.
	transformerLayers(b, batch, 64, 6, 256, 2048, 8, false, prec)
	transformerLayers(b, batch, 100, 6, 256, 2048, 8, false, prec)
	// Prediction heads.
	b.matmul(batch*100, 256, 256, 1, 2, prec)
	b.matmul(batch*100, 92, 256, 0, 1, prec)
	return b.network()
}
