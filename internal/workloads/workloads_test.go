package workloads

import (
	"testing"

	"pruner/internal/ir"
)

func TestAllNetworksBuildAndValidate(t *testing.T) {
	for _, name := range Names() {
		net, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(net.Tasks) < 3 {
			t.Errorf("%s: only %d unique tasks", name, len(net.Tasks))
		}
		seen := map[string]bool{}
		for _, task := range net.Tasks {
			if err := task.Validate(); err != nil {
				t.Errorf("%s / %s: %v", name, task.Name, err)
			}
			if task.Weight < 1 {
				t.Errorf("%s / %s: weight %d", name, task.Name, task.Weight)
			}
			if seen[task.ID] {
				t.Errorf("%s: duplicate task %s — builder aggregation broken", name, task.Name)
			}
			seen[task.ID] = true
		}
	}
}

func TestResNet50Scale(t *testing.T) {
	net := ResNet50(1, ir.FP32)
	var flops float64
	for _, task := range net.Tasks {
		flops += float64(task.Weight) * task.FLOPs()
	}
	// ResNet-50 at 224x224 is ~3.8-4.1 GFLOPs (x2 for MACs counted as 2).
	if flops < 6e9 || flops > 11e9 {
		t.Fatalf("ResNet-50 total = %.3g FLOPs, expected ~8e9", flops)
	}
	if net.TotalWeight() < 50 {
		t.Fatalf("ResNet-50 has %d subgraph instances, expected > 50", net.TotalWeight())
	}
}

func TestWideResNetIsWider(t *testing.T) {
	r := ResNet50(1, ir.FP32)
	w := WideResNet50(1, ir.FP32)
	var rf, wf float64
	for _, task := range r.Tasks {
		rf += float64(task.Weight) * task.FLOPs()
	}
	for _, task := range w.Tasks {
		wf += float64(task.Weight) * task.FLOPs()
	}
	if wf < rf*1.5 {
		t.Fatalf("WideResNet-50 (%.3g) should be much heavier than ResNet-50 (%.3g)", wf, rf)
	}
}

func TestBERTVariantsScaleWithConfig(t *testing.T) {
	tiny, _ := ByName("bert_tiny")
	base, _ := ByName("bert_base")
	large, _ := ByName("bert_large")
	f := func(n *Network) float64 {
		var total float64
		for _, task := range n.Tasks {
			total += float64(task.Weight) * task.FLOPs()
		}
		return total
	}
	if !(f(tiny) < f(base) && f(base) < f(large)) {
		t.Fatalf("BERT scaling broken: tiny %.3g base %.3g large %.3g", f(tiny), f(base), f(large))
	}
}

func TestDCGANHasConvTranspose(t *testing.T) {
	net, _ := ByName("dcgan")
	found := false
	for _, task := range net.Tasks {
		if task.Kind == ir.ConvTranspose2D {
			found = true
		}
	}
	if !found {
		t.Fatal("DCGAN must contain ConvTranspose2D (the Adatune failure case)")
	}
}

func TestMobileNetHasDepthwise(t *testing.T) {
	net, _ := ByName("mobilenet_v2")
	found := false
	for _, task := range net.Tasks {
		if task.Kind == ir.DepthwiseConv2D {
			found = true
		}
	}
	if !found {
		t.Fatal("MobileNet-V2 must contain depthwise convolutions")
	}
}

func TestRepresentativeOrdering(t *testing.T) {
	net, _ := ByName("resnet50")
	top := net.Representative(5)
	if len(top) != 5 {
		t.Fatalf("Representative(5) returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		a := float64(top[i-1].Weight) * top[i-1].FLOPs()
		b := float64(top[i].Weight) * top[i].FLOPs()
		if b > a {
			t.Fatal("Representative not sorted by weighted FLOPs")
		}
	}
	if got := net.Representative(0); len(got) != len(net.Tasks) {
		t.Fatal("Representative(0) must return all tasks")
	}
}

func TestLLMPrecisionVariants(t *testing.T) {
	fp16, err := LLM("gpt2", 1, 128, ir.FP16)
	if err != nil {
		t.Fatal(err)
	}
	tc := 0
	for _, task := range fp16.Tasks {
		if task.Precision != ir.FP16 {
			t.Fatalf("task %s not FP16", task.Name)
		}
		if task.TensorCoreEligible() {
			tc++
		}
	}
	if tc == 0 {
		t.Fatal("FP16 GPT-2 should have TensorCore-eligible tasks")
	}
}

func TestLlamaDecodeContextScaling(t *testing.T) {
	d1 := LlamaDecode(32, 1024, ir.FP32)
	d4 := LlamaDecode(32, 4096, ir.FP32)
	f := func(n *Network) float64 {
		var total float64
		for _, task := range n.Tasks {
			total += float64(task.Weight) * task.FLOPs()
		}
		return total
	}
	if f(d4) <= f(d1) {
		t.Fatal("4K context decode must be heavier than 1K")
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("alexnet"); err == nil {
		t.Fatal("unknown network should error")
	}
}
