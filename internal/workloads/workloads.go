// Package workloads defines the DNN model zoo of the paper's evaluation
// (Tables 3 and 4) as partitioned tuning tasks: each network is the list
// of unique fused subgraphs TVM's graph partitioning would produce, with
// Weight counting how often each subgraph recurs. Shapes follow the
// published architectures; repeated structures (dense blocks, inception
// mixes) are represented by their dominant layers, documented per network.
package workloads

import (
	"fmt"
	"sort"

	"pruner/internal/ir"
)

// Network is one end-to-end workload.
type Network struct {
	Name  string
	Tasks []*ir.Task
}

// TotalWeight returns the number of subgraph instances.
func (n *Network) TotalWeight() int {
	total := 0
	for _, t := range n.Tasks {
		total += t.Weight
	}
	return total
}

// builder aggregates identical subgraphs into weights.
type builder struct {
	name  string
	index map[string]*ir.Task
	order []*ir.Task
}

func newBuilder(name string) *builder {
	return &builder{name: name, index: map[string]*ir.Task{}}
}

// add registers count occurrences of the task.
func (b *builder) add(t *ir.Task, count int) {
	if count <= 0 {
		return
	}
	if prev, ok := b.index[t.ID]; ok {
		prev.Weight += count
		return
	}
	t.Weight = count
	b.index[t.ID] = t
	b.order = append(b.order, t)
}

func (b *builder) network() *Network {
	return &Network{Name: b.name, Tasks: b.order}
}

// conv is shorthand for adding a conv2d subgraph with a fused epilogue.
func (b *builder) conv(n, h, w, ci, co, k, stride, pad, fused, count int, prec ir.Precision) {
	b.add(ir.NewConv2D(ir.Conv2DShape{
		N: n, H: h, W: w, CI: ci, CO: co, KH: k, KW: k, Stride: stride, Pad: pad,
	}, prec, fused), count)
}

// dwconv adds a depthwise conv subgraph.
func (b *builder) dwconv(n, h, w, c, k, stride, pad, fused, count int, prec ir.Precision) {
	b.add(ir.NewConv2D(ir.Conv2DShape{
		N: n, H: h, W: w, CI: c, CO: c, KH: k, KW: k, Stride: stride, Pad: pad, Depthwise: true,
	}, prec, fused), count)
}

// tconv adds a transposed conv subgraph (DCGAN generator).
func (b *builder) tconv(n, h, w, ci, co, k, stride, pad, fused, count int, prec ir.Precision) {
	b.add(ir.NewConv2D(ir.Conv2DShape{
		N: n, H: h, W: w, CI: ci, CO: co, KH: k, KW: k, Stride: stride, Pad: pad, Transposed: true,
	}, prec, fused), count)
}

// matmul adds a dense subgraph.
func (b *builder) matmul(m, n, k, fused, count int, prec ir.Precision) {
	b.add(ir.NewMatMul(m, n, k, prec, fused), count)
}

// bmm adds a batched matmul subgraph (attention).
func (b *builder) bmm(bt, m, n, k, fused, count int, prec ir.Precision) {
	b.add(ir.NewBatchMatMul(bt, m, n, k, prec, fused), count)
}

// Registry lists all workload constructors by canonical name.
var registry = map[string]func() *Network{
	"resnet50":       func() *Network { return ResNet50(1, ir.FP32) },
	"wide_resnet50":  func() *Network { return WideResNet50(1, ir.FP32) },
	"mobilenet_v2":   func() *Network { return MobileNetV2(1, ir.FP32) },
	"densenet121":    func() *Network { return DenseNet121(1, ir.FP32) },
	"inception_v3":   func() *Network { return InceptionV3(1, ir.FP32) },
	"dcgan":          func() *Network { return DCGAN(1, ir.FP32) },
	"deeplab_v3":     func() *Network { return DeepLabV3(1, ir.FP32) },
	"vit":            func() *Network { return ViT(1, ir.FP32) },
	"detr":           func() *Network { return DeTR(1, ir.FP32) },
	"bert_base":      func() *Network { return BERT("bert_base", 1, 128, 12, 768, 3072, 12, ir.FP32) },
	"bert_tiny":      func() *Network { return BERT("bert_tiny", 1, 128, 6, 512, 2048, 8, ir.FP32) },
	"bert_large":     func() *Network { return BERT("bert_large", 1, 128, 24, 1024, 4096, 16, ir.FP32) },
	"gpt2":           func() *Network { return DecoderLM("gpt2", 1, 128, 12, 768, 3072, 12, false, ir.FP32) },
	"llama":          func() *Network { return DecoderLM("llama", 1, 128, 12, 768, 3072, 12, true, ir.FP32) },
	"opt":            func() *Network { return DecoderLM("opt", 1, 128, 24, 2048, 8192, 32, false, ir.FP32) },
	"mistral":        func() *Network { return DecoderLM("mistral", 1, 128, 32, 4096, 14336, 32, true, ir.FP32) },
	"resnet3d18":     func() *Network { return ResNet3D18(1, ir.FP32) },
	"llama_decode1k": func() *Network { return LlamaDecode(32, 1024, ir.FP32) },
	"llama_decode4k": func() *Network { return LlamaDecode(32, 4096, ir.FP32) },
}

// ByName builds a workload from the registry.
func ByName(name string) (*Network, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("workloads: unknown network %q (have %v)", name, Names())
	}
	return f(), nil
}

// Names lists registered networks.
func Names() []string {
	var names []string
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Representative returns up to n tasks of the network ranked by their
// weighted FLOPs share — the scaled experiment harness tunes these instead
// of every subgraph. n <= 0 returns all tasks.
func (w *Network) Representative(n int) []*ir.Task {
	if n <= 0 || n >= len(w.Tasks) {
		return w.Tasks
	}
	tasks := make([]*ir.Task, len(w.Tasks))
	copy(tasks, w.Tasks)
	sort.SliceStable(tasks, func(i, j int) bool {
		return float64(tasks[i].Weight)*tasks[i].FLOPs() > float64(tasks[j].Weight)*tasks[j].FLOPs()
	})
	return tasks[:n]
}
