package workloads

import "pruner/internal/ir"

// ResNet50 is the (batch, 3, 224, 224) classification network, partitioned
// into its unique conv+bn+relu fused subgraphs (TVM folds batch-norm into
// the convolution, leaving a fused elementwise epilogue).
func ResNet50(batch int, prec ir.Precision) *Network {
	return resnet50Width(1, "resnet50", batch, prec)
}

// WideResNet50 doubles the bottleneck 3x3 widths of ResNet-50.
func WideResNet50(batch int, prec ir.Precision) *Network {
	return resnet50Width(2, "wide_resnet50", batch, prec)
}

func resnet50Width(width int, name string, batch int, prec ir.Precision) *Network {
	b := newBuilder(name)
	// Stem.
	b.conv(batch, 224, 224, 3, 64, 7, 2, 3, 1, 1, prec)

	// Bottleneck stages: (input hw, in channels, mid, out, blocks, stride).
	type stage struct{ hw, cin, mid, cout, blocks, stride int }
	stages := []stage{
		{56, 64, 64 * width, 256, 3, 1},
		{56, 256, 128 * width, 512, 4, 2},
		{28, 512, 256 * width, 1024, 6, 2},
		{14, 1024, 512 * width, 2048, 3, 2},
	}
	for _, s := range stages {
		outHW := s.hw / s.stride
		// First block: strided 3x3, plus the projection shortcut.
		b.conv(batch, s.hw, s.hw, s.cin, s.mid, 1, 1, 0, 1, 1, prec)
		b.conv(batch, s.hw, s.hw, s.mid, s.mid, 3, s.stride, 1, 1, 1, prec)
		b.conv(batch, outHW, outHW, s.mid, s.cout, 1, 1, 0, 2, 1, prec) // + residual add
		b.conv(batch, s.hw, s.hw, s.cin, s.cout, 1, s.stride, 0, 1, 1, prec)
		// Remaining identity blocks.
		rest := s.blocks - 1
		b.conv(batch, outHW, outHW, s.cout, s.mid, 1, 1, 0, 1, rest, prec)
		b.conv(batch, outHW, outHW, s.mid, s.mid, 3, 1, 1, 1, rest, prec)
		b.conv(batch, outHW, outHW, s.mid, s.cout, 1, 1, 0, 2, rest, prec)
	}
	// Global pooling + classifier.
	b.add(ir.NewReduction(batch*2048, 49, prec, 1), 1)
	b.matmul(batch, 1000, 2048, 1, 1, prec)
	return b.network()
}

// MobileNetV2 is the inverted-residual network at (batch, 3, 224, 224).
func MobileNetV2(batch int, prec ir.Precision) *Network {
	b := newBuilder("mobilenet_v2")
	b.conv(batch, 224, 224, 3, 32, 3, 2, 1, 1, 1, prec)
	b.dwconv(batch, 112, 112, 32, 3, 1, 1, 1, 1, prec)
	b.conv(batch, 112, 112, 32, 16, 1, 1, 0, 1, 1, prec)

	// Inverted residual stages: (hw_in, cin, cout, blocks, stride), t=6.
	type stage struct{ hw, cin, cout, blocks, stride int }
	stages := []stage{
		{112, 16, 24, 2, 2},
		{56, 24, 32, 3, 2},
		{28, 32, 64, 4, 2},
		{14, 64, 96, 3, 1},
		{14, 96, 160, 3, 2},
		{7, 160, 320, 1, 1},
	}
	for _, s := range stages {
		exp := s.cin * 6
		outHW := s.hw / s.stride
		// First block (strided).
		b.conv(batch, s.hw, s.hw, s.cin, exp, 1, 1, 0, 1, 1, prec)
		b.dwconv(batch, s.hw, s.hw, exp, 3, s.stride, 1, 1, 1, prec)
		b.conv(batch, outHW, outHW, exp, s.cout, 1, 1, 0, 1, 1, prec)
		// Residual blocks.
		rest := s.blocks - 1
		expR := s.cout * 6
		b.conv(batch, outHW, outHW, s.cout, expR, 1, 1, 0, 1, rest, prec)
		b.dwconv(batch, outHW, outHW, expR, 3, 1, 1, 1, rest, prec)
		b.conv(batch, outHW, outHW, expR, s.cout, 1, 1, 0, 2, rest, prec)
	}
	b.conv(batch, 7, 7, 320, 1280, 1, 1, 0, 1, 1, prec)
	b.add(ir.NewReduction(batch*1280, 49, prec, 1), 1)
	b.matmul(batch, 1000, 1280, 0, 1, prec)
	return b.network()
}

// DenseNet121 at (batch, 3, 224, 224). Dense blocks are represented by
// three sampled layers per block (early / middle / late input widths),
// weighted to preserve the block's layer count.
func DenseNet121(batch int, prec ir.Precision) *Network {
	b := newBuilder("densenet121")
	const growth = 32
	b.conv(batch, 224, 224, 3, 64, 7, 2, 3, 1, 1, prec)

	type block struct{ hw, cin, layers int }
	blocks := []block{
		{56, 64, 6}, {28, 128, 12}, {14, 256, 24}, {7, 512, 16},
	}
	for _, blk := range blocks {
		// Sample the input-channel progression cin + i*growth at three
		// points; split the layer count across them.
		points := []int{0, blk.layers / 2, blk.layers - 1}
		share := []int{blk.layers / 3, blk.layers / 3, blk.layers - 2*(blk.layers/3)}
		for i, pIdx := range points {
			cin := blk.cin + pIdx*growth
			b.conv(batch, blk.hw, blk.hw, cin, 4*growth, 1, 1, 0, 1, share[i], prec)
			b.conv(batch, blk.hw, blk.hw, 4*growth, growth, 3, 1, 1, 1, share[i], prec)
		}
		// Transition layer (not after the last block).
		if blk.hw > 7 {
			cout := (blk.cin + blk.layers*growth) / 2
			b.conv(batch, blk.hw, blk.hw, blk.cin+blk.layers*growth, cout, 1, 1, 0, 1, 1, prec)
		}
	}
	b.add(ir.NewReduction(batch*1024, 49, prec, 1), 1)
	b.matmul(batch, 1000, 1024, 0, 1, prec)
	return b.network()
}

// InceptionV3 at (batch, 3, 299, 299): the stem plus the dominant
// convolution shapes of the three mixed-block families.
func InceptionV3(batch int, prec ir.Precision) *Network {
	b := newBuilder("inception_v3")
	// Stem.
	b.conv(batch, 299, 299, 3, 32, 3, 2, 0, 1, 1, prec)
	b.conv(batch, 149, 149, 32, 32, 3, 1, 0, 1, 1, prec)
	b.conv(batch, 147, 147, 32, 64, 3, 1, 1, 1, 1, prec)
	b.conv(batch, 73, 73, 64, 80, 1, 1, 0, 1, 1, prec)
	b.conv(batch, 73, 73, 80, 192, 3, 1, 0, 1, 1, prec)
	// Mixed 35x35 blocks (3 of them): 1x1, 5x5 and double-3x3 towers.
	b.conv(batch, 35, 35, 256, 64, 1, 1, 0, 1, 9, prec)
	b.conv(batch, 35, 35, 48, 64, 5, 1, 2, 1, 3, prec)
	b.conv(batch, 35, 35, 64, 96, 3, 1, 1, 1, 6, prec)
	// Grid reduction to 17x17.
	b.conv(batch, 35, 35, 288, 384, 3, 2, 0, 1, 1, prec)
	// Mixed 17x17 blocks (4): factorised 7x7 as 1x7/7x1 pairs — modelled
	// as kh*kw=7 kernels via two rectangular convs approximated by k=7
	// depth-1 convs at matched FLOPs, plus the 1x1 towers.
	b.conv(batch, 17, 17, 768, 192, 1, 1, 0, 1, 16, prec)
	b.add(ir.NewConv2D(ir.Conv2DShape{N: batch, H: 17, W: 17, CI: 160, CO: 160, KH: 1, KW: 7, Stride: 1, Pad: 3}, prec, 1), 8)
	b.add(ir.NewConv2D(ir.Conv2DShape{N: batch, H: 17, W: 17, CI: 160, CO: 192, KH: 7, KW: 1, Stride: 1, Pad: 3}, prec, 1), 8)
	// Grid reduction to 8x8.
	b.conv(batch, 17, 17, 192, 320, 3, 2, 0, 1, 1, prec)
	// Mixed 8x8 blocks (2).
	b.conv(batch, 8, 8, 1280, 320, 1, 1, 0, 1, 2, prec)
	b.conv(batch, 8, 8, 1280, 384, 1, 1, 0, 1, 4, prec)
	b.conv(batch, 8, 8, 384, 384, 3, 1, 1, 1, 8, prec)
	b.add(ir.NewReduction(batch*2048, 64, prec, 1), 1)
	b.matmul(batch, 1000, 2048, 0, 1, prec)
	return b.network()
}

// DCGAN is the 64x64 generator: a latent projection plus four
// ConvTranspose2d stages — the operator Adatune cannot tune (Figure 8).
func DCGAN(batch int, prec ir.Precision) *Network {
	b := newBuilder("dcgan")
	b.matmul(batch, 4*4*1024, 100, 1, 1, prec)
	b.tconv(batch, 4, 4, 1024, 512, 4, 2, 1, 1, 1, prec)
	b.tconv(batch, 8, 8, 512, 256, 4, 2, 1, 1, 1, prec)
	b.tconv(batch, 16, 16, 256, 128, 4, 2, 1, 1, 1, prec)
	b.tconv(batch, 32, 32, 128, 3, 4, 2, 1, 1, 1, prec)
	return b.network()
}

// DeepLabV3 with ResNet-50 backbone at (batch, 3, 224, 224): dilated
// stages keep 28x28 resolution, followed by the ASPP head.
func DeepLabV3(batch int, prec ir.Precision) *Network {
	b := newBuilder("deeplab_v3")
	b.conv(batch, 224, 224, 3, 64, 7, 2, 3, 1, 1, prec)
	// Stages 1-2 as in ResNet-50.
	b.conv(batch, 56, 56, 64, 64, 1, 1, 0, 1, 3, prec)
	b.conv(batch, 56, 56, 64, 64, 3, 1, 1, 1, 3, prec)
	b.conv(batch, 56, 56, 64, 256, 1, 1, 0, 2, 3, prec)
	b.conv(batch, 56, 56, 256, 128, 1, 1, 0, 1, 4, prec)
	b.conv(batch, 28, 28, 128, 128, 3, 1, 1, 1, 4, prec)
	b.conv(batch, 28, 28, 128, 512, 1, 1, 0, 2, 4, prec)
	// Dilated stages 3-4 at 28x28 (atrous conv = 3x3 with halo; the
	// implicit-GEMM view is rate-independent).
	b.conv(batch, 28, 28, 512, 256, 1, 1, 0, 1, 6, prec)
	b.conv(batch, 28, 28, 256, 256, 3, 1, 1, 1, 6, prec)
	b.conv(batch, 28, 28, 256, 1024, 1, 1, 0, 2, 6, prec)
	b.conv(batch, 28, 28, 1024, 512, 1, 1, 0, 1, 3, prec)
	b.conv(batch, 28, 28, 512, 512, 3, 1, 1, 1, 3, prec)
	b.conv(batch, 28, 28, 512, 2048, 1, 1, 0, 2, 3, prec)
	// ASPP: 1x1 + three atrous 3x3 branches + projection, then the
	// classifier.
	b.conv(batch, 28, 28, 2048, 256, 1, 1, 0, 1, 2, prec)
	b.conv(batch, 28, 28, 2048, 256, 3, 1, 1, 1, 3, prec)
	b.conv(batch, 28, 28, 1280, 256, 1, 1, 0, 1, 1, prec)
	b.conv(batch, 28, 28, 256, 21, 1, 1, 0, 0, 1, prec)
	return b.network()
}

// ResNet3D18 is the video-classification test-set network of TenSet. Its
// 3x3x3 convolutions over 8 frames are folded into the implicit-GEMM view
// as kh*kw=27 kernels with the frame axis in the batch dimension.
func ResNet3D18(batch int, prec ir.Precision) *Network {
	b := newBuilder("resnet3d18")
	frames := 8
	add3d := func(hw, cin, cout, stride, count int) {
		b.add(ir.NewConv2D(ir.Conv2DShape{
			N: batch * frames, H: hw, W: hw, CI: cin, CO: cout,
			KH: 3, KW: 9, Stride: stride, Pad: 1, // kh*kw = 27 taps
		}, prec, 1), count)
	}
	b.conv(batch*frames, 112, 112, 3, 64, 7, 2, 3, 1, 1, prec)
	add3d(56, 64, 64, 1, 4)
	add3d(56, 64, 128, 2, 1)
	add3d(28, 128, 128, 1, 3)
	add3d(28, 128, 256, 2, 1)
	add3d(14, 256, 256, 1, 3)
	add3d(14, 256, 512, 2, 1)
	add3d(7, 512, 512, 1, 3)
	b.matmul(batch, 400, 512, 0, 1, prec)
	return b.network()
}
