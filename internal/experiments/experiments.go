// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each experiment is a named runner printing the paper's
// rows/series; DESIGN.md §3 maps experiment IDs to modules and bench
// targets, EXPERIMENTS.md records paper-vs-measured values.
//
// Runners execute in one of two scales: the default "scaled" mode keeps
// the paper's structure (same methods, same comparisons) with reduced
// trial counts, populations and dataset sizes so the whole suite finishes
// on a laptop; "full" mode uses the paper's parameters (2,000 trials,
// S_spec = 512, 8,000 model evaluations per round).
package experiments

import (
	"context"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"pruner/internal/analyzer"
	"pruner/internal/costmodel"
	"pruner/internal/dataset"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/nn"
	"pruner/internal/parallel"
	"pruner/internal/schedule"
	"pruner/internal/search"
	"pruner/internal/simulator"
	"pruner/internal/tuner"
	"pruner/internal/workloads"
)

// Config selects scale and output of a run.
type Config struct {
	Full bool
	Seed int64
	Out  io.Writer
	// Ctx cancels the run: it flows into every tuning session and dataset
	// generation. Nil means run to completion (context.Background()).
	Ctx context.Context
	// CacheDir stores pretrained cost-model weights between runs
	// (default ".cache").
	CacheDir string
	// Parallelism bounds the experiment's total concurrency; <= 0 selects
	// runtime.NumCPU(). One shared pool serves the suite-level session
	// fan-out, every session's internal scoring/measurement, and dataset
	// generation, so the bound holds across layers instead of
	// multiplying. Sessions are seeded independently, so reported rows
	// are identical at any setting.
	Parallelism int
	// PipelineDepth is forwarded to every tuning session (measurement
	// rounds in flight; see tuner.Options.PipelineDepth). 0/1 is the
	// serial loop. Reported rows are deterministic for a fixed depth but
	// differ between depths (deeper sessions search against slightly
	// staler history).
	PipelineDepth int
	// AdaptBudget forwards tuner.Options.AdaptBudget to every tuning
	// session: calibration-driven verify/draft/depth control. The
	// "adaptive" experiment compares fixed vs adaptive explicitly and
	// ignores this field; setting it here adapts the whole suite.
	AdaptBudget bool
	// Adapt bounds the controller when AdaptBudget is set (zero value =
	// tuner.AdaptConfig defaults).
	Adapt tuner.AdaptConfig
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = os.Stdout
	}
	if c.CacheDir == "" {
		c.CacheDir = ".cache"
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	if c.Ctx == nil {
		// Documented nil-Ctx default: experiment runs from the CLI own the
		// process; cancellation arrives as a signal, not a context.
		c.Ctx = context.Background() //pruner:allow ctxflow — documented nil-Ctx fallback at the run boundary; callers wanting cancellation set Config.Ctx
	}
	return c
}

// Runner executes one experiment.
type Runner func(cfg Config) error

// Registry maps experiment IDs (DESIGN.md §3) to runners.
var Registry = map[string]Runner{
	"table1":  Table1,
	"fig6":    Fig6,
	"fig7":    Fig7,
	"table5":  Table5,
	"fig8":    Fig8,
	"table6":  Table6,
	"fig9":    Fig9,
	"fig10":   Fig10,
	"fig11":   Fig11,
	"table7":  Table7,
	"fig12":   Fig12,
	"table8":  Table8,
	"table9":  Table9,
	"fig13":   Fig13,
	"fig14":   Fig14,
	"table10": Table10,
	"fig15":   Fig15,
	"table11": Table11,
	"table12": Table12,
	"table13": Table13,
	"fig16":   Fig16,
	// Beyond the paper: fixed vs adaptive budget control at equal trials
	// (ROADMAP "Adaptive verify budget"; DESIGN.md §14).
	"adaptive": Adaptive,
}

// IDs lists experiment IDs in evaluation order.
func IDs() []string {
	ids := []string{
		"table1", "fig6", "fig7", "table5", "fig8", "table6", "fig9",
		"fig10", "fig11", "table7", "fig12", "table8", "table9", "fig13",
		"fig14", "table10", "fig15", "table11", "table12", "table13", "fig16",
		"adaptive",
	}
	return ids
}

// scale bundles all size parameters of a run.
type scale struct {
	tag             string
	trials          int // measurement trials per network session
	opTrials        int // trials for single-operator sessions
	maxTasks        int // representative tasks per network (0 = all)
	evoPop, evoGens int // Ansor/MetaSchedule evolutionary budget
	specSize        int // LSE S_spec
	randomDraft     int
	datasetPerTask  int // synthetic TenSet schedules per subgraph
	pretrainEpochs  int
	onlineEpochs    int
	rollerPerTask   int
	bestKRepeats    int // random-GA repeats in Fig 14
}

func scaleOf(full bool) scale {
	if full {
		return scale{
			tag: "full", trials: 2000, opTrials: 800, maxTasks: 0,
			evoPop: 2000, evoGens: 4, specSize: 512, randomDraft: 128,
			datasetPerTask: 2000, pretrainEpochs: 25, onlineEpochs: 8,
			rollerPerTask: 50, bestKRepeats: 20,
		}
	}
	return scale{
		tag: "scaled", trials: 120, opTrials: 60, maxTasks: 4,
		evoPop: 320, evoGens: 3, specSize: 128, randomDraft: 40,
		datasetPerTask: 150, pretrainEpochs: 8, onlineEpochs: 4,
		rollerPerTask: 30, bestKRepeats: 6,
	}
}

// harness carries per-run shared state (pretrained weights cache) and the
// suite worker pool used to fan independent tuning sessions out.
type harness struct {
	cfg  Config
	ctx  context.Context // == cfg.Ctx; a receiver-level field so every harness method can forward it
	sc   scale
	pool *parallel.Pool
}

func newHarness(cfg Config) *harness {
	cfg = cfg.withDefaults()
	return &harness{cfg: cfg, ctx: cfg.Ctx, sc: scaleOf(cfg.Full), pool: parallel.New(cfg.Parallelism)}
}

func (h *harness) printf(format string, args ...any) {
	fmt.Fprintf(h.cfg.Out, format, args...)
}

// ---------------------------------------------------------------------------
// Pretraining with disk cache.

// pretrainTasks picks the offline-dataset subgraphs: the dominant tasks of
// a diverse slice of the training networks.
func (h *harness) pretrainTasks() []*ir.Task {
	names := dataset.TrainNetworks
	if !h.cfg.Full {
		names = []string{"wide_resnet50", "inception_v3", "vit", "gpt2", "dcgan", "deeplab_v3"}
	}
	seen := map[string]*ir.Task{}
	var out []*ir.Task
	perNet := 5
	if h.cfg.Full {
		perNet = 0
	}
	for _, name := range names {
		net, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		for _, t := range net.Representative(perNet) {
			if prev, ok := seen[t.ID]; ok {
				prev.Weight += t.Weight
				continue
			}
			seen[t.ID] = t
			out = append(out, t)
		}
	}
	return out
}

// offlineDataset builds (once per process) the synthetic TenSet slice for
// one device. Concurrent sessions may race to the same key, so the whole
// get-or-generate runs under dsMu; the generation itself parallelizes
// internally.
func (h *harness) offlineDataset(dev *device.Device) *dataset.Dataset {
	key := fmt.Sprintf("ds-%s-%s", dev.Name, h.sc.tag)
	dsMu.Lock()
	ds, ok := dsCache[key]
	dsMu.Unlock()
	if ok {
		return ds
	}
	// Generate outside the lock: a dataset build dispatches measurements
	// and must not stall other runners on dsMu. Generation is
	// deterministic, so a racing duplicate build produces an identical
	// dataset and only the cache insert needs arbitration.
	ds = dataset.Generate(h.ctx, dev, h.pretrainTasks(), dataset.GenOptions{
		SchedulesPerTask: h.sc.datasetPerTask,
		Seed:             h.cfg.Seed + int64(len(key)),
		Pool:             h.pool,
	})
	dsMu.Lock()
	if cached, ok := dsCache[key]; ok {
		ds = cached
	} else {
		dsCache[key] = ds
	}
	dsMu.Unlock()
	return ds
}

var (
	dsMu    sync.Mutex
	dsCache = map[string]*dataset.Dataset{}
)

// newModel constructs a fresh cost model by kind.
func newModel(kind string, seed int64) costmodel.Model {
	switch kind {
	case "pacm":
		return costmodel.NewPaCM(seed)
	case "pacm-no-sf":
		return costmodel.NewPaCMAblated(seed, false, true)
	case "pacm-no-tdf":
		return costmodel.NewPaCMAblated(seed, true, false)
	case "tensetmlp":
		return costmodel.NewTenSetMLP(seed)
	case "tlp":
		return costmodel.NewTLP(seed)
	default:
		panic("experiments: unknown model kind " + kind)
	}
}

// pretrained returns cached cross-platform weights for (kind, device),
// training and persisting them on first use. preMu serializes concurrent
// sessions training the same weights (it nests over dsMu via
// offlineDataset; nothing acquires them in the reverse order).
func (h *harness) pretrained(kind string, dev *device.Device) []*nn.Tensor {
	key := fmt.Sprintf("pre-%s-%s-%s", kind, dev.Name, h.sc.tag)
	preMu.Lock()
	w, ok := preCache[key]
	preMu.Unlock()
	if ok {
		return w
	}
	// Pretraining (and the dataset generation it may trigger) runs
	// outside the lock: it dispatches measurements and can take minutes.
	// Fitting is deterministic for a fixed seed, so a racing duplicate
	// yields identical weights; the cache insert arbitrates below.
	m := newModel(kind, h.cfg.Seed+77)
	path := filepath.Join(h.cfg.CacheDir, key+".gob")
	if f, err := os.Open(path); err == nil {
		err = nn.LoadParams(f, m.Params())
		_ = f.Close() // read-side close of a best-effort cache
		if err == nil {
			return h.insertPretrained(key, tuner.SnapshotParams(m))
		}
	}
	ds := h.offlineDataset(dev)
	if pu, ok := m.(costmodel.PoolUser); ok {
		// Offline pretraining shards its task groups over the suite pool;
		// the fitted weights are identical at any worker count.
		pu.SetPool(h.pool)
	}
	m.Fit(ds.Records(), costmodel.FitOptions{
		Epochs: h.sc.pretrainEpochs, Seed: h.cfg.Seed, MaxGroup: 128,
		Cache: costmodel.NewFitCache(), // once-per-record features across epochs
	})
	w = h.insertPretrained(key, tuner.SnapshotParams(m))
	if err := os.MkdirAll(h.cfg.CacheDir, 0o755); err == nil {
		if f, err := os.Create(path); err == nil {
			_ = nn.SaveParams(f, m.Params())
			_ = f.Close() // cache write is best-effort; a torn file fails LoadParams next run
		}
	}
	return w
}

// insertPretrained publishes freshly fitted weights, first writer wins.
func (h *harness) insertPretrained(key string, w []*nn.Tensor) []*nn.Tensor {
	preMu.Lock()
	defer preMu.Unlock()
	if cached, ok := preCache[key]; ok {
		return cached
	}
	preCache[key] = w
	return w
}

var (
	preMu    sync.Mutex
	preCache = map[string][]*nn.Tensor{}
)

// ---------------------------------------------------------------------------
// Tuning method dispatch.

// tune runs one tuning session of the given method over tasks.
func (h *harness) tune(dev *device.Device, tasks []*ir.Task, method string, seed int64) *tuner.Result {
	sc := h.sc
	opt := tuner.Options{
		Ctx:           h.ctx,
		Trials:        sc.trials,
		Seed:          seed,
		Pool:          h.pool, // one budget across the suite, not one per session
		PipelineDepth: h.cfg.PipelineDepth,
		AdaptBudget:   h.cfg.AdaptBudget,
		Adapt:         h.cfg.Adapt,
		Fit:           costmodel.FitOptions{Epochs: sc.onlineEpochs, Seed: seed},
	}
	evo := search.EvoParams{Population: sc.evoPop, Generations: sc.evoGens, MutateProb: 0.85, CrossProb: 0.05}
	lse := search.LSEParams{SpecSize: sc.specSize, Population: sc.evoPop, Steps: sc.evoGens, MutateProb: 0.85, CrossProb: 0.05}
	prunerPolicy := func() *search.PrunerPolicy {
		return &search.PrunerPolicy{LSE: lse, RandomDraft: sc.randomDraft, ExploitDraft: sc.randomDraft, Eps: 0.10}
	}
	ansorPolicy := func() *search.AnsorPolicy {
		return &search.AnsorPolicy{Evo: evo, Eps: 0.10}
	}

	switch method {
	case "ansor":
		opt.Policy = ansorPolicy()
		opt.Model = costmodel.NewTenSetMLP(seed + 1)
		opt.OnlineTrain = true
	case "pruner": // online, no pretrain (paper's "Pruner" / "w/o MoA")
		opt.Policy = prunerPolicy()
		opt.Model = costmodel.NewPaCM(seed + 1)
		opt.OnlineTrain = true
	case "moa-pruner":
		opt.Policy = prunerPolicy()
		opt.Model = costmodel.NewPaCM(seed + 1)
		opt.OnlineTrain = true
		opt.Adaptation = tuner.AdaptMoA
		opt.Pretrained = h.pretrained("pacm", device.K80)
	case "pruner-of": // online fine-tuning ablation (Table 12 "w/ O-F")
		opt.Policy = prunerPolicy()
		opt.Model = costmodel.NewPaCM(seed + 1)
		opt.OnlineTrain = true
		opt.Adaptation = tuner.AdaptFineTune
		opt.Pretrained = h.pretrained("pacm", device.K80)
	case "pruner-no-lse": // Table 12/13 "w/o LSE": PaCM over all explored
		opt.Policy = ansorPolicy()
		opt.Model = costmodel.NewPaCM(seed + 1)
		opt.OnlineTrain = true
	case "pruner-no-sf", "pruner-no-tdf":
		opt.Policy = prunerPolicy()
		kind := "pacm-no-sf"
		if method == "pruner-no-tdf" {
			kind = "pacm-no-tdf"
		}
		opt.Model = newModel(kind, seed+1)
		opt.OnlineTrain = true
	case "tensetmlp": // offline mode
		opt.Policy = ansorPolicy()
		opt.Model = costmodel.NewTenSetMLP(seed + 1)
		opt.Adaptation = tuner.AdaptFineTune
		opt.Pretrained = h.pretrained("tensetmlp", dev)
	case "tlp": // offline mode
		opt.Policy = ansorPolicy()
		opt.Model = costmodel.NewTLP(seed + 1)
		opt.Adaptation = tuner.AdaptFineTune
		opt.Pretrained = h.pretrained("tlp", dev)
	case "pruner-offline":
		opt.Policy = prunerPolicy()
		opt.Model = costmodel.NewPaCM(seed + 1)
		opt.Adaptation = tuner.AdaptFineTune
		opt.Pretrained = h.pretrained("pacm", dev)
	case "pruner-offline-no-lse": // Table 13 "w/o LSE" offline
		opt.Policy = ansorPolicy()
		opt.Model = costmodel.NewPaCM(seed + 1)
		opt.Adaptation = tuner.AdaptFineTune
		opt.Pretrained = h.pretrained("pacm", dev)
	case "metaschedule":
		opt.Policy = &search.MetaSchedulePolicy{Evo: evo, Eps: 0.15}
		opt.Model = costmodel.NewTenSetMLP(seed + 1)
		opt.OnlineTrain = true
		opt.TensorCore = true
	case "pruner-tc":
		opt.Policy = prunerPolicy()
		opt.Model = costmodel.NewPaCM(seed + 1)
		opt.OnlineTrain = true
		opt.TensorCore = true
	case "roller":
		opt.Policy = &search.RollerPolicy{CandidatePool: 2000}
		opt.Model = costmodel.NewRandom(seed + 1)
		opt.Trials = sc.rollerPerTask * len(tasks)
	case "adatune": // early-terminated measurements: cheaper but noisier
		opt.Policy = ansorPolicy()
		opt.Model = costmodel.NewTenSetMLP(seed + 1)
		opt.OnlineTrain = true
		opt.Trials = sc.trials * 85 / 100
		opt.Sim = simulator.NewWithConfig(dev, simulator.Config{MeasureNoise: 0.09})
	case "felix": // gradient-descent-style local search
		opt.Policy = &search.AnsorPolicy{
			Evo: search.EvoParams{Population: sc.evoPop / 3, Generations: sc.evoGens, MutateProb: 1.0, CrossProb: 0},
			Eps: 0,
		}
		opt.Model = costmodel.NewTenSetMLP(seed + 1)
		opt.OnlineTrain = true
	case "tlm": // language-model-assisted: offline-pretrained guidance
		opt.Policy = ansorPolicy()
		opt.Model = costmodel.NewTenSetMLP(seed + 1)
		opt.OnlineTrain = true
		opt.Adaptation = tuner.AdaptFineTune
		opt.Pretrained = h.pretrained("tensetmlp", dev)
	default:
		panic("experiments: unknown method " + method)
	}
	if !h.cfg.Full {
		// Scaled runs shrink per-round candidate budgets; charge the
		// simulated exploration clock at paper-scale rates so timing
		// comparisons (curves, Tables 1/5/7, Figure 7) stay meaningful.
		cost := simulator.DefaultCostParams(dev)
		xf := 1.0
		switch opt.Policy.(type) {
		case *search.PrunerPolicy:
			xf = 512.0 / float64(sc.specSize)
		case *search.AnsorPolicy, *search.MetaSchedulePolicy:
			xf = 8000.0 / float64(sc.evoPop*sc.evoGens)
		}
		cost.FeatureExtract *= xf
		cost.ModelInfer *= xf
		cost.DraftEval *= xf
		opt.Cost = cost
	}
	return tuner.Tune(dev, tasks, opt)
}

// session is one independent tuning job of a suite-level fan-out.
type session struct {
	dev    *device.Device
	tasks  []*ir.Task
	method string
	seed   int64
}

// tuneAll runs independent sessions concurrently on the suite pool and
// returns results in input order, so callers print rows deterministically
// no matter how the sessions interleave. Each session is self-seeded; the
// only state they share through h — the pretrained-weights and dataset
// caches — is mutex-guarded.
func (h *harness) tuneAll(ss []session) []*tuner.Result {
	return parallel.Map(h.pool, len(ss), func(i int) *tuner.Result {
		return h.tune(ss[i].dev, ss[i].tasks, ss[i].method, ss[i].seed)
	})
}

// tasksOf selects the session's tasks for a network at the current scale.
func (h *harness) tasksOf(net *workloads.Network) []*ir.Task {
	return net.Representative(h.sc.maxTasks)
}

// net fetches a workload or panics (experiment definitions are static).
func mustNet(name string) *workloads.Network {
	n, err := workloads.ByName(name)
	if err != nil {
		panic(err)
	}
	return n
}

// fullTrialFactor extrapolates simulated clocks from scaled trials to the
// paper's 2,000-trial sessions for minute-scale tables.
func (h *harness) fullTrialFactor() float64 {
	if h.cfg.Full {
		return 1
	}
	return 2000 / float64(h.sc.trials)
}

// minutes formats simulated seconds as minutes.
func minutes(s float64) float64 { return s / 60 }

// geomean of positive values (zeros skipped).
func geomean(xs []float64) float64 {
	var sum float64
	var n int
	for _, x := range xs {
		if x > 0 && !math.IsInf(x, 0) {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// methodsSorted returns map keys in stable order.
func methodsSorted[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// saBest evaluates the draft analyzer's score for all entries of a task
// set (used by the Best-k experiments).
func saBest(a *analyzer.Analyzer, s *dataset.TaskSet) []float64 {
	sa := costmodel.NewSA(a)
	return predictSet(sa, s)
}

// entrySchedules extracts the schedule list of a task set.
func entrySchedules(s *dataset.TaskSet) []*schedule.Schedule {
	out := make([]*schedule.Schedule, len(s.Entries))
	for i := range s.Entries {
		out[i] = s.Entries[i].Sched
	}
	return out
}

// predictSet scores every entry of a task set with a model.
func predictSet(m costmodel.Model, s *dataset.TaskSet) []float64 {
	return m.Predict(s.Task, entrySchedules(s))
}
