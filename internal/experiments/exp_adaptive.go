package experiments

import "pruner/internal/device"

// Adaptive is the fixed-vs-adaptive budget comparison behind the
// ROADMAP's "Adaptive verify budget" item (DESIGN.md §14): the same
// Pruner sessions run twice at an equal Trials budget, once with the
// fixed per-round verify/measure batch and once with the
// calibration-driven controller (tuner.Options.AdaptBudget), which
// shrinks the measured batch, widens the LSE draft set and deepens the
// pipeline as the cost model proves calibrated. Rows report the final
// workload latency, how many candidates each session actually measured,
// and sampled tuning curves — the numbers EXPERIMENTS.md records. The
// offline-pretrained rows are the "well-modeled" candidates: where the
// pretrained verifier ranks near-perfectly the controller cuts
// measurements, and where it is merely decent (rank error above the
// strict LowErr threshold) it holds the full fixed budget rather than
// trade away solution quality.
func Adaptive(cfg Config) error {
	fixedCfg, adaptCfg := cfg, cfg
	fixedCfg.AdaptBudget, adaptCfg.AdaptBudget = false, true
	hf, ha := newHarness(fixedCfg), newHarness(adaptCfg)
	seed := hf.cfg.Seed

	rows := []struct {
		label, net, method string
	}{
		{"resnet50/online", "resnet50", "pruner"},
		{"resnet50/offline", "resnet50", "pruner-offline"},
		{"bert_tiny/offline", "bert_tiny", "pruner-offline"},
	}
	hf.printf("Adaptive speculation: fixed vs calibrated budgets at equal trials, A100 [%s]\n", hf.sc.tag)
	for _, row := range rows {
		tasks := mustNet(row.net).Representative(2)
		fixed := hf.tune(device.A100, tasks, row.method, seed)
		adapt := ha.tune(device.A100, tasks, row.method, seed)
		fm := len(fixed.Records) - fixed.Warm
		am := len(adapt.Records) - adapt.Warm
		hf.printf("%-18s fixed   : best %.3fms, %3d measured, %5.0fs sim\n",
			row.label, fixed.FinalLatency*1e3, fm, fixed.Clock.Total())
		hf.printf("%-18s adaptive: best %.3fms, %3d measured, %5.0fs sim (%+.0f%% measurements)\n",
			row.label, adapt.FinalLatency*1e3, am, adapt.Clock.Total(),
			100*float64(am-fm)/float64(fm))
		hf.printf("  fixed    curve:")
		for _, p := range sampleCurve(fixed.Curve, 6) {
			hf.printf(" (%.0fs,%.3fms)", p.SimSeconds, p.WorkloadLat*1e3)
		}
		hf.printf("\n  adaptive curve:")
		for _, p := range sampleCurve(adapt.Curve, 6) {
			hf.printf(" (%.0fs,%.3fms)", p.SimSeconds, p.WorkloadLat*1e3)
		}
		hf.printf("\n")
	}
	return nil
}
