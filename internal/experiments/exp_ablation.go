package experiments

import (
	"pruner/internal/device"
)

// table12Methods are the online-ablation rows of Table 12.
var table12Methods = []struct {
	label, method string
}{
	{"Ansor", "ansor"},
	{"w/o LSE", "pruner-no-lse"},
	{"w/o S.F.", "pruner-no-sf"},
	{"w/o T.D.F", "pruner-no-tdf"},
	{"w/o MoA", "pruner"},
	{"w/ O-F", "pruner-of"},
	{"MoA-Pruner", "moa-pruner"},
}

// Table12 ablates the online tuning mode: removing LSE, either PaCM
// feature branch, MoA, or replacing MoA with plain online fine-tuning.
func Table12(cfg Config) error {
	h := newHarness(cfg)
	nets := []string{"resnet50", "bert_tiny"}
	if cfg.Full {
		nets = []string{"resnet50", "inception_v3", "vit", "deeplab_v3", "bert_tiny"}
	}
	h.printf("Table 12: online-mode ablation, final latency (ms) on TITAN V [%s]\n", h.sc.tag)
	h.printf("%-12s", "method")
	for _, n := range nets {
		h.printf(" %12s", n)
	}
	h.printf("\n")
	for _, row := range table12Methods {
		h.printf("%-12s", row.label)
		for _, n := range nets {
			res := h.tune(device.TitanV, h.tasksOf(mustNet(n)), row.method, cfg.Seed)
			h.printf(" %12.3f", res.FinalLatency*1e3)
		}
		h.printf("\n")
	}
	return nil
}

// Table13 ablates LSE in the offline mode (well-pretrained cost model):
// even with a strong verifier, drafting still cuts compilation cost.
func Table13(cfg Config) error {
	h := newHarness(cfg)
	nets := []string{"resnet50", "bert_tiny"}
	if cfg.Full {
		nets = []string{"resnet50", "inception_v3", "bert_base", "bert_tiny"}
	}
	f := h.fullTrialFactor()
	h.printf("Table 13: offline-mode ablation on A100 [%s]\n", h.sc.tag)
	h.printf("%-14s | %12s %9s | %12s %9s\n", "model", "w/oLSE-ms", "cost-min", "offline-ms", "cost-min")
	for _, n := range nets {
		tasks := h.tasksOf(mustNet(n))
		noLSE := h.tune(device.A100, tasks, "pruner-offline-no-lse", cfg.Seed)
		off := h.tune(device.A100, tasks, "pruner-offline", cfg.Seed)
		h.printf("%-14s | %12.3f %9.0f | %12.3f %9.0f\n", n,
			noLSE.FinalLatency*1e3, minutes(noLSE.Clock.Total()*f),
			off.FinalLatency*1e3, minutes(off.Clock.Total()*f))
	}
	return nil
}

// Fig16 prints the ResNet-50 ablation tuning curves on Titan V.
func Fig16(cfg Config) error {
	h := newHarness(cfg)
	tasks := h.tasksOf(mustNet("resnet50"))
	methods := []struct{ label, method string }{
		{"Ansor", "ansor"},
		{"w/o LSE", "pruner-no-lse"},
		{"w/o S.F.", "pruner-no-sf"},
		{"w/o T.D.F.", "pruner-no-tdf"},
		{"w/o MoA", "pruner"},
		{"MoA-Pruner", "moa-pruner"},
	}
	h.printf("Figure 16: ResNet-50 ablation tuning curves on TITAN V [%s]\n", h.sc.tag)
	for _, m := range methods {
		res := h.tune(device.TitanV, tasks, m.method, cfg.Seed)
		h.printf("%-12s:", m.label)
		for _, p := range sampleCurve(res.Curve, 8) {
			h.printf(" (%.0fs,%.3fms)", p.SimSeconds, p.WorkloadLat*1e3)
		}
		h.printf("\n")
	}
	return nil
}
