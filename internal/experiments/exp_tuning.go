package experiments

import (
	"math"

	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/tuner"
	"pruner/internal/vendorlib"
	"pruner/internal/workloads"
)

// tunerCurve aliases the tuner's curve point for local brevity.
type tunerCurve = tuner.CurvePoint

// Table1 reproduces the Ansor tuning-cost breakdown on Orin (exploration /
// training / measurement minutes for 2,000 trials).
func Table1(cfg Config) error {
	h := newHarness(cfg)
	h.printf("Table 1: Ansor tuning cost (min, extrapolated to 2000 trials) on Orin [%s]\n", h.sc.tag)
	h.printf("%-14s %12s %12s %12s\n", "Ansor", "Exploration", "Training", "Measurement")
	f := h.fullTrialFactor()
	nets := []string{"resnet50", "detr", "inception_v3"}
	ss := make([]session, len(nets))
	for i, name := range nets {
		ss[i] = session{device.Orin, h.tasksOf(mustNet(name)), "ansor", cfg.Seed}
	}
	for i, res := range h.tuneAll(ss) {
		c := res.Clock
		h.printf("%-14s %12.1f %12.1f %12.1f\n",
			nets[i], minutes(c.Exploration*f), minutes(c.Training*f), minutes(c.Measurement*f))
	}
	return nil
}

// fig6Methods are the tuning-curve series of Figure 6.
var fig6Online = []string{"ansor", "pruner", "moa-pruner"}
var fig6Offline = []string{"tensetmlp", "tlp", "pruner-offline"}

// Fig6 reproduces the workload tuning curves in online and offline
// cost-model tuning modes across the three platforms.
func Fig6(cfg Config) error {
	h := newHarness(cfg)
	nets := []string{"resnet50"}
	if cfg.Full {
		nets = []string{"resnet50", "vit", "deeplab_v3", "bert_base"}
	}
	devs := []*device.Device{device.A100, device.Orin, device.TitanV}
	h.printf("Figure 6: tuning curves (search time s -> workload latency ms) [%s]\n", h.sc.tag)
	// Every (network, device, mode, method) series is an independent
	// session: enumerate them, fan them out, print in enumeration order.
	type combo struct {
		netName, mode, method string
		dev                   *device.Device
	}
	var combos []combo
	var ss []session
	for _, netName := range nets {
		tasks := h.tasksOf(mustNet(netName))
		for _, dev := range devs {
			for _, mode := range []struct {
				label   string
				methods []string
			}{{"online", fig6Online}, {"offline", fig6Offline}} {
				// Scaled mode runs the offline methods on the A100 only.
				if !cfg.Full && mode.label == "offline" && dev != device.A100 {
					continue
				}
				for _, m := range mode.methods {
					combos = append(combos, combo{netName, mode.label, m, dev})
					ss = append(ss, session{dev, tasks, m, cfg.Seed})
				}
			}
		}
	}
	results := h.tuneAll(ss)
	for i, c := range combos {
		h.printf("%s %s %s %s:", c.netName, c.dev.Name, c.mode, c.method)
		for _, p := range sampleCurve(results[i].Curve, 8) {
			h.printf(" (%.0fs,%.3fms)", p.SimSeconds, p.WorkloadLat*1e3)
		}
		h.printf("\n")
	}
	return nil
}

// Fig7 reproduces the search-time comparison on A100: how fast Pruner /
// MoA-Pruner reach each baseline's final best.
func Fig7(cfg Config) error {
	h := newHarness(cfg)
	nets := []string{"resnet50", "bert_tiny"}
	if cfg.Full {
		nets = []string{"resnet50", "wide_resnet50", "mobilenet_v2", "densenet121",
			"inception_v3", "vit", "detr", "deeplab_v3", "bert_base", "bert_tiny"}
	}
	h.printf("Figure 7: search-time speedup to reach baseline best (A100) [%s]\n", h.sc.tag)
	h.printf("%-16s %10s %14s %12s %10s\n", "network", "vs-ansor", "vs-moa(ansor)", "vs-tensetmlp", "vs-tlp")
	var sAnsor, sMoA, sTen, sTLP []float64
	methods := []string{"ansor", "pruner", "moa-pruner", "tensetmlp", "tlp", "pruner-offline"}
	var ss []session
	for _, name := range nets {
		tasks := h.tasksOf(mustNet(name))
		for _, m := range methods {
			ss = append(ss, session{device.A100, tasks, m, cfg.Seed})
		}
	}
	results := h.tuneAll(ss)
	for ni, name := range nets {
		row := results[ni*len(methods) : (ni+1)*len(methods)]
		ansor, pruner, moa, tenset, tlp, poff := row[0], row[1], row[2], row[3], row[4], row[5]

		spAnsor := speedupToReach(ansor.Clock.Total(), pruner, ansor.FinalLatency)
		spMoA := speedupToReach(ansor.Clock.Total(), moa, ansor.FinalLatency)
		spTen := speedupToReach(tenset.Clock.Total(), poff, tenset.FinalLatency)
		spTLP := speedupToReach(tlp.Clock.Total(), poff, tlp.FinalLatency)
		sAnsor = append(sAnsor, spAnsor)
		sMoA = append(sMoA, spMoA)
		sTen = append(sTen, spTen)
		sTLP = append(sTLP, spTLP)
		h.printf("%-16s %9.2fx %13.2fx %11.2fx %9.2fx\n", name, spAnsor, spMoA, spTen, spTLP)
	}
	h.printf("%-16s %9.2fx %13.2fx %11.2fx %9.2fx\n", "geomean",
		geomean(sAnsor), geomean(sMoA), geomean(sTen), geomean(sTLP))
	return nil
}

// speedupToReach is baselineTime / (time for res to reach target); capped
// when the target is never reached.
func speedupToReach(baselineSeconds float64, res interface {
	WorkloadLatencyAt(float64) float64
}, target float64) float64 {
	at := res.WorkloadLatencyAt(target * 1.02) // 2% tolerance, as in tuning-curve reads
	if math.IsInf(at, 1) || at <= 0 {
		return 1
	}
	return baselineSeconds / at
}

// Table5 compares MoA-Pruner at the standard budget with Ansor given 3-5x
// more trials, plus TenSet's transfer strategy, on A100.
func Table5(cfg Config) error {
	h := newHarness(cfg)
	type row struct {
		net        string
		ansorScale int // trials multiplier for the Ansor column
	}
	rows := []row{{"resnet50", 3}, {"bert_tiny", 2}}
	if cfg.Full {
		rows = []row{{"resnet50", 5}, {"inception_v3", 5}, {"bert_base", 3}, {"bert_tiny", 3}}
	}
	f := h.fullTrialFactor()
	h.printf("Table 5: MoA-Pruner (1x trials) vs Ansor (more trials) vs TenSet transfer on A100 [%s]\n", h.sc.tag)
	h.printf("%-14s %7s | %9s %9s | %9s %9s | %9s %9s\n",
		"model", "trials", "ansor-ms", "cost-min", "tenset-ms", "cost-min", "moa-ms", "cost-min")
	for _, r := range rows {
		tasks := h.tasksOf(mustNet(r.net))
		saved := h.sc.trials
		h.sc.trials = saved * r.ansorScale
		ansor := h.tune(device.A100, tasks, "ansor", cfg.Seed)
		h.sc.trials = saved
		tenset := h.tune(device.A100, tasks, "tensetmlp", cfg.Seed)
		moa := h.tune(device.A100, tasks, "moa-pruner", cfg.Seed)
		h.printf("%-14s %7d | %9.3f %9.0f | %9.3f %9.0f | %9.3f %9.0f\n",
			r.net, h.sc.trials*r.ansorScale*int(f),
			ansor.FinalLatency*1e3, minutes(ansor.Clock.Total()*f),
			tenset.FinalLatency*1e3, minutes(tenset.Clock.Total()*f),
			moa.FinalLatency*1e3, minutes(moa.Clock.Total()*f))
	}
	return nil
}

// fig8Failures marks the (method, network) pairs that fail to tune, per
// §6.1: Adatune lacks ConvTranspose2d, Felix trips on irregular shapes,
// TLM only supports subgraphs from its pretraining corpus.
var fig8Failures = map[string]map[string]bool{
	"adatune": {"dcgan": true},
	"felix":   {"dcgan": true, "detr": true},
	"tlm":     {"vit": true, "llama": true},
}

// Fig8 compares Pruner with Adatune, Felix and TLM on A100.
func Fig8(cfg Config) error {
	h := newHarness(cfg)
	nets := []string{"resnet50", "dcgan", "llama"}
	if cfg.Full {
		nets = []string{"resnet50", "inception_v3", "mobilenet_v2", "densenet121",
			"vit", "detr", "bert_tiny", "dcgan", "llama"}
	}
	methods := []string{"adatune", "felix", "tlm", "moa-pruner"}
	h.printf("Figure 8: normalized performance vs more tensor compilers (A100) [%s]\n", h.sc.tag)
	h.printf("%-16s", "network")
	for _, m := range methods {
		h.printf(" %12s", m)
	}
	h.printf("\n")
	speedups := map[string][]float64{}
	for _, name := range nets {
		tasks := h.tasksOf(mustNet(name))
		lat := map[string]float64{}
		best := math.Inf(1)
		for _, m := range methods {
			if fig8Failures[m][name] || (m != "moa-pruner" && hasKind(tasks, ir.ConvTranspose2D) && m == "adatune") {
				lat[m] = math.Inf(1)
				continue
			}
			res := h.tune(device.A100, tasks, m, cfg.Seed)
			lat[m] = res.FinalLatency
			if res.FinalLatency < best {
				best = res.FinalLatency
			}
		}
		h.printf("%-16s", name)
		for _, m := range methods {
			if math.IsInf(lat[m], 1) {
				h.printf(" %12s", "x")
				continue
			}
			h.printf(" %12.3f", best/lat[m])
			if m != "moa-pruner" {
				speedups[m] = append(speedups[m], lat[m]/lat["moa-pruner"])
			}
		}
		h.printf("\n")
	}
	for _, m := range []string{"tlm", "felix", "adatune"} {
		h.printf("avg speedup of MoA-Pruner over %-8s: %.2fx\n", m, geomean(speedups[m]))
	}
	return nil
}

func hasKind(tasks []*ir.Task, kind ir.OpKind) bool {
	for _, t := range tasks {
		if t.Kind == kind {
			return true
		}
	}
	return false
}

// Table6 compares against Roller on Titan V.
func Table6(cfg Config) error {
	h := newHarness(cfg)
	nets := []string{"resnet50", "bert_large"}
	h.printf("Table 6: workload latency (ms) vs Roller on TITAN V [%s]\n", h.sc.tag)
	h.printf("%-14s %10s %10s %10s %12s\n", "model", "pytorch", "roller", "ansor", "moa-pruner")
	for _, name := range nets {
		net := mustNet(name)
		tasks := h.tasksOf(net)
		pt := vendorlib.NetworkLatency(vendorlib.PyTorch, device.TitanV, net)
		roller := h.tune(device.TitanV, tasks, "roller", cfg.Seed)
		ansor := h.tune(device.TitanV, tasks, "ansor", cfg.Seed)
		moa := h.tune(device.TitanV, tasks, "moa-pruner", cfg.Seed)
		h.printf("%-14s %10.3f %10.3f %10.3f %12.3f\n",
			name, pt*1e3, roller.FinalLatency*1e3, ansor.FinalLatency*1e3, moa.FinalLatency*1e3)
	}
	return nil
}

// Fig9 compares with off-the-shelf inference frameworks on A100.
func Fig9(cfg Config) error {
	h := newHarness(cfg)
	nets := []string{"resnet50", "mobilenet_v2", "bert_tiny", "dcgan"}
	if cfg.Full {
		nets = []string{"resnet50", "mobilenet_v2", "inception_v3", "densenet121",
			"vit", "detr", "bert_tiny", "dcgan", "llama", "gpt2"}
	}
	h.printf("Figure 9: normalized performance vs frameworks (A100) [%s]\n", h.sc.tag)
	h.printf("%-16s %10s %10s %10s %12s\n", "network", "pytorch", "triton", "tensorrt", "moa-pruner")
	speedup := map[string][]float64{}
	for _, name := range nets {
		net := mustNet(name)
		lat := map[string]float64{
			"pytorch":  vendorlib.NetworkLatency(vendorlib.PyTorch, device.A100, net),
			"triton":   vendorlib.NetworkLatency(vendorlib.Triton, device.A100, net),
			"tensorrt": vendorlib.NetworkLatency(vendorlib.TensorRT, device.A100, net),
		}
		res := h.tune(device.A100, h.tasksOf(net), "moa-pruner", cfg.Seed)
		// Scaled runs tune only the representative tasks; account for the
		// untuned remainder at framework-kernel latency so network totals
		// stay comparable.
		lat["moa-pruner"] = res.FinalLatency + untunedRemainder(net, h.tasksOf(net), device.A100)
		best := math.Inf(1)
		for _, l := range lat {
			if l < best {
				best = l
			}
		}
		h.printf("%-16s %10.3f %10.3f %10.3f %12.3f\n",
			name, best/lat["pytorch"], best/lat["triton"], best/lat["tensorrt"], best/lat["moa-pruner"])
		for _, fw := range []string{"pytorch", "triton", "tensorrt"} {
			speedup[fw] = append(speedup[fw], lat[fw]/lat["moa-pruner"])
		}
	}
	for _, fw := range []string{"pytorch", "triton", "tensorrt"} {
		h.printf("avg speedup of MoA-Pruner over %-9s: %.2fx\n", fw, geomean(speedup[fw]))
	}
	return nil
}

// sampleCurve downsamples a tuning curve to at most n points (always
// keeping the last), skipping the pre-coverage +Inf prefix.
func sampleCurve(curve []tunerCurve, n int) []tunerCurve {
	var valid []tunerCurve
	for _, p := range curve {
		if !math.IsInf(p.WorkloadLat, 1) {
			valid = append(valid, p)
		}
	}
	if len(valid) <= n {
		return valid
	}
	out := make([]tunerCurve, 0, n)
	step := float64(len(valid)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, valid[int(float64(i)*step)])
	}
	return out
}

// Fig10 evaluates long-context Llama decoding (batch 32) against
// frameworks and compilers, plus the 1K-context tuning curve.
func Fig10(cfg Config) error {
	h := newHarness(cfg)
	contexts := []string{"llama_decode1k"}
	if cfg.Full {
		contexts = []string{"llama_decode1k", "llama_decode4k"}
	}
	h.printf("Figure 10: Llama decode (bs=32) normalized performance (A100) [%s]\n", h.sc.tag)
	h.printf("%-16s %9s %8s %9s %7s %7s %11s\n",
		"context", "pytorch", "triton", "tensorrt", "ansor", "felix", "moa-pruner")
	for _, name := range contexts {
		net := mustNet(name)
		tasks := h.tasksOf(net)
		lat := map[string]float64{
			"pytorch":  vendorlib.NetworkLatency(vendorlib.PyTorch, device.A100, net),
			"triton":   vendorlib.NetworkLatency(vendorlib.Triton, device.A100, net),
			"tensorrt": vendorlib.NetworkLatency(vendorlib.TensorRT, device.A100, net),
		}
		rest := untunedRemainder(net, tasks, device.A100)
		for _, m := range []string{"ansor", "felix", "moa-pruner"} {
			res := h.tune(device.A100, tasks, m, cfg.Seed)
			lat[m] = res.FinalLatency + rest
		}
		best := math.Inf(1)
		for _, l := range lat {
			if l < best {
				best = l
			}
		}
		h.printf("%-16s %9.3f %8.3f %9.3f %7.3f %7.3f %11.3f\n", name,
			best/lat["pytorch"], best/lat["triton"], best/lat["tensorrt"],
			best/lat["ansor"], best/lat["felix"], best/lat["moa-pruner"])
	}
	// Tuning curve, Ansor vs MoA-Pruner on the 1K decode.
	net := mustNet("llama_decode1k")
	tasks := h.tasksOf(net)
	for _, m := range []string{"ansor", "moa-pruner"} {
		res := h.tune(device.A100, tasks, m, cfg.Seed+5)
		h.printf("curve llama-1k %s:", m)
		for _, p := range sampleCurve(res.Curve, 8) {
			h.printf(" (%.0fs,%.3fms)", p.SimSeconds, p.WorkloadLat*1e3)
		}
		h.printf("\n")
	}
	return nil
}

// fig11Ops are the single-operator cases: 3 matmuls, 4 stride-1 convs and
// 4 stride-2 convs with irregular shapes, as in §6.2. M-2 is the
// large-K/small-output case where PyTorch's splitK wins.
func fig11Ops() []*ir.Task {
	conv := func(h, w, ci, co, k, stride int) *ir.Task {
		return ir.NewConv2D(ir.Conv2DShape{N: 1, H: h, W: w, CI: ci, CO: co, KH: k, KW: k, Stride: stride, Pad: k / 2}, ir.FP32, 0)
	}
	return []*ir.Task{
		ir.NewMatMul(960, 770, 1200, ir.FP32, 0),  // M-1
		ir.NewMatMul(64, 96, 6144, ir.FP32, 0),    // M-2 (splitK regime)
		ir.NewMatMul(1536, 1024, 768, ir.FP32, 0), // M-3
		conv(58, 58, 96, 160, 3, 1),               // C1-1
		conv(30, 30, 210, 255, 3, 1),              // C1-2
		conv(120, 120, 36, 48, 5, 1),              // C1-3
		conv(14, 14, 510, 512, 3, 1),              // C1-4
		conv(112, 112, 30, 64, 3, 2),              // C2-1
		conv(56, 56, 96, 190, 3, 2),               // C2-2
		conv(36, 36, 255, 330, 5, 2),              // C2-3
		conv(28, 28, 384, 512, 3, 2),              // C2-4
	}
}

// Fig11 tunes single operators with random shapes (800 trials, no
// pretraining) against PyTorch and Ansor on A100.
func Fig11(cfg Config) error {
	h := newHarness(cfg)
	ops := fig11Ops()
	labels := []string{"M-1", "M-2", "M-3", "C1-1", "C1-2", "C1-3", "C1-4", "C2-1", "C2-2", "C2-3", "C2-4"}
	if !cfg.Full {
		ops = append(ops[:4:4], ops[7])
		labels = append(labels[:4:4], labels[7])
	}
	saved := h.sc.trials
	h.sc.trials = h.sc.opTrials
	defer func() { h.sc.trials = saved }()
	h.printf("Figure 11: single-operator normalized performance (A100) [%s]\n", h.sc.tag)
	h.printf("%-6s %10s %10s %10s\n", "op", "pytorch", "ansor", "pruner")
	ss := make([]session, 0, 2*len(ops))
	for _, op := range ops {
		ss = append(ss,
			session{device.A100, []*ir.Task{op}, "ansor", cfg.Seed},
			session{device.A100, []*ir.Task{op}, "pruner", cfg.Seed})
	}
	results := h.tuneAll(ss)
	for i, op := range ops {
		pt := vendorlib.TaskLatency(vendorlib.PyTorch, device.A100, op)
		ansor := results[2*i].FinalLatency
		pr := results[2*i+1].FinalLatency
		best := math.Min(pt, math.Min(ansor, pr))
		h.printf("%-6s %10.3f %10.3f %10.3f\n", labels[i], best/pt, best/ansor, best/pr)
	}
	return nil
}

// Table7 reports end-to-end compilation time (minutes, 2,000-trial
// equivalent) of Ansor, Pruner and MoA-Pruner on Titan V.
func Table7(cfg Config) error {
	h := newHarness(cfg)
	nets := []string{"resnet50", "vit"}
	if cfg.Full {
		nets = []string{"resnet50", "inception_v3", "vit", "deeplab_v3", "bert_base"}
	}
	f := h.fullTrialFactor()
	h.printf("Table 7: compilation time (min, 2000-trial equivalent) on TITAN V [%s]\n", h.sc.tag)
	h.printf("%-12s", "method")
	for _, n := range nets {
		h.printf(" %12s", n)
	}
	h.printf("\n")
	totals := map[string][]float64{}
	methods := []string{"ansor", "pruner", "moa-pruner"}
	var ss []session
	for _, m := range methods {
		for _, n := range nets {
			ss = append(ss, session{device.TitanV, h.tasksOf(mustNet(n)), m, cfg.Seed})
		}
	}
	results := h.tuneAll(ss)
	for mi, m := range methods {
		h.printf("%-12s", m)
		for ni := range nets {
			mins := minutes(results[mi*len(nets)+ni].Clock.Total() * f)
			totals[m] = append(totals[m], mins)
			h.printf(" %12.1f", mins)
		}
		h.printf("\n")
	}
	h.printf("avg Pruner/Ansor time: %.1f%%  MoA-Pruner/Ansor: %.1f%%\n",
		100*geomean(totals["pruner"])/geomean(totals["ansor"]),
		100*geomean(totals["moa-pruner"])/geomean(totals["ansor"]))
	return nil
}

// untunedRemainder prices the network tasks outside the tuned subset at
// cudaLib kernel latency, so scaled sessions (which tune only the
// representative tasks) stay comparable to whole-network framework
// latencies.
func untunedRemainder(net *workloads.Network, tuned []*ir.Task, dev *device.Device) float64 {
	tunedSet := map[string]bool{}
	for _, t := range tuned {
		tunedSet[t.ID] = true
	}
	var rest float64
	for _, t := range net.Tasks {
		if tunedSet[t.ID] {
			continue
		}
		rest += float64(t.Weight) * vendorlib.TaskLatency(vendorlib.CudaLib, dev, t)
	}
	return rest
}
