package experiments

import (
	"math/rand"
	"sort"

	"pruner/internal/analyzer"
	"pruner/internal/costmodel"
	"pruner/internal/dataset"
	"pruner/internal/device"
	"pruner/internal/ir"
)

// testDataset builds (and caches) the §6.5 test split on a device: the
// five held-out networks' dominant subgraphs with TenSet-style schedule
// pools.
func (h *harness) testDataset(dev *device.Device) *dataset.Dataset {
	key := "test-" + dev.Name + "-" + h.sc.tag
	if ds, ok := dsCache[key]; ok {
		return ds
	}
	names := dataset.TestNetworks
	perNet := 4
	if h.cfg.Full {
		perNet = 0
	}
	seen := map[string]bool{}
	var out []*ir.Task
	for _, name := range names {
		net := mustNet(name)
		for _, t := range net.Representative(perNet) {
			if seen[t.ID] {
				continue
			}
			seen[t.ID] = true
			out = append(out, t)
		}
	}
	ds := dataset.Generate(h.ctx, dev, out, dataset.GenOptions{
		SchedulesPerTask: h.sc.datasetPerTask,
		Seed:             h.cfg.Seed + 991,
	})
	dsCache[key] = ds
	return ds
}

// specIndicesSA ranks a task set's pool by the Symbol-based Analyzer and
// returns the indices of the top size entries — the paper's "drafting
// S_spec from all explored candidates".
func specIndicesSA(a *analyzer.Analyzer, s *dataset.TaskSet, size int) []int {
	scores := saBest(a, s)
	idx := make([]int, len(scores))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(x, y int) bool { return scores[idx[x]] > scores[idx[y]] })
	if len(idx) > size {
		idx = idx[:size]
	}
	return idx
}

// specIndicesRandom samples a random subset of the pool (the random-GA
// strategy baseline).
func specIndicesRandom(rng *rand.Rand, n, size int) []int {
	idx := rng.Perm(n)
	if len(idx) > size {
		idx = idx[:size]
	}
	return idx
}

// Fig14 reproduces the Best-k comparison: S_spec drafted by LSE vs a
// random exploration strategy, on the TenSet T4 test networks.
func Fig14(cfg Config) error {
	h := newHarness(cfg)
	ds := h.testDataset(device.T4)
	a := analyzer.New(device.T4)
	sizes := []int{256, 512}
	if !cfg.Full {
		sizes = []int{64, 128}
	}
	ks := []int{1, 5, 20}
	h.printf("Figure 14: Best-k of S_spec, LSE vs random GA (TenSet T4) [%s]\n", h.sc.tag)
	h.printf("%-6s %-8s", "size", "method")
	for _, k := range ks {
		h.printf("   @%-5d", k)
	}
	h.printf("\n")
	rng := rand.New(rand.NewSource(cfg.Seed + 14))
	for _, size := range sizes {
		lseSpecs := make([][]int, len(ds.Sets))
		for i, s := range ds.Sets {
			lseSpecs[i] = specIndicesSA(a, s, size)
		}
		h.printf("%-6d %-8s", size, "LSE")
		for _, k := range ks {
			h.printf(" %8.3f", dataset.WeightedBestK(ds.Sets, lseSpecs, k))
		}
		h.printf("\n")
		// Random strategy averaged over repeats.
		sums := make([]float64, len(ks))
		for r := 0; r < h.sc.bestKRepeats; r++ {
			specs := make([][]int, len(ds.Sets))
			for i, s := range ds.Sets {
				specs[i] = specIndicesRandom(rng, len(s.Entries), size)
			}
			for j, k := range ks {
				sums[j] += dataset.WeightedBestK(ds.Sets, specs, k)
			}
		}
		h.printf("%-6d %-8s", size, "GA")
		for j := range ks {
			h.printf(" %8.3f", sums[j]/float64(h.sc.bestKRepeats))
		}
		h.printf("\n")
	}
	return nil
}

// Table10 ablates the LSE penalty groups: Best-1 of S_spec at several
// sizes with compute or memory penalties removed.
func Table10(cfg Config) error {
	h := newHarness(cfg)
	ds := h.testDataset(device.T4)
	sizes := []int{50, 128, 256, 512}
	if !cfg.Full {
		sizes = []int{16, 32, 64, 128}
	}
	configs := []struct {
		label string
		cfg   analyzer.Config
	}{
		{"w/o P_c", analyzer.Config{DisableComputePenalties: true}},
		{"w/o P_m", analyzer.Config{DisableMemoryPenalties: true}},
		{"LSE(ours)", analyzer.Config{}},
	}
	h.printf("Table 10: Best-1 of S_spec vs size, penalty ablations (TenSet T4) [%s]\n", h.sc.tag)
	h.printf("%-10s", "method")
	for _, s := range sizes {
		h.printf(" %8d", s)
	}
	h.printf("\n")
	for _, c := range configs {
		a := &analyzer.Analyzer{Dev: device.T4, Cfg: c.cfg}
		h.printf("%-10s", c.label)
		for _, size := range sizes {
			specs := make([][]int, len(ds.Sets))
			for i, s := range ds.Sets {
				specs[i] = specIndicesSA(a, s, size)
			}
			h.printf(" %8.3f", dataset.WeightedBestK(ds.Sets, specs, 1))
		}
		h.printf("\n")
	}
	return nil
}

// Fig15 sweeps the training-set size and reports Top-1 for PaCM,
// TenSetMLP and TLP — the data-efficiency claim behind the temporal
// dataflow features.
func Fig15(cfg Config) error {
	h := newHarness(cfg)
	train := h.offlineDataset(device.T4)
	test := h.testDataset(device.T4)
	perTaskSizes := []int{25, 60, 120, 220}
	if cfg.Full {
		perTaskSizes = []int{100, 300, 800, 2000}
	}
	h.printf("Figure 15: Top-1 vs training-set size (TenSet T4) [%s]\n", h.sc.tag)
	h.printf("%-10s %10s %10s %10s\n", "samples", "tensetmlp", "tlp", "pacm")
	for _, per := range perTaskSizes {
		sub := train.Subsample(per, cfg.Seed+int64(per))
		h.printf("%-10d", sub.Size())
		for _, kind := range []string{"tensetmlp", "tlp", "pacm"} {
			m := newModel(kind, cfg.Seed+int64(per)+7)
			if pu, ok := m.(costmodel.PoolUser); ok {
				pu.SetPool(h.pool)
			}
			m.Fit(sub.Records(), costmodel.FitOptions{Epochs: h.sc.pretrainEpochs, Seed: cfg.Seed, MaxGroup: 128, Cache: costmodel.NewFitCache()})
			h.printf(" %10.3f", test.TopK(1, func(s *dataset.TaskSet) []float64 { return predictSet(m, s) }))
		}
		h.printf("\n")
	}
	return nil
}

// Table11 reports Top-1 / Top-5 of the three cost models on the T4 and
// K80 dataset splits at the full training budget.
func Table11(cfg Config) error {
	h := newHarness(cfg)
	h.printf("Table 11: Top-k on TenSet GPU datasets [%s]\n", h.sc.tag)
	h.printf("%-10s %10s %10s %10s %10s\n", "method", "T4 top-1", "T4 top-5", "K80 top-1", "K80 top-5")
	type res struct{ t1, t5, k1, k5 float64 }
	rows := map[string]res{}
	for _, dev := range []*device.Device{device.T4, device.K80} {
		train := h.offlineDataset(dev)
		test := h.testDataset(dev)
		for _, kind := range []string{"tensetmlp", "tlp", "pacm"} {
			m := newModel(kind, cfg.Seed+13)
			if pu, ok := m.(costmodel.PoolUser); ok {
				pu.SetPool(h.pool)
			}
			m.Fit(train.Records(), costmodel.FitOptions{Epochs: h.sc.pretrainEpochs, Seed: cfg.Seed, MaxGroup: 128, Cache: costmodel.NewFitCache()})
			score := func(s *dataset.TaskSet) []float64 { return predictSet(m, s) }
			r := rows[kind]
			if dev == device.T4 {
				r.t1, r.t5 = test.TopK(1, score), test.TopK(5, score)
			} else {
				r.k1, r.k5 = test.TopK(1, score), test.TopK(5, score)
			}
			rows[kind] = r
		}
	}
	for _, kind := range []string{"tensetmlp", "tlp", "pacm"} {
		r := rows[kind]
		h.printf("%-10s %10.3f %10.3f %10.3f %10.3f\n", kind, r.t1, r.t5, r.k1, r.k5)
	}
	return nil
}
