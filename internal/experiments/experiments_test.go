package experiments

import (
	"io"
	"strings"
	"testing"

	"pruner/internal/device"
	"pruner/internal/tuner"
)

func TestRegistryMatchesIDs(t *testing.T) {
	ids := IDs()
	if len(ids) != len(Registry) {
		t.Fatalf("IDs() has %d entries, Registry %d", len(ids), len(Registry))
	}
	for _, id := range ids {
		if Registry[id] == nil {
			t.Fatalf("experiment %q missing from registry", id)
		}
	}
}

func TestScaleParameters(t *testing.T) {
	full := scaleOf(true)
	if full.trials != 2000 || full.specSize != 512 {
		t.Fatalf("full scale must use the paper's parameters, got %+v", full)
	}
	// Ansor's evolutionary budget must reach the paper's ~8000 model
	// evaluations per round at full scale.
	if full.evoPop*full.evoGens < 8000 {
		t.Fatalf("full Ansor budget %d evaluations/round, want >= 8000", full.evoPop*full.evoGens)
	}
	sc := scaleOf(false)
	if sc.trials >= full.trials || sc.specSize >= full.specSize {
		t.Fatal("scaled mode must be smaller than full mode")
	}
}

// TestFastExperimentsRun executes the dataset-metric experiments end to
// end (they complete in seconds) and checks they produce the expected
// table headers.
func TestFastExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment execution")
	}
	for _, tc := range []struct {
		id   string
		want string
	}{
		{"fig14", "Best-k"},
		{"table10", "Best-1"},
	} {
		var sb strings.Builder
		cfg := Config{Seed: 7, Out: &sb, CacheDir: t.TempDir()}
		if err := Registry[tc.id](cfg); err != nil {
			t.Fatalf("%s: %v", tc.id, err)
		}
		if !strings.Contains(sb.String(), tc.want) {
			t.Errorf("%s output missing %q:\n%s", tc.id, tc.want, sb.String())
		}
	}
}

func TestHarnessDefaults(t *testing.T) {
	h := newHarness(Config{Out: io.Discard})
	if h.cfg.Seed == 0 || h.cfg.CacheDir == "" {
		t.Fatal("defaults not applied")
	}
	if f := h.fullTrialFactor(); f <= 1 {
		t.Fatalf("scaled mode should extrapolate trials, factor %g", f)
	}
	hf := newHarness(Config{Full: true, Out: io.Discard})
	if hf.fullTrialFactor() != 1 {
		t.Fatal("full mode must not extrapolate")
	}
}

func TestPretrainTasksDeduplicated(t *testing.T) {
	h := newHarness(Config{Out: io.Discard})
	tasks := h.pretrainTasks()
	if len(tasks) < 10 {
		t.Fatalf("only %d pretraining tasks", len(tasks))
	}
	seen := map[string]bool{}
	for _, task := range tasks {
		if seen[task.ID] {
			t.Fatalf("duplicate pretraining task %s", task.Name)
		}
		seen[task.ID] = true
	}
}

func TestFig11OpsCoverPaperCases(t *testing.T) {
	ops := fig11Ops()
	if len(ops) != 11 {
		t.Fatalf("fig11 needs 11 ops (3 matmul + 8 conv), got %d", len(ops))
	}
	// M-2 must be the splitK regime: deep K, small output.
	m2 := ops[1]
	if m2.Meta["k"] < 2048 || m2.Meta["m"]*m2.Meta["n"] > 64*128 {
		t.Fatal("M-2 is not a splitK-regime GEMM")
	}
}

// TestTuneAllMatchesSerial checks the suite-level fan-out: running the
// same session list on one worker and on four must print identical rows,
// because sessions are independently seeded and results are returned in
// input order.
func TestTuneAllMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("runs tuning sessions")
	}
	run := func(parallelism int) []*tuner.Result {
		h := newHarness(Config{Seed: 7, Out: io.Discard, Parallelism: parallelism})
		h.sc.trials = 30
		h.sc.maxTasks = 1
		tasks := h.tasksOf(mustNet("bert_tiny"))
		return h.tuneAll([]session{
			{device.A100, tasks, "ansor", 7},
			{device.A100, tasks, "pruner", 7},
			{device.T4, tasks, "pruner", 8},
			{device.A100, tasks, "roller", 9},
		})
	}
	serial := run(1)
	wide := run(4)
	for i := range serial {
		if serial[i].FinalLatency != wide[i].FinalLatency {
			t.Fatalf("session %d final latency differs: %g vs %g",
				i, serial[i].FinalLatency, wide[i].FinalLatency)
		}
		if serial[i].Clock != wide[i].Clock {
			t.Fatalf("session %d clock differs: %+v vs %+v", i, serial[i].Clock, wide[i].Clock)
		}
	}
}
