package experiments

import (
	"math"

	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/vendorlib"
	"pruner/internal/workloads"
)

// tcLLMs are the half-precision TensorCore benchmarks of §6.4.
var tcLLMs = []string{"bert_tiny", "bert_base", "gpt2", "llama", "opt", "mistral"}

func tcNet(name string, batch int) *workloads.Network {
	net, err := workloads.LLM(name, batch, 128, ir.FP16)
	if err != nil {
		panic(err)
	}
	return net
}

// Fig12 compares Pruner with MetaSchedule, Triton and PyTorch on the A100
// TensorCore for six LLMs at batch sizes 1 and 4.
func Fig12(cfg Config) error {
	h := newHarness(cfg)
	names := []string{"bert_tiny", "gpt2"}
	batches := []int{1}
	if cfg.Full {
		names = tcLLMs
		batches = []int{1, 4}
	}
	h.printf("Figure 12: normalized performance on A100 TensorCore (FP16) [%s]\n", h.sc.tag)
	h.printf("%-12s %3s %9s %8s %14s %8s\n", "model", "bs", "pytorch", "triton", "metaschedule", "pruner")
	var msRatio, ptRatio, trRatio []float64
	for _, bs := range batches {
		for _, name := range names {
			net := tcNet(name, bs)
			tasks := h.tasksOf(net)
			rest := untunedRemainder(net, tasks, device.A100)
			lat := map[string]float64{
				"pytorch": vendorlib.NetworkLatency(vendorlib.PyTorch, device.A100, net),
				"triton":  vendorlib.NetworkLatency(vendorlib.Triton, device.A100, net),
			}
			for _, m := range []string{"metaschedule", "pruner-tc"} {
				res := h.tune(device.A100, tasks, m, cfg.Seed)
				lat[m] = res.FinalLatency + rest
			}
			best := math.Inf(1)
			for _, l := range lat {
				if l < best {
					best = l
				}
			}
			h.printf("%-12s %3d %9.3f %8.3f %14.3f %8.3f\n", name, bs,
				best/lat["pytorch"], best/lat["triton"], best/lat["metaschedule"], best/lat["pruner-tc"])
			msRatio = append(msRatio, lat["metaschedule"]/lat["pruner-tc"])
			ptRatio = append(ptRatio, lat["pytorch"]/lat["pruner-tc"])
			trRatio = append(trRatio, lat["triton"]/lat["pruner-tc"])
		}
	}
	h.printf("avg Pruner speedup: vs MetaSchedule %.2fx, vs PyTorch %.2fx, vs Triton %.2fx\n",
		geomean(msRatio), geomean(ptRatio), geomean(trRatio))
	return nil
}

// table8Ops are the four GPT-2 linear operators (bs=1, prefill 128).
func table8Ops() []*ir.Task {
	return []*ir.Task{
		ir.NewMatMul(128, 2304, 768, ir.FP16, 1),
		ir.NewMatMul(128, 768, 768, ir.FP16, 1),
		ir.NewMatMul(128, 3072, 768, ir.FP16, 1),
		ir.NewMatMul(128, 768, 3072, ir.FP16, 1),
	}
}

// Table8 compares cudaLib (with its splitK choice) against Pruner on the
// GPT-2 linear operators over TensorCore.
func Table8(cfg Config) error {
	h := newHarness(cfg)
	saved := h.sc.trials
	h.sc.trials = h.sc.opTrials
	defer func() { h.sc.trials = saved }()
	h.printf("Table 8: GPT-2 linear op latency (us) on A100 TensorCore [%s]\n", h.sc.tag)
	h.printf("%-4s %-22s %10s %7s %10s\n", "id", "shape", "cudaLib", "splitK", "pruner")
	for i, op := range table8Ops() {
		lib, algo := vendorlib.OpLatency(device.A100, op)
		res := h.tune(device.A100, []*ir.Task{op}, "pruner-tc", cfg.Seed)
		split := "w/o"
		if algo == "splitK" {
			split = "w"
		}
		h.printf("%-4d m%d n%d k%-14d %10.2f %7s %10.2f\n", i+1,
			op.MetaVal("m"), op.MetaVal("n"), op.MetaVal("k"),
			lib*1e6, split, res.FinalLatency*1e6)
	}
	return nil
}

// Table9 measures Pruner's search speedup over MetaSchedule: the time for
// Pruner to reach MetaSchedule's final best.
func Table9(cfg Config) error {
	h := newHarness(cfg)
	names := []string{"bert_tiny", "gpt2"}
	batches := []int{1}
	if cfg.Full {
		names = tcLLMs
		batches = []int{1, 4}
	}
	h.printf("Table 9: search speedup vs MetaSchedule on A100 TensorCore [%s]\n", h.sc.tag)
	h.printf("%-12s", "bs\\model")
	for _, n := range names {
		h.printf(" %10s", n)
	}
	h.printf("\n")
	var all []float64
	for _, bs := range batches {
		h.printf("(%d, 128)   ", bs)
		for _, name := range names {
			tasks := h.tasksOf(tcNet(name, bs))
			ms := h.tune(device.A100, tasks, "metaschedule", cfg.Seed)
			pr := h.tune(device.A100, tasks, "pruner-tc", cfg.Seed)
			sp := speedupToReach(ms.Clock.Total(), pr, ms.FinalLatency)
			all = append(all, sp)
			h.printf(" %9.2fx", sp)
		}
		h.printf("\n")
	}
	h.printf("average search speedup: %.2fx\n", geomean(all))
	return nil
}

// fig13Ops are the Llama decoding operators of Figure 13 (bs=32, 1K
// context): the fixed linear projections and the KV-cache attention
// matmuls.
func fig13Ops() []struct {
	label string
	task  *ir.Task
} {
	const (
		bs     = 32
		hidden = 768
		inter  = 3072
		heads  = 12
		ctx    = 1024
	)
	return []struct {
		label string
		task  *ir.Task
	}{
		{"proj_qkvo", ir.NewMatMul(bs, hidden, hidden, ir.FP16, 1)},
		{"proj_gate_up", ir.NewMatMul(bs, inter, hidden, ir.FP16, 1)},
		{"proj_down", ir.NewMatMul(bs, hidden, inter, ir.FP16, 1)},
		{"qkT_1k", ir.NewBatchMatMul(bs*heads, 1, ctx, hidden/heads, ir.FP16, 0)},
		{"attnV_1k", ir.NewBatchMatMul(bs*heads, 1, hidden/heads, ctx, ir.FP16, 0)},
	}
}

// Fig13 compares per-operator decode performance on the A100 TensorCore:
// cudaLib (splitK on the large-reduction linears), Triton, MetaSchedule
// and Pruner.
func Fig13(cfg Config) error {
	h := newHarness(cfg)
	ops := fig13Ops()
	if !cfg.Full {
		ops = ops[:3]
	}
	saved := h.sc.trials
	h.sc.trials = h.sc.opTrials
	defer func() { h.sc.trials = saved }()
	h.printf("Figure 13: Llama decode ops, normalized performance on A100 TensorCore [%s]\n", h.sc.tag)
	h.printf("%-14s %9s %8s %14s %8s\n", "op", "cudaLib", "triton", "metaschedule", "pruner")
	for _, op := range ops {
		lib, _ := vendorlib.OpLatency(device.A100, op.task)
		tri := vendorlib.TaskLatency(vendorlib.Triton, device.A100, op.task)
		ms := h.tune(device.A100, []*ir.Task{op.task}, "metaschedule", cfg.Seed).FinalLatency
		pr := h.tune(device.A100, []*ir.Task{op.task}, "pruner-tc", cfg.Seed).FinalLatency
		best := math.Min(math.Min(lib, tri), math.Min(ms, pr))
		h.printf("%-14s %9.3f %8.3f %14.3f %8.3f\n", op.label, best/lib, best/tri, best/ms, best/pr)
	}
	return nil
}
