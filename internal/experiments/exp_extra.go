package experiments

import (
	"math"
	"math/rand"
	"sort"

	"pruner/internal/analyzer"
	"pruner/internal/costmodel"
	"pruner/internal/device"
	"pruner/internal/ir"
	"pruner/internal/schedule"
	"pruner/internal/search"
	"pruner/internal/simulator"
	"pruner/internal/tuner"
)

// AblationSAvsOracle quantifies the draft model's gap to ground truth:
// pairwise ranking accuracy of the Symbol-based Analyzer against the
// simulator, and the Best-1 of its top picks — the price of Eq. 1's
// additive compute+memory model versus overlapped execution.
func AblationSAvsOracle(cfg Config) error {
	h := newHarness(cfg)
	tasks := []*ir.Task{
		ir.NewMatMul(512, 512, 512, ir.FP32, 1),
		ir.NewConv2D(ir.Conv2DShape{N: 1, H: 28, W: 28, CI: 128, CO: 256, KH: 3, KW: 3, Stride: 1, Pad: 1}, ir.FP32, 1),
		ir.NewBatchMatMul(12, 128, 128, 64, ir.FP32, 0),
	}
	dev := device.A100
	sim := simulator.New(dev)
	a := analyzer.New(dev)
	rng := rand.New(rand.NewSource(cfg.Seed))
	h.printf("Ablation: Symbol-based Analyzer vs simulator ground truth (A100)\n")
	h.printf("%-40s %10s %10s\n", "task", "pair-acc", "best1@64")
	for _, t := range tasks {
		g := schedule.NewGenerator(t)
		g.MaxSharedWords = dev.SharedPerBlock
		pool := g.InitPopulation(rng, 400)
		type cand struct{ sa, truth float64 }
		var cands []cand
		for _, s := range pool {
			lat, err := sim.Latency(t, s)
			if err != nil {
				continue
			}
			cands = append(cands, cand{sa: a.EstimateLatency(schedule.Lower(t, s)), truth: lat})
		}
		var agree, total float64
		for i := range cands {
			for j := i + 1; j < len(cands); j++ {
				total++
				if (cands[i].sa < cands[j].sa) == (cands[i].truth < cands[j].truth) {
					agree++
				}
			}
		}
		sort.Slice(cands, func(i, j int) bool { return cands[i].sa < cands[j].sa })
		best := math.Inf(1)
		bestTop := math.Inf(1)
		for i, c := range cands {
			if c.truth < best {
				best = c.truth
			}
			if i < 64 && c.truth < bestTop {
				bestTop = c.truth
			}
		}
		h.printf("%-40s %10.3f %10.3f\n", t.Name, agree/total, best/bestTop)
	}
	return nil
}

// AblationMomentum sweeps MoA's momentum coefficient m on a small online
// tuning session, comparing against plain fine-tuning (m=0 would be
// re-initialising from the fine-tuned weights every round).
func AblationMomentum(cfg Config) error {
	h := newHarness(cfg)
	tasks := h.tasksOf(mustNet("bert_tiny"))
	pre := h.pretrained("pacm", device.K80)
	h.printf("Ablation: MoA momentum sweep on bert_tiny (A100) [%s]\n", h.sc.tag)
	h.printf("%-12s %12s\n", "momentum", "final-ms")
	for _, m := range []float64{0.9, 0.99, 0.999} {
		res := tuner.Tune(device.A100, tasks, tuner.Options{
			Trials:      h.sc.trials,
			Policy:      &search.PrunerPolicy{LSE: search.LSEParams{SpecSize: h.sc.specSize, Population: h.sc.specSize, Steps: 4, MutateProb: 0.85, CrossProb: 0.05}, RandomDraft: h.sc.randomDraft, Eps: 0.05},
			Model:       costmodel.NewPaCM(cfg.Seed + 1),
			OnlineTrain: true,
			Adaptation:  tuner.AdaptMoA,
			Pretrained:  pre,
			Momentum:    m,
			Seed:        cfg.Seed,
			Fit:         costmodel.FitOptions{Epochs: h.sc.onlineEpochs, Seed: cfg.Seed},
		})
		h.printf("%-12.3f %12.4f\n", m, res.FinalLatency*1e3)
	}
	of := h.tune(device.A100, tasks, "pruner-of", cfg.Seed)
	h.printf("%-12s %12.4f\n", "O-F (none)", of.FinalLatency*1e3)
	return nil
}
