package obs

import (
	"strings"
	"testing"
	"time"
)

func TestCounterAndVec(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("pruner_test_total", "a test counter")
	c.Inc()
	c.Add(2.5)
	c.Add(-4) // ignored: counters only go up
	if got := c.Value(); got != 3.5 {
		t.Fatalf("counter value = %v, want 3.5", got)
	}
	v := r.CounterVec("pruner_test_labeled_total", "labeled", "worker")
	v.With("a").Inc()
	v.With("a").Inc()
	v.With("b").Add(5)
	if got, ok := r.Value("pruner_test_labeled_total", "a"); !ok || got != 2 {
		t.Fatalf("Value(a) = %v,%v want 2,true", got, ok)
	}
	if got := r.Sum("pruner_test_labeled_total"); got != 7 {
		t.Fatalf("Sum = %v, want 7", got)
	}
}

func TestRegistryIdempotentAndPanics(t *testing.T) {
	r := NewRegistry()
	a := r.Gauge("pruner_test_gauge", "g")
	b := r.Gauge("pruner_test_gauge", "g")
	a.Set(4)
	if b.Value() != 4 {
		t.Fatalf("re-registration did not return the same instrument")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("kind mismatch did not panic")
			}
		}()
		r.Counter("pruner_test_gauge", "now a counter")
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatalf("invalid name did not panic")
			}
		}()
		r.Counter("0bad-name", "bad")
	}()
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("pruner_test_seconds", "h", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if h.Sum() != 55.55 {
		t.Fatalf("sum = %v, want 55.55", h.Sum())
	}
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	text := sb.String()
	for _, want := range []string{
		`pruner_test_seconds_bucket{le="0.1"} 1`,
		`pruner_test_seconds_bucket{le="1"} 2`,
		`pruner_test_seconds_bucket{le="10"} 3`,
		`pruner_test_seconds_bucket{le="+Inf"} 4`,
		`pruner_test_seconds_count 4`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("exposition missing %q:\n%s", want, text)
		}
	}
}

func TestWriteTextIsValidAndDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("pruner_z_total", "last alphabetically").Add(1)
	r.GaugeFunc("pruner_a_gauge", "func-backed", func() float64 { return 42 })
	hv := r.HistogramVec("pruner_m_seconds", "labeled histogram", nil, "stage")
	hv.With("plan").Observe(0.002)
	hv.With(`we"ird\la🐛bel` + "\n").Observe(3)
	cv := r.CounterVec("pruner_w_total", "worker counter", "worker", "kind")
	cv.With("http://w1", "batch").Add(3)
	cv.With("http://w2", "batch").Add(9)

	var first strings.Builder
	if err := r.WriteText(&first); err != nil {
		t.Fatal(err)
	}
	if err := ValidateText(strings.NewReader(first.String())); err != nil {
		t.Fatalf("own exposition does not validate: %v\n%s", err, first.String())
	}
	var second strings.Builder
	if err := r.WriteText(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatalf("two scrapes of an unchanged registry differ:\n--- first\n%s\n--- second\n%s", first.String(), second.String())
	}
	if !strings.Contains(first.String(), "pruner_a_gauge 42") {
		t.Fatalf("func-backed gauge missing:\n%s", first.String())
	}
}

func TestValidateTextRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"empty":            "",
		"no type":          "pruner_x_total 3\n",
		"bad name":         "# TYPE 9bad counter\n9bad 3\n",
		"bad value":        "# TYPE pruner_x_total counter\npruner_x_total zebra\n",
		"negative counter": "# TYPE pruner_x_total counter\npruner_x_total -1\n",
		"unterminated":     "# TYPE pruner_x gauge\npruner_x{a=\"b 3\n",
		"missing inf":      "# TYPE pruner_h histogram\npruner_h_bucket{le=\"1\"} 1\npruner_h_sum 1\npruner_h_count 1\n",
		"non-cumulative":   "# TYPE pruner_h histogram\npruner_h_bucket{le=\"1\"} 5\npruner_h_bucket{le=\"2\"} 3\npruner_h_bucket{le=\"+Inf\"} 5\npruner_h_sum 1\npruner_h_count 5\n",
		"count != inf":     "# TYPE pruner_h histogram\npruner_h_bucket{le=\"+Inf\"} 5\npruner_h_sum 1\npruner_h_count 4\n",
		"dup label":        "# TYPE pruner_x gauge\npruner_x{a=\"b\",a=\"c\"} 3\n",
		"unknown type":     "# TYPE pruner_x rainbow\npruner_x 3\n",
	}
	for name, in := range cases {
		if err := ValidateText(strings.NewReader(in)); err == nil {
			t.Errorf("%s: ValidateText accepted malformed input %q", name, in)
		}
	}
	good := "# HELP pruner_x_total fine\n# TYPE pruner_x_total counter\npruner_x_total{a=\"b\\\"c\\\\d\\ne\"} 3 1700000000000\n"
	if err := ValidateText(strings.NewReader(good)); err != nil {
		t.Errorf("ValidateText rejected valid input: %v", err)
	}
}

func TestTraceSinkRing(t *testing.T) {
	s := NewTraceSink(3)
	for i := 0; i < 5; i++ {
		s.Append(Span{Name: "s", Start: int64(i)})
	}
	if s.Total() != 5 {
		t.Fatalf("total = %d, want 5", s.Total())
	}
	got := s.Snapshot()
	if len(got) != 3 {
		t.Fatalf("retained = %d, want 3", len(got))
	}
	for i, sp := range got {
		if want := int64(i + 2); sp.Start != want {
			t.Fatalf("snapshot[%d].Start = %d, want %d (oldest-first after eviction)", i, sp.Start, want)
		}
	}
	var sb strings.Builder
	if err := s.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"total_spans": 5`, `"retained_spans": 3`} {
		if !strings.Contains(sb.String(), want) {
			t.Fatalf("trace dump missing %q:\n%s", want, sb.String())
		}
	}
}

type stepClock struct{ t int64 }

func (c *stepClock) Now() int64 { c.t += 1e9; return c.t }

func TestTracerSpans(t *testing.T) {
	sink := NewTraceSink(8)
	tr := NewTracer(&stepClock{}, sink)
	sp := tr.Start("round", Int("round", 3))
	sp.End(String("measurer", "sim"))
	spans := sink.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("spans = %d, want 1", len(spans))
	}
	got := spans[0]
	if got.Name != "round" || got.End-got.Start != 1e9 || len(got.Attrs) != 2 {
		t.Fatalf("unexpected span %+v", got)
	}
}

func TestNilSafety(t *testing.T) {
	var o *Observer
	o.Reg().Counter("pruner_nil_total", "x").Inc()
	o.Reg().CounterVec("pruner_nil_vec_total", "x", "l").With("a").Add(2)
	o.Reg().Gauge("pruner_nil_gauge", "x").Set(1)
	o.Reg().Histogram("pruner_nil_seconds", "x", nil).Observe(0.1)
	o.Trace().Start("nothing").End()
	if o.Sink() != nil {
		t.Fatalf("nil observer returned a sink")
	}
	if o.Clock().Now() != 0 {
		t.Fatalf("nil observer clock is not the no-op clock")
	}
	var sink *TraceSink
	sink.Append(Span{})
	if sink.Snapshot() != nil || sink.Total() != 0 {
		t.Fatalf("nil sink misbehaved")
	}
	var span *ActiveSpan
	span.End() // must not panic
	if got, ok := o.Reg().Value("pruner_nil_total"); ok || got != 0 {
		t.Fatalf("nil registry Value = %v,%v", got, ok)
	}
}

func TestClocks(t *testing.T) {
	before := time.Now().UnixNano()
	got := RealClock().Now()
	after := time.Now().UnixNano()
	if got < before || got > after {
		t.Fatalf("RealClock out of range: %d not in [%d,%d]", got, before, after)
	}
	if NopClock().Now() != 0 {
		t.Fatalf("NopClock is not zero")
	}
	if Seconds(NopClock(), 0) != 0 {
		t.Fatalf("Seconds under NopClock is not zero")
	}
}
