package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// histBound is one finite histogram bucket observed while validating.
type histBound struct {
	le    float64
	count float64
}

// histChild is the per-(family, labelset) state the validator folds
// histogram samples into before checking invariants.
type histChild struct {
	buckets  []histBound
	infCount float64
	sawInf   bool
	sum, cnt float64
	sawSum   bool
	sawCnt   bool
}

// ValidateText is a strict parser for the Prometheus text exposition
// format (version 0.0.4) — the library half of the scrape tests and the
// measure-e2e CI check, so "GET /metrics serves valid exposition" is a
// single shared predicate instead of per-test regexes. It checks, per
// line: metric/label name syntax, label quoting and escapes, and float
// sample values; and per family: that a # TYPE precedes its samples, that
// sample names match the family (histograms may only emit _bucket, _sum
// and _count), that counter samples are non-negative, and that every
// histogram child has cumulative buckets ending in le="+Inf" equal to its
// _count. Empty input is an error: a scrape that returns nothing is a
// broken exporter, not a healthy one.
func ValidateText(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)

	types := map[string]string{} // family -> kind
	helped := map[string]bool{}  // family -> saw # HELP
	samples := 0
	hists := map[string]*histChild{} // family \xff labelkey -> state

	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := validateComment(line, types, helped); err != nil {
				return fmt.Errorf("line %d: %w", lineNo, err)
			}
			continue
		}
		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %w", lineNo, err)
		}
		samples++
		fam, suffix := sampleFamily(name, types)
		kind, ok := types[fam]
		if !ok {
			return fmt.Errorf("line %d: sample %q precedes its # TYPE line", lineNo, name)
		}
		switch kind {
		case "histogram", "summary":
			if suffix == "" && kind == "histogram" {
				return fmt.Errorf("line %d: histogram %q emitted a bare sample; want _bucket/_sum/_count", lineNo, fam)
			}
			if kind == "histogram" {
				if err := foldHistogramSample(hists, fam, suffix, labels, value); err != nil {
					return fmt.Errorf("line %d: %w", lineNo, err)
				}
			}
		case "counter":
			if value < 0 {
				return fmt.Errorf("line %d: counter %q has negative value %g", lineNo, name, value)
			}
		case "gauge", "untyped":
		default:
			return fmt.Errorf("line %d: unknown metric type %q for %q", lineNo, kind, fam)
		}
		_ = helped
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("exposition carries no samples")
	}
	// Histogram invariants hold per child across the whole scrape.
	keys := make([]string, 0, len(hists))
	for k := range hists {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		h := hists[k]
		fam := strings.SplitN(k, "\xff", 2)[0]
		sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].le < h.buckets[j].le })
		prev := 0.0
		for _, b := range h.buckets {
			if b.count < prev {
				return fmt.Errorf("histogram %q: bucket le=%g count %g below previous bucket %g (not cumulative)", fam, b.le, b.count, prev)
			}
			prev = b.count
		}
		if !h.sawInf {
			return fmt.Errorf("histogram %q is missing its le=\"+Inf\" bucket", fam)
		}
		if h.infCount < prev {
			return fmt.Errorf("histogram %q: +Inf bucket %g below largest finite bucket %g", fam, h.infCount, prev)
		}
		if !h.sawSum || !h.sawCnt {
			return fmt.Errorf("histogram %q is missing _sum or _count", fam)
		}
		if h.cnt != h.infCount {
			return fmt.Errorf("histogram %q: _count %g != +Inf bucket %g", fam, h.cnt, h.infCount)
		}
	}
	return nil
}

// validateComment checks # HELP / # TYPE lines (other comments pass).
func validateComment(line string, types map[string]string, helped map[string]bool) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment
	}
	switch fields[1] {
	case "TYPE":
		if len(fields) < 4 {
			return fmt.Errorf("malformed TYPE line %q", line)
		}
		name, kind := fields[2], strings.TrimSpace(fields[3])
		if !validName(name) {
			return fmt.Errorf("TYPE line names invalid metric %q", name)
		}
		switch kind {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("TYPE line for %q has unknown kind %q", name, kind)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE line for %q", name)
		}
		types[name] = kind
	case "HELP":
		if len(fields) < 3 || !validName(fields[2]) {
			return fmt.Errorf("malformed HELP line %q", line)
		}
		helped[fields[2]] = true
	}
	return nil
}

// sampleFamily maps a sample name to its family, honoring histogram
// suffixes: "x_bucket" belongs to family "x" when x is a histogram.
func sampleFamily(name string, types map[string]string) (fam, suffix string) {
	if _, ok := types[name]; ok {
		return name, ""
	}
	for _, s := range []string{"_bucket", "_sum", "_count"} {
		if base, ok := strings.CutSuffix(name, s); ok {
			if types[base] == "histogram" || types[base] == "summary" {
				return base, s
			}
		}
	}
	return name, ""
}

// foldHistogramSample accumulates one histogram-family sample into the
// per-child invariant state.
func foldHistogramSample(hists map[string]*histChild, fam, suffix string, labels map[string]string, value float64) error {
	le, hasLE := labels["le"]
	childLabels := make([]string, 0, len(labels))
	for k, v := range labels {
		if k != "le" {
			childLabels = append(childLabels, k+"="+v)
		}
	}
	sort.Strings(childLabels)
	key := fam + "\xff" + strings.Join(childLabels, ",")
	h := hists[key]
	if h == nil {
		h = &histChild{}
		hists[key] = h
	}
	switch suffix {
	case "_bucket":
		if !hasLE {
			return fmt.Errorf("histogram %q bucket sample has no le label", fam)
		}
		if le == "+Inf" {
			h.sawInf, h.infCount = true, value
			return nil
		}
		bound, err := strconv.ParseFloat(le, 64)
		if err != nil {
			return fmt.Errorf("histogram %q bucket has unparseable le=%q", fam, le)
		}
		h.buckets = append(h.buckets, histBound{bound, value})
	case "_sum":
		h.sawSum, h.sum = true, value
	case "_count":
		h.sawCnt, h.cnt = true, value
	}
	return nil
}

// parseSample splits one sample line into name, labels and value.
func parseSample(line string) (name string, labels map[string]string, value float64, err error) {
	rest := line
	brace := strings.IndexByte(rest, '{')
	sp := strings.IndexAny(rest, " \t")
	labels = map[string]string{}
	if brace >= 0 && (sp < 0 || brace < sp) {
		name = rest[:brace]
		var consumed int
		labels, consumed, err = parseLabels(rest[brace:])
		if err != nil {
			return "", nil, 0, fmt.Errorf("sample %q: %w", name, err)
		}
		rest = rest[brace+consumed:]
	} else {
		if sp < 0 {
			return "", nil, 0, fmt.Errorf("sample line %q has no value", line)
		}
		name = rest[:sp]
		rest = rest[sp:]
	}
	if !validName(name) {
		return "", nil, 0, fmt.Errorf("invalid metric name %q", name)
	}
	fields := strings.Fields(rest)
	if len(fields) < 1 || len(fields) > 2 {
		return "", nil, 0, fmt.Errorf("sample %q has %d value fields, want 1 (plus optional timestamp)", name, len(fields))
	}
	value, err = parseValue(fields[0])
	if err != nil {
		return "", nil, 0, fmt.Errorf("sample %q: %w", name, err)
	}
	if len(fields) == 2 {
		if _, terr := strconv.ParseInt(fields[1], 10, 64); terr != nil {
			return "", nil, 0, fmt.Errorf("sample %q has unparseable timestamp %q", name, fields[1])
		}
	}
	return name, labels, value, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("unparseable value %q", s)
	}
	return v, nil
}

// parseLabels parses a {k="v",...} block starting at s[0] == '{',
// returning the labels and how many bytes were consumed.
func parseLabels(s string) (map[string]string, int, error) {
	labels := map[string]string{}
	i := 1 // past '{'
	for {
		for i < len(s) && (s[i] == ' ' || s[i] == ',') {
			i++
		}
		if i < len(s) && s[i] == '}' {
			return labels, i + 1, nil
		}
		start := i
		for i < len(s) && s[i] != '=' {
			i++
		}
		if i >= len(s) {
			return nil, 0, fmt.Errorf("unterminated label block")
		}
		key := s[start:i]
		if !validLabel(key) {
			return nil, 0, fmt.Errorf("invalid label name %q", key)
		}
		i++ // past '='
		if i >= len(s) || s[i] != '"' {
			return nil, 0, fmt.Errorf("label %q value is not quoted", key)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(s) {
				return nil, 0, fmt.Errorf("unterminated value for label %q", key)
			}
			switch s[i] {
			case '\\':
				if i+1 >= len(s) {
					return nil, 0, fmt.Errorf("dangling escape in label %q", key)
				}
				switch s[i+1] {
				case '\\', '"':
					val.WriteByte(s[i+1])
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, 0, fmt.Errorf("invalid escape \\%c in label %q", s[i+1], key)
				}
				i += 2
				continue
			case '"':
				i++
			default:
				val.WriteByte(s[i])
				i++
				continue
			}
			break
		}
		if _, dup := labels[key]; dup {
			return nil, 0, fmt.Errorf("duplicate label %q", key)
		}
		labels[key] = val.String()
	}
}
