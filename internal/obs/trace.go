package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// Attr is one span attribute. Values should be strings, ints, floats or
// bools — whatever json.Marshal renders without surprises.
type Attr struct {
	Key   string `json:"key"`
	Value any    `json:"value"`
}

// String builds a string attribute.
func String(k, v string) Attr { return Attr{Key: k, Value: v} }

// Int builds an integer attribute.
func Int(k string, v int) Attr { return Attr{Key: k, Value: v} }

// Float builds a float attribute.
func Float(k string, v float64) Attr { return Attr{Key: k, Value: v} }

// Bool builds a boolean attribute.
func Bool(k string, v bool) Attr { return Attr{Key: k, Value: v} }

// Span is one finished trace span. Times come from the tracer's Clock:
// real nanoseconds at the daemon/CLI boundary, constant zero under the
// no-op clock (the span sequence itself is still meaningful then).
type Span struct {
	Name  string `json:"name"`
	Start int64  `json:"start_unix_nano"`
	End   int64  `json:"end_unix_nano"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// TraceSink is a fixed-capacity ring buffer of finished spans: cheap
// enough to leave always-on, bounded so a week-long daemon cannot grow
// without limit. Safe for concurrent use.
type TraceSink struct {
	mu    sync.Mutex
	buf   []Span
	next  int
	full  bool
	total uint64
}

// NewTraceSink builds a sink holding the last capacity spans (<= 0
// selects 4096).
func NewTraceSink(capacity int) *TraceSink {
	if capacity <= 0 {
		capacity = 4096
	}
	return &TraceSink{buf: make([]Span, 0, capacity)}
}

// Append records one finished span, evicting the oldest when full.
func (s *TraceSink) Append(sp Span) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if !s.full && len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, sp)
		if len(s.buf) == cap(s.buf) {
			s.full = true
		}
	} else {
		s.buf[s.next] = sp
		s.next = (s.next + 1) % len(s.buf)
	}
	s.total++
	s.mu.Unlock()
}

// Snapshot returns the retained spans oldest-first.
func (s *TraceSink) Snapshot() []Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Span, 0, len(s.buf))
	if s.full {
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf...)
	}
	return out
}

// Total counts every span ever appended, including evicted ones.
func (s *TraceSink) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.total
}

// traceDump is the JSON shape of /v1/trace and -trace-out.
type traceDump struct {
	Total    uint64 `json:"total_spans"`
	Retained int    `json:"retained_spans"`
	Spans    []Span `json:"spans"`
}

// WriteJSON dumps the sink as indented JSON: total span count, retained
// count, and the retained spans oldest-first.
func (s *TraceSink) WriteJSON(w io.Writer) error {
	spans := s.Snapshot()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(traceDump{Total: s.Total(), Retained: len(spans), Spans: spans})
}

// Tracer starts spans against a clock and delivers them to a sink. A nil
// tracer starts nil spans; ending a nil span is a no-op — instrumented
// code never branches on whether tracing is armed.
type Tracer struct {
	clock Clock
	sink  *TraceSink
}

// NewTracer builds a tracer (nil clock selects the no-op clock, nil sink
// drops spans).
func NewTracer(clock Clock, sink *TraceSink) *Tracer {
	if clock == nil {
		clock = NopClock()
	}
	return &Tracer{clock: clock, sink: sink}
}

// ActiveSpan is a started, not-yet-finished span.
type ActiveSpan struct {
	t    *Tracer
	span Span
}

// Start opens a span. Attrs attach at start; End may add more.
func (t *Tracer) Start(name string, attrs ...Attr) *ActiveSpan {
	if t == nil || t.sink == nil {
		return nil
	}
	return &ActiveSpan{t: t, span: Span{Name: name, Start: t.clock.Now(), Attrs: attrs}}
}

// End finishes the span and appends it to the sink.
func (s *ActiveSpan) End(attrs ...Attr) {
	if s == nil {
		return
	}
	s.span.End = s.t.clock.Now()
	s.span.Attrs = append(s.span.Attrs, attrs...)
	s.t.sink.Append(s.span)
}
