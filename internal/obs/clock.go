package obs

import "time"

// Clock is the observability time source: nanoseconds since the Unix
// epoch. It exists so the deterministic layers can time spans without
// reading the wall clock themselves — they receive a Clock from the
// boundary that owns time (cmd binaries, the serving daemon) and the
// walltime analyzer keeps literal time.Now calls out of them AND out of
// this package, save for the one reasoned exception below.
type Clock interface {
	// Now returns the current time in nanoseconds since the Unix epoch.
	Now() int64
}

type realClock struct{}

func (realClock) Now() int64 {
	//pruner:allow walltime — the single sanctioned wall-clock read of the observability layer: RealClock is only ever injected at the cmd/server boundary, and its readings flow into metrics and spans, never into tuning results
	return time.Now().UnixNano()
}

// RealClock returns the wall-clock time source. Inject it ONLY at the
// cmd/server boundary; handing it deeper is safe for determinism (clock
// readings never influence results) but defeats the point of the seam.
func RealClock() Clock { return realClock{} }

type nopClock struct{}

func (nopClock) Now() int64 { return 0 }

// NopClock returns the zero clock: every reading is 0, so spans and
// duration metrics observed through it are constant — the default for
// deterministic code paths that nobody is observing.
func NopClock() Clock { return nopClock{} }
