// Package obs is the tuning stack's observability layer: a stdlib-only
// metrics registry with Prometheus text-format exposition, a
// ring-buffered in-process span tracer, and the clock-injection seam
// that lets the deterministic layers be instrumented without ever
// reading the wall clock themselves.
//
// Three pieces:
//
//   - Registry (registry.go): counters, gauges and fixed-bucket
//     histograms, plain or labelled, plus func-backed metrics sampled at
//     scrape time. WriteText emits the Prometheus text exposition format
//     served at GET /metrics by pruner-serve and pruner-measure;
//     ValidateText (exposition.go) is the strict parser the scrape tests
//     and the measure-e2e CI job check it with.
//
//   - Tracer + TraceSink (trace.go): per-stage spans of the tuning
//     pipeline (plan/measure/commit, cost-model fit/predict) collected
//     into a fixed-capacity ring buffer; the daemon serves it as
//     GET /v1/trace and pruner-tune dumps it with -trace-out.
//
//   - Clock (clock.go): the determinism seam. Deterministic layers
//     (tuner, costmodel, nn, ...) may never call time.Now — the walltime
//     analyzer enforces it, including for this package — so spans are
//     timed through an injected Clock. The cmd/server boundary injects
//     the real clock (the one reasoned //pruner:allow in clock.go);
//     everywhere else the no-op clock makes timing a constant zero.
//     Either way the readings flow only into metrics and spans, never
//     back into results, so golden fingerprints are bitwise unchanged
//     with observability fully enabled.
//
// Every instrument and the Observer itself are nil-receiver safe: code
// instruments unconditionally, and a nil Observer (no daemon attached)
// costs a handful of nil checks per round.
package obs

// Observer bundles the two observability channels a session can be
// handed: a metrics registry and a span tracer. A nil *Observer (and nil
// fields) disables everything — instrumented code never has to check.
type Observer struct {
	// Registry receives the session's metrics; nil drops them.
	Registry *Registry
	// Tracer receives the session's spans; nil drops them.
	Tracer *Tracer
}

// New builds a fully-armed observer: a fresh registry and a tracer
// writing to a ring sink of traceCap spans (<= 0 selects 4096), timed by
// clock (nil selects the no-op clock — pass RealClock() only at the
// cmd/server boundary).
func New(clock Clock, traceCap int) *Observer {
	if clock == nil {
		clock = NopClock()
	}
	return &Observer{
		Registry: NewRegistry(),
		Tracer:   NewTracer(clock, NewTraceSink(traceCap)),
	}
}

// Reg returns the observer's registry, nil-safe.
func (o *Observer) Reg() *Registry {
	if o == nil {
		return nil
	}
	return o.Registry
}

// Trace returns the observer's tracer, nil-safe.
func (o *Observer) Trace() *Tracer {
	if o == nil {
		return nil
	}
	return o.Tracer
}

// Clock returns the tracer's clock, or the no-op clock when the observer
// is absent — instrumented code times durations through this without
// caring whether anyone is watching.
func (o *Observer) Clock() Clock {
	if o == nil || o.Tracer == nil || o.Tracer.clock == nil {
		return NopClock()
	}
	return o.Tracer.clock
}

// Sink returns the tracer's ring sink, nil-safe (the daemon's /v1/trace
// and the CLIs' -trace-out read it).
func (o *Observer) Sink() *TraceSink {
	if o == nil || o.Tracer == nil {
		return nil
	}
	return o.Tracer.sink
}

// Seconds converts a Clock interval (start as returned by Clock.Now) to
// seconds against the same clock — the standard way instrumented code
// turns span timing into histogram observations.
func Seconds(c Clock, startNanos int64) float64 {
	return float64(c.Now()-startNanos) / 1e9
}
