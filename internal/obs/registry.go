package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in the Prometheus text
// exposition format. Registration is idempotent — asking for an existing
// name with the same kind and label set returns the existing instrument,
// so long-lived daemons and per-session code can both "register"
// unconditionally — and mismatched re-registration panics (a programming
// error, caught by the first scrape test).
//
// All methods are safe for concurrent use and nil-receiver safe: a nil
// *Registry hands out nil instruments, whose methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// Metric kinds, as exposed on # TYPE lines.
const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// family is one named metric with a fixed kind and label schema; its
// children are the per-labelset series.
type family struct {
	name    string
	help    string
	kind    string
	labels  []string
	buckets []float64      // histograms only
	fn      func() float64 // func-backed single-sample families

	mu       sync.Mutex
	children map[string]*series
	order    []string // child keys in first-use order
}

// series is one labelled sample stream: a float value (counter/gauge,
// stored as bits for lock-free adds) or a histogram.
type series struct {
	labelValues []string
	bits        atomic.Uint64
	hist        *histData
}

type histData struct {
	mu     sync.Mutex
	counts []uint64 // one per bucket bound; +Inf is implicit via count
	sum    float64
	count  uint64
}

// DefBuckets is the default latency histogram layout (seconds): tuned
// for the stack's span of interest, from sub-millisecond GEMMs to
// multi-minute measurement rounds.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// SizeBuckets is the default layout for count-shaped observations
// (batch sizes, verify-set sizes).
var SizeBuckets = []float64{1, 2, 5, 10, 20, 50, 100, 200, 500}

// register returns the named family, creating it on first use and
// validating shape on re-use.
func (r *Registry) register(name, help, kind string, labels []string, buckets []float64, fn func() float64) *family {
	if r == nil {
		return nil
	}
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	for _, l := range labels {
		if !validLabel(l) {
			panic(fmt.Sprintf("obs: invalid label name %q on metric %q", l, name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f := r.families[name]; f != nil {
		if f.kind != kind || !equalStrings(f.labels, labels) {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s%v, was %s%v",
				name, kind, labels, f.kind, f.labels))
		}
		return f
	}
	f := &family{
		name: name, help: help, kind: kind,
		labels:   append([]string(nil), labels...),
		buckets:  append([]float64(nil), buckets...),
		fn:       fn,
		children: map[string]*series{},
	}
	sort.Float64s(f.buckets)
	r.families[name] = f
	return f
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// child returns the series for the given label values, creating it on
// first use.
func (f *family) child(values []string) *series {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labels), len(values)))
	}
	key := strings.Join(values, "\xff")
	f.mu.Lock()
	defer f.mu.Unlock()
	c := f.children[key]
	if c == nil {
		c = &series{labelValues: append([]string(nil), values...)}
		if f.kind == kindHistogram {
			c.hist = &histData{counts: make([]uint64, len(f.buckets))}
		}
		f.children[key] = c
		f.order = append(f.order, key)
	}
	return c
}

// ---------------------------------------------------------------- counters

// Counter is a monotonically increasing sample. Nil-safe.
type Counter struct{ s *series }

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter; negative deltas are ignored (counters are
// monotonic by contract).
func (c *Counter) Add(v float64) {
	if c == nil || c.s == nil || v < 0 {
		return
	}
	c.s.addFloat(v)
}

// Value reads the current total (0 on nil).
func (c *Counter) Value() float64 {
	if c == nil || c.s == nil {
		return 0
	}
	return math.Float64frombits(c.s.bits.Load())
}

// Counter registers (or fetches) an unlabelled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, kindCounter, nil, nil, nil)
	if f == nil {
		return nil
	}
	return &Counter{s: f.child(nil)}
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := r.register(name, help, kindCounter, labels, nil, nil)
	if f == nil {
		return nil
	}
	return &CounterVec{f: f}
}

// With returns the child counter for the label values.
func (v *CounterVec) With(values ...string) *Counter {
	if v == nil || v.f == nil {
		return nil
	}
	return &Counter{s: v.f.child(values)}
}

// CounterFunc registers a counter whose value is pulled from fn at
// scrape time (process-global monotonic sources like the nn engine's
// GEMM counters). Re-registering the same name keeps the first fn.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	r.register(name, help, kindCounter, nil, nil, fn)
}

// ------------------------------------------------------------------ gauges

// Gauge is a sample that can go up and down. Nil-safe.
type Gauge struct{ s *series }

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by v (negative allowed).
func (g *Gauge) Add(v float64) {
	if g == nil || g.s == nil {
		return
	}
	g.s.addFloat(v)
}

// Value reads the gauge (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil || g.s == nil {
		return 0
	}
	return math.Float64frombits(g.s.bits.Load())
}

// Gauge registers (or fetches) an unlabelled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, kindGauge, nil, nil, nil)
	if f == nil {
		return nil
	}
	return &Gauge{s: f.child(nil)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := r.register(name, help, kindGauge, labels, nil, nil)
	if f == nil {
		return nil
	}
	return &GaugeVec{f: f}
}

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	if v == nil || v.f == nil {
		return nil
	}
	return &Gauge{s: v.f.child(values)}
}

// GaugeFunc registers a gauge sampled from fn at scrape time (queue
// depths, pool sizes — state that already lives somewhere else).
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.register(name, help, kindGauge, nil, nil, fn)
}

// -------------------------------------------------------------- histograms

// Histogram accumulates observations into fixed buckets. Nil-safe.
type Histogram struct {
	s       *series
	buckets []float64
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil || h.s == nil || h.s.hist == nil || math.IsNaN(v) {
		return
	}
	d := h.s.hist
	d.mu.Lock()
	for i, b := range h.buckets {
		if v <= b {
			d.counts[i]++
		}
	}
	d.sum += v
	d.count++
	d.mu.Unlock()
}

// Count reads the total number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil || h.s == nil || h.s.hist == nil {
		return 0
	}
	d := h.s.hist
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.count
}

// Sum reads the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil || h.s == nil || h.s.hist == nil {
		return 0
	}
	d := h.s.hist
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.sum
}

// Histogram registers (or fetches) an unlabelled histogram with the
// given bucket upper bounds (nil selects DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram, nil, buckets, nil)
	if f == nil {
		return nil
	}
	return &Histogram{s: f.child(nil), buckets: f.buckets}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// HistogramVec registers (or fetches) a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.register(name, help, kindHistogram, labels, buckets, nil)
	if f == nil {
		return nil
	}
	return &HistogramVec{f: f}
}

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if v == nil || v.f == nil {
		return nil
	}
	return &Histogram{s: v.f.child(values), buckets: v.f.buckets}
}

// ----------------------------------------------------------------- reading

// Value returns the current value of the named counter or gauge series
// with the given label values, and whether it exists. Func-backed
// metrics are sampled. Histograms report false (read them via their
// handles). This is the read path health endpoints use so JSON views and
// /metrics can never disagree.
func (r *Registry) Value(name string, labelValues ...string) (float64, bool) {
	if r == nil {
		return 0, false
	}
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.kind == kindHistogram {
		return 0, false
	}
	if f.fn != nil {
		return f.fn(), true
	}
	key := strings.Join(labelValues, "\xff")
	f.mu.Lock()
	c := f.children[key]
	f.mu.Unlock()
	if c == nil {
		return 0, false
	}
	return math.Float64frombits(c.bits.Load()), true
}

// Sum totals every series of the named counter or gauge family (0 when
// absent or a histogram).
func (r *Registry) Sum(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	f := r.families[name]
	r.mu.Unlock()
	if f == nil || f.kind == kindHistogram {
		return 0
	}
	if f.fn != nil {
		return f.fn()
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var total float64
	for _, key := range f.order {
		total += math.Float64frombits(f.children[key].bits.Load())
	}
	return total
}

// addFloat atomically adds v to the series' float bits.
func (s *series) addFloat(v float64) {
	for {
		old := s.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// -------------------------------------------------------------- exposition

// WriteText renders the registry in the Prometheus text exposition
// format (version 0.0.4): families sorted by name, children in first-use
// order, histograms expanded into cumulative _bucket/_sum/_count series.
// A nil registry writes nothing.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	sort.Strings(names)
	fams := make([]*family, len(names))
	for i, name := range names {
		fams[i] = r.families[name]
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.kind)
	if f.fn != nil {
		fmt.Fprintf(b, "%s %s\n", f.name, formatFloat(f.fn()))
		return
	}
	f.mu.Lock()
	children := make([]*series, 0, len(f.order))
	for _, key := range f.order {
		children = append(children, f.children[key])
	}
	f.mu.Unlock()
	for _, c := range children {
		if f.kind == kindHistogram {
			f.writeHistogram(b, c)
			continue
		}
		fmt.Fprintf(b, "%s%s %s\n", f.name, renderLabels(f.labels, c.labelValues, "", ""),
			formatFloat(math.Float64frombits(c.bits.Load())))
	}
}

func (f *family) writeHistogram(b *strings.Builder, c *series) {
	d := c.hist
	d.mu.Lock()
	counts := append([]uint64(nil), d.counts...)
	sum, count := d.sum, d.count
	d.mu.Unlock()
	for i, bound := range f.buckets {
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
			renderLabels(f.labels, c.labelValues, "le", formatFloat(bound)), counts[i])
	}
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
		renderLabels(f.labels, c.labelValues, "le", "+Inf"), count)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, renderLabels(f.labels, c.labelValues, "", ""), formatFloat(sum))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, renderLabels(f.labels, c.labelValues, "", ""), count)
}

// renderLabels formats {k="v",...}, optionally appending one extra pair
// (histogram le); empty label sets render as nothing.
func renderLabels(names, values []string, extraName, extraValue string) string {
	if len(names) == 0 && extraName == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	if extraName != "" {
		if len(names) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraName)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(extraValue))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a sample value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabel(s string) bool {
	if s == "" || strings.ContainsRune(s, ':') {
		return false
	}
	return validName(s)
}
