package nn

import (
	"bytes"
	"encoding/gob"
	"math"
	"math/rand"
	"testing"
)

// TestGradAffine finite-difference-checks the fused affine op, with and
// without the fused ReLU.
func TestGradAffine(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, relu := range []bool{false, true} {
		x := randParam(rng, 5, 4)
		w := randParam(rng, 4, 3)
		b := randParam(rng, 1, 3)
		// Shift pre-activations away from the ReLU kink.
		for i := range b.Data {
			b.Data[i] += 0.3
		}
		name := "affine"
		if relu {
			name = "affine+relu"
		}
		checkGrads(t, name, []*Tensor{x, w, b}, func() *Tensor {
			y := Affine(x, w, b, relu)
			return MeanAll(Mul(y, y))
		})
	}
}

// TestAffineMatchesChain pins the fusion contract: Affine is bitwise
// identical to the ReLU(AddBias(MatMul)) chain it replaces, in the
// forward values and in every parameter gradient.
func TestAffineMatchesChain(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for _, relu := range []bool{false, true} {
		x := randParam(rng, 7, 6)
		// Sprinkle exact zeros: the kernel's blocked zero-skip must agree
		// with MatMul's per-term skip.
		for i := 0; i < len(x.Data); i += 3 {
			x.Data[i] = 0
		}
		w := randParam(rng, 6, 5)
		b := randParam(rng, 1, 5)
		chainOut := func() *Tensor {
			y := AddBias(MatMul(x, w), b)
			if relu {
				y = ReLU(y)
			}
			return y
		}

		fused := Affine(x, w, b, relu)
		chain := chainOut()
		for i := range fused.Data {
			if fused.Data[i] != chain.Data[i] {
				t.Fatalf("relu=%v: fused value [%d] %g != chain %g", relu, i, fused.Data[i], chain.Data[i])
			}
		}

		params := []*Tensor{x, w, b}
		grads := func(loss *Tensor) [][]float64 {
			for _, p := range params {
				for i := range p.Grad {
					p.Grad[i] = 0
				}
			}
			Backward(loss)
			out := make([][]float64, len(params))
			for i, p := range params {
				out[i] = append([]float64(nil), p.Grad...)
			}
			return out
		}
		gf := grads(MeanAll(Mul(Affine(x, w, b, relu), Affine(x, w, b, relu))))
		gc := grads(MeanAll(Mul(chainOut(), chainOut())))
		for pi := range params {
			for i := range gf[pi] {
				if gf[pi][i] != gc[pi][i] {
					t.Fatalf("relu=%v: param %d grad [%d] %g != chain %g", relu, pi, i, gf[pi][i], gc[pi][i])
				}
			}
		}
	}
}

// TestGradSliceRows finite-difference-checks the slicing op used by the
// segment-attention training path.
func TestGradSliceRows(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := randParam(rng, 5, 3)
	checkGrads(t, "slicerows", []*Tensor{x}, func() *Tensor {
		c := ConcatRows(SliceRows(x, 2, 5), SliceRows(x, 0, 2))
		return MeanAll(Mul(c, c))
	})
}

// TestGradGatherRows checks the dedup expansion: gradients of duplicated
// rows must sum into their representative.
func TestGradGatherRows(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	src := randParam(rng, 3, 4)
	idx := []int{0, 2, 1, 2, 0, 2}
	w := randParam(rng, 6, 4)
	checkGrads(t, "gatherrows", []*Tensor{src}, func() *Tensor {
		return MeanAll(Mul(GatherRows(src, idx), w))
	})
}

// TestForwardSegmentsMatchesPerSegment pins the training segment
// attention to the per-segment Forward: forward values bitwise, summed
// parameter gradients to close tolerance (the weight-gradient terms add
// in a different order).
func TestForwardSegmentsMatchesPerSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	attn := NewSelfAttention(rng, 6)
	lens := []int{3, 2, 4}
	x := randParam(rng, 9, 6)

	seg := attn.ForwardSegments(x, lens)
	off := 0
	var parts []*Tensor
	for _, n := range lens {
		parts = append(parts, attn.Forward(SliceRows(x, off, off+n)))
		off += n
	}
	ref := ConcatRows(parts...)
	for i := range seg.Data {
		if seg.Data[i] != ref.Data[i] {
			t.Fatalf("segment forward value [%d] %g != per-segment %g", i, seg.Data[i], ref.Data[i])
		}
	}

	grads := func(out *Tensor) []float64 {
		for _, p := range attn.Params() {
			for i := range p.Grad {
				p.Grad[i] = 0
			}
		}
		for i := range x.Grad {
			x.Grad[i] = 0
		}
		Backward(MeanAll(Mul(out, out)))
		var flat []float64
		for _, p := range append([]*Tensor{x}, attn.Params()...) {
			flat = append(flat, p.Grad...)
		}
		return flat
	}
	gs := grads(attn.ForwardSegments(x, lens))
	off = 0
	parts = parts[:0]
	for _, n := range lens {
		parts = append(parts, attn.Forward(SliceRows(x, off, off+n)))
		off += n
	}
	gr := grads(ConcatRows(parts...))
	for i := range gs {
		if math.Abs(gs[i]-gr[i]) > 1e-12*(1+math.Abs(gr[i])) {
			t.Fatalf("segment grad [%d] %g != per-segment %g", i, gs[i], gr[i])
		}
	}
}

// TestForwardSegmentsDedupMatches pins the gradient-aware dedup path to
// the expanded path: identical forward values, gradients to close
// tolerance (duplicate rows' projection gradients accumulate at the
// representative instead of per copy).
func TestForwardSegmentsDedupMatches(t *testing.T) {
	rng := rand.New(rand.NewSource(26))
	attn := NewSelfAttention(rng, 4)
	lens := []int{3, 3}
	uniq := randParam(rng, 3, 4)
	idx := []int{0, 1, 0, 2, 2, 0} // heavy duplication, as TLP tokens show

	ded := attn.ForwardSegmentsDedup(uniq, idx, lens)
	exp := attn.ForwardSegments(GatherRows(uniq, idx), lens)
	for i := range ded.Data {
		if ded.Data[i] != exp.Data[i] {
			t.Fatalf("dedup forward value [%d] %g != expanded %g", i, ded.Data[i], exp.Data[i])
		}
	}

	grads := func(out *Tensor) []float64 {
		for _, p := range append([]*Tensor{uniq}, attn.Params()...) {
			for i := range p.Grad {
				p.Grad[i] = 0
			}
		}
		Backward(MeanAll(Mul(out, out)))
		var flat []float64
		for _, p := range append([]*Tensor{uniq}, attn.Params()...) {
			flat = append(flat, p.Grad...)
		}
		return flat
	}
	gd := grads(attn.ForwardSegmentsDedup(uniq, idx, lens))
	ge := grads(attn.ForwardSegments(GatherRows(uniq, idx), lens))
	for i := range gd {
		if math.Abs(gd[i]-ge[i]) > 1e-12*(1+math.Abs(ge[i])) {
			t.Fatalf("dedup grad [%d] %g != expanded %g", i, gd[i], ge[i])
		}
	}
}

// TestGradSetBindAddInto covers the trainer's gradient plumbing: slot
// buffers capture a backward, and AddInto reduces them into the live
// parameters with scaling.
func TestGradSetBindAddInto(t *testing.T) {
	rng := rand.New(rand.NewSource(27))
	w := randParam(rng, 2, 2)
	live := []*Tensor{w}
	slot := NewGradSet(live)

	rep := randParam(rng, 2, 2)
	AliasParams([]*Tensor{rep}, live)
	for i := range rep.Data {
		if rep.Data[i] != w.Data[i] {
			t.Fatal("AliasParams must share values")
		}
	}
	slot.Zero()
	slot.Bind([]*Tensor{rep})
	x := FromVec([]float64{1, 2})
	Backward(MeanAll(MatMul(x, rep)))
	if rep.Grad[0] == 0 {
		t.Fatal("bound slot did not capture the backward")
	}

	for i := range w.Grad {
		w.Grad[i] = 0
	}
	slot.AddInto(live, 0.5)
	for i := range w.Grad {
		if w.Grad[i] != rep.Grad[i]*0.5 {
			t.Fatalf("AddInto wrong at %d: %g want %g", i, w.Grad[i], rep.Grad[i]*0.5)
		}
	}
	// The live parameter's own Grad buffer must be distinct storage.
	if &w.Grad[0] == &rep.Grad[0] {
		t.Fatal("slot buffer aliases the live gradient")
	}
}

// TestDecodeParamsRejectsMalformedBlobs pins the -model-in hardening: a
// bundle with inconsistent shape/data counts or short value rows errors
// out without mutating (or panicking) the destination model.
func TestDecodeParamsRejectsMalformedBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(28))
	dst := NewMLP(rng, 2, 3, 1)
	before := append([]float64(nil), dst.Params()[0].Data...)

	encode := func(blob paramBlob) *bytes.Buffer {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(blob); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	// Shapes shorter than Data: must error, not panic.
	blob := paramBlob{Data: make([][]float64, len(dst.Params()))}
	for i, p := range dst.Params() {
		blob.Data[i] = make([]float64, len(p.Data))
	}
	if err := LoadParams(encode(blob), dst.Params()); err == nil {
		t.Fatal("missing shapes must be rejected")
	}

	// Correct shapes but a short value row: must error before copying.
	blob.Shapes = nil
	for _, p := range dst.Params() {
		blob.Shapes = append(blob.Shapes, [2]int{p.R, p.C})
	}
	blob.Data[0] = blob.Data[0][:1]
	blob.Data[0][0] = 99
	if err := LoadParams(encode(blob), dst.Params()); err == nil {
		t.Fatal("short value row must be rejected")
	}
	for i, v := range dst.Params()[0].Data {
		if v != before[i] {
			t.Fatal("rejected bundle must not mutate the model")
		}
	}
}
