package nn

import (
	"math/rand"
	"testing"
)

// The zero-allocation gates: once a Scratch has warmed to the call
// pattern's steady-state shapes, the *In inference kernels must not touch
// the heap at all. This is the dynamic cross-check of the static hotalloc
// analyzer — the analyzer proves no allocating constructs are reachable
// from the //pruner:hotpath roots, these tests prove the arena actually
// absorbs every output buffer. A regression in either shows up as a
// nonzero average from testing.AllocsPerRun.

// mustZeroAllocs pins f to zero steady-state heap allocations.
func mustZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	f() // warm the arena to steady-state shapes
	if avg := testing.AllocsPerRun(50, f); avg != 0 {
		t.Errorf("%s: %v allocs per warmed run, want 0", name, avg)
	}
}

func TestAllocFrozenMLPForwardIn(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	mlp := NewMLP(rng, 9, 16, 16, 1).Freeze()
	x := randConst(rng, 24, 9)
	var s Scratch
	mustZeroAllocs(t, "FrozenMLP.ForwardIn", func() {
		s.Reset()
		mlp.ForwardIn(&s, x)
	})
}

func TestAllocFrozenMLPForwardReLURowsIn(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	mlp := NewMLP(rng, 9, 16, 1).Freeze()
	rows := make([][]float64, 24)
	for i := range rows {
		rows[i] = randConst(rng, 1, 9).Data
	}
	var s Scratch
	mustZeroAllocs(t, "FrozenMLP.ForwardReLURowsIn", func() {
		s.Reset()
		mlp.ForwardReLURowsIn(&s, rows)
	})
}

func TestAllocFrozenAttentionForwardSegmentsIn(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	attn := NewSelfAttention(rng, 6).Freeze()
	x := randConst(rng, 12, 6)
	lens := []int{4, 3, 5}
	var s Scratch
	mustZeroAllocs(t, "FrozenAttention.ForwardSegmentsIn", func() {
		s.Reset()
		attn.ForwardSegmentsIn(&s, x, lens)
	})
}

func TestAllocFrozenAttentionForwardSegmentsDedupIn(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	attn := NewSelfAttention(rng, 6).Freeze()
	uniq := randConst(rng, 5, 6)
	idx := []int{0, 1, 0, 2, 3, 0, 4, 1, 2}
	lens := []int{3, 2, 4}
	var s Scratch
	mustZeroAllocs(t, "FrozenAttention.ForwardSegmentsDedupIn", func() {
		s.Reset()
		attn.ForwardSegmentsDedupIn(&s, uniq, idx, lens)
	})
}

func TestAllocSegmentSumRowsIn(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	x := randConst(rng, 11, 7)
	lens := []int{3, 1, 5, 2}
	var s Scratch
	mustZeroAllocs(t, "SegmentSumRowsIn", func() {
		s.Reset()
		SegmentSumRowsIn(&s, x, lens)
	})
}

// TestScratchVariantsBitwiseIdentical pins that the arena-backed *In
// kernels produce exactly the bits of their allocating twins — the
// contract that makes swapping them into the engines a pure wall-clock
// change.
func TestScratchVariantsBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	var s Scratch

	mlp := NewMLP(rng, 9, 16, 16, 1).Freeze()
	x := randConst(rng, 12, 9)
	bitwiseEqual(t, "mlp forward", mlp.ForwardIn(&s, x), mlp.Forward(x))

	rows := make([][]float64, 10)
	for i := range rows {
		rows[i] = randConst(rng, 1, 9).Data
	}
	s.Reset()
	bitwiseEqual(t, "mlp relu rows", mlp.ForwardReLURowsIn(&s, rows), mlp.ForwardReLURows(rows))

	attn := NewSelfAttention(rng, 6).Freeze()
	tokens := randConst(rng, 12, 6)
	lens := []int{4, 3, 5}
	s.Reset()
	bitwiseEqual(t, "attention segments",
		attn.ForwardSegmentsIn(&s, tokens, lens), attn.ForwardSegments(tokens, lens))

	uniq := randConst(rng, 5, 6)
	idx := []int{0, 1, 0, 2, 3, 0, 4, 1, 2, 0, 3, 4}
	s.Reset()
	bitwiseEqual(t, "attention dedup",
		attn.ForwardSegmentsDedupIn(&s, uniq, idx, lens), attn.ForwardSegmentsDedup(uniq, idx, lens))

	seg := randConst(rng, 11, 7)
	segLens := []int{3, 1, 5, 2}
	s.Reset()
	bitwiseEqual(t, "segment sum", SegmentSumRowsIn(&s, seg, segLens), SegmentSumRows(seg, segLens))
	s.Reset()
	bitwiseEqual(t, "segment mean", SegmentMeanRowsIn(&s, seg, segLens), SegmentMeanRows(seg, segLens))
	s.Reset()
	bitwiseEqual(t, "tanh", TanhIn(&s, seg), Tanh(seg))
	s.Reset()
	a, b := randConst(rng, 6, 3), randConst(rng, 6, 4)
	bitwiseEqual(t, "concat cols", ConcatColsIn(&s, a, b), ConcatCols(a, b))
}

// TestScratchReuse pins the arena contract: after Reset the same slots
// come back (no growth), zeroed, and headers carry no tape state.
func TestScratchReuse(t *testing.T) {
	var s Scratch
	t1 := s.tensor(3, 4)
	t1.Data[0] = 7
	buf := s.floats(8)
	buf[3] = 9
	s.Reset()
	t2 := s.tensor(3, 4)
	if &t2.Data[0] != &t1.Data[0] {
		t.Error("tensor storage not reused after Reset")
	}
	for i, v := range t2.Data {
		if v != 0 {
			t.Fatalf("reused tensor entry %d not zeroed: %v", i, v)
		}
	}
	buf2 := s.floats(4)
	if &buf2[0] != &buf[0] {
		t.Error("float buffer not reused after Reset for smaller request")
	}
	if buf2[3] != 0 {
		// buf2 is len 4; index 3 was 9 in the old larger buffer only if
		// shared storage — the clear must have wiped it.
		t.Error("reused float buffer not zeroed")
	}
	if t2.requiresGrad || t2.back != nil || t2.prev != nil || t2.Grad != nil {
		t.Error("scratch tensor carries tape state")
	}
}
