package nn

import "sync/atomic"

// Engine counters: process-wide tallies of the inference engine's hot
// kernels. They are plain atomics rather than obs instruments so nn
// keeps zero observability dependencies — the daemons register them as
// func-backed metrics sampled at scrape time. Counting is orthogonal to
// determinism: the tallies never feed back into any computation.
var (
	engineGEMMCalls    atomic.Uint64
	engineGEMMRows     atomic.Uint64
	engineAttnSegments atomic.Uint64
)

// EngineCounters is a snapshot of the engine tallies since process start.
type EngineCounters struct {
	// GEMMCalls counts fused matmul kernel invocations.
	GEMMCalls uint64
	// GEMMRows counts output rows produced by those kernels — the
	// engine's throughput proxy.
	GEMMRows uint64
	// AttnSegments counts attention segments run through the frozen
	// attention core.
	AttnSegments uint64
}

// Counters snapshots the engine tallies.
func Counters() EngineCounters {
	return EngineCounters{
		GEMMCalls:    engineGEMMCalls.Load(),
		GEMMRows:     engineGEMMRows.Load(),
		AttnSegments: engineAttnSegments.Load(),
	}
}
