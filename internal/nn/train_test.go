package nn

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestMLPRegression trains a small MLP on a smooth function and checks the
// loss collapses — the full forward/backward/Adam loop.
func TestMLPRegression(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := NewMLP(rng, 2, 16, 1)
	adam := NewAdam(m.Params(), 1e-2)

	sample := func() (*Tensor, *Tensor) {
		x := New(16, 2)
		y := New(16, 1)
		for i := 0; i < 16; i++ {
			a, b := rng.Float64()*2-1, rng.Float64()*2-1
			x.Set(i, 0, a)
			x.Set(i, 1, b)
			y.Set(i, 0, a*b+0.5*a)
		}
		return x, y
	}
	var first, last float64
	for step := 0; step < 300; step++ {
		x, y := sample()
		adam.ZeroGrad()
		loss := MSELoss(m.Forward(x), y)
		Backward(loss)
		adam.Step()
		if step == 0 {
			first = loss.Data[0]
		}
		last = loss.Data[0]
	}
	if last > first/5 {
		t.Fatalf("loss did not converge: first %g last %g", first, last)
	}
}

// TestLambdaRankImprovesOrdering trains scores to match a known ranking.
func TestLambdaRankImprovesOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 12
	feats := New(n, 4)
	rel := make([]float64, n)
	for i := 0; i < n; i++ {
		for j := 0; j < 4; j++ {
			feats.Set(i, j, rng.NormFloat64())
		}
		// True relevance depends on two features.
		rel[i] = 1 / (1 + math.Exp(-(feats.At(i, 0)*2 - feats.At(i, 2))))
	}
	m := NewMLP(rng, 4, 16, 1)
	adam := NewAdam(m.Params(), 5e-3)
	kendall := func() float64 {
		restore := FreezeParams(m.Params())
		scores := m.Forward(feats)
		restore()
		var agree, total float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rel[i] == rel[j] {
					continue
				}
				total++
				if (rel[i] > rel[j]) == (scores.At(i, 0) > scores.At(j, 0)) {
					agree++
				}
			}
		}
		return agree / total
	}
	before := kendall()
	for step := 0; step < 200; step++ {
		adam.ZeroGrad()
		loss := LambdaRankLoss(m.Forward(feats), rel)
		Backward(loss)
		adam.Step()
	}
	after := kendall()
	if after < 0.95 {
		t.Fatalf("ranking accuracy %g -> %g; want >= 0.95", before, after)
	}
}

// TestLambdaRankGradCheck verifies the custom backward against finite
// differences of the loss value.
func TestLambdaRankGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	scores := Param(rng, 6, 1)
	rel := []float64{0.9, 0.1, 0.5, 0.7, 0.2, 1.0}
	fn := func() *Tensor { return LambdaRankLoss(scores, rel) }
	loss := fn()
	Backward(loss)
	for i := range scores.Data {
		// The |ΔNDCG| weights change discontinuously with rank order;
		// perturb well below typical score gaps.
		const h = 1e-7
		orig := scores.Data[i]
		scores.Data[i] = orig + h
		lp := fn().Data[0]
		scores.Data[i] = orig - h
		lm := fn().Data[0]
		scores.Data[i] = orig
		want := (lp - lm) / (2 * h)
		if math.Abs(scores.Grad[i]-want) > 1e-3*(1+math.Abs(want)) {
			t.Fatalf("entry %d: grad %g want %g", i, scores.Grad[i], want)
		}
	}
}

func TestLambdaRankDegenerate(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	one := Param(rng, 1, 1)
	if l := LambdaRankLoss(one, []float64{1}); l.Data[0] != 0 {
		t.Fatalf("single-item loss should be 0, got %g", l.Data[0])
	}
	two := Param(rng, 2, 1)
	if l := LambdaRankLoss(two, []float64{0.5, 0.5}); l.Data[0] != 0 {
		t.Fatalf("tied relevance loss should be 0, got %g", l.Data[0])
	}
}

// TestAdamClipsGradients checks the global-norm clip engages.
func TestAdamClipsGradients(t *testing.T) {
	p := ZeroParam(1, 2)
	adam := NewAdam([]*Tensor{p}, 0.1)
	adam.ClipNorm = 1
	p.Grad[0], p.Grad[1] = 300, 400 // norm 500
	if n := adam.GradNorm(); math.Abs(n-500) > 1e-9 {
		t.Fatalf("grad norm %g want 500", n)
	}
	adam.Step()
	// After clipping to norm 1 the first Adam step is ~ -lr * sign-ish;
	// both coordinates must move by less than lr * 2.
	for i, v := range p.Data {
		if math.Abs(v) > 0.2 {
			t.Fatalf("param %d moved %g: clipping failed", i, v)
		}
	}
}

func TestSaveLoadParamsRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	src := NewMLP(rng, 3, 8, 1)
	dst := NewMLP(rand.New(rand.NewSource(6)), 3, 8, 1)

	var buf bytes.Buffer
	if err := SaveParams(&buf, src.Params()); err != nil {
		t.Fatal(err)
	}
	if err := LoadParams(&buf, dst.Params()); err != nil {
		t.Fatal(err)
	}
	for i, p := range src.Params() {
		q := dst.Params()[i]
		for j := range p.Data {
			if p.Data[j] != q.Data[j] {
				t.Fatalf("param %d entry %d differs after roundtrip", i, j)
			}
		}
	}
	// Shape mismatch must fail cleanly.
	var buf2 bytes.Buffer
	if err := SaveParams(&buf2, src.Params()); err != nil {
		t.Fatal(err)
	}
	other := NewMLP(rng, 3, 9, 1)
	if err := LoadParams(&buf2, other.Params()); err == nil {
		t.Fatal("expected shape-mismatch error")
	}
}

func TestMomentumUpdate(t *testing.T) {
	s := ZeroParam(1, 2)
	tgt := ZeroParam(1, 2)
	s.Data[0], s.Data[1] = 1, 2
	tgt.Data[0], tgt.Data[1] = 3, 6
	MomentumUpdate([]*Tensor{s}, []*Tensor{tgt}, 0.5)
	if s.Data[0] != 2 || s.Data[1] != 4 {
		t.Fatalf("momentum update wrong: %v", s.Data)
	}
}

func TestCopyParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := NewMLP(rng, 2, 4, 1)
	b := NewMLP(rand.New(rand.NewSource(8)), 2, 4, 1)
	CopyParams(b.Params(), a.Params())
	for i, p := range a.Params() {
		q := b.Params()[i]
		for j := range p.Data {
			if p.Data[j] != q.Data[j] {
				t.Fatal("CopyParams did not copy values")
			}
		}
	}
}

// TestDeterministicForward: same seed, same inputs => identical outputs.
func TestDeterministicForward(t *testing.T) {
	build := func() []float64 {
		rng := rand.New(rand.NewSource(9))
		m := NewMLP(rng, 3, 8, 2)
		x := FromRows([][]float64{{0.5, -1, 2}, {1, 1, 1}})
		restore := FreezeParams(m.Params())
		y := m.Forward(x)
		restore()
		out := make([]float64, len(y.Data))
		copy(out, y.Data)
		return out
	}
	a, b := build(), build()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("forward is not deterministic")
		}
	}
}

// TestRankStability: LambdaRank gradients push higher-relevance items up.
func TestRankGradientDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	scores := Param(rng, 3, 1)
	scores.Data = []float64{0, 0, 0}
	rel := []float64{1.0, 0.5, 0.0}
	loss := LambdaRankLoss(scores, rel)
	Backward(loss)
	// Gradient descent moves along -grad: the best item must rise.
	order := []int{0, 1, 2}
	sort.Slice(order, func(a, b int) bool { return -scores.Grad[order[a]] > -scores.Grad[order[b]] })
	if order[0] != 0 || order[2] != 2 {
		t.Fatalf("gradient direction wrong: %v", scores.Grad)
	}
}
