package nn

import "math"

// Adam is the Adam optimiser with decoupled weight decay and gradient
// clipping, the training configuration the paper's cost models use.
type Adam struct {
	LR          float64
	Beta1       float64
	Beta2       float64
	Eps         float64
	WeightDecay float64
	ClipNorm    float64 // 0 disables clipping

	params []*Tensor
	m, v   [][]float64
	step   int
}

// NewAdam builds an optimiser over the parameters with defaults
// (lr, β1=0.9, β2=0.999, eps=1e-8).
func NewAdam(params []*Tensor, lr float64) *Adam {
	a := &Adam{
		LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8, ClipNorm: 5,
		params: params,
	}
	for _, p := range params {
		a.m = append(a.m, make([]float64, len(p.Data)))
		a.v = append(a.v, make([]float64, len(p.Data)))
	}
	return a
}

// SwapLR sets the learning rate (when lr > 0) and returns the previous
// value, so a training call can honour a caller-supplied rate for its
// duration and restore the model's constructed rate afterwards.
func (a *Adam) SwapLR(lr float64) (prev float64) {
	prev = a.LR
	if lr > 0 {
		a.LR = lr
	}
	return prev
}

// ZeroGrad clears accumulated gradients.
func (a *Adam) ZeroGrad() {
	for _, p := range a.params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
}

// GradNorm returns the global L2 norm of all gradients.
func (a *Adam) GradNorm() float64 {
	var sq float64
	for _, p := range a.params {
		for _, g := range p.Grad {
			sq += g * g
		}
	}
	return math.Sqrt(sq)
}

// Step applies one update.
func (a *Adam) Step() {
	a.step++
	scale := 1.0
	if a.ClipNorm > 0 {
		if n := a.GradNorm(); n > a.ClipNorm {
			scale = a.ClipNorm / n
		}
	}
	b1c := 1 - math.Pow(a.Beta1, float64(a.step))
	b2c := 1 - math.Pow(a.Beta2, float64(a.step))
	for pi, p := range a.params {
		m, v := a.m[pi], a.v[pi]
		for i := range p.Data {
			g := p.Grad[i]*scale + a.WeightDecay*p.Data[i]
			m[i] = a.Beta1*m[i] + (1-a.Beta1)*g
			v[i] = a.Beta2*v[i] + (1-a.Beta2)*g*g
			p.Data[i] -= a.LR * (m[i] / b1c) / (math.Sqrt(v[i]/b2c) + a.Eps)
		}
	}
}
