package nn

import (
	"encoding/gob"
	"fmt"
	"io"
)

// paramBlob is the on-disk form of a parameter set.
type paramBlob struct {
	Shapes [][2]int
	Data   [][]float64
}

// SaveParams serialises parameter values (not optimiser state) with gob.
func SaveParams(w io.Writer, params []*Tensor) error {
	return EncodeParams(gob.NewEncoder(w), params)
}

// EncodeParams writes the parameter blob through an existing encoder, so
// callers embedding parameters in a larger gob stream (the model-bundle
// format) share one encoder: a gob decoder buffers ahead of what it
// decodes, which makes mixing independent encoders on one stream
// unreadable.
func EncodeParams(enc *gob.Encoder, params []*Tensor) error {
	blob := paramBlob{}
	for _, p := range params {
		blob.Shapes = append(blob.Shapes, [2]int{p.R, p.C})
		d := make([]float64, len(p.Data))
		copy(d, p.Data)
		blob.Data = append(blob.Data, d)
	}
	return enc.Encode(blob)
}

// LoadParams restores values into an architecture-compatible parameter
// set.
func LoadParams(r io.Reader, params []*Tensor) error {
	return DecodeParams(gob.NewDecoder(r), params)
}

// DecodeParams is LoadParams over an existing decoder (see EncodeParams).
// Bundles reach this from user-supplied files (-model-in), so every
// dimension is validated before any copy: a malformed blob returns an
// error rather than panicking or half-loading a model.
func DecodeParams(dec *gob.Decoder, params []*Tensor) error {
	var blob paramBlob
	if err := dec.Decode(&blob); err != nil {
		return err
	}
	if len(blob.Data) != len(params) || len(blob.Shapes) != len(params) {
		return fmt.Errorf("nn: parameter count mismatch: blob %d shapes / %d tensors vs model %d",
			len(blob.Shapes), len(blob.Data), len(params))
	}
	for i, p := range params {
		if blob.Shapes[i] != [2]int{p.R, p.C} {
			return fmt.Errorf("nn: parameter %d shape mismatch: blob %v vs model %dx%d", i, blob.Shapes[i], p.R, p.C)
		}
		if len(blob.Data[i]) != p.R*p.C {
			return fmt.Errorf("nn: parameter %d has %d values, shape %dx%d needs %d",
				i, len(blob.Data[i]), p.R, p.C, p.R*p.C)
		}
	}
	// Validate everything before mutating anything, so a bad bundle
	// cannot leave the model half-loaded.
	for i, p := range params {
		copy(p.Data, blob.Data[i])
	}
	return nil
}

// CopyParams copies values from src into dst (same architecture).
func CopyParams(dst, src []*Tensor) {
	if len(dst) != len(src) {
		panic("nn: CopyParams count mismatch")
	}
	for i := range dst {
		if len(dst[i].Data) != len(src[i].Data) {
			panic("nn: CopyParams shape mismatch")
		}
		copy(dst[i].Data, src[i].Data)
	}
}

// MomentumUpdate applies the paper's MoA Siamese update:
// siamese = m*siamese + (1-m)*target, elementwise over all parameters.
func MomentumUpdate(siamese, target []*Tensor, m float64) {
	if len(siamese) != len(target) {
		panic("nn: MomentumUpdate count mismatch")
	}
	for i := range siamese {
		s, t := siamese[i].Data, target[i].Data
		if len(s) != len(t) {
			panic("nn: MomentumUpdate shape mismatch")
		}
		for j := range s {
			s[j] = m*s[j] + (1-m)*t[j]
		}
	}
}
