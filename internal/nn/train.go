package nn

import "fmt"

// This file is the data-parallel training substrate: parameter aliasing
// and detachable gradient storage. The parallel LambdaRank trainer
// (internal/costmodel) runs one forward/backward per task group on an
// architecture replica whose parameters share the live model's weight
// memory but accumulate gradients into a private GradSet, so concurrent
// backwards never write shared state. Reducing the per-group GradSets
// into the live parameters in a fixed group order keeps the fitted
// weights bitwise independent of the worker count.

// Affine is the fused training op out = x@W + b, optionally through
// ReLU: one tape node where the operator chain ReLU(AddBias(MatMul))
// builds three, so a Linear layer's forward allocates one output and one
// gradient buffer instead of three of each. The forward runs the
// inference engine's register-blocked kernel, which is bitwise identical
// to the chain for the finite weights training produces; the backward
// fuses the ReLU mask, the bias column-sum and the two gradient GEMMs,
// each accumulating per element in the same ascending order as the chain
// it replaces, so gradients are bitwise identical too.
func Affine(x, w, b *Tensor, relu bool) *Tensor {
	if w.R != x.C || b.R != 1 || b.C != w.C {
		panic(fmt.Sprintf("nn: affine %dx%d @ %dx%d + 1x%d", x.R, x.C, w.R, w.C, b.C))
	}
	out := matmulFused(x, w, b.Data, relu)
	if needsGrad(x, w, b) {
		out.enableGrad(func() { affineBackward(x, w, b, out, relu) }, x, w, b)
	}
	return out
}

func affineBackward(x, w, b, out *Tensor, relu bool) {
	K, C := x.C, w.C
	g := out.Grad
	if relu {
		// The chain's ReLU backward: gradient flows only where the
		// pre-activation was positive — equivalently where the fused
		// output is (max(pre, 0) > 0 iff pre > 0).
		g = make([]float64, len(out.Grad))
		for i, v := range out.Data {
			if v > 0 {
				g[i] = out.Grad[i]
			}
		}
	}
	if b.requiresGrad {
		for i := 0; i < out.R; i++ {
			gRow := g[i*C : (i+1)*C]
			for j, gv := range gRow {
				b.Grad[j] += gv
			}
		}
	}
	if x.requiresGrad {
		// dX = g @ W^T, blocked four contraction rows wide; each element
		// is one dot over j in ascending order.
		for i := 0; i < x.R; i++ {
			gRow := g[i*C : (i+1)*C]
			xGrad := x.Grad[i*K : (i+1)*K]
			k := 0
			for ; k+4 <= K; k += 4 {
				b0 := w.Data[k*C : k*C+C]
				b1 := w.Data[(k+1)*C : (k+1)*C+C]
				b2 := w.Data[(k+2)*C : (k+2)*C+C]
				b3 := w.Data[(k+3)*C : (k+3)*C+C]
				var s0, s1, s2, s3 float64
				for j, gv := range gRow {
					s0 += gv * b0[j]
					s1 += gv * b1[j]
					s2 += gv * b2[j]
					s3 += gv * b3[j]
				}
				xGrad[k] += s0
				xGrad[k+1] += s1
				xGrad[k+2] += s2
				xGrad[k+3] += s3
			}
			for ; k < K; k++ {
				bRow := w.Data[k*C : (k+1)*C]
				var s float64
				for j, gv := range gRow {
					s += gv * bRow[j]
				}
				xGrad[k] += s
			}
		}
	}
	if w.requiresGrad {
		// dW = x^T @ g, four activation rows per pass; per element the
		// row terms still add in ascending order (chained v +=), and a
		// blocked-in zero activation contributes an exact ±0.0.
		i := 0
		for ; i+4 <= x.R; i += 4 {
			g0 := g[i*C : i*C+C]
			g1 := g[(i+1)*C : (i+1)*C+C]
			g2 := g[(i+2)*C : (i+2)*C+C]
			g3 := g[(i+3)*C : (i+3)*C+C]
			a0 := x.Data[i*K : i*K+K]
			a1 := x.Data[(i+1)*K : (i+1)*K+K]
			a2 := x.Data[(i+2)*K : (i+2)*K+K]
			a3 := x.Data[(i+3)*K : (i+3)*K+K]
			for k := 0; k < K; k++ {
				p0, p1, p2, p3 := a0[k], a1[k], a2[k], a3[k]
				if p0 == 0 && p1 == 0 && p2 == 0 && p3 == 0 {
					continue
				}
				wGrad := w.Grad[k*C : (k+1)*C]
				for j := range wGrad {
					v := wGrad[j]
					v += p0 * g0[j]
					v += p1 * g1[j]
					v += p2 * g2[j]
					v += p3 * g3[j]
					wGrad[j] = v
				}
			}
		}
		for ; i < x.R; i++ {
			gRow := g[i*C : (i+1)*C]
			aRow := x.Data[i*K : (i+1)*K]
			for k := 0; k < K; k++ {
				av := aRow[k]
				if av == 0 {
					continue
				}
				wGrad := w.Grad[k*C : (k+1)*C]
				for j, gv := range gRow {
					wGrad[j] += av * gv
				}
			}
		}
	}
}

// AliasParams points each replica parameter's Data at the master
// parameter's backing array (a slice-header copy, no element copy).
// After aliasing, forwards through the replica read the master's live
// weights; the replica's Grad buffers stay its own. Shapes must match.
func AliasParams(replica, master []*Tensor) {
	if len(replica) != len(master) {
		panic(fmt.Sprintf("nn: AliasParams count mismatch %d vs %d", len(replica), len(master)))
	}
	for i, r := range replica {
		m := master[i]
		if r.R != m.R || r.C != m.C {
			panic(fmt.Sprintf("nn: AliasParams shape mismatch at %d: %dx%d vs %dx%d", i, r.R, r.C, m.R, m.C))
		}
		r.Data = m.Data
	}
}

// GradSet is gradient storage matching a parameter list, detachable from
// the parameters that fill it: one zero-initialised buffer per parameter.
// A trainer keeps one GradSet per macro-batch slot and rebinds a replica
// to the slot it is currently computing.
type GradSet [][]float64

// NewGradSet allocates zeroed buffers shaped like params.
func NewGradSet(params []*Tensor) GradSet {
	g := make(GradSet, len(params))
	for i, p := range params {
		g[i] = make([]float64, len(p.Data))
	}
	return g
}

// Zero clears every buffer.
func (g GradSet) Zero() {
	for _, b := range g {
		for i := range b {
			b[i] = 0
		}
	}
}

// Bind points each parameter's Grad at the set's buffers, so the next
// Backward accumulates here. The caller owns the sequencing: bind, run
// one forward/backward, then the set holds that pass's leaf gradients.
func (g GradSet) Bind(params []*Tensor) {
	if len(g) != len(params) {
		panic(fmt.Sprintf("nn: GradSet.Bind count mismatch %d vs %d", len(g), len(params)))
	}
	for i, p := range params {
		if len(g[i]) != len(p.Data) {
			panic(fmt.Sprintf("nn: GradSet.Bind shape mismatch at %d", i))
		}
		p.Grad = g[i]
	}
}

// AddInto accumulates scale * g into the parameters' Grad buffers. The
// caller reduces slots in a fixed order, which is what makes the summed
// gradient — and everything downstream of it — independent of which
// worker produced each slot.
func (g GradSet) AddInto(params []*Tensor, scale float64) {
	if len(g) != len(params) {
		panic(fmt.Sprintf("nn: GradSet.AddInto count mismatch %d vs %d", len(g), len(params)))
	}
	for i, p := range params {
		b := g[i]
		for j := range b {
			p.Grad[j] += b[j] * scale
		}
	}
}
