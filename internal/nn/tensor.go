// Package nn is a small, dependency-free neural-network stack: a
// tape-based reverse-mode autograd over dense float64 matrices, the layers
// needed by the paper's cost models (linear, layer-norm, self-attention),
// the Adam optimiser, and the MSE and LambdaRank training losses.
//
// It exists because the paper's cost models are PyTorch modules and this
// reproduction is stdlib-only. The stack is deliberately simple —
// matrices not tensors, training single-goroutine, inference concurrent
// over frozen parameters (FreezeParams) — but exact: every operator has
// an analytic backward verified by finite differences in the test suite.
//
// Operators attach their tape state (gradient buffer, backward closure,
// parent links) only when some parent requires gradients. Under
// FreezeParams nothing does, so the inference hot path allocates no tape
// at all — the no-tape forward the batched cost-model engine (infer.go)
// builds on.
package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Tensor is a dense row-major matrix participating in the autograd graph.
// Tensors produced by operators carry a closure that propagates gradients
// to their parents; leaf tensors created with Param accumulate gradients
// for the optimiser.
type Tensor struct {
	R, C int
	Data []float64
	Grad []float64

	requiresGrad bool
	back         func()
	prev         []*Tensor
}

// New returns a zero-filled (r x c) tensor that does not require
// gradients.
func New(r, c int) *Tensor {
	if r <= 0 || c <= 0 {
		panic(fmt.Sprintf("nn: invalid tensor shape %dx%d", r, c))
	}
	return &Tensor{R: r, C: c, Data: make([]float64, r*c)}
}

// FromRows builds a constant tensor from row slices (all equal length).
func FromRows(rows [][]float64) *Tensor {
	if len(rows) == 0 {
		panic("nn: FromRows with no rows")
	}
	t := New(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != t.C {
			panic(fmt.Sprintf("nn: ragged rows %d vs %d", len(r), t.C))
		}
		copy(t.Data[i*t.C:(i+1)*t.C], r)
	}
	return t
}

// FromVec builds a 1 x len(v) constant tensor.
func FromVec(v []float64) *Tensor {
	t := New(1, len(v))
	copy(t.Data, v)
	return t
}

// Param returns a trainable (r x c) tensor initialised with scaled
// Gaussian (Xavier) noise.
func Param(rng *rand.Rand, r, c int) *Tensor {
	t := New(r, c)
	scale := math.Sqrt(2.0 / float64(r+c))
	for i := range t.Data {
		t.Data[i] = rng.NormFloat64() * scale
	}
	t.requiresGrad = true
	t.Grad = make([]float64, r*c)
	return t
}

// ZeroParam returns a trainable zero-initialised tensor (biases).
func ZeroParam(r, c int) *Tensor {
	t := New(r, c)
	t.requiresGrad = true
	t.Grad = make([]float64, r*c)
	return t
}

// At returns element (i, j).
func (t *Tensor) At(i, j int) float64 { return t.Data[i*t.C+j] }

// Set assigns element (i, j).
func (t *Tensor) Set(i, j int, v float64) { t.Data[i*t.C+j] = v }

// Clone copies the values into a fresh constant tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.R, t.C)
	copy(c.Data, t.Data)
	return c
}

// FreezeParams disables gradient-graph construction through the given
// parameters — inference mode — and returns a restore function for their
// previous state. It replaces the earlier process-global NoGrad counter:
// that gate let one tuning session's inference silently suppress another
// session's concurrent training forward, whereas freezing is scoped to
// one model's own parameters. Toggle and restore must happen on the
// serial path; concurrent readers between the two calls are safe.
func FreezeParams(params []*Tensor) (restore func()) {
	prev := make([]bool, len(params))
	for i, p := range params {
		prev[i] = p.requiresGrad
		p.requiresGrad = false
	}
	return func() {
		for i, p := range params {
			p.requiresGrad = prev[i]
		}
	}
}

// needsGrad marks an op output as gradient-carrying when any parent is.
func needsGrad(parents ...*Tensor) bool {
	for _, p := range parents {
		if p.requiresGrad {
			return true
		}
	}
	return false
}

// enableGrad links an op output into the tape: gradient buffer, backward
// closure, parent edges. Operators call it only when needsGrad reports a
// gradient-carrying parent, so inference forwards never allocate tape
// state — the closure literal itself lives inside the caller's if-block
// and is not even constructed.
func (t *Tensor) enableGrad(back func(), parents ...*Tensor) {
	t.requiresGrad = true
	t.Grad = make([]float64, t.R*t.C)
	t.back = back
	t.prev = parents
}

// addGrad accumulates into a parent's gradient if it participates.
func addGrad(p *Tensor, idx int, v float64) {
	if p.requiresGrad {
		p.Grad[idx] += v
	}
}

// Backward runs reverse-mode differentiation from t, which must be a
// 1x1 loss tensor. Parameter gradients accumulate (call ZeroGrad between
// steps).
func Backward(t *Tensor) {
	if t.R != 1 || t.C != 1 {
		panic("nn: Backward expects a scalar loss")
	}
	if !t.requiresGrad {
		return
	}
	order := topoSort(t)
	t.Grad[0] = 1
	for i := len(order) - 1; i >= 0; i-- {
		if order[i].back != nil {
			order[i].back()
		}
	}
}

func topoSort(root *Tensor) []*Tensor {
	var order []*Tensor
	visited := map[*Tensor]bool{}
	var visit func(*Tensor)
	visit = func(n *Tensor) {
		if visited[n] {
			return
		}
		visited[n] = true
		for _, p := range n.prev {
			visit(p)
		}
		order = append(order, n)
	}
	visit(root)
	return order
}

// ---------------------------------------------------------------------------
// Operators.

// MatMul returns a @ b.
func MatMul(a, b *Tensor) *Tensor {
	if a.C != b.R {
		panic(fmt.Sprintf("nn: matmul %dx%d @ %dx%d", a.R, a.C, b.R, b.C))
	}
	out := New(a.R, b.C)
	for i := 0; i < a.R; i++ {
		oRow := out.Data[i*out.C : (i+1)*out.C]
		for k := 0; k < a.C; k++ {
			av := a.Data[i*a.C+k]
			if av == 0 {
				continue
			}
			bRow := b.Data[k*b.C : (k+1)*b.C]
			for j, bv := range bRow {
				oRow[j] += av * bv
			}
		}
	}
	if needsGrad(a, b) {
		out.enableGrad(func() {
			// dA = dOut @ B^T ; dB = A^T @ dOut — the training hot path
			// (roughly two thirds of a fit's wall-clock), register-blocked
			// four wide like the inference kernels. Each gradient element
			// still accumulates its terms in ascending contraction order
			// (chained v += for dB's i-blocks, the per-dot j loop for dA),
			// so blocked results are bitwise identical to the plain loops;
			// a blocked-in zero term contributes an exact ±0.0 for the
			// finite values training produces, matching the per-term
			// zero-skip it replaces.
			K, C := a.C, b.C
			if a.requiresGrad {
				for i := 0; i < a.R; i++ {
					gRow := out.Grad[i*C : (i+1)*C]
					aGrad := a.Grad[i*K : (i+1)*K]
					k := 0
					for ; k+4 <= K; k += 4 {
						b0 := b.Data[k*C : k*C+C]
						b1 := b.Data[(k+1)*C : (k+1)*C+C]
						b2 := b.Data[(k+2)*C : (k+2)*C+C]
						b3 := b.Data[(k+3)*C : (k+3)*C+C]
						var s0, s1, s2, s3 float64
						for j, g := range gRow {
							s0 += g * b0[j]
							s1 += g * b1[j]
							s2 += g * b2[j]
							s3 += g * b3[j]
						}
						aGrad[k] += s0
						aGrad[k+1] += s1
						aGrad[k+2] += s2
						aGrad[k+3] += s3
					}
					for ; k < K; k++ {
						bRow := b.Data[k*C : (k+1)*C]
						var ga float64
						for j, g := range gRow {
							ga += g * bRow[j]
						}
						aGrad[k] += ga
					}
				}
			}
			if b.requiresGrad {
				i := 0
				for ; i+4 <= a.R; i += 4 {
					g0 := out.Grad[i*C : i*C+C]
					g1 := out.Grad[(i+1)*C : (i+1)*C+C]
					g2 := out.Grad[(i+2)*C : (i+2)*C+C]
					g3 := out.Grad[(i+3)*C : (i+3)*C+C]
					a0 := a.Data[i*K : i*K+K]
					a1 := a.Data[(i+1)*K : (i+1)*K+K]
					a2 := a.Data[(i+2)*K : (i+2)*K+K]
					a3 := a.Data[(i+3)*K : (i+3)*K+K]
					for k := 0; k < K; k++ {
						p0, p1, p2, p3 := a0[k], a1[k], a2[k], a3[k]
						if p0 == 0 && p1 == 0 && p2 == 0 && p3 == 0 {
							continue
						}
						bGrad := b.Grad[k*C : (k+1)*C]
						for j := range bGrad {
							v := bGrad[j]
							v += p0 * g0[j]
							v += p1 * g1[j]
							v += p2 * g2[j]
							v += p3 * g3[j]
							bGrad[j] = v
						}
					}
				}
				for ; i < a.R; i++ {
					gRow := out.Grad[i*C : (i+1)*C]
					aRow := a.Data[i*K : (i+1)*K]
					for k := 0; k < K; k++ {
						av := aRow[k]
						if av == 0 {
							continue
						}
						bGrad := b.Grad[k*C : (k+1)*C]
						for j, g := range gRow {
							bGrad[j] += av * g
						}
					}
				}
			}
		}, a, b)
	}
	return out
}

// AddBias adds a 1 x C bias row to every row of x.
func AddBias(x, b *Tensor) *Tensor {
	if b.R != 1 || b.C != x.C {
		panic(fmt.Sprintf("nn: addbias %dx%d + %dx%d", x.R, x.C, b.R, b.C))
	}
	out := New(x.R, x.C)
	for i := 0; i < x.R; i++ {
		for j := 0; j < x.C; j++ {
			out.Data[i*x.C+j] = x.Data[i*x.C+j] + b.Data[j]
		}
	}
	if needsGrad(x, b) {
		out.enableGrad(func() {
			for i := 0; i < x.R; i++ {
				for j := 0; j < x.C; j++ {
					g := out.Grad[i*x.C+j]
					addGrad(x, i*x.C+j, g)
					addGrad(b, j, g)
				}
			}
		}, x, b)
	}
	return out
}

// Add returns the elementwise sum of equal-shaped tensors.
func Add(a, b *Tensor) *Tensor {
	shapeCheck("add", a, b)
	out := New(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] + b.Data[i]
	}
	if needsGrad(a, b) {
		out.enableGrad(func() {
			for i, g := range out.Grad {
				addGrad(a, i, g)
				addGrad(b, i, g)
			}
		}, a, b)
	}
	return out
}

// Sub returns a - b elementwise.
func Sub(a, b *Tensor) *Tensor {
	shapeCheck("sub", a, b)
	out := New(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] - b.Data[i]
	}
	if needsGrad(a, b) {
		out.enableGrad(func() {
			for i, g := range out.Grad {
				addGrad(a, i, g)
				addGrad(b, i, -g)
			}
		}, a, b)
	}
	return out
}

// Mul returns the elementwise product.
func Mul(a, b *Tensor) *Tensor {
	shapeCheck("mul", a, b)
	out := New(a.R, a.C)
	for i := range out.Data {
		out.Data[i] = a.Data[i] * b.Data[i]
	}
	if needsGrad(a, b) {
		out.enableGrad(func() {
			for i, g := range out.Grad {
				addGrad(a, i, g*b.Data[i])
				addGrad(b, i, g*a.Data[i])
			}
		}, a, b)
	}
	return out
}

// Scale multiplies by a constant.
func Scale(x *Tensor, k float64) *Tensor {
	out := New(x.R, x.C)
	for i := range out.Data {
		out.Data[i] = x.Data[i] * k
	}
	if needsGrad(x) {
		out.enableGrad(func() {
			for i, g := range out.Grad {
				addGrad(x, i, g*k)
			}
		}, x)
	}
	return out
}

// ReLU applies max(0, x).
func ReLU(x *Tensor) *Tensor {
	out := New(x.R, x.C)
	for i, v := range x.Data {
		if v > 0 {
			out.Data[i] = v
		}
	}
	if needsGrad(x) {
		out.enableGrad(func() {
			for i, g := range out.Grad {
				if x.Data[i] > 0 {
					addGrad(x, i, g)
				}
			}
		}, x)
	}
	return out
}

// Tanh applies the hyperbolic tangent.
func Tanh(x *Tensor) *Tensor {
	out := New(x.R, x.C)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	if needsGrad(x) {
		out.enableGrad(func() {
			for i, g := range out.Grad {
				y := out.Data[i]
				addGrad(x, i, g*(1-y*y))
			}
		}, x)
	}
	return out
}

// Sigmoid applies the logistic function.
func Sigmoid(x *Tensor) *Tensor {
	out := New(x.R, x.C)
	for i, v := range x.Data {
		out.Data[i] = 1 / (1 + math.Exp(-v))
	}
	if needsGrad(x) {
		out.enableGrad(func() {
			for i, g := range out.Grad {
				y := out.Data[i]
				addGrad(x, i, g*y*(1-y))
			}
		}, x)
	}
	return out
}

// SoftmaxRows applies softmax independently to each row.
func SoftmaxRows(x *Tensor) *Tensor {
	out := New(x.R, x.C)
	for i := 0; i < x.R; i++ {
		row := x.Data[i*x.C : (i+1)*x.C]
		m := math.Inf(-1)
		for _, v := range row {
			m = math.Max(m, v)
		}
		var sum float64
		orow := out.Data[i*x.C : (i+1)*x.C]
		for j, v := range row {
			e := math.Exp(v - m)
			orow[j] = e
			sum += e
		}
		for j := range orow {
			orow[j] /= sum
		}
	}
	if needsGrad(x) {
		out.enableGrad(func() {
			for i := 0; i < x.R; i++ {
				row := out.Data[i*x.C : (i+1)*x.C]
				grow := out.Grad[i*x.C : (i+1)*x.C]
				var dot float64
				for j := range row {
					dot += grow[j] * row[j]
				}
				for j := range row {
					addGrad(x, i*x.C+j, row[j]*(grow[j]-dot))
				}
			}
		}, x)
	}
	return out
}

// Transpose returns x^T.
func Transpose(x *Tensor) *Tensor {
	out := New(x.C, x.R)
	for i := 0; i < x.R; i++ {
		for j := 0; j < x.C; j++ {
			out.Data[j*x.R+i] = x.Data[i*x.C+j]
		}
	}
	if needsGrad(x) {
		out.enableGrad(func() {
			for i := 0; i < x.R; i++ {
				for j := 0; j < x.C; j++ {
					addGrad(x, i*x.C+j, out.Grad[j*x.R+i])
				}
			}
		}, x)
	}
	return out
}

// ConcatCols concatenates equal-row tensors side by side.
func ConcatCols(a, b *Tensor) *Tensor {
	if a.R != b.R {
		panic(fmt.Sprintf("nn: concat rows %d vs %d", a.R, b.R))
	}
	cols := a.C + b.C
	out := New(a.R, cols)
	for i := 0; i < a.R; i++ {
		copy(out.Data[i*cols:i*cols+a.C], a.Data[i*a.C:(i+1)*a.C])
		copy(out.Data[i*cols+a.C:(i+1)*cols], b.Data[i*b.C:(i+1)*b.C])
	}
	if needsGrad(a, b) {
		out.enableGrad(func() {
			for i := 0; i < a.R; i++ {
				for j := 0; j < a.C; j++ {
					addGrad(a, i*a.C+j, out.Grad[i*cols+j])
				}
				for j := 0; j < b.C; j++ {
					addGrad(b, i*b.C+j, out.Grad[i*cols+a.C+j])
				}
			}
		}, a, b)
	}
	return out
}

// ConcatRows stacks equal-width tensors vertically.
func ConcatRows(ts ...*Tensor) *Tensor {
	if len(ts) == 0 {
		panic("nn: ConcatRows of nothing")
	}
	cols := ts[0].C
	rows := 0
	for _, t := range ts {
		if t.C != cols {
			panic(fmt.Sprintf("nn: ConcatRows width mismatch %d vs %d", t.C, cols))
		}
		rows += t.R
	}
	out := New(rows, cols)
	off := 0
	for _, t := range ts {
		copy(out.Data[off:off+t.R*t.C], t.Data)
		off += t.R * t.C
	}
	if needsGrad(ts...) {
		out.enableGrad(func() {
			off := 0
			for _, t := range ts {
				for i := 0; i < t.R*t.C; i++ {
					addGrad(t, i, out.Grad[off+i])
				}
				off += t.R * t.C
			}
		}, ts...)
	}
	return out
}

// SliceRows returns rows [lo, hi) of x as a fresh tensor, with gradients
// scattered back to the sliced rows. It is the training-path counterpart
// of the inference-only RowsView (which cannot propagate gradients): the
// batched training forwards project a whole group in one GEMM and slice
// per-segment views out for the row-mixing attention core.
func SliceRows(x *Tensor, lo, hi int) *Tensor {
	if lo < 0 || hi > x.R || lo >= hi {
		panic(fmt.Sprintf("nn: SliceRows [%d,%d) of %d rows", lo, hi, x.R))
	}
	out := New(hi-lo, x.C)
	copy(out.Data, x.Data[lo*x.C:hi*x.C])
	if needsGrad(x) {
		out.enableGrad(func() {
			base := lo * x.C
			for i, g := range out.Grad {
				addGrad(x, base+i, g)
			}
		}, x)
	}
	return out
}

// SumRows sums over rows, producing a 1 x C tensor.
func SumRows(x *Tensor) *Tensor {
	out := New(1, x.C)
	for i := 0; i < x.R; i++ {
		for j := 0; j < x.C; j++ {
			out.Data[j] += x.Data[i*x.C+j]
		}
	}
	if needsGrad(x) {
		out.enableGrad(func() {
			for i := 0; i < x.R; i++ {
				for j := 0; j < x.C; j++ {
					addGrad(x, i*x.C+j, out.Grad[j])
				}
			}
		}, x)
	}
	return out
}

// MeanRows averages over rows, producing a 1 x C tensor.
func MeanRows(x *Tensor) *Tensor {
	return Scale(SumRows(x), 1/float64(x.R))
}

// SegmentSumRows sums contiguous row segments of x: lens[s] rows belong to
// segment s (the lengths must sum to x.R) and row s of the len(lens) x C
// result is their sum. Rows accumulate in order, so each output row is
// bitwise identical to SumRows over that segment in isolation — the
// reduction the batched cost-model engine uses to pool a whole candidate
// batch's statement rows after one fused GEMM.
func SegmentSumRows(x *Tensor, lens []int) *Tensor {
	total := 0
	for s, n := range lens {
		if n <= 0 {
			panic(fmt.Sprintf("nn: SegmentSumRows segment %d has length %d", s, n))
		}
		total += n
	}
	if total != x.R {
		panic(fmt.Sprintf("nn: SegmentSumRows lengths sum to %d, tensor has %d rows", total, x.R))
	}
	out := New(len(lens), x.C)
	row := 0
	for s, n := range lens {
		oRow := out.Data[s*x.C : (s+1)*x.C]
		for r := 0; r < n; r++ {
			xRow := x.Data[row*x.C : (row+1)*x.C]
			for j, v := range xRow {
				oRow[j] += v
			}
			row++
		}
	}
	if needsGrad(x) {
		starts := segmentStarts(lens)
		out.enableGrad(func() {
			for s, n := range lens {
				gRow := out.Grad[s*x.C : (s+1)*x.C]
				for r := 0; r < n; r++ {
					base := (starts[s] + r) * x.C
					for j, g := range gRow {
						addGrad(x, base+j, g)
					}
				}
			}
		}, x)
	}
	return out
}

// SegmentMeanRows averages contiguous row segments of x (see
// SegmentSumRows); each output row is bitwise identical to MeanRows over
// that segment in isolation (sum in row order, then one multiply by the
// reciprocal length).
func SegmentMeanRows(x *Tensor, lens []int) *Tensor {
	sum := SegmentSumRows(x, lens)
	out := New(sum.R, sum.C)
	for s, n := range lens {
		inv := 1 / float64(n)
		for j := 0; j < sum.C; j++ {
			out.Data[s*sum.C+j] = sum.Data[s*sum.C+j] * inv
		}
	}
	if needsGrad(sum) {
		out.enableGrad(func() {
			for s, n := range lens {
				inv := 1 / float64(n)
				for j := 0; j < sum.C; j++ {
					addGrad(sum, s*sum.C+j, out.Grad[s*sum.C+j]*inv)
				}
			}
		}, sum)
	}
	return out
}

// segmentStarts returns the first row index of each segment.
func segmentStarts(lens []int) []int {
	starts := make([]int, len(lens))
	row := 0
	for s, n := range lens {
		starts[s] = row
		row += n
	}
	return starts
}

// MeanAll reduces to the scalar mean of all entries.
func MeanAll(x *Tensor) *Tensor {
	n := float64(x.R * x.C)
	out := New(1, 1)
	var sum float64
	for _, v := range x.Data {
		sum += v
	}
	out.Data[0] = sum / n
	if needsGrad(x) {
		out.enableGrad(func() {
			g := out.Grad[0] / n
			for i := range x.Data {
				addGrad(x, i, g)
			}
		}, x)
	}
	return out
}

// LayerNormRows normalises each row to zero mean / unit variance and
// applies the learned gain g and bias b (both 1 x C).
func LayerNormRows(x, g, b *Tensor) *Tensor {
	const eps = 1e-5
	if g.R != 1 || g.C != x.C || b.R != 1 || b.C != x.C {
		panic("nn: layernorm parameter shape mismatch")
	}
	n := float64(x.C)
	grad := needsGrad(x, g, b)
	// The normalised values and inverse stds are backward-only state;
	// inference forwards skip both allocations.
	var invStd, norm []float64
	if grad {
		invStd = make([]float64, x.R)
		norm = make([]float64, x.R*x.C)
	}
	out := New(x.R, x.C)
	for i := 0; i < x.R; i++ {
		var mu float64
		for j := 0; j < x.C; j++ {
			mu += x.Data[i*x.C+j]
		}
		mu /= n
		var v float64
		for j := 0; j < x.C; j++ {
			d := x.Data[i*x.C+j] - mu
			v += d * d
		}
		v /= n
		inv := 1 / math.Sqrt(v+eps)
		if grad {
			invStd[i] = inv
		}
		for j := 0; j < x.C; j++ {
			idx := i*x.C + j
			nv := (x.Data[idx] - mu) * inv
			if grad {
				norm[idx] = nv
			}
			out.Data[idx] = nv*g.Data[j] + b.Data[j]
		}
	}
	if grad {
		out.enableGrad(func() {
			for i := 0; i < x.R; i++ {
				// dxhat_j = dy_j * g_j
				var sumDx, sumDxX float64
				for j := 0; j < x.C; j++ {
					dxh := out.Grad[i*x.C+j] * g.Data[j]
					sumDx += dxh
					sumDxX += dxh * norm[i*x.C+j]
				}
				for j := 0; j < x.C; j++ {
					idx := i*x.C + j
					dy := out.Grad[idx]
					dxh := dy * g.Data[j]
					addGrad(x, idx, invStd[i]*(dxh-sumDx/n-norm[idx]*sumDxX/n))
					addGrad(g, j, dy*norm[idx])
					addGrad(b, j, dy)
				}
			}
		}, x, g, b)
	}
	return out
}

func shapeCheck(op string, a, b *Tensor) {
	if a.R != b.R || a.C != b.C {
		panic(fmt.Sprintf("nn: %s shape mismatch %dx%d vs %dx%d", op, a.R, a.C, b.R, b.C))
	}
}
