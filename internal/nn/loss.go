package nn

import (
	"math"
	"sort"
)

// MSELoss returns mean((pred - target)^2) as a scalar tensor; target is a
// constant.
func MSELoss(pred, target *Tensor) *Tensor {
	d := Sub(pred, target)
	return MeanAll(Mul(d, d))
}

// LambdaRankLoss implements the listwise LambdaRank objective the paper
// trains PaCM with: pairwise logistic loss between items of one task,
// weighted by the |ΔNDCG| of swapping the pair. scores is (N x 1) and must
// require gradients; rel holds the relevance labels (higher = better, the
// normalised throughput of the schedule).
//
// The returned scalar tensor carries an exact custom backward: the
// standard lambda gradients are injected into scores.Grad.
func LambdaRankLoss(scores *Tensor, rel []float64) *Tensor {
	if scores.C != 1 || scores.R != len(rel) {
		panic("nn: LambdaRankLoss shape mismatch")
	}
	n := len(rel)
	if n < 2 {
		return MeanAll(Mul(scores, Scale(scores, 0))) // zero loss, keeps graph
	}

	// Ideal DCG from relevance-sorted order; gains are the (non-negative)
	// relevances themselves.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return rel[idx[a]] > rel[idx[b]] })
	// rank positions by current score order
	rank := make([]int, n)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return scores.Data[order[a]] > scores.Data[order[b]] })
	for pos, item := range order {
		rank[item] = pos
	}
	var idcg float64
	for pos, item := range idx {
		idcg += rel[item] / math.Log2(float64(pos)+2)
	}
	if idcg <= 0 {
		idcg = 1
	}

	lambdas := make([]float64, n)
	var lossVal float64
	var pairs float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rel[i] <= rel[j] {
				continue // only pairs where i should rank above j
			}
			sdiff := scores.Data[i*scores.C] - scores.Data[j*scores.C]
			// |ΔNDCG| of swapping i and j in the current ranking.
			di := 1 / math.Log2(float64(rank[i])+2)
			dj := 1 / math.Log2(float64(rank[j])+2)
			deltaN := math.Abs((rel[i]-rel[j])*(di-dj)) / idcg
			// logistic pairwise loss log(1+exp(-sdiff))
			var l float64
			if sdiff > 30 {
				l = 0
			} else if sdiff < -30 {
				l = -sdiff
			} else {
				l = math.Log1p(math.Exp(-sdiff))
			}
			lossVal += deltaN * l
			grad := -deltaN / (1 + math.Exp(sdiff))
			lambdas[i] += grad
			lambdas[j] -= grad
			pairs++
		}
	}
	if pairs == 0 {
		pairs = 1
	}

	out := New(1, 1)
	out.Data[0] = lossVal / pairs
	if needsGrad(scores) {
		out.enableGrad(func() {
			g := out.Grad[0] / pairs
			for i := 0; i < n; i++ {
				addGrad(scores, i*scores.C, g*lambdas[i])
			}
		}, scores)
	}
	return out
}
