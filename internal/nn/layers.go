package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// Module is anything owning trainable parameters.
type Module interface {
	Params() []*Tensor
}

// Linear is a fully connected layer y = x@W + b.
type Linear struct {
	W, B *Tensor
}

// NewLinear builds a Linear with Xavier-initialised weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	return &Linear{W: Param(rng, in, out), B: ZeroParam(1, out)}
}

// Forward applies the layer to an (N x in) batch through the fused
// affine op — one tape node, bitwise identical to AddBias(MatMul(x, W)).
func (l *Linear) Forward(x *Tensor) *Tensor {
	return Affine(x, l.W, l.B, false)
}

// Params implements Module.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// LayerNorm holds the gain/bias of row-wise layer normalisation.
type LayerNorm struct {
	G, B *Tensor
}

// NewLayerNorm builds an identity-initialised LayerNorm over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	g := ZeroParam(1, dim)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{G: g, B: ZeroParam(1, dim)}
}

// Forward normalises each row of x.
func (l *LayerNorm) Forward(x *Tensor) *Tensor {
	return LayerNormRows(x, l.G, l.B)
}

// Params implements Module.
func (l *LayerNorm) Params() []*Tensor { return []*Tensor{l.G, l.B} }

// MLP is a stack of Linear+ReLU layers with a linear head.
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer widths (len >= 2).
func NewMLP(rng *rand.Rand, widths ...int) *MLP {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, widths[i], widths[i+1]))
	}
	return m
}

// Forward applies ReLU between layers and no activation after the last,
// each layer as one fused affine node.
func (m *MLP) Forward(x *Tensor) *Tensor {
	for i, l := range m.Layers {
		x = Affine(x, l.W, l.B, i+1 < len(m.Layers))
	}
	return x
}

// ForwardReLU applies ReLU after every layer including the last — the
// ReLU(MLP.Forward(x)) composition the cost models use for embeddings,
// with the final activation fused instead of a separate tape node.
func (m *MLP) ForwardReLU(x *Tensor) *Tensor {
	for _, l := range m.Layers {
		x = Affine(x, l.W, l.B, true)
	}
	return x
}

// Params implements Module.
func (m *MLP) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SelfAttention is a single-head scaled dot-product self-attention block
// with a residual connection and layer normalisation — the contextual
// encoder PaCM and TLP use over their feature sequences.
type SelfAttention struct {
	Q, K, V, O *Linear
	Norm       *LayerNorm
	dim        int
}

// NewSelfAttention builds an attention block over dim-wide tokens.
func NewSelfAttention(rng *rand.Rand, dim int) *SelfAttention {
	return &SelfAttention{
		Q:    NewLinear(rng, dim, dim),
		K:    NewLinear(rng, dim, dim),
		V:    NewLinear(rng, dim, dim),
		O:    NewLinear(rng, dim, dim),
		Norm: NewLayerNorm(dim),
		dim:  dim,
	}
}

// Forward consumes a (seq x dim) token matrix and returns the attended
// (seq x dim) representation.
func (a *SelfAttention) Forward(x *Tensor) *Tensor {
	q := a.Q.Forward(x)
	k := a.K.Forward(x)
	v := a.V.Forward(x)
	scores := Scale(MatMul(q, Transpose(k)), 1/math.Sqrt(float64(a.dim)))
	attn := SoftmaxRows(scores)
	ctx := a.O.Forward(MatMul(attn, v))
	return a.Norm.Forward(Add(x, ctx))
}

// ForwardSegments applies the block independently to contiguous row
// segments of x (lens summing to x.R), with gradients: the Q/K/V/O
// projections and the residual layer norm run batched across all
// segments — one GEMM each instead of one per segment — while the score
// matmuls and softmax, the only row-mixing parts, stay segment-local.
// Projections and layer norm are row-wise, so each segment's output is
// bitwise identical to Forward over that segment alone; this is the
// training-path mirror of FrozenAttention.ForwardSegments.
func (a *SelfAttention) ForwardSegments(x *Tensor, lens []int) *Tensor {
	return a.forwardSegments(x, a.Q.Forward(x), a.K.Forward(x), a.V.Forward(x), lens)
}

// ForwardSegmentsDedup is ForwardSegments over a token sequence in
// deduplicated form (see DedupRows): uniq holds the projected-input
// candidates' distinct token rows and idx maps each expanded row to its
// representative. Q/K/V run once per distinct row and are gathered back
// with gradient-aware GatherRows, so training on batches whose tokens
// repeat heavily — TLP's near-constant one-hots, PaCM's zero-padded
// dataflow rows — skips most projection work in the forward and the
// backward both.
func (a *SelfAttention) ForwardSegmentsDedup(uniq *Tensor, idx []int, lens []int) *Tensor {
	return a.forwardSegments(
		GatherRows(uniq, idx),
		GatherRows(a.Q.Forward(uniq), idx),
		GatherRows(a.K.Forward(uniq), idx),
		GatherRows(a.V.Forward(uniq), idx),
		lens,
	)
}

// forwardSegments is the shared segment-attention core over precomputed
// projections.
func (a *SelfAttention) forwardSegments(x, q, k, v *Tensor, lens []int) *Tensor {
	parts := make([]*Tensor, len(lens))
	off := 0
	for s, n := range lens {
		qs := SliceRows(q, off, off+n)
		ks := SliceRows(k, off, off+n)
		vs := SliceRows(v, off, off+n)
		scores := Scale(MatMul(qs, Transpose(ks)), 1/math.Sqrt(float64(a.dim)))
		parts[s] = MatMul(SoftmaxRows(scores), vs)
		off += n
	}
	if off != x.R {
		panic(fmt.Sprintf("nn: ForwardSegments lengths sum to %d, tensor has %d rows", off, x.R))
	}
	ctx := a.O.Forward(ConcatRows(parts...))
	return a.Norm.Forward(Add(x, ctx))
}

// Params implements Module.
func (a *SelfAttention) Params() []*Tensor {
	var ps []*Tensor
	for _, m := range []Module{a.Q, a.K, a.V, a.O, a.Norm} {
		ps = append(ps, m.Params()...)
	}
	return ps
}
