package nn

import (
	"math"
	"math/rand"
)

// Module is anything owning trainable parameters.
type Module interface {
	Params() []*Tensor
}

// Linear is a fully connected layer y = x@W + b.
type Linear struct {
	W, B *Tensor
}

// NewLinear builds a Linear with Xavier-initialised weights.
func NewLinear(rng *rand.Rand, in, out int) *Linear {
	return &Linear{W: Param(rng, in, out), B: ZeroParam(1, out)}
}

// Forward applies the layer to an (N x in) batch.
func (l *Linear) Forward(x *Tensor) *Tensor {
	return AddBias(MatMul(x, l.W), l.B)
}

// Params implements Module.
func (l *Linear) Params() []*Tensor { return []*Tensor{l.W, l.B} }

// LayerNorm holds the gain/bias of row-wise layer normalisation.
type LayerNorm struct {
	G, B *Tensor
}

// NewLayerNorm builds an identity-initialised LayerNorm over dim features.
func NewLayerNorm(dim int) *LayerNorm {
	g := ZeroParam(1, dim)
	for i := range g.Data {
		g.Data[i] = 1
	}
	return &LayerNorm{G: g, B: ZeroParam(1, dim)}
}

// Forward normalises each row of x.
func (l *LayerNorm) Forward(x *Tensor) *Tensor {
	return LayerNormRows(x, l.G, l.B)
}

// Params implements Module.
func (l *LayerNorm) Params() []*Tensor { return []*Tensor{l.G, l.B} }

// MLP is a stack of Linear+ReLU layers with a linear head.
type MLP struct {
	Layers []*Linear
}

// NewMLP builds an MLP with the given layer widths (len >= 2).
func NewMLP(rng *rand.Rand, widths ...int) *MLP {
	if len(widths) < 2 {
		panic("nn: MLP needs at least input and output widths")
	}
	m := &MLP{}
	for i := 0; i+1 < len(widths); i++ {
		m.Layers = append(m.Layers, NewLinear(rng, widths[i], widths[i+1]))
	}
	return m
}

// Forward applies ReLU between layers and no activation after the last.
func (m *MLP) Forward(x *Tensor) *Tensor {
	for i, l := range m.Layers {
		x = l.Forward(x)
		if i+1 < len(m.Layers) {
			x = ReLU(x)
		}
	}
	return x
}

// Params implements Module.
func (m *MLP) Params() []*Tensor {
	var ps []*Tensor
	for _, l := range m.Layers {
		ps = append(ps, l.Params()...)
	}
	return ps
}

// SelfAttention is a single-head scaled dot-product self-attention block
// with a residual connection and layer normalisation — the contextual
// encoder PaCM and TLP use over their feature sequences.
type SelfAttention struct {
	Q, K, V, O *Linear
	Norm       *LayerNorm
	dim        int
}

// NewSelfAttention builds an attention block over dim-wide tokens.
func NewSelfAttention(rng *rand.Rand, dim int) *SelfAttention {
	return &SelfAttention{
		Q:    NewLinear(rng, dim, dim),
		K:    NewLinear(rng, dim, dim),
		V:    NewLinear(rng, dim, dim),
		O:    NewLinear(rng, dim, dim),
		Norm: NewLayerNorm(dim),
		dim:  dim,
	}
}

// Forward consumes a (seq x dim) token matrix and returns the attended
// (seq x dim) representation.
func (a *SelfAttention) Forward(x *Tensor) *Tensor {
	q := a.Q.Forward(x)
	k := a.K.Forward(x)
	v := a.V.Forward(x)
	scores := Scale(MatMul(q, Transpose(k)), 1/math.Sqrt(float64(a.dim)))
	attn := SoftmaxRows(scores)
	ctx := a.O.Forward(MatMul(attn, v))
	return a.Norm.Forward(Add(x, ctx))
}

// Params implements Module.
func (a *SelfAttention) Params() []*Tensor {
	var ps []*Tensor
	for _, m := range []Module{a.Q, a.K, a.V, a.O, a.Norm} {
		ps = append(ps, m.Params()...)
	}
	return ps
}
