// Inference engine: no-tape forward kernels for the verify-stage hot
// path. A model freezes its layers into Frozen* snapshots once per
// Predict call; the snapshots then run fused matmul-bias(-ReLU) kernels
// over whole candidate batches. Every kernel accumulates each output
// element in exactly the same order as the tape-based operators it
// replaces — ascending over the contraction index — so frozen forwards
// are bitwise identical to Module forwards under FreezeParams (the
// property the cost-model equivalence tests pin). The kernels assume
// finite weights: a zero activation then contributes an exact ±0.0 term,
// which cannot perturb any partial sum, letting the inner loop run
// branchless where the tape operator branches per term.
//
// Every kernel comes in two spellings: the plain form allocates its
// outputs (convenient for tests and one-off calls), and the *In form
// threads a *Scratch arena through the whole chain so a warmed call
// performs zero heap allocations — the contract the //pruner:hotpath
// annotations declare, the hotalloc analyzer enforces statically, and
// the TestAlloc* gates pin dynamically. The two forms share one body
// (plain delegates with a nil Scratch), so they cannot drift.
package nn

import (
	"encoding/binary"
	"fmt"
	"math"
)

// RowsView returns a zero-copy view of rows [lo, hi) of x, sharing its
// backing array. It is an inference-path helper: x must not carry
// gradients (a view cannot propagate them), so it panics on a
// gradient-carrying tensor.
func RowsView(x *Tensor, lo, hi int) *Tensor {
	if x.requiresGrad {
		panic("nn: RowsView of a gradient-carrying tensor")
	}
	if lo < 0 || hi > x.R || lo >= hi {
		panic(fmt.Sprintf("nn: RowsView [%d,%d) of %d rows", lo, hi, x.R))
	}
	return &Tensor{R: hi - lo, C: x.C, Data: x.Data[lo*x.C : hi*x.C]}
}

// matmulFused is the engine kernel: out = x @ w (+ bias) (then ReLU).
// It keeps MatMul's outer-product loop order but blocks the contraction
// index four wide, so each output element is loaded and stored once per
// four terms instead of once per term, with four independent streams of
// b-rows. Per element the terms still add in ascending k — the chained
// v += form — so the result is bitwise identical to
// [ReLU](AddBias)(MatMul(x, w)) for finite w. Blocks whose four
// activations are all zero are skipped outright (feature rows carry long
// zero tails), matching MatMul's per-term zero-skip.
func matmulFused(x, w *Tensor, bias []float64, relu bool) *Tensor {
	return matmulFusedIn(nil, x, w, bias, relu)
}

// matmulFusedIn is matmulFused with the output and the nonzero-column
// index drawn from s when non-nil.
func matmulFusedIn(s *Scratch, x, w *Tensor, bias []float64, relu bool) *Tensor {
	// Contract only over columns that are nonzero somewhere in the batch.
	// Feature matrices carry long structurally-zero column runs (padding
	// tails, unused one-hot slots); those columns contribute an exact zero
	// to every output element, so dropping them reproduces MatMul's
	// per-term zero-skip at dense-kernel cost.
	return matmulFusedNz(s, x, w, bias, relu, nonzeroColsIn(s, x))
}

// matmulFusedDense is the kernel entry for activation matrices (post
// projection or ReLU): no structurally-zero columns worth scanning for,
// so it contracts over every column. Processing zero terms stays
// bitwise-safe (finite weights), so the result is identical to
// matmulFused on the same operands.
func matmulFusedDense(x, w *Tensor, bias []float64, relu bool) *Tensor {
	return matmulFusedDenseIn(nil, x, w, bias, relu)
}

// matmulFusedDenseIn is matmulFusedDense over arena storage.
func matmulFusedDenseIn(s *Scratch, x, w *Tensor, bias []float64, relu bool) *Tensor {
	nz := scratchInts(s, x.C)
	for k := range nz {
		nz[k] = k
	}
	return matmulFusedNz(s, x, w, bias, relu, nz)
}

func matmulFusedNz(s *Scratch, x, w *Tensor, bias []float64, relu bool, nz []int) *Tensor {
	if x.C != w.R {
		panic(fmt.Sprintf("nn: matmulFused %dx%d @ %dx%d", x.R, x.C, w.R, w.C))
	}
	engineGEMMCalls.Add(1)
	engineGEMMRows.Add(uint64(x.R))
	K, C := x.C, w.C
	out := newTensor(s, x.R, C)
	i := 0
	// Row pairs share each weight-row load and double the number of
	// independent accumulator chains in flight.
	for ; i+2 <= x.R; i += 2 {
		a0Row := x.Data[i*K : i*K+K]
		a1Row := x.Data[(i+1)*K : (i+1)*K+K]
		o0 := out.Data[i*C : i*C+C]
		o1 := out.Data[(i+1)*C : (i+1)*C+C]
		n := 0
		for ; n+4 <= len(nz); n += 4 {
			k0, k1, k2, k3 := nz[n], nz[n+1], nz[n+2], nz[n+3]
			p0, p1, p2, p3 := a0Row[k0], a0Row[k1], a0Row[k2], a0Row[k3]
			q0, q1, q2, q3 := a1Row[k0], a1Row[k1], a1Row[k2], a1Row[k3]
			if p0 == 0 && p1 == 0 && p2 == 0 && p3 == 0 &&
				q0 == 0 && q1 == 0 && q2 == 0 && q3 == 0 {
				continue
			}
			b0 := w.Data[k0*C : k0*C+C]
			b1 := w.Data[k1*C : k1*C+C]
			b2 := w.Data[k2*C : k2*C+C]
			b3 := w.Data[k3*C : k3*C+C]
			for j := 0; j < C; j++ {
				bv0, bv1, bv2, bv3 := b0[j], b1[j], b2[j], b3[j]
				v := o0[j]
				v += p0 * bv0
				v += p1 * bv1
				v += p2 * bv2
				v += p3 * bv3
				o0[j] = v
				u := o1[j]
				u += q0 * bv0
				u += q1 * bv1
				u += q2 * bv2
				u += q3 * bv3
				o1[j] = u
			}
		}
		for ; n < len(nz); n++ {
			k := nz[n]
			p, q := a0Row[k], a1Row[k]
			if p == 0 && q == 0 {
				continue
			}
			bRow := w.Data[k*C : k*C+C]
			for j, bv := range bRow {
				o0[j] += p * bv
				o1[j] += q * bv
			}
		}
		epilogue(o0, bias, relu)
		epilogue(o1, bias, relu)
	}
	for ; i < x.R; i++ {
		aRow := x.Data[i*K : i*K+K]
		oRow := out.Data[i*C : i*C+C]
		n := 0
		for ; n+4 <= len(nz); n += 4 {
			k0, k1, k2, k3 := nz[n], nz[n+1], nz[n+2], nz[n+3]
			a0, a1, a2, a3 := aRow[k0], aRow[k1], aRow[k2], aRow[k3]
			if a0 == 0 && a1 == 0 && a2 == 0 && a3 == 0 {
				continue
			}
			b0 := w.Data[k0*C : k0*C+C]
			b1 := w.Data[k1*C : k1*C+C]
			b2 := w.Data[k2*C : k2*C+C]
			b3 := w.Data[k3*C : k3*C+C]
			for j, ov := range oRow {
				v := ov
				v += a0 * b0[j]
				v += a1 * b1[j]
				v += a2 * b2[j]
				v += a3 * b3[j]
				oRow[j] = v
			}
		}
		for ; n < len(nz); n++ {
			k := nz[n]
			av := aRow[k]
			if av == 0 {
				continue
			}
			bRow := w.Data[k*C : k*C+C]
			for j, bv := range bRow {
				oRow[j] += av * bv
			}
		}
		epilogue(oRow, bias, relu)
	}
	return out
}

// CompactRows builds the engine's compacted input directly from feature
// rows: columns that are zero in every row (padding tails, unused one-hot
// slots) are dropped at copy time, so the first GEMM runs the dense
// kernel on the surviving columns only. It returns the compacted tensor
// and the kept column indices (ascending). Dropping an all-zero column
// removes only exact-zero terms from every output sum, so any layer fed
// through a correspondingly gathered weight panel (see FrozenLinear
// ForwardRows) is bitwise identical to the full-width forward.
func CompactRows(rows [][]float64, width int) (*Tensor, []int) {
	return CompactRowsIn(nil, rows, width)
}

// CompactRowsIn is CompactRows over arena storage; the returned tensor
// and column index alias s and are valid until its next Reset.
func CompactRowsIn(s *Scratch, rows [][]float64, width int) (*Tensor, []int) {
	used := scratchInts(s, width)
	cnt := 0
	for _, r := range rows {
		if len(r) != width {
			panic(fmt.Sprintf("nn: CompactRows ragged row %d vs %d", len(r), width))
		}
		if cnt == width {
			break
		}
		for k, v := range r {
			if v != 0 && used[k] == 0 {
				used[k] = 1
				cnt++
			}
		}
	}
	cols := scratchInts(s, width)[:0]
	for k, u := range used {
		if u != 0 {
			cols = append(cols, k)
		}
	}
	if len(cols) == 0 {
		// Degenerate all-zero batch: keep one column so shapes stay valid.
		cols = append(cols, 0)
	}
	x := newTensor(s, len(rows), len(cols))
	for i, r := range rows {
		dst := x.Data[i*len(cols) : (i+1)*len(cols)]
		for n, k := range cols {
			dst[n] = r[k]
		}
	}
	return x, cols
}

// gatherWeightRows copies the weight rows selected by cols into one
// contiguous panel matching a CompactRows input.
func gatherWeightRows(s *Scratch, w *Tensor, cols []int) *Tensor {
	out := newTensor(s, len(cols), w.C)
	for n, k := range cols {
		copy(out.Data[n*w.C:(n+1)*w.C], w.Data[k*w.C:(k+1)*w.C])
	}
	return out
}

// nonzeroColsIn returns the ascending indices of columns with at least
// one nonzero entry. The scan stops early once every column is known
// used, so dense activations pay a few rows of scanning while
// structurally sparse feature batches are detected exactly.
func nonzeroColsIn(s *Scratch, x *Tensor) []int {
	K := x.C
	used := scratchInts(s, K)
	cnt := 0
	for i := 0; i < x.R && cnt < K; i++ {
		row := x.Data[i*K : i*K+K]
		for k, v := range row {
			if v != 0 && used[k] == 0 {
				used[k] = 1
				cnt++
				if cnt == K {
					break
				}
			}
		}
	}
	nz := scratchInts(s, K)[:0]
	for k, u := range used {
		if u != 0 {
			nz = append(nz, k)
		}
	}
	return nz
}

// epilogue applies the fused bias add and ReLU to one finished output
// row — the same values AddBias and ReLU produce as separate passes.
func epilogue(oRow, bias []float64, relu bool) {
	switch {
	case bias != nil && relu:
		for j, bv := range bias {
			// Branchless max: same bits as ReLU's conditional for the
			// finite values the engine contracts on (+0.0 on the zero and
			// negative side either way).
			oRow[j] = max(oRow[j]+bv, 0)
		}
	case bias != nil:
		for j, bv := range bias {
			oRow[j] += bv
		}
	case relu:
		for j, v := range oRow {
			oRow[j] = max(v, 0)
		}
	}
}

// DedupRows returns the distinct rows of a feature matrix in
// first-occurrence order plus the mapping from each original row to its
// representative. Rows compare by exact bit pattern, so substituting a
// representative's results for a duplicate's is always bitwise safe.
func DedupRows(rows [][]float64) (uniq [][]float64, idx []int) {
	idx = make([]int, len(rows))
	uniq = make([][]float64, 0, len(rows))
	seen := make(map[string]int, len(rows)) //pruner:allow hotalloc — the dedup hash is the point: one map per chunk buys back whole projection GEMMs over duplicate rows
	var key []byte
	for i, r := range rows {
		key = key[:0]
		for _, v := range r {
			key = binary.LittleEndian.AppendUint64(key, math.Float64bits(v))
		}
		if j, ok := seen[string(key)]; ok {
			idx[i] = j
			continue
		}
		seen[string(key)] = len(uniq)
		idx[i] = len(uniq)
		uniq = append(uniq, r)
	}
	return uniq, idx
}

// GatherRows expands a deduplicated tensor: row i of the result is src
// row idx[i]. It is autograd-complete — the backward scatter-accumulates
// each output row's gradient into its representative (in ascending output
// row order, so gradients are deterministic) — which is what lets the
// training forwards reuse the inference engine's dedup trick: projecting
// a distinct row once and gathering is bitwise identical in the forward
// and sums the duplicates' gradients in the backward.
func GatherRows(src *Tensor, idx []int) *Tensor {
	out := New(len(idx), src.C)
	for i, j := range idx {
		copy(out.Data[i*src.C:(i+1)*src.C], src.Data[j*src.C:(j+1)*src.C])
	}
	if needsGrad(src) {
		out.enableGrad(func() {
			for i, j := range idx {
				base, obase := j*src.C, i*src.C
				for c := 0; c < src.C; c++ {
					addGrad(src, base+c, out.Grad[obase+c])
				}
			}
		}, src)
	}
	return out
}

// gatherRowsIn is GatherRows for the no-tape path: same copies, no
// backward, output on the arena. Inference inputs never carry gradients
// (FreezeParams), so dropping the tape cannot change a value.
func gatherRowsIn(s *Scratch, src *Tensor, idx []int) *Tensor {
	out := newTensor(s, len(idx), src.C)
	for i, j := range idx {
		copy(out.Data[i*src.C:(i+1)*src.C], src.Data[j*src.C:(j+1)*src.C])
	}
	return out
}

// FrozenLinear is an inference view of a Linear layer: it aliases the
// layer's current weights and drives them through the fused kernel. Build
// it after FreezeParams and use it within one Predict call — it does not
// participate in the tape and must not outlive concurrent training steps.
type FrozenLinear struct {
	w    *Tensor
	bias []float64
}

// Freeze returns the layer's inference view.
func (l *Linear) Freeze() *FrozenLinear {
	return &FrozenLinear{w: l.W, bias: l.B.Data}
}

// Forward computes x@W + b, bitwise identical to Linear.Forward.
func (l *FrozenLinear) Forward(x *Tensor) *Tensor {
	return matmulFused(x, l.w, l.bias, false)
}

// ForwardReLU computes max(0, x@W + b) in one pass, bitwise identical to
// ReLU(Linear.Forward(x)).
func (l *FrozenLinear) ForwardReLU(x *Tensor) *Tensor {
	return matmulFused(x, l.w, l.bias, true)
}

// forwardDenseIn is Forward without the nonzero-column scan, for inputs
// known to be dense activations.
func (l *FrozenLinear) forwardDenseIn(s *Scratch, x *Tensor) *Tensor {
	return matmulFusedDenseIn(s, x, l.w, l.bias, false)
}

// ForwardRows runs the layer directly on feature rows: the input is
// compacted at copy time (CompactRows) and contracted against the
// matching weight panel — bitwise identical to Forward over FromRows.
func (l *FrozenLinear) ForwardRows(rows [][]float64) *Tensor {
	return l.ForwardRowsIn(nil, rows)
}

// ForwardRowsIn is ForwardRows on the arena: zero heap allocations once
// s is warm.
//
//pruner:hotpath
func (l *FrozenLinear) ForwardRowsIn(s *Scratch, rows [][]float64) *Tensor {
	x, cols := CompactRowsIn(s, rows, l.w.R)
	return matmulFusedDenseIn(s, x, gatherWeightRows(s, l.w, cols), l.bias, false)
}

// FrozenMLP is an inference view of an MLP.
type FrozenMLP struct {
	layers []*FrozenLinear
}

// Freeze returns the MLP's inference view.
func (m *MLP) Freeze() *FrozenMLP {
	f := &FrozenMLP{layers: make([]*FrozenLinear, len(m.Layers))}
	for i, l := range m.Layers {
		f.layers[i] = l.Freeze()
	}
	return f
}

// Forward mirrors MLP.Forward: ReLU between layers, none after the last.
// The first layer sees raw feature rows and scans for structurally-zero
// columns; deeper layers see dense activations and skip the scan.
func (m *FrozenMLP) Forward(x *Tensor) *Tensor {
	return m.ForwardIn(nil, x)
}

// ForwardIn is Forward on the arena: zero heap allocations once s is
// warm.
//
//pruner:hotpath
func (m *FrozenMLP) ForwardIn(s *Scratch, x *Tensor) *Tensor {
	for i, l := range m.layers {
		relu := i+1 < len(m.layers)
		if i == 0 {
			x = matmulFusedIn(s, x, l.w, l.bias, relu)
		} else {
			x = matmulFusedDenseIn(s, x, l.w, l.bias, relu)
		}
	}
	return x
}

// ForwardReLU applies ReLU after every layer including the last — the
// ReLU(MLP.Forward(x)) composition the cost models use for embeddings.
func (m *FrozenMLP) ForwardReLU(x *Tensor) *Tensor {
	for i, l := range m.layers {
		if i == 0 {
			x = matmulFused(x, l.w, l.bias, true)
		} else {
			x = matmulFusedDense(x, l.w, l.bias, true)
		}
	}
	return x
}

// ForwardReLURows is ForwardReLU fed directly from feature rows, with the
// first layer contracted over the compacted columns (see ForwardRows).
func (m *FrozenMLP) ForwardReLURows(rows [][]float64) *Tensor {
	return m.ForwardReLURowsIn(nil, rows)
}

// ForwardReLURowsIn is ForwardReLURows on the arena: zero heap
// allocations once s is warm.
//
//pruner:hotpath
func (m *FrozenMLP) ForwardReLURowsIn(s *Scratch, rows [][]float64) *Tensor {
	l0 := m.layers[0]
	x, cols := CompactRowsIn(s, rows, l0.w.R)
	x = matmulFusedDenseIn(s, x, gatherWeightRows(s, l0.w, cols), l0.bias, true)
	for _, l := range m.layers[1:] {
		x = matmulFusedDenseIn(s, x, l.w, l.bias, true)
	}
	return x
}

// FrozenAttention is an inference view of a SelfAttention block.
type FrozenAttention struct {
	q, k, v, o *FrozenLinear
	normG      *Tensor
	normB      *Tensor
	dim        int
}

// Freeze returns the block's inference view.
func (a *SelfAttention) Freeze() *FrozenAttention {
	return &FrozenAttention{
		q:     a.Q.Freeze(),
		k:     a.K.Freeze(),
		v:     a.V.Freeze(),
		o:     a.O.Freeze(),
		normG: a.Norm.G,
		normB: a.Norm.B,
		dim:   a.dim,
	}
}

// ForwardSegments applies the attention block independently to contiguous
// row segments of x (lens summing to x.R): the Q/K/V/O projections and
// the residual layer norm run batched across all segments, while the
// score matmuls and softmax — the only parts that mix rows — stay
// segment-local. Each segment's output is bitwise identical to
// SelfAttention.Forward over that segment alone.
func (a *FrozenAttention) ForwardSegments(x *Tensor, lens []int) *Tensor {
	return a.ForwardSegmentsIn(nil, x, lens)
}

// ForwardSegmentsIn is ForwardSegments on the arena: zero heap
// allocations once s is warm.
//
//pruner:hotpath
func (a *FrozenAttention) ForwardSegmentsIn(s *Scratch, x *Tensor, lens []int) *Tensor {
	return a.forwardFrom(s, x, a.q.forwardDenseIn(s, x), a.k.forwardDenseIn(s, x), a.v.forwardDenseIn(s, x), lens)
}

// ForwardSegmentsDedup is ForwardSegments over a token sequence given in
// deduplicated form: uniq holds the distinct token rows and idx maps each
// expanded row to its distinct representative (see DedupRows). The Q/K/V
// projections run once per distinct row and are gathered back, so batches
// whose tokens repeat heavily — TLP's near-constant one-hots, PaCM's
// zero-padded dataflow rows — skip most projection work. A projection is
// row-wise, so projecting a representative and copying is bitwise
// identical to projecting every duplicate.
func (a *FrozenAttention) ForwardSegmentsDedup(uniq *Tensor, idx []int, lens []int) *Tensor {
	return a.ForwardSegmentsDedupIn(nil, uniq, idx, lens)
}

// ForwardSegmentsDedupIn is ForwardSegmentsDedup on the arena: zero heap
// allocations once s is warm.
//
//pruner:hotpath
func (a *FrozenAttention) ForwardSegmentsDedupIn(s *Scratch, uniq *Tensor, idx []int, lens []int) *Tensor {
	qu := a.q.forwardDenseIn(s, uniq)
	ku := a.k.forwardDenseIn(s, uniq)
	vu := a.v.forwardDenseIn(s, uniq)
	return a.forwardFrom(
		s,
		gatherRowsIn(s, uniq, idx),
		gatherRowsIn(s, qu, idx),
		gatherRowsIn(s, ku, idx),
		gatherRowsIn(s, vu, idx),
		lens,
	)
}

// forwardFrom is the shared attention core over precomputed projections.
// Scores, softmax and the value mix run on one reused scratch row per
// segment — no per-segment tensors — with each value accumulated in the
// same order as the operator chain it replaces
// (SoftmaxRows(Scale(MatMul(qs, ksᵀ))) @ vs).
func (a *FrozenAttention) forwardFrom(s *Scratch, x, q, k, v *Tensor, lens []int) *Tensor {
	engineAttnSegments.Add(uint64(len(lens)))
	C := x.C
	ctx := newTensor(s, x.R, C)
	scale := 1 / math.Sqrt(float64(a.dim))
	maxN := 0
	for _, n := range lens {
		maxN = max(maxN, n)
	}
	scratch := scratchFloats(s, 2*maxN)
	// softmaxRow replicates SoftmaxRows' operation order on one scratch
	// row in place.
	softmaxRow := func(row []float64) {
		m := math.Inf(-1)
		for _, sv := range row {
			m = math.Max(m, sv)
		}
		var sum float64
		for jj, sv := range row {
			e := math.Exp(sv - m)
			row[jj] = e
			sum += e
		}
		for jj := range row {
			row[jj] /= sum
		}
	}
	off := 0
	for _, n := range lens {
		row0, row1 := scratch[:n], scratch[maxN:maxN+n]
		// Query rows go in pairs sharing each key/value row load.
		r := off
		for ; r+2 <= off+n; r += 2 {
			q0 := q.Data[r*C : r*C+C]
			q1 := q.Data[(r+1)*C : (r+1)*C+C]
			// Scaled scores against the segment's keys: the full dot in
			// ascending order, then one multiply — exactly
			// Scale(MatMul(qs, Transpose(ks))).
			for jj := 0; jj < n; jj++ {
				kRow := k.Data[(off+jj)*C : (off+jj)*C+C]
				var s0, s1 float64
				for kk, kv := range kRow {
					s0 += q0[kk] * kv
					s1 += q1[kk] * kv
				}
				row0[jj] = s0 * scale
				row1[jj] = s1 * scale
			}
			softmaxRow(row0)
			softmaxRow(row1)
			// ctx rows = attn @ values, ascending over the segment. A
			// softmax weight is only zero on deep underflow; the exact
			// ±0.0 term it then contributes is harmless (finite values).
			c0 := ctx.Data[r*C : r*C+C]
			c1 := ctx.Data[(r+1)*C : (r+1)*C+C]
			for jj := 0; jj < n; jj++ {
				a0, a1 := row0[jj], row1[jj]
				vRow := v.Data[(off+jj)*C : (off+jj)*C+C]
				for c2, vv := range vRow {
					c0[c2] += a0 * vv
					c1[c2] += a1 * vv
				}
			}
		}
		for ; r < off+n; r++ {
			qRow := q.Data[r*C : r*C+C]
			for jj := 0; jj < n; jj++ {
				kRow := k.Data[(off+jj)*C : (off+jj)*C+C]
				var sc float64
				for kk, kv := range kRow {
					sc += qRow[kk] * kv
				}
				row0[jj] = sc * scale
			}
			softmaxRow(row0)
			cRow := ctx.Data[r*C : r*C+C]
			for jj, av := range row0[:n] {
				vRow := v.Data[(off+jj)*C : (off+jj)*C+C]
				for c2, vv := range vRow {
					cRow[c2] += av * vv
				}
			}
		}
		off += n
	}
	if off != x.R {
		panic(fmt.Sprintf("nn: ForwardSegments lengths sum to %d, tensor has %d rows", off, x.R))
	}
	return addLayerNormRowsIn(s, x, a.o.forwardDenseIn(s, ctx), a.normG, a.normB)
}

// addLayerNormRowsIn computes LayerNormRows(Add(x, y), g, b) without the
// tape: the elementwise sum materialises in ascending index order (Add's
// order) and each row then normalises exactly as LayerNormRows'
// inference branch does, so the result is bitwise identical to the
// operator composition it replaces.
func addLayerNormRowsIn(s *Scratch, x, y, g, b *Tensor) *Tensor {
	shapeCheck("add", x, y)
	const eps = 1e-5
	if g.R != 1 || g.C != x.C || b.R != 1 || b.C != x.C {
		panic("nn: layernorm parameter shape mismatch")
	}
	sum := newTensor(s, x.R, x.C)
	for i := range sum.Data {
		sum.Data[i] = x.Data[i] + y.Data[i]
	}
	n := float64(x.C)
	out := newTensor(s, x.R, x.C)
	for i := 0; i < x.R; i++ {
		var mu float64
		for j := 0; j < x.C; j++ {
			mu += sum.Data[i*x.C+j]
		}
		mu /= n
		var va float64
		for j := 0; j < x.C; j++ {
			d := sum.Data[i*x.C+j] - mu
			va += d * d
		}
		va /= n
		inv := 1 / math.Sqrt(va+eps)
		for j := 0; j < x.C; j++ {
			idx := i*x.C + j
			nv := (sum.Data[idx] - mu) * inv
			out.Data[idx] = nv*g.Data[j] + b.Data[j]
		}
	}
	return out
}

// SegmentSumRowsIn is SegmentSumRows for the no-tape path: rows
// accumulate in the identical order (so results are bitwise identical),
// the backward is dropped, and the output lives on the arena.
//
//pruner:hotpath
func SegmentSumRowsIn(s *Scratch, x *Tensor, lens []int) *Tensor {
	total := 0
	for sg, n := range lens {
		if n <= 0 {
			panic(fmt.Sprintf("nn: SegmentSumRows segment %d has length %d", sg, n))
		}
		total += n
	}
	if total != x.R {
		panic(fmt.Sprintf("nn: SegmentSumRows lengths sum to %d, tensor has %d rows", total, x.R))
	}
	out := newTensor(s, len(lens), x.C)
	row := 0
	for sg, n := range lens {
		oRow := out.Data[sg*x.C : (sg+1)*x.C]
		for r := 0; r < n; r++ {
			xRow := x.Data[row*x.C : (row+1)*x.C]
			for j, v := range xRow {
				oRow[j] += v
			}
			row++
		}
	}
	return out
}

// SegmentMeanRowsIn is SegmentMeanRows for the no-tape path (see
// SegmentSumRowsIn): sum in row order, then one multiply by the
// reciprocal length — bitwise identical to the tape operator.
func SegmentMeanRowsIn(s *Scratch, x *Tensor, lens []int) *Tensor {
	sum := SegmentSumRowsIn(s, x, lens)
	out := newTensor(s, sum.R, sum.C)
	for sg, n := range lens {
		inv := 1 / float64(n)
		for j := 0; j < sum.C; j++ {
			out.Data[sg*sum.C+j] = sum.Data[sg*sum.C+j] * inv
		}
	}
	return out
}

// TanhIn is Tanh for the no-tape path, on the arena.
func TanhIn(s *Scratch, x *Tensor) *Tensor {
	out := newTensor(s, x.R, x.C)
	for i, v := range x.Data {
		out.Data[i] = math.Tanh(v)
	}
	return out
}

// ConcatColsIn is ConcatCols for the no-tape path, on the arena.
func ConcatColsIn(s *Scratch, a, b *Tensor) *Tensor {
	if a.R != b.R {
		panic(fmt.Sprintf("nn: concat rows %d vs %d", a.R, b.R))
	}
	cols := a.C + b.C
	out := newTensor(s, a.R, cols)
	for i := 0; i < a.R; i++ {
		copy(out.Data[i*cols:i*cols+a.C], a.Data[i*a.C:(i+1)*a.C])
		copy(out.Data[i*cols+a.C:(i+1)*cols], b.Data[i*b.C:(i+1)*b.C])
	}
	return out
}
