package nn

import (
	"math"
	"math/rand"
	"testing"
)

// bitwiseEqual asserts two tensors match exactly — the engine's contract
// is bitwise identity, not approximate equality.
func bitwiseEqual(t *testing.T, name string, got, want *Tensor) {
	t.Helper()
	if got.R != want.R || got.C != want.C {
		t.Fatalf("%s: shape %dx%d want %dx%d", name, got.R, got.C, want.R, want.C)
	}
	for i := range want.Data {
		if math.Float64bits(got.Data[i]) != math.Float64bits(want.Data[i]) {
			t.Fatalf("%s: entry %d: %v (bits %x) want %v (bits %x)",
				name, i, got.Data[i], math.Float64bits(got.Data[i]),
				want.Data[i], math.Float64bits(want.Data[i]))
		}
	}
}

// randConst returns a constant tensor with Gaussian entries and a sprinkle
// of exact zeros, exercising the matmul zero-skip path.
func randConst(rng *rand.Rand, r, c int) *Tensor {
	x := New(r, c)
	for i := range x.Data {
		if rng.Intn(5) == 0 {
			continue // exact zero
		}
		x.Data[i] = rng.NormFloat64()
	}
	return x
}

func TestSegmentSumRowsMatchesPerSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	lens := []int{3, 1, 5, 2}
	x := randConst(rng, 11, 7)
	got := SegmentSumRows(x, lens)
	row := 0
	for s, n := range lens {
		seg := RowsView(x, row, row+n)
		want := SumRows(seg)
		for j := 0; j < x.C; j++ {
			if math.Float64bits(got.At(s, j)) != math.Float64bits(want.At(0, j)) {
				t.Fatalf("segment %d col %d: %v want %v", s, j, got.At(s, j), want.At(0, j))
			}
		}
		row += n
	}
}

func TestSegmentMeanRowsMatchesPerSegment(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	lens := []int{4, 2, 6}
	x := randConst(rng, 12, 5)
	got := SegmentMeanRows(x, lens)
	row := 0
	for s, n := range lens {
		want := MeanRows(RowsView(x, row, row+n))
		for j := 0; j < x.C; j++ {
			if math.Float64bits(got.At(s, j)) != math.Float64bits(want.At(0, j)) {
				t.Fatalf("segment %d col %d: %v want %v", s, j, got.At(s, j), want.At(0, j))
			}
		}
		row += n
	}
}

func TestGradSegmentSumRows(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	x := randParam(rng, 6, 3)
	w := randParam(rng, 3, 3)
	checkGrads(t, "segmentsumrows", []*Tensor{x}, func() *Tensor {
		s := SegmentSumRows(x, []int{2, 3, 1})
		return MeanAll(Mul(s, w))
	})
}

func TestGradSegmentMeanRows(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	x := randParam(rng, 5, 4)
	w := randParam(rng, 2, 4)
	checkGrads(t, "segmentmeanrows", []*Tensor{x}, func() *Tensor {
		s := SegmentMeanRows(x, []int{4, 1})
		return MeanAll(Mul(s, w))
	})
}

func TestSegmentOpsPanicOnBadLengths(t *testing.T) {
	x := New(4, 2)
	for _, tc := range []struct {
		name string
		lens []int
	}{
		{"short", []int{1, 2}},
		{"long", []int{3, 3}},
		{"zero", []int{4, 0}},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			SegmentSumRows(x, tc.lens)
		}()
	}
}

func TestMatMulFusedMatchesOps(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	// Contraction widths around the 4-wide block edge exercise the tail
	// loop; sprinkled zeros exercise the all-zero-block skip and the
	// mixed-block ±0.0 path.
	for _, shape := range [][3]int{{5, 7, 9}, {1, 4, 4}, {3, 11, 2}, {8, 3, 13}, {6, 16, 8}} {
		r, k, c := shape[0], shape[1], shape[2]
		a := randConst(rng, r, k)
		w := randConst(rng, k, c)
		bias := make([]float64, c)
		for j := range bias {
			bias[j] = rng.NormFloat64()
		}
		bt := FromVec(bias)
		bitwiseEqual(t, "fused plain", matmulFused(a, w, nil, false), MatMul(a, w))
		bitwiseEqual(t, "fused bias", matmulFused(a, w, bias, false), AddBias(MatMul(a, w), bt))
		bitwiseEqual(t, "fused bias+relu", matmulFused(a, w, bias, true), ReLU(AddBias(MatMul(a, w), bt)))
		bitwiseEqual(t, "fused relu", matmulFused(a, w, nil, true), ReLU(MatMul(a, w)))
	}
}

// TestMatMulFusedAllZeroRow pins the sparse fast path: rows of exact
// zeros (feature padding) must produce the same bits as the tape kernel.
func TestMatMulFusedAllZeroRow(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	a := New(3, 8) // all zeros
	a.Data[2*8+5] = rng.NormFloat64()
	w := randConst(rng, 8, 6)
	bitwiseEqual(t, "zero rows", matmulFused(a, w, nil, false), MatMul(a, w))
}

func TestRowsViewSharesData(t *testing.T) {
	x := randConst(rand.New(rand.NewSource(26)), 6, 4)
	v := RowsView(x, 2, 5)
	if v.R != 3 || v.C != 4 {
		t.Fatalf("view shape %dx%d", v.R, v.C)
	}
	x.Set(3, 1, 42)
	if v.At(1, 1) != 42 {
		t.Fatal("view must alias the parent's data")
	}
	rng := rand.New(rand.NewSource(27))
	p := Param(rng, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("RowsView of a parameter should panic")
		}
	}()
	RowsView(p, 0, 1)
}

// TestFrozenModulesBitwiseIdentical pins the engine's core contract: each
// frozen snapshot's forward is bitwise identical to the Module forward it
// replaces, run under FreezeParams.
func TestFrozenModulesBitwiseIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(28))

	lin := NewLinear(rng, 9, 6)
	mlp := NewMLP(rng, 9, 16, 16, 1)
	attn := NewSelfAttention(rng, 6)
	var params []*Tensor
	params = append(params, lin.Params()...)
	params = append(params, mlp.Params()...)
	params = append(params, attn.Params()...)
	defer FreezeParams(params)()

	x := randConst(rng, 12, 9)
	bitwiseEqual(t, "frozen linear", lin.Freeze().Forward(x), lin.Forward(x))
	bitwiseEqual(t, "frozen linear+relu", lin.Freeze().ForwardReLU(x), ReLU(lin.Forward(x)))
	bitwiseEqual(t, "frozen mlp", mlp.Freeze().Forward(x), mlp.Forward(x))
	bitwiseEqual(t, "frozen mlp+relu", mlp.Freeze().ForwardReLU(x), ReLU(mlp.Forward(x)))

	// Attention over segments vs per-segment module forwards.
	lens := []int{4, 3, 5}
	tokens := randConst(rng, 12, 6)
	got := attn.Freeze().ForwardSegments(tokens, lens)
	row := 0
	for s, n := range lens {
		want := attn.Forward(RowsView(tokens, row, row+n))
		seg := RowsView(got, row, row+n)
		bitwiseEqual(t, "frozen attention segment "+string(rune('0'+s)), seg, want)
		row += n
	}
}

// TestInferenceForwardBuildsNoTape verifies the no-tape property end to
// end: under FreezeParams an op-composed forward and the engine's frozen
// forward both come back without autograd state.
func TestInferenceForwardBuildsNoTape(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	mlp := NewMLP(rng, 4, 8, 1)
	restore := FreezeParams(mlp.Params())
	defer restore()
	x := randConst(rng, 3, 4)
	for name, y := range map[string]*Tensor{
		"module": SegmentSumRows(ReLU(mlp.Forward(x)), []int{1, 2}),
		"frozen": mlp.Freeze().Forward(x),
	} {
		if y.requiresGrad || y.back != nil || y.prev != nil || y.Grad != nil {
			t.Fatalf("%s inference forward carries tape state", name)
		}
	}
}
