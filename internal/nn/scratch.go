// Scratch: the grow-only arena behind the zero-allocation inference
// path. The batched cost-model engine calls the frozen kernels once per
// candidate chunk, thousands of times per tuning round; with a warmed
// Scratch every *In kernel variant runs without touching the heap
// (pinned by the TestAlloc* gates and the hotalloc analyzer), so the
// verify stage stops feeding the garbage collector.
//
// A Scratch hands out zeroed buffers and reset tensor headers in call
// order and is rewound wholesale with Reset — allocation happens only
// while a buffer sequence is still growing toward its steady-state
// shape. Buffers alias memory owned by the Scratch: results needed
// beyond the next Reset must be copied out (see scoresOut in
// costmodel). A Scratch is single-goroutine state; concurrent engine
// chunks draw distinct instances from a free list.

package nn

// Scratch is a grow-only arena of float64/int buffers and Tensor
// headers, reused across frozen-kernel calls. The zero value is ready to
// use.
type Scratch struct {
	floatBufs [][]float64
	floatN    int
	intBufs   [][]int
	intN      int
	tensors   []*Tensor
	tensorN   int
}

// Reset rewinds the arena: every buffer and tensor handed out since the
// last Reset is reclaimed (and its memory retained for reuse).
func (s *Scratch) Reset() {
	s.floatN, s.intN, s.tensorN = 0, 0, 0
}

// floats returns a zeroed float buffer of length n. The slot grows when
// n exceeds its previous capacity and is reused otherwise.
func (s *Scratch) floats(n int) []float64 {
	if s.floatN < len(s.floatBufs) && cap(s.floatBufs[s.floatN]) >= n {
		buf := s.floatBufs[s.floatN][:n]
		s.floatN++
		clear(buf)
		return buf
	}
	buf := make([]float64, n)
	if s.floatN < len(s.floatBufs) {
		s.floatBufs[s.floatN] = buf
	} else {
		s.floatBufs = append(s.floatBufs, buf) //pruner:allow hotalloc — arena growth: amortized away once the buffer sequence reaches steady-state shape
	}
	s.floatN++
	return buf
}

// ints returns a zeroed int buffer of length n (same reuse contract as
// floats).
func (s *Scratch) ints(n int) []int {
	if s.intN < len(s.intBufs) && cap(s.intBufs[s.intN]) >= n {
		buf := s.intBufs[s.intN][:n]
		s.intN++
		clear(buf)
		return buf
	}
	buf := make([]int, n)
	if s.intN < len(s.intBufs) {
		s.intBufs[s.intN] = buf
	} else {
		s.intBufs = append(s.intBufs, buf) //pruner:allow hotalloc — arena growth: amortized away once the buffer sequence reaches steady-state shape
	}
	s.intN++
	return buf
}

// tensor returns a zeroed r x c tensor whose Data aliases arena memory.
// The header itself is reused too, with no tape state: scratch tensors
// never carry gradients.
func (s *Scratch) tensor(r, c int) *Tensor {
	var t *Tensor
	if s.tensorN < len(s.tensors) {
		t = s.tensors[s.tensorN]
	} else {
		t = &Tensor{}
		s.tensors = append(s.tensors, t) //pruner:allow hotalloc — arena growth: amortized away once the header sequence reaches steady-state shape
	}
	s.tensorN++
	t.R, t.C = r, c
	t.Data = s.floats(r * c)
	t.Grad = nil
	t.requiresGrad = false
	t.back = nil
	t.prev = nil
	return t
}

// newTensor is the allocation seam every frozen kernel output goes
// through: arena-backed when a Scratch is supplied, a fresh heap tensor
// when s is nil (the drop-in compatible slow path).
func newTensor(s *Scratch, r, c int) *Tensor {
	if s == nil {
		return New(r, c)
	}
	return s.tensor(r, c)
}

// scratchFloats is the nil-tolerant spelling of Scratch.floats for
// kernels that accept an optional arena.
func scratchFloats(s *Scratch, n int) []float64 {
	if s == nil {
		return make([]float64, n)
	}
	return s.floats(n)
}

// scratchInts is the nil-tolerant spelling of Scratch.ints.
func scratchInts(s *Scratch, n int) []int {
	if s == nil {
		return make([]int, n)
	}
	return s.ints(n)
}
