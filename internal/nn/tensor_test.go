package nn

import (
	"math"
	"math/rand"
	"testing"
)

// numericGrad estimates d(loss)/d(x[idx]) by central differences, where
// loss is rebuilt from scratch by fn.
func numericGrad(x *Tensor, idx int, fn func() *Tensor) float64 {
	const h = 1e-5
	orig := x.Data[idx]
	x.Data[idx] = orig + h
	lp := fn().Data[0]
	x.Data[idx] = orig - h
	lm := fn().Data[0]
	x.Data[idx] = orig
	return (lp - lm) / (2 * h)
}

// checkGrads verifies analytic gradients of loss w.r.t. every param entry.
func checkGrads(t *testing.T, name string, params []*Tensor, fn func() *Tensor) {
	t.Helper()
	for _, p := range params {
		for i := range p.Grad {
			p.Grad[i] = 0
		}
	}
	loss := fn()
	Backward(loss)
	for pi, p := range params {
		for i := range p.Data {
			want := numericGrad(p, i, fn)
			got := p.Grad[i]
			if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
				t.Errorf("%s: param %d entry %d: grad %g want %g", name, pi, i, got, want)
				return
			}
		}
	}
}

func randParam(rng *rand.Rand, r, c int) *Tensor {
	p := Param(rng, r, c)
	for i := range p.Data {
		p.Data[i] = rng.NormFloat64()
	}
	return p
}

func TestGradMatMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randParam(rng, 3, 4)
	b := randParam(rng, 4, 2)
	checkGrads(t, "matmul", []*Tensor{a, b}, func() *Tensor {
		return MeanAll(Mul(MatMul(a, b), MatMul(a, b)))
	})
}

func TestGradAddBias(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randParam(rng, 3, 5)
	b := randParam(rng, 1, 5)
	checkGrads(t, "addbias", []*Tensor{x, b}, func() *Tensor {
		return MeanAll(Mul(AddBias(x, b), AddBias(x, b)))
	})
}

func TestGradActivations(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct {
		name string
		f    func(*Tensor) *Tensor
	}{
		{"relu", ReLU},
		{"tanh", Tanh},
		{"sigmoid", Sigmoid},
	} {
		x := randParam(rng, 4, 3)
		// Shift away from the ReLU kink for stable numeric grads.
		for i := range x.Data {
			if math.Abs(x.Data[i]) < 1e-2 {
				x.Data[i] += 0.1
			}
		}
		checkGrads(t, tc.name, []*Tensor{x}, func() *Tensor {
			y := tc.f(x)
			return MeanAll(Mul(y, y))
		})
	}
}

func TestGradSoftmaxRows(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randParam(rng, 3, 5)
	w := randParam(rng, 3, 5)
	checkGrads(t, "softmax", []*Tensor{x}, func() *Tensor {
		return MeanAll(Mul(SoftmaxRows(x), w))
	})
}

func TestGradTransposeConcatSum(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randParam(rng, 3, 2)
	b := randParam(rng, 3, 4)
	checkGrads(t, "transpose+concat+sum", []*Tensor{a, b}, func() *Tensor {
		c := ConcatCols(a, b) // 3x6
		ct := Transpose(c)    // 6x3
		s := SumRows(ct)      // 1x3
		return MeanAll(Mul(s, s))
	})
}

func TestGradConcatRows(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randParam(rng, 2, 3)
	b := randParam(rng, 1, 3)
	checkGrads(t, "concatrows", []*Tensor{a, b}, func() *Tensor {
		c := ConcatRows(a, b)
		return MeanAll(Mul(c, c))
	})
}

func TestGradLayerNorm(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randParam(rng, 3, 6)
	g := randParam(rng, 1, 6)
	b := randParam(rng, 1, 6)
	checkGrads(t, "layernorm", []*Tensor{x, g, b}, func() *Tensor {
		y := LayerNormRows(x, g, b)
		return MeanAll(Mul(y, y))
	})
}

func TestGradSelfAttention(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	attn := NewSelfAttention(rng, 4)
	x := randParam(rng, 3, 4)
	params := append([]*Tensor{x}, attn.Params()...)
	checkGrads(t, "selfattention", params, func() *Tensor {
		y := attn.Forward(x)
		return MeanAll(Mul(y, y))
	})
}

func TestGradScaleSubAdd(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := randParam(rng, 2, 2)
	b := randParam(rng, 2, 2)
	checkGrads(t, "scale/sub/add", []*Tensor{a, b}, func() *Tensor {
		return MeanAll(Mul(Add(Scale(a, 1.7), Sub(a, b)), b))
	})
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	x := randParam(rng, 5, 7)
	y := SoftmaxRows(x)
	for i := 0; i < y.R; i++ {
		var sum float64
		for j := 0; j < y.C; j++ {
			v := y.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %g", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("row %d sums to %g", i, sum)
		}
	}
}

func TestFreezeParamsBuildsNoGraph(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	w := Param(rng, 2, 2)
	x := New(1, 2)
	x.Data[0], x.Data[1] = 1, 2
	restore := FreezeParams([]*Tensor{w})
	y := MatMul(x, w)
	if y.requiresGrad || y.back != nil {
		t.Fatal("frozen-parameter output should not carry graph state")
	}
	restore()
	y = MatMul(x, w)
	if !y.requiresGrad {
		t.Fatal("restore must re-enable graph construction")
	}
}

func TestBackwardScalarOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	w := Param(rng, 2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("Backward on a non-scalar should panic")
		}
	}()
	Backward(w)
}

func TestShapePanics(t *testing.T) {
	a := New(2, 3)
	b := New(2, 3)
	for _, tc := range []struct {
		name string
		f    func()
	}{
		{"matmul", func() { MatMul(a, b) }},
		{"addbias", func() { AddBias(a, New(1, 2)) }},
		{"mul", func() { Mul(a, New(3, 2)) }},
		{"concatrows", func() { ConcatRows(a, New(2, 4)) }},
		{"new", func() { New(0, 1) }},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.f()
		}()
	}
}

func TestGradAccumulationAcrossUses(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	x := randParam(rng, 1, 1)
	// loss = (x + x)^2 => dloss/dx = 8x
	loss := MeanAll(Mul(Add(x, x), Add(x, x)))
	Backward(loss)
	want := 8 * x.Data[0]
	if math.Abs(x.Grad[0]-want) > 1e-9 {
		t.Fatalf("grad %g want %g", x.Grad[0], want)
	}
}
