package pruner

import (
	"bytes"
	"context"
	"math"
	"testing"
)

// TestSaveLoadModelRoundtrip pins the model-bundle format behind the
// -model-out/-model-in CLI flags: kind plus bitwise-identical weights,
// with architecture-mismatched or unknown bundles rejected.
func TestSaveLoadModelRoundtrip(t *testing.T) {
	train, err := GenerateDataset(context.Background(), T4, []string{"dcgan"}, 40, 3)
	if err != nil {
		t.Fatal(err)
	}
	_, pre, err := PretrainModel("tlp", train, 2, 3)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := SaveModel(&buf, pre); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModel(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != "tlp" || len(got.Weights) != len(pre.Weights) {
		t.Fatalf("bundle mangled: kind %q, %d weights", got.Kind, len(got.Weights))
	}
	for i, w := range pre.Weights {
		for j := range w.Data {
			if w.Data[j] != got.Weights[i].Data[j] {
				t.Fatalf("weight %d[%d] differs after roundtrip", i, j)
			}
		}
	}

	if err := SaveModel(&buf, nil); err == nil {
		t.Error("nil bundle should not save")
	}
	if err := SaveModel(&buf, &Pretrained{Kind: "xgboost", Weights: pre.Weights}); err == nil {
		t.Error("unknown kind should not save")
	}
	if _, err := LoadModel(bytes.NewReader([]byte("not a bundle"))); err == nil {
		t.Error("garbage bundle should not load")
	}
}

func TestLoadNetworkAndNames(t *testing.T) {
	names := NetworkNames()
	if len(names) < 15 {
		t.Fatalf("only %d networks registered", len(names))
	}
	for _, n := range names {
		if _, err := LoadNetwork(n); err != nil {
			t.Errorf("LoadNetwork(%q): %v", n, err)
		}
	}
	if _, err := LoadNetwork("vgg16"); err == nil {
		t.Error("unknown network should error")
	}
}

func TestDeviceByNameFacade(t *testing.T) {
	for _, n := range []string{"a100", "titanv", "orin", "k80", "t4"} {
		if _, err := DeviceByName(n); err != nil {
			t.Errorf("DeviceByName(%q): %v", n, err)
		}
	}
}

func TestTuneRequiresPretrained(t *testing.T) {
	net, _ := LoadNetwork("bert_tiny")
	for _, m := range []Method{MethodMoAPruner, MethodTenSetMLP, MethodTLP, MethodPrunerOffline} {
		if _, err := Tune(A100, net, Config{Method: m, Trials: 10}); err == nil {
			t.Errorf("method %s without pretrained weights should error", m)
		}
	}
	if _, err := Tune(A100, net, Config{Method: "magic", Trials: 10}); err == nil {
		t.Error("unknown method should error")
	}
	// Kind mismatch.
	ds, err := GenerateDataset(context.Background(), K80, []string{"dcgan"}, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	_, pre, err := PretrainModel("tensetmlp", ds, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Tune(A100, net, Config{Method: MethodMoAPruner, Trials: 10, Pretrained: pre}); err == nil {
		t.Error("pacm method with mlp weights should error")
	}
}

func TestEndToEndFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end tuning")
	}
	net, err := LoadNetwork("bert_tiny")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Tune(A100, net, Config{
		Method:   MethodPruner,
		Trials:   60,
		Seed:     1,
		MaxTasks: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res.FinalLatency, 1) || res.FinalLatency <= 0 {
		t.Fatalf("final latency %g", res.FinalLatency)
	}
	if len(res.Curve) == 0 {
		t.Fatal("no tuning curve")
	}

	// Framework baselines are instant and positive.
	for _, fw := range []string{"pytorch", "triton", "tensorrt", "cudalib"} {
		lat, err := FrameworkLatency(fw, A100, net)
		if err != nil || lat <= 0 {
			t.Errorf("FrameworkLatency(%s): %g, %v", fw, lat, err)
		}
	}
	if _, err := FrameworkLatency("onnxruntime", A100, net); err == nil {
		t.Error("unknown framework should error")
	}
}

func TestPretrainAndTopK(t *testing.T) {
	if testing.Short() {
		t.Skip("training")
	}
	train, err := GenerateDataset(context.Background(), T4, []string{"dcgan"}, 60, 2)
	if err != nil {
		t.Fatal(err)
	}
	m, pre, err := PretrainModel("pacm", train, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Kind != "pacm" || len(pre.Weights) == 0 {
		t.Fatal("bad pretrained bundle")
	}
	top1 := EvaluateTopK(m, train, 1)
	if top1 <= 0 || top1 > 1 {
		t.Fatalf("Top-1 on train data = %g, want (0,1]", top1)
	}
	if _, _, err := PretrainModel("xgboost", train, 1, 1); err == nil {
		t.Error("unknown model kind should error")
	}
}
