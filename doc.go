// Package pruner is a Go reproduction of "Pruner: A Draft-then-Verify
// Exploration Mechanism to Accelerate Tensor Program Tuning" (ASPLOS
// 2025).
//
// The package is the stable facade over the library's internals: GPU
// device models, DNN workloads partitioned into tuning tasks, the
// Draft-then-Verify search mechanism (Latent Schedule Explorer +
// Pattern-aware Cost Model), the MoA-Pruner momentum online adaptation,
// the Ansor / MetaSchedule / Roller / TenSetMLP / TLP baselines, a
// simulated measurement substrate standing in for real GPUs, and the
// TenSet-style dataset tooling with Top-k / Best-k metrics.
//
// Quick start:
//
//	net, _ := pruner.LoadNetwork("resnet50")
//	res, _ := pruner.Tune(pruner.A100, net, pruner.Config{
//		Method: pruner.MethodPruner,
//		Trials: 2000,
//	})
//	fmt.Printf("latency: %.3f ms\n", res.FinalLatency*1e3)
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured record of every reproduced table and figure.
package pruner
