// Package pruner is a Go reproduction of "Pruner: A Draft-then-Verify
// Exploration Mechanism to Accelerate Tensor Program Tuning" (ASPLOS
// 2025).
//
// The package is the stable facade over the library's internals: GPU
// device models, DNN workloads partitioned into tuning tasks, the
// Draft-then-Verify search mechanism (Latent Schedule Explorer +
// Pattern-aware Cost Model), the MoA-Pruner momentum online adaptation,
// the Ansor / MetaSchedule / Roller / TenSetMLP / TLP baselines, a
// simulated measurement substrate standing in for real GPUs, and the
// TenSet-style dataset tooling with Top-k / Best-k metrics.
//
// Quick start:
//
//	net, _ := pruner.LoadNetwork("resnet50")
//	res, _ := pruner.Tune(pruner.A100, net, pruner.Config{
//		Method: pruner.MethodPruner,
//		Trials: 2000,
//	})
//	fmt.Printf("latency: %.3f ms\n", res.FinalLatency*1e3)
//
// Sessions run on a worker pool sized by Config.Parallelism (default:
// all CPUs). Candidate drafting, cost-model inference and simulated
// measurement fan out across the pool while every random draw stays on
// deterministic per-task streams, so a fixed Config.Seed produces a
// bitwise-identical Result at any worker count — Parallelism: 1 is only
// ever slower, never different. The same contract extends to sessions
// seeded with Config.WarmStart records and observed via Config.Progress
// or cancelled via Config.Ctx.
//
// Measurement is pluggable (Config.Measurer): the default in-process
// simulator adapter, or a NewFleet of remote cmd/pruner-measure workers
// reached over HTTP — byte-identical results either way, because
// backends return true latencies and the session draws measurement
// noise from its own seeded streams. Config.PipelineDepth overlaps a
// round's measurement with the next round's search and the online fit
// (results committed in strict round order; depth 1 reproduces the
// serial loop bitwise, any fixed depth is bitwise reproducible at any
// Parallelism).
//
// Tuning-as-a-service: the cmd/pruner-serve daemon exposes tuning over
// HTTP with SSE progress, persists every measurement in a durable store,
// warm-starts new sessions from history, answers repeat requests for
// an already-tuned (device, network) from the store without searching,
// and dispatches measurement batches over registered pruner-measure
// workers. See API.md for the endpoint reference.
//
// Offline cost-model weights move between processes as bundles:
// SaveModel/LoadModel (and the pruner-tune -model-out / -model-in and
// pruner-serve -model-in flags) let one process pretrain and every
// later run — including the daemon's pretrained-weight methods — reuse
// the weights instead of re-pretraining.
//
// The determinism contract is machine-checked: cmd/pruner-vet (run by
// `make lint` and CI, backed by the stdlib-only internal/lint
// framework) enforces that no code draws from the process-global
// math/rand source, performs order-sensitive effects under map
// iteration, launches goroutines outside the internal/parallel pool, or
// reads the wall clock in a deterministic layer; see DESIGN.md §10.
//
// See DESIGN.md for the system inventory, the simulator-substitution
// rationale, the store/daemon architecture (§6), the batched inference
// (§7) and training (§8) engines, the measurement subsystem +
// pipelined round engine (§9), the enforced determinism contract
// (§10), and EXPERIMENTS.md for the experiment map and the
// paper-vs-measured record.
package pruner
