# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# targets. The repo is stdlib-only — no dependencies to fetch.

GO ?= go

.PHONY: all build vet test race serve serve-e2e measure-e2e bench bench-smoke bench-parallel clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel runtime's packages under the race detector (slow but the
# strongest check that scoring/measurement fan-out stays data-race-free).
race:
	$(GO) test -race ./internal/tuner/... ./internal/search/... \
		./internal/parallel/... ./internal/nn/... ./internal/experiments/... \
		./internal/store/... ./internal/server/... ./internal/measure/...

# Run the tuning daemon locally (see API.md for the endpoints).
serve:
	$(GO) run ./cmd/pruner-serve -addr :8149 -store pruner-store

# The daemon's end-to-end suite (submit -> SSE -> cache hit) under -race.
serve-e2e:
	$(GO) test -race -v ./internal/server/... ./internal/store/...

# The measurement-fleet end-to-end suite under -race: pruner-serve with a
# loopback pruner-measure worker (register -> submit -> fleet-measured
# result byte-identical to the simulator), plus the wire-fidelity and
# pipeline determinism contracts.
measure-e2e:
	$(GO) test -race -v -run 'TestFleet|TestMeasurer|TestWorkerFleetMatchesSimulator|TestTunePipeline' \
		./internal/server/... ./internal/measure/... ./internal/tuner/...

# Regenerate the scaled evaluation (every paper table/figure).
bench:
	$(GO) test -bench=. -benchtime=1x -timeout=120m .

# CI's benchmark smoke: every internal benchmark once (incl. the
# verify-stage BenchmarkPredictBatched, the training-engine BenchmarkFit
# and the BenchmarkTunePipeline depth sweep) plus a bounded root subset.
bench-smoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/...
	$(GO) test -run='^$$' -bench='BenchmarkTuneParallel|BenchmarkAblation_SAvsOracle' -benchtime=1x -timeout=20m .

# Just the worker-count sweep for BENCH_*.json snapshots.
bench-parallel:
	$(GO) test -bench=BenchmarkTuneParallel -benchtime=1x .

clean:
	$(GO) clean
	rm -rf .cache
