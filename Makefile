# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# targets. The repo is stdlib-only — no dependencies to fetch; even the
# twelve determinism/concurrency/wire contract analyzers (`make lint`,
# cmd/pruner-vet) are built on go/ast + go/types alone, including the
# whole-module call-graph generation (ctxflow, lockheld, hotalloc,
# errdrop), the def-use dataflow generation (clocktaint, lockorder,
# wireshape) and its measured zero-allocation hot-path gate (the
# TestAlloc* AllocsPerRun tests run by bench-smoke).

GO ?= go

.PHONY: all build vet lint lint-cover wire-check wire-lock test race serve serve-e2e measure-e2e profile bench bench-smoke bench-parallel fuzz-smoke clean

all: vet lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The determinism, concurrency & wire contract: pruner-vet runs all
# twelve internal/lint analyzers — the per-package generation (exhaust,
# globalrand, maprange, rawgo, walltime), the call-graph generation
# (ctxflow, errdrop, hotalloc, lockheld) and the def-use dataflow
# generation (clocktaint, lockorder, wireshape) — over the whole module
# and fails on any diagnostic, malformed directive, or unused
# //pruner:allow suppression. See DESIGN.md §10, §12 and §13;
# `pruner-vet -json` emits the same diagnostics (suppressed included)
# machine-readably.
lint:
	$(GO) build ./cmd/pruner-vet ./internal/lint
	$(GO) run ./cmd/pruner-vet ./...

# The wire contract alone: fails on any schema drift between the live
# encoder-reachable types and the checked-in wire.lock. Breaking drift
# (removed/renamed fields, wire-name or type changes) must be landed
# deliberately via `make wire-lock`; additive drift is a notice until
# the lock is regenerated. See API.md "Wire compatibility".
wire-check:
	$(GO) run ./cmd/pruner-vet -checks wireshape ./...

# Regenerate wire.lock from the live wire schema after a reviewed
# schema change.
wire-lock:
	$(GO) run ./cmd/pruner-vet -write-wire ./...

# Coverage gate for the analyzers themselves: internal/lint must keep
# total statement coverage at or above the floor, so new analyzers land
# with fixtures instead of silently untested paths.
LINT_COVER_FLOOR := 80
lint-cover:
	$(GO) test -coverprofile=lint.cover ./internal/lint
	@$(GO) tool cover -func=lint.cover | awk -v floor=$(LINT_COVER_FLOOR) \
		'/^total:/ { sub(/%/, "", $$3); if ($$3+0 < floor) { printf "internal/lint coverage %.1f%% is below the %d%% floor\n", $$3, floor; exit 1 } \
		else printf "internal/lint coverage %.1f%% (floor %d%%)\n", $$3, floor }'

test:
	$(GO) test ./...

# Every internal package under the race detector (slow but the strongest
# check that scoring/measurement fan-out stays data-race-free). The list
# is the ./internal/... pattern itself, so a newly added package cannot
# be forgotten the way a hardcoded list could.
race:
	$(GO) test -race ./internal/...

# Run the tuning daemon locally (see API.md for the endpoints).
serve:
	$(GO) run ./cmd/pruner-serve -addr :8149 -store pruner-store

# The daemon's end-to-end suite (submit -> SSE -> cache hit) under -race.
serve-e2e:
	$(GO) test -race -v ./internal/server/... ./internal/store/...

# The measurement-fleet end-to-end suite under -race: pruner-serve with a
# loopback pruner-measure worker (register -> submit -> fleet-measured
# result byte-identical to the simulator), plus the wire-fidelity and
# pipeline determinism contracts, plus the mid-session /metrics scrape of
# daemon AND worker (TestMetrics*: exposition validated with the strict
# stdlib parser, failing on empty or malformed output).
measure-e2e:
	$(GO) test -race -v -run 'TestFleet|TestMeasurer|TestWorkerFleetMatchesSimulator|TestTunePipeline|TestMetrics|TestObservability' \
		./internal/server/... ./internal/measure/... ./internal/tuner/...
	$(GO) test -race ./internal/obs/...

# Profile a representative tuning session: CPU profile + span trace from
# one pruner-tune run, ready for `go tool pprof cpu.prof`.
profile:
	$(GO) test -run '^TestTunePipelineDepth1MatchesPreRefactorGolden$$' -cpuprofile cpu.prof ./internal/tuner/
	$(GO) run ./cmd/pruner-tune -net resnet50 -trials 40 -max-tasks 2 -trace-out trace.json
	@echo "wrote cpu.prof (go tool pprof cpu.prof) and trace.json"

# Regenerate the scaled evaluation (every paper table/figure).
bench:
	$(GO) test -bench=. -benchtime=1x -timeout=120m .

# CI's benchmark smoke: every internal benchmark once (incl. the
# verify-stage BenchmarkPredictBatched, the training-engine BenchmarkFit,
# the BenchmarkTunePipeline depth sweep and the fixed-vs-adaptive
# BenchmarkTuneAdaptive measured-candidate comparison) plus a bounded
# root subset.
# The first line is the zero-allocation gate (DESIGN.md §12): the
# TestAlloc* tests pin the warmed *In inference kernels to 0 heap
# allocations per run via testing.AllocsPerRun — the dynamic cross-check
# of the static hotalloc analyzer.
bench-smoke:
	$(GO) test -run='^TestAlloc' -count=1 ./internal/nn
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/...
	$(GO) test -run='^$$' -bench='BenchmarkTuneParallel|BenchmarkAblation_SAvsOracle' -benchtime=1x -timeout=20m .

# Just the worker-count sweep for BENCH_*.json snapshots.
bench-parallel:
	$(GO) test -bench=BenchmarkTuneParallel -benchtime=1x .

# Short fuzz pass over the record codec (the store's segment format and
# the fleet's wire format), the store's torn-tail segment replay, and
# the hand-editable wire.lock parser. The seed corpora also run as
# plain tests under `make test`.
fuzz-smoke:
	$(GO) test ./internal/measure -run '^$$' -fuzz '^FuzzCodecRoundTrip$$' -fuzztime 10s
	$(GO) test ./internal/measure -run '^$$' -fuzz '^FuzzReadRecords$$' -fuzztime 10s
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzSegmentIndexTornTail$$' -fuzztime 10s
	$(GO) test ./internal/lint -run '^$$' -fuzz '^FuzzWireLockParse$$' -fuzztime 10s

clean:
	$(GO) clean
	rm -rf .cache
	rm -f lint.cover
