# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# targets. The repo is stdlib-only — no dependencies to fetch.

GO ?= go

.PHONY: all build vet test race bench bench-parallel clean

all: vet build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The parallel runtime's packages under the race detector (slow but the
# strongest check that scoring/measurement fan-out stays data-race-free).
race:
	$(GO) test -race ./internal/tuner/... ./internal/search/... \
		./internal/parallel/... ./internal/nn/... ./internal/experiments/...

# Regenerate the scaled evaluation (every paper table/figure).
bench:
	$(GO) test -bench=. -benchtime=1x -timeout=120m .

# Just the worker-count sweep for BENCH_*.json snapshots.
bench-parallel:
	$(GO) test -bench=BenchmarkTuneParallel -benchtime=1x .

clean:
	$(GO) clean
	rm -rf .cache
