# Developer entry points; CI (.github/workflows/ci.yml) runs the same
# targets. The repo is stdlib-only — no dependencies to fetch; even the
# eight determinism/concurrency contract analyzers (`make lint`,
# cmd/pruner-vet) are built on go/ast + go/types alone, including the
# whole-module call-graph generation (ctxflow, lockheld, hotalloc,
# errdrop) and its measured zero-allocation hot-path gate (the TestAlloc*
# AllocsPerRun tests run by bench-smoke).

GO ?= go

.PHONY: all build vet lint test race serve serve-e2e measure-e2e profile bench bench-smoke bench-parallel fuzz-smoke clean

all: vet lint build test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The determinism & concurrency contract: pruner-vet runs all eight
# internal/lint analyzers — the per-package generation (globalrand,
# maprange, rawgo, walltime) and the call-graph generation (ctxflow,
# errdrop, hotalloc, lockheld) — over the whole module and fails on any
# diagnostic, malformed directive, or unused //pruner:allow suppression.
# See DESIGN.md §10 and §12; `pruner-vet -json` emits the same
# diagnostics (suppressed included) machine-readably.
lint:
	$(GO) build ./cmd/pruner-vet ./internal/lint
	$(GO) run ./cmd/pruner-vet ./...

test:
	$(GO) test ./...

# Every internal package under the race detector (slow but the strongest
# check that scoring/measurement fan-out stays data-race-free). The list
# is the ./internal/... pattern itself, so a newly added package cannot
# be forgotten the way a hardcoded list could.
race:
	$(GO) test -race ./internal/...

# Run the tuning daemon locally (see API.md for the endpoints).
serve:
	$(GO) run ./cmd/pruner-serve -addr :8149 -store pruner-store

# The daemon's end-to-end suite (submit -> SSE -> cache hit) under -race.
serve-e2e:
	$(GO) test -race -v ./internal/server/... ./internal/store/...

# The measurement-fleet end-to-end suite under -race: pruner-serve with a
# loopback pruner-measure worker (register -> submit -> fleet-measured
# result byte-identical to the simulator), plus the wire-fidelity and
# pipeline determinism contracts, plus the mid-session /metrics scrape of
# daemon AND worker (TestMetrics*: exposition validated with the strict
# stdlib parser, failing on empty or malformed output).
measure-e2e:
	$(GO) test -race -v -run 'TestFleet|TestMeasurer|TestWorkerFleetMatchesSimulator|TestTunePipeline|TestMetrics|TestObservability' \
		./internal/server/... ./internal/measure/... ./internal/tuner/...
	$(GO) test -race ./internal/obs/...

# Profile a representative tuning session: CPU profile + span trace from
# one pruner-tune run, ready for `go tool pprof cpu.prof`.
profile:
	$(GO) test -run '^TestTunePipelineDepth1MatchesPreRefactorGolden$$' -cpuprofile cpu.prof ./internal/tuner/
	$(GO) run ./cmd/pruner-tune -net resnet50 -trials 40 -max-tasks 2 -trace-out trace.json
	@echo "wrote cpu.prof (go tool pprof cpu.prof) and trace.json"

# Regenerate the scaled evaluation (every paper table/figure).
bench:
	$(GO) test -bench=. -benchtime=1x -timeout=120m .

# CI's benchmark smoke: every internal benchmark once (incl. the
# verify-stage BenchmarkPredictBatched, the training-engine BenchmarkFit
# and the BenchmarkTunePipeline depth sweep) plus a bounded root subset.
# The first line is the zero-allocation gate (DESIGN.md §12): the
# TestAlloc* tests pin the warmed *In inference kernels to 0 heap
# allocations per run via testing.AllocsPerRun — the dynamic cross-check
# of the static hotalloc analyzer.
bench-smoke:
	$(GO) test -run='^TestAlloc' -count=1 ./internal/nn
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./internal/...
	$(GO) test -run='^$$' -bench='BenchmarkTuneParallel|BenchmarkAblation_SAvsOracle' -benchtime=1x -timeout=20m .

# Just the worker-count sweep for BENCH_*.json snapshots.
bench-parallel:
	$(GO) test -bench=BenchmarkTuneParallel -benchtime=1x .

# Short fuzz pass over the record codec (the store's segment format and
# the fleet's wire format) and the store's torn-tail segment replay.
# The seed corpora also run as plain tests under `make test`.
fuzz-smoke:
	$(GO) test ./internal/measure -run '^$$' -fuzz '^FuzzCodecRoundTrip$$' -fuzztime 10s
	$(GO) test ./internal/measure -run '^$$' -fuzz '^FuzzReadRecords$$' -fuzztime 10s
	$(GO) test ./internal/store -run '^$$' -fuzz '^FuzzSegmentIndexTornTail$$' -fuzztime 10s

clean:
	$(GO) clean
	rm -rf .cache
