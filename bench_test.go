// Benchmark harness: one testing.B target per table and figure of the
// paper's evaluation section (§6). Each benchmark executes the
// corresponding experiment runner from internal/experiments in scaled mode
// and prints the reproduced rows/series, so `go test -bench=.` regenerates
// the whole evaluation. Paper-scale parameters are available through
// `go run ./cmd/pruner-bench -exp <id> -full`.
//
// DESIGN.md §3 maps benchmark names to experiment IDs, workloads and
// modules; EXPERIMENTS.md records paper-vs-measured values.
//
// The session hot paths have their own harnesses next to the code they
// measure: BenchmarkPredictBatched (internal/costmodel) compares the
// batched no-tape inference engine against the per-candidate baseline
// it replaced (DESIGN.md §7), and BenchmarkFit (internal/costmodel)
// compares the data-parallel incremental training engine against the
// retained serial per-group reference (DESIGN.md §8). CI runs every
// internal benchmark once per push (`make bench-smoke`) so bench code
// cannot bit-rot.
package pruner

import (
	"fmt"
	"os"
	"runtime"
	"testing"

	"pruner/internal/experiments"
)

// runExperiment executes one experiment per benchmark iteration. The
// runners are deterministic for a fixed seed; b.N is normally 1 because
// every run takes seconds to minutes.
func runExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiments.Registry[id]
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	cfg := experiments.Config{Seed: 42, Out: os.Stdout, CacheDir: ".cache"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := runner(cfg); err != nil {
			b.Fatalf("experiment %s: %v", id, err)
		}
	}
}

// BenchmarkTable1_AnsorCostBreakdown reproduces Table 1: Ansor's tuning
// cost split (exploration / training / measurement) on Orin.
func BenchmarkTable1_AnsorCostBreakdown(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkFig6_TuningCurves reproduces Figure 6: online and offline
// tuning curves across the three platforms.
func BenchmarkFig6_TuningCurves(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7_SearchTime reproduces Figure 7: time for Pruner to reach
// each baseline's final best on A100.
func BenchmarkFig7_SearchTime(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkTable5_MoreTrials reproduces Table 5: MoA-Pruner at 2k trials
// vs Ansor with 3-5x the trials and TenSet's transfer strategy.
func BenchmarkTable5_MoreTrials(b *testing.B) { runExperiment(b, "table5") }

// BenchmarkFig8_MoreCompilers reproduces Figure 8: Adatune, Felix and TLM
// comparisons, including their failure cases.
func BenchmarkFig8_MoreCompilers(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkTable6_Roller reproduces Table 6: the Roller comparison on
// Titan V.
func BenchmarkTable6_Roller(b *testing.B) { runExperiment(b, "table6") }

// BenchmarkFig9_Frameworks reproduces Figure 9: PyTorch / Triton /
// TensorRT comparisons on A100.
func BenchmarkFig9_Frameworks(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10_LongContext reproduces Figure 10: Llama long-context
// decoding (bs=32) plus its tuning curve.
func BenchmarkFig10_LongContext(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11_SingleOps reproduces Figure 11: single-operator tuning
// against PyTorch and Ansor.
func BenchmarkFig11_SingleOps(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkTable7_CompileCost reproduces Table 7: end-to-end compilation
// time on Titan V.
func BenchmarkTable7_CompileCost(b *testing.B) { runExperiment(b, "table7") }

// BenchmarkFig12_TensorCore reproduces Figure 12: TensorCore LLM inference
// vs MetaSchedule / Triton / PyTorch.
func BenchmarkFig12_TensorCore(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkTable8_SplitK reproduces Table 8: GPT-2 linear operators where
// cudaLib's splitK beats tuning on the deep-reduction shape.
func BenchmarkTable8_SplitK(b *testing.B) { runExperiment(b, "table8") }

// BenchmarkTable9_MSSpeedup reproduces Table 9: Pruner's search speedup
// over MetaSchedule on TensorCore.
func BenchmarkTable9_MSSpeedup(b *testing.B) { runExperiment(b, "table9") }

// BenchmarkFig13_DecodeOps reproduces Figure 13: Llama decode operators on
// TensorCore.
func BenchmarkFig13_DecodeOps(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14_BestK reproduces Figure 14: Best-k of S_spec, LSE vs a
// random exploration strategy.
func BenchmarkFig14_BestK(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkTable10_LSEAblation reproduces Table 10: Best-1 vs spec size
// with penalty groups removed.
func BenchmarkTable10_LSEAblation(b *testing.B) { runExperiment(b, "table10") }

// BenchmarkFig15_DataEfficiency reproduces Figure 15: Top-1 vs
// training-set size for the three cost models.
func BenchmarkFig15_DataEfficiency(b *testing.B) { runExperiment(b, "fig15") }

// BenchmarkTable11_TopK reproduces Table 11: Top-1/Top-5 on the T4 and
// K80 dataset splits.
func BenchmarkTable11_TopK(b *testing.B) { runExperiment(b, "table11") }

// BenchmarkTable12_OnlineAblation reproduces Table 12: the online-mode
// component ablation.
func BenchmarkTable12_OnlineAblation(b *testing.B) { runExperiment(b, "table12") }

// BenchmarkTable13_OfflineAblation reproduces Table 13: the offline-mode
// LSE ablation.
func BenchmarkTable13_OfflineAblation(b *testing.B) { runExperiment(b, "table13") }

// BenchmarkFig16_AblationCurve reproduces Figure 16: ResNet-50 ablation
// tuning curves on Titan V.
func BenchmarkFig16_AblationCurve(b *testing.B) { runExperiment(b, "fig16") }

// BenchmarkTuneParallel sweeps the session worker count over one
// fixed-seed tuning session, so BENCH_*.json snapshots capture the
// parallel runtime's speedup curve alongside the paper tables. The
// session is identical at every worker count (the determinism contract,
// DESIGN.md §5); only wall-clock should move.
func BenchmarkTuneParallel(b *testing.B) {
	net, err := LoadNetwork("bert_tiny")
	if err != nil {
		b.Fatal(err)
	}
	workers := []int{1, 2, 4, 8}
	if n := runtime.NumCPU(); n > 8 {
		workers = append(workers, n)
	}
	for _, w := range workers {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := Tune(A100, net, Config{
					Method:      MethodPruner,
					Trials:      80,
					MaxTasks:    2,
					Seed:        7,
					Parallelism: w,
				})
				if err != nil {
					b.Fatal(err)
				}
				if len(res.Curve) == 0 {
					b.Fatal("empty tuning curve")
				}
			}
		})
	}
}

// BenchmarkAblation_SAvsOracle quantifies the draft model's ranking gap to
// the simulator ground truth (DESIGN.md §4): the sum-based Eq. 1 against
// the overlap-based execution model.
func BenchmarkAblation_SAvsOracle(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.AblationSAvsOracle(experiments.Config{Seed: 42, Out: os.Stdout}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation_Momentum sweeps MoA's momentum coefficient (DESIGN.md
// §4).
func BenchmarkAblation_Momentum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.AblationMomentum(experiments.Config{Seed: 42, Out: os.Stdout, CacheDir: ".cache"}); err != nil {
			b.Fatal(err)
		}
	}
}
