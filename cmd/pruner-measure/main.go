// Command pruner-measure is a measurement worker daemon: the remote half
// of the tuning fleet. It executes measurement batches POSTed by tuning
// sessions (pruner-serve jobs or pruner-tune -measurers) and, when told
// where the daemon lives, registers itself with pruner-serve and
// heartbeats so the daemon's jobs discover it automatically.
//
// Usage:
//
//	pruner-measure -listen :8151 -serve http://localhost:8149
//
// Endpoints:
//
//	POST /measure  execute one batch (record-codec wire format; see API.md)
//	GET  /healthz  liveness + batch counters
//	GET  /metrics  Prometheus text exposition of the worker's counters
//
// -pprof mounts net/http/pprof under /debug/pprof/ and -log-format json
// switches the log stream to JSON.
//
// Workers return true (noise-free) latencies; the session applies
// measurement noise from its own seeded stream, so fleet-measured
// sessions are bitwise identical to simulator-backed ones.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pruner"
)

// logger is the worker's structured log stream (configured in main).
var logger = slog.New(slog.NewTextHandler(os.Stderr, nil))

func main() {
	var (
		listen    = flag.String("listen", ":8151", "listen address")
		serve     = flag.String("serve", "", "pruner-serve base URL to register with (e.g. http://localhost:8149); empty skips registration")
		advertise = flag.String("advertise", "", "base URL the daemon should dispatch to (default: http://<local-host>:<listen-port>)")
		par       = flag.Int("parallelism", 0, "measurement fan-out worker budget (0 = all CPUs)")
		heartbeat = flag.Duration("heartbeat", 15*time.Second, "re-registration interval; keep it under the daemon's -measurer-ttl")
		logFormat = flag.String("log-format", "text", "log output format: text|json")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU/heap/goroutine profiles)")
	)
	flag.Parse()
	if *logFormat == "json" {
		logger = slog.New(slog.NewJSONHandler(os.Stderr, nil))
	}

	// The worker's counters live on a wall-clock observer so GET /metrics
	// reports the same numbers /healthz does.
	ob := pruner.NewObserver(0)
	worker := pruner.NewObservedMeasureWorker(*par, ob)
	ln, err := net.Listen("tcp", *listen)
	fatalIf(err)
	handler := worker.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{Handler: handler}
	errCh := make(chan error, 1)
	//pruner:allow rawgo — the HTTP serve loop blocks until shutdown; main stays on the signal select
	go func() { errCh <- httpSrv.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String())

	self := *advertise
	if self == "" {
		self = "http://" + advertiseHost(ln.Addr().String())
	}
	self = strings.TrimSuffix(self, "/")

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	if *serve != "" {
		base := strings.TrimSuffix(*serve, "/")
		register(base, self) // first registration failure is only a warning: the daemon may start later
		//pruner:allow rawgo — heartbeat loop re-registering with the daemon every interval for the process lifetime; canceled with the signal ctx
		go func() {
			t := time.NewTicker(*heartbeat)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					register(base, self)
				}
			}
		}()
		defer deregister(base, self)
	}

	select {
	case <-ctx.Done():
		logger.Info("shutting down")
	case err := <-errCh:
		fatalIf(err)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	httpSrv.Shutdown(shutdownCtx)
	st := worker.Status()
	logger.Info("bye", "batches", st.Batches, "schedules", st.Schedules)
}

// advertiseHost rewrites a wildcard listen address into something a local
// daemon can dial (multi-host fleets should pass -advertise explicitly).
func advertiseHost(addr string) string {
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return addr
	}
	if host == "" || host == "::" || host == "0.0.0.0" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

func register(serveBase, self string) {
	body, _ := json.Marshal(map[string]string{"url": self})
	resp, err := http.Post(serveBase+"/v1/measurers", "application/json", bytes.NewReader(body))
	if err != nil {
		logger.Warn("registration failed", "daemon", serveBase, "measurer", self, "error", err)
		return
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		logger.Warn("registration refused", "daemon", serveBase, "measurer", self, "status", resp.StatusCode)
	}
}

func deregister(serveBase, self string) {
	req, err := http.NewRequest(http.MethodDelete, serveBase+"/v1/measurers?url="+url.QueryEscape(self), nil)
	if err != nil {
		return
	}
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pruner-measure:", err)
		os.Exit(1)
	}
}
