// Command pruner-serve is the tuning daemon: a persistent HTTP service
// that tunes on demand, streams round-by-round progress over SSE, and
// persists every measurement so repeat requests for an already-tuned
// (device, network) are answered from the store without searching.
//
// Usage:
//
//	pruner-serve -addr :8149 -store pruner-store -parallelism 8 -workers 2
//
// Then (see API.md for the full reference):
//
//	curl -s localhost:8149/v1/jobs -d '{"device":"a100","network":"resnet50","trials":200}'
//	curl -N localhost:8149/v1/jobs/j-000001/events
//	curl -s 'localhost:8149/v1/best?device=a100&network=resnet50'
//
// Remote measurement workers (pruner-measure -serve http://localhost:8149)
// register at /v1/measurers; jobs with "measurer":"auto" (the default)
// have their batches measured by the fleet whenever a live worker
// exists, with results byte-identical to in-process measurement.
//
// SIGINT/SIGTERM shut down gracefully: in-flight jobs stop at the next
// round boundary, their partial measurements are persisted, and the
// process exits once the workers drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pruner"
	"pruner/internal/server"
	"pruner/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8149", "listen address")
		storeDir  = flag.String("store", "pruner-store", "record store directory")
		par       = flag.Int("parallelism", 0, "total tuning worker budget shared by all jobs (0 = all CPUs)")
		workers   = flag.Int("workers", 2, "jobs tuned concurrently (all drawing on -parallelism)")
		queue     = flag.Int("queue", 16, "queued-job backlog bound; a full queue rejects with 503")
		trials    = flag.Int("trials", 200, "default measurement budget for jobs that set none")
		maxTrials = flag.Int("max-trials", 0, "reject jobs requesting more trials (0 = 10x -trials)")
		fsync     = flag.Bool("fsync", false, "fsync the store after every append")
		segBytes  = flag.Int64("max-segment-bytes", 0, "store segment rotation threshold (0 = 4MiB)")
		modelIn   = flag.String("model-in", "", "pretrained cost-model weights (pruner-tune -model-out); enables the matching pretrained-weight methods")
		measTTL   = flag.Duration("measurer-ttl", 0, "expire fleet workers whose last heartbeat is older than this (0 = 2m, negative = never)")
	)
	flag.Parse()

	var pretrained *pruner.Pretrained
	if *modelIn != "" {
		f, err := os.Open(*modelIn)
		fatalIf(err)
		pretrained, err = pruner.LoadModel(f)
		f.Close()
		fatalIf(err)
		fmt.Fprintf(os.Stderr, "pruner-serve: loaded pretrained %s weights from %s\n", pretrained.Kind, *modelIn)
	}

	st, err := store.Open(*storeDir, store.Options{Sync: *fsync, MaxSegmentBytes: *segBytes})
	fatalIf(err)
	stats := st.Stats()
	fmt.Fprintf(os.Stderr, "pruner-serve: store %s: %d records across %d devices (%d torn tail lines dropped)\n",
		*storeDir, stats.Records, stats.Devices, stats.Dropped)

	srv, err := server.New(server.Config{
		Store:         st,
		Pool:          pruner.NewPool(*par),
		Workers:       *workers,
		QueueDepth:    *queue,
		DefaultTrials: *trials,
		MaxTrials:     *maxTrials,
		Pretrained:    pretrained,
		MeasurerTTL:   *measTTL,
	})
	fatalIf(err)

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	//pruner:allow rawgo — the HTTP serve loop blocks until shutdown; main stays on the signal select
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "pruner-serve: listening on %s\n", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "pruner-serve: shutting down...")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatalIf(err)
		}
	}

	// Cancel tuning sessions first (they stop at the next round and
	// persist what they measured; SSE streams end when the daemon context
	// dies), then drain HTTP connections and close the store.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		fmt.Fprintln(os.Stderr, "pruner-serve: workers did not drain:", err)
	}
	httpSrv.Shutdown(shutdownCtx)
	fatalIf(st.Close())
	fmt.Fprintln(os.Stderr, "pruner-serve: bye")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pruner-serve:", err)
		os.Exit(1)
	}
}
