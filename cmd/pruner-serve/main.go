// Command pruner-serve is the tuning daemon: a persistent HTTP service
// that tunes on demand, streams round-by-round progress over SSE, and
// persists every measurement so repeat requests for an already-tuned
// (device, network) are answered from the store without searching.
//
// Usage:
//
//	pruner-serve -addr :8149 -store pruner-store -parallelism 8 -workers 2
//
// Then (see API.md for the full reference):
//
//	curl -s localhost:8149/v1/jobs -d '{"device":"a100","network":"resnet50","trials":200}'
//	curl -N localhost:8149/v1/jobs/j-000001/events
//	curl -s 'localhost:8149/v1/best?device=a100&network=resnet50'
//
// Remote measurement workers (pruner-measure -serve http://localhost:8149)
// register at /v1/measurers; jobs with "measurer":"auto" (the default)
// have their batches measured by the fleet whenever a live worker
// exists, with results byte-identical to in-process measurement.
//
// Observability: GET /metrics serves the daemon's registry in the
// Prometheus text format, GET /v1/trace dumps recent pipeline spans,
// -pprof mounts net/http/pprof under /debug/pprof/, and -log-format
// json switches the structured log stream to JSON.
//
// SIGINT/SIGTERM shut down gracefully: in-flight jobs stop at the next
// round boundary, their partial measurements are persisted, and the
// process exits once the workers drain.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pruner"
	"pruner/internal/server"
	"pruner/internal/store"
)

func main() {
	var (
		addr      = flag.String("addr", ":8149", "listen address")
		storeDir  = flag.String("store", "pruner-store", "record store directory")
		par       = flag.Int("parallelism", 0, "total tuning worker budget shared by all jobs (0 = all CPUs)")
		workers   = flag.Int("workers", 2, "jobs tuned concurrently (all drawing on -parallelism)")
		queue     = flag.Int("queue", 16, "queued-job backlog bound; a full queue rejects with 503")
		trials    = flag.Int("trials", 200, "default measurement budget for jobs that set none")
		maxTrials = flag.Int("max-trials", 0, "reject jobs requesting more trials (0 = 10x -trials)")
		fsync     = flag.Bool("fsync", false, "fsync the store after every append")
		segBytes  = flag.Int64("max-segment-bytes", 0, "store segment rotation threshold (0 = 4MiB)")
		modelIn   = flag.String("model-in", "", "pretrained cost-model weights (pruner-tune -model-out); enables the matching pretrained-weight methods")
		measTTL   = flag.Duration("measurer-ttl", 0, "expire fleet workers whose last heartbeat is older than this (0 = 2m, negative = never)")
		traceCap  = flag.Int("trace-cap", 0, "span ring-buffer capacity served at /v1/trace (0 = 4096)")
		logFormat = flag.String("log-format", "text", "log output format: text|json")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug|info|warn|error (debug logs every committed round)")
		pprofOn   = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (CPU/heap/goroutine profiles)")
	)
	flag.Parse()
	logger := newLogger(*logFormat, *logLevel)

	// The observer is the daemon's one wall-clock boundary: jobs, the
	// store and the fleet all report into its registry, and /metrics,
	// /v1/trace and /v1/healthz read it back.
	ob := pruner.NewObserver(*traceCap)

	var pretrained *pruner.Pretrained
	if *modelIn != "" {
		f, err := os.Open(*modelIn)
		fatalIf(err)
		pretrained, err = pruner.LoadModel(f)
		f.Close()
		fatalIf(err)
		logger.Info("loaded pretrained weights", "kind", pretrained.Kind, "path", *modelIn)
	}

	st, err := store.Open(*storeDir, store.Options{Sync: *fsync, MaxSegmentBytes: *segBytes, Metrics: ob.Reg()})
	fatalIf(err)
	stats := st.Stats()
	logger.Info("store opened", "dir", *storeDir, "records", stats.Records,
		"devices", stats.Devices, "dropped_tail_lines", stats.Dropped)

	srv, err := server.New(context.Background(), server.Config{
		Store:         st,
		Pool:          pruner.NewPool(*par),
		Workers:       *workers,
		QueueDepth:    *queue,
		DefaultTrials: *trials,
		MaxTrials:     *maxTrials,
		Pretrained:    pretrained,
		MeasurerTTL:   *measTTL,
		Obs:           ob,
		Log:           logger,
	})
	fatalIf(err)

	handler := srv.Handler()
	if *pprofOn {
		handler = withPprof(handler)
		logger.Info("pprof enabled", "path", "/debug/pprof/")
	}
	httpSrv := &http.Server{Addr: *addr, Handler: handler}
	errCh := make(chan error, 1)
	//pruner:allow rawgo — the HTTP serve loop blocks until shutdown; main stays on the signal select
	go func() { errCh <- httpSrv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	select {
	case <-ctx.Done():
		logger.Info("shutting down")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			fatalIf(err)
		}
	}

	// Cancel tuning sessions first (they stop at the next round and
	// persist what they measured; SSE streams end when the daemon context
	// dies), then drain HTTP connections and close the store.
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		logger.Warn("workers did not drain", "error", err)
	}
	httpSrv.Shutdown(shutdownCtx)
	fatalIf(st.Close())
	logger.Info("bye")
}

// newLogger builds the daemon's slog logger on stderr. Unknown formats
// and levels fall back to text/info rather than refusing to start.
func newLogger(format, level string) *slog.Logger {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		lv = slog.LevelInfo
	}
	opts := &slog.HandlerOptions{Level: lv}
	if format == "json" {
		return slog.New(slog.NewJSONHandler(os.Stderr, opts))
	}
	return slog.New(slog.NewTextHandler(os.Stderr, opts))
}

// withPprof mounts the net/http/pprof handlers next to the API (the
// package's DefaultServeMux side effects are not served; the routes are
// opt-in via -pprof only).
func withPprof(api http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", api)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pruner-serve:", err)
		os.Exit(1)
	}
}
