// Command pruner-bench reproduces the paper's tables and figures.
//
// Usage:
//
//	pruner-bench -exp table1            # one experiment, scaled
//	pruner-bench -exp fig6 -full        # paper-scale parameters
//	pruner-bench -all                   # the whole evaluation section
//	pruner-bench -all -jobs 4           # four experiments at a time
//	pruner-bench -list                  # available experiment IDs
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"time"

	"pruner/internal/experiments"
	"pruner/internal/parallel"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		full  = flag.Bool("full", false, "paper-scale parameters (slow)")
		list  = flag.Bool("list", false, "list experiment ids")
		seed  = flag.Int64("seed", 42, "base random seed")
		cache = flag.String("cache", ".cache", "pretrained-weights cache dir")
		par   = flag.Int("parallelism", 0, "workers per experiment (0 = all CPUs, 1 = serial); rows are seed-stable at any setting")
		jobs  = flag.Int("jobs", 1, "experiments run concurrently with -all (output stays in evaluation order)")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	run := func(id string, cfg experiments.Config) error {
		r, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		if err := r(cfg); err != nil {
			return fmt.Errorf("experiment %s failed: %w", id, err)
		}
		fmt.Fprintf(cfg.Out, "[%s done in %s]\n\n", id, time.Since(start).Round(time.Second))
		return nil
	}

	switch {
	case *all:
		// Fan experiments out -jobs at a time; each writes to its own
		// buffer, printed in evaluation order once all are done racing.
		// -parallelism is a total budget, split across concurrent jobs.
		perJob := parallel.New(*par).Workers() / max(1, *jobs)
		if perJob < 1 {
			perJob = 1
		}
		ids := experiments.IDs()
		bufs := make([]bytes.Buffer, len(ids))
		errs := parallel.Map(parallel.New(*jobs), len(ids), func(i int) error {
			cfg := experiments.Config{
				Full: *full, Seed: *seed, Out: &bufs[i],
				CacheDir: *cache, Parallelism: perJob,
			}
			return run(ids[i], cfg)
		})
		failed := false
		for i := range ids {
			os.Stdout.Write(bufs[i].Bytes())
			if errs[i] != nil {
				failed = true
				fmt.Fprintln(os.Stderr, errs[i])
			}
		}
		if failed {
			os.Exit(1)
		}
	case *exp != "":
		cfg := experiments.Config{
			Full: *full, Seed: *seed, Out: os.Stdout,
			CacheDir: *cache, Parallelism: *par,
		}
		if err := run(*exp, cfg); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}
