// Command pruner-bench reproduces the paper's tables and figures.
//
// Usage:
//
//	pruner-bench -exp table1            # one experiment, scaled
//	pruner-bench -exp fig6 -full        # paper-scale parameters
//	pruner-bench -all                   # the whole evaluation section
//	pruner-bench -list                  # available experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"pruner/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "", "experiment id (see -list)")
		all   = flag.Bool("all", false, "run every experiment")
		full  = flag.Bool("full", false, "paper-scale parameters (slow)")
		list  = flag.Bool("list", false, "list experiment ids")
		seed  = flag.Int64("seed", 42, "base random seed")
		cache = flag.String("cache", ".cache", "pretrained-weights cache dir")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	cfg := experiments.Config{Full: *full, Seed: *seed, Out: os.Stdout, CacheDir: *cache}

	run := func(id string) {
		r, ok := experiments.Registry[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; try -list\n", id)
			os.Exit(2)
		}
		start := time.Now()
		if err := r(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Printf("[%s done in %s]\n\n", id, time.Since(start).Round(time.Second))
	}

	switch {
	case *all:
		for _, id := range experiments.IDs() {
			run(id)
		}
	case *exp != "":
		run(*exp)
	default:
		flag.Usage()
		os.Exit(2)
	}
}
