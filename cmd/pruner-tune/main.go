// Command pruner-tune runs end-to-end tuning sessions and prints each
// tuning curve and per-task result as JSON lines.
//
// Usage:
//
//	pruner-tune -net resnet50 -device a100 -method moa-pruner -trials 400
//	pruner-tune -net resnet50,vit,bert_tiny -trials 200   # tuned concurrently
//	pruner-tune -net resnet50 -log run1.jsonl             # persist records
//	pruner-tune -net resnet50 -resume run1.jsonl          # warm-start from them
//	pruner-tune -pretrain 300 -model-out pacm.gob         # save offline weights
//	pruner-tune -method moa-pruner -model-in pacm.gob     # reuse them
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pruner"
	"pruner/internal/parallel"
	"pruner/internal/tuner"
)

func main() {
	var (
		netName  = flag.String("net", "resnet50", "workload, or comma-separated workloads tuned concurrently (see -nets)")
		devName  = flag.String("device", "a100", "device: a100|titanv|orin|k80|t4")
		method   = flag.String("method", "pruner", "tuning method (pruner|moa-pruner|ansor|metaschedule|roller|...)")
		trials   = flag.Int("trials", 400, "measurement trials")
		seed     = flag.Int64("seed", 1, "random seed")
		maxTask  = flag.Int("max-tasks", 0, "tune only the top-N subgraphs (0 = all)")
		par      = flag.Int("parallelism", 0, "workers per session (0 = all CPUs, 1 = serial); results are seed-stable at any setting")
		nets     = flag.Bool("nets", false, "list workloads")
		pre      = flag.Int("pretrain", 0, "pretrain PaCM on a K80 dataset with N schedules/task first (enables moa-pruner)")
		logPath  = flag.String("log", "", "append this run's measurement records to the file (JSON lines)")
		resume   = flag.String("resume", "", "warm-start from a record log written by -log; already-measured schedules are not re-measured")
		modelIn  = flag.String("model-in", "", "load pretrained cost-model weights from a file written by -model-out (skips -pretrain)")
		modelOut = flag.String("model-out", "", "save the -pretrain weights to the file for reuse by later runs, pruner-serve -model-in, or examples")
		depth    = flag.Int("pipeline-depth", 0, "measurement rounds in flight (0/1 = serial loop; higher overlaps measurement with search, deterministic per depth; ignored with -adapt-budget)")
		adapt    = flag.Bool("adapt-budget", false, "calibration-driven budget control: shrink the verify batch, widen the LSE draft set and deepen the pipeline as the cost model proves calibrated (deterministic; see DESIGN.md §14)")
		fleet    = flag.String("measurers", "", "comma-separated pruner-measure worker base URLs; batches are measured by the fleet instead of in-process (bitwise-identical results)")
		traceOut = flag.String("trace-out", "", "write the session's pipeline spans (plan/measure/commit, cost-model fit/predict) to the file as JSON; also enables wall-clock stage metrics internally")
	)
	flag.Parse()

	if *nets {
		for _, n := range pruner.NetworkNames() {
			fmt.Println(n)
		}
		return
	}
	dev, err := pruner.DeviceByName(*devName)
	fatalIf(err)
	var names []string
	for _, name := range strings.Split(*netName, ",") {
		if name = strings.TrimSpace(name); name != "" {
			names = append(names, name)
		}
	}
	if len(names) == 0 {
		fatalIf(fmt.Errorf("-net needs at least one workload (see -nets)"))
	}
	networks := make([]*pruner.Network, len(names))
	for i, name := range names {
		networks[i], err = pruner.LoadNetwork(name)
		fatalIf(err)
	}

	// The flag is a total budget: concurrent networks split it so the
	// fan-out times per-session workers stays at -parallelism, not a
	// multiple of it.
	total := parallel.New(*par).Workers()
	perSession := total / len(networks)
	if perSession < 1 {
		perSession = 1
	}
	cfg := pruner.Config{
		Method:        pruner.Method(*method),
		Trials:        *trials,
		Seed:          *seed,
		MaxTasks:      *maxTask,
		Parallelism:   perSession,
		PipelineDepth: *depth,
		AdaptBudget:   *adapt,
	}
	// Tracing rides on an injected wall clock; the readings land only in
	// the span dump, so -trace-out changes nothing about the Result
	// (golden fingerprints are identical armed or not). Concurrent
	// sessions share the observer — spans carry task/round attrs.
	var ob *pruner.Observer
	if *traceOut != "" {
		ob = pruner.NewObserver(0)
		cfg.Obs = ob
	}
	if *fleet != "" {
		var urls []string
		for _, u := range strings.Split(*fleet, ",") {
			if u = strings.TrimSuffix(strings.TrimSpace(u), "/"); u != "" {
				urls = append(urls, u)
			}
		}
		cfg.Measurer = pruner.NewFleet(urls)
		if *depth == 0 {
			// A fleet's natural pipeline depth is its worker count: keep
			// every worker busy unless the user pinned a depth.
			cfg.PipelineDepth = len(urls)
		}
		fmt.Fprintf(os.Stderr, "measuring on a %d-worker fleet (pipeline depth %d)\n", len(urls), cfg.PipelineDepth)
	}
	switch {
	case *modelIn != "" && (*pre > 0 || *modelOut != ""):
		// Refuse to guess: loading a bundle and pretraining/saving one in
		// the same run would silently drop whichever the user meant.
		fatalIf(fmt.Errorf("-model-in conflicts with -pretrain/-model-out (load a bundle or produce one, not both)"))
	case *modelIn != "":
		// Saved weights replace -pretrain entirely: the expensive offline
		// phase runs once per fleet, not once per process.
		if pruner.PretrainedKind(cfg.Method) == "" {
			fatalIf(fmt.Errorf("-model-in is unused by method %q (pretrained-weight methods: moa-pruner, pruner-offline, tensetmlp, tlp)", cfg.Method))
		}
		f, err := os.Open(*modelIn)
		fatalIf(err)
		pretrained, err := pruner.LoadModel(f)
		f.Close()
		fatalIf(err)
		cfg.Pretrained = pretrained
		fmt.Fprintf(os.Stderr, "loaded pretrained %s weights from %s\n", pretrained.Kind, *modelIn)
	case *pre > 0:
		fmt.Fprintln(os.Stderr, "pretraining PaCM on K80 dataset...")
		ds, err := pruner.GenerateDataset(context.Background(), pruner.K80, []string{"wide_resnet50", "vit", "gpt2"}, *pre, *seed)
		fatalIf(err)
		_, pretrained, err := pruner.PretrainModel("pacm", ds, 10, *seed)
		fatalIf(err)
		cfg.Pretrained = pretrained
		if *modelOut != "" {
			fatalIf(saveModel(*modelOut, pretrained))
			fmt.Fprintf(os.Stderr, "saved pretrained weights to %s\n", *modelOut)
		}
	case *modelOut != "":
		fatalIf(fmt.Errorf("-model-out needs -pretrain (nothing was trained to save)"))
	}

	// A resume log is read once; each session decodes it against its own
	// task set (records of other networks' tasks are skipped).
	var resumeData []byte
	if *resume != "" {
		resumeData, err = os.ReadFile(*resume)
		fatalIf(err)
	}

	// Independent networks tune concurrently; each session's output is
	// buffered and printed in input order so streams never interleave.
	type session struct {
		res         *pruner.Result
		err         error
		out, status bytes.Buffer
	}
	sessions := parallel.Map(parallel.New(total), len(networks), func(i int) *session {
		s := &session{}
		cfg := cfg
		if resumeData != nil {
			warm, err := tuner.ReadRecords(bytes.NewReader(resumeData),
				networks[i].Representative(cfg.MaxTasks))
			if err != nil {
				s.err = fmt.Errorf("resume %s: %w", *resume, err)
				return s
			}
			cfg.WarmStart = warm
		}
		s.res, s.err = pruner.Tune(dev, networks[i], cfg)
		if s.err != nil {
			return s
		}
		enc := json.NewEncoder(&s.out)
		for _, p := range s.res.Curve {
			line := map[string]any{
				"round": p.Round, "trials": p.Trials,
				"sim_seconds": p.SimSeconds, "workload_ms": p.WorkloadLat * 1e3,
			}
			if len(names) > 1 {
				line["net"] = names[i]
			}
			_ = enc.Encode(line)
		}
		prefix := ""
		if len(names) > 1 {
			prefix = names[i] + ": "
		}
		if s.res.Warm > 0 {
			fmt.Fprintf(&s.status, "%swarm-started from %d prior records\n", prefix, s.res.Warm)
		}
		fmt.Fprintf(&s.status, "%sfinal workload latency: %.4f ms\n", prefix, s.res.FinalLatency*1e3)
		fmt.Fprintf(&s.status, "%ssimulated compile time: %.1f min (exploration %.1f, training %.1f, measurement %.1f)\n",
			prefix, s.res.Clock.Total()/60, s.res.Clock.Exploration/60,
			s.res.Clock.Training/60, s.res.Clock.Measurement/60)
		return s
	})
	// A failed session must not discard the others' paid-for work: print
	// and log every successful session first, then exit non-zero.
	var firstErr error
	for _, s := range sessions {
		if s.err != nil {
			fmt.Fprintln(os.Stderr, "pruner-tune:", s.err)
			if firstErr == nil {
				firstErr = s.err
			}
			continue
		}
		os.Stdout.Write(s.out.Bytes())
		os.Stderr.Write(s.status.Bytes())
	}

	// Persist only the new measurements (the warm prefix already lives in
	// the log this run resumed from), in input order, append-only so runs
	// accumulate into one reusable history.
	if *logPath != "" {
		f, err := os.OpenFile(*logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		fatalIf(err)
		logged := 0
		for _, s := range sessions {
			if s.err != nil {
				continue
			}
			recs := s.res.Records[s.res.Warm:]
			fatalIf(tuner.WriteRecords(f, recs))
			logged += len(recs)
		}
		fatalIf(f.Close())
		fmt.Fprintf(os.Stderr, "logged %d records to %s\n", logged, *logPath)
	}

	// Dump the span ring buffer after every session finished — failed
	// sessions included, since their spans are exactly what one wants to
	// look at.
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		fatalIf(err)
		fatalIf(pruner.WriteTrace(ob, f))
		fatalIf(f.Close())
		fmt.Fprintf(os.Stderr, "wrote pipeline trace to %s\n", *traceOut)
	}
	if firstErr != nil {
		os.Exit(1)
	}
}

// saveModel writes the weight bundle to path.
func saveModel(path string, p *pruner.Pretrained) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := pruner.SaveModel(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pruner-tune:", err)
		os.Exit(1)
	}
}
