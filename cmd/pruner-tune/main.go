// Command pruner-tune runs one end-to-end tuning session and prints the
// tuning curve and per-task results as JSON lines.
//
// Usage:
//
//	pruner-tune -net resnet50 -device a100 -method moa-pruner -trials 400
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"pruner"
)

func main() {
	var (
		netName = flag.String("net", "resnet50", "workload (see -nets)")
		devName = flag.String("device", "a100", "device: a100|titanv|orin|k80|t4")
		method  = flag.String("method", "pruner", "tuning method (pruner|moa-pruner|ansor|metaschedule|roller|...)")
		trials  = flag.Int("trials", 400, "measurement trials")
		seed    = flag.Int64("seed", 1, "random seed")
		maxTask = flag.Int("max-tasks", 0, "tune only the top-N subgraphs (0 = all)")
		nets    = flag.Bool("nets", false, "list workloads")
		pre     = flag.Int("pretrain", 0, "pretrain PaCM on a K80 dataset with N schedules/task first (enables moa-pruner)")
	)
	flag.Parse()

	if *nets {
		for _, n := range pruner.NetworkNames() {
			fmt.Println(n)
		}
		return
	}
	dev, err := pruner.DeviceByName(*devName)
	fatalIf(err)
	net, err := pruner.LoadNetwork(*netName)
	fatalIf(err)

	cfg := pruner.Config{
		Method:   pruner.Method(*method),
		Trials:   *trials,
		Seed:     *seed,
		MaxTasks: *maxTask,
	}
	if *pre > 0 {
		fmt.Fprintln(os.Stderr, "pretraining PaCM on K80 dataset...")
		ds, err := pruner.GenerateDataset(pruner.K80, []string{"wide_resnet50", "vit", "gpt2"}, *pre, *seed)
		fatalIf(err)
		_, pretrained, err := pruner.PretrainModel("pacm", ds, 10, *seed)
		fatalIf(err)
		cfg.Pretrained = pretrained
	}

	res, err := pruner.Tune(dev, net, cfg)
	fatalIf(err)

	enc := json.NewEncoder(os.Stdout)
	for _, p := range res.Curve {
		_ = enc.Encode(map[string]any{
			"round": p.Round, "trials": p.Trials,
			"sim_seconds": p.SimSeconds, "workload_ms": p.WorkloadLat * 1e3,
		})
	}
	fmt.Fprintf(os.Stderr, "final workload latency: %.4f ms\n", res.FinalLatency*1e3)
	fmt.Fprintf(os.Stderr, "simulated compile time: %.1f min (exploration %.1f, training %.1f, measurement %.1f)\n",
		res.Clock.Total()/60, res.Clock.Exploration/60, res.Clock.Training/60, res.Clock.Measurement/60)
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pruner-tune:", err)
		os.Exit(1)
	}
}
