// Command pruner-vet runs the repo's determinism, concurrency, and
// wire-contract analyzers (internal/lint) over Go packages, in the
// manner of go vet:
//
//	pruner-vet ./...
//	pruner-vet -checks rawgo,maprange ./internal/tuner/...
//	pruner-vet -checks wireshape ./...   # make wire-check
//	pruner-vet -write-wire ./...         # make wire-lock
//	pruner-vet -json ./... | jq 'select(.suppressed)'
//
// Exit-code contract (stable, scripted against by make lint and CI):
//
//	0  every surviving diagnostic count is zero — the tree honors the
//	   contract (suppressed findings and additive wire notices may
//	   still exist; see -json)
//	1  at least one diagnostic survives: a finding with no //pruner:allow,
//	   or a malformed, unknown, reasonless, or unused suppression
//	2  the packages failed to load (bad pattern, type error) or the
//	   flags were invalid (unknown analyzer name)
//
// With -json, pruner-vet writes one JSON object per diagnostic to
// stdout — suppressed ones and notices included, so editors and CI
// dashboards see the complete picture — while the exit code still keys
// on unsuppressed, non-notice findings only. -write-wire regenerates
// the wire.lock golden from the live wire schema (the deliberate path
// for a reviewed wire change; see API.md "Wire compatibility"). A
// clean run is part of the bitwise-reproducibility contract
// (DESIGN.md §10, §12, §13).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"pruner/internal/lint"
)

// jsonDiag is the -json wire format: one object per line, one line per
// diagnostic, suppressed or not.
type jsonDiag struct {
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Check      string `json:"check"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	Reason     string `json:"reason,omitempty"`
	Notice     bool   `json:"notice,omitempty"`
}

func main() {
	var (
		checks    = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		listOnly  = flag.Bool("list", false, "list available analyzers and exit")
		jsonOut   = flag.Bool("json", false, "emit one JSON object per diagnostic (suppressed included) instead of text")
		writeWire = flag.Bool("write-wire", false, "regenerate the wire.lock golden from the live wire schema and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pruner-vet [-checks name,...] [-json] [-write-wire] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *checks != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pruner-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	// -write-wire is the deliberate regeneration path: only wireshape
	// runs, in write mode, and a successful run reports the new golden.
	if *writeWire {
		if _, err := lint.RunAllOpts(patterns, []*lint.Analyzer{lint.WireShape}, lint.RunOptions{WriteWire: true}); err != nil {
			fmt.Fprintf(os.Stderr, "pruner-vet: %v\n", err)
			os.Exit(2)
		}
		fmt.Println("pruner-vet: wrote wire.lock from the live wire schema")
		return
	}

	// RunAll keeps the suppressed diagnostics (marked as such) so -json
	// can report them; the exit code counts only the survivors either way.
	all, err := lint.RunAll(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pruner-vet: %v\n", err)
		os.Exit(2)
	}
	findings := 0
	enc := json.NewEncoder(os.Stdout)
	for _, d := range all {
		if !d.Suppressed && !d.Notice {
			findings++
		}
		switch {
		case *jsonOut:
			_ = enc.Encode(jsonDiag{ // encoding a plain struct to stdout cannot fail usefully
				File:       d.Pos.Filename,
				Line:       d.Pos.Line,
				Col:        d.Pos.Column,
				Check:      d.Analyzer,
				Message:    d.Message,
				Suppressed: d.Suppressed,
				Reason:     d.Reason,
				Notice:     d.Notice,
			})
		case d.Notice:
			fmt.Printf("%s (notice)\n", d)
		case !d.Suppressed:
			fmt.Println(d)
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "pruner-vet: %d finding(s)\n", findings)
		os.Exit(1)
	}
}
