// Command pruner-vet runs the repo's determinism & concurrency contract
// analyzers (internal/lint) over Go packages, in the manner of go vet:
//
//	pruner-vet ./...
//	pruner-vet -checks rawgo,maprange ./internal/tuner/...
//
// It exits 1 if any diagnostic survives — including malformed or unused
// //pruner:allow suppressions — and 2 if the packages fail to load.
// `make lint` and CI run it over the whole module; a clean run is part
// of the bitwise-reproducibility contract (DESIGN.md §10).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pruner/internal/lint"
)

func main() {
	var (
		checks   = flag.String("checks", "", "comma-separated analyzer names to run (default: all)")
		listOnly = flag.Bool("list", false, "list available analyzers and exit")
	)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: pruner-vet [-checks name,...] [packages]\n\nAnalyzers:\n")
		for _, a := range lint.All() {
			fmt.Fprintf(os.Stderr, "  %-12s %s\n", a.Name, a.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	if *listOnly {
		for _, a := range lint.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	analyzers := lint.All()
	if *checks != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		analyzers = analyzers[:0:0]
		for _, name := range strings.Split(*checks, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(os.Stderr, "pruner-vet: unknown analyzer %q\n", name)
				os.Exit(2)
			}
			analyzers = append(analyzers, a)
		}
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	diags, err := lint.Run(patterns, analyzers)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pruner-vet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "pruner-vet: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
